#!/usr/bin/env python3
"""Warn-only kernel-bench regression guard.

Compares a freshly generated google-benchmark JSON dump against the
committed baseline and prints a GitHub Actions ::warning:: annotation
for every benchmark whose items_per_second fell below a generous
fraction of the baseline.

Warn-only by design: CI runners are shared machines and the kernel
microbenches are wall-clock measurements, so hard-failing on a
slowdown would make CI flaky. The annotations put the number in the
run summary where a reviewer can decide whether the drop is real
(and regenerate the committed baseline on a quiet runner if it is).

Usage:
    check_bench_regression.py FRESH.json BASELINE.json [--tolerance F]

Tolerance is the allowed fraction of the baseline (default 0.5: warn
only when throughput halves). Exit code is always 0 unless the inputs
are unreadable.
"""

import argparse
import json
import sys


def load_rates(path):
    """Map benchmark name -> items_per_second from a google-benchmark
    JSON dump. Aggregate entries (mean/median/stddev) are skipped so
    repeated runs compare the raw samples."""
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rate = b.get("items_per_second")
        if rate:
            # Keep the best sample per name: wall-clock noise only
            # ever subtracts throughput.
            name = b["name"]
            rates[name] = max(rates.get(name, 0.0), rate)
    return rates


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="newly generated BENCH_kernel.json")
    ap.add_argument("baseline", help="committed baseline json")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="warn when fresh < tolerance * baseline")
    args = ap.parse_args()

    try:
        fresh = load_rates(args.fresh)
        base = load_rates(args.baseline)
    except (OSError, ValueError) as e:
        print(f"error: cannot read bench json: {e}", file=sys.stderr)
        return 1

    warned = False
    for name, base_rate in sorted(base.items()):
        new_rate = fresh.get(name)
        if new_rate is None:
            print(f"::warning::bench {name}: present in baseline but "
                  f"missing from fresh run")
            warned = True
            continue
        if new_rate < args.tolerance * base_rate:
            print(f"::warning::bench {name}: {new_rate / 1e6:.2f} M/s "
                  f"vs baseline {base_rate / 1e6:.2f} M/s "
                  f"({new_rate / base_rate:.0%}) — below the "
                  f"{args.tolerance:.0%} warn threshold")
            warned = True
        else:
            print(f"ok   {name}: {new_rate / 1e6:.2f} M/s "
                  f"(baseline {base_rate / 1e6:.2f} M/s, "
                  f"{new_rate / base_rate:.0%})")
    for name in sorted(set(fresh) - set(base)):
        print(f"new  {name}: {fresh[name] / 1e6:.2f} M/s "
              f"(no baseline yet)")
    if not warned:
        print("all benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
