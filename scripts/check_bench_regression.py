#!/usr/bin/env python3
"""Bench regression guard: warn-only for wall-clock, fail-fast for
deterministic simulation outputs.

Two input formats, auto-detected:

* google-benchmark dumps (top-level "benchmarks" key, e.g.
  BENCH_kernel.json): wall-clock throughput comparison, warn-only by
  design. CI runners are shared machines, so a slowdown prints a
  GitHub Actions ::warning:: annotation instead of failing the run;
  halving throughput is the default bar.

* sweep-runner exports (top-level "sweeps" key, e.g.
  BENCH_parallel.json, BENCH_backends.json): every point's metrics are
  deterministic simulation outputs. Metrics on the stable allowlist
  (byte-identity verdicts, audit results, op/span/transaction counts,
  integrity counters) must match the committed baseline EXACTLY — any
  drift there means a behaviour change, not noise, and the script
  exits non-zero. Other metrics (throughput, latencies) are printed as
  informational diffs; wall_ms and perf blocks are host wall-clock and
  stay warn-only.

Both formats carry a schema version (sweep exports: top-level
"schema_version"; google-benchmark dumps and pre-versioned exports
count as version 0). The script refuses to compare files whose schema
versions differ, and refuses files newer than it understands —
regenerate the baseline or update the script instead of silently
diffing incompatible shapes.

Usage:
    check_bench_regression.py FRESH.json BASELINE.json [--tolerance F]

Tolerance applies to the wall-clock comparisons only (default 0.5:
warn when throughput halves / wall time doubles). Exit codes: 0 ok or
warnings only, 1 stable-metric regression or missing point, 2 schema
mismatch or unreadable input.
"""

import argparse
import json
import sys

# Newest sweep-export schema this script understands
# (telemetry::kSchemaVersion on the C++ side).
SUPPORTED_SCHEMA = 1

# Sweep-point metrics that are contractually stable: deterministic
# verdicts and integrity counters where ANY drift against the
# committed baseline is a regression, never noise. Everything else in
# a point is compared informationally.
STABLE_METRICS = frozenset({
    "threads_identical",
    "breakdown_identical",
    "audit_ok",
    "verify_ok",
    "identical",
    "invariants_ok",
    "validation_failures",
    "corrupt",
    "wpq_lost",
    "wpq_flushed",
    "pages_dumped",
    "silent_corruptions",
    "ops",
    "spans",
    "intervals",
    "transactions",
    "committed",
})

# Point keys that are not metrics.
NON_METRIC_KEYS = frozenset({"name", "wall_ms", "error", "perf"})


def schema_version(doc):
    """Schema version of a parsed dump (0 = pre-versioned)."""
    return int(doc.get("schema_version", 0))


def load_doc(path):
    with open(path) as f:
        return json.load(f)


# ----------------------------------------------------------------- #
# google-benchmark format: warn-only throughput comparison.
# ----------------------------------------------------------------- #

def bench_rates(doc):
    """Map benchmark name -> items_per_second. Aggregate entries
    (mean/median/stddev) are skipped so repeated runs compare the raw
    samples; the best sample per name wins (wall-clock noise only
    ever subtracts throughput)."""
    rates = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rate = b.get("items_per_second")
        if rate:
            name = b["name"]
            rates[name] = max(rates.get(name, 0.0), rate)
    return rates


def compare_benchmarks(fresh_doc, base_doc, tolerance):
    fresh = bench_rates(fresh_doc)
    base = bench_rates(base_doc)
    for name, base_rate in sorted(base.items()):
        new_rate = fresh.get(name)
        if new_rate is None:
            print(f"::warning::bench {name}: present in baseline but "
                  f"missing from fresh run")
            continue
        if new_rate < tolerance * base_rate:
            print(f"::warning::bench {name}: {new_rate / 1e6:.2f} M/s "
                  f"vs baseline {base_rate / 1e6:.2f} M/s "
                  f"({new_rate / base_rate:.0%}) — below the "
                  f"{tolerance:.0%} warn threshold")
        else:
            print(f"ok   {name}: {new_rate / 1e6:.2f} M/s "
                  f"(baseline {base_rate / 1e6:.2f} M/s, "
                  f"{new_rate / base_rate:.0%})")
    for name in sorted(set(fresh) - set(base)):
        print(f"new  {name}: {fresh[name] / 1e6:.2f} M/s "
              f"(no baseline yet)")
    return 0


# ----------------------------------------------------------------- #
# sweep-runner format: exact-match gate on the stable allowlist.
# ----------------------------------------------------------------- #

def sweep_points(doc):
    """Map "sweep/point" -> point object."""
    points = {}
    for sweep in doc.get("sweeps", []):
        for point in sweep.get("points", []):
            points[f"{sweep['name']}/{point['name']}"] = point
    return points


def point_metrics(point):
    return {k: v for k, v in point.items() if k not in NON_METRIC_KEYS}


def compare_sweeps(fresh_doc, base_doc, tolerance):
    fresh = sweep_points(fresh_doc)
    base = sweep_points(base_doc)
    failed = False

    for name, bpoint in sorted(base.items()):
        fpoint = fresh.get(name)
        if fpoint is None:
            print(f"FAIL {name}: present in baseline but missing "
                  f"from fresh run")
            failed = True
            continue
        if fpoint.get("error"):
            print(f"FAIL {name}: fresh run errored: "
                  f"{fpoint['error']}")
            failed = True
            continue
        if bpoint.get("error"):
            print(f"note {name}: baseline recorded an error "
                  f"({bpoint['error']}); skipping metric diff")
            continue

        bmetrics = point_metrics(bpoint)
        fmetrics = point_metrics(fpoint)
        for key, bval in sorted(bmetrics.items()):
            fval = fmetrics.get(key)
            if key in STABLE_METRICS:
                if fval != bval:
                    print(f"FAIL {name}: stable metric {key} changed "
                          f"{bval} -> {fval}")
                    failed = True
            elif fval is None:
                print(f"::warning::{name}: metric {key} missing from "
                      f"fresh run")
            elif fval != bval:
                print(f"info {name}: {key} {bval} -> {fval}")

        # Host wall-clock: warn-only, shared runners are noisy.
        bwall, fwall = bpoint.get("wall_ms"), fpoint.get("wall_ms")
        if bwall and fwall and fwall * tolerance > bwall:
            print(f"::warning::{name}: wall_ms {bwall:.0f} -> "
                  f"{fwall:.0f} (>{1 / tolerance:.1f}x baseline)")

    for name in sorted(set(fresh) - set(base)):
        print(f"new  {name} (no baseline yet)")

    if failed:
        print("stable-metric regression detected")
        return 1
    print("all stable metrics match the baseline")
    return 0


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("fresh", help="newly generated bench/sweep json")
    ap.add_argument("baseline", help="committed baseline json")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="wall-clock warn threshold (fraction of "
                         "baseline throughput / inverse wall-time "
                         "factor)")
    args = ap.parse_args()

    try:
        fresh = load_doc(args.fresh)
        base = load_doc(args.baseline)
    except (OSError, ValueError) as e:
        print(f"error: cannot read bench json: {e}", file=sys.stderr)
        return 2

    fv, bv = schema_version(fresh), schema_version(base)
    if fv != bv:
        print(f"error: schema_version mismatch: fresh={fv} "
              f"baseline={bv}; regenerate the baseline with the "
              f"current tools instead of diffing across versions",
              file=sys.stderr)
        return 2
    if fv > SUPPORTED_SCHEMA:
        print(f"error: schema_version {fv} is newer than this script "
              f"supports ({SUPPORTED_SCHEMA}); update the script",
              file=sys.stderr)
        return 2

    fresh_is_sweep = "sweeps" in fresh
    if fresh_is_sweep != ("sweeps" in base):
        print("error: fresh and baseline are different formats "
              "(google-benchmark vs sweep export)", file=sys.stderr)
        return 2

    if fresh_is_sweep:
        return compare_sweeps(fresh, base, args.tolerance)
    return compare_benchmarks(fresh, base, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
