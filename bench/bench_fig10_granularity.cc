/**
 * @file
 * Paper Fig 10: 4 KB-cached random reads/writes with varying access
 * granularity (128 B ... 64 KB), one thread.
 *
 * Expected shape: at small sizes the NVDC-Cached device is
 * IOPS-limited and competitive with (paper: 1.15x faster than) the
 * baseline, because both are just loads through valid mappings; the
 * bandwidth jumps sharply between 1 KB and 4 KB (per-op software cost
 * amortizes over the driver's 4 KB mapping granularity); 64 KB reads
 * reach ~3 GB/s (paper: 3050 MB/s).
 */

#include "bench_common.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

void
BM_NvdcCached_Granularity(benchmark::State& state,
                          FioConfig::Pattern pattern)
{
    auto bs = static_cast<std::uint32_t>(state.range(0));
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeCachedSystem();
        FioConfig cfg;
        cfg.pattern = pattern;
        cfg.blockSize = bs;
        cfg.threads = 1;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 25 * kMs;
        cfg.regionBytes = cachedRegionBytes(*sys);
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        writeLatencyBreakdown("BM_NvdcCached_Granularity/" +
                              std::to_string(bs));
    }
    // Paper anchors: 2147 KIOPS at 128 B reads; 3050 MB/s at 64 KB.
    double pk = 0.0, pm = 0.0;
    if (pattern == FioConfig::Pattern::RandRead) {
        if (bs == 128)
            pk = 2147.0;
        if (bs == 65536)
            pm = 3050.0;
    }
    report(state, res, pm, pk);
}

void
BM_Baseline_Granularity(benchmark::State& state,
                        FioConfig::Pattern pattern)
{
    auto bs = static_cast<std::uint32_t>(state.range(0));
    workload::FioResult res;
    for (auto _ : state) {
        core::BaselineSystem sys(core::BaselineConfig::scaledBench());
        FioConfig cfg;
        cfg.pattern = pattern;
        cfg.blockSize = bs;
        cfg.threads = 1;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 25 * kMs;
        cfg.regionBytes = 2 * kGiB;
        res = runFio(sys.eq(), pmemAccess(sys), cfg);
    }
    // Paper anchor: ~1867 KIOPS at 128 B reads (the cached device is
    // 1.15x faster there).
    report(state, res, 0.0,
           (pattern == FioConfig::Pattern::RandRead && bs == 128)
               ? 1867.0
               : 0.0);
}

BENCHMARK_CAPTURE(BM_NvdcCached_Granularity, rand_read,
                  FioConfig::Pattern::RandRead)
    ->RangeMultiplier(4)->Range(128, 65536)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcCached_Granularity, rand_write,
                  FioConfig::Pattern::RandWrite)
    ->RangeMultiplier(4)->Range(128, 65536)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Baseline_Granularity, rand_read,
                  FioConfig::Pattern::RandRead)
    ->RangeMultiplier(4)->Range(128, 65536)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Baseline_Granularity, rand_write,
                  FioConfig::Pattern::RandWrite)
    ->RangeMultiplier(4)->Range(128, 65536)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

/** The paper's 8-thread small-access anchor: 10.9 MIOPS at 128 B. */
void
BM_NvdcCached_128B_8T(benchmark::State& state)
{
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeCachedSystem();
        FioConfig cfg;
        cfg.pattern = FioConfig::Pattern::RandRead;
        cfg.blockSize = 128;
        cfg.threads = 8;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 20 * kMs;
        cfg.regionBytes = cachedRegionBytes(*sys);
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        writeLatencyBreakdown("BM_NvdcCached_128B_8T");
    }
    report(state, res, 0.0, 10900.0);
}
BENCHMARK(BM_NvdcCached_128B_8T)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
