/**
 * @file
 * Paper §VII-B5 mixed-load IMDB benchmark: N concurrent users running
 * validating transactions. The paper reports 500 concurrent users
 * completing with zero corruption; this bench sweeps the user count
 * and reports transaction throughput and the validation-failure count
 * (which must stay 0).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "workload/mixedload.hh"

namespace nvdimmc::bench
{
namespace
{

void
BM_MixedLoad_Users(benchmark::State& state)
{
    auto users = static_cast<unsigned>(state.range(0));
    workload::MixedLoadResult res;
    for (auto _ : state) {
        // Validation requires real bytes end to end: detailed memcpy.
        BenchDevice sys;
        if (benchBackend() == backend::BackendKind::Pmem)
            sys.pmem = makePmemSystem([](core::BaselineConfig& c) {
                c.memcpy.bulkMode = false;
            });
        else
            sys.nvdc = std::make_unique<core::NvdimmcSystem>(
                benchSystemConfig([](core::SystemConfig& c) {
                    c.memcpy.bulkMode = false;
                }));

        workload::DataDevice dev;
        dev.capacityBytes = sys.nvdc
                                ? sys.nvdc->driver().capacityBytes()
                                : sys.pmem->driver().capacityBytes();
        dev.read = [&sys](Addr off, std::uint32_t len,
                          std::uint8_t* buf,
                          std::function<void()> done) {
            if (sys.nvdc)
                sys.nvdc->driver().read(off, len, buf,
                                        std::move(done));
            else
                sys.pmem->driver().read(off, len, buf,
                                        std::move(done));
        };
        dev.write = [&sys](Addr off, std::uint32_t len,
                           const std::uint8_t* data,
                           std::function<void()> done) {
            if (sys.nvdc)
                sys.nvdc->driver().write(off, len, data,
                                         std::move(done));
            else
                sys.pmem->driver().write(off, len, data,
                                         std::move(done));
        };

        workload::MixedLoadConfig mc;
        mc.users = users;
        mc.transactionsPerUser = 4;
        mc.recordBytes = 4096;
        mc.regionBytes = std::uint64_t{users} * 32 * 4096;
        res = workload::runMixedLoad(sys.eq(), dev, mc);
        if (!sys.hardwareClean())
            state.SkipWithError("bus conflict detected");
        writeTelemetry("BM_MixedLoad_Users/" + std::to_string(users),
                       sys);
        writeLatencyBreakdown("BM_MixedLoad_Users/" +
                              std::to_string(users));
    }
    state.counters["transactions"] =
        static_cast<double>(res.transactions);
    state.counters["validation_failures"] =
        static_cast<double>(res.validationFailures);
    state.counters["txn_per_sec"] =
        static_cast<double>(res.transactions) /
        ticksToSec(res.elapsed);
    state.counters["paper_failures"] = 0.0;
}

BENCHMARK(BM_MixedLoad_Users)
    ->Arg(50)->Arg(125)->Arg(250)->Arg(500)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
