/**
 * @file
 * Paper Fig 8: 4 KB random read/write IOPS and bandwidth with one
 * thread and queue depth 1, for the baseline (/dev/pmem0), the
 * NVDC-Cached case (footprint inside the 16 GB DRAM cache) and the
 * NVDC-Uncached case (cache full, every access pays writeback +
 * cachefill).
 */

#include "bench_common.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

const char*
patternTag(FioConfig::Pattern pattern)
{
    return pattern == FioConfig::Pattern::RandRead ? "rand_read_4k"
                                                   : "rand_write_4k";
}

FioConfig
baseCfg(FioConfig::Pattern pattern)
{
    FioConfig cfg;
    cfg.pattern = pattern;
    cfg.blockSize = 4096;
    cfg.threads = 1;
    cfg.rampTime = 2 * kMs;
    cfg.runTime = 30 * kMs;
    return cfg;
}

void
BM_Baseline(benchmark::State& state, FioConfig::Pattern pattern,
            double paper_mbps, double paper_kiops)
{
    workload::FioResult res;
    for (auto _ : state) {
        core::BaselineConfig bl = core::BaselineConfig::scaledBench();
        bl.channels = benchChannels();
        core::BaselineSystem sys(bl);
        FioConfig cfg = baseCfg(pattern);
        cfg.regionBytes = 2 * kGiB;
        res = runFio(sys.eq(), pmemAccess(sys), cfg);
    }
    report(state, res, paper_mbps, paper_kiops);
}

void
BM_NvdcCached(benchmark::State& state, FioConfig::Pattern pattern,
              double paper_mbps, double paper_kiops)
{
    workload::FioResult res;
    for (auto _ : state) {
        BenchDevice dev = makeCachedDevice();
        FioConfig cfg = baseCfg(pattern);
        cfg.regionBytes = dev.cachedRegion().second;
        res = runFio(dev.eq(), dev.access(), cfg);
        if (!dev.hardwareClean())
            state.SkipWithError("bus conflict detected");
        writeSystemStats(std::string("BM_NvdcCached/") +
                             patternTag(pattern),
                         dev);
        writeTelemetry(std::string("BM_NvdcCached/") +
                           patternTag(pattern),
                       dev);
        writeLatencyBreakdown(std::string("BM_NvdcCached/") +
                              patternTag(pattern));
    }
    report(state, res, paper_mbps, paper_kiops);
}

void
BM_NvdcUncached(benchmark::State& state, FioConfig::Pattern pattern,
                double paper_mbps, double paper_kiops)
{
    workload::FioResult res;
    for (auto _ : state) {
        BenchDevice dev = makeUncachedDevice();
        FioConfig cfg = baseCfg(pattern);
        auto [base, bytes] = dev.missRegion();
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.rampTime = 5 * kMs;
        cfg.runTime = 150 * kMs;
        res = runFio(dev.eq(), dev.access(), cfg);
        if (!dev.hardwareClean())
            state.SkipWithError("bus conflict detected");
        writeSystemStats(std::string("BM_NvdcUncached/") +
                             patternTag(pattern),
                         dev);
        writeTelemetry(std::string("BM_NvdcUncached/") +
                           patternTag(pattern),
                       dev);
        writeLatencyBreakdown(std::string("BM_NvdcUncached/") +
                              patternTag(pattern));
    }
    report(state, res, paper_mbps, paper_kiops);
}

/**
 * Channel-scaling companion to Fig 8: many threads driving random 4 KB
 * accesses so the *aggregate* bandwidth is bound by per-channel
 * resources (driver lock, iMC queues), not by one thread's QD1
 * latency. Run with --channels=N to scale the topology; with the
 * per-channel driver locks, aggregate bandwidth scales near-linearly
 * until the CPU side saturates.
 */
void
BM_NvdcCachedAggregate(benchmark::State& state,
                       FioConfig::Pattern pattern)
{
    workload::FioResult res;
    for (auto _ : state) {
        BenchDevice dev = makeCachedDevice();
        FioConfig cfg = baseCfg(pattern);
        cfg.threads = 16;
        cfg.regionBytes = dev.cachedRegion().second;
        res = runFio(dev.eq(), dev.access(), cfg);
        if (!dev.hardwareClean())
            state.SkipWithError("bus conflict detected");
        writeSystemStats(std::string("BM_NvdcCachedAggregate/") +
                             patternTag(pattern),
                         dev);
        writeLatencyBreakdown(std::string("BM_NvdcCachedAggregate/") +
                              patternTag(pattern));
    }
    report(state, res, 0.0, 0.0);
    state.counters["channels"] =
        static_cast<double>(benchChannels());
}

// Paper Fig 8 reported values: baseline 2606/2360 MB/s and 646/576
// KIOPS; cached 1835/1796 MB/s, 448/438 KIOPS; uncached 57.3/58.3
// MB/s, 13/14.2 KIOPS.
BENCHMARK_CAPTURE(BM_Baseline, rand_read_4k,
                  FioConfig::Pattern::RandRead, 2606.0, 646.0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Baseline, rand_write_4k,
                  FioConfig::Pattern::RandWrite, 2360.0, 576.0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcCached, rand_read_4k,
                  FioConfig::Pattern::RandRead, 1835.0, 448.0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcCached, rand_write_4k,
                  FioConfig::Pattern::RandWrite, 1796.0, 438.0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcUncached, rand_read_4k,
                  FioConfig::Pattern::RandRead, 57.3, 13.0)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcUncached, rand_write_4k,
                  FioConfig::Pattern::RandWrite, 58.3, 14.2)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcCachedAggregate, rand_read_4k,
                  FioConfig::Pattern::RandRead)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcCachedAggregate, rand_write_4k,
                  FioConfig::Pattern::RandWrite)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
