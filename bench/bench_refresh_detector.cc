/**
 * @file
 * Paper §VII-A: refresh-detection accuracy validation.
 *
 * The paper runs a validating STREAM "aging test" with the detector
 * always enabled and the FPGA accessing the DRAM behind every REFRESH
 * command, and observes zero inconsistencies and zero memory errors.
 * This bench reproduces that run and also quantifies the downside the
 * paper argues qualitatively: with an imperfect detector (injected
 * false-fire probability), bus collisions and DRAM protocol
 * violations appear.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "workload/stream.hh"

namespace nvdimmc::bench
{
namespace
{

void
BM_AgingTest_PerfectDetector(benchmark::State& state)
{
    workload::StreamResult res;
    std::uint64_t conflicts = 0, violations = 0, windows = 0;
    for (auto _ : state) {
        core::SystemConfig cfg = core::SystemConfig::scaledBench();
        cfg.memcpy.bulkMode = false; // Real data for validation.
        core::NvdimmcSystem sys(cfg);

        workload::DataDevice dev;
        dev.capacityBytes = sys.driver().capacityBytes();
        dev.read = [&sys](Addr off, std::uint32_t len,
                          std::uint8_t* buf,
                          std::function<void()> done) {
            sys.driver().read(off, len, buf, std::move(done));
        };
        dev.write = [&sys](Addr off, std::uint32_t len,
                           const std::uint8_t* data,
                           std::function<void()> done) {
            sys.driver().write(off, len, data, std::move(done));
        };

        workload::StreamConfig sc;
        sc.elements = 65536; // 512 KB per array.
        sc.iterations = 4;
        res = workload::runStream(sys.eq(), dev, sc);
        conflicts = sys.bus().conflictCount();
        violations = sys.dramDevice().stats().violations.value();
        windows = sys.nvmc()->windowsGranted();
    }
    state.counters["kernels_run"] =
        static_cast<double>(res.kernelsRun);
    state.counters["element_mismatches"] =
        static_cast<double>(res.elementMismatches);
    state.counters["bus_conflicts"] = static_cast<double>(conflicts);
    state.counters["dram_violations"] =
        static_cast<double>(violations);
    state.counters["nvmc_windows_used"] =
        static_cast<double>(windows);
    state.counters["paper_mismatches"] = 0.0;
}

void
BM_AgingTest_FaultyDetector(benchmark::State& state)
{
    double false_rate =
        static_cast<double>(state.range(0)) / 1000.0;
    std::uint64_t conflicts = 0, violations = 0;
    for (auto _ : state) {
        core::SystemConfig cfg = core::SystemConfig::scaledBench();
        cfg.memcpy.bulkMode = false;
        cfg.nvmc.detector.falseRate = false_rate;
        core::NvdimmcSystem sys(cfg);

        workload::DataDevice dev;
        dev.capacityBytes = sys.driver().capacityBytes();
        dev.read = [&sys](Addr off, std::uint32_t len,
                          std::uint8_t* buf,
                          std::function<void()> done) {
            sys.driver().read(off, len, buf, std::move(done));
        };
        dev.write = [&sys](Addr off, std::uint32_t len,
                           const std::uint8_t* data,
                           std::function<void()> done) {
            sys.driver().write(off, len, data, std::move(done));
        };

        workload::StreamConfig sc;
        sc.elements = 16384;
        sc.iterations = 2;
        workload::runStream(sys.eq(), dev, sc);
        conflicts = sys.bus().conflictCount();
        violations = sys.dramDevice().stats().violations.value();
    }
    state.counters["false_rate_permille"] =
        static_cast<double>(state.range(0));
    state.counters["bus_conflicts"] = static_cast<double>(conflicts);
    state.counters["dram_violations"] =
        static_cast<double>(violations);
}

BENCHMARK(BM_AgingTest_PerfectDetector)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AgingTest_FaultyDetector)
    ->Arg(1)->Arg(10)->Arg(100)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
