/**
 * @file
 * Paper Fig 11: TPC-H query execution time on the NVDIMM-C device
 * normalized to the baseline (SAP HANA storage-level access replay).
 *
 * Expected shape: scan-bound queries (Q1, Q6) a few times slower than
 * the baseline (paper Q1: 3.3x); small-random/subquery-bound queries
 * one to two orders of magnitude slower (paper Q20: 78x), because the
 * LRC-managed cache misses constantly and each miss costs a
 * writeback+cachefill pair over the CP channel.
 *
 * Scaled: the database is ~6x the DRAM cache (paper: 100 GB DB vs
 * 16 GB cache).
 */

#include "bench_common.hh"
#include "workload/tpch.hh"

namespace nvdimmc::bench
{
namespace
{

void
BM_Fig11_TpchQuery(benchmark::State& state)
{
    int qidx = static_cast<int>(state.range(0)) - 1;
    const auto& spec = workload::tpchQuerySpecs()
        [static_cast<std::size_t>(qidx)];

    double normalized = 0.0;
    for (auto _ : state) {
        workload::TpchRunConfig run_cfg;
        run_cfg.dbBytes = 3 * kGiB;
        run_cfg.maxAccesses = 6000;
        run_cfg.parallelism = 4;

        core::BaselineSystem base(core::BaselineConfig::scaledBench());
        Tick t_base = workload::runTpchQuery(
            base.eq(), pmemAccess(base), spec, run_cfg);

        // Device under test (--backend): cache warm from "loading"
        // the DB (full of dirty pages), as HANA's steady state would
        // be. --backend=pmem reduces to the baseline vs itself
        // (normalized_slowdown = 1), the sanity anchor.
        BenchDevice dev = makeUncachedDevice();
        Tick t_nvdc = workload::runTpchQuery(
            dev.eq(), dev.access(), spec, run_cfg);

        normalized = static_cast<double>(t_nvdc) /
                     static_cast<double>(t_base);
        writeLatencyBreakdown("BM_Fig11_TpchQuery/" +
                              std::to_string(spec.id));
    }
    state.counters["normalized_slowdown"] = normalized;
    if (spec.id == 1)
        state.counters["paper_slowdown"] = 3.3;
    if (spec.id == 20)
        state.counters["paper_slowdown"] = 78.0;
}

BENCHMARK(BM_Fig11_TpchQuery)->DenseRange(1, 22)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
