/**
 * @file
 * Paper Fig 9: 4 KB random performance vs thread count (iodepth =
 * thread count in the paper; our workers are closed-loop, one op in
 * flight each, so the thread count is the outstanding-op count).
 *
 * Expected shape: the baseline scales to ~8 threads and saturates
 * near the channel limit (paper: 2123 KIOPS / 8694 MB/s); NVDC-Cached
 * saturates lower (driver-lock bound; paper: ~1060 KIOPS reads at 8T,
 * 1127 KIOPS writes at 16T); NVDC-Uncached saturates by ~4 threads at
 * ~100 MB/s (CP queue depth 1).
 */

#include "bench_common.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

FioConfig
cfgFor(FioConfig::Pattern pattern, unsigned threads)
{
    FioConfig cfg;
    cfg.pattern = pattern;
    cfg.blockSize = 4096;
    cfg.threads = threads;
    cfg.rampTime = 2 * kMs;
    cfg.runTime = 25 * kMs;
    return cfg;
}

void
BM_Baseline_Threads(benchmark::State& state, FioConfig::Pattern pattern)
{
    auto threads = static_cast<unsigned>(state.range(0));
    workload::FioResult res;
    for (auto _ : state) {
        core::BaselineSystem sys(core::BaselineConfig::scaledBench());
        FioConfig cfg = cfgFor(pattern, threads);
        cfg.regionBytes = 2 * kGiB;
        res = runFio(sys.eq(), pmemAccess(sys), cfg);
    }
    // Paper peak: 2123 KIOPS / 8694 MB/s at 8 threads.
    report(state, res, threads == 8 ? 8694.0 : 0.0,
           threads == 8 ? 2123.0 : 0.0);
}

void
BM_NvdcCached_Threads(benchmark::State& state,
                      FioConfig::Pattern pattern)
{
    auto threads = static_cast<unsigned>(state.range(0));
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeCachedSystem();
        FioConfig cfg = cfgFor(pattern, threads);
        cfg.regionBytes = cachedRegionBytes(*sys);
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        writeLatencyBreakdown("BM_NvdcCached_Threads/" +
                              std::to_string(threads));
    }
    bool read = pattern == FioConfig::Pattern::RandRead;
    // Paper peaks: reads 1060 KIOPS / 4341 MB/s at 8T; writes 1127
    // KIOPS / 4615 MB/s at 16T.
    double pm = 0.0, pk = 0.0;
    if (read && threads == 8) {
        pm = 4341.0;
        pk = 1060.0;
    } else if (!read && threads == 16) {
        pm = 4615.0;
        pk = 1127.0;
    }
    report(state, res, pm, pk);
}

void
BM_NvdcUncached_Threads(benchmark::State& state,
                        FioConfig::Pattern pattern)
{
    auto threads = static_cast<unsigned>(state.range(0));
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeUncachedSystem();
        FioConfig cfg = cfgFor(pattern, threads);
        auto [base, bytes] = uncachedRegion(*sys);
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.rampTime = 5 * kMs;
        cfg.runTime = 120 * kMs;
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        writeLatencyBreakdown("BM_NvdcUncached_Threads/" +
                              std::to_string(threads));
    }
    // Paper: saturates at 4 threads, 24.3 KIOPS / 99.7 MB/s.
    report(state, res, threads == 4 ? 99.7 : 0.0,
           threads == 4 ? 24.3 : 0.0);
}

BENCHMARK_CAPTURE(BM_Baseline_Threads, rand_read,
                  FioConfig::Pattern::RandRead)
    ->RangeMultiplier(2)->Range(1, 16)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Baseline_Threads, rand_write,
                  FioConfig::Pattern::RandWrite)
    ->RangeMultiplier(2)->Range(1, 16)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcCached_Threads, rand_read,
                  FioConfig::Pattern::RandRead)
    ->RangeMultiplier(2)->Range(1, 16)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcCached_Threads, rand_write,
                  FioConfig::Pattern::RandWrite)
    ->RangeMultiplier(2)->Range(1, 16)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcUncached_Threads, rand_read,
                  FioConfig::Pattern::RandRead)
    ->RangeMultiplier(2)->Range(1, 16)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_NvdcUncached_Threads, rand_write,
                  FioConfig::Pattern::RandWrite)
    ->RangeMultiplier(2)->Range(1, 16)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
