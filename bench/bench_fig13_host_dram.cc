/**
 * @file
 * Paper Fig 13 (§VII-D2): impact of a faster refresh rate on the
 * host-side (Cached) DRAM performance. Doubling / quadrupling the
 * refresh rate gives the NVMC more windows but steals channel time
 * from the CPU.
 *
 * Paper: 4 KB cached random reads, 1 thread: 1835 MB/s at tREFI
 * (7.8 us) -> 1691 (-8%) at tREFI2 -> 1530 (-17%) at tREFI4; and
 * 3690 MB/s at 16 threads under tREFI4.
 */

#include "bench_common.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

double
paperFor(int trefi_ns, int threads)
{
    if (threads == 1) {
        switch (trefi_ns) {
          case 7800: return 1835.0;
          case 3900: return 1691.0;
          case 1950: return 1530.0;
        }
    }
    if (threads == 16 && trefi_ns == 1950)
        return 3690.0;
    return 0.0;
}

void
BM_Fig13_HostSide(benchmark::State& state)
{
    auto trefi_ns = static_cast<int>(state.range(0));
    auto threads = static_cast<unsigned>(state.range(1));
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeCachedSystem([&](core::SystemConfig& c) {
            c.refresh.tREFI = static_cast<Tick>(trefi_ns) * kNs;
            c.imc.refresh = c.refresh;
            c.nvmc.programmedRefresh = c.refresh;
        });
        FioConfig cfg;
        cfg.pattern = FioConfig::Pattern::RandRead;
        cfg.blockSize = 4096;
        cfg.threads = threads;
        cfg.regionBytes = cachedRegionBytes(*sys);
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 25 * kMs;
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        if (!sys->hardwareClean())
            state.SkipWithError("bus conflict detected");
        writeLatencyBreakdown("BM_Fig13_HostSide/" +
                              std::to_string(trefi_ns) + "/" +
                              std::to_string(threads));
    }
    report(state, res, paperFor(trefi_ns, static_cast<int>(threads)),
           0.0);
}

BENCHMARK(BM_Fig13_HostSide)
    ->Args({7800, 1})->Args({3900, 1})->Args({1950, 1})
    ->Args({7800, 16})->Args({1950, 16})
    ->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
