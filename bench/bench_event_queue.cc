/**
 * @file
 * Simulator-kernel microbenchmark: raw event throughput of
 * common/event_queue, independent of any device model.
 *
 * Four patterns, matching how the simulator actually drives the
 * queue:
 *
 *  - chain: one outstanding one-shot event at a time, each firing
 *    schedules the next (a controller state machine stepping).
 *  - churn4k: 4096 one-shot events outstanding, each firing
 *    reschedules itself with a varying delay (many in-flight ops).
 *  - schedule_cancel: schedule + cancel pairs that never fire
 *    (timeout guards, superseded wakeups).
 *  - intrusive_periodic: 64 owner-embedded events rescheduling
 *    themselves in place (iMC wakeups, controller steps).
 *  - mailbox_single / mailbox_batched: cross-shard mailbox delivery —
 *    a window's worth of pre-sorted messages admitted one heap push
 *    at a time vs as one staged batch (the coordinator's path), then
 *    drained interleaved with the queue's own churn.
 *  - shape_*: scheduler-shape probes pinning down the timing wheel's
 *    win/loss envelope — dense near-future (level-0 only), sparse
 *    far-future (cascade-dominated), cancel-heavy (lazy deletion),
 *    reschedule-heavy (in-place re-aiming).
 *
 * Every pattern reports events/sec via items_per_second. By default
 * the binary writes its results to BENCH_kernel.json in the working
 * directory (override with --benchmark_out=...).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <vector>

#include "common/event_queue.hh"

namespace nvdimmc::bench
{
namespace
{

void
BM_OneShotChain(benchmark::State& state)
{
    const std::uint64_t kEvents = 1'000'000;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::function<void()> step = [&] {
            if (++fired < kEvents)
                eq.scheduleAfter(100, step);
        };
        eq.scheduleAfter(100, step);
        eq.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                            state.iterations());
}

void
BM_OneShotChurn4k(benchmark::State& state)
{
    const std::uint64_t kOutstanding = 4096;
    const std::uint64_t kEvents = 1'000'000;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::vector<std::function<void()>> steps(kOutstanding);
        for (std::uint64_t i = 0; i < kOutstanding; ++i) {
            steps[i] = [&, i] {
                if (++fired < kEvents)
                    eq.scheduleAfter(100 + (fired * 7 + i) % 97,
                                     steps[i]);
            };
            eq.scheduleAfter(1 + i, steps[i]);
        }
        eq.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                            state.iterations());
}

void
BM_ScheduleCancel(benchmark::State& state)
{
    const std::uint64_t kPairs = 1'000'000;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sunk = 0;
        for (std::uint64_t i = 0; i < kPairs; ++i) {
            EventId id =
                eq.schedule(eq.now() + 1000 + i, [&] { ++sunk; });
            eq.cancel(id);
        }
        eq.runAll();
        benchmark::DoNotOptimize(sunk);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kPairs) *
                            state.iterations());
}

class PeriodicEvent final : public Event
{
  public:
    PeriodicEvent(EventQueue& eq, std::uint64_t& fired,
                  std::uint64_t budget, Tick period)
        : eq_(eq), fired_(fired), budget_(budget), period_(period)
    {
    }

    void
    process() override
    {
        if (++fired_ < budget_)
            eq_.scheduleAfter(*this, period_);
    }

    const char* name() const override { return "bench-periodic"; }

  private:
    EventQueue& eq_;
    std::uint64_t& fired_;
    std::uint64_t budget_;
    Tick period_;
};

void
BM_IntrusivePeriodic(benchmark::State& state)
{
    const std::uint64_t kEvents = 1'000'000;
    const std::size_t kActors = 64;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::deque<PeriodicEvent> actors; // Events pin their address.
        for (std::size_t i = 0; i < kActors; ++i) {
            actors.emplace_back(eq, fired, kEvents,
                                Tick{50 + 13 * (i % 7)});
            eq.schedule(actors.back(), 1 + i);
        }
        eq.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                            state.iterations());
}

/**
 * Shared body for the mailbox-delivery pair: rounds of `kWindow`
 * cross-shard messages land on a queue that also runs its own
 * self-rescheduling churn (the shard's device events), mirroring what
 * ShardCoordinator::deliverToShards feeds a shard each round.
 * @p batched picks the admission path: per-message schedule() heap
 * pushes vs one scheduleBatch() staged lane.
 */
void
runMailboxRounds(benchmark::State& state, bool batched,
                 std::uint64_t events)
{
    const std::uint64_t kWindow = 256; // Messages per round.
    std::uint64_t sbo = 0;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::uint64_t churn = 0;
        // Background churn: 32 device events stepping every round.
        std::vector<std::function<void()>> steps(32);
        for (std::uint64_t i = 0; i < steps.size(); ++i) {
            steps[i] = [&, i] {
                if (++churn < events)
                    eq.scheduleAfter(90 + (churn * 5 + i) % 31,
                                     steps[i]);
            };
            eq.scheduleAfter(1 + i, steps[i]);
        }
        std::vector<EventQueue::TimedCallback> batch;
        batch.reserve(kWindow);
        while (fired < events) {
            // Build one round's sorted delivery (stamps >= now + 100,
            // the link latency).
            Tick base = eq.now() + 100;
            batch.clear();
            for (std::uint64_t i = 0; i < kWindow; ++i)
                batch.push_back(EventQueue::TimedCallback{
                    base + i / 4, [&] { ++fired; }, 0});
            if (batched) {
                eq.scheduleBatch(batch);
            } else {
                for (auto& it : batch)
                    eq.schedule(it.when, std::move(it.fn));
                batch.clear();
            }
            eq.runWindow(base + kWindow);
        }
        eq.runAll();
        benchmark::DoNotOptimize(fired + churn);
        sbo = eq.sboOverflows();
    }
    // Callables that spilled the small-buffer inline storage (each one
    // is a heap round-trip on the hot path; should stay 0).
    state.counters["sbo_overflows"] = static_cast<double>(sbo);
    state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                            state.iterations());
}

void
BM_MailboxSingle(benchmark::State& state)
{
    runMailboxRounds(state, /*batched=*/false, 1'000'000);
}

void
BM_MailboxBatched(benchmark::State& state)
{
    runMailboxRounds(state, /*batched=*/true, 1'000'000);
}

// ---------------------------------------------------------------------
// Scheduler-shape microbenches: each isolates one region of the timing
// wheel's win/loss envelope so a future kernel change shows where it
// moved the needle.
// ---------------------------------------------------------------------

/**
 * Dense near-future: 512 events outstanding, every delay inside the
 * wheel's level-0 block (< 64 ticks). The wheel's best case — O(1)
 * bucket appends and FIFO drains, no cascades at all.
 */
void
BM_ShapeDenseNear(benchmark::State& state)
{
    const std::uint64_t kOutstanding = 512;
    const std::uint64_t kEvents = 1'000'000;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::vector<std::function<void()>> steps(kOutstanding);
        for (std::uint64_t i = 0; i < kOutstanding; ++i) {
            steps[i] = [&, i] {
                if (++fired < kEvents)
                    eq.scheduleAfter(1 + (fired * 3 + i) % 61,
                                     steps[i]);
            };
            eq.scheduleAfter(1 + i % 61, steps[i]);
        }
        eq.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                            state.iterations());
}

/**
 * Sparse far-future: a handful of events with multi-level deltas
 * (64K–16M ticks), so nearly every dispatch jumps the clock across
 * empty ranges and cascades entries down. The wheel's worst case —
 * the occupancy bitmasks and lazy cascades are what keep it O(levels)
 * instead of O(range).
 */
void
BM_ShapeSparseFar(benchmark::State& state)
{
    const std::uint64_t kOutstanding = 16;
    const std::uint64_t kEvents = 1'000'000;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::vector<std::function<void()>> steps(kOutstanding);
        for (std::uint64_t i = 0; i < kOutstanding; ++i) {
            steps[i] = [&, i] {
                if (++fired < kEvents) {
                    Tick delta = Tick{65536}
                                 << ((fired * 5 + i) % 9);
                    eq.scheduleAfter(delta, steps[i]);
                }
            };
            eq.scheduleAfter(65536 + i * 4096, steps[i]);
        }
        eq.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                            state.iterations());
}

/**
 * Cancel-heavy: 7 of 8 scheduled events are cancelled before they
 * can fire (timeout guards). Generation-stamped lazy deletion is what
 * keeps the cancels O(1); the dead entries surface (and are skipped)
 * in bucket compaction.
 */
void
BM_ShapeCancelHeavy(benchmark::State& state)
{
    const std::uint64_t kEvents = 1'000'000;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::uint64_t scheduled = 0;
        std::function<void()> step = [&] {
            ++fired;
            for (int g = 0; g < 7; ++g) {
                EventId guard = eq.scheduleAfter(
                    500 + g, [&fired] { fired += 1000; });
                eq.cancel(guard);
            }
            if ((scheduled += 8) < kEvents)
                eq.scheduleAfter(100, step);
        };
        eq.scheduleAfter(100, step);
        eq.runAll();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                            state.iterations());
}

/**
 * Reschedule-heavy: 256 intrusive events each re-aimed (deschedule +
 * schedule, new sequence number) several times per fire — the iMC
 * wakeup pattern when commands keep arriving and push the next
 * service tick out.
 */
void
BM_ShapeRescheduleHeavy(benchmark::State& state)
{
    const std::uint64_t kEvents = 1'000'000;
    const std::size_t kActors = 256;
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        std::deque<PeriodicEvent> actors;
        for (std::size_t i = 0; i < kActors; ++i) {
            actors.emplace_back(eq, fired, kEvents,
                                Tick{60 + 7 * (i % 11)});
            eq.schedule(actors.back(), 1 + i);
        }
        std::uint64_t moved = 0;
        while (fired < kEvents) {
            eq.runFor(40);
            // Re-aim a rotating subset mid-flight.
            for (std::size_t k = 0; k < 32; ++k) {
                auto& ev = actors[(moved + k * 8) % kActors];
                if (ev.scheduled())
                    eq.reschedule(ev, eq.now() + 30 +
                                          (moved + k) % 50);
            }
            ++moved;
        }
        eq.runAll();
        benchmark::DoNotOptimize(fired + moved);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(kEvents) *
                            state.iterations());
}

BENCHMARK(BM_OneShotChain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OneShotChurn4k)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScheduleCancel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_IntrusivePeriodic)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MailboxSingle)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MailboxBatched)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShapeDenseNear)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShapeSparseFar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShapeCancelHeavy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ShapeRescheduleHeavy)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

int
main(int argc, char** argv)
{
    // Default to a JSON dump the docs/CI can pick up; an explicit
    // --benchmark_out on the command line wins.
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
            has_out = true;
    }
    std::vector<char*> args(argv, argv + argc);
    char out_arg[] = "--benchmark_out=BENCH_kernel.json";
    char fmt_arg[] = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(out_arg);
        args.push_back(fmt_arg);
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
