/**
 * @file
 * NVDIMM-variant comparison (paper §VIII): the baseline emulated
 * NVDIMM (NVDIMM-N-like: all DRAM), NVDIMM-C cached/uncached, and
 * NVDIMM-F (block-only NAND, no DRAM cache) on 4 KB random reads and
 * writes. This is the quantitative version of the paper's
 * related-work positioning: NVDIMM-C gives DRAM-class hits that
 * NVDIMM-F cannot, while both collapse to NAND economics on misses.
 */

#include "bench_common.hh"
#include "driver/nvdimmf_driver.hh"
#include "ftl/ftl.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

void
BM_Variant_NvdimmF(benchmark::State& state, FioConfig::Pattern pattern)
{
    workload::FioResult res;
    for (auto _ : state) {
        // NVDIMM-F: its own channel (an iMC), NAND + FTL, no cache.
        EventQueue eq;
        dram::AddressMap map(512 * kMiB);
        core::SystemConfig scfg = core::SystemConfig::scaledBench();
        auto nand = std::make_unique<nvm::ZNand>(eq, scfg.znand);
        auto ftl = std::make_unique<ftl::Ftl>(eq, *nand, scfg.ftl);
        // A used device: reads hit real NAND pages.
        ftl->preconditionSequentialFill(2 * kGiB / 4096);

        dram::DramDevice ch_dev(map, dram::Ddr4Timing::ddr4_1600(),
                                false, false);
        bus::MemoryBus bus(eq, ch_dev, false);
        imc::ImcConfig icfg;
        icfg.refresh = dram::RefreshRegisters::standard();
        imc::Imc imc(eq, bus, icfg);

        driver::NvdimmFDriver drv(eq, *ftl, imc,
                                  driver::NvdimmFConfig{});

        FioConfig cfg;
        cfg.pattern = pattern;
        cfg.blockSize = 4096;
        cfg.threads = 1;
        cfg.regionBytes = 2 * kGiB;
        cfg.rampTime = 5 * kMs;
        cfg.runTime = 100 * kMs;
        workload::FioJob job(
            eq,
            [&drv](Addr off, std::uint32_t len, bool is_write,
                   std::function<void()> done) {
                if (is_write)
                    drv.write(off, len, nullptr, std::move(done));
                else
                    drv.read(off, len, nullptr, std::move(done));
            },
            cfg);
        res = job.run();
    }
    report(state, res, 0.0, 0.0);
}

void
BM_Variant_NvdimmC_Cached(benchmark::State& state,
                          FioConfig::Pattern pattern)
{
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeCachedSystem();
        FioConfig cfg;
        cfg.pattern = pattern;
        cfg.blockSize = 4096;
        cfg.threads = 1;
        cfg.regionBytes = cachedRegionBytes(*sys);
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 25 * kMs;
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        writeLatencyBreakdown("BM_Variant_NvdimmC_Cached");
    }
    report(state, res, 0.0, 0.0);
}

BENCHMARK_CAPTURE(BM_Variant_NvdimmF, rand_read,
                  FioConfig::Pattern::RandRead)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Variant_NvdimmF, rand_write,
                  FioConfig::Pattern::RandWrite)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Variant_NvdimmC_Cached, rand_read,
                  FioConfig::Pattern::RandRead)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Variant_NvdimmC_Cached, rand_write,
                  FioConfig::Pattern::RandWrite)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
