/**
 * @file
 * Paper Fig 7: sequential-write bandwidth over time while copying a
 * large file from the SATA SSD into /dev/nvdc0.
 *
 * Expected shape: a plateau at the SSD's sequential read speed
 * (paper: 518 MB/s) while free DRAM-cache slots last, collapsing to
 * the writeback+cachefill rate (paper: 68 MB/s) once the cache is
 * full. Scaled run: 1.25 GiB file into a 512 MiB cache (the paper
 * copies 20 GB into 16 GB).
 */

#include "bench_common.hh"
#include "workload/filecopy.hh"
#include "workload/ssd.hh"

namespace nvdimmc::bench
{
namespace
{

void
BM_Fig7_FileCopy(benchmark::State& state)
{
    workload::FileCopyResult res;
    for (auto _ : state) {
        core::SystemConfig syscfg = core::SystemConfig::scaledBench();
        armSpanAuditor(syscfg);
        core::NvdimmcSystem sys(syscfg);
        workload::Ssd ssd(sys.eq(), workload::Ssd::Params{});

        workload::FileCopyConfig cfg;
        cfg.fileBytes = 1280 * kMiB;
        cfg.chunkBytes = 256 * 1024;
        cfg.sampleInterval = 50 * kMs;
        cfg.cacheBytes =
            std::uint64_t{sys.layout().slotCount()} * 4096;
        res = workload::runFileCopy(sys.eq(), ssd,
                                    nvdcAccess(sys), cfg);
        if (!sys.hardwareClean())
            state.SkipWithError("bus conflict detected");
        writeLatencyBreakdown("BM_Fig7_FileCopy");
    }
    state.counters["cached_MBps"] = res.cachedPhaseMBps;
    state.counters["uncached_MBps"] = res.uncachedPhaseMBps;
    state.counters["paper_cached_MBps"] = 518.0;
    state.counters["paper_uncached_MBps"] = 68.0;
    state.counters["elapsed_sim_s"] = ticksToSec(res.elapsed);
}

BENCHMARK(BM_Fig7_FileCopy)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
