/**
 * @file
 * Paper §VII-C ablations: the paper lists five changes an ASIC
 * implementation would make to fix the Uncached slowdown. Each is a
 * switch in this model, so the list becomes a measurable ablation of
 * 4 KB random uncached reads (1 thread):
 *
 *  (1) eliminate the CPU-controlled data paths  -> FirmwareConfig::asic()
 *  (2) multiple CP commands at a time           -> cpQueueDepth
 *  (3) 8 KB per refresh window                  -> bytesPerWindow
 *  (4) merged writeback+cachefill command       -> mergedWbCf
 *  (5) faster media                             -> STT-MRAM backend
 *  (+) dirty tracking (extension: read-mostly workloads skip the
 *      writeback entirely; the PoC assumes everything is dirty)
 */

#include "bench_common.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

workload::FioResult
runUncached(std::function<void(core::SystemConfig&)> tweak,
            unsigned threads = 1, const char* tag = nullptr)
{
    auto sys = makeUncachedSystem(std::move(tweak));
    FioConfig cfg;
    cfg.pattern = FioConfig::Pattern::RandRead;
    cfg.blockSize = 4096;
    cfg.threads = threads;
    auto [base, bytes] = uncachedRegion(*sys);
    cfg.regionOffset = base;
    cfg.regionBytes = bytes;
    cfg.rampTime = 5 * kMs;
    cfg.runTime = 120 * kMs;
    workload::FioResult res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
    if (tag)
        writeLatencyBreakdown(tag);
    return res;
}

void
BM_Ablation_Poc(benchmark::State& state)
{
    workload::FioResult res;
    for (auto _ : state)
        res = runUncached({}, 1, "BM_Ablation_Poc");
    report(state, res, 57.3, 13.0);
}

void
BM_Ablation_AsicFirmware(benchmark::State& state)
{
    workload::FioResult res;
    for (auto _ : state) {
        res = runUncached([](core::SystemConfig& c) {
            c.nvmc.firmware = nvmc::FirmwareConfig::asic();
        });
    }
    report(state, res, 0.0, 0.0);
}

void
BM_Ablation_CpQueueDepth(benchmark::State& state)
{
    auto depth = static_cast<std::uint32_t>(state.range(0));
    workload::FioResult res;
    for (auto _ : state) {
        res = runUncached(
            [&](core::SystemConfig& c) {
                c.driver.cpQueueDepth = depth;
                c.nvmc.firmware.cpQueueDepth = depth;
            },
            /*threads=*/4);
    }
    state.counters["depth"] = depth;
    report(state, res, 0.0, 0.0);
}

void
BM_Ablation_8KWindow(benchmark::State& state)
{
    workload::FioResult res;
    for (auto _ : state) {
        res = runUncached([](core::SystemConfig& c) {
            c.nvmc.bytesPerWindow = 8192;
        });
    }
    report(state, res, 0.0, 0.0);
}

void
BM_Ablation_MergedCommand(benchmark::State& state)
{
    workload::FioResult res;
    for (auto _ : state) {
        res = runUncached([](core::SystemConfig& c) {
            c.driver.mergedWbCf = true;
        });
    }
    report(state, res, 0.0, 0.0);
}

void
BM_Ablation_SttMramMedia(benchmark::State& state)
{
    workload::FioResult res;
    for (auto _ : state) {
        res = runUncached([](core::SystemConfig& c) {
            c.media = core::MediaKind::SttMram;
            c.mediaBytes = 4 * kGiB;
        });
    }
    report(state, res, 0.0, 0.0);
}

void
BM_Ablation_DirtyTracking(benchmark::State& state)
{
    // Read-only uncached workload with clean preconditioning: dirty
    // tracking removes every writeback.
    workload::FioResult res;
    for (auto _ : state) {
        core::SystemConfig cfg = core::SystemConfig::scaledBench();
        cfg.driver.trackDirty = true;
        core::NvdimmcSystem sys(cfg);
        sys.precondition(0, sys.layout().slotCount(), false);
        FioConfig fio;
        fio.pattern = FioConfig::Pattern::RandRead;
        fio.blockSize = 4096;
        fio.threads = 1;
        auto [base, bytes] = uncachedRegion(sys);
        fio.regionOffset = base;
        fio.regionBytes = bytes;
        fio.rampTime = 5 * kMs;
        fio.runTime = 120 * kMs;
        res = runFio(sys.eq(), nvdcAccess(sys), fio);
    }
    report(state, res, 0.0, 0.0);
}

void
BM_Ablation_Prefetch(benchmark::State& state)
{
    // Paper §VII-C's last pointer (ref [37]): prefetch-based NVM
    // accesses. Sequential uncached reads with the driver's
    // next-page prefetcher; needs CP queue depth > 1 to overlap.
    bool enabled = state.range(0) != 0;
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeUncachedSystem([&](core::SystemConfig& c) {
            c.driver.trackDirty = true;
            c.driver.prefetchEnabled = enabled;
            c.driver.prefetchDepth = 2;
            c.driver.cpQueueDepth = 4;
            c.nvmc.firmware.cpQueueDepth = 4;
        });
        FioConfig cfg;
        cfg.pattern = FioConfig::Pattern::SeqRead;
        cfg.blockSize = 4096;
        cfg.threads = 1;
        auto [base, bytes] = uncachedRegion(*sys);
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.rampTime = 5 * kMs;
        cfg.runTime = 120 * kMs;
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
    }
    state.counters["prefetch"] = enabled ? 1.0 : 0.0;
    report(state, res, 0.0, 0.0);
}

void
BM_Ablation_Everything(benchmark::State& state)
{
    // All five §VII-C optimizations at once.
    workload::FioResult res;
    for (auto _ : state) {
        res = runUncached(
            [](core::SystemConfig& c) {
                c.nvmc.firmware = nvmc::FirmwareConfig::asic();
                c.nvmc.firmware.cpQueueDepth = 4;
                c.driver.cpQueueDepth = 4;
                c.nvmc.bytesPerWindow = 8192;
                c.driver.mergedWbCf = true;
                c.media = core::MediaKind::SttMram;
                c.mediaBytes = 4 * kGiB;
            },
            /*threads=*/4);
    }
    report(state, res, 0.0, 0.0);
}

BENCHMARK(BM_Ablation_Poc)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_AsicFirmware)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_CpQueueDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_8KWindow)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_MergedCommand)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_SttMramMedia)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_DirtyTracking)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_Prefetch)->Arg(0)->Arg(1)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_Everything)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
