/**
 * @file
 * Shared scaffolding for the paper-reproduction benches.
 *
 * Every bench binary regenerates one table/figure from the paper's
 * evaluation (§VII) on the scaled bench configuration. Counters named
 * "paper_*" carry the paper's reported value for side-by-side
 * comparison; see EXPERIMENTS.md for the discussion. System-building
 * helpers live in bench_systems.hh (benchmark-harness-free, also used
 * by the sweep runner).
 */

#ifndef NVDIMMC_BENCH_BENCH_COMMON_HH
#define NVDIMMC_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include "bench_systems.hh"

namespace nvdimmc::bench
{

/** Attach measured-vs-paper counters to a benchmark state. */
inline void
report(benchmark::State& state, const workload::FioResult& res,
       double paper_mbps, double paper_kiops)
{
    state.counters["MBps"] = res.mbps;
    state.counters["KIOPS"] = res.kiops;
    state.counters["lat_us"] = ticksToUs(res.meanLatency);
    if (paper_mbps > 0)
        state.counters["paper_MBps"] = paper_mbps;
    if (paper_kiops > 0)
        state.counters["paper_KIOPS"] = paper_kiops;
}

} // namespace nvdimmc::bench

#endif // NVDIMMC_BENCH_BENCH_COMMON_HH
