/**
 * @file
 * Shared scaffolding for the paper-reproduction benches.
 *
 * Every bench binary regenerates one table/figure from the paper's
 * evaluation (§VII) on the scaled bench configuration. Counters named
 * "paper_*" carry the paper's reported value for side-by-side
 * comparison; see EXPERIMENTS.md for the discussion. System-building
 * helpers live in bench_systems.hh (benchmark-harness-free, also used
 * by the sweep runner).
 */

#ifndef NVDIMMC_BENCH_BENCH_COMMON_HH
#define NVDIMMC_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_systems.hh"
#include "common/span.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace nvdimmc::bench
{

/** Attach measured-vs-paper counters to a benchmark state. */
inline void
report(benchmark::State& state, const workload::FioResult& res,
       double paper_mbps, double paper_kiops)
{
    state.counters["MBps"] = res.mbps;
    state.counters["KIOPS"] = res.kiops;
    state.counters["lat_us"] = ticksToUs(res.meanLatency);
    if (paper_mbps > 0)
        state.counters["paper_MBps"] = paper_mbps;
    if (paper_kiops > 0)
        state.counters["paper_KIOPS"] = paper_kiops;
}

/** Observability switches a bench binary accepts on top of the
 *  Google Benchmark flags (stripped before benchmark::Initialize):
 *
 *      --trace[=path]   capture a Chrome trace_event JSON of the whole
 *                       run (default trace.json); open in Perfetto.
 *      --stats[=path]   append one JSON line per benchmark with the
 *                       system's full hierarchical stat dump
 *                       (default stats.jsonl).
 *      --channels=N     build every system with N memory channels
 *                       (N complete NVDIMM-C modules, page-interleaved;
 *                       default 1 = the PoC machine).
 *      --backend=nvdimmc|cxl|pmem
 *                       media-transport backend every system is built
 *                       with: the paper's CP-over-DDR4 module
 *                       (default), the CXL.mem hybrid device (same
 *                       DRAM cache + Z-NAND behind a modeled link, no
 *                       refresh windows, 256 B interleave), or the
 *                       emulated-pmem baseline machine.
 *      --threads=N|auto run the sharded parallel-in-time kernel with
 *                       N executors (auto = one per channel); results
 *                       are byte-identical for every N >= 1. Default:
 *                       the classic serial kernel.
 *      --latency-breakdown[=path]
 *                       record request spans and print a per-op-class
 *                       per-phase latency table after each benchmark,
 *                       appending a JSON line to @p path (default
 *                       latency_breakdown.jsonl). Deterministic: the
 *                       output is byte-identical for every --threads.
 *      --telemetry[=path]
 *                       sample the deterministic time-series telemetry
 *                       every 4 x tREFI of simulated time and append
 *                       one JSONL series per benchmark (default
 *                       telemetry.jsonl). Implies span recording (the
 *                       windowed SLO percentiles ride on it). Output
 *                       is byte-identical for every --threads >= 1.
 *      --flight-dump[=path]
 *                       arm the crash flight recorder (last-N spans +
 *                       last-K telemetry intervals) and dump it at
 *                       exit (default flight.json). It also dumps
 *                       automatically on span-audit failure or fault
 *                       campaign corruption.
 *      --trace-max-events=N
 *                       override the tracer's in-memory event cap.
 */
struct Observability
{
    bool traceOn = false;
    std::string tracePath = "trace.json";
    std::string statsPath; ///< Empty = stats export off.
    bool breakdownOn = false;
    std::string breakdownPath = "latency_breakdown.jsonl";
    bool telemetryOn = false;
    std::string telemetryPath = "telemetry.jsonl";
    bool flightOn = false;
    std::string flightPath = "flight.json";
    std::uint64_t traceMaxEvents = 0; ///< 0 = tracer default.
};

inline Observability&
observability()
{
    static Observability obs;
    return obs;
}

/**
 * Strip --trace / --stats from argv (call before
 * benchmark::Initialize) and start the tracer if asked. Tracing is
 * process-wide and single-threaded; benches run systems serially.
 */
inline void
initObservability(int* argc, char** argv)
{
    Observability& obs = observability();
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        const char* a = argv[i];
        if (std::strcmp(a, "--trace") == 0) {
            obs.traceOn = true;
        } else if (std::strncmp(a, "--trace=", 8) == 0) {
            obs.traceOn = true;
            obs.tracePath = a + 8;
        } else if (std::strcmp(a, "--stats") == 0) {
            obs.statsPath = "stats.jsonl";
        } else if (std::strncmp(a, "--stats=", 8) == 0) {
            obs.statsPath = a + 8;
        } else if (std::strcmp(a, "--latency-breakdown") == 0) {
            obs.breakdownOn = true;
        } else if (std::strncmp(a, "--latency-breakdown=", 20) == 0) {
            obs.breakdownOn = true;
            obs.breakdownPath = a + 20;
        } else if (std::strcmp(a, "--telemetry") == 0) {
            obs.telemetryOn = true;
        } else if (std::strncmp(a, "--telemetry=", 12) == 0) {
            obs.telemetryOn = true;
            obs.telemetryPath = a + 12;
        } else if (std::strcmp(a, "--flight-dump") == 0) {
            obs.flightOn = true;
        } else if (std::strncmp(a, "--flight-dump=", 14) == 0) {
            obs.flightOn = true;
            obs.flightPath = a + 14;
        } else if (std::strncmp(a, "--trace-max-events=", 19) == 0) {
            obs.traceMaxEvents = std::strtoull(a + 19, nullptr, 10);
        } else if (std::strncmp(a, "--channels=", 11) == 0) {
            int n = std::atoi(a + 11);
            if (n >= 1)
                benchChannels() = static_cast<std::uint32_t>(n);
        } else if (std::strncmp(a, "--backend=", 10) == 0) {
            backend::BackendKind kind;
            if (!backend::parseBackendKind(a + 10, kind)) {
                std::cerr << "unknown --backend '" << (a + 10)
                          << "' (expected nvdimmc, cxl or pmem)\n";
                std::exit(1);
            }
            benchBackend() = kind;
        } else if (std::strcmp(a, "--threads=auto") == 0) {
            benchThreads() = kBenchThreadsAuto;
        } else if (std::strncmp(a, "--threads=", 10) == 0) {
            int n = std::atoi(a + 10);
            if (n >= 0)
                benchThreads() = static_cast<std::uint32_t>(n);
        } else {
            argv[out++] = argv[i];
        }
    }
    *argc = out;
    if (obs.traceOn)
        trace::start(obs.tracePath, obs.traceMaxEvents);
    if (obs.breakdownOn)
        span::enable();
    if (obs.telemetryOn) {
        // The windowed SLO percentiles drain the span layer's
        // interval-reset histograms, so telemetry implies spans.
        span::enable();
        telemetry::enable();
    }
    if (obs.flightOn) {
        span::enable(); // The span ring is the recorder's substrate.
        telemetry::flightArm(obs.flightPath);
    }
}

/** Append one {"bench": name, "_meta": {...}, "stats": {...}} line
 *  to the stats JSONL file (no-op unless --stats was given). The
 *  _meta.schema_version stamp lets check_bench_regression.py refuse
 *  cross-version comparisons instead of silently diffing. */
inline void
writeSystemStats(const std::string& name,
                 const core::NvdimmcSystem& sys)
{
    const Observability& obs = observability();
    if (obs.statsPath.empty())
        return;
    std::ofstream os(obs.statsPath, std::ios::app);
    if (!os)
        return;
    os << "{\"bench\":\"" << name
       << "\",\"_meta\":{\"schema_version\":"
       << telemetry::kSchemaVersion << "},\"stats\":";
    sys.dumpStatsJson(os);
    os << "}\n";
}

/** Same, for a backend-polymorphic device (tags the line with the
 *  backend so head-to-head runs can be merged from one JSONL). */
inline void
writeSystemStats(const std::string& name, const BenchDevice& dev)
{
    const Observability& obs = observability();
    if (obs.statsPath.empty())
        return;
    std::ofstream os(obs.statsPath, std::ios::app);
    if (!os)
        return;
    os << "{\"bench\":\"" << name << "\",\"backend\":\""
       << backend::toString(benchBackend())
       << "\",\"_meta\":{\"schema_version\":"
       << telemetry::kSchemaVersion << "},\"stats\":";
    dev.dumpStatsJson(os);
    os << "}\n";
}

/** Append the system's telemetry series (header + one line per
 *  interval) to the telemetry JSONL file (no-op unless --telemetry
 *  was given). Call while the system is still alive, right after the
 *  workload finishes. */
inline void
writeTelemetry(const std::string& name, core::NvdimmcSystem& sys)
{
    const Observability& obs = observability();
    if (!obs.telemetryOn || !sys.telemetryCollector())
        return;
    std::ofstream os(obs.telemetryPath, std::ios::app);
    if (os)
        sys.telemetryCollector()->writeJsonl(os, name);
}

/** Same, for a backend-polymorphic device. */
inline void
writeTelemetry(const std::string& name, BenchDevice& dev)
{
    const Observability& obs = observability();
    if (!obs.telemetryOn || !dev.telemetryCollector())
        return;
    std::ofstream os(obs.telemetryPath, std::ios::app);
    if (os)
        dev.telemetryCollector()->writeJsonl(os, name);
}

/**
 * Print the per-op-class per-phase latency table for the spans
 * recorded since the last call, append the JSON block to the
 * breakdown file, then reset the recorder so the next benchmark
 * starts clean (no-op unless --latency-breakdown was given).
 */
inline void
writeLatencyBreakdown(const std::string& name)
{
    const Observability& obs = observability();
    if (!obs.breakdownOn)
        return;
    span::writeBreakdownTable(std::cout, name);
    if (!obs.breakdownPath.empty()) {
        std::ofstream os(obs.breakdownPath, std::ios::app);
        if (os) {
            os << "{\"bench\":\"" << name << "\",\"breakdown\":";
            span::writeBreakdownJson(os);
            os << "}\n";
        }
    }
    span::reset();
}

/** Flush the trace file and the armed flight recorder (no-ops
 *  unless --trace / --flight-dump were given). */
inline void
finishObservability()
{
    if (observability().traceOn)
        trace::stop();
    if (observability().flightOn)
        telemetry::flightDump("flag");
}

} // namespace nvdimmc::bench

/** BENCHMARK_MAIN() plus the --trace / --stats observability flags
 *  (stripped from argv before Google Benchmark sees them). */
#define NVDIMMC_BENCH_MAIN()                                          \
    int main(int argc, char** argv)                                   \
    {                                                                 \
        nvdimmc::bench::initObservability(&argc, argv);               \
        benchmark::Initialize(&argc, argv);                           \
        if (benchmark::ReportUnrecognizedArguments(argc, argv))       \
            return 1;                                                 \
        benchmark::RunSpecifiedBenchmarks();                          \
        benchmark::Shutdown();                                        \
        nvdimmc::bench::finishObservability();                        \
        return 0;                                                     \
    }                                                                 \
    int main(int, char**)

#endif // NVDIMMC_BENCH_BENCH_COMMON_HH
