/**
 * @file
 * Parallel sweep runner: runs the points of the config-sweep benches
 * (ablation, variants, cache_policy) as independent simulations
 * spread across a thread pool.
 *
 * Each point builds its own EventQueue and system, so simulations
 * share no mutable state and the results are byte-identical to a
 * serial run regardless of --jobs; `--verify` proves that by running
 * the sweep twice (serial, then parallel) and comparing the formatted
 * results.
 *
 * The "parallel" sweep exercises the other axis of parallelism — the
 * sharded parallel-in-time kernel *inside* one simulation — proving
 * executors=N byte-identical to executors=1 and recording the
 * threads x channels wall-clock scaling study (JSON `perf` blocks).
 *
 * The "latency" sweep proves the request-span latency breakdown is
 * deterministic: executors=1 and executors=N must export byte-identical
 * per-phase JSON, and the span auditor must pass on both runs.
 *
 * The "telemetry" sweep proves the time-series telemetry export is
 * deterministic: the same machine and workload at executors in
 * {1, 2, N} must export byte-identical telemetry JSONL (interval
 * ticks, exact-integer probe values, windowed SLO percentiles).
 *
 * The "backends" sweep runs the media-transport seam's contract:
 * per-backend (nvdimmc, cxl, pmem) byte-identity verify points across
 * executor counts, plus the fig8/fig11/mixedload head-to-head whose
 * JSON export is committed as BENCH_backends.json.
 *
 * Usage:
 *   sweep_runner [--sweep ablation|variants|cache_policy|channels
 *                        |parallel|latency|telemetry|faults|backends
 *                        |all]
 *                [--jobs N] [--json FILE] [--verify] [--list]
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_systems.hh"
#include "driver/dram_cache.hh"
#include "driver/nvdimmf_driver.hh"
#include "fault/campaign.hh"
#include "ftl/ftl.hh"
#include "workload/mixedload.hh"
#include "workload/tpch.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

/**
 * One sweep point's outcome: named metrics plus host wall time.
 * `perf` carries host-machine measurements (wall clocks, speedups);
 * they land in the JSON export only, never in formatPoint, so the
 * --verify serial-vs-parallel comparison stays deterministic.
 */
struct PointResult
{
    std::vector<std::pair<std::string, double>> metrics;
    std::vector<std::pair<std::string, double>> perf;
    std::string error;
    double wallMs = 0.0;
};

struct SweepPoint
{
    std::string name;
    std::function<PointResult()> run;
};

struct Sweep
{
    std::string name;
    std::vector<SweepPoint> points;
    /** Points use process-global state (the span recorder); run them
     *  on one worker regardless of --jobs. */
    bool serialOnly = false;
};

PointResult
fioPoint(const workload::FioResult& res)
{
    PointResult out;
    out.metrics = {{"MBps", res.mbps},
                   {"KIOPS", res.kiops},
                   {"lat_us", ticksToUs(res.meanLatency)},
                   {"ops", static_cast<double>(res.ops)}};
    return out;
}

/**
 * Append the hierarchical observability stats the sweep reports
 * alongside throughput. Values are deterministic, so they take part
 * in the --verify serial-vs-parallel comparison.
 */
void
appendSystemStats(PointResult& out, const core::NvdimmcSystem& sys)
{
    static const char* const kReported[] = {
        "nvmc.window.utilization_pct",
        "nvmc.dma.bytes_moved",
        "imc.refresh.overhead_pct",
        "cache.hit_rate",
        "dram.refreshes",
    };
    StatRegistry reg;
    sys.registerStats(reg);
    for (const auto& [name, value] : reg.collect()) {
        for (const char* want : kReported) {
            if (name == want)
                out.metrics.emplace_back(name, value);
        }
        // Per-channel refresh overhead (ch<i>.imc.refresh.overhead_pct)
        // only exists on multi-channel topologies; report it so the
        // channels sweep shows the stagger across modules.
        if (name.rfind("ch", 0) == 0 &&
            name.find(".imc.refresh.overhead_pct") != std::string::npos)
            out.metrics.emplace_back(name, value);
    }
}

/** The uncached 4 KB random-read point bench_ablation sweeps. */
PointResult
runUncachedPoint(std::function<void(core::SystemConfig&)> tweak,
                 unsigned threads = 1)
{
    auto sys = makeUncachedSystem(std::move(tweak));
    FioConfig cfg;
    cfg.pattern = FioConfig::Pattern::RandRead;
    cfg.blockSize = 4096;
    cfg.threads = threads;
    auto [base, bytes] = uncachedRegion(*sys);
    cfg.regionOffset = base;
    cfg.regionBytes = bytes;
    cfg.rampTime = 5 * kMs;
    cfg.runTime = 120 * kMs;
    PointResult out = fioPoint(runFio(sys->eq(), nvdcAccess(*sys), cfg));
    appendSystemStats(out, *sys);
    return out;
}

Sweep
makeAblationSweep()
{
    Sweep sweep{"ablation", {}};
    auto& p = sweep.points;
    p.push_back({"poc", [] { return runUncachedPoint({}); }});
    p.push_back({"asic_firmware", [] {
        return runUncachedPoint([](core::SystemConfig& c) {
            c.nvmc.firmware = nvmc::FirmwareConfig::asic();
        });
    }});
    for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
        p.push_back({"cp_depth/" + std::to_string(depth), [depth] {
            return runUncachedPoint(
                [depth](core::SystemConfig& c) {
                    c.driver.cpQueueDepth = depth;
                    c.nvmc.firmware.cpQueueDepth = depth;
                },
                /*threads=*/4);
        }});
    }
    p.push_back({"window_8k", [] {
        return runUncachedPoint([](core::SystemConfig& c) {
            c.nvmc.bytesPerWindow = 8192;
        });
    }});
    p.push_back({"merged_command", [] {
        return runUncachedPoint([](core::SystemConfig& c) {
            c.driver.mergedWbCf = true;
        });
    }});
    p.push_back({"stt_mram", [] {
        return runUncachedPoint([](core::SystemConfig& c) {
            c.media = core::MediaKind::SttMram;
            c.mediaBytes = 4 * kGiB;
        });
    }});
    p.push_back({"dirty_tracking", [] {
        core::SystemConfig cfg = core::SystemConfig::scaledBench();
        cfg.driver.trackDirty = true;
        core::NvdimmcSystem sys(cfg);
        sys.precondition(0, sys.layout().slotCount(), false);
        FioConfig fio;
        fio.pattern = FioConfig::Pattern::RandRead;
        fio.blockSize = 4096;
        fio.threads = 1;
        auto [base, bytes] = uncachedRegion(sys);
        fio.regionOffset = base;
        fio.regionBytes = bytes;
        fio.rampTime = 5 * kMs;
        fio.runTime = 120 * kMs;
        return fioPoint(runFio(sys.eq(), nvdcAccess(sys), fio));
    }});
    for (bool enabled : {false, true}) {
        p.push_back({std::string("prefetch/") +
                         (enabled ? "on" : "off"),
                     [enabled] {
            auto sys =
                makeUncachedSystem([&](core::SystemConfig& c) {
                    c.driver.trackDirty = true;
                    c.driver.prefetchEnabled = enabled;
                    c.driver.prefetchDepth = 2;
                    c.driver.cpQueueDepth = 4;
                    c.nvmc.firmware.cpQueueDepth = 4;
                });
            FioConfig cfg;
            cfg.pattern = FioConfig::Pattern::SeqRead;
            cfg.blockSize = 4096;
            cfg.threads = 1;
            auto [base, bytes] = uncachedRegion(*sys);
            cfg.regionOffset = base;
            cfg.regionBytes = bytes;
            cfg.rampTime = 5 * kMs;
            cfg.runTime = 120 * kMs;
            return fioPoint(
                runFio(sys->eq(), nvdcAccess(*sys), cfg));
        }});
    }
    p.push_back({"everything", [] {
        return runUncachedPoint(
            [](core::SystemConfig& c) {
                c.nvmc.firmware = nvmc::FirmwareConfig::asic();
                c.nvmc.firmware.cpQueueDepth = 4;
                c.driver.cpQueueDepth = 4;
                c.nvmc.bytesPerWindow = 8192;
                c.driver.mergedWbCf = true;
                c.media = core::MediaKind::SttMram;
                c.mediaBytes = 4 * kGiB;
            },
            /*threads=*/4);
    }});
    return sweep;
}

PointResult
runNvdimmFPoint(FioConfig::Pattern pattern)
{
    EventQueue eq;
    dram::AddressMap map(512 * kMiB);
    core::SystemConfig scfg = core::SystemConfig::scaledBench();
    auto nand = std::make_unique<nvm::ZNand>(eq, scfg.znand);
    auto ftl = std::make_unique<ftl::Ftl>(eq, *nand, scfg.ftl);
    ftl->preconditionSequentialFill(2 * kGiB / 4096);

    dram::DramDevice ch_dev(map, dram::Ddr4Timing::ddr4_1600(), false,
                            false);
    bus::MemoryBus bus(eq, ch_dev, false);
    imc::ImcConfig icfg;
    icfg.refresh = dram::RefreshRegisters::standard();
    imc::Imc imc(eq, bus, icfg);

    driver::NvdimmFDriver drv(eq, *ftl, imc, driver::NvdimmFConfig{});

    FioConfig cfg;
    cfg.pattern = pattern;
    cfg.blockSize = 4096;
    cfg.threads = 1;
    cfg.regionBytes = 2 * kGiB;
    cfg.rampTime = 5 * kMs;
    cfg.runTime = 100 * kMs;
    workload::FioJob job(
        eq,
        [&drv](Addr off, std::uint32_t len, bool is_write,
               std::function<void()> done) {
            if (is_write)
                drv.write(off, len, nullptr, std::move(done));
            else
                drv.read(off, len, nullptr, std::move(done));
        },
        cfg);
    return fioPoint(job.run());
}

PointResult
runNvdcCachedPoint(FioConfig::Pattern pattern)
{
    auto sys = makeCachedSystem();
    FioConfig cfg;
    cfg.pattern = pattern;
    cfg.blockSize = 4096;
    cfg.threads = 1;
    cfg.regionBytes = cachedRegionBytes(*sys);
    cfg.rampTime = 2 * kMs;
    cfg.runTime = 25 * kMs;
    return fioPoint(runFio(sys->eq(), nvdcAccess(*sys), cfg));
}

Sweep
makeVariantsSweep()
{
    Sweep sweep{"variants", {}};
    sweep.points.push_back({"nvdimmf/rand_read", [] {
        return runNvdimmFPoint(FioConfig::Pattern::RandRead);
    }});
    sweep.points.push_back({"nvdimmf/rand_write", [] {
        return runNvdimmFPoint(FioConfig::Pattern::RandWrite);
    }});
    sweep.points.push_back({"nvdc_cached/rand_read", [] {
        return runNvdcCachedPoint(FioConfig::Pattern::RandRead);
    }});
    sweep.points.push_back({"nvdc_cached/rand_write", [] {
        return runNvdcCachedPoint(FioConfig::Pattern::RandWrite);
    }});
    return sweep;
}

Sweep
makeCachePolicySweep()
{
    constexpr std::uint64_t kDbPages = 65536;
    Sweep sweep{"cache_policy", {}};
    for (const char* policy : {"lru", "lrc", "clock", "random"}) {
        for (std::uint32_t pct : {1u, 2u, 4u, 8u, 16u}) {
            std::string name =
                std::string(policy) + "/" + std::to_string(pct);
            sweep.points.push_back({name, [policy, pct] {
                auto slots =
                    static_cast<std::uint32_t>(kDbPages * pct / 100);
                driver::DramCache cache(
                    slots, driver::ReplacementPolicy::create(policy));
                const auto& specs = workload::tpchQuerySpecs();
                for (int qidx : {0, 4, 8, 16, 19, 20}) {
                    workload::replayTpchOnCache(
                        cache,
                        specs[static_cast<std::size_t>(qidx)],
                        kDbPages, 60000, 11);
                }
                PointResult res;
                res.metrics.emplace_back(
                    "hit_rate_pct", cache.stats().hitRate() * 100.0);
                return res;
            }});
        }
    }
    return sweep;
}

/**
 * One point of the channel-scaling sweep: an N-module topology under a
 * cached random 4 KB FIO load with enough threads that aggregate
 * bandwidth is bound by per-channel resources, not one thread's QD1
 * latency. The channel count travels through the config tweak (not the
 * benchChannels() global) so points are safe to run concurrently.
 */
PointResult
runChannelsPoint(std::uint32_t channels, FioConfig::Pattern pattern)
{
    auto sys = makeCachedSystem([channels](core::SystemConfig& c) {
        c.channels = channels;
    });
    FioConfig cfg;
    cfg.pattern = pattern;
    cfg.blockSize = 4096;
    cfg.threads = 8;
    cfg.regionBytes = cachedRegionBytes(*sys);
    cfg.rampTime = 2 * kMs;
    cfg.runTime = 25 * kMs;
    PointResult out = fioPoint(runFio(sys->eq(), nvdcAccess(*sys), cfg));
    appendSystemStats(out, *sys);
    return out;
}

Sweep
makeChannelsSweep()
{
    Sweep sweep{"channels", {}};
    for (std::uint32_t n : {1u, 2u, 4u}) {
        for (auto [pattern, tag] :
             {std::pair{FioConfig::Pattern::RandRead, "rand_read"},
              std::pair{FioConfig::Pattern::RandWrite, "rand_write"}}) {
            sweep.points.push_back(
                {std::to_string(n) + "ch/" + tag, [n, pattern] {
                     return runChannelsPoint(n, pattern);
                 }});
        }
    }
    return sweep;
}

/**
 * One measured run for the parallel-kernel sweep: a cached random
 * 4 KB FIO load on an N-channel system built with cfg.threads =
 * threads (0 = classic serial kernel, >= 1 = sharded kernel with that
 * many executors). The thread count travels through the config tweak
 * so points stay safe to run concurrently.
 */
struct ShardedRun
{
    workload::FioResult fio;
    std::string stats; ///< dumpStats text (deterministic).
    double wallMs = 0.0;
};

ShardedRun
runShardedFio(std::uint32_t channels, std::uint32_t threads,
              FioConfig::Pattern pattern, bool media_shards = true,
              bool uncached = false, Tick run_time = 0)
{
    auto t0 = std::chrono::steady_clock::now();
    auto tweak = [=](core::SystemConfig& c) {
        c.channels = channels;
        c.threads = threads;
        c.mediaShards = media_shards;
    };
    auto sys =
        uncached ? makeUncachedSystem(tweak) : makeCachedSystem(tweak);
    FioConfig cfg;
    cfg.pattern = pattern;
    cfg.blockSize = 4096;
    if (uncached) {
        // All-miss: every access pays a writeback + cachefill, so the
        // FTL + Z-NAND shards carry real load.
        auto [base, bytes] = uncachedRegion(*sys);
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.threads = 4;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 40 * kMs;
    } else {
        cfg.threads = 8;
        cfg.regionBytes = cachedRegionBytes(*sys);
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 25 * kMs;
    }
    if (run_time)
        cfg.runTime = run_time;
    ShardedRun run;
    run.fio = runFio(sys->eq(), nvdcAccess(*sys), cfg);
    std::ostringstream stats;
    sys->dumpStats(stats);
    run.stats = stats.str();
    run.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return run;
}

/**
 * Byte-exactness proof for the sharded kernel: the same machine and
 * workload run twice in-point — executors=1 (the reference
 * interleaving) and executors=N — and every FioResult field plus the
 * full dumpStats text must match exactly. A divergence sets the
 * point's error, which fails the run (rc=1). Both wall clocks land in
 * the JSON `perf` block; the metrics carry only deterministic values.
 */
PointResult
runParallelVerifyPoint(std::uint32_t channels, std::uint32_t threads,
                       FioConfig::Pattern pattern,
                       bool uncached = false, Tick run_time = 0)
{
    ShardedRun ser = runShardedFio(channels, 1, pattern,
                                   /*media_shards=*/true, uncached,
                                   run_time);
    ShardedRun par = runShardedFio(channels, threads, pattern,
                                   /*media_shards=*/true, uncached,
                                   run_time);
    const bool ok = ser.fio.mbps == par.fio.mbps &&
                    ser.fio.kiops == par.fio.kiops &&
                    ser.fio.ops == par.fio.ops &&
                    ser.fio.meanLatency == par.fio.meanLatency &&
                    ser.fio.p50 == par.fio.p50 &&
                    ser.fio.p99 == par.fio.p99 &&
                    ser.stats == par.stats;
    PointResult out = fioPoint(par.fio);
    out.metrics.emplace_back("channels",
                             static_cast<double>(channels));
    out.metrics.emplace_back("threads", static_cast<double>(threads));
    out.metrics.emplace_back("verify_ok", ok ? 1.0 : 0.0);
    out.perf = {{"wall_serial_ms", ser.wallMs},
                {"wall_parallel_ms", par.wallMs},
                {"speedup_x",
                 par.wallMs > 0 ? ser.wallMs / par.wallMs : 0.0}};
    if (!ok)
        out.error = "sharded executors=" + std::to_string(threads) +
                    " diverged from executors=1";
    return out;
}

/** One threads x channels scaling-matrix point. @p run_time shortens
 *  the simulated window for wide machines (0 = the default 25 ms). */
PointResult
runParallelMatrixPoint(std::uint32_t channels, std::uint32_t threads,
                       bool media_shards = true,
                       bool uncached = false, Tick run_time = 0)
{
    ShardedRun run =
        runShardedFio(channels, threads, FioConfig::Pattern::RandRead,
                      media_shards, uncached, run_time);
    PointResult out = fioPoint(run.fio);
    out.metrics.emplace_back("channels",
                             static_cast<double>(channels));
    out.metrics.emplace_back("threads", static_cast<double>(threads));
    out.metrics.emplace_back("media_shards", media_shards ? 1.0 : 0.0);
    out.perf = {{"wall_run_ms", run.wallMs}};
    return out;
}

/**
 * The parallel-in-time kernel sweep (EXPERIMENTS.md): verify/<N>ch*
 * points prove executors=N byte-identical to executors=1 on the same
 * sharded machine — including executor counts *above* the channel
 * count, which only the media-split shards can absorb, and an
 * uncached point that keeps the FTL + Z-NAND shards under real load;
 * matrix/<N>ch_t<T> points record the threads x channels wall-clock
 * scaling study folded into BENCH_parallel.json (t > N rows ride on
 * the media shards; the media/ pair isolates the split's own win at
 * a fixed channel count). threads=0 is the classic serial kernel
 * baseline (a different modeled machine — no host or media link — so
 * its throughput differs slightly by design); threads >= 1 is the
 * sharded kernel.
 */
Sweep
makeParallelSweep()
{
    Sweep sweep{"parallel", {}};
    auto& p = sweep.points;
    for (std::uint32_t n : {2u, 4u}) {
        p.push_back({"verify/" + std::to_string(n) + "ch", [n] {
            return runParallelVerifyPoint(
                n, n, FioConfig::Pattern::RandRead);
        }});
        // Executors beyond the channel count: only sound because the
        // media split doubled the shard vector.
        p.push_back({"verify/" + std::to_string(n) + "ch_t" +
                         std::to_string(2 * n),
                     [n] {
                         return runParallelVerifyPoint(
                             n, 2 * n, FioConfig::Pattern::RandRead);
                     }});
    }
    p.push_back({"verify/2ch_uncached_t4", [] {
        return runParallelVerifyPoint(
            2, 4, FioConfig::Pattern::RandRead, /*uncached=*/true);
    }});
    // Byte-identity at campaign width: a 16-channel machine with a
    // full-width executor vector must still replay the executors=1
    // interleaving exactly (short window, same reason as matrix/).
    p.push_back({"verify/16ch_t16", [] {
        return runParallelVerifyPoint(
            16, 16, FioConfig::Pattern::RandRead,
            /*uncached=*/false, /*run_time=*/4 * kMs);
    }});
    for (std::uint32_t n : {1u, 2u, 4u}) {
        std::vector<std::uint32_t> threads = {0u, 1u};
        if (n > 1)
            threads.push_back(n);
        threads.push_back(2 * n);
        for (std::uint32_t t : threads) {
            p.push_back({"matrix/" + std::to_string(n) + "ch_t" +
                             std::to_string(t),
                         [n, t] {
                             return runParallelMatrixPoint(n, t);
                         }});
        }
    }
    // Wide-machine scaling study (16–64 channels): the per-simulated-ms
    // event count grows with the channel count, so these points run a
    // shorter simulated window — they exist to measure executor
    // scaling on wide shard vectors, not to age the cache. Executor
    // counts sample the ladder up to the channel count.
    for (std::uint32_t n : {16u, 32u, 64u}) {
        for (std::uint32_t t : {1u, 4u, n / 2, n}) {
            p.push_back({"matrix/" + std::to_string(n) + "ch_t" +
                             std::to_string(t),
                         [n, t] {
                             return runParallelMatrixPoint(
                                 n, t, /*media_shards=*/true,
                                 /*uncached=*/false,
                                 /*run_time=*/4 * kMs);
                         }});
        }
    }
    // The media split's own contribution, all else fixed: an all-miss
    // load on 4 channels with executors pinned at the channel count
    // (media shards off) vs the full shard vector (on).
    p.push_back({"media/4ch_uncached_off_t4", [] {
        return runParallelMatrixPoint(4, 4, /*media_shards=*/false,
                                      /*uncached=*/true);
    }});
    p.push_back({"media/4ch_uncached_on_t8", [] {
        return runParallelMatrixPoint(4, 8, /*media_shards=*/true,
                                      /*uncached=*/true);
    }});
    return sweep;
}

/**
 * One latency-breakdown measurement: request spans on, a random 4 KB
 * FIO load on an N-channel machine with the given executor count, and
 * the per-op-class per-phase JSON plus the span audit as the result.
 */
struct BreakdownRun
{
    std::string json;
    bool auditOk = false;
    std::uint64_t spans = 0;
};

BreakdownRun
runBreakdownFio(std::uint32_t channels, std::uint32_t threads,
                bool uncached)
{
    span::enable();
    span::reset();
    auto tweak = [=](core::SystemConfig& c) {
        c.channels = channels;
        c.threads = threads;
    };
    std::unique_ptr<core::NvdimmcSystem> sys;
    FioConfig cfg;
    cfg.blockSize = 4096;
    cfg.pattern = FioConfig::Pattern::RandRead;
    if (uncached) {
        sys = makeUncachedSystem(tweak);
        auto [base, bytes] = uncachedRegion(*sys);
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.threads = 1;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 40 * kMs;
    } else {
        sys = makeCachedSystem(tweak);
        cfg.regionBytes = cachedRegionBytes(*sys);
        cfg.threads = 8;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 25 * kMs;
    }
    runFio(sys->eq(), nvdcAccess(*sys), cfg);

    BreakdownRun run;
    span::AuditResult audit = span::audit();
    run.auditOk = audit.ok();
    run.spans = audit.closed;
    std::ostringstream os;
    span::writeBreakdownJson(os);
    run.json = os.str();
    span::reset();
    span::disable();
    return run;
}

/**
 * Determinism proof for the breakdown export: the identical machine
 * and workload run with executors=1 and executors=N must produce
 * byte-identical latency-breakdown JSON (same spans, same phase
 * tick counts, same percentiles), and both runs must pass the span
 * auditor (every span closed, phases tile end-to-end, window waits
 * bounded).
 */
PointResult
runLatencyVerifyPoint(std::uint32_t channels, std::uint32_t threads,
                      bool uncached)
{
    BreakdownRun ser = runBreakdownFio(channels, 1, uncached);
    BreakdownRun par = runBreakdownFio(channels, threads, uncached);
    const bool identical = ser.json == par.json;
    PointResult out;
    out.metrics = {
        {"spans", static_cast<double>(par.spans)},
        {"audit_ok", ser.auditOk && par.auditOk ? 1.0 : 0.0},
        {"breakdown_identical", identical ? 1.0 : 0.0},
    };
    if (!identical)
        out.error = "breakdown JSON diverged between executors=1 and "
                    "executors=" +
                    std::to_string(threads);
    else if (!ser.auditOk || !par.auditOk)
        out.error = "span audit failed";
    return out;
}

Sweep
makeLatencySweep()
{
    Sweep sweep{"latency", {}, /*serialOnly=*/true};
    auto& p = sweep.points;
    p.push_back({"verify/1ch_cached", [] {
        return runLatencyVerifyPoint(1, 2, false);
    }});
    p.push_back({"verify/4ch_cached", [] {
        return runLatencyVerifyPoint(4, 4, false);
    }});
    p.push_back({"verify/1ch_uncached", [] {
        return runLatencyVerifyPoint(1, 2, true);
    }});
    return sweep;
}

/**
 * One telemetry measurement: the deterministic time-series layer on
 * (which implies span recording — the windowed SLO percentiles drain
 * the span layer), a workload, and the collector's full JSONL export
 * as the result. The export label is fixed per point, so runs that
 * differ only in executor count must produce byte-identical strings.
 */
struct TelemetryRun
{
    std::string jsonl;
    std::uint64_t intervals = 0;
    bool auditOk = false;
};

TelemetryRun
finishTelemetryRun(core::NvdimmcSystem& sys, const char* label)
{
    TelemetryRun run;
    run.auditOk = span::audit().ok();
    std::ostringstream os;
    sys.telemetryCollector()->writeJsonl(os, label);
    run.jsonl = os.str();
    run.intervals = sys.telemetryCollector()->records().size();
    return run;
}

TelemetryRun
runTelemetryFio(std::uint32_t channels, std::uint32_t threads,
                bool uncached, const char* label)
{
    telemetry::enable();
    span::enable();
    span::reset();
    auto tweak = [=](core::SystemConfig& c) {
        c.channels = channels;
        c.threads = threads;
    };
    std::unique_ptr<core::NvdimmcSystem> sys;
    FioConfig cfg;
    cfg.blockSize = 4096;
    cfg.pattern = FioConfig::Pattern::RandRead;
    if (uncached) {
        sys = makeUncachedSystem(tweak);
        auto [base, bytes] = uncachedRegion(*sys);
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.threads = 1;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 40 * kMs;
    } else {
        sys = makeCachedSystem(tweak);
        cfg.regionBytes = cachedRegionBytes(*sys);
        cfg.threads = 8;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 25 * kMs;
    }
    runFio(sys->eq(), nvdcAccess(*sys), cfg);
    TelemetryRun run = finishTelemetryRun(*sys, label);
    span::reset();
    span::disable();
    telemetry::disable();
    return run;
}

TelemetryRun
runTelemetryMixed(std::uint32_t threads, const char* label)
{
    telemetry::enable();
    span::enable();
    span::reset();
    // Validation requires real bytes end to end: detailed memcpy.
    auto sys = std::make_unique<core::NvdimmcSystem>(
        benchSystemConfig([threads](core::SystemConfig& c) {
            c.channels = 2;
            c.threads = threads;
            c.memcpy.bulkMode = false;
        }));
    workload::DataDevice dev;
    dev.capacityBytes = sys->driver().capacityBytes();
    dev.read = [&sys](Addr off, std::uint32_t len, std::uint8_t* buf,
                      std::function<void()> done) {
        sys->driver().read(off, len, buf, std::move(done));
    };
    dev.write = [&sys](Addr off, std::uint32_t len,
                       const std::uint8_t* data,
                       std::function<void()> done) {
        sys->driver().write(off, len, data, std::move(done));
    };
    workload::MixedLoadConfig mc;
    mc.users = 125;
    mc.transactionsPerUser = 4;
    mc.recordBytes = 4096;
    mc.regionBytes = std::uint64_t{mc.users} * 32 * 4096;
    workload::runMixedLoad(sys->eq(), dev, mc);
    TelemetryRun run = finishTelemetryRun(*sys, label);
    span::reset();
    span::disable();
    telemetry::disable();
    return run;
}

/**
 * Determinism proof for the telemetry export: the identical machine
 * and workload run at executors in {1, 2, N} must produce
 * byte-identical telemetry JSONL (same interval ticks, same
 * exact-integer probe values, same windowed percentiles), and every
 * run must pass the span auditor. The sample event rides the host
 * queue, so it observes device state at the barrier-safe window edge
 * regardless of executor count — this point is the enforcement.
 */
PointResult
telemetryVerdict(const TelemetryRun& t1, const TelemetryRun& t2,
                 const TelemetryRun& tn, std::uint32_t n)
{
    const bool identical = t1.jsonl == t2.jsonl && t1.jsonl == tn.jsonl;
    PointResult out;
    out.metrics = {
        {"intervals", static_cast<double>(t1.intervals)},
        {"audit_ok",
         t1.auditOk && t2.auditOk && tn.auditOk ? 1.0 : 0.0},
        {"threads_identical", identical ? 1.0 : 0.0},
    };
    if (!identical)
        out.error = "telemetry JSONL diverged across executors=1/2/" +
                    std::to_string(n);
    else if (!t1.auditOk || !t2.auditOk || !tn.auditOk)
        out.error = "span audit failed";
    else if (t1.intervals == 0)
        out.error = "telemetry recorded no intervals";
    return out;
}

PointResult
runTelemetryFioVerifyPoint(std::uint32_t channels, bool uncached,
                           const char* label)
{
    const std::uint32_t n = channels * 2; // full media-split vector
    TelemetryRun t1 = runTelemetryFio(channels, 1, uncached, label);
    TelemetryRun t2 = runTelemetryFio(channels, 2, uncached, label);
    TelemetryRun tn = runTelemetryFio(channels, n, uncached, label);
    return telemetryVerdict(t1, t2, tn, n);
}

PointResult
runTelemetryMixedVerifyPoint(const char* label)
{
    TelemetryRun t1 = runTelemetryMixed(1, label);
    TelemetryRun t2 = runTelemetryMixed(2, label);
    TelemetryRun t4 = runTelemetryMixed(4, label);
    return telemetryVerdict(t1, t2, t4, 4);
}

Sweep
makeTelemetrySweep()
{
    Sweep sweep{"telemetry", {}, /*serialOnly=*/true};
    auto& p = sweep.points;
    p.push_back({"verify/1ch_cached", [] {
        return runTelemetryFioVerifyPoint(1, false, "fig8/1ch_cached");
    }});
    p.push_back({"verify/4ch_cached", [] {
        return runTelemetryFioVerifyPoint(4, false, "fig8/4ch_cached");
    }});
    p.push_back({"verify/1ch_uncached", [] {
        return runTelemetryFioVerifyPoint(1, true,
                                          "fig8/1ch_uncached");
    }});
    p.push_back({"verify/mixedload", [] {
        return runTelemetryMixedVerifyPoint("mixedload/125users");
    }});
    return sweep;
}

/**
 * One power-fail sweep point: cut at @p frac of the uncut run, replay
 * recovery, and prove the whole campaign byte-identical across
 * executor counts. Integrity (corrupt=0 with ADR) and determinism
 * both land in the verified metrics.
 */
PointResult
runPowerFailPoint(double frac, bool adr)
{
    fault::PowerFailCampaignConfig cfg;
    cfg.seed = 29;
    cfg.adrWorks = adr;
    fault::PowerFailCampaignResult full = runPowerFailCampaign(cfg);
    cfg.haltAtTick = static_cast<Tick>(
        static_cast<double>(full.workloadElapsed) * frac);
    cfg.threads = 1;
    fault::PowerFailCampaignResult t1 = runPowerFailCampaign(cfg);
    cfg.threads = 2;
    fault::PowerFailCampaignResult t2 = runPowerFailCampaign(cfg);
    bool identical = t1.fingerprint == t2.fingerprint;

    PointResult out;
    out.metrics = {
        {"committed", static_cast<double>(t1.committedRecords)},
        {"corrupt", static_cast<double>(t1.corruptRecords)},
        {"pages_dumped", static_cast<double>(t1.pagesDumped)},
        {"wpq_lost", static_cast<double>(t1.wpqLost)},
        {"recovery_us", ticksToUs(t1.recoveryTicks)},
        {"threads_identical", identical ? 1.0 : 0.0},
    };
    if (!identical)
        out.error = "campaign diverged across --threads";
    else if (adr && t1.corruptRecords != 0)
        out.error = "committed records corrupted despite ADR";
    return out;
}

PointResult
mediaPoint(const fault::MediaFaultCampaignResult& res)
{
    PointResult out;
    out.metrics = {
        {"reads", static_cast<double>(res.reads)},
        {"read_errors", static_cast<double>(res.readErrorsInjected)},
        {"read_retries", static_cast<double>(res.readRetries)},
        {"retry_successes",
         static_cast<double>(res.readRetrySuccesses)},
        {"uncorrectable", static_cast<double>(res.uncorrectableReads)},
        {"grown_bad_blocks", static_cast<double>(res.grownBadBlocks)},
        {"gc_relocations", static_cast<double>(res.gcRelocations)},
        {"silent_corruptions",
         static_cast<double>(res.silentCorruptions)},
        {"invariants_ok", res.invariantsOk ? 1.0 : 0.0},
    };
    if (res.silentCorruptions != 0)
        out.error = "silent corruption (mismatch without an "
                    "uncorrectable-read report)";
    else if (!res.invariantsOk)
        out.error = "FTL invariants violated: " + res.invariantWhy;
    return out;
}

Sweep
makeFaultsSweep()
{
    Sweep sweep{"faults", {}};
    auto& p = sweep.points;
    p.push_back({"powerfail/early",
                 [] { return runPowerFailPoint(0.25, true); }});
    p.push_back({"powerfail/mid",
                 [] { return runPowerFailPoint(0.5, true); }});
    p.push_back({"powerfail/late",
                 [] { return runPowerFailPoint(0.8, true); }});
    p.push_back({"powerfail/noadr",
                 [] { return runPowerFailPoint(0.5, false); }});
    p.push_back({"media/ecc", [] {
        fault::MediaFaultCampaignConfig cfg;
        cfg.seed = 43;
        cfg.faults.readRberMean = 0.9;
        cfg.faults.wearRberSlope = 0.03;
        cfg.readRetries = 2;
        return mediaPoint(runMediaFaultCampaign(cfg));
    }});
    p.push_back({"media/program_fail", [] {
        fault::MediaFaultCampaignConfig cfg;
        cfg.seed = 47;
        cfg.faults.programFailProb = 0.01;
        cfg.ops = 2500;
        return mediaPoint(runMediaFaultCampaign(cfg));
    }});
    p.push_back({"ageing/small", [] {
        fault::AgeingCampaignConfig cfg;
        cfg.seed = 53;
        cfg.rounds = 24;
        cfg.writesPerRound = 96;
        cfg.faults.readRberMean = 0.2;
        cfg.faults.wearRberSlope = 0.02;
        cfg.faults.programFailProb = 0.002;
        fault::AgeingCampaignResult res = runAgeingCampaign(cfg);
        PointResult out;
        out.metrics = {
            {"writes", static_cast<double>(res.writes)},
            {"gc_erases", static_cast<double>(res.gcErases)},
            {"gc_relocations",
             static_cast<double>(res.gcRelocations)},
            {"wear_spread", static_cast<double>(res.wearSpread)},
            {"max_erase_count",
             static_cast<double>(res.maxEraseCount)},
            {"silent_corruptions",
             static_cast<double>(res.silentCorruptions)},
            {"invariants_ok", res.invariantsOk ? 1.0 : 0.0},
            {"checkpoint_deterministic",
             res.checkpointDeterministic ? 1.0 : 0.0},
        };
        if (!res.checkpointDeterministic)
            out.error = "checkpoint-restored replay diverged";
        else if (res.silentCorruptions != 0 || !res.invariantsOk)
            out.error = "ageing campaign integrity failure";
        return out;
    }});
    return sweep;
}

/**
 * Build one device under test for the backends sweep. The backend is
 * carried explicitly (not via the --backend global) so points stay
 * safe to run concurrently; the hybrid transports ride the shared
 * cached/uncached factories, the pmem baseline gets its own machine.
 */
BenchDevice
makeBackendDevice(backend::BackendKind kind, bool uncached)
{
    BenchDevice dev;
    if (kind == backend::BackendKind::Pmem) {
        dev.pmem = makePmemSystem();
        return dev;
    }
    auto tweak = [kind](core::SystemConfig& c) {
        if (kind == backend::BackendKind::CxlHybrid)
            c.applyCxlBackend();
    };
    dev.nvdc = uncached ? makeUncachedSystem(tweak)
                        : makeCachedSystem(tweak);
    return dev;
}

/**
 * One measured run for a backend byte-identity point: a cached random
 * 4 KB FIO load on a 2-channel machine fronted by @p kind, built with
 * the given executor count.
 */
ShardedRun
runBackendFio(backend::BackendKind kind, std::uint32_t channels,
              std::uint32_t threads)
{
    auto t0 = std::chrono::steady_clock::now();
    ShardedRun run;
    FioConfig cfg;
    cfg.pattern = FioConfig::Pattern::RandRead;
    cfg.blockSize = 4096;
    cfg.threads = 8;
    cfg.rampTime = 2 * kMs;
    cfg.runTime = 25 * kMs;
    std::ostringstream stats;
    if (kind == backend::BackendKind::Pmem) {
        auto sys = makePmemSystem([&](core::BaselineConfig& c) {
            c.channels = channels;
            c.threads = threads;
        });
        cfg.regionBytes = std::min<std::uint64_t>(
            sys->driver().capacityBytes(), 2 * kGiB);
        run.fio = runFio(sys->eq(), pmemAccess(*sys), cfg);
        sys->dumpStats(stats);
    } else {
        auto sys = makeCachedSystem([&](core::SystemConfig& c) {
            c.channels = channels;
            c.threads = threads;
            if (kind == backend::BackendKind::CxlHybrid)
                c.applyCxlBackend();
        });
        cfg.regionBytes = cachedRegionBytes(*sys);
        run.fio = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        sys->dumpStats(stats);
    }
    run.stats = stats.str();
    run.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return run;
}

/**
 * The per-backend byte-exactness proof: the same machine and workload
 * with executors=1 (reference) and executors=N must agree on every
 * FIO field and the full stats dump. Extends the sharded kernel's
 * verify contract to every transport behind the MediaBackend seam.
 */
PointResult
runBackendVerifyPoint(backend::BackendKind kind,
                      std::uint32_t channels, std::uint32_t threads)
{
    ShardedRun ser = runBackendFio(kind, channels, 1);
    ShardedRun par = runBackendFio(kind, channels, threads);
    const bool ok = ser.fio.mbps == par.fio.mbps &&
                    ser.fio.kiops == par.fio.kiops &&
                    ser.fio.ops == par.fio.ops &&
                    ser.fio.meanLatency == par.fio.meanLatency &&
                    ser.fio.p50 == par.fio.p50 &&
                    ser.fio.p99 == par.fio.p99 &&
                    ser.stats == par.stats;
    PointResult out = fioPoint(par.fio);
    out.metrics.emplace_back("channels",
                             static_cast<double>(channels));
    out.metrics.emplace_back("threads", static_cast<double>(threads));
    out.metrics.emplace_back("verify_ok", ok ? 1.0 : 0.0);
    out.perf = {{"wall_serial_ms", ser.wallMs},
                {"wall_parallel_ms", par.wallMs}};
    if (!ok)
        out.error = std::string(backend::toString(kind)) +
                    " backend executors=" + std::to_string(threads) +
                    " diverged from executors=1";
    return out;
}

/** Sum of a phase's sum_ps fields across every op class in a span
 *  breakdown JSON (the phase keys never collide with class names). */
std::uint64_t
phaseSumPs(const std::string& json, const char* phase)
{
    std::uint64_t total = 0;
    const std::string needle =
        std::string("\"") + phase + "\":{\"count\":";
    for (std::size_t pos = json.find(needle);
         pos != std::string::npos; pos = json.find(needle, pos + 1)) {
        std::size_t s = json.find("\"sum_ps\":", pos);
        if (s == std::string::npos)
            break;
        total += std::strtoull(json.c_str() + s + 9, nullptr, 10);
    }
    return total;
}

/**
 * One fig8-style head-to-head point: random 4 KB reads on the PoC
 * (1-channel) machine fronted by @p kind, with the span-layer
 * breakdown folded into the metrics so the JSON export shows *where*
 * each interface spends the latency — the NVDIMM-C transport
 * accumulates window_wait + CP-channel time, the CXL transport zero
 * window_wait with link/device-copy time in its place, the pmem
 * baseline neither (no transport at all).
 */
PointResult
runBackendFig8Point(backend::BackendKind kind, bool uncached)
{
    span::enable();
    span::reset();
    workload::FioResult fio;
    {
        BenchDevice dev = makeBackendDevice(kind, uncached);
        FioConfig cfg;
        cfg.pattern = FioConfig::Pattern::RandRead;
        cfg.blockSize = 4096;
        cfg.threads = uncached ? 4 : 8;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = uncached ? 40 * kMs : 25 * kMs;
        auto [base, bytes] =
            uncached ? dev.missRegion() : dev.cachedRegion();
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        fio = runFio(dev.eq(), dev.access(), cfg);
    }
    span::AuditResult audit = span::audit();
    std::ostringstream os;
    span::writeBreakdownJson(os);
    std::string json = os.str();
    span::reset();
    span::disable();

    PointResult out = fioPoint(fio);
    auto us = [](std::uint64_t ps) {
        return static_cast<double>(ps) / 1e6;
    };
    out.metrics.emplace_back("audit_ok", audit.ok() ? 1.0 : 0.0);
    out.metrics.emplace_back("window_wait_us",
                             us(phaseSumPs(json, "window_wait")));
    out.metrics.emplace_back(
        "cp_channel_us", us(phaseSumPs(json, "cp_queue") +
                            phaseSumPs(json, "cp_write") +
                            phaseSumPs(json, "cp_ack")));
    out.metrics.emplace_back(
        "link_us", us(phaseSumPs(json, "link_wait") +
                      phaseSumPs(json, "link_req") +
                      phaseSumPs(json, "link_resp")));
    out.metrics.emplace_back("dev_copy_us",
                             us(phaseSumPs(json, "dev_copy")));
    if (!audit.ok())
        out.error = "span audit failed";
    return out;
}

/**
 * One fig11-style head-to-head point: TPC-H query @p qid storage
 * replay on the device under test, normalized to the pmem baseline
 * run in the same point (--backend=pmem therefore anchors at 1.0).
 */
PointResult
runBackendTpchPoint(backend::BackendKind kind, int qid)
{
    const auto& spec =
        workload::tpchQuerySpecs()[static_cast<std::size_t>(qid - 1)];
    workload::TpchRunConfig run_cfg;
    run_cfg.dbBytes = 3 * kGiB;
    run_cfg.maxAccesses = 6000;
    run_cfg.parallelism = 4;

    core::BaselineSystem base(core::BaselineConfig::scaledBench());
    Tick t_base = workload::runTpchQuery(
        base.eq(), pmemAccess(base), spec, run_cfg);

    BenchDevice dev = makeBackendDevice(kind, /*uncached=*/true);
    Tick t_dev = workload::runTpchQuery(dev.eq(), dev.access(), spec,
                                        run_cfg);

    PointResult out;
    out.metrics = {
        {"elapsed_us", ticksToUs(t_dev)},
        {"normalized_slowdown", static_cast<double>(t_dev) /
                                    static_cast<double>(t_base)},
    };
    return out;
}

/**
 * One mixedload head-to-head point: validating transactions with real
 * bytes end to end; failures must stay 0 on every backend (the
 * durable-on-ack contract is part of the seam).
 */
PointResult
runBackendMixedloadPoint(backend::BackendKind kind)
{
    BenchDevice sys;
    if (kind == backend::BackendKind::Pmem)
        sys.pmem = makePmemSystem([](core::BaselineConfig& c) {
            c.memcpy.bulkMode = false;
        });
    else
        sys.nvdc = std::make_unique<core::NvdimmcSystem>(
            benchSystemConfig([kind](core::SystemConfig& c) {
                c.memcpy.bulkMode = false;
                if (kind == backend::BackendKind::CxlHybrid)
                    c.applyCxlBackend();
            }));

    workload::DataDevice dev;
    dev.capacityBytes = sys.nvdc ? sys.nvdc->driver().capacityBytes()
                                 : sys.pmem->driver().capacityBytes();
    dev.read = [&sys](Addr off, std::uint32_t len, std::uint8_t* buf,
                      std::function<void()> done) {
        if (sys.nvdc)
            sys.nvdc->driver().read(off, len, buf, std::move(done));
        else
            sys.pmem->driver().read(off, len, buf, std::move(done));
    };
    dev.write = [&sys](Addr off, std::uint32_t len,
                       const std::uint8_t* data,
                       std::function<void()> done) {
        if (sys.nvdc)
            sys.nvdc->driver().write(off, len, data, std::move(done));
        else
            sys.pmem->driver().write(off, len, data, std::move(done));
    };

    workload::MixedLoadConfig mc;
    mc.users = 125;
    mc.transactionsPerUser = 4;
    mc.recordBytes = 4096;
    mc.regionBytes = std::uint64_t{mc.users} * 32 * 4096;
    workload::MixedLoadResult res =
        workload::runMixedLoad(sys.eq(), dev, mc);

    PointResult out;
    out.metrics = {
        {"transactions", static_cast<double>(res.transactions)},
        {"validation_failures",
         static_cast<double>(res.validationFailures)},
        {"txn_per_sec", static_cast<double>(res.transactions) /
                            ticksToSec(res.elapsed)},
    };
    if (res.validationFailures != 0)
        out.error = "mixedload validation failures on " +
                    std::string(backend::toString(kind));
    else if (!sys.hardwareClean())
        out.error = "bus conflict detected";
    return out;
}

/**
 * The backends sweep (the MediaBackend seam's verify + head-to-head
 * contract): per backend, byte-identity points at --threads in
 * {1, N, 2N} on a 2-channel machine (each point runs executors=1 as
 * the in-point reference), then the fig8/fig11/mixedload comparison
 * whose JSON export is committed as BENCH_backends.json. serialOnly:
 * the fig8 points use the process-global span recorder.
 */
Sweep
makeBackendsSweep()
{
    Sweep sweep{"backends", {}, /*serialOnly=*/true};
    auto& p = sweep.points;
    for (auto kind : {backend::BackendKind::Nvdimmc,
                      backend::BackendKind::CxlHybrid,
                      backend::BackendKind::Pmem}) {
        const std::string tag = backend::toString(kind);
        // channels=2: N = 2 (one executor per channel) and 2N = 4
        // (only the media-split shard vector can absorb the extra
        // executors on the hybrid transports; the pmem machine clamps
        // to its channel count, which must stay byte-identical too).
        for (std::uint32_t t : {2u, 4u}) {
            p.push_back({tag + "/verify/2ch_t" + std::to_string(t),
                         [kind, t] {
                             return runBackendVerifyPoint(kind, 2, t);
                         }});
        }
        p.push_back({tag + "/fig8/cached", [kind] {
            return runBackendFig8Point(kind, false);
        }});
        p.push_back({tag + "/fig8/uncached", [kind] {
            return runBackendFig8Point(kind, true);
        }});
        for (int q : {1, 6, 20}) {
            p.push_back({tag + "/tpch/q" + std::to_string(q),
                         [kind, q] {
                             return runBackendTpchPoint(kind, q);
                         }});
        }
        p.push_back({tag + "/mixedload/125users", [kind] {
            return runBackendMixedloadPoint(kind);
        }});
    }
    return sweep;
}

/**
 * Run every point of @p sweep on @p jobs worker threads. Points are
 * claimed from an atomic counter and results land in a slot indexed
 * by point, so the output order (and content) never depends on
 * scheduling.
 */
std::vector<PointResult>
runSweep(const Sweep& sweep, unsigned jobs)
{
    if (sweep.serialOnly)
        jobs = 1;
    std::vector<PointResult> results(sweep.points.size());
    std::atomic<std::size_t> next{0};

    auto work = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= sweep.points.size())
                return;
            auto t0 = std::chrono::steady_clock::now();
            try {
                results[i] = sweep.points[i].run();
            } catch (const std::exception& e) {
                results[i].error = e.what();
            }
            results[i].wallMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        }
    };

    if (jobs <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(work);
        for (auto& th : pool)
            th.join();
    }
    return results;
}

/** Deterministic text form of one point (wall time excluded). */
std::string
formatPoint(const SweepPoint& point, const PointResult& res)
{
    std::ostringstream os;
    os.precision(17);
    os << point.name << ":";
    if (!res.error.empty()) {
        os << " ERROR " << res.error;
        return os.str();
    }
    for (const auto& [key, value] : res.metrics)
        os << " " << key << "=" << value;
    return os.str();
}

void
writeJson(std::ostream& os,
          const std::vector<std::pair<const Sweep*,
                                      std::vector<PointResult>>>& all,
          unsigned jobs)
{
    os.precision(17);
    os << "{\n  \"schema_version\": " << telemetry::kSchemaVersion
       << ",\n  \"jobs\": " << jobs << ",\n  \"host_cores\": "
       << std::thread::hardware_concurrency()
       << ",\n  \"sweeps\": [\n";
    for (std::size_t s = 0; s < all.size(); ++s) {
        const auto& [sweep, results] = all[s];
        os << "    {\"name\": \"" << sweep->name
           << "\", \"points\": [\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            os << "      {\"name\": \"" << sweep->points[i].name
               << "\", \"wall_ms\": " << results[i].wallMs;
            if (!results[i].error.empty()) {
                os << ", \"error\": \"" << results[i].error << "\"";
            } else {
                for (const auto& [key, value] : results[i].metrics)
                    os << ", \"" << key << "\": " << value;
            }
            if (!results[i].perf.empty()) {
                os << ", \"perf\": {";
                for (std::size_t k = 0; k < results[i].perf.size();
                     ++k)
                    os << (k ? ", " : "") << "\""
                       << results[i].perf[k].first
                       << "\": " << results[i].perf[k].second;
                os << "}";
            }
            os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
        }
        os << "    ]}" << (s + 1 < all.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

int
sweepMain(int argc, char** argv)
{
    std::vector<std::string> wanted;
    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    std::string json_path;
    bool verify = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--sweep") {
            wanted.push_back(value());
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::stoul(value()));
            if (jobs == 0)
                jobs = 1;
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--verify") {
            verify = true;
        } else if (arg == "--list") {
            for (const Sweep& sweep :
                 {makeAblationSweep(), makeVariantsSweep(),
                  makeCachePolicySweep(), makeChannelsSweep(),
                  makeParallelSweep(), makeLatencySweep(),
                  makeTelemetrySweep(), makeFaultsSweep(),
                  makeBackendsSweep()}) {
                for (const auto& point : sweep.points)
                    std::cout << sweep.name << "/" << point.name
                              << "\n";
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: sweep_runner"
                   " [--sweep ablation|variants|cache_policy|channels"
                   "|parallel|latency|telemetry|faults|backends|all]\n"
                   "                    [--jobs N] [--json FILE]"
                   " [--verify] [--list]\n";
            return 0;
        } else {
            fatal("unknown argument ", arg);
        }
    }
    if (wanted.empty())
        wanted.push_back("all");

    std::vector<Sweep> sweeps;
    auto want = [&](const char* name) {
        for (const auto& w : wanted)
            if (w == "all" || w == name)
                return true;
        return false;
    };
    if (want("ablation"))
        sweeps.push_back(makeAblationSweep());
    if (want("variants"))
        sweeps.push_back(makeVariantsSweep());
    if (want("cache_policy"))
        sweeps.push_back(makeCachePolicySweep());
    if (want("channels"))
        sweeps.push_back(makeChannelsSweep());
    if (want("parallel"))
        sweeps.push_back(makeParallelSweep());
    if (want("latency"))
        sweeps.push_back(makeLatencySweep());
    if (want("telemetry"))
        sweeps.push_back(makeTelemetrySweep());
    if (want("faults"))
        sweeps.push_back(makeFaultsSweep());
    if (want("backends"))
        sweeps.push_back(makeBackendsSweep());
    if (sweeps.empty())
        fatal("no sweep matches ", wanted.front());

    // Device models warn about injected hazards on some points;
    // keep worker output off the console.
    setLogLevel(LogLevel::Silent);

    int rc = 0;
    std::vector<std::pair<const Sweep*, std::vector<PointResult>>> all;
    for (const Sweep& sweep : sweeps) {
        auto t0 = std::chrono::steady_clock::now();
        std::vector<PointResult> results = runSweep(sweep, jobs);
        double wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

        if (verify) {
            std::vector<PointResult> serial = runSweep(sweep, 1);
            for (std::size_t i = 0; i < results.size(); ++i) {
                std::string par =
                    formatPoint(sweep.points[i], results[i]);
                std::string ser =
                    formatPoint(sweep.points[i], serial[i]);
                if (par != ser) {
                    std::cerr << "VERIFY MISMATCH in " << sweep.name
                              << ":\n  parallel: " << par
                              << "\n  serial:   " << ser << "\n";
                    rc = 1;
                }
            }
            if (rc == 0)
                std::cout << "verify " << sweep.name << ": parallel("
                          << jobs << ") == serial, "
                          << results.size() << " points\n";
        }

        std::cout << "== " << sweep.name << " (" << results.size()
                  << " points, jobs=" << jobs << ", "
                  << static_cast<std::uint64_t>(wall) << " ms) ==\n";
        for (std::size_t i = 0; i < results.size(); ++i) {
            std::cout << "  " << formatPoint(sweep.points[i],
                                             results[i])
                      << "\n";
            if (!results[i].error.empty())
                rc = 1;
        }
        all.emplace_back(&sweep, std::move(results));
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out)
            fatal("cannot write ", json_path);
        writeJson(out, all, jobs);
        std::cout << "wrote " << json_path << "\n";
    }
    return rc;
}

} // namespace
} // namespace nvdimmc::bench

int
main(int argc, char** argv)
{
    try {
        return nvdimmc::bench::sweepMain(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "sweep_runner: " << e.what() << "\n";
        return 1;
    }
}
