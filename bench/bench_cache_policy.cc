/**
 * @file
 * Paper §VII-B5 in-house simulation: DRAM-cache hit rate on the TPC-H
 * workload as the cache grows from 1 GB to 16 GB, under LRU (the
 * paper's result: 78.7% -> 99.3%) — plus the PoC's LRC and the CLOCK
 * and RANDOM alternatives as an ablation.
 *
 * Scaled: DB = 64 Ki pages stands in for SF100; cache sizes sweep the
 * same 1%..16% fractions the paper's 1-16 GB covers.
 */

#include "bench_common.hh"

#include "driver/dram_cache.hh"
#include "workload/tpch.hh"

namespace nvdimmc::bench
{
namespace
{

constexpr std::uint64_t kDbPages = 65536;

double
runPolicy(const std::string& policy, std::uint32_t slots)
{
    // The paper's study replays "the TPC-H workloads"; mix the replay
    // across a representative set of queries.
    driver::DramCache cache(slots,
                            driver::ReplacementPolicy::create(policy));
    const auto& specs = workload::tpchQuerySpecs();
    for (int qidx : {0, 4, 8, 16, 19, 20}) {
        workload::replayTpchOnCache(
            cache, specs[static_cast<std::size_t>(qidx)], kDbPages,
            60000, 11);
    }
    return cache.stats().hitRate();
}

void
BM_CachePolicy_HitRate(benchmark::State& state,
                       const std::string& policy)
{
    auto cache_fraction_pct = static_cast<std::uint32_t>(state.range(0));
    auto slots = static_cast<std::uint32_t>(
        kDbPages * cache_fraction_pct / 100);
    double hit_rate = 0.0;
    for (auto _ : state)
        hit_rate = runPolicy(policy, slots);
    state.counters["hit_rate_pct"] = hit_rate * 100.0;
    if (policy == "lru") {
        // Paper: 78.7% at 1 GB (1%), 99.3% at 16 GB (16%).
        if (cache_fraction_pct == 1)
            state.counters["paper_hit_rate_pct"] = 78.7;
        if (cache_fraction_pct == 16)
            state.counters["paper_hit_rate_pct"] = 99.3;
    }
}

BENCHMARK_CAPTURE(BM_CachePolicy_HitRate, lru, std::string("lru"))
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);
BENCHMARK_CAPTURE(BM_CachePolicy_HitRate, lrc, std::string("lrc"))
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);
BENCHMARK_CAPTURE(BM_CachePolicy_HitRate, clock, std::string("clock"))
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);
BENCHMARK_CAPTURE(BM_CachePolicy_HitRate, random, std::string("random"))
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
