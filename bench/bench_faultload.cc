/**
 * @file
 * Fault-injection campaign matrix -> BENCH_faults.json.
 *
 * Not a google-benchmark microbenchmark: each row is a full
 * deterministic campaign (power-fail + recovery replay, media-fault
 * soak, compressed-time ageing) and the interesting output is the
 * integrity/recovery matrix, not wall time. Structure mirrors
 * sweep_runner's JSON emitter so CI can diff artifacts the same way.
 *
 *   bench_faultload [--json FILE] [--seeds N] [--quick]
 *
 * Every power-fail row is run at --threads 1 and 2 and the campaign
 * fingerprints compared; a divergence or a corrupted committed record
 * (with ADR working) makes the process exit non-zero, so the CI matrix
 * job doubles as an integrity gate.
 */

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "fault/campaign.hh"

namespace nvdimmc::bench
{
namespace
{

struct Row
{
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
    std::string fingerprint;
    std::string error;
};

double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kUs);
}

Row
powerFailRow(std::uint64_t seed, double frac, bool adr)
{
    fault::PowerFailCampaignConfig cfg;
    cfg.seed = seed;
    cfg.adrWorks = adr;
    fault::PowerFailCampaignResult full = runPowerFailCampaign(cfg);
    cfg.haltAtTick = static_cast<Tick>(
        static_cast<double>(full.workloadElapsed) * frac);

    cfg.threads = 1;
    fault::PowerFailCampaignResult t1 = runPowerFailCampaign(cfg);
    cfg.threads = 2;
    fault::PowerFailCampaignResult t2 = runPowerFailCampaign(cfg);

    std::ostringstream name;
    name << "powerfail/seed" << seed << "/cut"
         << static_cast<int>(frac * 100) << (adr ? "/adr" : "/noadr");
    Row row;
    row.name = name.str();
    row.fingerprint = t1.fingerprint;
    row.metrics = {
        {"cut_tick_us", ticksToUs(cfg.haltAtTick)},
        {"transactions", static_cast<double>(t1.transactions)},
        {"committed", static_cast<double>(t1.committedRecords)},
        {"in_flight", static_cast<double>(t1.inFlightWrites)},
        {"corrupt", static_cast<double>(t1.corruptRecords)},
        {"wpq_flushed", static_cast<double>(t1.wpqFlushed)},
        {"wpq_lost", static_cast<double>(t1.wpqLost)},
        {"pages_dumped", static_cast<double>(t1.pagesDumped)},
        {"recovery_us", ticksToUs(t1.recoveryTicks)},
    };
    if (t1.fingerprint != t2.fingerprint)
        row.error = "fingerprint diverged across --threads";
    else if (adr && t1.corruptRecords != 0)
        row.error = "committed records corrupted despite ADR";
    return row;
}

Row
mediaRow(const std::string& name,
         const fault::MediaFaultCampaignConfig& cfg)
{
    fault::MediaFaultCampaignResult res = runMediaFaultCampaign(cfg);
    Row row;
    row.name = name;
    row.fingerprint = res.fingerprint;
    row.metrics = {
        {"reads", static_cast<double>(res.reads)},
        {"writes", static_cast<double>(res.writes)},
        {"read_errors", static_cast<double>(res.readErrorsInjected)},
        {"read_retries", static_cast<double>(res.readRetries)},
        {"retry_successes",
         static_cast<double>(res.readRetrySuccesses)},
        {"uncorrectable", static_cast<double>(res.uncorrectableReads)},
        {"program_fails",
         static_cast<double>(res.programFailsInjected)},
        {"grown_bad_blocks", static_cast<double>(res.grownBadBlocks)},
        {"gc_relocations", static_cast<double>(res.gcRelocations)},
        {"silent_corruptions",
         static_cast<double>(res.silentCorruptions)},
        {"invariants_ok", res.invariantsOk ? 1.0 : 0.0},
    };
    if (res.silentCorruptions != 0)
        row.error = "silent corruption";
    else if (!res.invariantsOk)
        row.error = "FTL invariants violated: " + res.invariantWhy;
    return row;
}

Row
ageingRow(std::uint64_t seed)
{
    fault::AgeingCampaignConfig cfg;
    cfg.seed = seed;
    cfg.rounds = 32;
    cfg.writesPerRound = 96;
    cfg.faults.readRberMean = 0.2;
    cfg.faults.wearRberSlope = 0.02;
    cfg.faults.programFailProb = 0.002;
    fault::AgeingCampaignResult res = runAgeingCampaign(cfg);

    Row row;
    row.name = "ageing/seed" + std::to_string(seed);
    row.fingerprint = res.fingerprint;
    row.metrics = {
        {"writes", static_cast<double>(res.writes)},
        {"gc_erases", static_cast<double>(res.gcErases)},
        {"gc_relocations", static_cast<double>(res.gcRelocations)},
        {"grown_bad_blocks", static_cast<double>(res.grownBadBlocks)},
        {"max_erase_count", static_cast<double>(res.maxEraseCount)},
        {"wear_spread", static_cast<double>(res.wearSpread)},
        {"silent_corruptions",
         static_cast<double>(res.silentCorruptions)},
        {"invariants_ok", res.invariantsOk ? 1.0 : 0.0},
        {"checkpoint_deterministic",
         res.checkpointDeterministic ? 1.0 : 0.0},
        {"checkpoint_kb",
         static_cast<double>(res.checkpointBytes) / 1024.0},
    };
    if (!res.checkpointDeterministic)
        row.error = "checkpoint-restored replay diverged";
    else if (res.silentCorruptions != 0 || !res.invariantsOk)
        row.error = "ageing campaign integrity failure";
    return row;
}

void
writeJson(const std::vector<Row>& rows, const std::string& path)
{
    std::ofstream out(path);
    out.precision(17);
    out << "{\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"name\": \"" << r.name << "\", \"fingerprint\": \""
            << r.fingerprint << "\", \"error\": \"" << r.error
            << "\", \"metrics\": {";
        for (std::size_t m = 0; m < r.metrics.size(); ++m) {
            out << (m ? ", " : "") << "\"" << r.metrics[m].first
                << "\": " << r.metrics[m].second;
        }
        out << "}}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

int
faultloadMain(int argc, char** argv)
{
    std::string json_path = "BENCH_faults.json";
    std::uint64_t seeds = 1;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::stoull(argv[++i]);
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::cerr << "usage: bench_faultload [--json FILE]"
                         " [--seeds N] [--quick]\n";
            return arg == "--help" ? 0 : 2;
        }
    }

    setLogLevel(LogLevel::Silent);
    std::vector<Row> rows;

    for (std::uint64_t s = 0; s < seeds; ++s) {
        std::uint64_t seed = 29 + s * 17;
        for (double frac : quick ? std::vector<double>{0.5}
                                 : std::vector<double>{0.25, 0.5, 0.8})
            rows.push_back(powerFailRow(seed, frac, true));
        rows.push_back(powerFailRow(seed, 0.5, false));

        fault::MediaFaultCampaignConfig ecc;
        ecc.seed = seed + 1000;
        ecc.faults.readRberMean = 0.9;
        ecc.faults.wearRberSlope = 0.03;
        rows.push_back(
            mediaRow("media/ecc/seed" + std::to_string(seed), ecc));

        fault::MediaFaultCampaignConfig prog;
        prog.seed = seed + 2000;
        prog.faults.programFailProb = 0.01;
        prog.ops = 2500;
        rows.push_back(mediaRow(
            "media/program_fail/seed" + std::to_string(seed), prog));

        if (!quick)
            rows.push_back(ageingRow(seed));
    }

    bool failed = false;
    for (const Row& r : rows) {
        std::cout << r.name;
        for (const auto& [k, v] : r.metrics)
            std::cout << " " << k << "=" << v;
        std::cout << " fp=" << r.fingerprint;
        if (!r.error.empty()) {
            std::cout << "  ERROR: " << r.error;
            failed = true;
        }
        std::cout << "\n";
    }
    writeJson(rows, json_path);
    std::cout << (failed ? "FAILED" : "ok") << ": " << rows.size()
              << " campaign rows -> " << json_path << "\n";
    return failed ? 1 : 0;
}

} // namespace
} // namespace nvdimmc::bench

int
main(int argc, char** argv)
{
    try {
        return nvdimmc::bench::faultloadMain(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "bench_faultload: " << e.what() << "\n";
        return 1;
    }
}
