/**
 * @file
 * Paper Fig 12 (§VII-D1): Uncached 4 KB random-read performance of
 * the *hypothetical* NVDIMM-C device, where the NVM access is
 * replaced by a programmable delay tD and the modified nvdc driver
 * bypasses the FPGA, waiting three delays per uncached access (one
 * per refresh-window step).
 *
 * Paper series: tD = 0 -> 1503 MB/s; 1.85 us -> 914; 3.9 us -> 681;
 * 7.8 us -> 451 MB/s. NOTE (see EXPERIMENTS.md): the literal
 * 3 x tD wait the paper describes cannot produce the bandwidths it
 * reports for tD > 0 (3 x 7.8 us alone caps 4 KB ops at 175 MB/s),
 * so the *shape* (monotone drop, large win from media faster than
 * ~2 us) is the comparison target. We also report a second,
 * fully mechanistic series where tD is the media latency and the
 * whole CP/window path runs with the matching tREFI.
 */

#include "bench_common.hh"

namespace nvdimmc::bench
{
namespace
{

using workload::FioConfig;

double
paperMBps(int td_ns)
{
    switch (td_ns) {
      case 0: return 1503.0;
      case 1850: return 914.0;
      case 3900: return 681.0;
      case 7800: return 451.0;
    }
    return 0.0;
}

/** The paper's experiment: driver waits 3 x tD, no FPGA. */
void
BM_Fig12_Hypothetical(benchmark::State& state)
{
    auto td = static_cast<Tick>(state.range(0)) * kNs;
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeUncachedSystem([&](core::SystemConfig& c) {
            c.driver.hypothetical = true;
            c.driver.hypotheticalTd = td;
            c.nvmcEnabled = false;
            c.media = core::MediaKind::Delay;
            c.mediaBytes = 4 * kGiB;
        });
        FioConfig cfg;
        cfg.pattern = FioConfig::Pattern::RandRead;
        cfg.blockSize = 4096;
        cfg.threads = 1;
        auto [base, bytes] = uncachedRegion(*sys);
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.rampTime = 2 * kMs;
        cfg.runTime = 60 * kMs;
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        writeLatencyBreakdown("BM_Fig12_Hypothetical/" +
                              std::to_string(state.range(0)));
    }
    report(state, res, paperMBps(static_cast<int>(state.range(0))),
           0.0);
}

/**
 * Mechanistic variant: tD is the backend media's 4 KB latency and
 * tREFI is set to tD (the pairing the paper's labels imply), with the
 * full CP/refresh-window machinery running.
 */
void
BM_Fig12_Mechanistic(benchmark::State& state)
{
    auto td = static_cast<Tick>(state.range(0)) * kNs;
    workload::FioResult res;
    for (auto _ : state) {
        auto sys = makeUncachedSystem([&](core::SystemConfig& c) {
            c.media = core::MediaKind::Delay;
            c.mediaBytes = 4 * kGiB;
            c.delayMediaLatency = td;
            if (td > 0) {
                c.refresh.tREFI = td < 1950 * kNs ? 1950 * kNs : td;
                c.imc.refresh = c.refresh;
                c.nvmc.programmedRefresh = c.refresh;
            }
            // The hypothetical device has no PoC software FSM.
            c.nvmc.firmware = nvmc::FirmwareConfig::asic();
        });
        FioConfig cfg;
        cfg.pattern = FioConfig::Pattern::RandRead;
        cfg.blockSize = 4096;
        cfg.threads = 1;
        auto [base, bytes] = uncachedRegion(*sys);
        cfg.regionOffset = base;
        cfg.regionBytes = bytes;
        cfg.rampTime = 5 * kMs;
        cfg.runTime = 100 * kMs;
        res = runFio(sys->eq(), nvdcAccess(*sys), cfg);
        writeLatencyBreakdown("BM_Fig12_Mechanistic/" +
                              std::to_string(state.range(0)));
    }
    report(state, res, paperMBps(static_cast<int>(state.range(0))),
           0.0);
}

BENCHMARK(BM_Fig12_Hypothetical)
    ->Arg(0)->Arg(1850)->Arg(3900)->Arg(7800)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig12_Mechanistic)
    ->Arg(0)->Arg(1850)->Arg(3900)->Arg(7800)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nvdimmc::bench

NVDIMMC_BENCH_MAIN();
