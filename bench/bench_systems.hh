/**
 * @file
 * System-building helpers shared by the paper-reproduction benches
 * and the sweep runner. Kept free of any benchmark-harness include so
 * plain executables (bench/sweep_runner) can link without
 * google-benchmark.
 *
 * Every helper builds a self-contained system on the scaled bench
 * configuration (512 MiB DRAM cache fronting ~3.75 GiB of exposed
 * Z-NAND; all timing parameters — tRFC 1250 ns, tREFI 7.8 us,
 * DDR4-1600 — are the paper's).
 */

#ifndef NVDIMMC_BENCH_BENCH_SYSTEMS_HH
#define NVDIMMC_BENCH_BENCH_SYSTEMS_HH

#include <functional>
#include <memory>
#include <utility>

#include "backend/media_backend.hh"
#include "common/span.hh"
#include "core/system.hh"
#include "workload/fio.hh"

namespace nvdimmc::bench
{

/**
 * A request may legitimately miss a few refresh windows (poll pacing,
 * queueing behind another op's DMA), but a span stuck waiting for
 * windows longer than this many tREFI periods indicates a detector or
 * window-accounting bug; the span auditor flags it.
 */
inline constexpr std::uint64_t kWindowWaitBudgetRefi = 32;

/** Arm the span auditor's window-wait bound for @p cfg's refresh
 *  cadence (call once per system build; idempotent). */
inline void
armSpanAuditor(const core::SystemConfig& cfg)
{
    span::setWindowWaitCap(cfg.refresh.tREFI * kWindowWaitBudgetRefi);
}

/**
 * Channel count every bench system is built with (the --channels=N
 * knob; bench_common.hh's initObservability sets it, sweep_runner sets
 * it per point). Default 1 = the PoC machine.
 */
inline std::uint32_t&
benchChannels()
{
    static std::uint32_t channels = 1;
    return channels;
}

/**
 * Simulation thread count every bench system is built with (the
 * --threads=N|auto knob). 0 = classic serial kernel (default);
 * kBenchThreadsAuto = one executor per shard; any other N runs the
 * sharded kernel with N executors.
 */
inline constexpr std::uint32_t kBenchThreadsAuto = ~std::uint32_t{0};

inline std::uint32_t&
benchThreads()
{
    static std::uint32_t threads = 0;
    return threads;
}

/**
 * Media-transport backend every bench system is built with (the
 * --backend=nvdimmc|cxl|pmem knob). The benches select a backend, not
 * a wiring recipe: the factories below translate the kind into the
 * right system assembly. Default: the paper's CP-over-DDR4 module.
 */
inline backend::BackendKind&
benchBackend()
{
    static backend::BackendKind kind = backend::BackendKind::Nvdimmc;
    return kind;
}

/**
 * Resolve the --threads request against the shard count @p cfg will
 * actually build: channels x 2 when the media split applies (Z-NAND
 * channels each contribute a DDR-side and a media shard), channels
 * otherwise. The system clamps to hardware concurrency on top.
 */
inline std::uint32_t
resolvedBenchThreads(const core::SystemConfig& cfg)
{
    std::uint32_t t = benchThreads();
    if (t != kBenchThreadsAuto)
        return t;
    bool split =
        cfg.mediaShards && cfg.media == core::MediaKind::ZNand;
    return cfg.channels * (split ? 2 : 1);
}

/** Device access function over an NVDIMM-C system (timing-only). */
inline workload::AccessFn
nvdcAccess(core::NvdimmcSystem& sys)
{
    return [&sys](Addr off, std::uint32_t len, bool is_write,
                  std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };
}

/** Device access function over the baseline pmem system. */
inline workload::AccessFn
pmemAccess(core::BaselineSystem& sys)
{
    return [&sys](Addr off, std::uint32_t len, bool is_write,
                  std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };
}

/**
 * The one backend-aware config factory every hybrid-device bench
 * build goes through: scaled bench preset, the --channels / --backend
 * / --threads globals applied in that order, then the point's tweak
 * (which may still override any of them, including the backend via
 * cfg.applyCxlBackend()), the --threads=auto resolution, and the span
 * auditor armed for the resulting refresh cadence.
 */
inline core::SystemConfig
benchSystemConfig(std::function<void(core::SystemConfig&)> tweak = {})
{
    NVDC_ASSERT(benchBackend() != backend::BackendKind::Pmem,
                "--backend=pmem builds a BaselineSystem (use "
                "makeCachedDevice / makePmemSystem), not a hybrid "
                "NvdimmcSystem");
    core::SystemConfig cfg = core::SystemConfig::scaledBench();
    cfg.channels = benchChannels();
    if (benchBackend() == backend::BackendKind::CxlHybrid)
        cfg.applyCxlBackend();
    if (tweak)
        tweak(cfg);
    if (cfg.threads == 0)
        cfg.threads = resolvedBenchThreads(cfg);
    armSpanAuditor(cfg);
    return cfg;
}

/**
 * Build an NVDIMM-C system whose cache is pre-populated so the given
 * region is entirely *cached* (PTEs valid); FIO over it measures the
 * NVDC-Cached series.
 */
inline std::unique_ptr<core::NvdimmcSystem>
makeCachedSystem(std::function<void(core::SystemConfig&)> tweak = {})
{
    auto sys =
        std::make_unique<core::NvdimmcSystem>(benchSystemConfig(tweak));
    // Leave 64 slots per channel free so hits never evict.
    std::uint32_t slots = sys->totalSlotCount();
    sys->precondition(0, slots - 64 * sys->channelCount(), true);
    return sys;
}

/** Usable cached-region size for a system from makeCachedSystem(). */
inline std::uint64_t
cachedRegionBytes(core::NvdimmcSystem& sys)
{
    return std::uint64_t{sys.totalSlotCount() -
                         64 * sys.channelCount()} *
           4096;
}

/**
 * Build an NVDIMM-C system whose cache is full of dirty pages from a
 * low region; FIO over the remaining device space is all-miss
 * (writeback + cachefill per access): the NVDC-Uncached series.
 */
inline std::unique_ptr<core::NvdimmcSystem>
makeUncachedSystem(std::function<void(core::SystemConfig&)> tweak = {})
{
    auto sys =
        std::make_unique<core::NvdimmcSystem>(benchSystemConfig(tweak));
    sys->precondition(0, sys->totalSlotCount(), true);
    // The paper's uncached experiments run on a device whose blocks
    // all hold data (FIO preconditions the file), so every fill is a
    // real NAND cachefill.
    sys->driver().markEverWritten(
        0, sys->driver().capacityBytes() / 4096);
    return sys;
}

/** Region descriptor for FIO against an uncached system. */
inline std::pair<Addr, std::uint64_t>
uncachedRegion(core::NvdimmcSystem& sys)
{
    Addr base = std::uint64_t{sys.totalSlotCount() +
                              128 * sys.channelCount()} *
                4096;
    return {base, sys.driver().capacityBytes() - base};
}

/**
 * Build the emulated-pmem baseline with the --channels / --threads
 * globals applied (the BaselineConfig analogue of
 * benchSystemConfig(); the pmem machine has no media shards, so
 * --threads=auto resolves to one executor per channel).
 */
inline std::unique_ptr<core::BaselineSystem>
makePmemSystem(std::function<void(core::BaselineConfig&)> tweak = {})
{
    core::BaselineConfig cfg = core::BaselineConfig::scaledBench();
    cfg.channels = benchChannels();
    if (tweak)
        tweak(cfg);
    if (cfg.threads == 0 && benchThreads() != 0) {
        cfg.threads = benchThreads() == kBenchThreadsAuto
                          ? cfg.channels
                          : benchThreads();
    }
    return std::make_unique<core::BaselineSystem>(cfg);
}

/**
 * One device under test, whichever backend fronts it: the hybrid
 * transports build an NvdimmcSystem, --backend=pmem builds the
 * BaselineSystem, and the bench body talks to either through the same
 * handful of calls. This is what lets fig8/fig11/mixedload run the
 * *same series* against all three backends for the head-to-head.
 */
struct BenchDevice
{
    std::unique_ptr<core::NvdimmcSystem> nvdc;
    std::unique_ptr<core::BaselineSystem> pmem;

    EventQueue& eq() { return nvdc ? nvdc->eq() : pmem->eq(); }

    workload::AccessFn access()
    {
        return nvdc ? nvdcAccess(*nvdc) : pmemAccess(*pmem);
    }

    bool hardwareClean() const
    {
        return nvdc ? nvdc->hardwareClean() : true;
    }

    void dumpStats(std::ostream& os) const
    {
        nvdc ? nvdc->dumpStats(os) : pmem->dumpStats(os);
    }

    void dumpStatsJson(std::ostream& os) const
    {
        nvdc ? nvdc->dumpStatsJson(os) : pmem->dumpStatsJson(os);
    }

    /** The active system's telemetry collector (null when telemetry
     *  was off at construction). */
    telemetry::Collector* telemetryCollector()
    {
        return nvdc ? nvdc->telemetryCollector()
                    : pmem->telemetryCollector();
    }

    /** Region an all-hit (cached) load should target. */
    std::pair<Addr, std::uint64_t> cachedRegion()
    {
        if (nvdc)
            return {0, cachedRegionBytes(*nvdc)};
        return {0, std::min<std::uint64_t>(
                       pmem->driver().capacityBytes(), 2 * kGiB)};
    }

    /** Region an all-miss (uncached) load should target. The pmem
     *  baseline has no cache to miss; it serves the same region
     *  either way. */
    std::pair<Addr, std::uint64_t> missRegion()
    {
        if (nvdc)
            return uncachedRegion(*nvdc);
        return cachedRegion();
    }
};

/** Cached-series device for the selected --backend. */
inline BenchDevice
makeCachedDevice(std::function<void(core::SystemConfig&)> tweak = {})
{
    BenchDevice d;
    if (benchBackend() == backend::BackendKind::Pmem)
        d.pmem = makePmemSystem();
    else
        d.nvdc = makeCachedSystem(std::move(tweak));
    return d;
}

/** Uncached (all-miss) series device for the selected --backend. */
inline BenchDevice
makeUncachedDevice(std::function<void(core::SystemConfig&)> tweak = {})
{
    BenchDevice d;
    if (benchBackend() == backend::BackendKind::Pmem)
        d.pmem = makePmemSystem();
    else
        d.nvdc = makeUncachedSystem(std::move(tweak));
    return d;
}

/** Run one FIO measurement point. */
inline workload::FioResult
runFio(EventQueue& eq, const workload::AccessFn& fn,
       workload::FioConfig cfg)
{
    workload::FioJob job(eq, fn, cfg);
    return job.run();
}

} // namespace nvdimmc::bench

#endif // NVDIMMC_BENCH_BENCH_SYSTEMS_HH
