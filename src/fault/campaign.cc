#include "fault/campaign.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "core/power.hh"
#include "core/system.hh"
#include "core/system_config.hh"
#include "dram/channel_interleave.hh"
#include "fault/checkpoint.hh"
#include "workload/mixedload.hh"

namespace nvdimmc::fault
{

namespace
{

/** FNV-1a over simulation content — the campaign fingerprints. */
struct Fingerprint
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }

    void
    addBytes(const std::vector<std::uint8_t>& bytes)
    {
        for (std::uint8_t b : bytes) {
            h ^= b;
            h *= 0x100000001b3ull;
        }
    }

    std::string
    hex() const
    {
        std::ostringstream os;
        os << std::hex << h;
        return os.str();
    }
};

constexpr std::uint32_t kRecordBytes = 4096;

/** The standalone FTL rig config shared by the media/ageing runs. */
ftl::FtlConfig
rigFtlConfig(std::uint32_t read_retries, std::uint32_t ecc_bits)
{
    ftl::FtlConfig fc;
    fc.exposedFraction = 100.0 / 128.0; // GC slack for hostile runs.
    fc.gcLowWaterBlocks = 2;
    fc.gcHighWaterBlocks = 4;
    fc.readRetries = read_retries;
    fc.ecc.correctableBits = ecc_bits;
    return fc;
}

} // namespace

PowerFailCampaignResult
runPowerFailCampaign(const PowerFailCampaignConfig& cfg)
{
    core::SystemConfig sc = core::SystemConfig::scaledTest();
    sc.channels = cfg.channels;
    sc.threads = cfg.threads;
    core::NvdimmcSystem sys(sc);

    workload::MixedLoadConfig ml;
    ml.users = cfg.users;
    ml.transactionsPerUser = cfg.transactionsPerUser;
    ml.recordsPerTxn = cfg.recordsPerTxn;
    ml.recordBytes = kRecordBytes;
    ml.seed = cfg.seed;
    ml.haltAtTick = cfg.haltAtTick;
    ml.regionOffset = 0;
    ml.regionBytes =
        std::min<std::uint64_t>(sys.driver().capacityBytes(),
                                std::uint64_t{cfg.users} *
                                    cfg.regionSlotsPerUser *
                                    kRecordBytes);

    workload::DataDevice dev;
    dev.capacityBytes = sys.driver().capacityBytes();
    dev.read = [&sys](Addr a, std::uint32_t len, std::uint8_t* buf,
                      std::function<void()> cb) {
        sys.driver().read(a, len, buf, std::move(cb));
    };
    dev.write = [&sys](Addr a, std::uint32_t len,
                       const std::uint8_t* data,
                       std::function<void()> cb) {
        sys.driver().write(a, len, data, std::move(cb));
    };

    workload::MixedLoadResult mlres =
        workload::runMixedLoad(sys.eq(), dev, ml);

    core::PowerFailureScenario scenario;
    scenario.adrWorks = cfg.adrWorks;
    scenario.raceWindow = cfg.raceWindow;
    core::PowerFailureReport report =
        core::simulatePowerFailure(sys, scenario);

    // Recovery replay: the DRAM is gone; every committed record must
    // be reconstructible from the NVM backends alone. Reads go
    // post-mortem straight into each module's backend (the media
    // model copies page data at call time), so no stale workload
    // events are resumed.
    dram::ChannelInterleave il(cfg.channels,
                               dram::ChannelInterleave::kPageGranule);
    std::vector<std::uint8_t> buf(kRecordBytes);
    Fingerprint fp;
    PowerFailCampaignResult res;
    for (const workload::CommittedRecord& rec : mlres.committed) {
        std::uint64_t page = rec.addr / kRecordBytes;
        std::uint32_t ch = il.pageChannel(page);
        std::uint64_t local = il.localPage(page);
        sys.channel(ch).backend().readPage(local, buf.data(), [] {});
        bool ok = workload::checkRecordPattern(buf.data(), kRecordBytes,
                                               rec.seed);
        if (!ok)
            res.corruptRecords += 1;
        fp.add(rec.addr);
        fp.add(rec.seed);
        fp.add(ok ? 1 : 0);
    }

    res.halted = mlres.halted;
    res.workloadElapsed = mlres.elapsed;
    res.transactions = mlres.transactions;
    res.liveValidationFailures = mlres.validationFailures;
    res.committedRecords = mlres.committed.size();
    res.inFlightWrites = mlres.inFlightWrites;
    res.wpqFlushed = report.wpqFlushed;
    res.wpqLost = report.wpqLost;
    res.pagesDumped = report.pagesDumped;

    // The super-caps must power each dumped page's channel transfer +
    // program; that is the module's flush-on-fail energy/latency bill.
    Tick per_page =
        sc.znand.tPROG +
        nsToTicks(static_cast<double>(sc.znand.pageBytes) * 1000.0 /
                  sc.znand.channelMBps);
    res.recoveryTicks = static_cast<Tick>(res.pagesDumped) * per_page;

    fp.add(res.transactions);
    fp.add(res.workloadElapsed);
    fp.add(res.committedRecords);
    fp.add(res.inFlightWrites);
    fp.add(res.corruptRecords);
    fp.add(res.pagesDumped);
    fp.add(res.wpqFlushed);
    fp.add(res.wpqLost);
    res.fingerprint = fp.hex();
    // Corrupt committed records after recovery are the black-box
    // moment: dump the flight recorder before the harness reports.
    if (res.corruptRecords > 0 && telemetry::flightArmed())
        telemetry::flightDump("fault-corruption");
    return res;
}

MediaFaultCampaignResult
runMediaFaultCampaign(const MediaFaultCampaignConfig& cfg)
{
    EventQueue eq;
    nvm::ZNand nand(eq, nvm::ZNandParams::tiny());
    ftl::Ftl ftl(eq, nand,
                 rigFtlConfig(cfg.readRetries, cfg.eccCorrectableBits));
    MediaFaultInjector inj(cfg.faults);
    inj.attach(0, ftl, nand);

    Rng op_rng(cfg.seed, 0x4d454449ull); // "MEDI" stream.
    std::uint64_t working_set =
        std::min<std::uint64_t>(cfg.workingSetPages, ftl.pageCount());
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    std::vector<std::uint8_t> buf(kRecordBytes);

    MediaFaultCampaignResult res;
    for (unsigned i = 0; i < cfg.ops; ++i) {
        std::uint64_t lpn = op_rng.below(working_set);
        if (op_rng.uniform() < cfg.writeFraction) {
            std::uint64_t seed = op_rng.next64() | 1;
            workload::fillRecordPattern(buf.data(), kRecordBytes, seed);
            auto done = std::make_shared<bool>(false);
            ftl.writePage(lpn, buf.data(), [done] { *done = true; });
            eq.runAll();
            if (*done) {
                oracle[lpn] = seed;
                res.writes += 1;
            }
        } else {
            std::uint64_t uncorr_before =
                ftl.stats().uncorrectableReads.value();
            auto done = std::make_shared<bool>(false);
            ftl.readPage(lpn, buf.data(), [done] { *done = true; });
            eq.runAll();
            res.reads += 1;
            auto it = oracle.find(lpn);
            if (*done && it != oracle.end() &&
                !workload::checkRecordPattern(buf.data(), kRecordBytes,
                                              it->second)) {
                res.oracleMismatches += 1;
                if (ftl.stats().uncorrectableReads.value() ==
                    uncorr_before) {
                    // Bytes are wrong but nothing reported a failure:
                    // an integrity bug, not a modeled media error.
                    res.silentCorruptions += 1;
                }
            }
        }
    }
    eq.runAll();

    res.readErrorsInjected = inj.readErrorsInjected();
    res.programFailsInjected = inj.programFailsInjected();
    res.readRetries = ftl.stats().readRetries.value();
    res.readRetrySuccesses = ftl.stats().readRetrySuccesses.value();
    res.uncorrectableReads = ftl.stats().uncorrectableReads.value();
    res.grownBadBlocks = ftl.stats().grownBadBlocks.value();
    res.gcRelocations = ftl.stats().gcRelocations.value();
    res.invariantsOk = ftl.checkInvariants(&res.invariantWhy);

    Fingerprint fp;
    fp.add(res.reads);
    fp.add(res.writes);
    fp.add(res.readErrorsInjected);
    fp.add(res.programFailsInjected);
    fp.add(res.readRetries);
    fp.add(res.readRetrySuccesses);
    fp.add(res.uncorrectableReads);
    fp.add(res.grownBadBlocks);
    fp.add(res.gcRelocations);
    fp.add(res.oracleMismatches);
    fp.add(res.silentCorruptions);
    for (std::uint64_t b = 0; b < nand.params().totalBlocks(); ++b)
        fp.add(nand.eraseCount(b));
    res.fingerprint = fp.hex();
    if (res.silentCorruptions > 0 && telemetry::flightArmed())
        telemetry::flightDump("fault-corruption");
    return res;
}

namespace
{

/** One standalone device + workload state for the ageing campaign;
 *  two rigs (original and checkpoint-restored) must replay
 *  identically. */
struct AgeingRig
{
    EventQueue eq;
    nvm::ZNand nand;
    ftl::Ftl ftl;
    MediaFaultInjector inj;
    Rng rng;
    /** Ordered so sampling by index is deterministic. */
    std::map<std::uint64_t, std::uint64_t> oracle;
    std::uint64_t writesAcked = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t silent = 0;

    explicit AgeingRig(const AgeingCampaignConfig& cfg)
        : nand(eq, nvm::ZNandParams::tiny()),
          ftl(eq, nand, rigFtlConfig(cfg.readRetries,
                                     cfg.eccCorrectableBits)),
          inj(cfg.faults),
          rng(cfg.seed, 0x41474531ull) // "AGE1" stream.
    {
        inj.attach(0, ftl, nand);
    }

    void
    runRound(const AgeingCampaignConfig& cfg)
    {
        std::uint64_t working_set =
            std::min<std::uint64_t>(cfg.workingSetPages,
                                    ftl.pageCount());
        std::vector<std::uint8_t> buf(kRecordBytes);
        for (unsigned w = 0; w < cfg.writesPerRound; ++w) {
            std::uint64_t lpn = rng.below(working_set);
            std::uint64_t seed = rng.next64() | 1;
            workload::fillRecordPattern(buf.data(), kRecordBytes,
                                        seed);
            auto done = std::make_shared<bool>(false);
            ftl.writePage(lpn, buf.data(), [done] { *done = true; });
            eq.runAll();
            if (*done) {
                oracle[lpn] = seed;
                writesAcked += 1;
            }
        }
        // Spot-check a deterministic sample of the oracle each round
        // (retention under accumulated wear).
        unsigned checks =
            static_cast<unsigned>(std::min<std::uint64_t>(
                12, oracle.size()));
        for (unsigned c = 0; c < checks; ++c) {
            auto it = oracle.begin();
            std::advance(it, static_cast<long>(
                                 rng.below(oracle.size())));
            std::uint64_t uncorr_before =
                ftl.stats().uncorrectableReads.value();
            auto done = std::make_shared<bool>(false);
            ftl.readPage(it->first, buf.data(),
                         [done] { *done = true; });
            eq.runAll();
            if (*done &&
                !workload::checkRecordPattern(buf.data(), kRecordBytes,
                                              it->second)) {
                mismatches += 1;
                if (ftl.stats().uncorrectableReads.value() ==
                    uncorr_before)
                    silent += 1;
            }
        }
    }
};

} // namespace

AgeingCampaignResult
runAgeingCampaign(const AgeingCampaignConfig& cfg)
{
    AgeingRig rig(cfg);
    AgeingCampaignResult res;

    unsigned mid = cfg.rounds / 2;
    std::vector<std::uint8_t> device_image;
    std::vector<std::uint8_t> inj_image;
    std::uint64_t rng_state = 0;
    std::uint64_t rng_inc = 0;
    std::map<std::uint64_t, std::uint64_t> oracle_mid;
    std::uint64_t writes_mid = 0, mismatches_mid = 0, silent_mid = 0;
    bool snapshotted = false;

    for (unsigned r = 0; r < cfg.rounds; ++r) {
        if (cfg.verifyCheckpoint && r == mid) {
            rig.eq.runAll();
            device_image = checkpointDevice(rig.nand, rig.ftl);
            ByteWriter w;
            rig.inj.saveState(w);
            inj_image = w.take();
            rng_state = rig.rng.rawState();
            rng_inc = rig.rng.rawInc();
            oracle_mid = rig.oracle;
            writes_mid = rig.writesAcked;
            mismatches_mid = rig.mismatches;
            silent_mid = rig.silent;
            snapshotted = true;
            res.checkpointBytes = device_image.size();
        }
        rig.runRound(cfg);
        if (!rig.ftl.checkInvariants(&res.invariantWhy)) {
            res.invariantsOk = false;
            break;
        }
    }
    rig.eq.runAll();
    std::vector<std::uint8_t> final_a =
        checkpointDevice(rig.nand, rig.ftl);

    if (snapshotted && res.invariantsOk) {
        // Replay the second half from the restored image: content
        // must come out bit-for-bit identical (the checkpoint streams
        // carry no ticks or stats, only device state).
        AgeingRig replay(cfg);
        restoreDevice(device_image, replay.nand, replay.ftl);
        ByteReader ir(inj_image);
        replay.inj.loadState(ir);
        replay.rng.setRaw(rng_state, rng_inc);
        replay.oracle = oracle_mid;
        replay.writesAcked = writes_mid;
        replay.mismatches = mismatches_mid;
        replay.silent = silent_mid;
        for (unsigned r = mid; r < cfg.rounds; ++r)
            replay.runRound(cfg);
        replay.eq.runAll();
        std::vector<std::uint8_t> final_b =
            checkpointDevice(replay.nand, replay.ftl);
        res.checkpointDeterministic =
            final_a == final_b &&
            replay.writesAcked == rig.writesAcked &&
            replay.mismatches == rig.mismatches &&
            replay.silent == rig.silent;
    }

    res.writes = rig.writesAcked;
    res.gcErases = rig.ftl.stats().gcErases.value();
    res.gcRelocations = rig.ftl.stats().gcRelocations.value();
    res.grownBadBlocks = rig.ftl.stats().grownBadBlocks.value();
    res.wearSpread = rig.ftl.wearSpread();
    res.maxEraseCount = rig.nand.maxEraseCount();
    res.oracleMismatches = rig.mismatches;
    res.silentCorruptions = rig.silent;

    Fingerprint fp;
    fp.addBytes(final_a);
    fp.add(res.writes);
    fp.add(res.oracleMismatches);
    fp.add(res.silentCorruptions);
    fp.add(res.checkpointDeterministic ? 1 : 0);
    res.fingerprint = fp.hex();
    if ((res.silentCorruptions > 0 || !res.checkpointDeterministic) &&
        telemetry::flightArmed())
        telemetry::flightDump("fault-corruption");
    return res;
}

} // namespace nvdimmc::fault
