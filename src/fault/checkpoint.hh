/**
 * @file
 * Device-state checkpoint/restore for long fault campaigns.
 *
 * A checkpoint captures the persistent state of one media channel —
 * ZNand page contents, block cursors, erase counts and bad blocks,
 * plus the FTL's mapping, block metadata, free/active lists and
 * bad-block set — framed with a magic + version header. It does NOT
 * capture simulation-transient state (event queues, die busy times,
 * in-flight ops), so checkpoints must be taken at a quiesced instant:
 * event queue drained, no GC in flight, no pending writes. Restoring
 * into a freshly built device of identical geometry resumes a
 * compressed-time ageing campaign exactly where it stopped; two
 * checkpoints of identical state compare equal byte-for-byte.
 */

#ifndef NVDIMMC_FAULT_CHECKPOINT_HH
#define NVDIMMC_FAULT_CHECKPOINT_HH

#include <cstdint>
#include <vector>

#include "ftl/ftl.hh"
#include "nvm/znand.hh"

namespace nvdimmc::fault
{

/** Snapshot one quiesced (nand, ftl) channel pair. */
std::vector<std::uint8_t> checkpointDevice(const nvm::ZNand& nand,
                                           const ftl::Ftl& ftl);

/** Restore a snapshot into a same-geometry (nand, ftl) pair. */
void restoreDevice(const std::vector<std::uint8_t>& image,
                   nvm::ZNand& nand, ftl::Ftl& ftl);

} // namespace nvdimmc::fault

#endif // NVDIMMC_FAULT_CHECKPOINT_HH
