/**
 * @file
 * Deterministic media-fault injection (ROADMAP item 5).
 *
 * A MediaFaultInjector owns one Rng stream per channel and installs
 * two hooks into that channel's media stack:
 *
 *  - Ftl read-error hook: every physical-page read attempt gets a raw
 *    bit-error count sampled from Poisson(readRberMean +
 *    wearRberSlope * eraseCount(block)), so wear makes pages noisier —
 *    the retention/endurance coupling every ageing study needs.
 *  - ZNand program-fault hook: each program fails with
 *    programFailProb, exercising grown-defect retirement and GC
 *    relocation under pressure.
 *
 * Both hooks run inside the channel's media event context, whose event
 * order is deterministic at every `--threads` value, so a campaign's
 * fault sequence replays byte-identically regardless of executor
 * count. The injector's Rng state is checkpointable alongside the
 * device state (fault/checkpoint.hh).
 */

#ifndef NVDIMMC_FAULT_FAULT_HH
#define NVDIMMC_FAULT_FAULT_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/serialize.hh"
#include "ftl/ftl.hh"
#include "nvm/znand.hh"

namespace nvdimmc::fault
{

/** Media-fault rates. All zero = a healthy device. */
struct MediaFaultConfig
{
    /** Mean raw bit errors per page read on pristine media. */
    double readRberMean = 0.0;
    /** Extra mean raw bit errors per erase of the page's block. */
    double wearRberSlope = 0.0;
    /** Probability a page program reports a grown defect. */
    double programFailProb = 0.0;
    std::uint64_t seed = 1;
};

/** Injector over one or more (Ftl, ZNand) channel pairs. */
class MediaFaultInjector
{
  public:
    explicit MediaFaultInjector(const MediaFaultConfig& cfg)
        : cfg_(cfg)
    {
    }

    ~MediaFaultInjector() { detachAll(); }

    MediaFaultInjector(const MediaFaultInjector&) = delete;
    MediaFaultInjector& operator=(const MediaFaultInjector&) = delete;

    /**
     * Install the hooks on channel @p channel's stack. The Rng stream
     * is keyed on the channel index, so multi-channel campaigns stay
     * deterministic per channel no matter how channels interleave in
     * wall-clock time.
     */
    void attach(std::uint32_t channel, ftl::Ftl& ftl,
                nvm::ZNand& nand);

    /** Remove every installed hook (safe to call twice). */
    void detachAll();

    /** @name Injection tallies, summed over channels. Tallies are
     *  kept per channel (each updated only from its own media shard)
     *  and summed here; call only while the simulation is stopped. */
    /** @{ */
    std::uint64_t readErrorsInjected() const;
    std::uint64_t programFailsInjected() const;
    /** @} */

    /** @name Rng-state checkpointing (ageing campaigns). */
    /** @{ */
    void saveState(ByteWriter& w) const;
    void loadState(ByteReader& r);
    /** @} */

    const MediaFaultConfig& config() const { return cfg_; }

  private:
    struct ChannelHooks
    {
        ftl::Ftl* ftl = nullptr;
        nvm::ZNand* nand = nullptr;
        Rng rng{1};
        std::uint64_t readErrors = 0;
        std::uint64_t programFails = 0;
    };

    std::uint32_t samplePoisson(Rng& rng, double mean) const;

    MediaFaultConfig cfg_;
    std::vector<ChannelHooks> hooks_;
};

} // namespace nvdimmc::fault

#endif // NVDIMMC_FAULT_FAULT_HH
