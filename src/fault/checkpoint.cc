#include "fault/checkpoint.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace nvdimmc::fault
{

namespace
{

constexpr std::uint32_t kMagic = 0x4e434b50; // "PKCN"
constexpr std::uint32_t kVersion = 1;

} // namespace

std::vector<std::uint8_t>
checkpointDevice(const nvm::ZNand& nand, const ftl::Ftl& ftl)
{
    ByteWriter w;
    w.u32(kMagic);
    w.u32(kVersion);
    nand.saveState(w);
    ftl.saveState(w);
    return w.take();
}

void
restoreDevice(const std::vector<std::uint8_t>& image,
              nvm::ZNand& nand, ftl::Ftl& ftl)
{
    ByteReader r(image);
    if (r.u32() != kMagic)
        fatal("device checkpoint: bad magic");
    std::uint32_t version = r.u32();
    if (version != kVersion)
        fatal("device checkpoint: unsupported version ", version);
    nand.loadState(r);
    ftl.loadState(r);
    if (r.remaining() != 0)
        fatal("device checkpoint: ", r.remaining(),
              " trailing bytes (stream framing bug)");
}

} // namespace nvdimmc::fault
