#include "fault/fault.hh"

#include <cmath>

#include "common/logging.hh"

namespace nvdimmc::fault
{

std::uint32_t
MediaFaultInjector::samplePoisson(Rng& rng, double mean) const
{
    if (mean <= 0.0)
        return 0;
    // Inversion, as in ftl::Ecc: means stay small enough for the
    // loop to terminate immediately in practice.
    double l = std::exp(-mean);
    std::uint32_t k = 0;
    double p = 1.0;
    do {
        ++k;
        p *= rng.uniform();
    } while (p > l && k < 100000);
    return k - 1;
}

void
MediaFaultInjector::attach(std::uint32_t channel, ftl::Ftl& ftl,
                           nvm::ZNand& nand)
{
    if (channel >= hooks_.size())
        hooks_.resize(channel + 1);
    ChannelHooks& h = hooks_[channel];
    NVDC_ASSERT(h.ftl == nullptr, "channel already attached");
    h.ftl = &ftl;
    h.nand = &nand;
    h.rng = Rng(cfg_.seed, 0x464c5400ull + channel);

    ftl.setReadErrorHook([this, channel](std::uint64_t ppn) {
        ChannelHooks& ch = hooks_[channel];
        double mean = cfg_.readRberMean +
                      cfg_.wearRberSlope *
                          ch.nand->eraseCount(
                              ch.nand->flatBlockOfPage(ppn));
        std::uint32_t errors = samplePoisson(ch.rng, mean);
        if (errors > 0)
            ch.readErrors += 1;
        return errors;
    });
    nand.setProgramFaultHook([this, channel](std::uint64_t) {
        ChannelHooks& ch = hooks_[channel];
        bool inject = cfg_.programFailProb > 0.0 &&
                      ch.rng.chance(cfg_.programFailProb);
        if (inject)
            ch.programFails += 1;
        return inject;
    });
}

std::uint64_t
MediaFaultInjector::readErrorsInjected() const
{
    std::uint64_t sum = 0;
    for (const ChannelHooks& h : hooks_)
        sum += h.readErrors;
    return sum;
}

std::uint64_t
MediaFaultInjector::programFailsInjected() const
{
    std::uint64_t sum = 0;
    for (const ChannelHooks& h : hooks_)
        sum += h.programFails;
    return sum;
}

void
MediaFaultInjector::detachAll()
{
    for (ChannelHooks& h : hooks_) {
        if (h.ftl)
            h.ftl->setReadErrorHook(nullptr);
        if (h.nand)
            h.nand->setProgramFaultHook(nullptr);
        h.ftl = nullptr;
        h.nand = nullptr;
    }
}

void
MediaFaultInjector::saveState(ByteWriter& w) const
{
    w.tag(0x314a4e49); // "INJ1"
    w.u64(hooks_.size());
    for (const ChannelHooks& h : hooks_) {
        w.u64(h.rng.rawState());
        w.u64(h.rng.rawInc());
        w.u64(h.readErrors);
        w.u64(h.programFails);
    }
}

void
MediaFaultInjector::loadState(ByteReader& r)
{
    r.expectTag(0x314a4e49);
    std::uint64_t n = r.u64();
    if (n != hooks_.size())
        fatal("MediaFaultInjector checkpoint channel-count mismatch");
    for (ChannelHooks& h : hooks_) {
        std::uint64_t state = r.u64();
        std::uint64_t inc = r.u64();
        h.rng.setRaw(state, inc);
        h.readErrors = r.u64();
        h.programFails = r.u64();
    }
}

} // namespace nvdimmc::fault
