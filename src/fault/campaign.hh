/**
 * @file
 * Fault campaigns: scripted adversarial scenarios over the stack.
 *
 * Three campaign kinds (ROADMAP item 5):
 *
 *  - Power-fail: run the mixed-load validator against a full
 *    NVDIMM-C system, cut power at an arbitrary tick, let ADR and the
 *    firmware's flush-on-fail dump run, then replay every committed
 *    record straight out of the NVM backend and count corruption.
 *  - Media-fault: drive a standalone FTL + Z-NAND pair with seeded
 *    read errors and program failures, checking that ECC outcomes,
 *    read-retry, bad-block retirement and GC relocation preserve an
 *    oracle of every acked write.
 *  - Ageing: compressed-time overwrite rounds that push wear
 *    leveling and GC through simulated months, with wear-coupled
 *    error rates, invariant sweeps every round, and a mid-campaign
 *    checkpoint/restore whose replay must reproduce the original run
 *    bit-for-bit.
 *
 * Every campaign returns a fingerprint string derived only from
 * simulation content (no host pointers, no wall clock), so two runs
 * with the same seed — at any `--threads` value — must produce equal
 * fingerprints. Tests and the faults sweep assert exactly that.
 */

#ifndef NVDIMMC_FAULT_CAMPAIGN_HH
#define NVDIMMC_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "fault/fault.hh"

namespace nvdimmc::fault
{

/** Power-fail campaign knobs. */
struct PowerFailCampaignConfig
{
    std::uint64_t seed = 1;
    /** NVDIMM-C modules (device pages interleave across them). */
    std::uint32_t channels = 2;
    /** Executor threads (0 = classic serial kernel; campaigns assert
     *  determinism across values >= 1). */
    std::uint32_t threads = 1;
    /** Cut power once simulated time reaches this tick (0 = let the
     *  workload finish first, then cut — everything is committed). */
    Tick haltAtTick = 0;
    bool adrWorks = true;
    bool raceWindow = false;
    unsigned users = 6;
    unsigned transactionsPerUser = 4;
    unsigned recordsPerTxn = 2;
    /** Record slots per user (region size = users * slots * 4 KB). */
    std::uint64_t regionSlotsPerUser = 24;
};

/** Power-fail campaign outcome. */
struct PowerFailCampaignResult
{
    bool halted = false;           ///< Power cut mid-run?
    Tick workloadElapsed = 0;      ///< Ticks the workload ran.
    std::uint64_t transactions = 0;
    std::uint64_t liveValidationFailures = 0; ///< Pre-cut failures.
    std::uint64_t committedRecords = 0;
    std::uint64_t inFlightWrites = 0;
    std::uint64_t corruptRecords = 0; ///< Post-recovery mismatches.
    std::uint64_t wpqFlushed = 0;
    std::uint64_t wpqLost = 0;
    std::uint64_t pagesDumped = 0;
    /** Modeled flush-on-fail duration: the super-caps must power the
     *  dumped pages' NAND transfers + programs. */
    Tick recoveryTicks = 0;
    std::string fingerprint;
};

PowerFailCampaignResult
runPowerFailCampaign(const PowerFailCampaignConfig& cfg);

/** Media-fault campaign knobs. */
struct MediaFaultCampaignConfig
{
    std::uint64_t seed = 1;
    MediaFaultConfig faults;
    std::uint32_t readRetries = 2;
    /** Correction capability of the rig's ECC. Deliberately weak
     *  (vs the production 72 bits / 4 KB) so modest injected RBER
     *  means actually cross into retry/uncorrectable territory. */
    std::uint32_t eccCorrectableBits = 2;
    unsigned ops = 1500;
    double writeFraction = 0.5;
    /** Logical pages the op stream touches. */
    std::uint64_t workingSetPages = 256;
};

/** Media-fault campaign outcome. */
struct MediaFaultCampaignResult
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t readErrorsInjected = 0;
    std::uint64_t programFailsInjected = 0;
    std::uint64_t readRetries = 0;
    std::uint64_t readRetrySuccesses = 0;
    std::uint64_t uncorrectableReads = 0;
    std::uint64_t grownBadBlocks = 0;
    std::uint64_t gcRelocations = 0;
    std::uint64_t oracleMismatches = 0;
    /** Mismatches the FTL did NOT flag as uncorrectable — real
     *  integrity bugs; must be zero. */
    std::uint64_t silentCorruptions = 0;
    bool invariantsOk = true;
    std::string invariantWhy;
    std::string fingerprint;
};

MediaFaultCampaignResult
runMediaFaultCampaign(const MediaFaultCampaignConfig& cfg);

/** Ageing campaign knobs. */
struct AgeingCampaignConfig
{
    std::uint64_t seed = 1;
    /** Overwrite rounds ("months" of compressed duty cycle). */
    unsigned rounds = 32;
    unsigned writesPerRound = 96;
    std::uint64_t workingSetPages = 192;
    MediaFaultConfig faults;
    std::uint32_t readRetries = 2;
    /** See MediaFaultCampaignConfig::eccCorrectableBits. */
    std::uint32_t eccCorrectableBits = 2;
    /** Snapshot at rounds/2, replay the second half from the restored
     *  image and compare content digests. */
    bool verifyCheckpoint = true;
};

/** Ageing campaign outcome. */
struct AgeingCampaignResult
{
    std::uint64_t writes = 0;
    std::uint64_t gcErases = 0;
    std::uint64_t gcRelocations = 0;
    std::uint64_t grownBadBlocks = 0;
    std::uint32_t wearSpread = 0;
    std::uint32_t maxEraseCount = 0;
    std::uint64_t oracleMismatches = 0;
    std::uint64_t silentCorruptions = 0;
    bool invariantsOk = true;
    std::string invariantWhy;
    /** Restored-image replay reproduced the original second half? */
    bool checkpointDeterministic = true;
    std::uint64_t checkpointBytes = 0;
    std::string fingerprint;
};

AgeingCampaignResult runAgeingCampaign(const AgeingCampaignConfig& cfg);

} // namespace nvdimmc::fault

#endif // NVDIMMC_FAULT_CAMPAIGN_HH
