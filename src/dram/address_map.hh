/**
 * @file
 * Linear channel address <-> DRAM coordinate mapping.
 *
 * Layout is Row : BankGroup : Bank : Column : BurstOffset, so
 * consecutive 64 B bursts stay inside the open row (open-page
 * friendly) and successive rows rotate across bank groups.
 */

#ifndef NVDIMMC_DRAM_ADDRESS_MAP_HH
#define NVDIMMC_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"

namespace nvdimmc::dram
{

/** Coordinates of one 64 B burst inside a rank. */
struct DramCoord
{
    std::uint8_t bankGroup = 0;
    std::uint8_t bank = 0;
    std::uint32_t row = 0;
    std::uint32_t col = 0; ///< Column address in burst (64 B) units.

    bool operator==(const DramCoord&) const = default;
};

/** Geometry of one rank and the derived address mapping. */
class AddressMap
{
  public:
    static constexpr std::uint32_t kBurstBytes = 64;

    /**
     * @param capacity_bytes total rank capacity; must be a power of
     *        two multiple of rowBytes * banks.
     * @param row_bytes bytes per row (page size), default 8 KiB.
     */
    explicit AddressMap(std::uint64_t capacity_bytes,
                        std::uint32_t row_bytes = 8192,
                        std::uint8_t bank_groups = 4,
                        std::uint8_t banks_per_group = 4);

    std::uint64_t capacity() const { return capacity_; }
    std::uint32_t rowBytes() const { return rowBytes_; }
    std::uint32_t burstsPerRow() const { return burstsPerRow_; }
    std::uint32_t rows() const { return rows_; }
    std::uint8_t bankGroups() const { return bankGroups_; }
    std::uint8_t banksPerGroup() const { return banksPerGroup_; }
    std::uint32_t totalBanks() const
    {
        return std::uint32_t{bankGroups_} * banksPerGroup_;
    }

    /** Decompose a byte address (must be < capacity). */
    DramCoord decompose(Addr addr) const;

    /** Recompose a coordinate into the base byte address of its burst. */
    Addr compose(const DramCoord& coord) const;

    /** Flat bank index in [0, totalBanks). */
    std::uint32_t flatBank(const DramCoord& c) const
    {
        return std::uint32_t{c.bankGroup} * banksPerGroup_ + c.bank;
    }

  private:
    std::uint64_t capacity_;
    std::uint32_t rowBytes_;
    std::uint32_t burstsPerRow_;
    std::uint32_t rows_;
    std::uint8_t bankGroups_;
    std::uint8_t banksPerGroup_;
};

} // namespace nvdimmc::dram

#endif // NVDIMMC_DRAM_ADDRESS_MAP_HH
