/**
 * @file
 * Channel interleave map: the flat physical address space the host
 * (and the nvdc driver) sees is striped round-robin across N DDR4
 * channels at a configurable granule (4 KB page or 256 B line, the
 * two modes Skylake BIOSes expose).
 *
 * Flat granule u lives on channel u % N at local granule u / N, so
 * every channel sees a dense local address space of capacity/N bytes
 * and consecutive flat granules hit consecutive channels — the
 * bandwidth-interleaving every production NVDIMM deployment uses
 * (paper §VII scaling discussion; the evaluated Skylake host has six
 * channels per socket).
 *
 * Device pages (4 KB) are always assigned whole to one owning channel
 * (pageChannel): an NVDIMM-C module's NVMC can only DMA into its own
 * module's DRAM, so a driver cache slot can never stripe across
 * modules. Sub-page (256 B) interleave therefore only applies to raw
 * host DRAM streams (the pmem baseline); the NVDIMM-C DAX region
 * interleaves at page granularity.
 *
 * With N == 1 every mapping below is the identity, which is what keeps
 * the single-channel topology byte-identical to the pre-refactor
 * simulator.
 */

#ifndef NVDIMMC_DRAM_CHANNEL_INTERLEAVE_HH
#define NVDIMMC_DRAM_CHANNEL_INTERLEAVE_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace nvdimmc::dram
{

/** Flat-address <-> (channel, local-address) interleave map. */
class ChannelInterleave
{
  public:
    static constexpr std::uint32_t kPageGranule = 4096;
    static constexpr std::uint32_t kLineGranule = 256;
    static constexpr std::uint32_t kPageBytes = 4096;

    /** Where a flat address landed. */
    struct Target
    {
        std::uint32_t channel;
        Addr local;
    };

    explicit ChannelInterleave(std::uint32_t channels = 1,
                               std::uint32_t granule = kPageGranule)
        : channels_(channels), granule_(granule)
    {
        NVDC_ASSERT(channels >= 1, "need at least one channel");
        NVDC_ASSERT(granule == kPageGranule || granule == kLineGranule,
                    "interleave granule must be 4096 or 256");
    }

    std::uint32_t channels() const { return channels_; }
    std::uint32_t granule() const { return granule_; }

    /** Route a flat address to its channel + channel-local address. */
    Target route(Addr flat) const
    {
        Addr unit = flat / granule_;
        return {static_cast<std::uint32_t>(unit % channels_),
                (unit / channels_) * granule_ + flat % granule_};
    }

    /** Inverse of route(): rebuild the flat address. */
    Addr flatten(std::uint32_t channel, Addr local) const
    {
        Addr unit = local / granule_;
        return (unit * channels_ + channel) * granule_ +
               local % granule_;
    }

    /** Owning channel of a 4 KB device page (whole-page assignment;
     *  see the file comment for why slots never stripe). */
    std::uint32_t pageChannel(std::uint64_t page) const
    {
        return static_cast<std::uint32_t>(page % channels_);
    }

    /** Module-local page index of a device page on its channel. */
    std::uint64_t localPage(std::uint64_t page) const
    {
        return page / channels_;
    }

    /** Inverse of (pageChannel, localPage). */
    std::uint64_t flattenPage(std::uint32_t channel,
                              std::uint64_t local_page) const
    {
        return local_page * channels_ + channel;
    }

    /** A line access (64 B) never straddles a granule. */
    static_assert(kLineGranule % 64 == 0, "granule must hold lines");

  private:
    std::uint32_t channels_;
    std::uint32_t granule_;
};

} // namespace nvdimmc::dram

#endif // NVDIMMC_DRAM_CHANNEL_INTERLEAVE_HH
