#include "dram/address_map.hh"

#include "common/logging.hh"

namespace nvdimmc::dram
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

AddressMap::AddressMap(std::uint64_t capacity_bytes,
                       std::uint32_t row_bytes,
                       std::uint8_t bank_groups,
                       std::uint8_t banks_per_group)
    : capacity_(capacity_bytes),
      rowBytes_(row_bytes),
      bankGroups_(bank_groups),
      banksPerGroup_(banks_per_group)
{
    if (!isPow2(capacity_bytes) || !isPow2(row_bytes) ||
        !isPow2(bank_groups) || !isPow2(banks_per_group)) {
        fatal("AddressMap: all geometry parameters must be powers of 2");
    }
    if (row_bytes < kBurstBytes)
        fatal("AddressMap: row smaller than one burst");
    burstsPerRow_ = rowBytes_ / kBurstBytes;
    std::uint64_t per_row_span =
        std::uint64_t{rowBytes_} * totalBanks();
    if (capacity_bytes < per_row_span || capacity_bytes % per_row_span)
        fatal("AddressMap: capacity not a multiple of row*banks");
    rows_ = static_cast<std::uint32_t>(capacity_bytes / per_row_span);
}

DramCoord
AddressMap::decompose(Addr addr) const
{
    NVDC_ASSERT(addr < capacity_, "address ", addr, " beyond capacity");
    std::uint64_t burst = addr / kBurstBytes;

    DramCoord c;
    c.col = static_cast<std::uint32_t>(burst % burstsPerRow_);
    burst /= burstsPerRow_;
    c.bank = static_cast<std::uint8_t>(burst % banksPerGroup_);
    burst /= banksPerGroup_;
    c.bankGroup = static_cast<std::uint8_t>(burst % bankGroups_);
    burst /= bankGroups_;
    c.row = static_cast<std::uint32_t>(burst);
    return c;
}

Addr
AddressMap::compose(const DramCoord& c) const
{
    std::uint64_t burst = c.row;
    burst = burst * bankGroups_ + c.bankGroup;
    burst = burst * banksPerGroup_ + c.bank;
    burst = burst * burstsPerRow_ + c.col;
    Addr addr = burst * kBurstBytes;
    NVDC_ASSERT(addr < capacity_, "composed address beyond capacity");
    return addr;
}

} // namespace nvdimmc::dram
