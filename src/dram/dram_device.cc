#include "dram/dram_device.hh"

#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace nvdimmc::dram
{

DramDevice::DramDevice(const AddressMap& map, const Ddr4Timing& timing,
                       bool store_data, bool panic_on_violation)
    : map_(map),
      timing_(timing),
      storeData_(store_data),
      panicOnViolation_(panic_on_violation),
      banks_(map.totalBanks())
{
}

void
DramDevice::recordViolation(Tick now, std::string what)
{
    stats_.violations.inc();
    violations_.push_back({now, what});
    if (panicOnViolation_)
        panic("DRAM protocol violation @", now, ": ", what);
    else
        warn("DRAM protocol violation @", now, ": ", what);
}

bool
DramDevice::allBanksIdle() const
{
    for (const auto& b : banks_) {
        if (b.state() != Bank::State::Idle)
            return false;
    }
    return true;
}

bool
DramDevice::checkGlobal(const Ddr4Command& cmd, Tick now)
{
    // Nothing but SRX is legal in self-refresh; nothing at all is
    // legal while the device is actually refreshing.
    if (selfRefresh_ && cmd.op != Ddr4Op::SelfRefreshExit &&
        cmd.op != Ddr4Op::Deselect && cmd.op != Ddr4Op::Nop) {
        recordViolation(now, "command during self-refresh: " +
                        cmd.describe());
        return false;
    }
    if (inRefresh(now) && cmd.op != Ddr4Op::Deselect &&
        cmd.op != Ddr4Op::Nop) {
        std::ostringstream os;
        os << cmd.describe() << " during refresh (ends at "
           << refreshEndsAt_ << ")";
        recordViolation(now, os.str());
        return false;
    }
    if (selfRefreshExitAt_ != 0 && now < selfRefreshExitAt_ &&
        cmd.op != Ddr4Op::Deselect && cmd.op != Ddr4Op::Nop) {
        recordViolation(now, "command violates tXS after SRX");
        return false;
    }
    return true;
}

IssueResult
DramDevice::handleCas(const Ddr4Command& cmd, Tick now, bool is_read,
                      bool auto_precharge)
{
    Bank& bank = banks_[map_.flatBank({cmd.bankGroup, cmd.bank, 0, 0})];

    // tCCD: CAS-to-CAS spacing, tighter within a bank group.
    if (lastCasTick_ != kTickNever) {
        Tick ccd = (cmd.bankGroup == lastCasBg_) ? timing_.tCCD_L
                                                 : timing_.tCCD_S;
        if (now < lastCasTick_ + ccd) {
            recordViolation(now, std::string("tCCD violation on ") +
                            cmd.describe());
            return {false, 0, 0};
        }
    }

    BankCheck chk = is_read ? bank.canRead(now, cmd.row, timing_)
                            : bank.canWrite(now, cmd.row, timing_);
    if (!chk.ok) {
        recordViolation(now, chk.reason + " (" + cmd.describe() + ")");
        return {false, 0, 0};
    }

    if (is_read) {
        bank.read(now, timing_);
        stats_.reads.inc();
    } else {
        bank.write(now, timing_);
        stats_.writes.inc();
    }
    lastCasTick_ = now;
    lastCasBg_ = cmd.bankGroup;

    if (auto_precharge)
        bank.precharge(now + (is_read ? timing_.tRTP : timing_.tWR));

    IssueResult res;
    Tick lat = is_read ? timing_.tCL : timing_.tCWL;
    res.dataStart = now + lat;
    res.dataEnd = res.dataStart + timing_.burstTime();
    return res;
}

IssueResult
DramDevice::issue(const Ddr4Command& cmd, Tick now)
{
    if (!checkGlobal(cmd, now))
        return {false, 0, 0};

    switch (cmd.op) {
      case Ddr4Op::Deselect:
      case Ddr4Op::Nop:
        return {};

      case Ddr4Op::Activate: {
        Bank& bank =
            banks_[map_.flatBank({cmd.bankGroup, cmd.bank, 0, 0})];

        if (lastActTick_ != kTickNever) {
            Tick rrd = (cmd.bankGroup == lastActBg_) ? timing_.tRRD_L
                                                     : timing_.tRRD_S;
            if (now < lastActTick_ + rrd) {
                recordViolation(now, "tRRD violation on " +
                                cmd.describe());
                return {false, 0, 0};
            }
        }
        while (!actWindow_.empty() &&
               actWindow_.front() + timing_.tFAW <= now) {
            actWindow_.pop_front();
        }
        if (actWindow_.size() >= 4) {
            recordViolation(now, "tFAW violation on " + cmd.describe());
            return {false, 0, 0};
        }

        BankCheck chk = bank.canActivate(now, timing_);
        if (!chk.ok) {
            recordViolation(now, chk.reason + " (" + cmd.describe() + ")");
            return {false, 0, 0};
        }
        if (cmd.row >= map_.rows()) {
            recordViolation(now, "ACT to nonexistent row");
            return {false, 0, 0};
        }
        bank.activate(now, cmd.row);
        lastActTick_ = now;
        lastActBg_ = cmd.bankGroup;
        actWindow_.push_back(now);
        stats_.activates.inc();
        return {};
      }

      case Ddr4Op::Read:
        return handleCas(cmd, now, true, false);
      case Ddr4Op::ReadAP:
        return handleCas(cmd, now, true, true);
      case Ddr4Op::Write:
        return handleCas(cmd, now, false, false);
      case Ddr4Op::WriteAP:
        return handleCas(cmd, now, false, true);

      case Ddr4Op::Precharge: {
        Bank& bank =
            banks_[map_.flatBank({cmd.bankGroup, cmd.bank, 0, 0})];
        BankCheck chk = bank.canPrecharge(now, timing_);
        if (!chk.ok) {
            recordViolation(now, chk.reason + " (" + cmd.describe() + ")");
            return {false, 0, 0};
        }
        bank.precharge(now);
        stats_.precharges.inc();
        return {};
      }

      case Ddr4Op::PrechargeAll: {
        for (auto& bank : banks_) {
            BankCheck chk = bank.canPrecharge(now, timing_);
            if (!chk.ok) {
                recordViolation(now, chk.reason + " (PREA)");
                return {false, 0, 0};
            }
        }
        for (auto& bank : banks_)
            bank.precharge(now);
        stats_.prechargeAlls.inc();
        return {};
      }

      case Ddr4Op::Refresh:
        if (!allBanksIdle()) {
            recordViolation(now, "REF with open banks");
            return {false, 0, 0};
        }
        refreshing_ = true;
        refreshEndsAt_ = now + timing_.tRFC;
        stats_.refreshes.inc();
        return {};

      case Ddr4Op::SelfRefreshEnter:
        if (!allBanksIdle()) {
            recordViolation(now, "SRE with open banks");
            return {false, 0, 0};
        }
        selfRefresh_ = true;
        stats_.selfRefreshEnters.inc();
        return {};

      case Ddr4Op::SelfRefreshExit:
        if (!selfRefresh_) {
            recordViolation(now, "SRX while not in self-refresh");
            return {false, 0, 0};
        }
        selfRefresh_ = false;
        selfRefreshExitAt_ = now + timing_.tXS;
        stats_.selfRefreshExits.inc();
        return {};

      case Ddr4Op::ModeRegisterSet:
      case Ddr4Op::ZqCalibration:
        // Accepted; mode registers are not modelled beyond boot.
        return {};
    }
    return {};
}

IssueResult
DramDevice::issueFrame(const CaFrame& frame, Tick now)
{
    return issue(decodeFrame(frame), now);
}

void
DramDevice::writeBurst(const DramCoord& coord, const std::uint8_t* data64)
{
    if (!storeData_)
        return;
    auto key = rowKey(coord.bankGroup, coord.bank, coord.row);
    auto& row = rowStore_[key];
    if (row.empty())
        row.assign(map_.rowBytes(), 0);
    std::memcpy(row.data() +
                std::size_t{coord.col} * AddressMap::kBurstBytes,
                data64, AddressMap::kBurstBytes);
}

void
DramDevice::readBurst(const DramCoord& coord, std::uint8_t* data64) const
{
    if (!storeData_) {
        std::memset(data64, 0, AddressMap::kBurstBytes);
        return;
    }
    auto key = rowKey(coord.bankGroup, coord.bank, coord.row);
    auto it = rowStore_.find(key);
    if (it == rowStore_.end()) {
        std::memset(data64, 0, AddressMap::kBurstBytes);
        return;
    }
    std::memcpy(data64,
                it->second.data() +
                std::size_t{coord.col} * AddressMap::kBurstBytes,
                AddressMap::kBurstBytes);
}

void
DramDevice::registerStats(StatRegistry& reg,
                          const std::string& prefix) const
{
    reg.addCounter(prefix + ".activates", stats_.activates);
    reg.addCounter(prefix + ".reads", stats_.reads);
    reg.addCounter(prefix + ".writes", stats_.writes);
    reg.addCounter(prefix + ".precharges", stats_.precharges);
    reg.addCounter(prefix + ".precharge_alls", stats_.prechargeAlls);
    reg.addCounter(prefix + ".refreshes", stats_.refreshes);
    reg.addCounter(prefix + ".self_refresh_enters",
                   stats_.selfRefreshEnters);
    reg.addCounter(prefix + ".self_refresh_exits",
                   stats_.selfRefreshExits);
    reg.addCounter(prefix + ".violations", stats_.violations);
}

} // namespace nvdimmc::dram
