#include "dram/bank.hh"

#include <sstream>

namespace nvdimmc::dram
{

namespace
{

BankCheck
tooEarly(const char* what, Tick now, Tick ready)
{
    std::ostringstream os;
    os << what << " at " << now << " before ready tick " << ready;
    return BankCheck::fail(os.str());
}

} // namespace

BankCheck
Bank::canActivate(Tick now, const Ddr4Timing& t) const
{
    if (state_ != State::Idle)
        return BankCheck::fail("ACT to a bank that is not precharged");
    if (everPrecharged_ && now < preAt_ + t.tRP)
        return tooEarly("ACT violates tRP", now, preAt_ + t.tRP);
    if (everActivated_ && now < actAt_ + t.tRC)
        return tooEarly("ACT violates tRC", now, actAt_ + t.tRC);
    return BankCheck::pass();
}

BankCheck
Bank::canRead(Tick now, std::uint32_t row, const Ddr4Timing& t) const
{
    if (state_ != State::Active)
        return BankCheck::fail("RD to a closed bank");
    if (openRow_ != row)
        return BankCheck::fail("RD to a row that is not open");
    if (now < actAt_ + t.tRCD)
        return tooEarly("RD violates tRCD", now, actAt_ + t.tRCD);
    if (everWritten_ && now < lastWriteDataEnd_ + t.tWTR)
        return tooEarly("RD violates tWTR", now,
                        lastWriteDataEnd_ + t.tWTR);
    return BankCheck::pass();
}

BankCheck
Bank::canWrite(Tick now, std::uint32_t row, const Ddr4Timing& t) const
{
    if (state_ != State::Active)
        return BankCheck::fail("WR to a closed bank");
    if (openRow_ != row)
        return BankCheck::fail("WR to a row that is not open");
    if (now < actAt_ + t.tRCD)
        return tooEarly("WR violates tRCD", now, actAt_ + t.tRCD);
    return BankCheck::pass();
}

BankCheck
Bank::canPrecharge(Tick now, const Ddr4Timing& t) const
{
    // PRE to an idle bank is legal (a NOP-like precharge).
    if (state_ == State::Idle)
        return BankCheck::pass();
    if (now < actAt_ + t.tRAS)
        return tooEarly("PRE violates tRAS", now, actAt_ + t.tRAS);
    if (everRead_ && now < lastReadCmd_ + t.tRTP)
        return tooEarly("PRE violates tRTP", now, lastReadCmd_ + t.tRTP);
    if (everWritten_ && now < lastWriteDataEnd_ + t.tWR)
        return tooEarly("PRE violates tWR", now,
                        lastWriteDataEnd_ + t.tWR);
    return BankCheck::pass();
}

void
Bank::activate(Tick now, std::uint32_t row)
{
    state_ = State::Active;
    openRow_ = row;
    actAt_ = now;
    everActivated_ = true;
}

void
Bank::read(Tick now, const Ddr4Timing&)
{
    lastReadCmd_ = now;
    everRead_ = true;
}

void
Bank::write(Tick now, const Ddr4Timing& t)
{
    lastWriteDataEnd_ = now + t.writeLatency();
    everWritten_ = true;
}

void
Bank::precharge(Tick now)
{
    state_ = State::Idle;
    preAt_ = now;
    everPrecharged_ = true;
}

Tick
Bank::readyForActivateAt(const Ddr4Timing& t) const
{
    return everPrecharged_ ? preAt_ + t.tRP : 0;
}

} // namespace nvdimmc::dram
