/**
 * @file
 * Per-bank DDR4 state machine with timing validation.
 *
 * The bank tracks when it was activated/precharged and when the last
 * column commands happened so each incoming command can be checked
 * against the JEDEC constraints (tRCD, tRP, tRAS, tRC, tRTP, tWR,
 * tWTR). Cross-bank constraints (tRRD, tFAW, tCCD) live in DramDevice.
 */

#ifndef NVDIMMC_DRAM_BANK_HH
#define NVDIMMC_DRAM_BANK_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "dram/timing.hh"

namespace nvdimmc::dram
{

/** Result of a bank-level command check. */
struct BankCheck
{
    bool ok = true;
    std::string reason;

    static BankCheck pass() { return {}; }
    static BankCheck fail(std::string why) { return {false, std::move(why)}; }
};

/** One DRAM bank. */
class Bank
{
  public:
    enum class State { Idle, Active };

    State state() const { return state_; }
    std::uint32_t openRow() const { return openRow_; }
    bool isOpen(std::uint32_t row) const
    {
        return state_ == State::Active && openRow_ == row;
    }

    /** @name Command checks (do not change state). */
    /** @{ */
    BankCheck canActivate(Tick now, const Ddr4Timing& t) const;
    BankCheck canRead(Tick now, std::uint32_t row,
                      const Ddr4Timing& t) const;
    BankCheck canWrite(Tick now, std::uint32_t row,
                       const Ddr4Timing& t) const;
    BankCheck canPrecharge(Tick now, const Ddr4Timing& t) const;
    /** @} */

    /** @name Command application (assumes the check passed). */
    /** @{ */
    void activate(Tick now, std::uint32_t row);
    void read(Tick now, const Ddr4Timing& t);
    void write(Tick now, const Ddr4Timing& t);
    void precharge(Tick now);
    /** @} */

    /** Earliest tick an ACT may be issued after the most recent PRE. */
    Tick readyForActivateAt(const Ddr4Timing& t) const;

  private:
    State state_ = State::Idle;
    std::uint32_t openRow_ = 0;

    Tick actAt_ = 0;            ///< Tick of the last ACT.
    Tick preAt_ = 0;            ///< Tick of the last PRE command.
    Tick lastReadCmd_ = 0;
    Tick lastWriteDataEnd_ = 0; ///< End of last write burst data.
    bool everActivated_ = false;
    bool everPrecharged_ = false;
    bool everRead_ = false;
    bool everWritten_ = false;
};

} // namespace nvdimmc::dram

#endif // NVDIMMC_DRAM_BANK_HH
