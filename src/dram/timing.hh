/**
 * @file
 * DDR4 timing parameter sets.
 *
 * All values are in ticks (picoseconds). Presets follow JEDEC DDR4
 * speed bins; tRFC/tREFI are *programmable* (mirroring the Skylake iMC
 * registers the paper uses to stretch tRFC to 1250 ns and to double or
 * quadruple the refresh rate).
 */

#ifndef NVDIMMC_DRAM_TIMING_HH
#define NVDIMMC_DRAM_TIMING_HH

#include "common/types.hh"

namespace nvdimmc::dram
{

/** One DDR4 speed bin's timing set, in picoseconds. */
struct Ddr4Timing
{
    /** Clock period. DDR4-1600 => 1250 ps. */
    Tick tCK = 1250;

    /** @name Core bank timings. */
    /** @{ */
    Tick tRCD = 13750;  ///< ACT -> RD/WR.
    Tick tCL = 13750;   ///< RD -> first data.
    Tick tCWL = 12500;  ///< WR -> first data.
    Tick tRP = 13750;   ///< PRE -> ACT.
    Tick tRAS = 35000;  ///< ACT -> PRE (min open time).
    Tick tRC = 48750;   ///< ACT -> ACT same bank.
    Tick tRTP = 7500;   ///< RD -> PRE.
    Tick tWR = 15000;   ///< End of write data -> PRE.
    Tick tWTR = 7500;   ///< End of write data -> RD.
    /** @} */

    /** @name Inter-bank constraints. */
    /** @{ */
    Tick tRRD_S = 5000; ///< ACT -> ACT different bank group.
    Tick tRRD_L = 6250; ///< ACT -> ACT same bank group.
    Tick tCCD_S = 5000; ///< CAS -> CAS different bank group.
    Tick tCCD_L = 6250; ///< CAS -> CAS same bank group.
    Tick tFAW = 35000;  ///< Four-activate window.
    /** @} */

    /** @name Refresh. */
    /** @{ */
    Tick tRFC = 350000;   ///< Refresh cycle time (8 Gb device: 350 ns).
    Tick tREFI = 7800000; ///< Average refresh interval (7.8 us).
    Tick tXS = 360000;    ///< SRX -> valid command.
    /** @} */

    /** Burst length 8 occupies 4 clocks on the DQ bus. */
    Tick burstTime() const { return 4 * tCK; }

    /** RD command to end of data. */
    Tick readLatency() const { return tCL + burstTime(); }

    /** WR command to end of data. */
    Tick writeLatency() const { return tCWL + burstTime(); }

    /** JEDEC DDR4-1600 (the paper's operating point). */
    static Ddr4Timing ddr4_1600();

    /** JEDEC DDR4-2400 (used in the paper's frontend discussion). */
    static Ddr4Timing ddr4_2400();
};

/**
 * The Skylake-like programmable refresh registers (paper §II-B, §V-A):
 * the OS/BIOS may stretch tRFC (giving the NVMC its window) and speed
 * up tREFI (tREFI2 / tREFI4).
 */
struct RefreshRegisters
{
    Tick tRFC = 350 * kNs;
    Tick tREFI = 7800 * kNs;

    /** The paper's NVDIMM-C programming: tRFC = 1250 ns. */
    static RefreshRegisters nvdimmc()
    {
        return RefreshRegisters{1250 * kNs, 7800 * kNs};
    }

    static RefreshRegisters standard()
    {
        return RefreshRegisters{350 * kNs, 7800 * kNs};
    }
};

} // namespace nvdimmc::dram

#endif // NVDIMMC_DRAM_TIMING_HH
