/**
 * @file
 * DDR4 command set and pin-level command/address encoding.
 *
 * The NVMC's refresh detector (paper Fig 4) works by decoding the raw
 * CA pins it taps from the shared bus, so commands here exist in two
 * forms: the logical Ddr4Command used by controllers and the CaFrame
 * pin image actually driven on the bus. Encoding follows the JEDEC
 * DDR4 truth table; REF is CKE=H, CS_n=L, ACT_n=H, RAS_n=L, CAS_n=L,
 * WE_n=H (the pins the paper's detector taps).
 */

#ifndef NVDIMMC_DRAM_DDR4_COMMAND_HH
#define NVDIMMC_DRAM_DDR4_COMMAND_HH

#include <cstdint>
#include <string>

namespace nvdimmc::dram
{

/** Logical DDR4 operations. */
enum class Ddr4Op : std::uint8_t
{
    Deselect,        ///< CS_n high; no command.
    Nop,             ///< Selected but idle.
    Activate,        ///< Open a row.
    Read,            ///< Burst read (BL8).
    ReadAP,          ///< Read with auto-precharge.
    Write,           ///< Burst write (BL8).
    WriteAP,         ///< Write with auto-precharge.
    Precharge,       ///< Close one bank.
    PrechargeAll,    ///< PREA: close every bank.
    Refresh,         ///< REF: all-bank refresh.
    SelfRefreshEnter,///< SRE: REF encoding with CKE falling.
    SelfRefreshExit, ///< SRX: deselect/NOP with CKE rising.
    ModeRegisterSet, ///< MRS.
    ZqCalibration,   ///< ZQCL.
};

/** Printable name for diagnostics. */
const char* toString(Ddr4Op op);

/** @return true for REF/SRE/SRX (any refresh-family encoding). */
bool isRefreshFamily(Ddr4Op op);

/** A logical command as a controller thinks of it. */
struct Ddr4Command
{
    Ddr4Op op = Ddr4Op::Deselect;
    std::uint8_t bankGroup = 0;
    std::uint8_t bank = 0;       ///< Bank within group.
    std::uint32_t row = 0;
    std::uint32_t col = 0;       ///< Column in burst units.

    std::string describe() const;
};

/**
 * Pin image of one CA-bus cycle: the control pins the paper's
 * detector taps, plus the multiplexed address pins.
 *
 * cke is the level *during* this cycle; ckePrev the level in the
 * preceding cycle, because SRE/SRX are defined by the CKE transition.
 */
struct CaFrame
{
    bool cke = true;
    bool ckePrev = true;
    bool csN = true;    ///< Active-low chip select (true = deselected).
    bool actN = true;
    bool rasN = true;   ///< Shared with A16.
    bool casN = true;   ///< Shared with A15.
    bool weN = true;    ///< Shared with A14.
    bool a10 = false;   ///< Auto-precharge / all-bank flag.
    std::uint8_t bg = 0;
    std::uint8_t ba = 0;
    std::uint32_t addr = 0; ///< Row or column bits (excluding A10).

    bool operator==(const CaFrame&) const = default;
};

/** Encode a logical command into its pin image. */
CaFrame encodeCommand(const Ddr4Command& cmd);

/**
 * Decode a pin image back to a logical command. Unknown encodings
 * decode to Deselect/Nop rather than guessing; the refresh detector
 * relies on REF never aliasing with anything else.
 */
Ddr4Command decodeFrame(const CaFrame& frame);

} // namespace nvdimmc::dram

#endif // NVDIMMC_DRAM_DDR4_COMMAND_HH
