#include "dram/timing.hh"

namespace nvdimmc::dram
{

Ddr4Timing
Ddr4Timing::ddr4_1600()
{
    Ddr4Timing t;
    t.tCK = 1250;
    // 11-11-11 bin.
    t.tRCD = 13750;
    t.tCL = 13750;
    t.tCWL = 11250;
    t.tRP = 13750;
    t.tRAS = 35000;
    t.tRC = t.tRAS + t.tRP;
    t.tRTP = 7500;
    t.tWR = 15000;
    t.tWTR = 7500;
    t.tRRD_S = 5000;
    t.tRRD_L = 6250;
    t.tCCD_S = 5000;
    t.tCCD_L = 6250;
    t.tFAW = 35000;
    t.tRFC = 350000;
    t.tREFI = 7800000;
    t.tXS = t.tRFC + 10000;
    return t;
}

Ddr4Timing
Ddr4Timing::ddr4_2400()
{
    Ddr4Timing t;
    t.tCK = 833;
    // 17-17-17 bin; tRCD + tCL = 26.64 ns ballpark cited by the paper.
    t.tRCD = 13320;
    t.tCL = 13320;
    t.tCWL = 12000;
    t.tRP = 13320;
    t.tRAS = 32000;
    t.tRC = t.tRAS + t.tRP;
    t.tRTP = 7500;
    t.tWR = 15000;
    t.tWTR = 7500;
    t.tRRD_S = 3300;
    t.tRRD_L = 4900;
    t.tCCD_S = 3332;
    t.tCCD_L = 5000;
    t.tFAW = 30000;
    t.tRFC = 350000;
    t.tREFI = 7800000;
    t.tXS = t.tRFC + 10000;
    return t;
}

} // namespace nvdimmc::dram
