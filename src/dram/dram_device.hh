/**
 * @file
 * DDR4 DRAM device (one rank): banks, refresh machinery, a timing
 * checker, and an optional sparse data store for end-to-end integrity
 * checks.
 *
 * The device enforces its *real* refresh time (tRFC from the timing
 * set, 350 ns for an 8 Gb device). The host iMC is separately
 * programmed with a longer tRFC (1250 ns); the gap is exactly the
 * window the NVMC uses. Commands arriving during the real refresh are
 * violations; commands in the extra window are legal here — whether
 * they *collide* with another master is the bus's concern.
 */

#ifndef NVDIMMC_DRAM_DRAM_DEVICE_HH
#define NVDIMMC_DRAM_DRAM_DEVICE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/ddr4_command.hh"
#include "dram/timing.hh"

namespace nvdimmc::dram
{

/** A recorded protocol/timing violation. */
struct DramViolation
{
    Tick tick = 0;
    std::string what;
};

/** Outcome of issuing one command to the device. */
struct IssueResult
{
    bool ok = true;
    /** For RD/WR: when data occupies the DQ bus. */
    Tick dataStart = 0;
    Tick dataEnd = 0;
};

/** Aggregate device statistics. */
struct DramStats
{
    Counter activates;
    Counter reads;
    Counter writes;
    Counter precharges;
    Counter prechargeAlls;
    Counter refreshes;
    Counter selfRefreshEnters;
    Counter selfRefreshExits;
    Counter violations;
};

/** One DDR4 rank with a timing checker and sparse contents. */
class DramDevice
{
  public:
    /**
     * @param map geometry / address mapping.
     * @param timing speed-bin timings; timing.tRFC is the *device's*
     *        true refresh duration.
     * @param store_data keep actual byte contents (sparse, per-row).
     * @param panic_on_violation abort the simulation on any protocol
     *        error instead of recording it (off in tests that probe
     *        the checker).
     */
    DramDevice(const AddressMap& map, const Ddr4Timing& timing,
               bool store_data = true, bool panic_on_violation = false);

    const AddressMap& addressMap() const { return map_; }
    const Ddr4Timing& timing() const { return timing_; }

    /**
     * Issue a command at tick @p now. Checks JEDEC timing, updates
     * bank state, and (for RD/WR) reports the DQ data window.
     */
    IssueResult issue(const Ddr4Command& cmd, Tick now);

    /** Issue from a raw pin image (decodes first). */
    IssueResult issueFrame(const CaFrame& frame, Tick now);

    /** @name Data-path access (64 B bursts). */
    /** @{ */
    void writeBurst(const DramCoord& coord, const std::uint8_t* data64);
    void readBurst(const DramCoord& coord, std::uint8_t* data64) const;
    /** @} */

    /** True while the device is executing a refresh (its real tRFC). */
    bool inRefresh(Tick now) const
    {
        return refreshing_ && now < refreshEndsAt_;
    }

    /** Tick the current/most recent refresh completes. */
    Tick refreshEndsAt() const { return refreshEndsAt_; }

    bool inSelfRefresh() const { return selfRefresh_; }

    /** Number of REF commands received (the refresh address counter). */
    std::uint64_t refreshCount() const { return stats_.refreshes.value(); }

    bool allBanksIdle() const;

    const Bank& bank(std::uint32_t flat_index) const
    {
        return banks_[flat_index];
    }

    const DramStats& stats() const { return stats_; }

    /** Register live device counters under @p prefix (dot-separated
     *  hierarchy, e.g. "dram.activates"). */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

    const std::vector<DramViolation>& violations() const
    {
        return violations_;
    }
    void clearViolations() { violations_.clear(); }

    /** Bytes of backing storage currently allocated (for tests). */
    std::uint64_t allocatedBytes() const
    {
        return rowStore_.size() * map_.rowBytes();
    }

  private:
    void recordViolation(Tick now, std::string what);
    IssueResult handleCas(const Ddr4Command& cmd, Tick now, bool is_read,
                          bool auto_precharge);
    bool checkGlobal(const Ddr4Command& cmd, Tick now);

    std::uint64_t rowKey(std::uint8_t bg, std::uint8_t ba,
                         std::uint32_t row) const
    {
        return (std::uint64_t{bg} << 56) | (std::uint64_t{ba} << 48) |
               row;
    }

    AddressMap map_;
    Ddr4Timing timing_;
    bool storeData_;
    bool panicOnViolation_;

    std::vector<Bank> banks_;

    bool refreshing_ = false;
    Tick refreshEndsAt_ = 0;
    bool selfRefresh_ = false;
    Tick selfRefreshExitAt_ = 0;

    /** Cross-bank trackers. */
    Tick lastActTick_ = kTickNever;
    std::uint8_t lastActBg_ = 0;
    Tick lastCasTick_ = kTickNever;
    std::uint8_t lastCasBg_ = 0;
    std::deque<Tick> actWindow_; ///< Last ACT ticks for tFAW.

    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> rowStore_;

    DramStats stats_;
    std::vector<DramViolation> violations_;
};

} // namespace nvdimmc::dram

#endif // NVDIMMC_DRAM_DRAM_DEVICE_HH
