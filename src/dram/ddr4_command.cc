#include "dram/ddr4_command.hh"

#include <sstream>

#include "common/logging.hh"

namespace nvdimmc::dram
{

const char*
toString(Ddr4Op op)
{
    switch (op) {
      case Ddr4Op::Deselect: return "DES";
      case Ddr4Op::Nop: return "NOP";
      case Ddr4Op::Activate: return "ACT";
      case Ddr4Op::Read: return "RD";
      case Ddr4Op::ReadAP: return "RDA";
      case Ddr4Op::Write: return "WR";
      case Ddr4Op::WriteAP: return "WRA";
      case Ddr4Op::Precharge: return "PRE";
      case Ddr4Op::PrechargeAll: return "PREA";
      case Ddr4Op::Refresh: return "REF";
      case Ddr4Op::SelfRefreshEnter: return "SRE";
      case Ddr4Op::SelfRefreshExit: return "SRX";
      case Ddr4Op::ModeRegisterSet: return "MRS";
      case Ddr4Op::ZqCalibration: return "ZQCL";
    }
    return "?";
}

bool
isRefreshFamily(Ddr4Op op)
{
    return op == Ddr4Op::Refresh || op == Ddr4Op::SelfRefreshEnter ||
           op == Ddr4Op::SelfRefreshExit;
}

std::string
Ddr4Command::describe() const
{
    std::ostringstream os;
    os << toString(op) << " bg" << int(bankGroup) << " ba" << int(bank)
       << " row" << row << " col" << col;
    return os.str();
}

CaFrame
encodeCommand(const Ddr4Command& cmd)
{
    CaFrame f;
    f.bg = cmd.bankGroup;
    f.ba = cmd.bank;

    switch (cmd.op) {
      case Ddr4Op::Deselect:
        f.csN = true;
        break;
      case Ddr4Op::Nop:
        // Selected, ACT_n high, RAS/CAS/WE all high.
        f.csN = false;
        f.rasN = f.casN = f.weN = true;
        break;
      case Ddr4Op::Activate:
        // ACT_n low; RAS/CAS/WE carry high row-address bits.
        f.csN = false;
        f.actN = false;
        f.addr = cmd.row;
        f.rasN = (cmd.row >> 16) & 1;
        f.casN = (cmd.row >> 15) & 1;
        f.weN = (cmd.row >> 14) & 1;
        break;
      case Ddr4Op::Read:
      case Ddr4Op::ReadAP:
        f.csN = false;
        f.rasN = true;
        f.casN = false;
        f.weN = true;
        f.addr = cmd.col;
        f.a10 = cmd.op == Ddr4Op::ReadAP;
        break;
      case Ddr4Op::Write:
      case Ddr4Op::WriteAP:
        f.csN = false;
        f.rasN = true;
        f.casN = false;
        f.weN = false;
        f.addr = cmd.col;
        f.a10 = cmd.op == Ddr4Op::WriteAP;
        break;
      case Ddr4Op::Precharge:
      case Ddr4Op::PrechargeAll:
        f.csN = false;
        f.rasN = false;
        f.casN = true;
        f.weN = false;
        f.a10 = cmd.op == Ddr4Op::PrechargeAll;
        break;
      case Ddr4Op::Refresh:
        // The encoding the paper's detector matches: CKE, ACT_n, WE_n
        // high; CS_n, RAS_n, CAS_n low.
        f.csN = false;
        f.rasN = false;
        f.casN = false;
        f.weN = true;
        break;
      case Ddr4Op::SelfRefreshEnter:
        // REF encoding with CKE driven low this cycle.
        f.csN = false;
        f.rasN = false;
        f.casN = false;
        f.weN = true;
        f.cke = false;
        f.ckePrev = true;
        break;
      case Ddr4Op::SelfRefreshExit:
        // Deselect with CKE rising.
        f.csN = true;
        f.cke = true;
        f.ckePrev = false;
        break;
      case Ddr4Op::ModeRegisterSet:
        f.csN = false;
        f.rasN = false;
        f.casN = false;
        f.weN = false;
        f.addr = cmd.row; // Mode register payload.
        break;
      case Ddr4Op::ZqCalibration:
        f.csN = false;
        f.rasN = true;
        f.casN = true;
        f.weN = false;
        break;
    }
    return f;
}

Ddr4Command
decodeFrame(const CaFrame& f)
{
    Ddr4Command cmd;
    cmd.bankGroup = f.bg;
    cmd.bank = f.ba;

    if (f.csN) {
        // Deselect; with CKE rising out of a low state this is SRX.
        cmd.op = (!f.ckePrev && f.cke) ? Ddr4Op::SelfRefreshExit
                                       : Ddr4Op::Deselect;
        return cmd;
    }

    if (!f.actN) {
        cmd.op = Ddr4Op::Activate;
        cmd.row = f.addr;
        return cmd;
    }

    const int key = (f.rasN ? 4 : 0) | (f.casN ? 2 : 0) | (f.weN ? 1 : 0);
    switch (key) {
      case 0b111:
        cmd.op = Ddr4Op::Nop;
        break;
      case 0b001:
        // REF family: CKE falling makes it SRE.
        cmd.op = (f.ckePrev && !f.cke) ? Ddr4Op::SelfRefreshEnter
                                       : Ddr4Op::Refresh;
        break;
      case 0b010:
        cmd.op = f.a10 ? Ddr4Op::PrechargeAll : Ddr4Op::Precharge;
        break;
      case 0b101:
        cmd.op = f.a10 ? Ddr4Op::ReadAP : Ddr4Op::Read;
        cmd.col = f.addr;
        break;
      case 0b100:
        cmd.op = f.a10 ? Ddr4Op::WriteAP : Ddr4Op::Write;
        cmd.col = f.addr;
        break;
      case 0b000:
        cmd.op = Ddr4Op::ModeRegisterSet;
        cmd.row = f.addr;
        break;
      case 0b110:
        cmd.op = Ddr4Op::ZqCalibration;
        break;
      default:
        // 0b011 is reserved in DDR4; treat as NOP.
        cmd.op = Ddr4Op::Nop;
        break;
    }
    return cmd;
}

} // namespace nvdimmc::dram
