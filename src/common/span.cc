#include "common/span.hh"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/telemetry.hh"
#include "common/trace.hh"

namespace nvdimmc::span
{

const char*
toString(OpClass cls)
{
    switch (cls) {
      case OpClass::Hit: return "hit";
      case OpClass::CleanMiss: return "clean_miss";
      case OpClass::DirtyMiss: return "dirty_miss";
      case OpClass::Write: return "write";
    }
    return "?";
}

const char*
toString(Phase p)
{
    switch (p) {
      case Phase::CacheLookup: return "cache_lookup";
      case Phase::LockWait: return "lock_wait";
      case Phase::LockHold: return "lock_hold";
      case Phase::FaultEntry: return "fault_entry";
      case Phase::FillWait: return "fill_wait";
      case Phase::ZeroFill: return "zero_fill";
      case Phase::Clflush: return "clflush";
      case Phase::Metadata: return "metadata";
      case Phase::Memcpy: return "memcpy";
      case Phase::DriverPost: return "driver_post";
      case Phase::CpQueue: return "cp_queue";
      case Phase::CpWrite: return "cp_write";
      case Phase::CpAck: return "cp_ack";
      case Phase::WindowWait: return "window_wait";
      case Phase::FwDecode: return "fw_decode";
      case Phase::DmaBurst: return "dma_burst";
      case Phase::FwPost: return "fw_post";
      case Phase::FtlMap: return "ftl_map";
      case Phase::NandRead: return "nand_read";
      case Phase::NandProgram: return "nand_program";
      case Phase::LinkWait: return "link_wait";
      case Phase::LinkReq: return "link_req";
      case Phase::DevCopy: return "dev_copy";
      case Phase::LinkResp: return "link_resp";
      case Phase::Unattributed: return "unattributed";
    }
    return "?";
}

namespace detail
{

bool gEnabled = false;

namespace
{

/** Which trace track a phase's slice lands on (layer crossing). */
const char*
phaseTrack(Phase p)
{
    switch (p) {
      case Phase::WindowWait:
      case Phase::FwDecode:
      case Phase::DmaBurst:
      case Phase::FwPost:
        return "span.nvmc";
      case Phase::FtlMap:
        return "span.ftl";
      case Phase::NandRead:
      case Phase::NandProgram:
        return "span.znand";
      case Phase::LinkWait:
      case Phase::LinkReq:
      case Phase::DevCopy:
      case Phase::LinkResp:
        return "span.link";
      default:
        return "span.driver";
    }
}

struct Slice
{
    Phase p;
    Tick start;
    Tick end;
};

struct SpanState
{
    Tick openedAt = 0;
    Tick cursor = 0;
    OpClass cls = OpClass::Hit;
    std::array<Tick, kPhaseCount> phaseTicks{};
    /** Trace-mode only: the attributed slices in span order. */
    std::vector<Slice> slices;
};

struct ClassAgg
{
    Histogram e2e;
    std::uint64_t e2eSumPs = 0;
    std::array<Histogram, kPhaseCount> phases;
    std::array<std::uint64_t, kPhaseCount> phaseSumsPs{};
    /** Interval-reset shadow of e2e: cleared by every drainWindow()
     *  call (the telemetry sampling cadence). */
    Histogram winE2e;
    std::uint64_t winSumPs = 0;
};

struct Registry
{
    /** Serializes marks: channel shards stamp device-side phases
     *  concurrently in a parallel-in-time run. Same-span marks are
     *  causally ordered by the barrier quantum, and open/close both
     *  run on the host shard, so aggregation order is deterministic
     *  for every executor count. */
    std::mutex mu;
    std::unordered_map<Id, SpanState> open;
    std::vector<std::uint64_t> channelSeq;
    std::array<ClassAgg, kClassCount> agg;
    Tick windowWaitCap = 0;
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t unattributedSpans = 0;
    Tick maxUnattributed = 0;
    std::uint64_t orderViolations = 0;
    std::uint64_t windowWaitViolations = 0;
};

Registry&
reg()
{
    static Registry r;
    return r;
}

} // namespace

Id
openImpl(std::uint32_t channel, Tick now, OpClass cls)
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    if (channel >= r.channelSeq.size())
        r.channelSeq.resize(channel + 1, 0);
    // Sequences start at 1 so channel 0's first span is not id 0.
    Id id = (Id{channel} << 48) | ++r.channelSeq[channel];
    SpanState& s = r.open[id];
    s.openedAt = now;
    s.cursor = now;
    s.cls = cls;
    ++r.opened;
    return id;
}

void
classifyImpl(Id id, OpClass cls)
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.open.find(id);
    if (it == r.open.end()) {
        ++r.orderViolations;
        return;
    }
    it->second.cls = std::max(it->second.cls, cls);
}

void
phaseImpl(Id id, Phase p, Tick at)
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.open.find(id);
    if (it == r.open.end()) {
        ++r.orderViolations;
        return;
    }
    SpanState& s = it->second;
    if (at < s.cursor) {
        ++r.orderViolations;
        at = s.cursor;
    }
    Tick d = at - s.cursor;
    s.phaseTicks[static_cast<std::uint32_t>(p)] += d;
    if (d > 0 && trace::enabled())
        s.slices.push_back({p, s.cursor, at});
    s.cursor = at;
}

void
closeImpl(Id id, Tick now)
{
    Registry& r = reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.open.find(id);
    if (it == r.open.end()) {
        ++r.orderViolations;
        return;
    }
    SpanState& s = it->second;
    if (now < s.cursor) {
        ++r.orderViolations;
        now = s.cursor;
    }
    Tick leftover = now - s.cursor;
    constexpr auto kUnatt =
        static_cast<std::uint32_t>(Phase::Unattributed);
    if (leftover > 0) {
        s.phaseTicks[kUnatt] += leftover;
        if (trace::enabled())
            s.slices.push_back({Phase::Unattributed, s.cursor, now});
    }
    if (s.phaseTicks[kUnatt] > 1) {
        ++r.unattributedSpans;
        r.maxUnattributed =
            std::max(r.maxUnattributed, s.phaseTicks[kUnatt]);
    }
    constexpr auto kWw = static_cast<std::uint32_t>(Phase::WindowWait);
    if (r.windowWaitCap > 0 && s.phaseTicks[kWw] > r.windowWaitCap)
        ++r.windowWaitViolations;

    ClassAgg& agg = r.agg[static_cast<std::uint32_t>(s.cls)];
    Tick e2e = now - s.openedAt;
    agg.e2e.record(e2e);
    agg.e2eSumPs += e2e;
    agg.winE2e.record(e2e);
    agg.winSumPs += e2e;
    if (telemetry::flightArmed())
        telemetry::flightRecordSpan(
            static_cast<std::uint8_t>(s.cls),
            static_cast<std::uint32_t>(id >> 48), s.openedAt, now,
            e2e);
    for (std::uint32_t p = 0; p < kPhaseCount; ++p) {
        if (s.phaseTicks[p] == 0)
            continue;
        agg.phases[p].record(s.phaseTicks[p]);
        agg.phaseSumsPs[p] += s.phaseTicks[p];
    }
    ++r.closed;

    if (trace::enabled()) {
        const char* cls = toString(s.cls);
        trace::asyncBegin("span.ops", cls, s.openedAt, id);
        trace::asyncEnd("span.ops", cls, now, id);
        for (std::size_t i = 0; i < s.slices.size(); ++i) {
            const Slice& sl = s.slices[i];
            const char* track = phaseTrack(sl.p);
            trace::duration(track, toString(sl.p), sl.start, sl.end);
            // Flow arrows stitch the slices into one Perfetto lane:
            // start on the first slice, step on each crossing, finish
            // on the last.
            if (i == 0)
                trace::flowStart(track, "span", sl.start, id);
            else if (i + 1 == s.slices.size())
                trace::flowEnd(track, "span", sl.start, id);
            else
                trace::flowStep(track, "span", sl.start, id);
        }
    }

    r.open.erase(it);
}

} // namespace detail

void
enable()
{
    detail::gEnabled = true;
}

void
disable()
{
    detail::gEnabled = false;
}

void
reset()
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    r.open.clear();
    r.channelSeq.clear();
    for (auto& agg : r.agg) {
        agg.e2e.reset();
        agg.e2eSumPs = 0;
        for (auto& h : agg.phases)
            h.reset();
        agg.phaseSumsPs.fill(0);
        agg.winE2e.reset();
        agg.winSumPs = 0;
    }
    r.windowWaitCap = 0;
    r.opened = 0;
    r.closed = 0;
    r.unattributedSpans = 0;
    r.maxUnattributed = 0;
    r.orderViolations = 0;
    r.windowWaitViolations = 0;
}

void
setWindowWaitCap(Tick cap)
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    r.windowWaitCap = cap;
}

Tick
windowWaitCap()
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.windowWaitCap;
}

AuditResult
audit()
{
    AuditResult res;
    {
        detail::Registry& r = detail::reg();
        std::lock_guard<std::mutex> lock(r.mu);
        res.opened = r.opened;
        res.closed = r.closed;
        res.leaked = r.open.size();
        res.unattributedSpans = r.unattributedSpans;
        res.maxUnattributed = r.maxUnattributed;
        res.orderViolations = r.orderViolations;
        res.windowWaitViolations = r.windowWaitViolations;
    }
    // A failed audit is exactly the moment the flight recorder exists
    // for: dump the last-N spans + last-K telemetry intervals before
    // the harness aborts the run.
    if (!res.ok() && telemetry::flightArmed())
        telemetry::flightDump("span-audit");
    return res;
}

void
drainWindow(std::array<Histogram, kClassCount>& hist,
            std::array<std::uint64_t, kClassCount>& sumPs)
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    for (std::uint32_t c = 0; c < kClassCount; ++c) {
        detail::ClassAgg& agg = r.agg[c];
        hist[c] = agg.winE2e;
        sumPs[c] = agg.winSumPs;
        agg.winE2e.reset();
        agg.winSumPs = 0;
    }
}

std::uint64_t
openedCount()
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.opened;
}

std::uint64_t
closedCount()
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.closed;
}

void
registerStats(StatRegistry& statReg, const std::string& prefix)
{
    // The registry's aggregates have static storage duration, so
    // getters capturing histogram pointers stay valid for the
    // process lifetime (reset() clears values, not storage).
    detail::Registry& r = detail::reg();
    auto histo = [&statReg](const std::string& name,
                            const Histogram* h) {
        statReg.add(name + ".count", [h] {
            return static_cast<double>(h->count());
        });
        statReg.add(name + ".p50", [h] {
            return static_cast<double>(h->percentile(50.0));
        });
        statReg.add(name + ".p95", [h] {
            return static_cast<double>(h->percentile(95.0));
        });
        statReg.add(name + ".p99", [h] {
            return static_cast<double>(h->percentile(99.0));
        });
        statReg.add(name + ".max", [h] {
            return static_cast<double>(h->max());
        });
    };
    for (std::uint32_t c = 0; c < kClassCount; ++c) {
        const detail::ClassAgg& agg = r.agg[c];
        std::string base =
            prefix + '.' + toString(static_cast<OpClass>(c));
        histo(base + ".e2e", &agg.e2e);
        for (std::uint32_t p = 0; p < kPhaseCount; ++p)
            histo(base + '.' + toString(static_cast<Phase>(p)),
                  &agg.phases[p]);
    }
}

namespace
{

/** Picosecond tick count as fixed-point microseconds ("1.234"). */
std::string
usStr(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64,
                  t / kUs, (t % kUs) / kNs);
    return buf;
}

} // namespace

void
writeBreakdownTable(std::ostream& os, const std::string& title)
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    os << "== latency breakdown: " << title << " ==\n";
    for (std::uint32_t c = 0; c < kClassCount; ++c) {
        const detail::ClassAgg& agg = r.agg[c];
        if (agg.e2e.count() == 0)
            continue;
        os << "-- " << toString(static_cast<OpClass>(c)) << ": "
           << agg.e2e.count() << " spans, e2e p50 "
           << usStr(agg.e2e.percentile(50.0)) << " us / p95 "
           << usStr(agg.e2e.percentile(95.0)) << " us / p99 "
           << usStr(agg.e2e.percentile(99.0)) << " us / max "
           << usStr(agg.e2e.max()) << " us\n";
        char line[160];
        std::snprintf(line, sizeof(line),
                      "   %-14s %10s %7s %10s %10s %10s %10s\n",
                      "phase", "count", "share%", "p50_us", "p95_us",
                      "p99_us", "max_us");
        os << line;
        for (std::uint32_t p = 0; p < kPhaseCount; ++p) {
            const Histogram& h = agg.phases[p];
            if (h.count() == 0)
                continue;
            // Exact integer share in tenths of a percent: phase sums
            // tile the e2e latency, so the column sums to ~100%.
            std::uint64_t tenths =
                agg.e2eSumPs == 0
                    ? 0
                    : (agg.phaseSumsPs[p] * 1000 + agg.e2eSumPs / 2) /
                          agg.e2eSumPs;
            std::snprintf(
                line, sizeof(line),
                "   %-14s %10" PRIu64 " %6" PRIu64 ".%" PRIu64
                " %10s %10s %10s %10s\n",
                toString(static_cast<Phase>(p)), h.count(),
                tenths / 10, tenths % 10,
                usStr(h.percentile(50.0)).c_str(),
                usStr(h.percentile(95.0)).c_str(),
                usStr(h.percentile(99.0)).c_str(),
                usStr(h.max()).c_str());
            os << line;
        }
    }
    AuditResult a;
    a.opened = r.opened;
    a.closed = r.closed;
    a.leaked = r.open.size();
    a.unattributedSpans = r.unattributedSpans;
    a.maxUnattributed = r.maxUnattributed;
    a.orderViolations = r.orderViolations;
    a.windowWaitViolations = r.windowWaitViolations;
    os << "-- audit: opened " << a.opened << ", closed " << a.closed
       << ", leaked " << a.leaked << ", unattributed "
       << a.unattributedSpans << ", order violations "
       << a.orderViolations << ", window-wait violations "
       << a.windowWaitViolations << (a.ok() ? " [ok]" : " [FAIL]")
       << "\n";
}

void
writeBreakdownJson(std::ostream& os)
{
    detail::Registry& r = detail::reg();
    std::lock_guard<std::mutex> lock(r.mu);
    auto histo = [&os](const Histogram& h, std::uint64_t sumPs) {
        os << "{\"count\":" << h.count() << ",\"sum_ps\":" << sumPs
           << ",\"p50_ps\":" << h.percentile(50.0)
           << ",\"p95_ps\":" << h.percentile(95.0)
           << ",\"p99_ps\":" << h.percentile(99.0)
           << ",\"max_ps\":" << h.max() << '}';
    };
    os << "{\"audit\":{\"opened\":" << r.opened
       << ",\"closed\":" << r.closed
       << ",\"leaked\":" << r.open.size()
       << ",\"unattributed_spans\":" << r.unattributedSpans
       << ",\"max_unattributed_ps\":" << r.maxUnattributed
       << ",\"order_violations\":" << r.orderViolations
       << ",\"window_wait_violations\":" << r.windowWaitViolations
       << ",\"window_wait_cap_ps\":" << r.windowWaitCap
       << "},\"classes\":{";
    bool firstClass = true;
    for (std::uint32_t c = 0; c < kClassCount; ++c) {
        const detail::ClassAgg& agg = r.agg[c];
        if (agg.e2e.count() == 0)
            continue;
        if (!firstClass)
            os << ',';
        firstClass = false;
        os << '"' << toString(static_cast<OpClass>(c))
           << "\":{\"spans\":" << agg.e2e.count() << ",\"e2e\":";
        histo(agg.e2e, agg.e2eSumPs);
        os << ",\"phases\":{";
        bool firstPhase = true;
        for (std::uint32_t p = 0; p < kPhaseCount; ++p) {
            if (agg.phases[p].count() == 0)
                continue;
            if (!firstPhase)
                os << ',';
            firstPhase = false;
            os << '"' << toString(static_cast<Phase>(p)) << "\":";
            histo(agg.phases[p], agg.phaseSumsPs[p]);
        }
        os << "}}";
    }
    os << "}}";
}

} // namespace nvdimmc::span
