/**
 * @file
 * Lightweight statistics: counters, latency histograms, and
 * throughput meters, with a registry for formatted dumps.
 */

#ifndef NVDIMMC_COMMON_STATS_HH
#define NVDIMMC_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nvdimmc
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Latency histogram with 64 log2 buckets over picosecond samples.
 *
 * Tracks exact min/max/sum so mean is exact; percentiles are
 * interpolated within the matching power-of-two bucket (plenty for
 * reporting p50/p99 latency curves).
 */
class Histogram
{
  public:
    void record(Tick sample);

    std::uint64_t count() const { return count_; }
    Tick min() const { return count_ ? min_ : 0; }
    Tick max() const { return max_; }
    double mean() const;
    /** @param p percentile in [0, 100]. */
    Tick percentile(double p) const;
    void reset();

    /** Merge another histogram into this one. */
    void merge(const Histogram& other);

  private:
    static int bucketFor(Tick sample);

    std::array<std::uint64_t, 64> buckets_{};
    std::uint64_t count_ = 0;
    Tick min_ = std::numeric_limits<Tick>::max();
    Tick max_ = 0;
    double sum_ = 0.0;
};

/**
 * Byte/op throughput meter over a measurement interval, reporting the
 * paper's units (decimal MB/s and KIOPS).
 */
class ThroughputMeter
{
  public:
    void recordOp(std::uint64_t bytes) { ops_ += 1; bytes_ += bytes; }

    std::uint64_t ops() const { return ops_; }
    std::uint64_t bytes() const { return bytes_; }
    double mbps(Tick interval) const
    {
        return bytesPerTickToMBps(bytes_, interval);
    }
    double kiops(Tick interval) const
    {
        return opsPerTickToKiops(ops_, interval);
    }
    void reset() { ops_ = 0; bytes_ = 0; }

  private:
    std::uint64_t ops_ = 0;
    std::uint64_t bytes_ = 0;
};

/**
 * A time series sampler: record (tick, value) points, e.g. Fig 7's
 * bandwidth-over-time curve.
 */
class TimeSeries
{
  public:
    void record(Tick t, double v) { points_.push_back({t, v}); }
    const std::vector<std::pair<Tick, double>>& points() const
    {
        return points_;
    }
    void clear() { points_.clear(); }

  private:
    std::vector<std::pair<Tick, double>> points_;
};

/**
 * Registry mapping hierarchical stat names (dot-separated, e.g.
 * "imc.rdq.occupancy") to values. Modules register their counters and
 * histograms through registerStats() hooks so dumping always reflects
 * live values; the registry can render a text dump or a flat JSON
 * object (machine-diffable snapshots for the benches).
 */
class StatRegistry
{
  public:
    using Getter = std::function<double()>;

    void add(std::string name, Getter getter);

    /** Register a counter's live value under @p name. */
    void addCounter(std::string name, const Counter& c);

    /**
     * Register a histogram as derived entries @p name.count / .mean /
     * .p50 / .p99 / .max (ticks, as doubles).
     */
    void addHistogram(const std::string& name, const Histogram& h);

    /**
     * Attach export metadata describing how the run was produced
     * (e.g. the sharded kernel's "threads" and "quantum_ticks").
     * Metadata is emitted by dumpJson() as a leading "_meta" object
     * but excluded from dump()/collect(), so text dumps stay
     * byte-comparable across execution modes that must produce
     * identical simulation results.
     */
    void setMeta(std::string name, double value);

    const std::vector<std::pair<std::string, double>>& meta() const
    {
        return meta_;
    }

    /** "name = value" lines, registration order. */
    void dump(std::ostream& os) const;

    /** One flat JSON object {"name": value, ...}; no trailing \n.
     *  Metadata, if any, leads as a nested "_meta" object. */
    void dumpJson(std::ostream& os) const;

    /** Evaluate every getter now. */
    std::vector<std::pair<std::string, double>> collect() const;

    std::size_t size() const { return entries_.size(); }

  private:
    std::vector<std::pair<std::string, Getter>> entries_;
    std::vector<std::pair<std::string, double>> meta_;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_STATS_HH
