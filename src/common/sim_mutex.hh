/**
 * @file
 * A mutex for simulated software: FIFO grant order, asynchronous
 * acquire. Used for the nvdc driver's global lock, whose hold time is
 * what caps the paper's multi-thread scaling.
 */

#ifndef NVDIMMC_COMMON_SIM_MUTEX_HH
#define NVDIMMC_COMMON_SIM_MUTEX_HH

#include <deque>
#include <functional>

#include "common/event_queue.hh"
#include "common/logging.hh"

namespace nvdimmc
{

/** FIFO simulated mutex. */
class SimMutex
{
  public:
    using Granted = std::function<void()>;

    explicit SimMutex(EventQueue& eq) : eq_(eq) {}

    /** Request the lock; @p granted fires when it is held. */
    void
    acquire(Granted granted)
    {
        if (!held_) {
            held_ = true;
            ++acquisitions_;
            granted();
            return;
        }
        waiters_.push_back(std::move(granted));
    }

    /** Release; the next waiter (if any) is granted at the same tick. */
    void
    release()
    {
        NVDC_ASSERT(held_, "release of an unheld SimMutex");
        if (waiters_.empty()) {
            held_ = false;
            return;
        }
        ++acquisitions_;
        Granted next = std::move(waiters_.front());
        waiters_.pop_front();
        // Defer one event so release() callers unwind first.
        eq_.scheduleAfter(0, std::move(next));
    }

    bool held() const { return held_; }
    std::size_t waiters() const { return waiters_.size(); }
    std::uint64_t acquisitions() const { return acquisitions_; }

  private:
    EventQueue& eq_;
    bool held_ = false;
    std::deque<Granted> waiters_;
    std::uint64_t acquisitions_ = 0;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_SIM_MUTEX_HH
