#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <functional>

namespace nvdimmc
{

int
Histogram::bucketFor(Tick sample)
{
    if (sample == 0)
        return 0;
    return 64 - __builtin_clzll(sample) - 1;
}

void
Histogram::record(Tick sample)
{
    ++buckets_[static_cast<std::size_t>(bucketFor(sample))];
    ++count_;
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
    sum_ += static_cast<double>(sample);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

Tick
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 100.0);
    auto target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b] == 0)
            continue;
        if (seen + buckets_[b] > target) {
            // Interpolate linearly inside the bucket [2^b, 2^(b+1)).
            // The top bucket's upper edge would be 2^64 — a UB shift
            // on 64-bit Tick — and no recorded sample exceeds max_
            // anyway, so clamp the bucket to it.
            Tick lo = b == 0 ? 0 : (Tick{1} << b);
            Tick hi = b + 1 >= buckets_.size() ? max_
                                               : (Tick{1} << (b + 1));
            hi = std::min(hi, max_);
            double frac = static_cast<double>(target - seen) /
                          static_cast<double>(buckets_[b]);
            auto v = static_cast<Tick>(
                static_cast<double>(lo) +
                frac * static_cast<double>(hi - lo));
            return std::clamp(v, min_, max_);
        }
        seen += buckets_[b];
    }
    return max_;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    min_ = std::numeric_limits<Tick>::max();
    max_ = 0;
    sum_ = 0.0;
}

void
Histogram::merge(const Histogram& other)
{
    for (std::size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

void
StatRegistry::add(std::string name, Getter getter)
{
    entries_.emplace_back(std::move(name), std::move(getter));
}

void
StatRegistry::addCounter(std::string name, const Counter& c)
{
    add(std::move(name),
        [&c] { return static_cast<double>(c.value()); });
}

void
StatRegistry::addHistogram(const std::string& name, const Histogram& h)
{
    add(name + ".count",
        [&h] { return static_cast<double>(h.count()); });
    add(name + ".mean", [&h] { return h.mean(); });
    add(name + ".p50",
        [&h] { return static_cast<double>(h.percentile(50)); });
    add(name + ".p99",
        [&h] { return static_cast<double>(h.percentile(99)); });
    add(name + ".max",
        [&h] { return static_cast<double>(h.max()); });
}

void
StatRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, getter] : entries_)
        os << name << " = " << getter() << "\n";
}

void
StatRegistry::setMeta(std::string name, double value)
{
    for (auto& [n, v] : meta_) {
        if (n == name) {
            v = value;
            return;
        }
    }
    meta_.emplace_back(std::move(name), value);
}

void
StatRegistry::dumpJson(std::ostream& os) const
{
    auto prec = os.precision(17);
    os << "{";
    bool first = true;
    if (!meta_.empty()) {
        os << "\"_meta\":{";
        for (const auto& [name, value] : meta_) {
            os << (first ? "\"" : ",\"") << name << "\":";
            if (std::isfinite(value))
                os << value;
            else
                os << "null";
            first = false;
        }
        os << "}";
        first = false;
    }
    for (const auto& [name, getter] : entries_) {
        os << (first ? "\"" : ",\"") << name << "\":";
        // JSON has no NaN/Inf literal; emit null for non-finite.
        double v = getter();
        if (std::isfinite(v))
            os << v;
        else
            os << "null";
        first = false;
    }
    os << "}";
    os.precision(prec);
}

std::vector<std::pair<std::string, double>>
StatRegistry::collect() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries_.size());
    for (const auto& [name, getter] : entries_)
        out.emplace_back(name, getter());
    return out;
}

} // namespace nvdimmc
