#include "common/telemetry.hh"

#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/trace.hh"

namespace nvdimmc::telemetry
{

namespace detail
{
bool gEnabled = false;
} // namespace detail

void
enable()
{
    detail::gEnabled = true;
}

void
disable()
{
    detail::gEnabled = false;
}

Tick
defaultInterval(Tick trefi)
{
    return trefi > 0 ? trefi * 4 : nsToTicks(7800) * 4;
}

namespace
{

/** The tracer stores event names as raw `const char*`, so dynamic
 *  probe names must live for the process lifetime: intern them. */
const char*
internedName(const std::string& s)
{
    static std::mutex mu;
    static std::set<std::string> pool;
    std::lock_guard<std::mutex> lock(mu);
    return pool.insert(s).first->c_str();
}

} // namespace

// ---------------------------------------------------------------- bus

void
SignalBus::subscribe(std::string signal, Handler fn)
{
    subs_.push_back({std::move(signal), std::move(fn)});
}

void
SignalBus::publish(const std::string& signal, Tick now,
                   std::uint64_t value)
{
    bool stored = false;
    for (auto& [name, last] : last_) {
        if (name == signal) {
            last = value;
            stored = true;
            break;
        }
    }
    if (!stored)
        last_.emplace_back(signal, value);
    for (auto& sub : subs_)
        if (sub.signal == signal)
            sub.fn(now, value);
}

bool
SignalBus::lastValue(const std::string& signal,
                     std::uint64_t& out) const
{
    for (const auto& [name, last] : last_) {
        if (name == signal) {
            out = last;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------- collector

struct Collector::Probe
{
    enum class Kind : std::uint8_t
    {
        Gauge,
        Delta,
        RatioPermille,
    };

    Kind kind;
    bool signal;
    std::function<std::uint64_t()> get;
    std::function<std::uint64_t()> den; ///< RatioPermille only.
    std::uint64_t last = 0;             ///< Delta/ratio numerator.
    std::uint64_t lastDen = 0;          ///< Ratio denominator.
};

class Collector::SampleEvent final : public Event
{
  public:
    explicit SampleEvent(Collector& c) : c_(c) {}

    void process() override
    {
        c_.sample();
        if (c_.running_)
            c_.eq_.schedule(*this, c_.eq_.now() + c_.interval_);
    }

    const char* name() const override { return "telemetry.sample"; }

  private:
    Collector& c_;
};

Collector::Collector(EventQueue& eq, Tick interval)
    : eq_(eq), interval_(interval),
      event_(std::make_unique<SampleEvent>(*this))
{
    NVDC_ASSERT(interval_ > 0, "telemetry interval must be positive");
}

Collector::~Collector()
{
    stop();
}

void
Collector::addGauge(std::string name,
                    std::function<std::uint64_t()> get, bool signal)
{
    names_.push_back(std::move(name));
    probes_.push_back(
        {Probe::Kind::Gauge, signal, std::move(get), {}, 0, 0});
}

void
Collector::addDelta(std::string name,
                    std::function<std::uint64_t()> get, bool signal)
{
    names_.push_back(std::move(name));
    probes_.push_back(
        {Probe::Kind::Delta, signal, std::move(get), {}, 0, 0});
}

void
Collector::addRatioPermille(std::string name,
                            std::function<std::uint64_t()> num,
                            std::function<std::uint64_t()> den,
                            bool signal)
{
    names_.push_back(std::move(name));
    probes_.push_back({Probe::Kind::RatioPermille, signal,
                       std::move(num), std::move(den), 0, 0});
}

void
Collector::start()
{
    if (running_)
        return;
    running_ = true;
    // Baseline cumulative counters so the first interval's deltas
    // cover [now, now + interval) and not all of history.
    for (auto& p : probes_) {
        if (p.kind == Probe::Kind::Gauge)
            continue;
        p.last = p.get();
        if (p.kind == Probe::Kind::RatioPermille)
            p.lastDen = p.den();
    }
    eq_.schedule(*event_, eq_.now() + interval_);
}

void
Collector::stop()
{
    running_ = false;
    if (event_ && event_->scheduled())
        eq_.deschedule(*event_);
}

void
Collector::sample()
{
    const Tick now = eq_.now();
    IntervalRecord rec;
    rec.at = now;
    rec.index = records_.size() + 1;
    rec.values.reserve(probes_.size());
    for (auto& p : probes_) {
        std::uint64_t v = 0;
        switch (p.kind) {
          case Probe::Kind::Gauge:
            v = p.get();
            break;
          case Probe::Kind::Delta: {
            std::uint64_t cur = p.get();
            v = cur - p.last;
            p.last = cur;
            break;
          }
          case Probe::Kind::RatioPermille: {
            std::uint64_t num = p.get();
            std::uint64_t den = p.den();
            std::uint64_t dn = num - p.last;
            std::uint64_t dd = den - p.lastDen;
            p.last = num;
            p.lastDen = den;
            v = dd == 0 ? 0 : dn * 1000 / dd;
            break;
          }
        }
        rec.values.push_back(v);
    }

    std::array<Histogram, span::kClassCount> hist;
    std::array<std::uint64_t, span::kClassCount> sums{};
    span::drainWindow(hist, sums);
    for (std::uint32_t c = 0; c < span::kClassCount; ++c) {
        WindowDigest& d = rec.window[c];
        const Histogram& h = hist[c];
        d.count = h.count();
        d.sumPs = sums[c];
        if (d.count > 0) {
            d.p50 = h.percentile(50.0);
            d.p95 = h.percentile(95.0);
            d.p99 = h.percentile(99.0);
            d.p999 = h.percentile(99.9);
            d.max = h.max();
        }
    }
    rec.spansClosed = span::closedCount();

    if (trace::enabled()) {
        for (std::size_t i = 0; i < probes_.size(); ++i)
            trace::counter("telemetry", internedName(names_[i]), now,
                           static_cast<double>(rec.values[i]));
        for (std::uint32_t c = 0; c < span::kClassCount; ++c) {
            const WindowDigest& d = rec.window[c];
            if (d.count == 0)
                continue;
            const char* cls =
                span::toString(static_cast<span::OpClass>(c));
            trace::counter(
                "slo", internedName(std::string(cls) + ".p99_us"),
                now, static_cast<double>(d.p99) / kUs);
            trace::counter(
                "slo", internedName(std::string(cls) + ".count"),
                now, static_cast<double>(d.count));
        }
    }

    if (flightArmed()) {
        std::ostringstream line;
        writeRecord(line, rec);
        flightRecordInterval(line.str());
    }

    records_.push_back(std::move(rec));
    const IntervalRecord& stored = records_.back();
    for (std::size_t i = 0; i < probes_.size(); ++i)
        if (probes_[i].signal)
            bus_.publish(names_[i], now, stored.values[i]);
}

void
Collector::writeRecord(std::ostream& os,
                       const IntervalRecord& rec) const
{
    os << "{\"t\":" << rec.at << ",\"i\":" << rec.index
       << ",\"spans\":" << rec.spansClosed << ",\"v\":{";
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << names_[i] << "\":" << rec.values[i];
    }
    os << "},\"win\":{";
    for (std::uint32_t c = 0; c < span::kClassCount; ++c) {
        const WindowDigest& d = rec.window[c];
        if (c)
            os << ',';
        os << '"' << span::toString(static_cast<span::OpClass>(c))
           << "\":{\"n\":" << d.count << ",\"p50\":" << d.p50
           << ",\"p95\":" << d.p95 << ",\"p99\":" << d.p99
           << ",\"p999\":" << d.p999 << ",\"max\":" << d.max
           << ",\"sum_ps\":" << d.sumPs << '}';
    }
    os << "}}";
}

void
Collector::writeJsonl(std::ostream& os,
                      const std::string& label) const
{
    os << "{\"bench\":\"" << label
       << "\",\"_meta\":{\"schema_version\":" << kSchemaVersion
       << ",\"interval_ps\":" << interval_ << ",\"probes\":[";
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << names_[i] << '"';
    }
    os << "]}}\n";
    for (const auto& rec : records_) {
        writeRecord(os, rec);
        os << '\n';
    }
}

// ----------------------------------------------------- flight recorder

namespace
{

struct FlightState
{
    std::mutex mu;
    bool armed = false;
    std::string path;
    std::size_t spanCap = 0;
    std::size_t intervalCap = 0;
    std::deque<FlightSpan> spans;
    std::deque<std::string> intervals;
    std::uint64_t dumps = 0;
};

FlightState&
flight()
{
    static FlightState f;
    return f;
}

} // namespace

void
flightArm(std::string path, std::size_t spanCap,
          std::size_t intervalCap)
{
    FlightState& f = flight();
    std::lock_guard<std::mutex> lock(f.mu);
    f.armed = true;
    f.path = std::move(path);
    f.spanCap = spanCap;
    f.intervalCap = intervalCap;
    f.spans.clear();
    f.intervals.clear();
    f.dumps = 0;
}

void
flightDisarm()
{
    FlightState& f = flight();
    std::lock_guard<std::mutex> lock(f.mu);
    f.armed = false;
    f.spans.clear();
    f.intervals.clear();
}

bool
flightArmed()
{
    // Unsynchronized fast-path read, like trace::enabled(): arming
    // happens before the run starts, from the same thread.
    return flight().armed;
}

void
flightRecordSpan(std::uint8_t cls, std::uint32_t channel,
                 Tick openedAt, Tick closedAt, Tick e2ePs)
{
    FlightState& f = flight();
    std::lock_guard<std::mutex> lock(f.mu);
    if (!f.armed)
        return;
    f.spans.push_back({cls, channel, openedAt, closedAt, e2ePs});
    if (f.spans.size() > f.spanCap)
        f.spans.pop_front();
}

void
flightRecordInterval(const std::string& jsonLine)
{
    FlightState& f = flight();
    std::lock_guard<std::mutex> lock(f.mu);
    if (!f.armed)
        return;
    f.intervals.push_back(jsonLine);
    if (f.intervals.size() > f.intervalCap)
        f.intervals.pop_front();
}

bool
flightDump(const std::string& reason)
{
    FlightState& f = flight();
    std::lock_guard<std::mutex> lock(f.mu);
    if (!f.armed)
        return false;
    std::ofstream os(f.path);
    if (!os) {
        warn("flight recorder: cannot write ", f.path);
        return false;
    }
    os << "{\"reason\":\"" << reason
       << "\",\"_meta\":{\"schema_version\":" << kSchemaVersion
       << ",\"span_cap\":" << f.spanCap
       << ",\"interval_cap\":" << f.intervalCap << "},\"spans\":[";
    bool first = true;
    for (const auto& s : f.spans) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"cls\":\""
           << span::toString(static_cast<span::OpClass>(s.cls))
           << "\",\"ch\":" << s.channel << ",\"open\":" << s.openedAt
           << ",\"close\":" << s.closedAt << ",\"e2e_ps\":" << s.e2ePs
           << '}';
    }
    os << "],\"intervals\":[";
    first = true;
    for (const auto& line : f.intervals) {
        if (!first)
            os << ',';
        first = false;
        os << line;
    }
    os << "]}\n";
    ++f.dumps;
    return true;
}

std::uint64_t
flightDumpCount()
{
    FlightState& f = flight();
    std::lock_guard<std::mutex> lock(f.mu);
    return f.dumps;
}

std::vector<FlightSpan>
flightSpans()
{
    FlightState& f = flight();
    std::lock_guard<std::mutex> lock(f.mu);
    return {f.spans.begin(), f.spans.end()};
}

} // namespace nvdimmc::telemetry
