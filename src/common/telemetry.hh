/**
 * @file
 * Deterministic time-series telemetry: windowed metrics on a
 * simulated-time cadence, streaming SLO percentiles, a load-signal
 * bus, and a crash flight recorder.
 *
 * The StatRegistry (stats.hh) answers "what happened over the whole
 * run"; this layer answers "what was happening at t = 1.3 ms". A
 * `Collector` samples registered probes every `interval` ticks of
 * *simulated* time, appending one exact-integer record per interval:
 *
 *  - **gauges** read an instantaneous value (miss-queue depth, WPQ
 *    occupancy, host-link credits in use, backend queue depth);
 *  - **deltas** read a cumulative counter and record the per-interval
 *    difference (DMA bytes, refreshes, GC relocations);
 *  - **ratio probes** divide two cumulative-counter deltas and record
 *    the result in exact-integer permille (window utilization);
 *  - **windowed span percentiles** drain the span layer's
 *    interval-reset per-class e2e histograms and record
 *    p50/p95/p99/p99.9/max plus count and sum — the streaming SLO
 *    substrate (ROADMAP item 3).
 *
 * Determinism contract (the repo's crown jewel, DESIGN §9):
 *
 *  1. *Telemetry-on never changes sim results.* Probes only observe;
 *     the sampling event adds host-queue work but simulated outcomes
 *     are quantum-schedule-independent (pinned by determinism_test),
 *     so stats with telemetry on are byte-identical to telemetry off.
 *  2. *Telemetry output is byte-identical across `--threads` >= 1.*
 *     The sampler lives on the host queue. In sharded mode the host
 *     phase of each round runs single-threaded *after* the device
 *     shards complete the same window [clock, E) behind a barrier, and
 *     the window schedule depends only on the config — never on the
 *     executor count — so a sample at tick T always observes device
 *     state at the same window edge. Probes are sampled in
 *     registration order and registration order is config-derived.
 *     (The serial kernel, --threads=0, observes at exactly T instead
 *     of the window edge and is its own — equally deterministic —
 *     series.)
 *
 * The **SignalBus** re-publishes probes flagged as load signals
 * (miss-queue depth, writeback backlog, window utilization) to
 * subscribed callbacks each interval, in deterministic order: the
 * hook for adaptive refresh/QoS policies (ROADMAP items 2 and 3).
 *
 * The **flight recorder** is a process-global bounded ring of the
 * last N completed spans and last K telemetry intervals, dumped to
 * JSON when the span auditor fails, a fault campaign detects
 * corruption, or a bench is run with `--flight-dump`.
 *
 * Like trace:: and span::, the layer is zero-overhead when off (one
 * global-bool branch) and is a per-process facility: enable it for
 * one simulated system at a time (the telemetry sweep is serialOnly).
 */

#ifndef NVDIMMC_COMMON_TELEMETRY_HH
#define NVDIMMC_COMMON_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/event_queue.hh"
#include "common/span.hh"
#include "common/types.hh"

namespace nvdimmc::telemetry
{

/** Version stamp for telemetry JSONL and flight-recorder dumps
 *  (`_meta.schema_version`); bump on any format change so
 *  check_bench_regression.py refuses cross-version comparisons. */
inline constexpr std::uint32_t kSchemaVersion = 1;

namespace detail
{
extern bool gEnabled;
} // namespace detail

/** Is telemetry collection requested? Systems construct a Collector
 *  in their constructor iff this is set (the one branch paid when
 *  off). */
inline bool enabled() { return detail::gEnabled; }

/** Request telemetry: systems built after this call self-attach a
 *  Collector (interval from SystemConfig::telemetryIntervalTicks,
 *  0 = 4 x tREFI). */
void enable();
void disable();

/** Interval to sample at when the config leaves
 *  telemetryIntervalTicks at 0: @p trefi x 4 (~31 us of simulated
 *  time at the paper's 7.8 us tREFI). */
Tick defaultInterval(Tick trefi);

/**
 * Pub/sub of named per-interval load signals. Each Collector owns
 * one; probes registered with `signal = true` are published to it
 * every sample, after the interval record is appended. Handlers run
 * on the host queue in subscription order (deterministic), so a
 * subscribed policy may schedule events in response without breaking
 * the byte-identity contract.
 */
class SignalBus
{
  public:
    using Handler = std::function<void(Tick now, std::uint64_t value)>;

    /** Subscribe @p fn to @p signal (a probe name). Unknown names are
     *  legal — the subscription simply never fires. */
    void subscribe(std::string signal, Handler fn);

    /** Publish one sample; runs matching handlers in subscription
     *  order and remembers the value for lastValue(). */
    void publish(const std::string& signal, Tick now,
                 std::uint64_t value);

    /** Most recently published value of @p signal, if any. */
    bool lastValue(const std::string& signal,
                   std::uint64_t& out) const;

  private:
    struct Sub
    {
        std::string signal;
        Handler fn;
    };
    std::vector<Sub> subs_;
    std::vector<std::pair<std::string, std::uint64_t>> last_;
};

/** Percentile digest of one op-class's spans that *closed* inside one
 *  interval — drained from the span layer's interval-reset
 *  histograms. All fields are exact integers (picoseconds). */
struct WindowDigest
{
    std::uint64_t count = 0;
    Tick p50 = 0;
    Tick p95 = 0;
    Tick p99 = 0;
    Tick p999 = 0;
    Tick max = 0;
    std::uint64_t sumPs = 0;
};

/** One sampled interval. */
struct IntervalRecord
{
    Tick at = 0;              ///< Sample tick (k x interval).
    std::uint64_t index = 0;  ///< 1-based interval number.
    /** Total spans closed by this sample (span::closedCount());
     *  window k covers closes with seq in (spans[k-1], spans[k]] —
     *  the exact bucketing rule the offline-recompute test uses. */
    std::uint64_t spansClosed = 0;
    std::vector<std::uint64_t> values; ///< Parallel to probe list.
    std::array<WindowDigest, span::kClassCount> window;
};

/**
 * Samples registered probes on a simulated-time cadence. One per
 * simulated system; constructed (and probes registered) by the
 * system's constructor when telemetry::enabled(), sampling on the
 * system's host event queue.
 */
class Collector
{
  public:
    /** @param interval sample period in ticks (> 0). */
    Collector(EventQueue& eq, Tick interval);
    ~Collector();

    Collector(const Collector&) = delete;
    Collector& operator=(const Collector&) = delete;

    /** @name Probe registration (before start(); sampled in
     *  registration order). @{ */
    /** Instantaneous value. */
    void addGauge(std::string name, std::function<std::uint64_t()> get,
                  bool signal = false);
    /** Cumulative counter; the record holds the per-interval delta. */
    void addDelta(std::string name, std::function<std::uint64_t()> get,
                  bool signal = false);
    /** Exact-integer permille of two cumulative-counter deltas
     *  (1000 * d(num) / d(den); 0 when d(den) == 0). */
    void addRatioPermille(std::string name,
                          std::function<std::uint64_t()> num,
                          std::function<std::uint64_t()> den,
                          bool signal = false);
    /** @} */

    /** Schedule the first sample at now + interval. */
    void start();
    /** Cancel sampling (also done by the destructor). */
    void stop();

    /** Take one sample now. Normally driven by the embedded event;
     *  public so tests can sample at chosen ticks. */
    void sample();

    Tick interval() const { return interval_; }
    SignalBus& bus() { return bus_; }
    const std::vector<IntervalRecord>& records() const
    {
        return records_;
    }
    const std::vector<std::string>& probeNames() const
    {
        return names_;
    }

    /**
     * Export the series as JSONL: a `_meta` header line (schema
     * version, interval, probe list), then one line per interval with
     * exact-integer values only. Byte-identical across executor
     * counts for a sharded system (determinism contract above).
     * @param label stamped into every line as "bench".
     */
    void writeJsonl(std::ostream& os, const std::string& label) const;

  private:
    struct Probe;
    class SampleEvent;

    /** One interval as a JSON object (no trailing newline). */
    void writeRecord(std::ostream& os,
                     const IntervalRecord& rec) const;

    EventQueue& eq_;
    Tick interval_;
    std::vector<Probe> probes_;
    std::vector<std::string> names_;
    std::vector<IntervalRecord> records_;
    SignalBus bus_;
    std::unique_ptr<SampleEvent> event_;
    bool running_ = false;
};

/** @name Flight recorder
 * Process-global crash-dump ring: the last N completed spans (pushed
 * by span::detail::closeImpl while armed) plus the last K telemetry
 * interval lines (pushed by every Collector::sample). Dumped to the
 * armed path when the span auditor fails (span::audit), a fault
 * campaign detects corruption, or a bench exits under
 * `--flight-dump`. Thread-safe; recording while disarmed is a no-op.
 * @{ */

/** One completed span as the flight ring stores it. */
struct FlightSpan
{
    std::uint8_t cls = 0;       ///< span::OpClass.
    std::uint32_t channel = 0;
    Tick openedAt = 0;
    Tick closedAt = 0;
    Tick e2ePs = 0; ///< Exactly the value span recorded (close-open).
};

/** Arm the recorder: keep the last @p spanCap spans and
 *  @p intervalCap telemetry lines, dumping to @p path. */
void flightArm(std::string path, std::size_t spanCap = 4096,
               std::size_t intervalCap = 128);
/** Disarm and clear the rings (does not remove a written dump). */
void flightDisarm();
bool flightArmed();

/** Record hooks (no-ops while disarmed). */
void flightRecordSpan(std::uint8_t cls, std::uint32_t channel,
                      Tick openedAt, Tick closedAt, Tick e2ePs);
void flightRecordInterval(const std::string& jsonLine);

/**
 * Write the dump file now (overwriting a previous dump at the same
 * path) and bump flightDumpCount().
 * @param reason stamped into the dump ("span-audit",
 *        "fault-corruption", "flag", ...).
 * @return true if the file was written (false while disarmed or on
 *         I/O failure).
 */
bool flightDump(const std::string& reason);

/** Dumps written since the recorder was armed. */
std::uint64_t flightDumpCount();

/** Snapshot of the span ring, oldest first (offline-recompute
 *  tests). */
std::vector<FlightSpan> flightSpans();

/** @} */

} // namespace nvdimmc::telemetry

#endif // NVDIMMC_COMMON_TELEMETRY_HH
