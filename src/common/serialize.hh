/**
 * @file
 * Minimal byte-exact state serialization for device checkpoints.
 *
 * The fault-injection campaigns (src/fault) snapshot device state
 * mid-run and restore it later — possibly into a freshly built device
 * — so compressed-time ageing studies can run for simulated months
 * without replaying from tick zero. Components implement
 * saveState(ByteWriter&) / loadState(ByteReader&) pairs; the writer
 * produces a deterministic little-endian byte stream (map contents are
 * emitted in sorted key order by the callers) so two checkpoints of
 * identical state compare equal byte-for-byte.
 *
 * Framing is deliberately primitive: every component opens with a
 * 32-bit tag the reader asserts, which catches version or ordering
 * mismatches immediately instead of silently misparsing.
 */

#ifndef NVDIMMC_COMMON_SERIALIZE_HH
#define NVDIMMC_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace nvdimmc
{

/** Append-only little-endian byte stream. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    bytes(const void* p, std::size_t n)
    {
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    /** Section marker; the reader asserts it back. */
    void tag(std::uint32_t t) { u32(t); }

    const std::vector<std::uint8_t>& data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Sequential reader over a ByteWriter stream. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<std::uint8_t>& buf)
        : buf_(buf)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return buf_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{buf_[pos_++]} << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t{buf_[pos_++]} << (8 * i);
        return v;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void
    bytes(void* p, std::size_t n)
    {
        need(n);
        std::memcpy(p, buf_.data() + pos_, n);
        pos_ += n;
    }

    void
    expectTag(std::uint32_t t)
    {
        std::uint32_t got = u32();
        if (got != t) {
            fatal("checkpoint stream corrupt: expected tag ", t,
                  ", found ", got, " at offset ", pos_ - 4);
        }
    }

    std::size_t remaining() const { return buf_.size() - pos_; }

  private:
    void
    need(std::size_t n)
    {
        if (buf_.size() - pos_ < n)
            fatal("checkpoint stream truncated at offset ", pos_);
    }

    const std::vector<std::uint8_t>& buf_;
    std::size_t pos_ = 0;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_SERIALIZE_HH
