#include "common/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/shard.hh"

namespace nvdimmc
{

void
EventQueue::schedule(Event& ev, Tick when)
{
    if (when < now_) {
        panic("EventQueue: scheduling at tick ", when,
              " which is before now ", now_);
    }
    if (ev.sched_) {
        panic("EventQueue: '", ev.name(), "' is already scheduled for ",
              ev.when_, "; use reschedule()");
    }
    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    ev.sched_ = true;
    heap_.push_back(HeapEntry{when, ev.seq_, &ev});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++livePending_;
}

void
EventQueue::skipDead()
{
    while (!heap_.empty() && !live(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
    }
}

std::size_t
EventQueue::bestStage() const
{
    std::size_t best = stages_.size();
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const TimedCallback& head = stages_[i].items[stages_[i].cursor];
        if (best == stages_.size())
            best = i;
        else {
            const TimedCallback& b =
                stages_[best].items[stages_[best].cursor];
            if (head.when < b.when ||
                (head.when == b.when && head.seq < b.seq))
                best = i;
        }
    }
    return best;
}

void
EventQueue::fireStaged(std::size_t si)
{
    Stage& st = stages_[si];
    TimedCallback& it = st.items[st.cursor++];
    NVDC_ASSERT(it.when >= now_, "event in the past");
    now_ = it.when;
    --livePending_;
    ++fired_;
    // Detach the callable before touching stages_ again: the callback
    // may re-enter scheduleBatch and invalidate references.
    Callback fn = std::move(it.fn);
    if (st.cursor == st.items.size()) {
        st.items.clear();
        freeStageBufs_.push_back(std::move(st.items));
        stages_.erase(stages_.begin() +
                      static_cast<std::ptrdiff_t>(si));
    }
    if (fn)
        fn();
}

bool
EventQueue::fireNext()
{
    skipDead();
    if (!stages_.empty()) {
        std::size_t si = bestStage();
        const TimedCallback& head = stages_[si].items[stages_[si].cursor];
        if (heap_.empty() || head.when < heap_.front().when ||
            (head.when == heap_.front().when &&
             head.seq < heap_.front().seq)) {
            fireStaged(si);
            return true;
        }
    }
    if (heap_.empty())
        return false;
    HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    NVDC_ASSERT(top.when >= now_, "event in the past");
    now_ = top.when;
    top.ev->sched_ = false;
    --livePending_;
    ++fired_;
    top.ev->process();
    return true;
}

void
EventQueue::scheduleBatch(std::vector<TimedCallback>& batch)
{
    if (batch.empty())
        return;
    Tick prev = 0;
    for (TimedCallback& it : batch) {
        if (it.when < now_) {
            panic("EventQueue: batch element at tick ", it.when,
                  " which is before now ", now_);
        }
        NVDC_ASSERT(it.when >= prev,
                    "scheduleBatch requires a tick-sorted batch");
        prev = it.when;
        it.seq = nextSeq_++;
    }
    livePending_ += batch.size();

    Stage st;
    if (!freeStageBufs_.empty()) {
        st.items = std::move(freeStageBufs_.back());
        freeStageBufs_.pop_back();
    }
    st.items.swap(batch); // Hand a recycled empty buffer back.
    stages_.push_back(std::move(st));
}

bool
EventQueue::runOne()
{
    if (coord_)
        return coord_->runOne();
    return fireNext();
}

void
EventQueue::runUntil(Tick when)
{
    if (coord_) {
        coord_->runUntil(when);
        return;
    }
    NVDC_ASSERT(when >= now_, "runUntil into the past");
    for (;;) {
        Tick t = peekNextTick();
        if (t > when)
            break;
        fireNext();
    }
    now_ = when;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    if (coord_)
        return coord_->runAll(max_events);
    std::uint64_t n = 0;
    while (n < max_events && fireNext())
        ++n;
    return n;
}

void
EventQueue::runWindow(Tick end)
{
    NVDC_ASSERT(end >= now_, "runWindow into the past");
    for (;;) {
        Tick t = peekNextTick();
        if (t >= end)
            break;
        fireNext();
    }
    now_ = end;
}

Tick
EventQueue::peekNextTick()
{
    skipDead();
    Tick t = heap_.empty() ? kTickNever : heap_.front().when;
    for (const Stage& st : stages_)
        t = std::min(t, st.items[st.cursor].when);
    return t;
}

void
EventQueue::cancel(EventId id)
{
    CallbackEvent* ce = lookupCallback(id);
    if (!ce)
        return;
    deschedule(*ce);
    // Release the captured state now rather than when the stale heap
    // record surfaces; the slot's generation bump retires the id.
    recycleCallback(*ce);
}

EventQueue::CallbackEvent&
EventQueue::allocCallback()
{
    if (freeSlots_.empty()) {
        auto slot = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(std::make_unique<CallbackEvent>(*this, slot));
        freeSlots_.push_back(slot);
    }
    std::uint32_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    return *pool_[slot];
}

void
EventQueue::recycleCallback(CallbackEvent& ce)
{
    if (ce.destroy_)
        ce.destroy_(ce);
    ce.call_ = nullptr;
    ce.destroy_ = nullptr;
    ++ce.gen_;
    freeSlots_.push_back(ce.slot_);
}

const EventQueue::CallbackEvent*
EventQueue::lookupCallback(EventId id) const
{
    EventId hi = id >> 32;
    if (hi == 0 || hi > pool_.size())
        return nullptr;
    const CallbackEvent* ce = pool_[hi - 1].get();
    if (ce->gen_ != static_cast<std::uint32_t>(id) || !ce->scheduled())
        return nullptr;
    return ce;
}

void
EventQueue::CallbackEvent::process()
{
    // Recycle even if the callable throws (a panic propagating out of
    // a test); the stale heap record is skipped by the generation.
    struct Recycle
    {
        CallbackEvent& ce;
        ~Recycle() { ce.owner_.recycleCallback(ce); }
    } guard{*this};
    call_(*this);
}

} // namespace nvdimmc
