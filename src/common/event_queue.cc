#include "common/event_queue.hh"

#include <utility>

#include "common/logging.hh"

namespace nvdimmc
{

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now_) {
        panic("EventQueue: scheduling at tick ", when,
              " which is before now ", now_);
    }
    EventId id = nextId_++;
    queue_.push(Entry{when, id, std::move(cb)});
    pendingIds_.insert(id);
    return id;
}

EventId
EventQueue::scheduleAfter(Tick delay, Callback cb)
{
    return schedule(now_ + delay, std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    // Lazy deletion: the queue entry is dropped when it surfaces.
    pendingIds_.erase(id);
}

void
EventQueue::skipDead()
{
    while (!queue_.empty() && pendingIds_.count(queue_.top().id) == 0)
        queue_.pop();
}

bool
EventQueue::fireNext()
{
    skipDead();
    if (queue_.empty())
        return false;
    Entry top = queue_.top();
    queue_.pop();
    NVDC_ASSERT(top.when >= now_, "event in the past");
    now_ = top.when;
    pendingIds_.erase(top.id);
    ++fired_;
    if (top.cb)
        top.cb();
    return true;
}

bool
EventQueue::runOne()
{
    return fireNext();
}

void
EventQueue::runUntil(Tick when)
{
    NVDC_ASSERT(when >= now_, "runUntil into the past");
    for (;;) {
        skipDead();
        if (queue_.empty() || queue_.top().when > when)
            break;
        fireNext();
    }
    now_ = when;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && fireNext())
        ++n;
    return n;
}

} // namespace nvdimmc
