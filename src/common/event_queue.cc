#include "common/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/shard.hh"

namespace nvdimmc
{

void
EventQueue::schedule(Event& ev, Tick when)
{
    if (when < now_) {
        panic("EventQueue: scheduling at tick ", when,
              " which is before now ", now_);
    }
    if (ev.sched_) {
        panic("EventQueue: '", ev.name(), "' is already scheduled for ",
              ev.when_, "; use reschedule()");
    }
    ev.when_ = when;
    ev.seq_ = nextSeq_++;
    ev.sched_ = true;
    enqueueEntry(when, ev.seq_, &ev);
    ++livePending_;
}

bool
EventQueue::findWheelNextSlow(Tick bound, Tick& when_out,
                              std::uint64_t& seq_out)
{
    // Front slot first: while armed it is by construction <= every
    // bucket entry, so no scan or cascade is needed at all.
    if (haveFront_) {
        if (live(front_)) {
            focus_ = kFrontFocus;
            memoValid_ = true;
            memoWhen_ = front_.when;
            memoSeq_ = front_.seq;
            memoFocus_ = kFrontFocus;
            when_out = front_.when;
            seq_out = front_.seq;
            return true;
        }
        haveFront_ = false;
    }
    focus_ = kNoFocus;
    for (;;) {
        // Current 64-tick block: every occupied bucket here covers a
        // single tick and is already in seq order, so the first live
        // entry at or past the drain cursor is the wheel minimum.
        auto c0 = static_cast<std::uint32_t>(clock_) &
                  (kSlotsPerLevel - 1);
        std::uint64_t m = occ_[0] & (~std::uint64_t{0} << c0);
        while (m) {
            auto s = static_cast<std::uint32_t>(__builtin_ctzll(m));
            Bucket& b = wheel_[0][s];
            std::uint32_t& h = head0_[s];
            while (h < b.size() && !live(b[h])) {
                ++h;
                --bucketCount_;
            }
            if (h < b.size()) {
                focus_ = s;
                memoValid_ = true;
                memoWhen_ = b[h].when;
                memoSeq_ = b[h].seq;
                memoFocus_ = s;
                when_out = b[h].when;
                seq_out = b[h].seq;
                return true;
            }
            b.clear();
            h = 0;
            occ_[0] &= ~(std::uint64_t{1} << s);
            m &= m - 1;
        }
        // The block is exhausted: cascade the next occupied bucket,
        // lowest level first (nested blocks make that earliest-first),
        // then rescan. Each entry descends one level per cascade, so
        // it is touched at most kLevels times in its lifetime.
        bool cascaded = false;
        for (int l = 1; l < kLevels && !cascaded; ++l) {
            auto li = static_cast<std::size_t>(l);
            auto cl = static_cast<std::uint32_t>(
                (clock_ >> (kLevelBits * l)) & (kSlotsPerLevel - 1));
            std::uint64_t ml = occ_[li] & (~std::uint64_t{0} << cl);
            while (ml) {
                auto s = static_cast<std::uint32_t>(
                    __builtin_ctzll(ml));
                Bucket& b = wheel_[li][s];
                // Drop cancelled entries now; a dead-only bucket must
                // not pull the clock forward.
                std::size_t w = 0;
                for (std::size_t r = 0; r < b.size(); ++r)
                    if (live(b[r]))
                        b[w++] = b[r];
                bucketCount_ -= b.size() - w;
                b.resize(w);
                if (b.empty()) {
                    occ_[li] &= ~(std::uint64_t{1} << s);
                    ml &= ml - 1;
                    continue;
                }
                Tick start = slotStart(l, s);
                if (start > bound) {
                    // The caller has not committed now() past bound,
                    // so a later schedule() may still land before
                    // this bucket: report its minimum (the bucket is
                    // seq-ordered, so the first hit at the lowest
                    // tick is the right tie-break) without moving
                    // the clock.
                    Tick bw = kTickNever;
                    std::uint64_t bs = 0;
                    for (const WheelEntry& e : b) {
                        if (e.when < bw) {
                            bw = e.when;
                            bs = e.seq;
                        }
                    }
                    when_out = bw;
                    seq_out = bs;
                    return true;
                }
                NVDC_DASSERT(start > clock_,
                            "cascading an uncascaded current slot");
                clock_ = start;
                occ_[li] &= ~(std::uint64_t{1} << s);
                bucketCount_ -= b.size();
                for (const WheelEntry& e : b)
                    pushEntry(e.when, e.seq, e.ev);
                b.clear();
                cascaded = true;
                break;
            }
        }
        if (!cascaded)
            return false;
    }
}

void
EventQueue::fireFocused()
{
    NVDC_DASSERT(focus_ != kNoFocus, "firing without a focused entry");
    memoValid_ = false;
    WheelEntry e;
    if (focus_ == kFrontFocus) {
        e = front_;
        haveFront_ = false;
        // Leave clock_ alone: bucket entries pushed while the front
        // was armed were placed relative to the lagging clock.
    } else {
        Bucket& b = wheel_[0][focus_];
        e = b[head0_[focus_]];
        ++head0_[focus_];
        --bucketCount_;
        clock_ = e.when;
    }
    focus_ = kNoFocus;
    NVDC_DASSERT(e.when >= now_, "event in the past");
    now_ = e.when;
    e.ev->sched_ = false;
    --livePending_;
    ++fired_;
    if (e.ev->oneShot_) {
        // Pooled one-shot: skip the virtual dispatch and recycle the
        // slot even if the callable throws (a panic propagating out
        // of a test).
        auto& ce = static_cast<CallbackEvent&>(*e.ev);
        struct Recycle
        {
            CallbackEvent& ce;
            ~Recycle() { ce.owner_.recycleCallback(ce); }
        } guard{ce};
        ce.call_(ce);
    } else {
        e.ev->process();
    }
}

std::size_t
EventQueue::bestStage() const
{
    std::size_t best = stages_.size();
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        // Drained stages linger only while a staged callback deeper
        // in the stack is re-entering the dispatcher; skip them.
        if (stages_[i].cursor == stages_[i].items.size())
            continue;
        const TimedCallback& head = stages_[i].items[stages_[i].cursor];
        if (best == stages_.size())
            best = i;
        else {
            const TimedCallback& b =
                stages_[best].items[stages_[best].cursor];
            if (head.when < b.when ||
                (head.when == b.when && head.seq < b.seq))
                best = i;
        }
    }
    return best;
}

void
EventQueue::collectStages()
{
    for (std::size_t i = stages_.size(); i-- > 0;) {
        Stage& st = stages_[i];
        if (st.cursor != st.items.size())
            continue;
        st.items.clear();
        freeStageBufs_.push_back(std::move(st.items));
        stages_.erase(stages_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    stagedDone_ = false;
}

void
EventQueue::fireStaged(std::size_t si)
{
    Stage& st = stages_[si];
    TimedCallback& it = st.items[st.cursor++];
    NVDC_DASSERT(it.when >= now_, "event in the past");
    now_ = it.when;
    --livePending_;
    ++fired_;
    if (st.cursor == st.items.size())
        stagedDone_ = true;
    // Fire in place: the element buffer never moves (a re-entrant
    // scheduleBatch moves the Stage object, not its items' storage),
    // and recycling of drained stages is deferred until no staged
    // callable is on the stack — so skipping the detach-move (and the
    // per-message destructor that came with it) is safe even if the
    // callback re-enters the dispatcher. Do not touch `st` after the
    // call; stages_ may have grown.
    {
        struct Depth
        {
            std::uint32_t& d;
            ~Depth() { --d; }
        } depth{++stagedDepth_};
        if (it.fn)
            it.fn();
    }
    if (stagedDepth_ == 0 && stagedDone_)
        collectStages();
}

bool
EventQueue::fireNextBound(Tick limit, bool strict)
{
    Tick s_when = kTickNever;
    std::uint64_t s_seq = 0;
    std::size_t si = stages_.size();
    if (!stages_.empty()) {
        // One live batch in flight is the steady state (a shard
        // drains its mailbox train before the next window lands).
        if (stages_.size() == 1 &&
            stages_[0].cursor < stages_[0].items.size()) {
            si = 0;
        } else {
            si = bestStage();
        }
        if (si != stages_.size()) {
            const TimedCallback& head =
                stages_[si].items[stages_[si].cursor];
            s_when = head.when;
            s_seq = head.seq;
        }
    }
    // The wheel clock must never pass the earliest staged tick either:
    // if the staged lane fires first, a callback it runs may schedule
    // before any tick the wheel skipped ahead to.
    Tick bound = std::min(limit, s_when);
    Tick w_when = kTickNever;
    std::uint64_t w_seq = 0;
    bool have_wheel = findWheelNext(bound, w_when, w_seq);
    if (si != stages_.size() &&
        (!have_wheel || s_when < w_when ||
         (s_when == w_when && s_seq < w_seq))) {
        if (strict ? s_when >= limit : s_when > limit)
            return false;
        fireStaged(si);
        return true;
    }
    if (!have_wheel)
        return false;
    if (strict ? w_when >= limit : w_when > limit)
        return false;
    fireFocused();
    return true;
}

void
EventQueue::scheduleBatch(std::vector<TimedCallback>& batch)
{
    if (batch.empty())
        return;
    Tick prev = 0;
    for (TimedCallback& it : batch) {
        if (it.when < now_) {
            panic("EventQueue: batch element at tick ", it.when,
                  " which is before now ", now_);
        }
        NVDC_ASSERT(it.when >= prev,
                    "scheduleBatch requires a tick-sorted batch");
        prev = it.when;
        it.seq = nextSeq_++;
    }
    livePending_ += batch.size();

    Stage st;
    if (!freeStageBufs_.empty()) {
        st.items = std::move(freeStageBufs_.back());
        freeStageBufs_.pop_back();
    }
    st.items.swap(batch); // Hand a recycled empty buffer back.
    stages_.push_back(std::move(st));
}

bool
EventQueue::runOne()
{
    if (coord_)
        return coord_->runOne();
    return fireNext();
}

void
EventQueue::runUntil(Tick when)
{
    if (coord_) {
        coord_->runUntil(when);
        return;
    }
    NVDC_ASSERT(when >= now_, "runUntil into the past");
    while (fireNextBound(when, /*strict=*/false)) {
    }
    now_ = when;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    if (coord_)
        return coord_->runAll(max_events);
    std::uint64_t n = 0;
    while (n < max_events && fireNext())
        ++n;
    return n;
}

void
EventQueue::runWindow(Tick end)
{
    NVDC_ASSERT(end >= now_, "runWindow into the past");
    while (fireNextBound(end, /*strict=*/true)) {
        // Amortized staged drain: with one batch in flight (the
        // steady mailbox state) and the wheel minimum memoized, fire
        // the staged run directly — the full dispatch compare is
        // settled by three loads per message. Every condition is
        // re-read each iteration, so a callback that lands a new
        // batch, schedules an earlier event, or kills the memoized
        // minimum drops us back to the slow path.
        while (stages_.size() == 1 && memoValid_) {
            Stage& st = stages_.front();
            if (st.cursor == st.items.size())
                break; // Drained; lingers only in re-entrant runs.
            const TimedCallback& head = st.items[st.cursor];
            if (head.when >= end || head.when > memoWhen_ ||
                (head.when == memoWhen_ && head.seq > memoSeq_)) {
                break;
            }
            fireStaged(0);
        }
    }
    now_ = end;
}

Tick
EventQueue::peekNextTick()
{
    Tick t = kTickNever;
    std::uint64_t seq = 0;
    // bound = now_: any clock advance stays at or below now(), which
    // no later schedule() can undercut, so peeking commits nothing.
    if (!findWheelNext(now_, t, seq))
        t = kTickNever;
    focus_ = kNoFocus;
    for (const Stage& st : stages_)
        if (st.cursor < st.items.size())
            t = std::min(t, st.items[st.cursor].when);
    return t;
}

void
EventQueue::cancel(EventId id)
{
    CallbackEvent* ce = lookupCallback(id);
    if (!ce)
        return;
    deschedule(*ce);
    // Release the captured state now rather than when the stale wheel
    // entry surfaces; the slot's generation bump retires the id.
    recycleCallback(*ce);
}

void
EventQueue::growCallbackPool()
{
    auto slot = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(std::make_unique<CallbackEvent>(*this, slot));
    pool_.back()->oneShot_ = true;
    freeSlots_.push_back(slot);
}

const EventQueue::CallbackEvent*
EventQueue::lookupCallback(EventId id) const
{
    EventId hi = id >> 32;
    if (hi == 0 || hi > pool_.size())
        return nullptr;
    const CallbackEvent* ce = pool_[hi - 1].get();
    if (ce->gen_ != static_cast<std::uint32_t>(id) || !ce->scheduled())
        return nullptr;
    return ce;
}

void
EventQueue::CallbackEvent::process()
{
    // Recycle even if the callable throws (a panic propagating out of
    // a test); the stale wheel entry is skipped by the generation.
    struct Recycle
    {
        CallbackEvent& ce;
        ~Recycle() { ce.owner_.recycleCallback(ce); }
    } guard{*this};
    call_(*this);
}

} // namespace nvdimmc
