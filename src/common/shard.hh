/**
 * @file
 * Conservative parallel-in-time execution over sharded event queues.
 *
 * A sharded simulation splits the machine into one *host* shard (the
 * CPU-side components: driver, cache model, memcpy engine, workloads)
 * plus a set of device shards. The classic topology is one shard per
 * memory channel; with media splitting each channel contributes two —
 * a DDR-side shard (iMC, bus, DRAM, NVMC controller + firmware) and a
 * media shard (FTL + Z-NAND) — joined by the same mailbox seam. Each
 * shard owns a private EventQueue; device shards execute on worker
 * threads while the host shard always runs on the coordinating thread.
 *
 * Correctness rests on a classic conservative-lookahead argument.
 * Every cross-shard interaction goes through a mailbox message stamped
 * at least L ticks into the future, where L is the modeled latency of
 * the *link* it crosses. Links are per ordered pair: host<->DDR-shard
 * links carry the host-link latency (the binding term of the
 * auto-derived sync quantum; see core::NvdimmcSystem::quantumBound),
 * while firmware<->media links carry the µs-scale media command
 * latency — so the coordinator derives *per-pair* lookahead instead of
 * one global minimum. Time advances in rounds:
 *
 *   1. deliver pending messages into the shard queues as sorted
 *      batches (their stamps are never below the shard clocks),
 *   2. pick the window end E = min over every link (s -> d) of
 *      max(peek(s) + L(s,d), promise(s,d)); a shard with no runnable
 *      event cannot emit anything this round and contributes nothing,
 *   3. run every device shard's window [clock, E) in parallel; shard
 *      code never calls across the seam, it appends messages (to the
 *      host or a peer shard) to its outbox,
 *   4. barrier, then route the outboxes in shard order: host-bound
 *      messages merge deterministically — (tick, shard, post order) —
 *      into the host queue as one batch; peer-bound messages queue for
 *      the next round's delivery,
 *   5. run the host window [clock, E) on the coordinating thread; host
 *      calls into a port post messages stamped now+L >= E, so nothing
 *      can land in a shard's past.
 *
 * Adaptive lookahead (the promise term in step 2) is null-message
 * style: a link may register a promise function returning a lower
 * bound on the stamp of the *next* message that will ever cross it —
 * kTickNever when the owning port can prove it has nothing in flight
 * (no posted-but-unacknowledged ops), which lets the neighbours run
 * ahead past the static quantum. Promises are queried only between
 * rounds, on the coordinating thread, from state the barrier already
 * synchronized; the runtime conservative checker (below) still
 * verifies every actual message against the window it was posted in,
 * so an unsound promise trips an assertion instead of corrupting time.
 *
 * Because the per-window schedule, the mailbox merge order, and every
 * message stamp are independent of how shards map onto OS threads,
 * results are byte-identical for every executor count >= 1 — an
 * executors=1 run executes the same windows inline with zero atomics,
 * which is what `--verify` diffs against. Windows with no runnable
 * event anywhere are skipped in one jump, so idle simulated time is
 * free, as in the serial kernel.
 *
 * The mailboxes are single-producer/single-consumer by construction:
 * deliveries are built by the coordinating thread between rounds and
 * drained before the next device phase; each outbox is filled only by
 * whichever worker runs that shard's window and drained after the
 * barrier. The barrier's release/acquire pair is the only
 * synchronization the payloads (and the promise inputs) need.
 */

#ifndef NVDIMMC_COMMON_SHARD_HH
#define NVDIMMC_COMMON_SHARD_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"

namespace nvdimmc
{

/**
 * Barrier-quantum scheduler over one host EventQueue and N device
 * shard EventQueues. Owns the worker pool (executors-1 threads,
 * started lazily on the first parallel window); shard i runs on
 * executor i % executors, executor 0 being the coordinating thread.
 */
class ShardCoordinator
{
  public:
    using Fn = std::function<void()>;
    /** Returns a lower bound on the stamp of the next message to
     *  cross the owning link (kTickNever = provably nothing in
     *  flight; 0 = no promise beyond the static bound). Queried
     *  between rounds on the coordinating thread only. */
    using Promise = std::function<Tick()>;
    /** Link destination naming the host shard. */
    static constexpr std::int32_t kToHost = -1;

    /**
     * @param host     the host shard's queue (also the delegation
     *                 target: host.setCoordinator(this) makes the
     *                 public run methods drive the whole system).
     * @param shards   one queue per device shard.
     * @param quantum  conservative sync quantum for the default
     *                 shard->host links (every shard starts with one);
     *                 also the host's own output bound. The caller
     *                 must guarantee every message crossing a link is
     *                 stamped at least that link's latency ahead of
     *                 the posting shard's clock.
     * @param executors total executing threads (>= 1); clamped to the
     *                 shard count.
     */
    ShardCoordinator(EventQueue& host, std::vector<EventQueue*> shards,
                     Tick quantum, unsigned executors);
    ~ShardCoordinator();
    ShardCoordinator(const ShardCoordinator&) = delete;
    ShardCoordinator& operator=(const ShardCoordinator&) = delete;

    Tick quantum() const { return quantum_; }
    unsigned executors() const { return executors_; }
    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    /** Sync windows executed so far (identical across executor
     *  counts; idle jumps do not count). */
    std::uint64_t windows() const { return windows_; }
    /** Events fired on the host and every shard combined. */
    std::uint64_t totalEventsFired() const;
    /** Is a sync window currently executing? Ports use this to route
     *  pre/post-run calls (preconditioning, post-mortem dumps)
     *  directly instead of through a mailbox nobody will drain. */
    bool inRound() const { return inRound_; }

    /**
     * Declare (or replace) the outgoing link from @p src to @p dest
     * (a shard index, or kToHost). @p latency is the minimum lead
     * every message crossing it carries; the optional @p promise adds
     * adaptive lookahead on top. A shard's first setLink() discards
     * its default shard->host quantum link, so a fully-specified
     * topology only pays for the links it really has. Call before the
     * first run.
     */
    void setLink(std::uint32_t src, std::int32_t dest, Tick latency,
                 Promise promise = {});

    /**
     * Post @p fn to run on shard @p shard's queue at tick @p when.
     * Host phase (or pre-run setup) only. The conservative checker
     * asserts the stamp cannot land in the shard's past — tripping it
     * means the quantum exceeds the cross-shard latency bound.
     */
    void postToShard(std::uint32_t shard, Tick when, Fn fn);

    /**
     * Post @p fn to run on the host queue at tick @p when. Device
     * phase only, called by the worker executing @p shard's window;
     * delivery happens after the barrier, merged deterministically.
     */
    void postToHost(std::uint32_t shard, Tick when, Fn fn);

    /**
     * Post @p fn to run on peer shard @p to's queue at tick @p when.
     * Device phase only, called by the worker executing shard
     * @p from's window (the firmware <-> media seam); routed after the
     * barrier and delivered before the next round.
     */
    void postToPeer(std::uint32_t from, std::uint32_t to, Tick when,
                    Fn fn);

    /** @name Drive API (EventQueue delegation targets). */
    /** @{ */
    void runUntil(Tick target);
    /** One *minimal* sync window [next, next+1) at the next runnable
     *  tick — always conservative, and drain loops built on it leave
     *  every clock just past the last event, independent of the
     *  quantum (matching serial end-of-run semantics).
     *  @return false once no shard has pending work. */
    bool runOne();
    std::uint64_t runAll(std::uint64_t max_events);
    /** @} */

  private:
    struct Msg
    {
        Tick when;
        std::int32_t dest; ///< Shard index, or kToHost.
        Fn fn;
    };

    /** A shard's outgoing messages for the current round; padded so
     *  producers on different workers never share a cache line. */
    struct alignas(64) Outbox
    {
        std::vector<Msg> msgs;
    };

    /** One outgoing link and its conservative bound. */
    struct Link
    {
        std::int32_t dest;
        Tick latency;
        Promise promise;
    };

    struct alignas(64) WorkerSlot
    {
        std::atomic<std::uint64_t> go{0};
        std::atomic<std::uint64_t> done{0};
    };

    void deliverToShards();
    Tick earliestWork();
    /** Window end bound: min over links of the earliest stamp the
     *  source shard could emit across it (kTickNever if no shard can
     *  emit at all). */
    Tick windowBound();
    /** Advance every clock to @p t; no shard may hold an event
     *  before it. */
    void advanceAll(Tick t);
    /** Execute one window ending at @p end across all shards, then
     *  the host. */
    void round(Tick end);
    void runShardRange(unsigned executor, Tick end);
    void workerLoop(unsigned executor);
    void startWorkers();
    void rethrowShardError();

    EventQueue& host_;
    std::vector<EventQueue*> shards_;
    const Tick quantum_;
    const unsigned executors_;

    std::vector<Outbox> outbox_; ///< Shard i -> host/peers, this round.
    /** Pending deliveries into shard i (built on the coordinating
     *  thread: host posts during its window, routed peer messages
     *  after each barrier); sorted + batch-scheduled next round. */
    std::vector<std::vector<EventQueue::TimedCallback>> pending_;
    std::vector<EventQueue::TimedCallback> merge_; ///< Merge scratch.

    std::vector<std::vector<Link>> links_; ///< Per-shard outgoing.
    std::vector<bool> defaultLinks_; ///< links_[s] still the default?

    bool inRound_ = false;
    std::uint64_t windows_ = 0;

    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::exception_ptr> errors_;
    std::atomic<Tick> windowEnd_{0};
    std::atomic<bool> quit_{false};
    std::uint64_t roundId_ = 0;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_SHARD_HH
