/**
 * @file
 * Conservative parallel-in-time execution over sharded event queues.
 *
 * A sharded simulation splits the machine into one *host* shard (the
 * CPU-side components: driver, cache model, memcpy engine, workloads)
 * plus one shard per memory channel (iMC, bus, DRAM, NVMC, FTL,
 * Z-NAND). Each shard owns a private EventQueue; the channel shards
 * execute on worker threads while the host shard always runs on the
 * coordinating thread.
 *
 * Correctness rests on a classic conservative-lookahead argument.
 * Every cross-shard interaction goes through a mailbox message stamped
 * at least L ticks into the future, where L is the modeled host-link
 * routing latency (and the binding term of the auto-derived sync
 * quantum; see core::NvdimmcSystem::quantumBound). Time advances in
 * windows of at most Q <= L ticks:
 *
 *   1. deliver pending host->channel messages into the shard queues
 *      (their stamps are never below the shard clocks),
 *   2. run every channel shard's window [W, W+Q) in parallel; channel
 *      completions do not call host code, they append to per-shard
 *      channel->host mailboxes,
 *   3. barrier, then merge the channel->host messages in a
 *      deterministic order — (tick, channel index, per-mailbox
 *      sequence) — into the host queue,
 *   4. run the host window [W, W+Q) on the coordinating thread; host
 *      calls into the port post messages stamped now+L >= W+Q, so
 *      nothing can land in a channel's past.
 *
 * Because the per-window schedule, the mailbox merge order, and every
 * message stamp are independent of how shards map onto OS threads,
 * results are byte-identical for every executor count >= 1 — an
 * executors=1 run executes the same windows inline with zero atomics,
 * which is what `--verify` diffs against. Windows with no runnable
 * event anywhere are skipped in one jump, so idle simulated time is
 * free, as in the serial kernel.
 *
 * The mailboxes are single-producer/single-consumer by construction:
 * host->channel boxes are filled during the host phase and drained
 * before the next channel phase; channel->host boxes are filled by
 * whichever worker runs that shard's window and drained after the
 * barrier. The barrier's release/acquire pair is the only
 * synchronization the payloads need.
 */

#ifndef NVDIMMC_COMMON_SHARD_HH
#define NVDIMMC_COMMON_SHARD_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/event_queue.hh"
#include "common/types.hh"

namespace nvdimmc
{

/**
 * Barrier-quantum scheduler over one host EventQueue and N channel
 * shard EventQueues. Owns the worker pool (executors-1 threads,
 * started lazily on the first parallel window); shard i runs on
 * executor i % executors, executor 0 being the coordinating thread.
 */
class ShardCoordinator
{
  public:
    using Fn = std::function<void()>;

    /**
     * @param host     the host shard's queue (also the delegation
     *                 target: host.setCoordinator(this) makes the
     *                 public run methods drive the whole system).
     * @param shards   one queue per channel shard, channel order.
     * @param quantum  conservative sync quantum; the caller must
     *                 guarantee every cross-shard message is stamped
     *                 at least @p quantum ticks ahead of the posting
     *                 shard's clock.
     * @param executors total executing threads (>= 1); clamped to the
     *                 shard count.
     */
    ShardCoordinator(EventQueue& host, std::vector<EventQueue*> shards,
                     Tick quantum, unsigned executors);
    ~ShardCoordinator();
    ShardCoordinator(const ShardCoordinator&) = delete;
    ShardCoordinator& operator=(const ShardCoordinator&) = delete;

    Tick quantum() const { return quantum_; }
    unsigned executors() const { return executors_; }
    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }
    /** Sync windows executed so far (identical across executor
     *  counts; idle jumps do not count). */
    std::uint64_t windows() const { return windows_; }
    /** Events fired on the host and every shard combined. */
    std::uint64_t totalEventsFired() const;

    /**
     * Post @p fn to run on shard @p shard's queue at tick @p when.
     * Host phase (or pre-run setup) only. The conservative checker
     * asserts the stamp cannot land in the shard's past — tripping it
     * means the quantum exceeds the cross-shard latency bound.
     */
    void postToShard(std::uint32_t shard, Tick when, Fn fn);

    /**
     * Post @p fn to run on the host queue at tick @p when. Channel
     * phase only, called by the worker executing @p shard's window;
     * delivery happens after the barrier, merged deterministically.
     */
    void postToHost(std::uint32_t shard, Tick when, Fn fn);

    /** @name Drive API (EventQueue delegation targets). */
    /** @{ */
    void runUntil(Tick target);
    /** One *minimal* sync window [next, next+1) at the next runnable
     *  tick — always conservative, and drain loops built on it leave
     *  every clock just past the last event, independent of the
     *  quantum (matching serial end-of-run semantics).
     *  @return false once no shard has pending work. */
    bool runOne();
    std::uint64_t runAll(std::uint64_t max_events);
    /** @} */

  private:
    struct Msg
    {
        Tick when;
        Fn fn;
    };

    /** One direction of one shard pair; padded so producers on
     *  different workers never share a cache line. */
    struct alignas(64) Mailbox
    {
        std::vector<Msg> msgs;
    };

    struct alignas(64) WorkerSlot
    {
        std::atomic<std::uint64_t> go{0};
        std::atomic<std::uint64_t> done{0};
    };

    void deliverToShards();
    Tick earliestWork();
    /** Advance every clock to @p t; no shard may hold an event
     *  before it. */
    void advanceAll(Tick t);
    /** Execute one window ending at @p end across all shards, then
     *  the host. */
    void round(Tick end);
    void runShardRange(unsigned executor, Tick end);
    void workerLoop(unsigned executor);
    void startWorkers();
    void rethrowShardError();

    EventQueue& host_;
    std::vector<EventQueue*> shards_;
    const Tick quantum_;
    const unsigned executors_;

    std::vector<Mailbox> toShard_; ///< host -> shard i.
    std::vector<Mailbox> toHost_;  ///< shard i -> host.
    std::vector<Msg> merge_;       ///< Reused merge scratch.

    bool inRound_ = false;
    std::uint64_t windows_ = 0;

    std::vector<std::thread> workers_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::vector<std::exception_ptr> errors_;
    std::atomic<Tick> windowEnd_{0};
    std::atomic<bool> quit_{false};
    std::uint64_t roundId_ = 0;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_SHARD_HH
