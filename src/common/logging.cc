#include "common/logging.hh"

#include <iostream>

namespace nvdimmc
{

namespace
{

LogLevel gLogLevel = LogLevel::Warn;

} // namespace

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

LogLevel
logLevel()
{
    return gLogLevel;
}

namespace detail
{

std::string
formatMessage(const char* kind, const std::string& body)
{
    std::string out;
    out.reserve(body.size() + 16);
    out += kind;
    out += ": ";
    out += body;
    return out;
}

void
emit(LogLevel level, const char* kind, const std::string& body)
{
    // panic/fatal pass Silent so they always print before throwing.
    if (level != LogLevel::Silent &&
        static_cast<int>(level) > static_cast<int>(gLogLevel)) {
        return;
    }
    std::cerr << formatMessage(kind, body) << "\n";
}

} // namespace detail

} // namespace nvdimmc
