/**
 * @file
 * Generic key/value configuration overrides.
 *
 * Structured configuration lives in typed structs (e.g.
 * core/system_config.hh); this Config is the string-typed override
 * layer that benches and examples use to expose knobs on the command
 * line ("key=value,key2=value2").
 */

#ifndef NVDIMMC_COMMON_CONFIG_HH
#define NVDIMMC_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace nvdimmc
{

/** String-keyed override table with typed accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse a comma-separated "k=v,k2=v2" override string.
     * Throws FatalError on malformed input.
     */
    static Config parse(const std::string& spec);

    void set(const std::string& key, const std::string& value);
    bool has(const std::string& key) const;

    std::string getString(const std::string& key,
                          const std::string& def) const;
    std::int64_t getInt(const std::string& key, std::int64_t def) const;
    std::uint64_t getUint(const std::string& key, std::uint64_t def) const;
    double getDouble(const std::string& key, double def) const;
    bool getBool(const std::string& key, bool def) const;

    const std::map<std::string, std::string>& entries() const
    {
        return values_;
    }

  private:
    std::optional<std::string> lookup(const std::string& key) const;

    std::map<std::string, std::string> values_;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_CONFIG_HH
