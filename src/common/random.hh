/**
 * @file
 * Deterministic pseudo-random number generation (PCG32).
 *
 * Every stochastic component takes an explicit Rng so whole-system runs
 * are reproducible from a single seed. std::mt19937 is avoided because
 * its state is large and its distributions are not
 * implementation-stable; PCG32 with our own distribution helpers is.
 */

#ifndef NVDIMMC_COMMON_RANDOM_HH
#define NVDIMMC_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace nvdimmc
{

/** Minimal PCG32 generator (O'Neill 2014, pcg32_random_r). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull,
                 std::uint64_t stream = 0xda3e39cb94b95bdbull)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ull + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /** Uniform integer in [0, bound). bound == 0 returns 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        // Rejection sampling on 64-bit keeps the bias negligible for
        // any bound a simulator will use.
        std::uint64_t threshold = (~bound + 1) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Bounded Zipf-like draw in [0, n): rank-skewed popularity used by
     * the TPC-H and mixed-load generators. theta=0 degenerates to
     * uniform; larger theta concentrates mass on low ranks.
     */
    std::uint64_t
    zipf(std::uint64_t n, double theta)
    {
        if (n <= 1 || theta <= 0.0)
            return below(n);
        // Inverse-CDF approximation of a Zipf(theta) over n items:
        // P(rank < x) ~ (x/n)^(1-theta). Cheap and monotone, which is
        // all the locality modelling needs.
        double u = uniform();
        double exponent = 1.0 / (1.0 - (theta >= 0.99 ? 0.99 : theta));
        double x = static_cast<double>(n) * std::pow(u, exponent);
        auto idx = static_cast<std::uint64_t>(x);
        return idx >= n ? n - 1 : idx;
    }

    /** @name Raw generator state (fault campaigns checkpoint it). */
    /** @{ */
    std::uint64_t rawState() const { return state_; }
    std::uint64_t rawInc() const { return inc_; }
    void
    setRaw(std::uint64_t state, std::uint64_t inc)
    {
        state_ = state;
        inc_ = inc;
    }
    /** @} */

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_RANDOM_HH
