#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nvdimmc
{

Config
Config::parse(const std::string& spec)
{
    Config cfg;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        if (!item.empty()) {
            std::size_t eq = item.find('=');
            if (eq == std::string::npos || eq == 0) {
                fatal("Config: malformed override '", item,
                      "' (expected key=value)");
            }
            cfg.set(item.substr(0, eq), item.substr(eq + 1));
        }
        pos = comma + 1;
    }
    return cfg;
}

void
Config::set(const std::string& key, const std::string& value)
{
    values_[key] = value;
}

bool
Config::has(const std::string& key) const
{
    return values_.count(key) != 0;
}

std::optional<std::string>
Config::lookup(const std::string& key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string
Config::getString(const std::string& key, const std::string& def) const
{
    return lookup(key).value_or(def);
}

std::int64_t
Config::getInt(const std::string& key, std::int64_t def) const
{
    auto v = lookup(key);
    if (!v)
        return def;
    char* end = nullptr;
    auto parsed = std::strtoll(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        fatal("Config: '", key, "=", *v, "' is not an integer");
    return parsed;
}

std::uint64_t
Config::getUint(const std::string& key, std::uint64_t def) const
{
    auto v = lookup(key);
    if (!v)
        return def;
    char* end = nullptr;
    auto parsed = std::strtoull(v->c_str(), &end, 0);
    if (end == v->c_str() || *end != '\0')
        fatal("Config: '", key, "=", *v, "' is not an unsigned integer");
    return parsed;
}

double
Config::getDouble(const std::string& key, double def) const
{
    auto v = lookup(key);
    if (!v)
        return def;
    char* end = nullptr;
    double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0')
        fatal("Config: '", key, "=", *v, "' is not a number");
    return parsed;
}

bool
Config::getBool(const std::string& key, bool def) const
{
    auto v = lookup(key);
    if (!v)
        return def;
    if (*v == "1" || *v == "true" || *v == "yes" || *v == "on")
        return true;
    if (*v == "0" || *v == "false" || *v == "no" || *v == "off")
        return false;
    fatal("Config: '", key, "=", *v, "' is not a boolean");
}

} // namespace nvdimmc
