/**
 * @file
 * Simulator status and error reporting, in the spirit of gem5's
 * logging.hh: panic() for internal invariant violations, fatal() for
 * user/configuration errors, warn()/inform() for status.
 */

#ifndef NVDIMMC_COMMON_LOGGING_HH
#define NVDIMMC_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace nvdimmc
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

/** Thrown by fatal(): the configuration or input is unusable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Verbosity of non-fatal messages printed to stderr. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Set / query the global log verbosity (default: Warn). */
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail
{

std::string formatMessage(const char* kind, const std::string& body);
void emit(LogLevel level, const char* kind, const std::string& body);

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal simulator bug and throw PanicError. Use only for
 * conditions that should never happen regardless of configuration.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    auto body = detail::concat(std::forward<Args>(args)...);
    detail::emit(LogLevel::Silent, "panic", body);
    throw PanicError(detail::formatMessage("panic", body));
}

/**
 * Report an unrecoverable user/configuration error and throw
 * FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    auto body = detail::concat(std::forward<Args>(args)...);
    detail::emit(LogLevel::Silent, "fatal", body);
    throw FatalError(detail::formatMessage("fatal", body));
}

/** Report suspicious but survivable behaviour. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::emit(LogLevel::Inform, "info",
                 detail::concat(std::forward<Args>(args)...));
}

/** Verbose debugging output. */
template <typename... Args>
void
debugLog(Args&&... args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::concat(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
#define NVDC_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::nvdimmc::panic("assertion failed: " #cond " ", __VA_ARGS__);  \
        }                                                                   \
    } while (0)

/**
 * NVDC_ASSERT for per-event internal invariants on dispatch hot
 * paths: active in debug builds, compiled out under NDEBUG. Use only
 * for conditions no caller can trigger through the public API —
 * API-contract checks stay NVDC_ASSERT so misuse panics in release
 * builds too.
 */
#ifdef NDEBUG
#define NVDC_DASSERT(cond, ...)                                             \
    do {                                                                    \
    } while (0)
#else
#define NVDC_DASSERT(cond, ...) NVDC_ASSERT(cond, __VA_ARGS__)
#endif

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_LOGGING_HH
