#include "common/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace nvdimmc::trace
{

namespace detail
{

bool gEnabled = false;

namespace
{

enum class Kind : std::uint8_t
{
    Duration,
    Instant,
    Counter,
    AsyncBegin, ///< ph "b" — overlapping span lane, paired by id.
    AsyncEnd,   ///< ph "e".
    FlowStart,  ///< ph "s" — arrow chain start, paired by id.
    FlowStep,   ///< ph "t".
    FlowEnd,    ///< ph "f".
};

struct Rec
{
    Kind kind;
    std::uint32_t track;
    const char* name;
    Tick start;
    Tick end;         ///< Duration events only.
    double value;     ///< Counter events only.
    std::uint64_t id; ///< Async/flow pairing id.
};

struct Capture
{
    std::string path;
    /** Serializes record calls: the sharded kernel's channel shards
     *  trace concurrently. First-arrival track ids and record order
     *  are scheduling-dependent; stop() canonicalizes both. */
    std::mutex mu;
    std::vector<Rec> recs;
    /** Track name -> tid (1-based; 0 is the metadata pseudo-track). */
    std::unordered_map<std::string, std::uint32_t> tracks;
    std::vector<std::string> trackNames;
    std::uint64_t dropped = 0;
    std::uint64_t maxEvents = kDefaultMaxEvents;
};

Capture* gCapture = nullptr;

std::uint32_t
trackId(Capture& cap, const char* name)
{
    auto it = cap.tracks.find(name);
    if (it != cap.tracks.end())
        return it->second;
    auto id = static_cast<std::uint32_t>(cap.trackNames.size() + 1);
    cap.tracks.emplace(name, id);
    cap.trackNames.emplace_back(name);
    return id;
}

bool
push(Capture& cap, Rec rec)
{
    if (cap.recs.size() >= cap.maxEvents) {
        ++cap.dropped;
        return false;
    }
    cap.recs.push_back(rec);
    return true;
}

/**
 * Canonicalize a finished capture so the written file is identical no
 * matter how records interleaved across shard workers: renumber
 * tracks in name order and sort records on a total key. Two runs of a
 * deterministic simulation produce the same record multiset, so the
 * sorted file is byte-stable.
 */
void
canonicalize(Capture& cap)
{
    std::vector<std::uint32_t> order(cap.trackNames.size());
    for (std::uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  return cap.trackNames[a] < cap.trackNames[b];
              });
    std::vector<std::uint32_t> remap(order.size());
    std::vector<std::string> names(order.size());
    for (std::uint32_t newIdx = 0; newIdx < order.size(); ++newIdx) {
        remap[order[newIdx]] = newIdx + 1;
        names[newIdx] = cap.trackNames[order[newIdx]];
    }
    cap.trackNames = std::move(names);
    for (Rec& r : cap.recs)
        r.track = remap[r.track - 1];

    std::stable_sort(
        cap.recs.begin(), cap.recs.end(),
        [](const Rec& a, const Rec& b) {
            if (a.start != b.start)
                return a.start < b.start;
            if (a.track != b.track)
                return a.track < b.track;
            if (a.kind != b.kind)
                return a.kind < b.kind;
            int c = std::strcmp(a.name, b.name);
            if (c != 0)
                return c < 0;
            if (a.end != b.end)
                return a.end < b.end;
            if (a.value != b.value)
                return a.value < b.value;
            return a.id < b.id;
        });
}

/** Picosecond ticks as fractional Chrome microseconds ("123.000456"). */
void
writeTs(std::ostream& os, Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / kUs),
                  static_cast<unsigned long long>(t % kUs));
    os << buf;
}

void
writeEscaped(std::ostream& os, const char* s)
{
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
}

} // namespace

void
recordDuration(const char* track, const char* name, Tick start,
               Tick end)
{
    if (!gCapture)
        return;
    if (end < start)
        end = start;
    std::lock_guard<std::mutex> lock(gCapture->mu);
    push(*gCapture, {Kind::Duration, trackId(*gCapture, track), name,
                     start, end, 0.0, 0});
}

void
recordInstant(const char* track, const char* name, Tick at)
{
    if (!gCapture)
        return;
    std::lock_guard<std::mutex> lock(gCapture->mu);
    push(*gCapture, {Kind::Instant, trackId(*gCapture, track), name,
                     at, at, 0.0, 0});
}

void
recordCounter(const char* track, const char* series, Tick at,
              double value)
{
    if (!gCapture)
        return;
    std::lock_guard<std::mutex> lock(gCapture->mu);
    push(*gCapture, {Kind::Counter, trackId(*gCapture, track), series,
                     at, at, value, 0});
}

void
recordAsync(const char* track, const char* name, Tick at,
            std::uint64_t id, bool begin)
{
    if (!gCapture)
        return;
    std::lock_guard<std::mutex> lock(gCapture->mu);
    push(*gCapture, {begin ? Kind::AsyncBegin : Kind::AsyncEnd,
                     trackId(*gCapture, track), name, at, at, 0.0,
                     id});
}

void
recordFlow(const char* track, const char* name, Tick at,
           std::uint64_t id, int step)
{
    if (!gCapture)
        return;
    Kind kind = step == 0   ? Kind::FlowStart
                : step == 1 ? Kind::FlowStep
                            : Kind::FlowEnd;
    std::lock_guard<std::mutex> lock(gCapture->mu);
    push(*gCapture,
         {kind, trackId(*gCapture, track), name, at, at, 0.0, id});
}

} // namespace detail

void
start(std::string path, std::uint64_t maxEvents)
{
    delete detail::gCapture;
    detail::gCapture = new detail::Capture;
    detail::gCapture->path = std::move(path);
    detail::gCapture->maxEvents =
        maxEvents > 0 ? maxEvents : kDefaultMaxEvents;
    detail::gEnabled = true;
}

bool
stop()
{
    using detail::gCapture;
    detail::gEnabled = false;
    if (!gCapture)
        return false;

    std::unique_ptr<detail::Capture> cap(gCapture);
    gCapture = nullptr;
    detail::canonicalize(*cap);

    std::ofstream os(cap->path);
    if (!os) {
        warn("trace: cannot write ", cap->path);
        return false;
    }
    os.precision(17);

    os << "[\n"
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"tid\":0,\"args\":{\"name\":\"nvdimmc-sim\"}}";
    for (std::size_t i = 0; i < cap->trackNames.size(); ++i) {
        os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":"
           << (i + 1) << ",\"args\":{\"name\":\"";
        detail::writeEscaped(os, cap->trackNames[i].c_str());
        os << "\"}}";
        // Keep Perfetto's track order stable by track id.
        os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\","
              "\"pid\":0,\"tid\":"
           << (i + 1) << ",\"args\":{\"sort_index\":" << (i + 1)
           << "}}";
    }

    for (const detail::Rec& r : cap->recs) {
        os << ",\n{\"name\":\"";
        if (r.kind == detail::Kind::Counter) {
            // Counter series attach per (pid, name): qualify with the
            // track so e.g. "imc.rdq" and "nvmc.dma.bytes" stay apart.
            detail::writeEscaped(os, cap->trackNames[r.track - 1].c_str());
            os << '.';
        }
        detail::writeEscaped(os, r.name);
        os << "\",\"pid\":0,\"tid\":" << r.track << ",\"ts\":";
        detail::writeTs(os, r.start);
        switch (r.kind) {
          case detail::Kind::Duration:
            os << ",\"ph\":\"X\",\"dur\":";
            detail::writeTs(os, r.end - r.start);
            break;
          case detail::Kind::Instant:
            os << ",\"ph\":\"i\",\"s\":\"t\"";
            break;
          case detail::Kind::Counter:
            os << ",\"ph\":\"C\",\"args\":{\"value\":" << r.value
               << '}';
            break;
          case detail::Kind::AsyncBegin:
          case detail::Kind::AsyncEnd:
            os << ",\"ph\":\""
               << (r.kind == detail::Kind::AsyncBegin ? 'b' : 'e')
               << "\",\"cat\":\"span\",\"id\":\"0x" << std::hex
               << r.id << std::dec << '"';
            break;
          case detail::Kind::FlowStart:
          case detail::Kind::FlowStep:
          case detail::Kind::FlowEnd:
            os << ",\"ph\":\""
               << (r.kind == detail::Kind::FlowStart   ? 's'
                   : r.kind == detail::Kind::FlowStep ? 't'
                                                      : 'f')
               << "\",\"cat\":\"spanflow\",\"id\":\"0x" << std::hex
               << r.id << std::dec << '"';
            if (r.kind == detail::Kind::FlowEnd)
                os << ",\"bp\":\"e\"";
            break;
        }
        os << '}';
    }
    os << "\n]\n";

    if (cap->dropped > 0) {
        warn("trace: capture hit the ", cap->maxEvents,
             "-event cap; dropped ", cap->dropped,
             " events (the written trace is truncated; raise it via"
             " --trace-max-events=)");
    }
    return static_cast<bool>(os);
}

std::uint64_t
eventCount()
{
    if (!detail::gCapture)
        return 0;
    std::lock_guard<std::mutex> lock(detail::gCapture->mu);
    return detail::gCapture->recs.size();
}

std::uint64_t
droppedCount()
{
    if (!detail::gCapture)
        return 0;
    std::lock_guard<std::mutex> lock(detail::gCapture->mu);
    return detail::gCapture->dropped;
}

std::uint64_t
maxEvents()
{
    if (!detail::gCapture)
        return 0;
    std::lock_guard<std::mutex> lock(detail::gCapture->mu);
    return detail::gCapture->maxEvents;
}

} // namespace nvdimmc::trace
