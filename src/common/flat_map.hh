/**
 * @file
 * Open-addressing hash map for integer keys on simulator hot paths.
 *
 * The driver's hottest lookups — DramCache's page->slot directory and
 * PageTable's PTE map — are point queries on 64-bit page numbers:
 * find/insert/erase only, never iterated. std::unordered_map pays a
 * heap node and a pointer chase per entry there; this map stores
 * key/value pairs inline in one power-of-two array with linear
 * probing, so the common hit is one hash, one probe, one cache line.
 *
 * Design points:
 *  - Multiplicative hashing (the splitmix64 finalizer) scrambles
 *    sequential page numbers, which is exactly the adversarial shape
 *    device pages come in.
 *  - Backward-shift deletion instead of tombstones: erase compacts
 *    the displaced run in place, so probe lengths never degrade with
 *    workload age (the cache directory erases on every eviction).
 *  - Max load factor 0.75, growth by doubling; a per-slot state byte
 *    keeps the full 64-bit key space usable (no reserved sentinel —
 *    page 0 is a legal key).
 *
 * Determinism: lookup results are value-identical to any map, and
 * nothing here ever iterates, so replacing std::unordered_map with
 * this cannot reorder simulated events (goldens stay byte-identical).
 */

#ifndef NVDIMMC_COMMON_FLAT_MAP_HH
#define NVDIMMC_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nvdimmc
{

/** Flat open-addressing map from std::uint64_t to @p V. */
template <typename V>
class FlatMap
{
  public:
    FlatMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** @return pointer to the mapped value, or nullptr. */
    const V*
    find(std::uint64_t key) const
    {
        if (size_ == 0)
            return nullptr;
        for (std::size_t i = indexFor(key);; i = next(i)) {
            if (state_[i] == kEmpty)
                return nullptr;
            if (keys_[i] == key)
                return &vals_[i];
        }
    }

    V*
    find(std::uint64_t key)
    {
        return const_cast<V*>(std::as_const(*this).find(key));
    }

    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Insert @p key -> @p val, overwriting any existing mapping. */
    void
    insert_or_assign(std::uint64_t key, const V& val)
    {
        if ((size_ + 1) * 4 > capacity() * 3)
            grow();
        for (std::size_t i = indexFor(key);; i = next(i)) {
            if (state_[i] == kEmpty) {
                keys_[i] = key;
                vals_[i] = val;
                state_[i] = kFull;
                ++size_;
                return;
            }
            if (keys_[i] == key) {
                vals_[i] = val;
                return;
            }
        }
    }

    /** @return true iff @p key was present. */
    bool
    erase(std::uint64_t key)
    {
        if (size_ == 0)
            return false;
        std::size_t i = indexFor(key);
        for (;; i = next(i)) {
            if (state_[i] == kEmpty)
                return false;
            if (keys_[i] == key)
                break;
        }
        // Backward-shift: walk the displaced run after the hole and
        // pull back every entry whose home slot is on the hole's side,
        // so probe chains stay gap-free without tombstones.
        std::size_t hole = i;
        for (std::size_t j = next(hole);; j = next(j)) {
            if (state_[j] == kEmpty)
                break;
            std::size_t home = indexFor(keys_[j]);
            // Entry j may move into the hole iff the hole lies within
            // [home, j] in circular probe order.
            bool movable = hole <= j ? (home <= hole || home > j)
                                     : (home <= hole && home > j);
            if (movable) {
                keys_[hole] = keys_[j];
                vals_[hole] = std::move(vals_[j]);
                hole = j;
            }
        }
        state_[hole] = kEmpty;
        --size_;
        return true;
    }

    /** Pre-size for @p n entries without rehash churn. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = kMinCapacity;
        while (n * 4 > want * 3)
            want *= 2;
        if (want > capacity())
            rehash(want);
    }

    void
    clear()
    {
        state_.assign(state_.size(), kEmpty);
        size_ = 0;
    }

  private:
    static constexpr std::uint8_t kEmpty = 0;
    static constexpr std::uint8_t kFull = 1;
    static constexpr std::size_t kMinCapacity = 16;

    std::size_t capacity() const { return state_.size(); }

    /** splitmix64 finalizer: full-avalanche mix of the page number. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    std::size_t
    indexFor(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mix(key)) & (capacity() - 1);
    }

    std::size_t
    next(std::size_t i) const
    {
        return (i + 1) & (capacity() - 1);
    }

    void
    grow()
    {
        rehash(capacity() ? capacity() * 2 : kMinCapacity);
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<std::uint64_t> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        std::vector<std::uint8_t> old_state = std::move(state_);
        keys_.assign(new_cap, 0);
        vals_.assign(new_cap, V{});
        state_.assign(new_cap, kEmpty);
        size_ = 0;
        for (std::size_t i = 0; i < old_state.size(); ++i) {
            if (old_state[i] != kFull)
                continue;
            for (std::size_t j = indexFor(old_keys[i]);; j = next(j)) {
                if (state_[j] != kEmpty)
                    continue;
                keys_[j] = old_keys[i];
                vals_[j] = std::move(old_vals[i]);
                state_[j] = kFull;
                ++size_;
                break;
            }
        }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<V> vals_;
    std::vector<std::uint8_t> state_;
    std::size_t size_ = 0;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_FLAT_MAP_HH
