/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders events by (tick, sequence-number) so a
 * whole-system simulation is fully deterministic: two events at the
 * same tick fire in the order they were scheduled, regardless of how
 * they were created.
 *
 * The kernel is allocation-free on its hot paths, gem5-style:
 *
 *  - Intrusive events. Components embed an Event subclass (usually an
 *    EventFunctionWrapper member) and schedule/reschedule it in
 *    place. Nothing is allocated per occurrence; a periodic event
 *    (refresh tick, controller step, GC pass) reuses the same object
 *    forever. Cancellation is O(1): the in-object scheduled flag and
 *    generation sequence are cleared and the stale wheel entry is
 *    lazily skipped when it surfaces.
 *
 *  - One-shot callbacks. schedule(when, lambda) stores the callable
 *    in a pooled, small-buffer-optimized event slot (no heap
 *    allocation for captures up to kCallbackInlineBytes; the pool
 *    itself is recycled, so steady state allocates nothing — an
 *    sboOverflows() counter tracks any capture that spills so a
 *    hot-path regression is visible). The returned EventId is usable
 *    with cancel()/isPending().
 *
 *  - Staged batches. scheduleBatch(sorted vector) admits a whole
 *    pre-sorted train of never-cancelled one-shots — the sharded
 *    kernel's per-window mailbox deliveries — without touching the
 *    wheel at all: the batch keeps its vector, a cursor walks it, and
 *    the dispatcher merges batch heads against the wheel's earliest
 *    entry. Per message that is O(1) amortized, and the batch buffers
 *    recycle through a free list so steady state allocates nothing
 *    (bench_event_queue BM_Mailbox* measures the difference).
 *
 * Pending events live in a hierarchical timing wheel instead of a
 * binary heap: kLevels levels of 64 buckets, level l bucketing ticks
 * at 64^l granularity, so level 0 resolves single ticks and the top
 * level spans the whole 64-bit tick space (no far-future overflow
 * list is needed). schedule() appends to the owning bucket in O(1);
 * dispatch drains the current level-0 bucket FIFO (entries in a
 * single-tick bucket are already in seq order by construction) and
 * lazily cascades a higher-level bucket down one level each time the
 * wheel clock enters its range. A per-level occupancy bitmask makes
 * "find the next non-empty bucket" one count-trailing-zeros, so empty
 * tick ranges are skipped in O(1) rather than walked. Each entry is
 * touched at most once per level on its way down, so cost per event
 * is O(levels) worst case and O(1) for the near-future deltas that
 * dominate simulation (see DESIGN.md § event kernel for the cascade
 * protocol and the exact-order argument).
 *
 * All kinds share one sequence counter, so their relative FIFO order
 * is exact.
 *
 * Lifetime rule for intrusive events: the Event object must outlive
 * every tick it was ever scheduled for — even if descheduled, the
 * queue still holds a (lazily discarded) reference until that tick is
 * reached. In practice events are members of sim components that live
 * for the whole run; the ASan CI job enforces the rule.
 *
 * Semantics of empty()/pending() under lazy deletion: cancelled or
 * descheduled entries never count, even while their stale wheel
 * entries are still unvisited. Consequently runUntil() over a
 * fully-cancelled queue fires nothing and still advances now() to the
 * target tick.
 */

#ifndef NVDIMMC_COMMON_EVENT_QUEUE_HH
#define NVDIMMC_COMMON_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace nvdimmc
{

class EventQueue;
class ShardCoordinator;

/**
 * Intrusive event base class. Subclass (or use EventFunctionWrapper)
 * and embed in the owning component; EventQueue never owns it.
 */
class Event
{
  public:
    Event() = default;
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    virtual ~Event() = default;

    /** Called when the event fires; it is descheduled beforehand, so
     *  process() may schedule() it again (the periodic idiom). */
    virtual void process() = 0;

    /** Debug label. */
    virtual const char* name() const { return "event"; }

    bool scheduled() const { return sched_; }

    /** Tick of the pending occurrence; only meaningful if scheduled(). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    /** Generation stamp: a wheel entry is live iff its seq matches. */
    std::uint64_t seq_ = 0;
    bool sched_ = false;
    /** True for EventQueue's pooled one-shot slots: lets the
     *  dispatcher skip the virtual process() call on that hot path. */
    bool oneShot_ = false;
};

/**
 * An Event that runs a function object fixed at construction. The
 * gem5 EventFunctionWrapper idiom: one of these per recurring action,
 * owned by the component, rescheduled in place forever.
 */
class EventFunctionWrapper final : public Event
{
  public:
    explicit EventFunctionWrapper(std::function<void()> fn,
                                  const char* name = "wrapped-event")
        : fn_(std::move(fn)), name_(name)
    {
    }

    void process() override { fn_(); }
    const char* name() const override { return name_; }

  private:
    std::function<void()> fn_;
    const char* name_;
};

/**
 * Deterministic discrete-event scheduler keyed on picosecond ticks.
 * Scheduling in the past is a panic: simulated hardware cannot react
 * before its cause.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Captures up to this many bytes ride in the pooled slot without
     *  a heap allocation. */
    static constexpr std::size_t kCallbackInlineBytes = 96;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** @name Intrusive API */
    /** @{ */

    /** Schedule @p ev at absolute tick @p when (>= now()). @p ev must
     *  not already be scheduled (use reschedule() for that). */
    void schedule(Event& ev, Tick when);

    /** Schedule @p ev @p delay ticks from now. */
    void scheduleAfter(Event& ev, Tick delay)
    {
        schedule(ev, now_ + delay);
    }

    /** Move @p ev to @p when, whether or not it is scheduled. */
    void reschedule(Event& ev, Tick when)
    {
        deschedule(ev);
        schedule(ev, when);
    }

    /** O(1) cancel; a no-op if @p ev is not scheduled. */
    void deschedule(Event& ev)
    {
        if (!ev.sched_)
            return;
        ev.sched_ = false;
        --livePending_;
        if (memoValid_ && ev.seq_ == memoSeq_)
            memoValid_ = false;
    }

    /** @} */

    /** @name One-shot callback API */
    /** @{ */

    /**
     * Schedule callable @p fn at absolute tick @p when (>= now()).
     * Small captures are stored inline in a pooled event slot.
     * @return an id usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Tick when, F&& fn)
    {
        CallbackEvent& ce = allocCallback();
        emplaceCallable(ce, std::forward<F>(fn));
        schedule(ce, when);
        return ce.id();
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    EventId
    scheduleAfter(Tick delay, F&& fn)
    {
        return schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Cancel a pending one-shot. Cancelling an already-fired or
     * unknown id is a harmless no-op (ids are generation-stamped, so
     * the id space never aliases a later event).
     */
    void cancel(EventId id);

    /** @} */

    /** @name Staged batch API */
    /** @{ */

    /** One element of a staged batch. */
    struct TimedCallback
    {
        Tick when = 0;
        Callback fn;
        /** Assigned by scheduleBatch; callers leave it alone. */
        std::uint64_t seq = 0;
    };

    /**
     * Admit a whole batch of one-shot callbacks in a single call.
     * @p batch must be sorted by tick (stable for ties) with every
     * stamp >= now(); the elements keep exact FIFO order against
     * events scheduled later. The batch cannot be cancelled. The
     * vector's storage is taken over and a recycled empty buffer is
     * swapped back, so a caller delivering every window reuses
     * capacity and never allocates in steady state.
     */
    void scheduleBatch(std::vector<TimedCallback>& batch);

    /** @return true iff @p id is scheduled and not yet fired/cancelled. */
    bool isPending(EventId id) const { return lookupCallback(id) != nullptr; }

    /** @} */

    /** @return true iff no runnable events remain (cancelled-but-
     *  unvisited wheel entries never count). */
    bool empty() const { return livePending_ == 0; }

    /** Number of pending (non-cancelled) events of either kind. */
    std::size_t pending() const { return livePending_; }

    /**
     * Fire the single earliest event.
     * @return false if the queue was empty.
     *
     * On a coordinated (sharded) host queue this runs one conservative
     * sync window across every shard instead, returning false once no
     * shard has work left.
     */
    bool runOne();

    /**
     * Run every event with tick <= @p when, then advance now() to
     * @p when even if the queue drained (or was fully cancelled)
     * earlier. On a coordinated host queue the whole sharded system
     * advances to @p when in conservative quantum windows.
     */
    void runUntil(Tick when);

    /** runUntil(now() + delta). */
    void runFor(Tick delta) { runUntil(now_ + delta); }

    /**
     * Run until the queue drains or @p max_events fired.
     * @return number of events fired.
     */
    std::uint64_t runAll(std::uint64_t max_events = ~std::uint64_t{0});

    /**
     * Fire every event with tick strictly before @p end, then advance
     * now() to @p end. The shard execution primitive: a window
     * [now, end) is exclusive of its right edge so an event scheduled
     * exactly at a quantum boundary fires in the next window, on
     * whichever shard owns it, after mailbox delivery.
     */
    void runWindow(Tick end);

    /** Earliest pending event tick, or kTickNever if none. */
    Tick peekNextTick();

    /**
     * Attach this queue to a shard coordinator: the public run
     * methods (runOne/runUntil/runFor/runAll) then drive the whole
     * coordinated system so existing workloads and benches work
     * unchanged on a sharded topology. The coordinator itself always
     * executes queues through runWindow(), which never delegates.
     */
    void setCoordinator(ShardCoordinator* coord) { coord_ = coord; }

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

    /** One-shot callables whose captures exceeded
     *  kCallbackInlineBytes and fell back to a heap allocation. A
     *  nonzero steady-state rate here means a hot-path lambda grew
     *  past the SBO budget (bench_event_queue reports it). */
    std::uint64_t sboOverflows() const { return sboOverflows_; }

  private:
    /** Pooled slot for one-shot callbacks: SBO storage plus a
     *  generation counter that makes EventIds unambiguous. */
    class CallbackEvent final : public Event
    {
      public:
        CallbackEvent(EventQueue& owner, std::uint32_t slot)
            : owner_(owner), slot_(slot)
        {
        }

        ~CallbackEvent() override
        {
            if (destroy_)
                destroy_(*this);
        }

        void process() override;
        const char* name() const override { return "one-shot"; }

        EventId
        id() const
        {
            return (static_cast<EventId>(slot_) + 1) << 32 | gen_;
        }

        EventQueue& owner_;
        const std::uint32_t slot_;
        std::uint32_t gen_ = 1;
        void (*call_)(CallbackEvent&) = nullptr;
        void (*destroy_)(CallbackEvent&) = nullptr;
        void* heapFn_ = nullptr;
        alignas(std::max_align_t) unsigned char inline_[kCallbackInlineBytes];
    };

    /** @name Timing wheel */
    /** @{ */

    /** log2 of the bucket fan-out per level. */
    static constexpr int kLevelBits = 6;
    static constexpr std::uint32_t kSlotsPerLevel = 1u << kLevelBits;
    /** 11 levels x 6 bits = 66 bits: the whole Tick space fits, so
     *  there is no far-future overflow structure to special-case. */
    static constexpr int kLevels = 11;
    static constexpr std::uint32_t kNoFocus = ~std::uint32_t{0};
    /** focus_ value naming the front slot rather than a bucket. */
    static constexpr std::uint32_t kFrontFocus = kSlotsPerLevel;

    struct WheelEntry
    {
        Tick when;
        std::uint64_t seq;
        Event* ev;
    };

    using Bucket = std::vector<WheelEntry>;

    /** A wheel entry is live iff the event is still scheduled for it. */
    static bool
    live(const WheelEntry& e)
    {
        return e.ev->sched_ && e.ev->seq_ == e.seq;
    }

    /** Level an entry for @p when belongs to, relative to clock_: the
     *  lowest level whose parent block contains both ticks. */
    int
    levelFor(Tick when) const
    {
        std::uint64_t x = when ^ clock_;
        if (x == 0)
            return 0;
        int bit = 63 - __builtin_clzll(x);
        return bit / kLevelBits;
    }

    /** First tick covered by slot @p s of level @p l (relative to the
     *  current clock_ block at level l+1). */
    Tick
    slotStart(int l, std::uint32_t s) const
    {
        int parent_shift = kLevelBits * (l + 1);
        Tick parent_mask = parent_shift >= 64
                               ? ~Tick{0}
                               : (Tick{1} << parent_shift) - 1;
        return (clock_ & ~parent_mask) |
               (static_cast<Tick>(s) << (kLevelBits * l));
    }

    /** Append an entry into its owning bucket. O(1). */
    void
    pushEntry(Tick when, std::uint64_t seq, Event* ev)
    {
        int l = levelFor(when);
        auto s = static_cast<std::uint32_t>(
            (when >> (kLevelBits * l)) & (kSlotsPerLevel - 1));
        wheel_[static_cast<std::size_t>(l)][s].push_back(
            WheelEntry{when, seq, ev});
        occ_[static_cast<std::size_t>(l)] |= std::uint64_t{1} << s;
        ++bucketCount_;
    }

    /** Insert an entry at the head of its owning bucket (before the
     *  level-0 drain cursor). Only legal for an entry (when, seq)-less
     *  than everything in the bucket: the demoted front. Buckets stay
     *  seq-ordered per tick, which the O(1) level-0 drain relies on. */
    void
    pushEntryFront(Tick when, std::uint64_t seq, Event* ev)
    {
        int l = levelFor(when);
        auto s = static_cast<std::uint32_t>(
            (when >> (kLevelBits * l)) & (kSlotsPerLevel - 1));
        Bucket& b = wheel_[static_cast<std::size_t>(l)][s];
        b.insert(b.begin() + (l == 0 ? head0_[s] : 0),
                 WheelEntry{when, seq, ev});
        occ_[static_cast<std::size_t>(l)] |= std::uint64_t{1} << s;
        ++bucketCount_;
    }

    /**
     * Admit an entry, preferring the front slot: when the buckets are
     * empty the entry is held in front_ and never touches the wheel
     * at all — the common simulation shape of one (or few)
     * outstanding events then costs no bucket or cascade work. The
     * armed front is always strictly (when, seq)-below every bucket
     * entry: arming requires empty buckets, later pushes either go
     * behind it or swap with it, and the front only ever decreases
     * while armed — so it is always the wheel minimum, and a demoted
     * front belongs at the head of whatever bucket receives it.
     */
    void
    enqueueEntry(Tick when, std::uint64_t seq, Event* ev)
    {
        if (haveFront_) {
            if (!live(front_)) {
                haveFront_ = false;
            } else if (when < front_.when) {
                pushEntryFront(front_.when, front_.seq, front_.ev);
                front_ = WheelEntry{when, seq, ev};
                // The new front is by construction the wheel minimum.
                memoValid_ = true;
                memoWhen_ = when;
                memoSeq_ = seq;
                memoFocus_ = kFrontFocus;
                return;
            } else {
                pushEntry(when, seq, ev);
                return;
            }
        }
        if (bucketCount_ == 0) {
            front_ = WheelEntry{when, seq, ev};
            haveFront_ = true;
            // The wheel was empty, so this is its minimum: pre-arm
            // the memo and the next dispatch skips the lookup too.
            memoValid_ = true;
            memoWhen_ = when;
            memoSeq_ = seq;
            memoFocus_ = kFrontFocus;
            return;
        }
        if (memoValid_ && when < memoWhen_)
            memoValid_ = false;
        pushEntry(when, seq, ev);
    }

    /**
     * Locate the earliest live wheel entry, cascading higher-level
     * buckets down as the wheel clock advances — but never advancing
     * clock_ past @p bound (the caller guarantees now() will reach at
     * least bound, so no later schedule() can land behind the clock).
     * On success @p when/@p seq describe the entry; if it was reached
     * (bucket start <= bound) it is focused for fireFocused(),
     * otherwise focus is invalid and only (when, seq) is reported.
     *
     * The memo fast path stays inline: consecutive dispatches that
     * did not disturb the minimum (every staged-mailbox drain, every
     * lone-timer step) cost three loads and a branch.
     */
    bool
    findWheelNext(Tick bound, Tick& when, std::uint64_t& seq)
    {
        if (memoValid_) {
            focus_ = memoFocus_;
            when = memoWhen_;
            seq = memoSeq_;
            return true;
        }
        return findWheelNextSlow(bound, when, seq);
    }

    /** Scan/cascade path of findWheelNext on a memo miss. */
    bool findWheelNextSlow(Tick bound, Tick& when, std::uint64_t& seq);

    /** Fire the entry focused by findWheelNext(). */
    void fireFocused();

    /**
     * Fire the earliest event (wheel or staged lane) if its tick is
     * within @p limit — inclusive when @p strict is false (runUntil),
     * exclusive when true (runWindow). @return whether one fired.
     */
    bool fireNextBound(Tick limit, bool strict);

    /** fireNextBound with no bound: fire the earliest event, if any. */
    bool fireNext() { return fireNextBound(kTickNever, false); }

    /** One staged batch mid-consumption. */
    struct Stage
    {
        std::vector<TimedCallback> items;
        std::size_t cursor = 0;
    };

    /** Index into stages_ of the earliest (when, seq) head, or
     *  stages_.size() if none (drained stages are skipped). */
    std::size_t bestStage() const;

    /** Fire the head of stages_[si] in place. Drained stages are
     *  recycled once no staged callable is on the stack, so a
     *  callback that re-enters the dispatcher can never destroy the
     *  callable it is running from. */
    void fireStaged(std::size_t si);

    /** Recycle every drained stage (stagedDepth_ must be 0). */
    void collectStages();

    /** @} */

    /** Grab a free pooled slot (grows the pool only on first use of a
     *  new depth; steady state never allocates). */
    CallbackEvent&
    allocCallback()
    {
        if (freeSlots_.empty())
            growCallbackPool();
        std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return *pool_[slot];
    }

    /** Cold path of allocCallback: add one slot to the pool. */
    void growCallbackPool();

    /** Destroy the stored callable and return the slot to the pool,
     *  bumping the generation so stale EventIds miss. */
    void
    recycleCallback(CallbackEvent& ce)
    {
        if (ce.destroy_)
            ce.destroy_(ce);
        ce.call_ = nullptr;
        ce.destroy_ = nullptr;
        ++ce.gen_;
        freeSlots_.push_back(ce.slot_);
    }

    /** Decode an EventId; null unless it names a still-pending slot. */
    const CallbackEvent* lookupCallback(EventId id) const;
    CallbackEvent*
    lookupCallback(EventId id)
    {
        return const_cast<CallbackEvent*>(
            std::as_const(*this).lookupCallback(id));
    }

    template <typename F>
    static void
    emplaceCallable(CallbackEvent& ce, F&& fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn&>,
                      "EventQueue callbacks take no arguments");
        if constexpr (sizeof(Fn) <= kCallbackInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(ce.inline_)) Fn(std::forward<F>(fn));
            ce.call_ = [](CallbackEvent& e) {
                invokeCallable(*std::launder(
                    reinterpret_cast<Fn*>(e.inline_)));
            };
            ce.destroy_ = [](CallbackEvent& e) {
                std::launder(reinterpret_cast<Fn*>(e.inline_))->~Fn();
            };
        } else {
            ++ce.owner_.sboOverflows_;
            ce.heapFn_ = new Fn(std::forward<F>(fn));
            ce.call_ = [](CallbackEvent& e) {
                invokeCallable(*static_cast<Fn*>(e.heapFn_));
            };
            ce.destroy_ = [](CallbackEvent& e) {
                delete static_cast<Fn*>(e.heapFn_);
                e.heapFn_ = nullptr;
            };
        }
    }

    /** A null std::function is legal and means "just advance time". */
    template <typename Fn>
    static void
    invokeCallable(Fn& fn)
    {
        if constexpr (std::is_constructible_v<bool, Fn&>) {
            if (fn)
                fn();
        } else {
            fn();
        }
    }

    /** wheel_[l][s]: entries for the 64^l-tick range of slot s within
     *  the clock's current level-(l+1) block; a level-0 bucket covers
     *  exactly one tick, so draining it head-to-tail is already
     *  (tick, seq) order. */
    std::array<std::array<Bucket, kSlotsPerLevel>, kLevels> wheel_{};
    /** Per-level bitmask of non-empty buckets (bit s = slot s). */
    std::array<std::uint64_t, kLevels> occ_{};
    /** Drain cursor per level-0 bucket: entries before it have fired
     *  or died; reset when the bucket is cleared. */
    std::array<std::uint32_t, kSlotsPerLevel> head0_{};
    /**
     * The wheel's dispatch position: every live entry is at tick >=
     * clock_, and for every level >= 1 the slot containing clock_ has
     * already been cascaded (so lower levels hold anything earlier
     * than the next occupied higher-level bucket). clock_ only moves
     * forward, and never past a tick the caller has not committed
     * now() to reach.
     */
    Tick clock_ = 0;
    /** Level-0 slot focused by findWheelNext for fireFocused, or
     *  kFrontFocus when the front slot holds the minimum. */
    std::uint32_t focus_ = kNoFocus;
    /**
     * Memo of the last located-and-focused wheel minimum. Valid until
     * that entry fires or dies, or a smaller (when, seq) is pushed —
     * so consecutive dispatches with no intervening earlier schedule
     * (the staged-mailbox and lone-timer shapes) skip the wheel
     * lookup entirely. A focused minimum needs no clock movement to
     * fire, so a memo hit is bound-independent.
     */
    bool memoValid_ = false;
    Tick memoWhen_ = 0;
    std::uint64_t memoSeq_ = 0;
    std::uint32_t memoFocus_ = kNoFocus;
    /**
     * Front slot: the wheel minimum cached outside the buckets. Armed
     * only while the buckets are empty, so a lone in-flight event
     * (the dominant device-model shape: one timer stepping forward)
     * cycles schedule->fire entirely through this slot. Firing it
     * advances now() but never clock_: bucket entries pushed while
     * the front was armed were placed relative to the lagging clock,
     * and jumping it would strand uncascaded current slots.
     */
    WheelEntry front_{};
    bool haveFront_ = false;
    /** Entries (live or dead) currently resident in wheel_ buckets. */
    std::size_t bucketCount_ = 0;

    std::vector<std::unique_ptr<CallbackEvent>> pool_;
    std::vector<std::uint32_t> freeSlots_;
    /** Staged batches being consumed (usually 0 or 1; linear scans
     *  beat anything fancier at that size). */
    std::vector<Stage> stages_;
    /** Drained batch buffers awaiting reuse. */
    std::vector<std::vector<TimedCallback>> freeStageBufs_;
    /** Staged callables currently executing (re-entrancy depth). */
    std::uint32_t stagedDepth_ = 0;
    /** Some stage drained and awaits collectStages(). */
    bool stagedDone_ = false;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t livePending_ = 0;
    std::uint64_t fired_ = 0;
    std::uint64_t sboOverflows_ = 0;
    ShardCoordinator* coord_ = nullptr;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_EVENT_QUEUE_HH
