/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders events by (tick, sequence-number) so a
 * whole-system simulation is fully deterministic: two events at the
 * same tick fire in the order they were scheduled, regardless of how
 * they were created.
 *
 * The kernel is allocation-free on its hot paths, gem5-style:
 *
 *  - Intrusive events. Components embed an Event subclass (usually an
 *    EventFunctionWrapper member) and schedule/reschedule it in
 *    place. Nothing is allocated per occurrence; a periodic event
 *    (refresh tick, controller step, GC pass) reuses the same object
 *    forever. Cancellation is O(1): the in-object scheduled flag and
 *    generation sequence are cleared and the stale heap entry is
 *    lazily skipped when it surfaces.
 *
 *  - One-shot callbacks. schedule(when, lambda) stores the callable
 *    in a pooled, small-buffer-optimized event slot (no heap
 *    allocation for captures up to kCallbackInlineBytes; the pool
 *    itself is recycled, so steady state allocates nothing). The
 *    returned EventId is usable with cancel()/isPending().
 *
 *  - Staged batches. scheduleBatch(sorted vector) admits a whole
 *    pre-sorted train of never-cancelled one-shots — the sharded
 *    kernel's per-window mailbox deliveries — without touching the
 *    binary heap at all: the batch keeps its vector, a cursor walks
 *    it, and the dispatcher merges batch heads against the heap top.
 *    Per message that is O(1) amortized instead of O(log heap), and
 *    the batch buffers recycle through a free list so steady state
 *    allocates nothing (bench_event_queue BM_Mailbox* measures the
 *    difference).
 *
 * All kinds share one sequence counter (heap events also share one
 * binary heap of {tick, seq, Event*} records), so their relative FIFO
 * order is exact.
 *
 * Lifetime rule for intrusive events: the Event object must outlive
 * every tick it was ever scheduled for — even if descheduled, the
 * queue still holds a (lazily discarded) reference until that tick
 * pops. In practice events are members of sim components that live
 * for the whole run; the ASan CI job enforces the rule.
 *
 * Semantics of empty()/pending() under lazy deletion: cancelled or
 * descheduled entries never count, even while their stale heap records
 * are still unpopped. Consequently runUntil() over a fully-cancelled
 * queue fires nothing and still advances now() to the target tick.
 */

#ifndef NVDIMMC_COMMON_EVENT_QUEUE_HH
#define NVDIMMC_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace nvdimmc
{

class EventQueue;
class ShardCoordinator;

/**
 * Intrusive event base class. Subclass (or use EventFunctionWrapper)
 * and embed in the owning component; EventQueue never owns it.
 */
class Event
{
  public:
    Event() = default;
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    virtual ~Event() = default;

    /** Called when the event fires; it is descheduled beforehand, so
     *  process() may schedule() it again (the periodic idiom). */
    virtual void process() = 0;

    /** Debug label. */
    virtual const char* name() const { return "event"; }

    bool scheduled() const { return sched_; }

    /** Tick of the pending occurrence; only meaningful if scheduled(). */
    Tick when() const { return when_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    /** Generation stamp: a heap record is live iff its seq matches. */
    std::uint64_t seq_ = 0;
    bool sched_ = false;
};

/**
 * An Event that runs a function object fixed at construction. The
 * gem5 EventFunctionWrapper idiom: one of these per recurring action,
 * owned by the component, rescheduled in place forever.
 */
class EventFunctionWrapper final : public Event
{
  public:
    explicit EventFunctionWrapper(std::function<void()> fn,
                                  const char* name = "wrapped-event")
        : fn_(std::move(fn)), name_(name)
    {
    }

    void process() override { fn_(); }
    const char* name() const override { return name_; }

  private:
    std::function<void()> fn_;
    const char* name_;
};

/**
 * Deterministic discrete-event scheduler keyed on picosecond ticks.
 * Scheduling in the past is a panic: simulated hardware cannot react
 * before its cause.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Captures up to this many bytes ride in the pooled slot without
     *  a heap allocation. */
    static constexpr std::size_t kCallbackInlineBytes = 96;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** @name Intrusive API */
    /** @{ */

    /** Schedule @p ev at absolute tick @p when (>= now()). @p ev must
     *  not already be scheduled (use reschedule() for that). */
    void schedule(Event& ev, Tick when);

    /** Schedule @p ev @p delay ticks from now. */
    void scheduleAfter(Event& ev, Tick delay)
    {
        schedule(ev, now_ + delay);
    }

    /** Move @p ev to @p when, whether or not it is scheduled. */
    void reschedule(Event& ev, Tick when)
    {
        deschedule(ev);
        schedule(ev, when);
    }

    /** O(1) cancel; a no-op if @p ev is not scheduled. */
    void deschedule(Event& ev)
    {
        if (!ev.sched_)
            return;
        ev.sched_ = false;
        --livePending_;
    }

    /** @} */

    /** @name One-shot callback API */
    /** @{ */

    /**
     * Schedule callable @p fn at absolute tick @p when (>= now()).
     * Small captures are stored inline in a pooled event slot.
     * @return an id usable with cancel().
     */
    template <typename F>
    EventId
    schedule(Tick when, F&& fn)
    {
        CallbackEvent& ce = allocCallback();
        emplaceCallable(ce, std::forward<F>(fn));
        schedule(ce, when);
        return ce.id();
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    EventId
    scheduleAfter(Tick delay, F&& fn)
    {
        return schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Cancel a pending one-shot. Cancelling an already-fired or
     * unknown id is a harmless no-op (ids are generation-stamped, so
     * the id space never aliases a later event).
     */
    void cancel(EventId id);

    /** @} */

    /** @name Staged batch API */
    /** @{ */

    /** One element of a staged batch. */
    struct TimedCallback
    {
        Tick when = 0;
        Callback fn;
        /** Assigned by scheduleBatch; callers leave it alone. */
        std::uint64_t seq = 0;
    };

    /**
     * Admit a whole batch of one-shot callbacks in a single call.
     * @p batch must be sorted by tick (stable for ties) with every
     * stamp >= now(); the elements keep exact FIFO order against
     * events scheduled later. The batch cannot be cancelled. The
     * vector's storage is taken over and a recycled empty buffer is
     * swapped back, so a caller delivering every window reuses
     * capacity and never allocates in steady state.
     */
    void scheduleBatch(std::vector<TimedCallback>& batch);

    /** @return true iff @p id is scheduled and not yet fired/cancelled. */
    bool isPending(EventId id) const { return lookupCallback(id) != nullptr; }

    /** @} */

    /** @return true iff no runnable events remain (cancelled-but-
     *  unpopped heap records never count). */
    bool empty() const { return livePending_ == 0; }

    /** Number of pending (non-cancelled) events of either kind. */
    std::size_t pending() const { return livePending_; }

    /**
     * Fire the single earliest event.
     * @return false if the queue was empty.
     *
     * On a coordinated (sharded) host queue this runs one conservative
     * sync window across every shard instead, returning false once no
     * shard has work left.
     */
    bool runOne();

    /**
     * Run every event with tick <= @p when, then advance now() to
     * @p when even if the queue drained (or was fully cancelled)
     * earlier. On a coordinated host queue the whole sharded system
     * advances to @p when in conservative quantum windows.
     */
    void runUntil(Tick when);

    /** runUntil(now() + delta). */
    void runFor(Tick delta) { runUntil(now_ + delta); }

    /**
     * Run until the queue drains or @p max_events fired.
     * @return number of events fired.
     */
    std::uint64_t runAll(std::uint64_t max_events = ~std::uint64_t{0});

    /**
     * Fire every event with tick strictly before @p end, then advance
     * now() to @p end. The shard execution primitive: a window
     * [now, end) is exclusive of its right edge so an event scheduled
     * exactly at a quantum boundary fires in the next window, on
     * whichever shard owns it, after mailbox delivery.
     */
    void runWindow(Tick end);

    /** Earliest pending event tick, or kTickNever if none. */
    Tick peekNextTick();

    /**
     * Attach this queue to a shard coordinator: the public run
     * methods (runOne/runUntil/runFor/runAll) then drive the whole
     * coordinated system so existing workloads and benches work
     * unchanged on a sharded topology. The coordinator itself always
     * executes queues through runWindow(), which never delegates.
     */
    void setCoordinator(ShardCoordinator* coord) { coord_ = coord; }

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

  private:
    /** Pooled slot for one-shot callbacks: SBO storage plus a
     *  generation counter that makes EventIds unambiguous. */
    class CallbackEvent final : public Event
    {
      public:
        CallbackEvent(EventQueue& owner, std::uint32_t slot)
            : owner_(owner), slot_(slot)
        {
        }

        ~CallbackEvent() override
        {
            if (destroy_)
                destroy_(*this);
        }

        void process() override;
        const char* name() const override { return "one-shot"; }

        EventId
        id() const
        {
            return (static_cast<EventId>(slot_) + 1) << 32 | gen_;
        }

        EventQueue& owner_;
        const std::uint32_t slot_;
        std::uint32_t gen_ = 1;
        void (*call_)(CallbackEvent&) = nullptr;
        void (*destroy_)(CallbackEvent&) = nullptr;
        void* heapFn_ = nullptr;
        alignas(std::max_align_t) unsigned char inline_[kCallbackInlineBytes];
    };

    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Event* ev;
    };

    /** Min-heap order: the entry firing later compares "smaller". */
    struct Later
    {
        bool
        operator()(const HeapEntry& a, const HeapEntry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** A heap record is live iff the event is still scheduled for it. */
    static bool
    live(const HeapEntry& e)
    {
        return e.ev->sched_ && e.ev->seq_ == e.seq;
    }

    /** One staged batch mid-consumption. */
    struct Stage
    {
        std::vector<TimedCallback> items;
        std::size_t cursor = 0;
    };

    /** Pop stale records off the heap head. */
    void skipDead();

    /** Pop entries until a live one is found; fire it. */
    bool fireNext();

    /** Index into stages_ of the earliest (when, seq) head, or
     *  stages_.size() if none. */
    std::size_t bestStage() const;

    /** Fire the head of stages_[si]; recycles the batch when drained. */
    void fireStaged(std::size_t si);

    /** Grab a free pooled slot (grows the pool only on first use of a
     *  new depth; steady state never allocates). */
    CallbackEvent& allocCallback();

    /** Destroy the stored callable and return the slot to the pool,
     *  bumping the generation so stale EventIds miss. */
    void recycleCallback(CallbackEvent& ce);

    /** Decode an EventId; null unless it names a still-pending slot. */
    const CallbackEvent* lookupCallback(EventId id) const;
    CallbackEvent*
    lookupCallback(EventId id)
    {
        return const_cast<CallbackEvent*>(
            std::as_const(*this).lookupCallback(id));
    }

    template <typename F>
    static void
    emplaceCallable(CallbackEvent& ce, F&& fn)
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_v<Fn&>,
                      "EventQueue callbacks take no arguments");
        if constexpr (sizeof(Fn) <= kCallbackInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void*>(ce.inline_)) Fn(std::forward<F>(fn));
            ce.call_ = [](CallbackEvent& e) {
                invokeCallable(*std::launder(
                    reinterpret_cast<Fn*>(e.inline_)));
            };
            ce.destroy_ = [](CallbackEvent& e) {
                std::launder(reinterpret_cast<Fn*>(e.inline_))->~Fn();
            };
        } else {
            ce.heapFn_ = new Fn(std::forward<F>(fn));
            ce.call_ = [](CallbackEvent& e) {
                invokeCallable(*static_cast<Fn*>(e.heapFn_));
            };
            ce.destroy_ = [](CallbackEvent& e) {
                delete static_cast<Fn*>(e.heapFn_);
                e.heapFn_ = nullptr;
            };
        }
    }

    /** A null std::function is legal and means "just advance time". */
    template <typename Fn>
    static void
    invokeCallable(Fn& fn)
    {
        if constexpr (std::is_constructible_v<bool, Fn&>) {
            if (fn)
                fn();
        } else {
            fn();
        }
    }

    std::vector<HeapEntry> heap_;
    std::vector<std::unique_ptr<CallbackEvent>> pool_;
    std::vector<std::uint32_t> freeSlots_;
    /** Staged batches being consumed (usually 0 or 1; linear scans
     *  beat a heap at that size). */
    std::vector<Stage> stages_;
    /** Drained batch buffers awaiting reuse. */
    std::vector<std::vector<TimedCallback>> freeStageBufs_;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::size_t livePending_ = 0;
    std::uint64_t fired_ = 0;
    ShardCoordinator* coord_ = nullptr;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_EVENT_QUEUE_HH
