/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, sequence-number) so a
 * whole-system simulation is fully deterministic. Events may be
 * cancelled; cancellation is lazy (the queue entry is skipped when it
 * reaches the head).
 */

#ifndef NVDIMMC_COMMON_EVENT_QUEUE_HH
#define NVDIMMC_COMMON_EVENT_QUEUE_HH

#include <cstddef>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace nvdimmc
{

/**
 * Deterministic discrete-event scheduler keyed on picosecond ticks.
 *
 * Two events at the same tick fire in the order they were scheduled.
 * Scheduling in the past is a panic: simulated hardware cannot react
 * before its cause.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute tick @p when (>= now()).
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    EventId scheduleAfter(Tick delay, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-fired or unknown id
     * is a harmless no-op (the id space never recycles).
     */
    void cancel(EventId id);

    /** @return true iff @p id is scheduled and not yet fired/cancelled. */
    bool isPending(EventId id) const { return pendingIds_.count(id) != 0; }

    /** @return true iff no runnable events remain. */
    bool empty() const { return pendingIds_.empty(); }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return pendingIds_.size(); }

    /**
     * Fire the single earliest event.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run every event with tick <= @p when, then advance now() to
     * @p when even if the queue drained earlier.
     */
    void runUntil(Tick when);

    /** runUntil(now() + delta). */
    void runFor(Tick delta) { runUntil(now_ + delta); }

    /**
     * Run until the queue drains or @p max_events fired.
     * @return number of events fired.
     */
    std::uint64_t runAll(std::uint64_t max_events = ~std::uint64_t{0});

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Pop entries until a live one is found; fire it. */
    bool fireNext();

    /** Drop cancelled entries from the head of the queue. */
    void skipDead();

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    std::unordered_set<EventId> pendingIds_;
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t fired_ = 0;
};

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_EVENT_QUEUE_HH
