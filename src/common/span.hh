/**
 * @file
 * End-to-end causal request spans with per-phase latency attribution.
 *
 * A span follows one host-visible driver operation (a 4 KB read or
 * write segment) across every component it touches: CPU thread ->
 * nvdc driver -> CP page -> refresh-window wait -> DMA -> FTL ->
 * Z-NAND. The driver opens a span when the op issues, every layer
 * stamps typed phase transitions as the op moves through it, and the
 * driver closes the span when the op's completion callback fires.
 *
 * Attribution is by *cursor tiling*: each span keeps a cursor that
 * starts at the open tick; phase(id, p, at) attributes [cursor, at)
 * to phase p and advances the cursor to at. Phase times therefore
 * tile the span exactly — their sum equals the end-to-end latency by
 * construction — and anything between the last mark and close() lands
 * in the Unattributed pseudo-phase, which the end-of-run auditor
 * flags when it exceeds one tick. The auditor also checks that every
 * opened span closed and that no span waited longer than the
 * configured window-wait cap (tREFI x detector-miss budget), turning
 * silent accounting bugs into test failures.
 *
 * Span IDs are deterministic: (channel << 48) | per-channel sequence,
 * allocated at host-op issue on the host shard, whose event order is
 * identical for every executor count (the PR 4 byte-identity
 * guarantee). Closes also run on the host shard, so aggregation order
 * — and thus every exported table/JSON byte — is identical across
 * --threads=N. Cross-shard phase marks on one span are causally
 * ordered by the conservative barrier quantum, so the mutex-guarded
 * per-span state sees them in a deterministic order too.
 *
 * Like the tracer, the layer is zero-overhead-off: open() pays one
 * predicted-not-taken branch and returns id 0, and every other call
 * on id 0 is an inline no-op. Simulated behaviour is identical with
 * spans on vs. off (the layer only observes; span_test pins this).
 *
 * Exports: (1) per-op-class per-phase Histograms registered into a
 * StatRegistry (registerStats), (2) a human-readable breakdown table
 * and an exact-integer JSON block (writeBreakdownTable/Json — the
 * --latency-breakdown bench flag), (3) Chrome trace flow/async
 * events at close() when the tracer is also on, so one miss shows as
 * an arrow-connected lane across the span.driver / span.nvmc /
 * span.ftl / span.znand tracks in Perfetto.
 */

#ifndef NVDIMMC_COMMON_SPAN_HH
#define NVDIMMC_COMMON_SPAN_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace nvdimmc
{

class StatRegistry;

namespace span
{

/** Span handle; 0 = no span (layer off or caller untracked). */
using Id = std::uint64_t;

/**
 * Request class a span is accounted under. A read opens as Hit and is
 * upgraded (classify) when the driver discovers it faults; upgrades
 * are monotone Hit -> CleanMiss -> DirtyMiss so a racing revalidate
 * can never downgrade a span. Writes open as Write and stay there —
 * the cache-state split (hit/miss) matters less than the op
 * direction for the paper's Fig 8 classes.
 */
enum class OpClass : std::uint8_t
{
    Hit = 0,       ///< Read serviced from the DRAM cache.
    CleanMiss = 1, ///< Read fault, victim clean (cachefill only).
    DirtyMiss = 2, ///< Read fault, dirty victim (writeback + fill).
    Write = 3,     ///< Host write (any cache state).
};

constexpr std::uint32_t kClassCount = 4;

/** Typed phase a slice of a span's latency is attributed to. */
enum class Phase : std::uint8_t
{
    // Driver / CPU side.
    CacheLookup = 0, ///< PTE walk + hit-path entry overhead.
    LockWait,        ///< Waiting on the per-channel driver mutex.
    LockHold,        ///< Critical-section hold (revalidate window).
    FaultEntry,      ///< Fault-path entry overhead (PTE miss trap).
    FillWait,        ///< Parked behind another op's fill/writeback.
    ZeroFill,        ///< Zero-fill of a never-written page.
    Clflush,         ///< Cache-line flushes (slot lines, CP line).
    Metadata,        ///< Slot metadata write to the reserved area.
    Memcpy,          ///< Host memcpy into/out of the DRAM slot.
    DriverPost,      ///< Driver completion epilogue.
    // CP protocol.
    CpQueue,   ///< Waiting for a free CP command index.
    CpWrite,   ///< Writing + flushing the CP command line.
    CpAck,     ///< Polling for the firmware's ack.
    // NVMC side.
    WindowWait, ///< Waiting for a refresh DMA window.
    FwDecode,   ///< Firmware command decode.
    DmaBurst,   ///< DMA data movement inside windows.
    FwPost,     ///< Firmware post-op overhead before the ack.
    // Backend.
    FtlMap,      ///< FTL lookup/allocate (incl. unmapped zero-read).
    NandRead,    ///< Z-NAND tR + channel transfer.
    NandProgram, ///< Z-NAND tPROG + channel transfer.
    // Transport link (CXL.mem hybrid backend).
    LinkWait, ///< Waiting for an outstanding-request credit.
    LinkReq,  ///< Request flit crossing the link to the device.
    DevCopy,  ///< Device-side copy between NAND buffer and DRAM slot.
    LinkResp, ///< Response flit crossing the link back to the host.
    // Accounting residue.
    Unattributed, ///< Close-time gap past the last mark (audited).
};

constexpr std::uint32_t kPhaseCount =
    static_cast<std::uint32_t>(Phase::Unattributed) + 1;

const char* toString(OpClass cls);
const char* toString(Phase p);

namespace detail
{

extern bool gEnabled;

Id openImpl(std::uint32_t channel, Tick now, OpClass cls);
void classifyImpl(Id id, OpClass cls);
void phaseImpl(Id id, Phase p, Tick at);
void closeImpl(Id id, Tick now);

} // namespace detail

/** Is the span layer collecting? The one branch paid at op issue. */
inline bool enabled() { return detail::gEnabled; }

/** Start collecting (idempotent; aggregates accumulate until
 *  reset()). Call before building the system under test. */
void enable();

/** Stop collecting. Open spans and aggregates are kept so a
 *  subsequent audit()/export still sees the finished run. */
void disable();

/** Drop all spans, aggregates and audit counters (fresh run). */
void reset();

/**
 * Open a span for a host op issued on @p channel at tick @p now.
 * Returns 0 when the layer is off — every downstream call on id 0 is
 * a no-op, so callers thread the id unconditionally.
 */
inline Id
open(std::uint32_t channel, Tick now, OpClass cls)
{
    return enabled() ? detail::openImpl(channel, now, cls) : 0;
}

/** Upgrade the span's class (monotone; downgrades are ignored). */
inline void
classify(Id id, OpClass cls)
{
    if (id != 0)
        detail::classifyImpl(id, cls);
}

/** Attribute [cursor, @p at) to @p p and advance the cursor. */
inline void
phase(Id id, Phase p, Tick at)
{
    if (id != 0)
        detail::phaseImpl(id, p, at);
}

/** Close the span at tick @p now; leftover time past the cursor is
 *  recorded as Unattributed and audited. */
inline void
close(Id id, Tick now)
{
    if (id != 0)
        detail::closeImpl(id, now);
}

/**
 * Per-span window-wait budget: closes whose WindowWait total exceeds
 * the cap count as audit violations. Benches set it to
 * tREFI x detector-miss budget; 0 (default) disables the check.
 */
void setWindowWaitCap(Tick cap);
Tick windowWaitCap();

/** End-of-run accounting audit. */
struct AuditResult
{
    std::uint64_t opened = 0;
    std::uint64_t closed = 0;
    std::uint64_t leaked = 0; ///< Still open at audit time.
    /** Spans whose Unattributed residue exceeded one tick. */
    std::uint64_t unattributedSpans = 0;
    Tick maxUnattributed = 0;
    /** phase()/close() marks that ran backwards in span time. */
    std::uint64_t orderViolations = 0;
    /** Spans whose WindowWait total exceeded the configured cap. */
    std::uint64_t windowWaitViolations = 0;

    bool ok() const
    {
        return leaked == 0 && unattributedSpans == 0 &&
               orderViolations == 0 && windowWaitViolations == 0;
    }
};

AuditResult audit();

/** Spans opened / closed so far (for tests). */
std::uint64_t openedCount();
std::uint64_t closedCount();

/**
 * Drain the *interval-reset* per-class end-to-end histograms: copy
 * the e2e latency distribution of every span closed since the last
 * drain (or reset()) into @p hist / @p sumPs, then clear the window.
 * The telemetry Collector calls this once per sampling interval —
 * the windowed-percentile (SLO) substrate. Closes run on the host
 * shard in deterministic order, so consecutive drains at fixed
 * sample ticks see identical windows for every executor count.
 */
void drainWindow(std::array<Histogram, kClassCount>& hist,
                 std::array<std::uint64_t, kClassCount>& sumPs);

/**
 * Register the per-class end-to-end and per-phase histograms under
 * @p prefix (e.g. "span.hit.e2e.p50", "span.hit.cp_ack.count").
 * Only ever register into a *local* registry: the system StatRegistry
 * feeds the golden fig8 snapshot, which must not change.
 */
void registerStats(StatRegistry& reg, const std::string& prefix);

/** Human-readable per-class x per-phase breakdown table. */
void writeBreakdownTable(std::ostream& os, const std::string& title);

/**
 * One JSON object: {"audit": {...}, "classes": {...}} with exact
 * integer fields only (counts and picosecond sums/percentiles), so
 * two deterministic runs — any executor count — produce byte-equal
 * output. No trailing newline.
 */
void writeBreakdownJson(std::ostream& os);

} // namespace span
} // namespace nvdimmc

#endif // NVDIMMC_COMMON_SPAN_HH
