#include "common/shard.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace nvdimmc
{

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/** Spin briefly, then fall back to yielding: the sharded kernel must
 *  stay live when executors outnumber cores (CI runners, laptops). */
template <typename Pred>
void
spinWait(Pred&& ready)
{
    for (int i = 0; i < 1024; ++i) {
        if (ready())
            return;
        cpuRelax();
    }
    while (!ready())
        std::this_thread::yield();
}

} // namespace

ShardCoordinator::ShardCoordinator(EventQueue& host,
                                   std::vector<EventQueue*> shards,
                                   Tick quantum, unsigned executors)
    : host_(host),
      shards_(std::move(shards)),
      quantum_(quantum),
      executors_(std::max(
          1u, std::min(executors,
                       static_cast<unsigned>(
                           std::max<std::size_t>(1, shards_.size()))))),
      toShard_(shards_.size()),
      toHost_(shards_.size()),
      errors_(executors_)
{
    NVDC_ASSERT(!shards_.empty(), "sharded system needs >= 1 shard");
    NVDC_ASSERT(quantum_ > 0, "sync quantum must be positive");
    for (EventQueue* s : shards_)
        NVDC_ASSERT(s && s != &host_, "bad shard queue");
}

ShardCoordinator::~ShardCoordinator()
{
    if (!workers_.empty()) {
        quit_.store(true, std::memory_order_release);
        for (auto& w : workers_)
            w.join();
    }
}

std::uint64_t
ShardCoordinator::totalEventsFired() const
{
    std::uint64_t n = host_.eventsFired();
    for (const EventQueue* s : shards_)
        n += s->eventsFired();
    return n;
}

void
ShardCoordinator::postToShard(std::uint32_t shard, Tick when, Fn fn)
{
    NVDC_ASSERT(shard < shardCount(), "postToShard: bad shard index");
    // The conservative checker: while a round is in flight the current
    // window ends at windowEnd_, and a delivery below it could land in
    // the destination shard's past. A trip here means the sync quantum
    // exceeds the cross-shard interaction latency.
    NVDC_ASSERT(!inRound_ ||
                    when >= windowEnd_.load(std::memory_order_relaxed),
                "cross-shard message inside the sync window: quantum "
                "exceeds the conservative lookahead bound");
    toShard_[shard].msgs.push_back(Msg{when, std::move(fn)});
}

void
ShardCoordinator::postToHost(std::uint32_t shard, Tick when, Fn fn)
{
    NVDC_ASSERT(shard < shardCount(), "postToHost: bad shard index");
    toHost_[shard].msgs.push_back(Msg{when, std::move(fn)});
}

void
ShardCoordinator::deliverToShards()
{
    for (std::uint32_t s = 0; s < shardCount(); ++s) {
        auto& mb = toShard_[s];
        for (Msg& m : mb.msgs)
            shards_[s]->schedule(m.when, std::move(m.fn));
        mb.msgs.clear();
    }
}

Tick
ShardCoordinator::earliestWork()
{
    Tick t = host_.peekNextTick();
    for (EventQueue* s : shards_)
        t = std::min(t, s->peekNextTick());
    return t;
}

void
ShardCoordinator::advanceAll(Tick t)
{
    for (EventQueue* s : shards_)
        s->runWindow(t);
    host_.runWindow(t);
}

void
ShardCoordinator::startWorkers()
{
    slots_.reserve(executors_ - 1);
    workers_.reserve(executors_ - 1);
    for (unsigned e = 1; e < executors_; ++e)
        slots_.push_back(std::make_unique<WorkerSlot>());
    for (unsigned e = 1; e < executors_; ++e)
        workers_.emplace_back([this, e] { workerLoop(e); });
}

void
ShardCoordinator::runShardRange(unsigned executor, Tick end)
{
    try {
        for (std::uint32_t s = executor; s < shardCount();
             s += executors_)
            shards_[s]->runWindow(end);
    } catch (...) {
        errors_[executor] = std::current_exception();
    }
}

void
ShardCoordinator::workerLoop(unsigned executor)
{
    WorkerSlot& slot = *slots_[executor - 1];
    std::uint64_t last = 0;
    for (;;) {
        spinWait([&] {
            return slot.go.load(std::memory_order_acquire) != last ||
                   quit_.load(std::memory_order_acquire);
        });
        std::uint64_t round = slot.go.load(std::memory_order_acquire);
        if (round == last)
            return; // quit_ set with no new round pending.
        last = round;
        runShardRange(executor,
                      windowEnd_.load(std::memory_order_relaxed));
        slot.done.store(round, std::memory_order_release);
    }
}

void
ShardCoordinator::rethrowShardError()
{
    for (auto& err : errors_) {
        if (err) {
            std::exception_ptr e = err;
            for (auto& other : errors_)
                other = nullptr;
            inRound_ = false;
            std::rethrow_exception(e);
        }
    }
}

void
ShardCoordinator::round(Tick end)
{
    inRound_ = true;
    ++windows_;
    windowEnd_.store(end, std::memory_order_relaxed);

    const std::uint32_t n = shardCount();
    if (executors_ > 1 && workers_.empty())
        startWorkers();

    if (executors_ == 1) {
        // The reference interleaving: every parallel schedule must be
        // indistinguishable from this one.
        runShardRange(0, end);
    } else {
        ++roundId_;
        for (auto& slot : slots_)
            slot->go.store(roundId_, std::memory_order_release);
        runShardRange(0, end);
        for (auto& slot : slots_)
            spinWait([&] {
                return slot->done.load(std::memory_order_acquire) ==
                       roundId_;
            });
    }
    rethrowShardError();

    // Deterministic merge: concatenating the per-shard mailboxes in
    // shard order and stable-sorting by tick yields the canonical
    // (tick, shard, post-order) sequence regardless of which worker
    // ran which shard.
    merge_.clear();
    for (std::uint32_t s = 0; s < n; ++s) {
        auto& mb = toHost_[s];
        for (Msg& m : mb.msgs)
            merge_.push_back(std::move(m));
        mb.msgs.clear();
    }
    std::stable_sort(merge_.begin(), merge_.end(),
                     [](const Msg& a, const Msg& b) {
                         return a.when < b.when;
                     });
    for (Msg& m : merge_)
        host_.schedule(m.when, std::move(m.fn));
    merge_.clear();

    host_.runWindow(end);
    inRound_ = false;
}

void
ShardCoordinator::runUntil(Tick target)
{
    NVDC_ASSERT(!inRound_, "re-entrant run on a sharded system");
    NVDC_ASSERT(target >= host_.now(), "runUntil into the past");
    for (;;) {
        deliverToShards();
        if (host_.now() >= target)
            break;
        Tick next = earliestWork();
        if (next >= target) {
            // Nothing runnable before the target: one idle jump.
            advanceAll(target);
            break;
        }
        // The window may start later than now (idle skip) but never
        // spans more than quantum_ past the earliest event, so every
        // in-window stamp keeps its lookahead.
        round(std::min(next + quantum_, target));
    }
}

bool
ShardCoordinator::runOne()
{
    NVDC_ASSERT(!inRound_, "re-entrant run on a sharded system");
    deliverToShards();
    Tick next = earliestWork();
    if (next == kTickNever)
        return false;
    // A minimal window [next, next+1): shrinking a window below the
    // quantum is always conservative, and drain loops then leave the
    // clocks just past the last event — like the serial kernel — so
    // end-of-run time-normalized stats are quantum-independent.
    round(next + 1);
    return true;
}

std::uint64_t
ShardCoordinator::runAll(std::uint64_t max_events)
{
    std::uint64_t start = totalEventsFired();
    while (totalEventsFired() - start < max_events && runOne()) {
    }
    return totalEventsFired() - start;
}

} // namespace nvdimmc
