#include "common/shard.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace nvdimmc
{

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/** Spin briefly, then fall back to yielding: the sharded kernel must
 *  stay live when executors outnumber cores (CI runners, laptops). */
template <typename Pred>
void
spinWait(Pred&& ready)
{
    for (int i = 0; i < 1024; ++i) {
        if (ready())
            return;
        cpuRelax();
    }
    while (!ready())
        std::this_thread::yield();
}

/** t + dt without wrapping past kTickNever. */
inline Tick
satAdd(Tick t, Tick dt)
{
    return dt >= kTickNever - t ? kTickNever : t + dt;
}

} // namespace

ShardCoordinator::ShardCoordinator(EventQueue& host,
                                   std::vector<EventQueue*> shards,
                                   Tick quantum, unsigned executors)
    : host_(host),
      shards_(std::move(shards)),
      quantum_(quantum),
      executors_(std::max(
          1u, std::min(executors,
                       static_cast<unsigned>(
                           std::max<std::size_t>(1, shards_.size()))))),
      outbox_(shards_.size()),
      pending_(shards_.size()),
      links_(shards_.size()),
      defaultLinks_(shards_.size(), true),
      errors_(executors_)
{
    NVDC_ASSERT(!shards_.empty(), "sharded system needs >= 1 shard");
    NVDC_ASSERT(quantum_ > 0, "sync quantum must be positive");
    for (EventQueue* s : shards_)
        NVDC_ASSERT(s && s != &host_, "bad shard queue");
    for (auto& ls : links_)
        ls.push_back(Link{kToHost, quantum_, {}});
}

ShardCoordinator::~ShardCoordinator()
{
    if (!workers_.empty()) {
        quit_.store(true, std::memory_order_release);
        for (auto& w : workers_)
            w.join();
    }
}

std::uint64_t
ShardCoordinator::totalEventsFired() const
{
    std::uint64_t n = host_.eventsFired();
    for (const EventQueue* s : shards_)
        n += s->eventsFired();
    return n;
}

void
ShardCoordinator::setLink(std::uint32_t src, std::int32_t dest,
                          Tick latency, Promise promise)
{
    NVDC_ASSERT(src < shardCount(), "setLink: bad source shard");
    NVDC_ASSERT(dest == kToHost ||
                    (dest >= 0 &&
                     static_cast<std::uint32_t>(dest) < shardCount() &&
                     static_cast<std::uint32_t>(dest) != src),
                "setLink: bad destination");
    NVDC_ASSERT(latency > 0, "link latency must be positive (it is "
                             "the cross-shard lookahead)");
    auto& ls = links_[src];
    if (defaultLinks_[src]) {
        // The first explicit link supersedes the default quantum link:
        // a fully-described shard only constrains the window through
        // the links it really has.
        ls.clear();
        defaultLinks_[src] = false;
    }
    for (Link& l : ls) {
        if (l.dest == dest) {
            l.latency = latency;
            l.promise = std::move(promise);
            return;
        }
    }
    ls.push_back(Link{dest, latency, std::move(promise)});
}

void
ShardCoordinator::postToShard(std::uint32_t shard, Tick when, Fn fn)
{
    NVDC_ASSERT(shard < shardCount(), "postToShard: bad shard index");
    // The conservative checker: while a round is in flight the current
    // window ends at windowEnd_, and a delivery below it could land in
    // the destination shard's past. A trip here means the sync quantum
    // (or an adaptive-lookahead promise) exceeds the cross-shard
    // interaction latency.
    NVDC_ASSERT(!inRound_ ||
                    when >= windowEnd_.load(std::memory_order_relaxed),
                "cross-shard message inside the sync window: quantum "
                "exceeds the conservative lookahead bound");
    pending_[shard].push_back(
        EventQueue::TimedCallback{when, std::move(fn), 0});
}

void
ShardCoordinator::postToHost(std::uint32_t shard, Tick when, Fn fn)
{
    NVDC_ASSERT(shard < shardCount(), "postToHost: bad shard index");
    NVDC_ASSERT(!inRound_ ||
                    when >= windowEnd_.load(std::memory_order_relaxed),
                "shard-to-host message inside the sync window: an "
                "output promise or link latency was broken");
    outbox_[shard].msgs.push_back(Msg{when, kToHost, std::move(fn)});
}

void
ShardCoordinator::postToPeer(std::uint32_t from, std::uint32_t to,
                             Tick when, Fn fn)
{
    NVDC_ASSERT(from < shardCount() && to < shardCount() && from != to,
                "postToPeer: bad shard pair");
    NVDC_ASSERT(!inRound_ ||
                    when >= windowEnd_.load(std::memory_order_relaxed),
                "peer-to-peer message inside the sync window: an "
                "output promise or link latency was broken");
    outbox_[from].msgs.push_back(
        Msg{when, static_cast<std::int32_t>(to), std::move(fn)});
}

void
ShardCoordinator::deliverToShards()
{
    for (std::uint32_t s = 0; s < shardCount(); ++s) {
        auto& box = pending_[s];
        if (box.empty())
            continue;
        // Batch delivery: one sort + one staged-batch admission per
        // shard per round instead of a heap push per message. The
        // stable sort keeps same-tick messages in post order, so the
        // sequence is exactly what per-message scheduling produced.
        std::stable_sort(box.begin(), box.end(),
                         [](const EventQueue::TimedCallback& a,
                            const EventQueue::TimedCallback& b) {
                             return a.when < b.when;
                         });
        shards_[s]->scheduleBatch(box);
    }
}

Tick
ShardCoordinator::earliestWork()
{
    Tick t = host_.peekNextTick();
    for (EventQueue* s : shards_)
        t = std::min(t, s->peekNextTick());
    return t;
}

Tick
ShardCoordinator::windowBound()
{
    Tick e = kTickNever;
    // The host's own outputs are bounded by the quantum its ports were
    // built around.
    Tick ph = host_.peekNextTick();
    if (ph != kTickNever)
        e = std::min(e, satAdd(ph, quantum_));
    for (std::uint32_t s = 0; s < shardCount(); ++s) {
        Tick p = shards_[s]->peekNextTick();
        if (p == kTickNever)
            continue; // No event to fire -> nothing can be emitted.
        for (const Link& l : links_[s]) {
            Tick b = satAdd(p, l.latency);
            if (l.promise)
                b = std::max(b, l.promise());
            e = std::min(e, b);
        }
    }
    return e;
}

void
ShardCoordinator::advanceAll(Tick t)
{
    for (EventQueue* s : shards_)
        s->runWindow(t);
    host_.runWindow(t);
}

void
ShardCoordinator::startWorkers()
{
    slots_.reserve(executors_ - 1);
    workers_.reserve(executors_ - 1);
    for (unsigned e = 1; e < executors_; ++e)
        slots_.push_back(std::make_unique<WorkerSlot>());
    for (unsigned e = 1; e < executors_; ++e)
        workers_.emplace_back([this, e] { workerLoop(e); });
}

void
ShardCoordinator::runShardRange(unsigned executor, Tick end)
{
    try {
        for (std::uint32_t s = executor; s < shardCount();
             s += executors_)
            shards_[s]->runWindow(end);
    } catch (...) {
        errors_[executor] = std::current_exception();
    }
}

void
ShardCoordinator::workerLoop(unsigned executor)
{
    WorkerSlot& slot = *slots_[executor - 1];
    std::uint64_t last = 0;
    for (;;) {
        spinWait([&] {
            return slot.go.load(std::memory_order_acquire) != last ||
                   quit_.load(std::memory_order_acquire);
        });
        std::uint64_t round = slot.go.load(std::memory_order_acquire);
        if (round == last)
            return; // quit_ set with no new round pending.
        last = round;
        runShardRange(executor,
                      windowEnd_.load(std::memory_order_relaxed));
        slot.done.store(round, std::memory_order_release);
    }
}

void
ShardCoordinator::rethrowShardError()
{
    for (auto& err : errors_) {
        if (err) {
            std::exception_ptr e = err;
            for (auto& other : errors_)
                other = nullptr;
            inRound_ = false;
            std::rethrow_exception(e);
        }
    }
}

void
ShardCoordinator::round(Tick end)
{
    inRound_ = true;
    ++windows_;
    windowEnd_.store(end, std::memory_order_relaxed);

    const std::uint32_t n = shardCount();
    if (executors_ > 1 && workers_.empty())
        startWorkers();

    if (executors_ == 1) {
        // The reference interleaving: every parallel schedule must be
        // indistinguishable from this one.
        runShardRange(0, end);
    } else {
        ++roundId_;
        for (auto& slot : slots_)
            slot->go.store(roundId_, std::memory_order_release);
        runShardRange(0, end);
        for (auto& slot : slots_)
            spinWait([&] {
                return slot->done.load(std::memory_order_acquire) ==
                       roundId_;
            });
    }
    rethrowShardError();

    // Route the outboxes in shard order. Host-bound messages merge
    // deterministically: concatenating in shard order and stable-
    // sorting by tick yields the canonical (tick, shard, post-order)
    // sequence regardless of which worker ran which shard. Peer-bound
    // messages append to the destination's pending box, delivered at
    // the next round's top in the same canonical order.
    merge_.clear();
    for (std::uint32_t s = 0; s < n; ++s) {
        auto& box = outbox_[s];
        for (Msg& m : box.msgs) {
            if (m.dest == kToHost) {
                merge_.push_back(EventQueue::TimedCallback{
                    m.when, std::move(m.fn), 0});
            } else {
                pending_[static_cast<std::uint32_t>(m.dest)].push_back(
                    EventQueue::TimedCallback{m.when, std::move(m.fn),
                                              0});
            }
        }
        box.msgs.clear();
    }
    std::stable_sort(merge_.begin(), merge_.end(),
                     [](const EventQueue::TimedCallback& a,
                        const EventQueue::TimedCallback& b) {
                         return a.when < b.when;
                     });
    host_.scheduleBatch(merge_); // Consumes; hands back empty scratch.

    host_.runWindow(end);
    inRound_ = false;
}

void
ShardCoordinator::runUntil(Tick target)
{
    NVDC_ASSERT(!inRound_, "re-entrant run on a sharded system");
    NVDC_ASSERT(target >= host_.now(), "runUntil into the past");
    for (;;) {
        deliverToShards();
        if (host_.now() >= target)
            break;
        Tick next = earliestWork();
        if (next >= target) {
            // Nothing runnable before the target: one idle jump.
            advanceAll(target);
            break;
        }
        // The window may start later than now (idle skip) but never
        // extends past any link's conservative output bound, so every
        // in-window stamp keeps its lookahead. When every link is
        // provably quiet (promises say nothing is in flight) the
        // round runs straight to the target — the decoupled fast
        // path.
        Tick bound = windowBound();
        NVDC_ASSERT(bound > next, "window bound regressed below the "
                                  "earliest runnable event");
        round(std::min(bound, target));
    }
}

bool
ShardCoordinator::runOne()
{
    NVDC_ASSERT(!inRound_, "re-entrant run on a sharded system");
    deliverToShards();
    Tick next = earliestWork();
    if (next == kTickNever)
        return false;
    // A minimal window [next, next+1): shrinking a window below the
    // quantum is always conservative, and drain loops then leave the
    // clocks just past the last event — like the serial kernel — so
    // end-of-run time-normalized stats are quantum-independent.
    round(next + 1);
    return true;
}

std::uint64_t
ShardCoordinator::runAll(std::uint64_t max_events)
{
    std::uint64_t start = totalEventsFired();
    while (totalEventsFired() - start < max_events && runOne()) {
    }
    return totalEventsFired() - start;
}

} // namespace nvdimmc
