/**
 * @file
 * Fundamental simulator-wide types and unit helpers.
 *
 * All simulated time is kept in integer picoseconds (Tick) so that DDR4
 * clock periods (e.g. 1250 ps at DDR4-1600) are exactly representable
 * and event ordering is fully deterministic.
 */

#ifndef NVDIMMC_COMMON_TYPES_HH
#define NVDIMMC_COMMON_TYPES_HH

#include <cstdint>

namespace nvdimmc
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Physical or device address in bytes. */
using Addr = std::uint64_t;

/** A monotonically increasing event sequence number. */
using EventId = std::uint64_t;

/** Sentinel for "no tick" / "not scheduled". */
constexpr Tick kTickNever = ~Tick{0};

/** @name Time unit conversions (to picoseconds). */
/** @{ */
constexpr Tick kPs = 1;
constexpr Tick kNs = 1000 * kPs;
constexpr Tick kUs = 1000 * kNs;
constexpr Tick kMs = 1000 * kUs;
constexpr Tick kSec = 1000 * kMs;
/** @} */

/** Convert picoseconds to (double) nanoseconds / microseconds / seconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kNs);
}

constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kUs);
}

constexpr double
ticksToSec(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert a floating-point duration to ticks (rounding to nearest). */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kNs) + 0.5);
}

constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kUs) + 0.5);
}

/** @name Capacity unit helpers. */
/** @{ */
constexpr std::uint64_t kKiB = 1ull << 10;
constexpr std::uint64_t kMiB = 1ull << 20;
constexpr std::uint64_t kGiB = 1ull << 30;
/** @} */

/**
 * Bandwidth in MB/s (decimal megabytes, as the paper reports) given a
 * byte count moved over a tick interval.
 */
constexpr double
bytesPerTickToMBps(std::uint64_t bytes, Tick interval)
{
    if (interval == 0)
        return 0.0;
    return (static_cast<double>(bytes) / 1e6) / ticksToSec(interval);
}

/** Operations per second expressed in thousands (KIOPS). */
constexpr double
opsPerTickToKiops(std::uint64_t ops, Tick interval)
{
    if (interval == 0)
        return 0.0;
    return (static_cast<double>(ops) / 1e3) / ticksToSec(interval);
}

} // namespace nvdimmc

#endif // NVDIMMC_COMMON_TYPES_HH
