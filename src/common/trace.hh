/**
 * @file
 * Zero-overhead-when-off event tracer emitting Chrome trace_event
 * JSON (loadable in Perfetto / chrome://tracing).
 *
 * The tracer is a process-wide capture facility for *one* simulated
 * system at a time: components record duration events (a refresh
 * window, a DMA burst, a CP transaction), instant events (a REF edge,
 * a detector false-fire, a bus conflict) and counter series (queue
 * occupancy, bytes per window) onto named tracks. Every record call
 * is guarded by a single global-bool test, so with tracing disabled
 * the instrumentation costs one predicted-not-taken branch — the
 * simulated behaviour is identical either way (the tracer only
 * observes; determinism_test asserts byte-identical stats with
 * tracing on vs. off).
 *
 * Time: simulation ticks are picoseconds; the Chrome format's `ts` /
 * `dur` fields are microseconds, so values are emitted as fractional
 * microseconds with picosecond resolution.
 *
 * Capture is bounded (kDefaultMaxEvents unless start() is given a
 * cap); events past the cap are counted and the drop total is
 * reported at stop() so a truncated trace is never mistaken for a
 * complete one. Record calls are thread-safe
 * (shard workers of a parallel-in-time run trace concurrently under
 * one mutex) and stop() canonicalizes track numbering and record
 * order, so a deterministic simulation writes a byte-identical trace
 * file regardless of executor count. The capture is still per-process:
 * enable it for one simulated system at a time (the parallel sweep
 * runner never enables it).
 */

#ifndef NVDIMMC_COMMON_TRACE_HH
#define NVDIMMC_COMMON_TRACE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace nvdimmc::trace
{

namespace detail
{

extern bool gEnabled;

void recordDuration(const char* track, const char* name, Tick start,
                    Tick end);
void recordInstant(const char* track, const char* name, Tick at);
void recordCounter(const char* track, const char* series, Tick at,
                   double value);
void recordAsync(const char* track, const char* name, Tick at,
                 std::uint64_t id, bool begin);
void recordFlow(const char* track, const char* name, Tick at,
                std::uint64_t id, int step);

} // namespace detail

/** Default events-retained cap; later records are dropped+counted.
 *  Override per capture via start(path, maxEvents). */
constexpr std::uint64_t kDefaultMaxEvents = 1u << 22;

/** Is a capture active? The one branch paid on every record call. */
inline bool enabled() { return detail::gEnabled; }

/**
 * Begin capturing; events buffer in memory and are written to
 * @p path as Chrome trace JSON by stop(). Starting while already
 * active restarts the capture (prior buffered events are discarded).
 * @param maxEvents capture cap; records past it are dropped+counted
 *        (long multi-channel runs overflow the default).
 */
void start(std::string path,
           std::uint64_t maxEvents = kDefaultMaxEvents);

/**
 * Finalize: write the JSON file and disable capture.
 * @return true if the file was written successfully (false if no
 *         capture was active or the file could not be written).
 */
bool stop();

/** Events currently buffered (for tests). */
std::uint64_t eventCount();

/** Events dropped because the capture hit its cap. */
std::uint64_t droppedCount();

/** The active capture's event cap (0 if no capture). */
std::uint64_t maxEvents();

/** A completed span [start, end) on @p track. */
inline void
duration(const char* track, const char* name, Tick start, Tick end)
{
    if (enabled())
        detail::recordDuration(track, name, start, end);
}

/** A point event on @p track at tick @p at. */
inline void
instant(const char* track, const char* name, Tick at)
{
    if (enabled())
        detail::recordInstant(track, name, at);
}

/** One sample of counter series "track.series" at tick @p at. */
inline void
counter(const char* track, const char* series, Tick at, double value)
{
    if (enabled())
        detail::recordCounter(track, series, at, value);
}

/** @name Async (overlapping) events, paired by @p id.
 * Rendered by Perfetto as nestable async lanes (ph "b"/"e", category
 * "span"): unlike duration events they may overlap on one track, so
 * concurrent request spans each get their own lane. */
/** @{ */
inline void
asyncBegin(const char* track, const char* name, Tick at,
           std::uint64_t id)
{
    if (enabled())
        detail::recordAsync(track, name, at, id, true);
}

inline void
asyncEnd(const char* track, const char* name, Tick at,
         std::uint64_t id)
{
    if (enabled())
        detail::recordAsync(track, name, at, id, false);
}
/** @} */

/** @name Flow events (ph "s"/"t"/"f"), paired by @p id.
 * A flow binds to the enclosing slice on its track at @p at and draws
 * Perfetto arrows start -> steps -> end, stitching one request's
 * slices across tracks into a single causal lane. */
/** @{ */
inline void
flowStart(const char* track, const char* name, Tick at,
          std::uint64_t id)
{
    if (enabled())
        detail::recordFlow(track, name, at, id, 0);
}

inline void
flowStep(const char* track, const char* name, Tick at,
         std::uint64_t id)
{
    if (enabled())
        detail::recordFlow(track, name, at, id, 1);
}

inline void
flowEnd(const char* track, const char* name, Tick at,
        std::uint64_t id)
{
    if (enabled())
        detail::recordFlow(track, name, at, id, 2);
}
/** @} */

} // namespace nvdimmc::trace

#endif // NVDIMMC_COMMON_TRACE_HH
