/**
 * @file
 * The CXL.mem hybrid transport: a CMM-H-style device (DRAM cache +
 * NAND behind one CXL link) in place of the NVDIMM-C module.
 *
 * The decisive difference from the CP-over-DDR4 protocol is that the
 * device controller owns its DRAM: a miss fill or victim writeback is
 * a single request flit across the link, executed immediately by the
 * device-side copy engine, answered by a response flit — no command
 * page, no ack polling, and above all no waiting for a refresh window
 * to open a DMA slot. What the host pays instead is the link itself:
 * an outstanding-request credit (the device's MSHR-equivalent pool),
 * one request crossing, the device-side copy, and one response
 * crossing — attributed to the LinkWait / LinkReq / DevCopy / LinkResp
 * span phases so the fig8-style breakdowns show window_wait collapse
 * to zero with link time appearing in its place.
 *
 * Durability matches the NVDIMM-C firmware's ack-early contract: a
 * writeback response means the victim's bytes sit in the device's
 * PLP-backed capture buffer; the NAND program continues behind it, and
 * powerFailFlush() commits whatever the metadata region marks dirty
 * (minus slots whose capture is already programmed-or-buffered, same
 * rule the firmware's dump applies).
 *
 * Timing defaults derive from published CXL-NVM figures: ~110 ns per
 * link crossing (a ~390 ns CMM-H load round trip minus the device
 * DRAM access itself), a 64/128-deep read/write credit pool, and a
 * ~256 ns device-side 4 KiB copy (16 GB/s internal path).
 */

#ifndef NVDIMMC_BACKEND_CXL_BACKEND_HH
#define NVDIMMC_BACKEND_CXL_BACKEND_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/media_backend.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "dram/dram_device.hh"
#include "imc/host_port.hh"
#include "nvm/nvm_media.hh"
#include "nvmc/cp_protocol.hh"

namespace nvdimmc::backend
{

/** CXL.mem link + device-controller model knobs. */
struct CxlBackendConfig
{
    /** Request flit host -> device (issue + link + device decode). */
    Tick reqLatency = 110 * kNs;
    /** Response flit device -> host. */
    Tick respLatency = 110 * kNs;
    /** Device-side 4 KiB copy between the NAND buffer / PLP capture
     *  buffer and the device DRAM (internal fabric, not the link). */
    Tick devCopyLatency = 256 * kNs;
    /** Outstanding-request credit pools (the device's queue depths). */
    std::uint32_t maxPendingReads = 64;
    std::uint32_t maxPendingWrites = 128;
    /** Host-visible interleave granule. The device copies pages
     *  internally, so nothing pins it to the page size; 256 B line
     *  interleave is the natural CXL choice. */
    std::uint32_t interleaveGranule = 256;
};

struct CxlBackendStats
{
    Counter cachefills;
    Counter writebacks;
    Counter mergedOps;
    /** Ops that found their credit pool empty and had to park. */
    Counter creditWaits;
    Counter pagesDumped;
    Histogram opLatency; ///< submit() -> done, host-observed.
};

/** DRAM cache + NAND behind a modeled CXL.mem link. */
class CxlHybridBackend : public MediaBackend
{
  public:
    CxlHybridBackend(EventQueue& host_eq, imc::HostPort& port,
                     const CxlBackendConfig& cfg);

    /**
     * Wire channel @p ch's device halves in: @p ch_eq is the queue
     * device-side work runs on (the channel's shard queue when
     * sharded, the host queue otherwise), @p dram the device DRAM,
     * @p media the page store behind it, @p layout the slot/metadata
     * map shared with the driver. Must be called for every channel
     * before traffic.
     */
    void attachChannel(std::uint32_t ch, EventQueue& ch_eq,
                       dram::DramDevice& dram, nvm::PageBackend& media,
                       const nvmc::ReservedLayout& layout);

    const BackendTraits& traits() const override { return traits_; }

    void submit(std::uint32_t channel, const TransportOp& op,
                Callback done) override;

    std::size_t powerFailFlush(std::uint32_t channel) override;

    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const override;

    /** Link credits in use (reads + writes) plus ops parked for a
     *  credit, summed over channels. */
    std::uint64_t queueDepth() const override
    {
        std::uint64_t depth = 0;
        for (const auto& ch : channels_)
            depth += (cfg_.maxPendingReads - ch.readCredits) +
                     (cfg_.maxPendingWrites - ch.writeCredits) +
                     ch.creditWaiters.size();
        return depth;
    }

    const CxlBackendStats& stats() const { return stats_; }

  private:
    struct Channel
    {
        EventQueue* eq = nullptr;
        dram::DramDevice* dram = nullptr;
        nvm::PageBackend* media = nullptr;
        /** Non-owning: the core Channel outlives the backend. */
        const nvmc::ReservedLayout* layout = nullptr;

        /** @name Host-side link state. */
        /** @{ */
        std::uint32_t readCredits = 0;
        std::uint32_t writeCredits = 0;
        /** One op parked for credits. */
        struct Waiter
        {
            TransportOp::Kind kind;
            Callback go;
        };
        /** FIFO with head-of-line blocking, like a real full MSHR
         *  pool: a returning credit only ever releases the head. */
        std::deque<Waiter> creditWaiters;
        /** @} */

        /** @name Device-side state. */
        /** @{ */
        /** Slots whose victim was captured (and its program issued)
         *  by an in-flight op: the power-fail dump must skip them —
         *  the slot bytes may already belong to the incoming page.
         *  Maps slot -> captured victim's module-local NAND page. */
        std::unordered_map<std::uint32_t, std::uint64_t> captured;
        /** @} */
    };

    /** Take the credits @p kind needs (reads for fills, writes for
     *  writebacks, both for merged) if available. */
    bool tryTakeCredits(std::uint32_t ch, TransportOp::Kind kind);
    /** tryTakeCredits, parking @p go FIFO when the pool is dry. */
    void acquireCredits(std::uint32_t ch, TransportOp::Kind kind,
                        Callback go);
    void releaseCredits(std::uint32_t ch, TransportOp::Kind kind);
    void pumpWaiters(std::uint32_t ch);

    /** Host -> device: run @p fn on the channel's queue one request
     *  latency ahead (mailbox message when sharded). */
    void toDevice(std::uint32_t ch, Callback fn);
    /** Device -> host: run @p fn on the host queue one response
     *  latency ahead. */
    void toHost(std::uint32_t ch, Callback fn);

    /** Device-side op execution (runs on the channel's queue). */
    void deviceExec(std::uint32_t ch, TransportOp op, Callback respond);
    void deviceFill(std::uint32_t ch, const TransportOp& op,
                    std::uint32_t slot, std::uint64_t nand_page,
                    Callback respond);

    /** @name Device-internal DRAM access (64 B bursts, no link). */
    /** @{ */
    void readDramDirect(std::uint32_t ch, Addr addr, std::uint32_t len,
                        std::uint8_t* buf) const;
    void writeDramDirect(std::uint32_t ch, Addr addr, std::uint32_t len,
                         const std::uint8_t* data);
    /** @} */

    EventQueue& hostEq_;
    imc::HostPort& port_;
    CxlBackendConfig cfg_;
    BackendTraits traits_;

    std::vector<Channel> channels_;

    CxlBackendStats stats_;
};

} // namespace nvdimmc::backend

#endif // NVDIMMC_BACKEND_CXL_BACKEND_HH
