#include "backend/nvdimmc_backend.hh"

#include <array>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "nvmc/nvmc.hh"

namespace nvdimmc::backend
{

const char*
toString(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Nvdimmc: return "nvdimmc";
      case BackendKind::CxlHybrid: return "cxl";
      case BackendKind::Pmem: return "pmem";
    }
    return "?";
}

bool
parseBackendKind(const std::string& s, BackendKind& out)
{
    if (s == "nvdimmc") {
        out = BackendKind::Nvdimmc;
        return true;
    }
    if (s == "cxl") {
        out = BackendKind::CxlHybrid;
        return true;
    }
    if (s == "pmem") {
        out = BackendKind::Pmem;
        return true;
    }
    return false;
}

NvdimmcBackend::NvdimmcBackend(
    EventQueue& eq, cpu::CpuCacheModel& cache_model,
    const std::vector<const nvmc::ReservedLayout*>& layouts,
    const NvdimmcBackendConfig& cfg)
    : eq_(eq),
      cacheModel_(cache_model),
      cfg_(cfg),
      channels_(static_cast<std::uint32_t>(layouts.size())),
      il_(channels_, dram::ChannelInterleave::kPageGranule),
      nvmcs_(layouts.size(), nullptr)
{
    NVDC_ASSERT(!layouts.empty(),
                "CP transport needs at least one module");
    traits_.kind = BackendKind::Nvdimmc;
    traits_.name = "nvdimmc";
    traits_.interleaveGranule = dram::ChannelInterleave::kPageGranule;
    traits_.usesRefreshWindows = true;
    traits_.durableOnAck = true;
    traits_.hasMissTransport = true;

    layouts_.reserve(layouts.size());
    for (std::uint32_t ch = 0; ch < channels_; ++ch) {
        const nvmc::ReservedLayout& lay = *layouts[ch];
        NVDC_ASSERT(cfg.cpQueueDepth >= 1 &&
                    cfg.cpQueueDepth <= lay.maxCommands,
                    "CP depth exceeds the layout");
        layouts_.push_back(lay);
        std::vector<std::uint32_t> free_indices;
        for (std::uint32_t i = 0; i < cfg.cpQueueDepth; ++i)
            free_indices.push_back(i);
        freeCpIndices_.push_back(std::move(free_indices));
        cpWaiters_.emplace_back();
        cpPhase_.emplace_back(lay.maxCommands, 0);
    }
}

void
NvdimmcBackend::attachNvmc(std::uint32_t channel, nvmc::Nvmc* nvmc)
{
    nvmcs_[channel] = nvmc;
}

void
NvdimmcBackend::submit(std::uint32_t channel, const TransportOp& op,
                       Callback done)
{
    nvmc::CpCommand cmd;
    switch (op.kind) {
      case TransportOp::Kind::Cachefill:
        cmd.opcode = nvmc::CpOpcode::Cachefill;
        break;
      case TransportOp::Kind::Writeback:
        cmd.opcode = nvmc::CpOpcode::Writeback;
        break;
      case TransportOp::Kind::WritebackCachefill:
        cmd.opcode = nvmc::CpOpcode::WritebackCachefill;
        break;
    }
    cmd.dramSlot = op.dramSlot;
    cmd.nandPage = op.nandPage;
    cmd.dramSlot2 = op.dramSlot2;
    cmd.nandPage2 = op.nandPage2;
    cmd.spanId = op.span;
    cpTransaction(channel, cmd, std::move(done));
}

std::size_t
NvdimmcBackend::powerFailFlush(std::uint32_t channel)
{
    if (channel >= nvmcs_.size() || nvmcs_[channel] == nullptr)
        return 0;
    return nvmcs_[channel]->firmware().powerFailDump();
}

void
NvdimmcBackend::registerStats(StatRegistry& reg,
                              const std::string& prefix) const
{
    reg.addCounter(prefix + ".ack_polls", stats_.ackPolls);
}

void
NvdimmcBackend::acquireCpIndex(
    std::uint32_t channel, std::function<void(std::uint32_t)> granted)
{
    auto& free_indices = freeCpIndices_[channel];
    if (!free_indices.empty()) {
        std::uint32_t i = free_indices.back();
        free_indices.pop_back();
        granted(i);
        return;
    }
    cpWaiters_[channel].push_back(std::move(granted));
}

void
NvdimmcBackend::releaseCpIndex(std::uint32_t channel,
                               std::uint32_t index)
{
    auto& waiters = cpWaiters_[channel];
    if (!waiters.empty()) {
        auto next = std::move(waiters.front());
        waiters.pop_front();
        eq_.scheduleAfter(0, [next = std::move(next), index] {
            next(index);
        });
        return;
    }
    freeCpIndices_[channel].push_back(index);
}

std::uint8_t
NvdimmcBackend::nextPhase(std::uint32_t channel, std::uint32_t index)
{
    std::uint8_t p = cpPhase_[channel][index];
    p = (p == 255) ? 1 : p + 1;
    cpPhase_[channel][index] = p;
    return p;
}

void
NvdimmcBackend::cpTransaction(std::uint32_t channel, nvmc::CpCommand cmd,
                              Callback done)
{
    acquireCpIndex(channel, [this, channel, cmd,
                             done = std::move(done)](
                                std::uint32_t index) mutable {
        // Waiting for a free CP slot (queue depth contention).
        span::phase(cmd.spanId, span::Phase::CpQueue, eq_.now());
        eq_.scheduleAfter(cfg_.cpWriteCost, [this, channel, cmd, index,
                                             done = std::move(done)]()
                              mutable {
            nvmc::CpCommand final_cmd = cmd;
            final_cmd.phase = nextPhase(channel, index);

            auto line = std::make_shared<
                std::array<std::uint8_t, 64>>();
            nvmc::encodeCpCommand(final_cmd, line->data());

            Addr addr =
                flatAddr(channel, layouts_[channel].commandAddr(index));
            std::uint8_t phase = final_cmd.phase;
            span::Id sp = final_cmd.spanId;
            // Store the command, then clflush + sfence so the FPGA's
            // next poll sees it in DRAM.
            cacheModel_.store(addr, line->data(), [this, addr, line,
                                                   channel, index,
                                                   phase, sp,
                                                   done =
                                                       std::move(done)]()
                                  mutable {
                cacheModel_.clflush(addr, [this, channel, index, phase,
                                           line, sp,
                                           done = std::move(done)]()
                                        mutable {
                    // Command composed, stored and flushed; it is now
                    // visible to the module's next poll.
                    span::phase(sp, span::Phase::CpWrite, eq_.now());
                    pollAck(channel, index, phase,
                            [this, channel, index, sp,
                             done = std::move(done)] {
                        // Everything after the module's last mark was
                        // spent waiting for the driver to observe the
                        // ack line.
                        span::phase(sp, span::Phase::CpAck, eq_.now());
                        releaseCpIndex(channel, index);
                        done();
                    });
                });
            });
        });
    });
}

void
NvdimmcBackend::pollAck(std::uint32_t channel, std::uint32_t index,
                        std::uint8_t phase, Callback done)
{
    stats_.ackPolls.inc();
    Addr addr = flatAddr(channel, layouts_[channel].ackAddr(index));
    // Invalidate first: the FPGA writes the ack behind the CPU
    // cache's back (paper §V-B).
    cacheModel_.invalidate(addr);
    auto buf = std::make_shared<std::array<std::uint8_t, 64>>();
    cacheModel_.load(addr, buf->data(), [this, channel, index, phase,
                                         buf, done = std::move(done)]()
                         mutable {
        nvmc::CpAck ack = nvmc::decodeCpAck(buf->data());
        if (ack.phase == phase && ack.status == 1) {
            done();
            return;
        }
        eq_.scheduleAfter(cfg_.ackPollInterval,
                          [this, channel, index, phase,
                           done = std::move(done)]() mutable {
            pollAck(channel, index, phase, std::move(done));
        });
    });
}

} // namespace nvdimmc::backend
