/**
 * @file
 * The media-transport backend seam.
 *
 * Everything the nvdc driver assumes about the device behind the DRAM
 * cache is captured here: how a miss fill / victim writeback is
 * requested (submit), when the completion callback means the data is
 * durable (BackendTraits::durableOnAck), what interleave granule the
 * host-visible address space uses, and what the device can save on a
 * power failure (powerFailFlush). The driver's fault path composes a
 * TransportOp and hands it to whichever backend the system wired in:
 *
 *  - NvdimmcBackend: the paper's CP-page-over-DDR4 protocol — command
 *    line store+clflush, firmware polls inside refresh windows, DMA
 *    moves the page, ack line polled back. Slots are 4 KiB and must
 *    live in their own module's DRAM, so the interleave granule is
 *    pinned to the page size.
 *  - CxlHybridBackend: a CMM-H-style hybrid device behind a modeled
 *    CXL.mem link — no refresh-window constraint, its own
 *    request/response latency and outstanding-request credit pools,
 *    with the same FTL/Z-NAND media stack behind the seam. Fine
 *    (256 B) interleave is allowed because the device-side copy
 *    engine, not host DMA windows, moves slot data.
 *  - PmemBackendTraits: the emulated-pmem baseline — no cache, no
 *    miss transport at all; it participates only so the bench/CLI
 *    layer can treat all three uniformly.
 *
 * Ops carry module-LOCAL nand pages and slot indices, exactly like CP
 * commands do; channel routing stays the driver's job.
 */

#ifndef NVDIMMC_BACKEND_MEDIA_BACKEND_HH
#define NVDIMMC_BACKEND_MEDIA_BACKEND_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/span.hh"
#include "common/types.hh"

namespace nvdimmc
{

class StatRegistry;

namespace backend
{

using Callback = std::function<void()>;

/** Which transport sits between the DRAM cache and the NVM media. */
enum class BackendKind : std::uint8_t
{
    Nvdimmc = 0,  ///< CP page over DDR4, DMA in refresh windows.
    CxlHybrid = 1, ///< DRAM cache + NAND behind a CXL.mem link.
    Pmem = 2,      ///< Emulated-pmem baseline (no cache, no media).
};

const char* toString(BackendKind kind);

/** Parse a CLI spelling ("nvdimmc" | "cxl" | "pmem"); false = bad. */
bool parseBackendKind(const std::string& s, BackendKind& out);

/** A miss-path transport operation (the CP opcode set, generalized). */
struct TransportOp
{
    enum class Kind : std::uint8_t
    {
        Cachefill = 0,          ///< NVM page -> DRAM slot.
        Writeback = 1,          ///< DRAM slot -> NVM page.
        WritebackCachefill = 2, ///< Merged eviction + fill pair.
    };

    Kind kind = Kind::Cachefill;
    std::uint32_t dramSlot = 0;  ///< Victim / fill slot.
    std::uint64_t nandPage = 0;  ///< Module-local NVM page.
    /** Merged-op second pair (the fill half). */
    std::uint32_t dramSlot2 = 0;
    std::uint64_t nandPage2 = 0;
    span::Id span = 0;
};

/** Static properties the host stack keys decisions on. */
struct BackendTraits
{
    BackendKind kind = BackendKind::Nvdimmc;
    const char* name = "nvdimmc";
    /** Channel-interleave granule of the host-visible address space.
     *  NVDIMM-C pins it to 4 KiB (a cache slot must live in its own
     *  module's DRAM for window DMA); CXL and pmem stripe at 256 B. */
    std::uint32_t interleaveGranule = 4096;
    /** Miss transport only moves data inside refresh-window DMA. */
    bool usesRefreshWindows = false;
    /** A completed submit() means the data is power-fail safe (the
     *  device captured it into a PLP-backed buffer). */
    bool durableOnAck = false;
    /** False = no cache/miss path at all (the pmem baseline). */
    bool hasMissTransport = false;
};

/**
 * The transport seam the driver talks through. One instance serves
 * every channel (ops carry the channel index), mirroring the one
 * driver instance fronting N modules.
 */
class MediaBackend
{
  public:
    virtual ~MediaBackend() = default;

    virtual const BackendTraits& traits() const = 0;

    /**
     * Submit one transport op for @p channel. @p done fires on the
     * host side when the op completes (for traits().durableOnAck
     * backends: when the payload is power-fail safe). Merged ops
     * complete once, after both halves.
     */
    virtual void submit(std::uint32_t channel, const TransportOp& op,
                        Callback done) = 0;

    /**
     * Post-mortem power-fail flush for @p channel: save what the
     * device's energy reserve covers, straight into the media store
     * (simulated time does not advance). Returns pages committed.
     */
    virtual std::size_t powerFailFlush(std::uint32_t channel) = 0;

    /** Register backend counters under @p prefix. */
    virtual void registerStats(StatRegistry& reg,
                               const std::string& prefix) const = 0;

    /**
     * Transport ops currently in flight or queued for a transport
     * resource, summed over channels — CP command slots in use plus
     * waiters for the NVDIMM-C protocol, link credits in use plus
     * credit waiters for CXL.mem. A telemetry gauge (DESIGN §9);
     * backends without a bounded transport report 0.
     */
    virtual std::uint64_t queueDepth() const { return 0; }
};

} // namespace backend
} // namespace nvdimmc

#endif // NVDIMMC_BACKEND_MEDIA_BACKEND_HH
