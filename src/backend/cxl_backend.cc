#include "backend/cxl_backend.hh"

#include <utility>

#include "common/logging.hh"

namespace nvdimmc::backend
{

CxlHybridBackend::CxlHybridBackend(EventQueue& host_eq,
                                   imc::HostPort& port,
                                   const CxlBackendConfig& cfg)
    : hostEq_(host_eq), port_(port), cfg_(cfg)
{
    NVDC_ASSERT(cfg.maxPendingReads >= 1 && cfg.maxPendingWrites >= 1,
                "CXL credit pools must be at least one deep");
    NVDC_ASSERT(cfg.reqLatency > 0 && cfg.respLatency > 0,
                "CXL link crossings need positive latency (they are "
                "the cross-shard lookahead)");
    traits_.kind = BackendKind::CxlHybrid;
    traits_.name = "cxl";
    traits_.interleaveGranule = cfg.interleaveGranule;
    traits_.usesRefreshWindows = false;
    traits_.durableOnAck = true;
    traits_.hasMissTransport = true;
}

void
CxlHybridBackend::attachChannel(std::uint32_t ch, EventQueue& ch_eq,
                                dram::DramDevice& dram,
                                nvm::PageBackend& media,
                                const nvmc::ReservedLayout& layout)
{
    if (ch >= channels_.size())
        channels_.resize(ch + 1);
    Channel& c = channels_[ch];
    c.eq = &ch_eq;
    c.dram = &dram;
    c.media = &media;
    c.layout = &layout;
    c.readCredits = cfg_.maxPendingReads;
    c.writeCredits = cfg_.maxPendingWrites;
}

bool
CxlHybridBackend::tryTakeCredits(std::uint32_t ch,
                                 TransportOp::Kind kind)
{
    Channel& c = channels_[ch];
    const bool need_read = kind != TransportOp::Kind::Writeback;
    const bool need_write = kind != TransportOp::Kind::Cachefill;
    if ((need_read && c.readCredits == 0) ||
        (need_write && c.writeCredits == 0))
        return false;
    if (need_read)
        --c.readCredits;
    if (need_write)
        --c.writeCredits;
    return true;
}

void
CxlHybridBackend::acquireCredits(std::uint32_t ch,
                                 TransportOp::Kind kind, Callback go)
{
    Channel& c = channels_[ch];
    // Arrivals behind a parked op park too, even if their own pool
    // has room: the link issues in order.
    if (c.creditWaiters.empty() && tryTakeCredits(ch, kind)) {
        go();
        return;
    }
    stats_.creditWaits.inc();
    c.creditWaiters.push_back({kind, std::move(go)});
}

void
CxlHybridBackend::releaseCredits(std::uint32_t ch,
                                 TransportOp::Kind kind)
{
    Channel& c = channels_[ch];
    if (kind != TransportOp::Kind::Writeback)
        ++c.readCredits;
    if (kind != TransportOp::Kind::Cachefill)
        ++c.writeCredits;
    pumpWaiters(ch);
}

void
CxlHybridBackend::pumpWaiters(std::uint32_t ch)
{
    Channel& c = channels_[ch];
    while (!c.creditWaiters.empty() &&
           tryTakeCredits(ch, c.creditWaiters.front().kind)) {
        auto go = std::move(c.creditWaiters.front().go);
        c.creditWaiters.pop_front();
        go();
    }
}

void
CxlHybridBackend::toDevice(std::uint32_t ch, Callback fn)
{
    if (port_.sharded()) {
        port_.postDevice(ch, cfg_.reqLatency, std::move(fn));
        return;
    }
    hostEq_.scheduleAfter(cfg_.reqLatency, std::move(fn));
}

void
CxlHybridBackend::toHost(std::uint32_t ch, Callback fn)
{
    if (port_.sharded()) {
        port_.completeDevice(ch, cfg_.respLatency, std::move(fn));
        return;
    }
    channels_[ch].eq->scheduleAfter(cfg_.respLatency, std::move(fn));
}

void
CxlHybridBackend::submit(std::uint32_t channel, const TransportOp& op,
                         Callback done)
{
    NVDC_ASSERT(channel < channels_.size() &&
                channels_[channel].media != nullptr,
                "CXL channel used before attachChannel");
    switch (op.kind) {
      case TransportOp::Kind::Cachefill:
        stats_.cachefills.inc();
        break;
      case TransportOp::Kind::Writeback:
        stats_.writebacks.inc();
        break;
      case TransportOp::Kind::WritebackCachefill:
        stats_.mergedOps.inc();
        break;
    }
    const Tick submitted = hostEq_.now();
    acquireCredits(channel, op.kind, [this, channel, op, submitted,
                                      done = std::move(done)]() mutable {
        // Credit in hand; everything since submit() was pool pressure.
        span::phase(op.span, span::Phase::LinkWait, hostEq_.now());
        Callback respond = [this, channel, op, submitted,
                            done = std::move(done)] {
            // Runs device-side once the op's work is finished; the
            // response flit crosses back and completes on the host.
            toHost(channel, [this, channel, op, submitted,
                             done = std::move(done)] {
                span::phase(op.span, span::Phase::LinkResp,
                            hostEq_.now());
                stats_.opLatency.record(hostEq_.now() - submitted);
                releaseCredits(channel, op.kind);
                done();
            });
        };
        toDevice(channel, [this, channel, op,
                           respond = std::move(respond)]() mutable {
            deviceExec(channel, op, std::move(respond));
        });
    });
}

void
CxlHybridBackend::deviceExec(std::uint32_t ch, TransportOp op,
                             Callback respond)
{
    Channel& c = channels_[ch];
    // The request flit has arrived at the device controller.
    span::phase(op.span, span::Phase::LinkReq, c.eq->now());

    if (op.kind == TransportOp::Kind::Cachefill) {
        deviceFill(ch, op, op.dramSlot, op.nandPage,
                   std::move(respond));
        return;
    }

    // Writeback half first: copy the victim slot out of the device
    // DRAM into the PLP-backed capture buffer. Once that copy lands
    // the bytes are power-fail safe — the NAND program runs behind
    // the response, exactly the firmware's ack-early contract.
    const std::uint32_t slot = op.dramSlot;
    const std::uint64_t nand_page = op.nandPage;
    auto buf = std::make_shared<std::vector<std::uint8_t>>(
        nvm::PageBackend::kPageBytes);
    readDramDirect(ch, c.layout->slotAddr(slot),
                   nvm::PageBackend::kPageBytes, buf->data());
    c.eq->scheduleAfter(cfg_.devCopyLatency, [this, ch, op, slot,
                                              nand_page, buf,
                                              respond = std::move(
                                                  respond)]() mutable {
        Channel& cc = channels_[ch];
        span::phase(op.span, span::Phase::DevCopy, cc.eq->now());
        // From this instant the slot may be overwritten by a fill;
        // the power-fail dump must not commit its bytes as the
        // victim's. The program retains the capture buffer.
        cc.captured[slot] = nand_page;
        cc.media->writePage(nand_page, buf->data(),
                            [this, ch, slot, nand_page, buf] {
                                auto& m = channels_[ch].captured;
                                auto it = m.find(slot);
                                if (it != m.end() &&
                                    it->second == nand_page)
                                    m.erase(it);
                            });
        if (op.kind == TransportOp::Kind::WritebackCachefill) {
            deviceFill(ch, op, op.dramSlot2, op.nandPage2,
                       std::move(respond));
            return;
        }
        respond();
    });
}

void
CxlHybridBackend::deviceFill(std::uint32_t ch, const TransportOp& op,
                             std::uint32_t slot,
                             std::uint64_t nand_page, Callback respond)
{
    Channel& c = channels_[ch];
    auto buf = std::make_shared<std::vector<std::uint8_t>>(
        nvm::PageBackend::kPageBytes);
    c.media->readPage(
        nand_page, buf->data(),
        [this, ch, op, slot, buf, respond = std::move(respond)]() mutable {
            // NAND data in the device buffer; copy it into the slot.
            Channel& cc = channels_[ch];
            cc.eq->scheduleAfter(
                cfg_.devCopyLatency,
                [this, ch, op, slot, buf,
                 respond = std::move(respond)] {
                    Channel& c2 = channels_[ch];
                    writeDramDirect(ch, c2.layout->slotAddr(slot),
                                    nvm::PageBackend::kPageBytes,
                                    buf->data());
                    span::phase(op.span, span::Phase::DevCopy,
                                c2.eq->now());
                    respond();
                });
        },
        op.span);
}

std::size_t
CxlHybridBackend::powerFailFlush(std::uint32_t channel)
{
    if (channel >= channels_.size() ||
        channels_[channel].media == nullptr)
        return 0;
    Channel& c = channels_[channel];
    std::size_t flushed = 0;
    std::vector<std::uint8_t> meta_line(64);
    std::vector<std::uint8_t> page(nvm::PageBackend::kPageBytes);

    // Same post-mortem walk the NVDIMM-C firmware performs, run by
    // the device controller off its PLP reserve: commit every slot
    // the in-DRAM metadata marks dirty, skipping slots whose victim
    // is already captured (its program owns the bytes; the slot may
    // hold a partially landed fill).
    for (std::uint32_t slot = 0; slot < c.layout->slotCount();
         ++slot) {
        Addr maddr = c.layout->metadataAddr(slot);
        Addr line_addr = maddr & ~Addr{63};
        readDramDirect(channel, line_addr, 64, meta_line.data());
        nvmc::SlotMetadata m = nvmc::decodeSlotMetadata(
            meta_line.data() + (maddr - line_addr));
        if (!m.valid || !m.dirty)
            continue;
        auto cap = c.captured.find(slot);
        if (cap != c.captured.end() && cap->second == m.nandPage)
            continue;
        readDramDirect(channel, c.layout->slotAddr(slot),
                       nvm::PageBackend::kPageBytes, page.data());
        c.media->writePage(m.nandPage, page.data(), [] {});
        ++flushed;
        stats_.pagesDumped.inc();
    }
    return flushed;
}

void
CxlHybridBackend::registerStats(StatRegistry& reg,
                                const std::string& prefix) const
{
    reg.addCounter(prefix + ".cxl.cachefills", stats_.cachefills);
    reg.addCounter(prefix + ".cxl.writebacks", stats_.writebacks);
    reg.addCounter(prefix + ".cxl.merged", stats_.mergedOps);
    reg.addCounter(prefix + ".cxl.credit_waits", stats_.creditWaits);
    reg.addCounter(prefix + ".cxl.dumped_pages", stats_.pagesDumped);
    reg.add(prefix + ".cxl.op_latency_mean_us", [this] {
        return stats_.opLatency.mean() / 1e6;
    });
}

void
CxlHybridBackend::readDramDirect(std::uint32_t ch, Addr addr,
                                 std::uint32_t len,
                                 std::uint8_t* buf) const
{
    const Channel& c = channels_[ch];
    const auto& map = c.dram->addressMap();
    NVDC_ASSERT(addr % dram::AddressMap::kBurstBytes == 0 &&
                len % dram::AddressMap::kBurstBytes == 0,
                "direct read must be 64B aligned");
    for (std::uint32_t off = 0; off < len;
         off += dram::AddressMap::kBurstBytes)
        c.dram->readBurst(map.decompose(addr + off), buf + off);
}

void
CxlHybridBackend::writeDramDirect(std::uint32_t ch, Addr addr,
                                  std::uint32_t len,
                                  const std::uint8_t* data)
{
    Channel& c = channels_[ch];
    const auto& map = c.dram->addressMap();
    NVDC_ASSERT(addr % dram::AddressMap::kBurstBytes == 0 &&
                len % dram::AddressMap::kBurstBytes == 0,
                "direct write must be 64B aligned");
    for (std::uint32_t off = 0; off < len;
         off += dram::AddressMap::kBurstBytes)
        c.dram->writeBurst(map.decompose(addr + off), data + off);
}

} // namespace nvdimmc::backend
