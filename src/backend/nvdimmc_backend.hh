/**
 * @file
 * The NVDIMM-C transport: CP page over the standard DDR4 interface.
 *
 * This is the paper's §IV-C protocol, extracted verbatim from the nvdc
 * driver so the host stack can swap transports: the driver composes a
 * TransportOp, this backend encodes it as a CP command line, stores +
 * clflushes it into the module's reserved area, and polls the ack line
 * until the firmware (which only sees the command during a refresh
 * window poll) reports completion. Per-channel CP index pools model
 * the queue depth (1 on the PoC) that serializes the fault path.
 *
 * Ack semantics are the firmware's: a writeback ack means the victim's
 * bytes were captured into the FPGA's power-safe buffer (the NAND
 * program continues in the background), so durableOnAck holds.
 */

#ifndef NVDIMMC_BACKEND_NVDIMMC_BACKEND_HH
#define NVDIMMC_BACKEND_NVDIMMC_BACKEND_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "backend/media_backend.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "cpu/cache_model.hh"
#include "dram/channel_interleave.hh"
#include "nvmc/cp_protocol.hh"

namespace nvdimmc::nvmc
{
class Nvmc;
}

namespace nvdimmc::backend
{

/** Timing/depth knobs of the CP transport (driver-side constants). */
struct NvdimmcBackendConfig
{
    Tick cpWriteCost = 300 * kNs;    ///< Compose + store CP command.
    Tick ackPollInterval = 500 * kNs;
    /** CP command indices the driver cycles per channel
     *  (<= layout.maxCommands). */
    std::uint32_t cpQueueDepth = 1;
};

struct NvdimmcBackendStats
{
    Counter ackPolls;
};

/** The CP-page-over-DDR4 + refresh-window-DMA transport. */
class NvdimmcBackend : public MediaBackend
{
  public:
    /** One reserved layout per module, channel order. CP lines are
     *  addressed through @p cache_model at flat interleaved addresses
     *  (page granule — the NVDIMM-C constraint). */
    NvdimmcBackend(EventQueue& eq, cpu::CpuCacheModel& cache_model,
                   const std::vector<const nvmc::ReservedLayout*>& layouts,
                   const NvdimmcBackendConfig& cfg);

    const BackendTraits& traits() const override { return traits_; }

    void submit(std::uint32_t channel, const TransportOp& op,
                Callback done) override;

    /** Delegates to the attached module's flush-on-fail firmware dump
     *  (0 when the channel has no NVMC attached). */
    std::size_t powerFailFlush(std::uint32_t channel) override;

    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const override;

    /** CP command slots in use plus ops parked for a free slot,
     *  summed over modules. */
    std::uint64_t queueDepth() const override
    {
        std::uint64_t depth = 0;
        for (std::size_t ch = 0; ch < freeCpIndices_.size(); ++ch)
            depth += cfg_.cpQueueDepth - freeCpIndices_[ch].size() +
                     cpWaiters_[ch].size();
        return depth;
    }

    /** Wire channel @p channel's NVMC in (for powerFailFlush). */
    void attachNvmc(std::uint32_t channel, nvmc::Nvmc* nvmc);

    const NvdimmcBackendStats& stats() const { return stats_; }

  private:
    /** @name CP channel (one command queue per module). */
    /** @{ */
    void acquireCpIndex(std::uint32_t channel,
                        std::function<void(std::uint32_t)> granted);
    void releaseCpIndex(std::uint32_t channel, std::uint32_t index);
    void cpTransaction(std::uint32_t channel, nvmc::CpCommand cmd,
                       Callback done);
    void pollAck(std::uint32_t channel, std::uint32_t index,
                 std::uint8_t phase, Callback done);
    std::uint8_t nextPhase(std::uint32_t channel, std::uint32_t index);
    /** @} */

    /** Flat interleaved address of a channel-local DRAM address. */
    Addr flatAddr(std::uint32_t channel, Addr local) const
    {
        return il_.flatten(channel, local);
    }

    EventQueue& eq_;
    cpu::CpuCacheModel& cacheModel_;
    std::vector<nvmc::ReservedLayout> layouts_;
    NvdimmcBackendConfig cfg_;
    BackendTraits traits_;

    std::uint32_t channels_;
    dram::ChannelInterleave il_;

    std::vector<std::vector<std::uint32_t>> freeCpIndices_;
    std::vector<std::deque<std::function<void(std::uint32_t)>>>
        cpWaiters_;
    std::vector<std::vector<std::uint8_t>> cpPhase_;

    std::vector<nvmc::Nvmc*> nvmcs_;

    NvdimmcBackendStats stats_;
};

} // namespace nvdimmc::backend

#endif // NVDIMMC_BACKEND_NVDIMMC_BACKEND_HH
