/**
 * @file
 * The Fig 7 workload: stream a large file off the SATA SSD into the
 * NVDIMM-C block device and sample the write bandwidth over time. The
 * curve plateaus at the SSD's sequential read speed while free cache
 * slots last, then collapses to the writeback+cachefill rate once the
 * DRAM cache is full.
 */

#ifndef NVDIMMC_WORKLOAD_FILECOPY_HH
#define NVDIMMC_WORKLOAD_FILECOPY_HH

#include <cstdint>
#include <functional>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "workload/fio.hh"
#include "workload/ssd.hh"

namespace nvdimmc::workload
{

/** File copy configuration. */
struct FileCopyConfig
{
    std::uint64_t fileBytes = 0;
    std::uint32_t chunkBytes = 256 * 1024;
    Tick sampleInterval = 100 * kMs;
    /** Cache capacity in bytes, used to split the phases in the
     *  result (not to change behaviour). */
    std::uint64_t cacheBytes = 0;
};

/** Result: bandwidth-over-bytes-written curve + phase averages. */
struct FileCopyResult
{
    TimeSeries bandwidth; ///< (tick, MB/s) samples.
    double cachedPhaseMBps = 0.0;
    double uncachedPhaseMBps = 0.0;
    Tick elapsed = 0;
};

/**
 * Run the copy; drives the event queue until the file is fully
 * written.
 */
FileCopyResult runFileCopy(EventQueue& eq, Ssd& ssd, AccessFn device,
                           const FileCopyConfig& cfg);

} // namespace nvdimmc::workload

#endif // NVDIMMC_WORKLOAD_FILECOPY_HH
