/**
 * @file
 * FIO-style microbenchmark driver (paper Table II / §VII-B).
 *
 * Closed-loop worker threads issue fixed-size accesses against a
 * device access function, with ramp-up excluded from the measurement
 * window, reporting the paper's units (MB/s, KIOPS) plus latency
 * percentiles. Device-agnostic: the same job runs against the nvdc
 * driver, the baseline pmem driver, or anything else.
 */

#ifndef NVDIMMC_WORKLOAD_FIO_HH
#define NVDIMMC_WORKLOAD_FIO_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "cpu/thread.hh"

namespace nvdimmc::workload
{

/** Device access: offset/len/direction, completion via callback. */
using AccessFn = std::function<void(Addr offset, std::uint32_t len,
                                    bool is_write,
                                    std::function<void()> done)>;

/** Job description. */
struct FioConfig
{
    enum class Pattern
    {
        RandRead,
        RandWrite,
        SeqRead,
        SeqWrite,
    };

    Pattern pattern = Pattern::RandRead;
    std::uint32_t blockSize = 4096;
    unsigned threads = 1;
    /** Target region [regionOffset, regionOffset + regionBytes). */
    Addr regionOffset = 0;
    std::uint64_t regionBytes = 0;
    Tick rampTime = 2 * kMs;
    Tick runTime = 50 * kMs;
    std::uint64_t seed = 1;
};

/** Aggregated result over the measurement window. */
struct FioResult
{
    double mbps = 0.0;
    double kiops = 0.0;
    std::uint64_t ops = 0;
    Tick meanLatency = 0;
    Tick p50 = 0;
    Tick p99 = 0;
};

/** The job. */
class FioJob
{
  public:
    FioJob(EventQueue& eq, AccessFn access, const FioConfig& cfg);

    /**
     * Run ramp + measurement; drives the event queue. Blocking from
     * the caller's perspective (returns when all threads stopped).
     */
    FioResult run();

  private:
    Addr pickOffset(unsigned thread_idx);

    EventQueue& eq_;
    AccessFn access_;
    FioConfig cfg_;

    std::vector<std::unique_ptr<Rng>> rngs_;
    std::vector<Addr> seqCursor_;
    std::vector<std::unique_ptr<cpu::WorkerThread>> workers_;
};

} // namespace nvdimmc::workload

#endif // NVDIMMC_WORKLOAD_FIO_HH
