/**
 * @file
 * SATA SSD source/sink model (Table I: PM863, 520/475 MB/s sequential)
 * — the rate limiter behind Fig 7's "Cached" plateau.
 */

#ifndef NVDIMMC_WORKLOAD_SSD_HH
#define NVDIMMC_WORKLOAD_SSD_HH

#include <cstdint>
#include <functional>

#include "common/event_queue.hh"
#include "common/stats.hh"

namespace nvdimmc::workload
{

/** The SSD. */
class Ssd
{
  public:
    struct Params
    {
        double seqReadMBps = 520.0;
        double seqWriteMBps = 475.0;
        Tick commandOverhead = 20000; ///< 20 ns per command.
    };

    Ssd(EventQueue& eq, const Params& p) : eq_(eq), params_(p) {}

    /** Sequential read of @p bytes; completes at the drive's rate. */
    void
    read(std::uint64_t bytes, std::function<void()> done)
    {
        issue(bytes, params_.seqReadMBps, std::move(done));
        bytesRead_.inc(bytes);
    }

    /** Sequential write of @p bytes. */
    void
    write(std::uint64_t bytes, std::function<void()> done)
    {
        issue(bytes, params_.seqWriteMBps, std::move(done));
        bytesWritten_.inc(bytes);
    }

    std::uint64_t bytesRead() const { return bytesRead_.value(); }
    std::uint64_t bytesWritten() const { return bytesWritten_.value(); }

  private:
    void
    issue(std::uint64_t bytes, double mbps, std::function<void()> done)
    {
        double bytes_per_ps = mbps * 1e6 / 1e12;
        auto busy = static_cast<Tick>(
            static_cast<double>(bytes) / bytes_per_ps);
        Tick start = std::max(eq_.now(), busyUntil_);
        busyUntil_ = start + params_.commandOverhead + busy;
        eq_.schedule(busyUntil_, std::move(done));
    }

    EventQueue& eq_;
    Params params_;
    Tick busyUntil_ = 0;
    Counter bytesRead_;
    Counter bytesWritten_;
};

} // namespace nvdimmc::workload

#endif // NVDIMMC_WORKLOAD_SSD_HH
