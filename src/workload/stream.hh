/**
 * @file
 * STREAM-style validation workload (paper §VII-A).
 *
 * The paper validates refresh-detection accuracy by hammering the
 * cached region with a modified STREAM that checks results against
 * reference data every iteration, while the NVMC keeps using every
 * refresh window. We run Copy/Scale/Add/Triad over device-resident
 * arrays with real data, verifying each result element, and report
 * mismatches — any detector false fire or window-math bug corrupts
 * data or trips the bus conflict checker.
 */

#ifndef NVDIMMC_WORKLOAD_STREAM_HH
#define NVDIMMC_WORKLOAD_STREAM_HH

#include <cstdint>
#include <functional>

#include "common/event_queue.hh"
#include "common/types.hh"
#include "workload/mixedload.hh"

namespace nvdimmc::workload
{

/** STREAM configuration. */
struct StreamConfig
{
    /** Elements per array (doubles). */
    std::uint64_t elements = 32768;
    unsigned iterations = 3;
    Addr regionOffset = 0;
    double scalar = 3.0;
};

/** Outcome. */
struct StreamResult
{
    std::uint64_t kernelsRun = 0;
    std::uint64_t elementMismatches = 0;
    Tick elapsed = 0;
};

/** Run the aging test; drives the event queue to completion. */
StreamResult runStream(EventQueue& eq, const DataDevice& dev,
                       const StreamConfig& cfg);

} // namespace nvdimmc::workload

#endif // NVDIMMC_WORKLOAD_STREAM_HH
