#include "workload/filecopy.hh"

#include "common/logging.hh"

namespace nvdimmc::workload
{

FileCopyResult
runFileCopy(EventQueue& eq, Ssd& ssd, AccessFn device,
            const FileCopyConfig& cfg)
{
    NVDC_ASSERT(cfg.fileBytes >= cfg.chunkBytes, "file too small");

    FileCopyResult res;
    Tick start = eq.now();

    std::uint64_t written = 0;
    std::uint64_t sample_anchor_bytes = 0;
    Tick sample_anchor_tick = start;
    bool finished = false;

    double cached_sum = 0.0;
    std::uint64_t cached_n = 0;
    double uncached_sum = 0.0;
    std::uint64_t uncached_n = 0;

    // cp(1)-through-the-page-cache behaviour: readahead keeps the
    // next chunk's SSD read in flight while the previous chunk is
    // written to the device, so the faster side hides behind the
    // slower one (the paper's Cached plateau equals the SSD's
    // sequential read speed).
    std::uint64_t read_cursor = 0;
    bool chunk_ready = false;    ///< A prefetched chunk awaits writing.
    bool ssd_busy = false;
    bool writer_busy = false;

    std::function<void()> pump = [&] {
        if (written >= cfg.fileBytes) {
            finished = true;
            return;
        }
        // Keep the device writing (consume the buffered chunk first
        // so the SSD branch below can start prefetching the next one
        // in the same pump pass).
        if (!writer_busy && chunk_ready) {
            std::uint32_t chunk = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(cfg.chunkBytes,
                                        cfg.fileBytes - written));
            chunk_ready = false;
            writer_busy = true;
            device(written, chunk, true, [&, chunk] {
                writer_busy = false;
                written += chunk;
                Tick now = eq.now();
                if (now - sample_anchor_tick >= cfg.sampleInterval) {
                    double mbps = bytesPerTickToMBps(
                        written - sample_anchor_bytes,
                        now - sample_anchor_tick);
                    res.bandwidth.record(now, mbps);
                    bool cached_phase =
                        cfg.cacheBytes == 0 ||
                        written < cfg.cacheBytes * 9 / 10;
                    if (cached_phase) {
                        cached_sum += mbps;
                        ++cached_n;
                    } else {
                        uncached_sum += mbps;
                        ++uncached_n;
                    }
                    sample_anchor_bytes = written;
                    sample_anchor_tick = now;
                }
                pump();
            });
        }
        // Keep the SSD prefetching.
        if (!ssd_busy && !chunk_ready && read_cursor < cfg.fileBytes) {
            std::uint32_t chunk = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(cfg.chunkBytes,
                                        cfg.fileBytes - read_cursor));
            ssd_busy = true;
            read_cursor += chunk;
            ssd.read(chunk, [&] {
                ssd_busy = false;
                chunk_ready = true;
                pump();
            });
        }
    };

    pump();
    // Drive to completion.
    while (!finished && eq.runOne()) {
    }

    res.elapsed = eq.now() - start;
    res.cachedPhaseMBps = cached_n ? cached_sum /
                                         static_cast<double>(cached_n)
                                   : 0.0;
    res.uncachedPhaseMBps =
        uncached_n ? uncached_sum / static_cast<double>(uncached_n)
                   : 0.0;
    return res;
}

} // namespace nvdimmc::workload
