#include "workload/mixedload.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"

namespace nvdimmc::workload
{

namespace
{

/** Deterministic record pattern. */
void
fillPattern(std::uint8_t* buf, std::uint32_t len, std::uint64_t seed)
{
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
    for (std::uint32_t i = 0; i < len; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        buf[i] = static_cast<std::uint8_t>(x);
    }
}

bool
checkPattern(const std::uint8_t* buf, std::uint32_t len,
             std::uint64_t seed)
{
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
    for (std::uint32_t i = 0; i < len; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if (buf[i] != static_cast<std::uint8_t>(x))
            return false;
    }
    return true;
}

struct UserState
{
    unsigned id = 0;
    Addr base = 0;
    std::uint64_t slots = 0;
    unsigned txnsLeft = 0;
    Rng rng{1};
    /** slot -> seed of the last committed write. */
    std::unordered_map<std::uint64_t, std::uint64_t> committed;
    /** Slots with a write issued but not yet acked. */
    std::unordered_set<std::uint64_t> inflight;
    std::vector<std::uint8_t> buf;
};

} // namespace

void
fillRecordPattern(std::uint8_t* buf, std::uint32_t len,
                  std::uint64_t seed)
{
    fillPattern(buf, len, seed);
}

bool
checkRecordPattern(const std::uint8_t* buf, std::uint32_t len,
                   std::uint64_t seed)
{
    return checkPattern(buf, len, seed);
}

MixedLoadResult
runMixedLoad(EventQueue& eq, const DataDevice& dev,
             const MixedLoadConfig& cfg)
{
    NVDC_ASSERT(cfg.users > 0 && cfg.regionBytes >= cfg.recordBytes,
                "mixed-load configuration invalid");

    MixedLoadResult res;
    Tick start = eq.now();

    std::uint64_t per_user =
        cfg.regionBytes / cfg.users / cfg.recordBytes;
    NVDC_ASSERT(per_user >= 1, "region too small for the user count");

    auto users = std::make_shared<std::vector<UserState>>(cfg.users);
    auto alive = std::make_shared<unsigned>(cfg.users);

    for (unsigned u = 0; u < cfg.users; ++u) {
        UserState& st = (*users)[u];
        st.id = u;
        st.base = cfg.regionOffset +
                  std::uint64_t{u} * per_user * cfg.recordBytes;
        st.slots = per_user;
        st.txnsLeft = cfg.transactionsPerUser;
        st.rng = Rng(cfg.seed + u * 977 + 3);
        st.buf.resize(cfg.recordBytes);
    }

    // One transaction: write recordsPerTxn records, then read each
    // back (plus one earlier record) and validate.
    struct Driver
    {
        EventQueue& eq;
        const DataDevice& dev;
        const MixedLoadConfig& cfg;
        MixedLoadResult& res;
        std::shared_ptr<std::vector<UserState>> users;
        std::shared_ptr<unsigned> alive;

        void
        runTxn(unsigned u)
        {
            UserState& st = (*users)[u];
            if (st.txnsLeft == 0) {
                --*alive;
                return;
            }
            st.txnsLeft -= 1;
            auto written =
                std::make_shared<std::vector<
                    std::pair<std::uint64_t, std::uint64_t>>>();
            writeNext(u, 0, written);
        }

        void
        writeNext(unsigned u, unsigned r,
                  std::shared_ptr<std::vector<
                      std::pair<std::uint64_t, std::uint64_t>>> written)
        {
            UserState& st = (*users)[u];
            if (r >= cfg.recordsPerTxn) {
                validateNext(u, 0, written);
                return;
            }
            // Pick a slot not already written by this transaction (a
            // transaction updates distinct records).
            std::uint64_t slot = st.rng.below(st.slots);
            for (int tries = 0; tries < 64; ++tries) {
                bool clash = false;
                for (const auto& [s, unused] : *written) {
                    if (s == slot)
                        clash = true;
                }
                if (!clash)
                    break;
                slot = st.rng.below(st.slots);
            }
            std::uint64_t seed =
                (std::uint64_t{st.id} << 40) ^
                (st.rng.next64() | 1);
            fillPattern(st.buf.data(), cfg.recordBytes, seed);
            Addr addr = st.base + slot * cfg.recordBytes;
            st.inflight.insert(slot);
            dev.write(addr, cfg.recordBytes, st.buf.data(),
                      [this, u, r, slot, seed, written] {
                          UserState& stx = (*users)[u];
                          stx.inflight.erase(slot);
                          stx.committed[slot] = seed;
                          written->push_back({slot, seed});
                          writeNext(u, r + 1, written);
                      });
        }

        void
        validateNext(unsigned u, unsigned idx,
                     std::shared_ptr<std::vector<
                         std::pair<std::uint64_t, std::uint64_t>>>
                         written)
        {
            UserState& st = (*users)[u];
            if (idx >= written->size()) {
                // Also validate one random earlier record.
                if (!st.committed.empty()) {
                    auto it = st.committed.begin();
                    std::advance(
                        it, static_cast<long>(
                                st.rng.below(st.committed.size())));
                    std::uint64_t slot = it->first;
                    std::uint64_t seed = it->second;
                    Addr addr = st.base + slot * cfg.recordBytes;
                    dev.read(addr, cfg.recordBytes, st.buf.data(),
                             [this, u, seed, slot] {
                                 UserState& stx = (*users)[u];
                                 if (!checkPattern(stx.buf.data(),
                                                   cfg.recordBytes,
                                                   seed)) {
                                     res.validationFailures += 1;
                                     warn("mixedload: user ", u,
                                          " slot ", slot,
                                          " earlier-record mismatch,",
                                          " got[0]=",
                                          int(stx.buf[0]));
                                 }
                                 res.transactions += 1;
                                 runTxn(u);
                             });
                    return;
                }
                res.transactions += 1;
                runTxn(u);
                return;
            }
            auto [slot, seed] = (*written)[idx];
            Addr addr = st.base + slot * cfg.recordBytes;
            dev.read(addr, cfg.recordBytes, st.buf.data(),
                     [this, u, idx, seed, slot, written] {
                         UserState& stx = (*users)[u];
                         if (!checkPattern(stx.buf.data(),
                                           cfg.recordBytes, seed)) {
                             res.validationFailures += 1;
                             warn("mixedload: user ", u, " slot ",
                                  slot, " immediate readback ",
                                  "mismatch, got[0]=",
                                  int(stx.buf[0]));
                         }
                         validateNext(u, idx + 1, written);
                     });
        }
    };

    auto drv = std::make_shared<Driver>(
        Driver{eq, dev, cfg, res, users, alive});
    for (unsigned u = 0; u < cfg.users; ++u)
        drv->runTxn(u);

    while (*alive > 0 &&
           (cfg.haltAtTick == 0 || eq.now() < cfg.haltAtTick) &&
           eq.runOne()) {
    }
    res.halted = *alive > 0;

    // Export the committed-record oracle. Slots with a newer write
    // still in flight are excluded: after a power cut they may hold
    // the old bytes, the new bytes, or a torn mix — all legitimate.
    for (const UserState& st : *users) {
        res.inFlightWrites += st.inflight.size();
        std::vector<std::uint64_t> slots;
        slots.reserve(st.committed.size());
        for (const auto& [slot, unused] : st.committed) {
            if (!st.inflight.count(slot))
                slots.push_back(slot);
        }
        std::sort(slots.begin(), slots.end());
        for (std::uint64_t slot : slots) {
            res.committed.push_back(
                {st.base + slot * cfg.recordBytes,
                 st.committed.at(slot)});
        }
    }

    res.elapsed = eq.now() - start;
    return res;
}

} // namespace nvdimmc::workload
