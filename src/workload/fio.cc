#include "workload/fio.hh"

#include "common/logging.hh"

namespace nvdimmc::workload
{

FioJob::FioJob(EventQueue& eq, AccessFn access, const FioConfig& cfg)
    : eq_(eq), access_(std::move(access)), cfg_(cfg)
{
    NVDC_ASSERT(cfg.regionBytes >= cfg.blockSize,
                "FIO region smaller than one block");
    NVDC_ASSERT(cfg.threads >= 1, "FIO needs at least one thread");
}

Addr
FioJob::pickOffset(unsigned t)
{
    const std::uint64_t blocks = cfg_.regionBytes / cfg_.blockSize;
    switch (cfg_.pattern) {
      case FioConfig::Pattern::RandRead:
      case FioConfig::Pattern::RandWrite:
        return cfg_.regionOffset +
               rngs_[t]->below(blocks) * cfg_.blockSize;
      case FioConfig::Pattern::SeqRead:
      case FioConfig::Pattern::SeqWrite: {
        // Partition the region among threads; wrap within the share.
        std::uint64_t share = cfg_.regionBytes / cfg_.threads;
        share = share / cfg_.blockSize * cfg_.blockSize;
        if (share == 0)
            share = cfg_.blockSize;
        Addr base = cfg_.regionOffset + t * share;
        Addr off = base + seqCursor_[t];
        seqCursor_[t] += cfg_.blockSize;
        if (seqCursor_[t] >= share)
            seqCursor_[t] = 0;
        return off;
      }
    }
    return cfg_.regionOffset;
}

FioResult
FioJob::run()
{
    const bool is_write =
        cfg_.pattern == FioConfig::Pattern::RandWrite ||
        cfg_.pattern == FioConfig::Pattern::SeqWrite;

    rngs_.clear();
    seqCursor_.assign(cfg_.threads, 0);
    workers_.clear();
    for (unsigned t = 0; t < cfg_.threads; ++t) {
        rngs_.push_back(std::make_unique<Rng>(cfg_.seed + 17 * t + 1,
                                              0x9e3779b9 + t));
        auto op = [this, t, is_write](
                      std::function<void(std::uint64_t)> op_done) {
            Addr off = pickOffset(t);
            access_(off, cfg_.blockSize, is_write,
                    [op_done = std::move(op_done), this] {
                        op_done(cfg_.blockSize);
                    });
        };
        workers_.push_back(std::make_unique<cpu::WorkerThread>(
            eq_, "fio-" + std::to_string(t), std::move(op)));
    }

    for (auto& w : workers_)
        w->start();

    eq_.runFor(cfg_.rampTime);
    for (auto& w : workers_)
        w->resetStats();

    Tick window_start = eq_.now();
    eq_.runFor(cfg_.runTime);
    Tick window = eq_.now() - window_start;

    // Collect before draining so in-flight ops don't pollute the
    // window.
    FioResult res;
    Histogram merged;
    std::uint64_t bytes = 0;
    for (auto& w : workers_) {
        res.ops += w->opsCompleted();
        bytes += w->bytesMoved();
        merged.merge(w->opLatency());
    }
    res.mbps = bytesPerTickToMBps(bytes, window);
    res.kiops = opsPerTickToKiops(res.ops, window);
    res.meanLatency = static_cast<Tick>(merged.mean());
    res.p50 = merged.percentile(50);
    res.p99 = merged.percentile(99);

    // Wind the workers down cleanly.
    for (auto& w : workers_)
        w->stop();
    for (int guard = 0; guard < 10'000'000; ++guard) {
        bool any = false;
        for (auto& w : workers_) {
            if (w->running())
                any = true;
        }
        if (!any)
            break;
        if (!eq_.runOne())
            break;
    }
    workers_.clear();
    return res;
}

} // namespace nvdimmc::workload
