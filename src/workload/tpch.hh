/**
 * @file
 * TPC-H-on-HANA access-pattern workload (paper §VII-B5, Fig 11).
 *
 * We do not run SQL: Fig 11's signal is the storage-level access
 * pattern each query induces (ref [30] characterizes them), because
 * the normalized slowdown vs the baseline is set by how often the
 * DRAM cache misses and how expensive a miss is. Each query is
 * described by its touched footprint, sequentiality, access size,
 * re-reference passes and skew; the generator replays a matching
 * stream of device accesses. Q1 is the paper's canonical sequential
 * table scan; Q20 its many-small-random-accesses worst case.
 */

#ifndef NVDIMMC_WORKLOAD_TPCH_HH
#define NVDIMMC_WORKLOAD_TPCH_HH

#include <array>
#include <cstdint>

#include "common/event_queue.hh"
#include "common/random.hh"
#include "driver/dram_cache.hh"
#include "workload/fio.hh"

namespace nvdimmc::workload
{

/** Storage-level characterization of one TPC-H query. */
struct TpchQuerySpec
{
    int id;
    /** Fraction of the database the query touches. */
    double footprintFraction;
    /** Fraction of accesses that are sequential-next. */
    double seqFraction;
    /** Typical access granularity in bytes. */
    std::uint32_t accessBytes;
    /** How many times the footprint is effectively swept. */
    double passes;
    /** Zipf skew of the random accesses (0 = uniform). */
    double zipfTheta;
    /**
     * HANA compute time per byte delivered (ns/B). Scan/aggregation
     * queries are compute-bound (the paper: Q1 "can become
     * compute-bound"), which is what damps their device slowdown to
     * ~3x while random-access queries see the device almost raw.
     */
    double computeNsPerByte;
};

/** The 22 queries. */
const std::array<TpchQuerySpec, 22>& tpchQuerySpecs();

/** Execution knobs. */
struct TpchRunConfig
{
    std::uint64_t dbBytes = 0;
    /** Outstanding accesses (HANA scan/join parallelism). */
    unsigned parallelism = 4;
    /** Cap on generated accesses (scales the query down). */
    std::uint64_t maxAccesses = 30000;
    std::uint64_t seed = 7;
};

/**
 * Replay one query against a device; drives the event queue.
 * @return elapsed simulated time.
 */
Tick runTpchQuery(EventQueue& eq, const AccessFn& device,
                  const TpchQuerySpec& q, const TpchRunConfig& cfg);

/**
 * Replay one query against a bare cache directory (no timing): the
 * §VII-B5 hit-rate study. @return the hit rate in [0, 1].
 */
double replayTpchOnCache(driver::DramCache& cache,
                         const TpchQuerySpec& q,
                         std::uint64_t db_pages,
                         std::uint64_t max_accesses,
                         std::uint64_t seed);

} // namespace nvdimmc::workload

#endif // NVDIMMC_WORKLOAD_TPCH_HH
