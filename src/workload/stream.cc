#include "workload/stream.hh"

#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace nvdimmc::workload
{

namespace
{

/** Device-resident array helper: arrays a, b, c laid out back to
 *  back from regionOffset. */
struct Arrays
{
    Addr base;
    std::uint64_t bytes; ///< Per array.

    Addr a() const { return base; }
    Addr b() const { return base + bytes; }
    Addr c() const { return base + 2 * bytes; }
};

} // namespace

StreamResult
runStream(EventQueue& eq, const DataDevice& dev, const StreamConfig& cfg)
{
    StreamResult res;
    Tick start = eq.now();

    const std::uint64_t n = cfg.elements;
    const std::uint64_t bytes = n * sizeof(double);
    Arrays arr{cfg.regionOffset, bytes};

    // Reference copies in host memory.
    std::vector<double> ref_a(n), ref_b(n), ref_c(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        ref_a[i] = 1.0 + static_cast<double>(i % 97);
        ref_b[i] = 2.0;
        ref_c[i] = 0.0;
    }

    auto io = std::make_shared<std::vector<std::uint8_t>>(bytes);
    bool finished = false;

    auto write_array = [&](Addr addr, const std::vector<double>& v,
                           std::function<void()> done) {
        std::memcpy(io->data(), v.data(), bytes);
        dev.write(addr, static_cast<std::uint32_t>(bytes), io->data(),
                  std::move(done));
    };
    auto read_array = [&](Addr addr, std::vector<double>& v,
                          std::function<void()> done) {
        dev.read(addr, static_cast<std::uint32_t>(bytes), io->data(),
                 [&v, io, bytes, done = std::move(done)] {
                     std::memcpy(v.data(), io->data(), bytes);
                     done();
                 });
    };

    std::vector<double> got(n);

    // Kernel pipeline per iteration:
    //   Copy:  c = a;   Scale: b = s*c;   Add: c = a+b;
    //   Triad: a = b + s*c — each computed from device-read inputs,
    //   written back, then re-read and checked against the reference.
    unsigned iter = 0;
    std::function<void()> run_iter;

    auto verify = [&](const std::vector<double>& expect,
                      Addr addr, std::function<void()> done) {
        read_array(addr, got, [&, done = std::move(done)] {
            for (std::uint64_t i = 0; i < n; ++i) {
                if (got[i] != expect[i])
                    res.elementMismatches += 1;
            }
            res.kernelsRun += 1;
            done();
        });
    };

    run_iter = [&] {
        if (iter >= cfg.iterations) {
            finished = true;
            return;
        }
        iter += 1;
        // Copy.
        for (std::uint64_t i = 0; i < n; ++i)
            ref_c[i] = ref_a[i];
        write_array(arr.c(), ref_c, [&] {
            verify(ref_c, arr.c(), [&] {
                // Scale.
                for (std::uint64_t i = 0; i < n; ++i)
                    ref_b[i] = cfg.scalar * ref_c[i];
                write_array(arr.b(), ref_b, [&] {
                    verify(ref_b, arr.b(), [&] {
                        // Add.
                        for (std::uint64_t i = 0; i < n; ++i)
                            ref_c[i] = ref_a[i] + ref_b[i];
                        write_array(arr.c(), ref_c, [&] {
                            verify(ref_c, arr.c(), [&] {
                                // Triad.
                                for (std::uint64_t i = 0; i < n; ++i)
                                    ref_a[i] = ref_b[i] +
                                               cfg.scalar * ref_c[i];
                                write_array(arr.a(), ref_a, [&] {
                                    verify(ref_a, arr.a(), run_iter);
                                });
                            });
                        });
                    });
                });
            });
        });
    };

    // Seed the arrays on the device first.
    write_array(arr.a(), ref_a, [&] {
        write_array(arr.b(), ref_b, [&] {
            write_array(arr.c(), ref_c, run_iter);
        });
    });

    while (!finished && eq.runOne()) {
    }
    res.elapsed = eq.now() - start;
    return res;
}

} // namespace nvdimmc::workload
