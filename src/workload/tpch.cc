#include "workload/tpch.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"

namespace nvdimmc::workload
{

const std::array<TpchQuerySpec, 22>&
tpchQuerySpecs()
{
    // Characterization guided by the TPC-H I/O study the paper cites
    // ([30]) and HANA's columnar execution: scan-bound queries stream
    // big sequential chunks of lineitem/orders; join/subquery-bound
    // queries issue small skewed random reads, some sweeping their
    // footprint several times.
    //                  id  foot  seq   bytes  passes theta  ns/B
    static const std::array<TpchQuerySpec, 22> specs = {{
        {1, 0.60, 1.00, 131072, 1.0, 0.0, 8.0},  // lineitem full scan
        {2, 0.18, 0.20, 8192, 2.0, 0.60, 1.5},   // region/part lookups
        {3, 0.75, 0.80, 65536, 1.0, 0.20, 4.0},
        {4, 0.65, 0.70, 65536, 1.0, 0.20, 3.5},
        {5, 0.80, 0.50, 32768, 1.2, 0.30, 2.5},
        {6, 0.60, 1.00, 131072, 1.0, 0.0, 7.0},  // lineitem scan
        {7, 0.70, 0.55, 32768, 1.2, 0.30, 2.5},
        {8, 0.80, 0.50, 32768, 1.3, 0.35, 2.5},
        {9, 0.90, 0.30, 8192, 1.5, 0.55, 1.5},   // biggest join
        {10, 0.70, 0.60, 65536, 1.0, 0.25, 3.0},
        {11, 0.12, 0.25, 16384, 2.0, 0.50, 1.5},
        {12, 0.70, 0.80, 65536, 1.0, 0.10, 4.5},
        {13, 0.45, 0.60, 65536, 1.0, 0.20, 3.0},
        {14, 0.62, 0.75, 65536, 1.0, 0.15, 4.0},
        {15, 0.62, 0.80, 65536, 1.0, 0.10, 4.5},
        {16, 0.15, 0.25, 16384, 2.0, 0.50, 1.5},
        {17, 0.70, 0.15, 4096, 2.0, 0.50, 1.0},  // point lookups
        {18, 0.85, 0.65, 65536, 1.2, 0.25, 3.0},
        {19, 0.65, 0.30, 8192, 1.5, 0.50, 1.5},
        {20, 0.80, 0.05, 4096, 3.0, 0.05, 0.4},  // many small accesses
        {21, 0.85, 0.20, 8192, 2.0, 0.50, 1.0},
        {22, 0.08, 0.40, 16384, 1.5, 0.40, 1.5},
    }};
    return specs;
}

namespace
{

/** Shared generator state for one query replay. */
struct QueryReplay
{
    const TpchQuerySpec& q;
    std::uint64_t footprintBytes;
    Addr footprintBase;
    std::uint64_t accessesLeft;
    Rng rng;
    Addr seqCursor = 0;

    QueryReplay(const TpchQuerySpec& spec, std::uint64_t db_bytes,
                std::uint64_t max_accesses, std::uint64_t seed)
        : q(spec), rng(seed + static_cast<std::uint64_t>(spec.id) * 101)
    {
        footprintBytes = static_cast<std::uint64_t>(
            static_cast<double>(db_bytes) * spec.footprintFraction);
        footprintBytes =
            std::max<std::uint64_t>(footprintBytes, spec.accessBytes);
        footprintBytes = footprintBytes / spec.accessBytes *
                         spec.accessBytes;
        footprintBase = 0;

        double raw = static_cast<double>(footprintBytes) /
                     spec.accessBytes * spec.passes;
        accessesLeft = std::max<std::uint64_t>(
            1, std::min<std::uint64_t>(
                   static_cast<std::uint64_t>(raw), max_accesses));
    }

    Addr
    next()
    {
        std::uint64_t chunks = footprintBytes / q.accessBytes;
        if (rng.uniform() < q.seqFraction) {
            Addr off = footprintBase + seqCursor;
            seqCursor += q.accessBytes;
            if (seqCursor >= footprintBytes)
                seqCursor = 0;
            return off;
        }
        // Random references split between a small hot subset
        // (dictionaries, indexes, dimension tables HANA re-reads
        // constantly) and cold uniform probes of the footprint. The
        // hot share calibrates the paper's §VII-B5 in-house result:
        // a 1 GB cache (1% of the SF100 database) already reaches a
        // 78.7% LRU hit rate, so ~80% of references must land in a
        // cache-sized hot region.
        double hot_share = std::min(0.95, 0.55 + q.zipfTheta / 2.0);
        if (rng.uniform() < hot_share) {
            std::uint64_t hot_chunks = std::max<std::uint64_t>(
                1, chunks / 64);
            return footprintBase +
                   rng.zipf(hot_chunks, q.zipfTheta) * q.accessBytes;
        }
        return footprintBase + rng.below(chunks) * q.accessBytes;
    }
};

} // namespace

Tick
runTpchQuery(EventQueue& eq, const AccessFn& device,
             const TpchQuerySpec& q, const TpchRunConfig& cfg)
{
    NVDC_ASSERT(cfg.dbBytes > 0, "TPC-H database size unset");

    auto replay = std::make_shared<QueryReplay>(q, cfg.dbBytes,
                                                cfg.maxAccesses,
                                                cfg.seed);
    Tick start = eq.now();
    unsigned in_flight = 0;
    bool done_all = false;

    // HANA executes with parallel scan/join streams; model as a fixed
    // number of outstanding accesses.
    std::function<void()> pump = [&] {
        while (in_flight < cfg.parallelism && replay->accessesLeft > 0) {
            replay->accessesLeft -= 1;
            in_flight += 1;
            Addr off = replay->next();
            device(off, replay->q.accessBytes, false, [&] {
                // Process the delivered bytes before this stream asks
                // for more (HANA's compute phase).
                auto compute = static_cast<Tick>(
                    replay->q.computeNsPerByte *
                    static_cast<double>(replay->q.accessBytes) * kNs);
                eq.scheduleAfter(compute, [&] {
                    in_flight -= 1;
                    if (replay->accessesLeft > 0) {
                        pump();
                    } else if (in_flight == 0) {
                        done_all = true;
                    }
                });
            });
        }
    };

    pump();
    while (!done_all && eq.runOne()) {
    }
    return eq.now() - start;
}

double
replayTpchOnCache(driver::DramCache& cache, const TpchQuerySpec& q,
                  std::uint64_t db_pages, std::uint64_t max_accesses,
                  std::uint64_t seed)
{
    QueryReplay replay(q, db_pages * 4096, max_accesses, seed);

    std::uint64_t hits = 0;
    std::uint64_t total = replay.accessesLeft;
    for (std::uint64_t i = 0; i < total; ++i) {
        Addr off = replay.next();
        // Touch every 4 KB page the access covers.
        std::uint64_t first = off / 4096;
        std::uint64_t last = (off + replay.q.accessBytes - 1) / 4096;
        for (std::uint64_t page = first; page <= last; ++page) {
            if (cache.lookup(page)) {
                ++hits;
                continue;
            }
            std::uint32_t slot;
            if (cache.hasFree()) {
                slot = cache.allocate(page);
            } else {
                std::uint32_t victim = cache.pickVictim();
                cache.beginEvict(victim);
                cache.rebind(victim, page);
                slot = victim;
            }
            cache.finishFill(slot);
        }
    }
    (void)hits; // Page-granular accounting lives in the cache stats.
    std::uint64_t hit_pages = cache.stats().hits.value();
    std::uint64_t miss_pages = cache.stats().misses.value();
    if (hit_pages + miss_pages == 0)
        return 0.0;
    return static_cast<double>(hit_pages) /
           static_cast<double>(hit_pages + miss_pages);
}

} // namespace nvdimmc::workload
