/**
 * @file
 * The SAP in-house mixed-load benchmark stand-in (paper §VII-B5):
 * N concurrent users run transactions against the device and validate
 * the data after every transaction. The paper uses it to show 500
 * concurrent users complete without corruption; here each transaction
 * writes seeded records and reads them (and earlier records) back,
 * comparing byte-for-byte, so any coherence or serialization bug in
 * the stack shows up as a validation failure.
 */

#ifndef NVDIMMC_WORKLOAD_MIXEDLOAD_HH
#define NVDIMMC_WORKLOAD_MIXEDLOAD_HH

#include <cstdint>
#include <functional>

#include "common/event_queue.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace nvdimmc::workload
{

/** Buffer-carrying device access (validation needs real bytes). */
struct DataDevice
{
    std::function<void(Addr, std::uint32_t, std::uint8_t*,
                       std::function<void()>)> read;
    std::function<void(Addr, std::uint32_t, const std::uint8_t*,
                       std::function<void()>)> write;
    std::uint64_t capacityBytes = 0;
};

/** Mixed-load configuration. */
struct MixedLoadConfig
{
    unsigned users = 50;
    unsigned transactionsPerUser = 20;
    std::uint32_t recordBytes = 4096;
    /** Records per transaction (writes then validating reads). */
    unsigned recordsPerTxn = 2;
    /** Region used by the benchmark. */
    Addr regionOffset = 0;
    std::uint64_t regionBytes = 0;
    std::uint64_t seed = 11;
};

/** Outcome. */
struct MixedLoadResult
{
    std::uint64_t transactions = 0;
    std::uint64_t validationFailures = 0;
    Tick elapsed = 0;
};

/** Run to completion (drives the event queue). */
MixedLoadResult runMixedLoad(EventQueue& eq, const DataDevice& dev,
                             const MixedLoadConfig& cfg);

} // namespace nvdimmc::workload

#endif // NVDIMMC_WORKLOAD_MIXEDLOAD_HH
