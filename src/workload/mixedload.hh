/**
 * @file
 * The SAP in-house mixed-load benchmark stand-in (paper §VII-B5):
 * N concurrent users run transactions against the device and validate
 * the data after every transaction. The paper uses it to show 500
 * concurrent users complete without corruption; here each transaction
 * writes seeded records and reads them (and earlier records) back,
 * comparing byte-for-byte, so any coherence or serialization bug in
 * the stack shows up as a validation failure.
 */

#ifndef NVDIMMC_WORKLOAD_MIXEDLOAD_HH
#define NVDIMMC_WORKLOAD_MIXEDLOAD_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/event_queue.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace nvdimmc::workload
{

/** Buffer-carrying device access (validation needs real bytes). */
struct DataDevice
{
    std::function<void(Addr, std::uint32_t, std::uint8_t*,
                       std::function<void()>)> read;
    std::function<void(Addr, std::uint32_t, const std::uint8_t*,
                       std::function<void()>)> write;
    std::uint64_t capacityBytes = 0;
};

/** Mixed-load configuration. */
struct MixedLoadConfig
{
    unsigned users = 50;
    unsigned transactionsPerUser = 20;
    std::uint32_t recordBytes = 4096;
    /** Records per transaction (writes then validating reads). */
    unsigned recordsPerTxn = 2;
    /** Region used by the benchmark. */
    Addr regionOffset = 0;
    std::uint64_t regionBytes = 0;
    std::uint64_t seed = 11;
    /**
     * Stop driving the event queue once simulated time reaches this
     * tick (0 = run to completion). Used by power-fail campaigns to
     * cut power mid-run; the result then carries the committed-record
     * oracle for post-recovery integrity replay.
     */
    Tick haltAtTick = 0;
};

/** One acked record write: its address and pattern seed. */
struct CommittedRecord
{
    Addr addr = 0;
    std::uint64_t seed = 0;
};

/** Outcome. */
struct MixedLoadResult
{
    std::uint64_t transactions = 0;
    std::uint64_t validationFailures = 0;
    Tick elapsed = 0;
    /** True when haltAtTick stopped the run before completion. */
    bool halted = false;
    /**
     * Every record whose write was acked, EXCLUDING slots that had a
     * newer write still in flight at the halt (those may legitimately
     * hold old, new, or torn bytes after a power cut). Sorted by
     * address; deterministic for a given seed and halt tick.
     */
    std::vector<CommittedRecord> committed;
    /** Writes in flight (issued, not acked) when the run stopped. */
    std::uint64_t inFlightWrites = 0;
};

/** Run to completion (drives the event queue). */
MixedLoadResult runMixedLoad(EventQueue& eq, const DataDevice& dev,
                             const MixedLoadConfig& cfg);

/** @name The record pattern, exposed for recovery replay. */
/** @{ */
void fillRecordPattern(std::uint8_t* buf, std::uint32_t len,
                       std::uint64_t seed);
bool checkRecordPattern(const std::uint8_t* buf, std::uint32_t len,
                        std::uint64_t seed);
/** @} */

} // namespace nvdimmc::workload

#endif // NVDIMMC_WORKLOAD_MIXEDLOAD_HH
