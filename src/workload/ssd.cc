// Ssd is header-only.
#include "workload/ssd.hh"
