/**
 * @file
 * Page-mapped logical-to-physical table for the FTL, with the reverse
 * map needed by garbage collection.
 */

#ifndef NVDIMMC_FTL_MAPPING_TABLE_HH
#define NVDIMMC_FTL_MAPPING_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace nvdimmc::ftl
{

/** Sentinel physical page meaning "never written". */
constexpr std::uint64_t kUnmapped = ~std::uint64_t{0};

/** L2P / P2L mapping at 4 KB page granularity. */
class MappingTable
{
  public:
    explicit MappingTable(std::uint64_t logical_pages)
        : l2p_(logical_pages, kUnmapped)
    {
    }

    std::uint64_t logicalPages() const { return l2p_.size(); }

    /** Physical page for @p lpn, or kUnmapped. */
    std::uint64_t lookup(std::uint64_t lpn) const { return l2p_[lpn]; }

    /**
     * Map @p lpn to @p ppn.
     * @return the previous physical page (kUnmapped if none) so the
     *         caller can invalidate it.
     */
    std::uint64_t map(std::uint64_t lpn, std::uint64_t ppn)
    {
        std::uint64_t old = l2p_[lpn];
        l2p_[lpn] = ppn;
        if (old != kUnmapped)
            p2l_.erase(old);
        p2l_[ppn] = lpn;
        return old;
    }

    /** Logical owner of a physical page, or kUnmapped if stale/free. */
    std::uint64_t
    reverseLookup(std::uint64_t ppn) const
    {
        auto it = p2l_.find(ppn);
        return it == p2l_.end() ? kUnmapped : it->second;
    }

    /** Number of live mappings. */
    std::uint64_t mappedCount() const { return p2l_.size(); }

    /** @name Checkpointing (fault campaigns). The reverse map is
     *  rebuilt from l2p on load. */
    /** @{ */
    void
    saveState(ByteWriter& w) const
    {
        w.tag(0x3150324c); // "L2P1"
        w.u64(l2p_.size());
        for (std::uint64_t ppn : l2p_)
            w.u64(ppn);
    }

    void
    loadState(ByteReader& r)
    {
        r.expectTag(0x3150324c);
        std::uint64_t n = r.u64();
        if (n != l2p_.size()) {
            fatal("MappingTable checkpoint size mismatch: saved ", n,
                  " logical pages, table has ", l2p_.size());
        }
        p2l_.clear();
        for (std::uint64_t lpn = 0; lpn < n; ++lpn) {
            l2p_[lpn] = r.u64();
            if (l2p_[lpn] != kUnmapped)
                p2l_[l2p_[lpn]] = lpn;
        }
    }
    /** @} */

  private:
    std::vector<std::uint64_t> l2p_;
    std::unordered_map<std::uint64_t, std::uint64_t> p2l_;
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_MAPPING_TABLE_HH
