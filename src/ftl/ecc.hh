/**
 * @file
 * Per-page ECC model. The NVMC performs primitive NAND operations
 * "with error correction code (ECC) at the granularity of 4 KB"
 * (paper §III-A). We model a BCH-like code by its correction
 * capability: raw bit errors are injected per read with a configurable
 * rate; if the count exceeds the capability the read is
 * uncorrectable.
 */

#ifndef NVDIMMC_FTL_ECC_HH
#define NVDIMMC_FTL_ECC_HH

#include <cmath>
#include <cstdint>

#include "common/random.hh"
#include "common/stats.hh"

namespace nvdimmc::ftl
{

/** Result of decoding one page. */
struct EccResult
{
    bool correctable = true;
    std::uint32_t bitErrors = 0;
};

/** The code itself. */
class Ecc
{
  public:
    struct Params
    {
        std::uint32_t correctableBits = 72; ///< Per 4 KB codeword.
        /** Mean raw bit errors per page read (Poisson-ish). */
        double rawBitErrorMean = 0.01;
    };

    explicit Ecc(const Params& p, std::uint64_t seed = 1)
        : params_(p), rng_(seed)
    {
    }

    /** Decode one page read; injects raw errors stochastically. */
    EccResult
    decode()
    {
        // Sample a Poisson(mean) via inversion; the means used here
        // are tiny so the loop terminates immediately in practice.
        double l = std::exp(-params_.rawBitErrorMean);
        std::uint32_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= rng_.uniform();
        } while (p > l && k < 100000);
        return decodeInjected(k - 1);
    }

    /**
     * Decode with an externally chosen raw error count (fault
     * campaigns sample wear-dependent rates themselves).
     */
    EccResult
    decodeInjected(std::uint32_t errors)
    {
        EccResult r;
        r.bitErrors = errors;
        r.correctable = errors <= params_.correctableBits;
        if (errors > 0)
            stats_correctedBits.inc(r.correctable ? errors : 0);
        if (!r.correctable)
            stats_uncorrectable.inc();
        return r;
    }

    const Params& params() const { return params_; }
    std::uint64_t correctedBits() const
    {
        return stats_correctedBits.value();
    }
    std::uint64_t uncorrectableReads() const
    {
        return stats_uncorrectable.value();
    }

  private:
    Params params_;
    Rng rng_;
    Counter stats_correctedBits;
    Counter stats_uncorrectable;
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_ECC_HH
