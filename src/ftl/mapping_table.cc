// MappingTable is header-only.
#include "ftl/mapping_table.hh"
