// BadBlockManager is header-only.
#include "ftl/bad_block_manager.hh"
