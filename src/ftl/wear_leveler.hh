/**
 * @file
 * Wear leveling: dynamic (allocate the least-worn free block) and a
 * static trigger (when the erase-count spread exceeds a threshold,
 * nominate a cold block for forced relocation).
 */

#ifndef NVDIMMC_FTL_WEAR_LEVELER_HH
#define NVDIMMC_FTL_WEAR_LEVELER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "nvm/znand.hh"

namespace nvdimmc::ftl
{

/** Wear-leveling policy helper. */
class WearLeveler
{
  public:
    explicit WearLeveler(const nvm::ZNand& nand,
                         std::uint32_t static_threshold = 16)
        : nand_(nand), staticThreshold_(static_threshold)
    {
    }

    /**
     * Dynamic WL: pick the free block with the lowest erase count.
     * @return index *into free_list*, or nullopt if empty.
     */
    std::optional<std::size_t>
    pickFreeBlock(const std::vector<std::uint64_t>& free_list) const
    {
        if (free_list.empty())
            return std::nullopt;
        std::size_t best = 0;
        std::uint32_t best_wear = nand_.eraseCount(free_list[0]);
        for (std::size_t i = 1; i < free_list.size(); ++i) {
            std::uint32_t w = nand_.eraseCount(free_list[i]);
            if (w < best_wear) {
                best_wear = w;
                best = i;
            }
        }
        return best;
    }

    /**
     * Static WL: among @p candidate_blocks (full blocks), return one
     * whose erase count is at least staticThreshold below the device
     * max — its (cold) contents should be moved onto a worn block.
     */
    std::optional<std::uint64_t>
    pickColdBlock(const std::vector<std::uint64_t>& candidate_blocks)
        const
    {
        std::uint32_t max_wear = nand_.maxEraseCount();
        for (std::uint64_t b : candidate_blocks) {
            if (max_wear >= staticThreshold_ &&
                nand_.eraseCount(b) + staticThreshold_ <= max_wear) {
                return b;
            }
        }
        return std::nullopt;
    }

    std::uint32_t staticThreshold() const { return staticThreshold_; }

  private:
    const nvm::ZNand& nand_;
    std::uint32_t staticThreshold_;
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_WEAR_LEVELER_HH
