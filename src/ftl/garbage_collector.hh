/**
 * @file
 * Greedy garbage-collection victim selection: pick the full block with
 * the fewest valid pages (most reclaimable space per erase).
 */

#ifndef NVDIMMC_FTL_GARBAGE_COLLECTOR_HH
#define NVDIMMC_FTL_GARBAGE_COLLECTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace nvdimmc::ftl
{

/** Per-block FTL bookkeeping shared with the collector. */
struct BlockMeta
{
    /**
     * Retired blocks grew a defect (program/erase failure) and never
     * rejoin the free pool; ones still holding valid pages remain
     * GC-visible so their data gets rescued, then they are parked.
     */
    enum class State : std::uint8_t { Free, Active, Full, Retired };

    State state = State::Free;
    std::uint32_t validCount = 0;
    std::uint32_t writeCursor = 0; ///< Next page index to program.
};

/** Victim selection policy. */
class GarbageCollector
{
  public:
    /**
     * Greedy choice over Full blocks, plus Retired blocks that still
     * hold valid data (rescue-only victims: scavenged but never
     * erased or freed). Retired blocks with no valid pages are never
     * picked, so retirement cannot loop the collector.
     * @return block number, or nullopt if no eligible block exists.
     */
    static std::optional<std::uint64_t>
    pickVictim(const std::vector<BlockMeta>& blocks)
    {
        std::optional<std::uint64_t> best;
        std::uint32_t best_valid = ~std::uint32_t{0};
        for (std::uint64_t b = 0; b < blocks.size(); ++b) {
            bool eligible =
                blocks[b].state == BlockMeta::State::Full ||
                (blocks[b].state == BlockMeta::State::Retired &&
                 blocks[b].validCount > 0);
            if (!eligible)
                continue;
            if (blocks[b].validCount < best_valid) {
                best_valid = blocks[b].validCount;
                best = b;
            }
        }
        return best;
    }
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_GARBAGE_COLLECTOR_HH
