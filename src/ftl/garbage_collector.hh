/**
 * @file
 * Greedy garbage-collection victim selection: pick the full block with
 * the fewest valid pages (most reclaimable space per erase).
 */

#ifndef NVDIMMC_FTL_GARBAGE_COLLECTOR_HH
#define NVDIMMC_FTL_GARBAGE_COLLECTOR_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace nvdimmc::ftl
{

/** Per-block FTL bookkeeping shared with the collector. */
struct BlockMeta
{
    enum class State : std::uint8_t { Free, Active, Full };

    State state = State::Free;
    std::uint32_t validCount = 0;
    std::uint32_t writeCursor = 0; ///< Next page index to program.
};

/** Victim selection policy. */
class GarbageCollector
{
  public:
    /**
     * Greedy choice over Full blocks.
     * @return block number, or nullopt if no Full block exists.
     */
    static std::optional<std::uint64_t>
    pickVictim(const std::vector<BlockMeta>& blocks)
    {
        std::optional<std::uint64_t> best;
        std::uint32_t best_valid = ~std::uint32_t{0};
        for (std::uint64_t b = 0; b < blocks.size(); ++b) {
            if (blocks[b].state != BlockMeta::State::Full)
                continue;
            if (blocks[b].validCount < best_valid) {
                best_valid = blocks[b].validCount;
                best = b;
            }
        }
        return best;
    }
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_GARBAGE_COLLECTOR_HH
