// Ecc is header-only.
#include "ftl/ecc.hh"
