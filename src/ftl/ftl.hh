/**
 * @file
 * Flash translation layer over Z-NAND.
 *
 * Page-mapped, log-structured: writes stream into per-die active
 * blocks (round-robin for die parallelism), stale pages are reclaimed
 * by greedy GC, allocation is wear-aware, bad blocks are skipped, and
 * every page read passes through the ECC model. Exposes the 4 KB
 * PageBackend interface the NVMC firmware consumes.
 *
 * Matches the paper's setup: of the 128 GB of Z-NAND, only 120 GB is
 * exposed (§VI); the rest is overprovisioning for GC.
 */

#ifndef NVDIMMC_FTL_FTL_HH
#define NVDIMMC_FTL_FTL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "ftl/bad_block_manager.hh"
#include "ftl/ecc.hh"
#include "ftl/garbage_collector.hh"
#include "ftl/mapping_table.hh"
#include "ftl/wear_leveler.hh"
#include "nvm/nvm_media.hh"
#include "nvm/znand.hh"

namespace nvdimmc::ftl
{

/** FTL configuration. */
struct FtlConfig
{
    /** Fraction of physical pages exposed as logical capacity
     *  (120/128 per the paper). */
    double exposedFraction = 120.0 / 128.0;
    /** Start GC when free blocks drop below this many. */
    std::uint32_t gcLowWaterBlocks = 4;
    /** Stop GC when free blocks recover to this many. */
    std::uint32_t gcHighWaterBlocks = 8;
    /** Static wear-leveling spread threshold. */
    std::uint32_t wearThreshold = 16;
    /** Re-reads attempted after an uncorrectable decode (read-retry
     *  with a tweaked sense level often succeeds on real NAND). */
    std::uint32_t readRetries = 0;
    Ecc::Params ecc;
};

/** FTL statistics. */
struct FtlStats
{
    Counter userReads;
    Counter userWrites;
    Counter gcRelocations;
    Counter gcErases;
    Counter gcRuns;
    Counter unmappedReads;
    Counter uncorrectableReads;
    Counter readRetries;
    Counter readRetrySuccesses;
    Counter grownBadBlocks;

    double
    writeAmplification() const
    {
        if (userWrites.value() == 0)
            return 1.0;
        return static_cast<double>(userWrites.value() +
                                   gcRelocations.value()) /
               static_cast<double>(userWrites.value());
    }
};

/** The translation layer. */
class Ftl : public nvm::PageBackend
{
  public:
    Ftl(EventQueue& eq, nvm::ZNand& nand, const FtlConfig& cfg);

    /** Logical pages exposed upward (the 120 GB view). */
    std::uint64_t pageCount() const override { return logicalPages_; }

    void readPage(std::uint64_t page_no, std::uint8_t* buf,
                  nvm::Callback done, span::Id span = 0) override;
    void writePage(std::uint64_t page_no, const std::uint8_t* data,
                   nvm::Callback done, span::Id span = 0) override;

    const FtlStats& stats() const { return stats_; }

    /** Register live counters + derived write_amplification under
     *  @p prefix (e.g. "ftl.user_writes"). */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

    const MappingTable& mapping() const { return map_; }
    const BadBlockManager& badBlocks() const { return bbm_; }
    std::size_t freeBlockCount() const { return freeBlocks_.size(); }
    bool gcInProgress() const { return gcActive_; }
    const BlockMeta& blockMeta(std::uint64_t block_no) const
    {
        return blocks_[block_no];
    }

    /**
     * Fault injection: called once per physical-page read attempt with
     * the target ppn; returns the raw bit-error count fed to the ECC
     * decoder instead of its internal Poisson draw. Runs in the media
     * completion context, so a deterministic sampler keyed on ppn
     * yields thread-count-independent campaigns. Null restores the
     * stochastic model.
     */
    using ReadErrorHook = std::function<std::uint32_t(std::uint64_t)>;
    void setReadErrorHook(ReadErrorHook hook)
    {
        readErrorHook_ = std::move(hook);
    }

    /**
     * Cross-check every structural invariant the FTL maintains: L2P /
     * P2L agreement, per-block valid counts, free-list membership,
     * active-block states, and bad blocks never being allocatable.
     * Mapping and counters update atomically within one event, so
     * this is callable at any event boundary.
     * @return true if consistent; otherwise false with @p why (if
     *         non-null) describing the first violation.
     */
    bool checkInvariants(std::string* why) const;

    /** @name Checkpointing (fault campaigns). Requires a quiesced FTL
     *  (no in-flight GC, no pending writes). */
    /** @{ */
    void saveState(ByteWriter& w) const;
    void loadState(ByteReader& r);
    /** @} */

    /** Erase-count spread across the device (static-WL health). */
    std::uint32_t wearSpread() const;

    /**
     * Test/bench scaffolding: map the first @p pages logical pages to
     * physical pages instantly (no simulated time), as if the device
     * had been sequentially filled.
     */
    void preconditionSequentialFill(std::uint64_t pages);

  private:
    struct WriteOp
    {
        std::uint64_t lpn;
        std::shared_ptr<std::vector<std::uint8_t>> data; ///< May be null.
        nvm::Callback done;
        span::Id span = 0; ///< Host request span riding this write.
    };

    /** Allocate the next physical page, or kUnmapped if out of space. */
    std::uint64_t allocatePage();
    /** Retire a grown-bad block (idempotent). */
    void markBlockBad(std::uint64_t block_no);
    /** Open a fresh active block for @p die_slot if possible. */
    bool openActiveBlock(std::size_t die_slot);
    void invalidate(std::uint64_t ppn);
    void startWrite(WriteOp op);
    void readAttempt(std::uint64_t ppn, std::uint8_t* buf,
                     std::uint32_t attempt, nvm::Callback done,
                     span::Id span);
    void maybeStartGc();
    void gcStep();
    void gcRelocate(std::uint64_t lpn,
                    std::shared_ptr<std::vector<std::uint8_t>> buf);
    void gcVictimDone();
    void finishGc();
    void drainPending();

    EventQueue& eq_;
    nvm::ZNand& nand_;
    FtlConfig cfg_;
    std::uint64_t logicalPages_;

    MappingTable map_;
    BadBlockManager bbm_;
    WearLeveler wl_;
    Ecc ecc_;
    ReadErrorHook readErrorHook_;

    std::vector<BlockMeta> blocks_;
    std::vector<std::uint64_t> freeBlocks_;
    /** One active block per die; kUnmapped when none open. */
    std::vector<std::uint64_t> activeBlocks_;
    std::size_t nextDieSlot_ = 0;

    /** GC's single outstanding continuation (one relocation at a
     *  time), scheduled in place. */
    EventFunctionWrapper gcStepEvent_;

    bool gcActive_ = false;
    std::uint64_t gcVictim_ = 0;
    std::uint32_t gcPageCursor_ = 0;
    std::uint64_t wearCheckTick_ = 0;

    std::deque<WriteOp> pendingWrites_;

    FtlStats stats_;
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_FTL_HH
