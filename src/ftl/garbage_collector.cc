// GarbageCollector is header-only.
#include "ftl/garbage_collector.hh"
