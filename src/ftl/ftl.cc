#include "ftl/ftl.hh"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/logging.hh"

namespace nvdimmc::ftl
{

namespace
{

/** Service time for a read of a never-written page (no media touch). */
constexpr Tick kUnmappedReadLatency = 200 * kNs;

} // namespace

Ftl::Ftl(EventQueue& eq, nvm::ZNand& nand, const FtlConfig& cfg)
    : eq_(eq),
      nand_(nand),
      cfg_(cfg),
      logicalPages_(static_cast<std::uint64_t>(
          static_cast<double>(nand.params().totalPages()) *
          cfg.exposedFraction)),
      map_(logicalPages_),
      bbm_(nand),
      wl_(nand, cfg.wearThreshold),
      ecc_(cfg.ecc),
      blocks_(nand.params().totalBlocks()),
      activeBlocks_(std::size_t{nand.params().channels} *
                        nand.params().diesPerChannel,
                    kUnmapped),
      gcStepEvent_([this] { gcStep(); }, "ftl-gc-step")
{
    NVDC_ASSERT(cfg.gcLowWaterBlocks < cfg.gcHighWaterBlocks,
                "GC watermarks inverted");
    freeBlocks_.reserve(blocks_.size());
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        if (!bbm_.isBad(b))
            freeBlocks_.push_back(b);
    }
    if (freeBlocks_.size() * nand.params().pagesPerBlock <
        logicalPages_ + cfg.gcHighWaterBlocks *
                            nand.params().pagesPerBlock) {
        fatal("Ftl: not enough good blocks for the exposed capacity");
    }
}

void
Ftl::preconditionSequentialFill(std::uint64_t pages)
{
    NVDC_ASSERT(pages <= logicalPages_, "precondition beyond capacity");
    for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
        std::uint64_t ppn = allocatePage();
        NVDC_ASSERT(ppn != kUnmapped, "precondition ran out of space");
        std::uint64_t old = map_.map(lpn, ppn);
        NVDC_ASSERT(old == kUnmapped, "preconditioning a mapped page");
        blocks_[nand_.flatBlockOfPage(ppn)].validCount += 1;
        nand_.preconditionProgrammed(ppn);
    }
}

std::uint32_t
Ftl::wearSpread() const
{
    std::uint32_t lo = ~std::uint32_t{0};
    std::uint32_t hi = 0;
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        if (bbm_.isBad(b))
            continue;
        std::uint32_t w = nand_.eraseCount(b);
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    return lo == ~std::uint32_t{0} ? 0 : hi - lo;
}

bool
Ftl::openActiveBlock(std::size_t die_slot)
{
    if (freeBlocks_.empty())
        return false;

    const auto& p = nand_.params();
    // Prefer a free block that actually lives on this die so the
    // round-robin write stream exploits die parallelism; fall back to
    // any block (wear-aware) otherwise.
    std::size_t chosen = freeBlocks_.size();
    std::uint32_t chosen_wear = ~std::uint32_t{0};
    for (std::size_t i = 0; i < freeBlocks_.size(); ++i) {
        std::uint64_t blk = freeBlocks_[i];
        nvm::NandAddr a =
            nand_.fromFlatPage(blk * p.pagesPerBlock);
        std::size_t die = std::size_t{a.channel} * p.diesPerChannel +
                          a.die;
        if (die != die_slot)
            continue;
        std::uint32_t w = nand_.eraseCount(blk);
        if (w < chosen_wear) {
            chosen_wear = w;
            chosen = i;
        }
    }
    if (chosen == freeBlocks_.size()) {
        auto any = wl_.pickFreeBlock(freeBlocks_);
        if (!any)
            return false;
        chosen = *any;
    }

    std::uint64_t blk = freeBlocks_[chosen];
    freeBlocks_.erase(freeBlocks_.begin() +
                      static_cast<std::ptrdiff_t>(chosen));
    BlockMeta& meta = blocks_[blk];
    NVDC_ASSERT(meta.state == BlockMeta::State::Free,
                "allocating a non-free block");
    meta.state = BlockMeta::State::Active;
    meta.writeCursor = 0;
    meta.validCount = 0;
    activeBlocks_[die_slot] = blk;
    return true;
}

std::uint64_t
Ftl::allocatePage()
{
    const auto& p = nand_.params();
    const std::size_t slots = activeBlocks_.size();
    for (std::size_t attempt = 0; attempt < slots; ++attempt) {
        std::size_t slot = nextDieSlot_;
        nextDieSlot_ = (nextDieSlot_ + 1) % slots;

        if (activeBlocks_[slot] == kUnmapped &&
            !openActiveBlock(slot)) {
            continue;
        }
        std::uint64_t blk = activeBlocks_[slot];
        BlockMeta& meta = blocks_[blk];
        std::uint64_t ppn =
            blk * p.pagesPerBlock + meta.writeCursor;
        meta.writeCursor += 1;
        if (meta.writeCursor == p.pagesPerBlock) {
            meta.state = BlockMeta::State::Full;
            activeBlocks_[slot] = kUnmapped;
        }
        return ppn;
    }
    return kUnmapped;
}

void
Ftl::invalidate(std::uint64_t ppn)
{
    BlockMeta& meta = blocks_[nand_.flatBlockOfPage(ppn)];
    NVDC_ASSERT(meta.validCount > 0, "invalidate underflow");
    meta.validCount -= 1;
}

void
Ftl::readPage(std::uint64_t page_no, std::uint8_t* buf,
              nvm::Callback done, span::Id span)
{
    NVDC_ASSERT(page_no < logicalPages_, "FTL read beyond capacity");
    stats_.userReads.inc();

    std::uint64_t ppn = map_.lookup(page_no);
    if (ppn == kUnmapped) {
        stats_.unmappedReads.inc();
        if (buf)
            std::memset(buf, 0, nvm::PageBackend::kPageBytes);
        if (span != 0) {
            // No NAND involved: the synthesized-zero service time is
            // pure mapping work.
            done = [this, span, cb = std::move(done)]() mutable {
                span::phase(span, span::Phase::FtlMap, eq_.now());
                cb();
            };
        }
        eq_.scheduleAfter(kUnmappedReadLatency, std::move(done));
        return;
    }
    readAttempt(ppn, buf, 0, std::move(done), span);
}

void
Ftl::readAttempt(std::uint64_t ppn, std::uint8_t* buf,
                 std::uint32_t attempt, nvm::Callback done,
                 span::Id span)
{
    nand_.readPage(ppn, buf,
                   [this, ppn, buf, attempt,
                    cb = std::move(done), span]() mutable {
        EccResult r = readErrorHook_
                          ? ecc_.decodeInjected(readErrorHook_(ppn))
                          : ecc_.decode();
        if (!r.correctable) {
            if (attempt < cfg_.readRetries) {
                stats_.readRetries.inc();
                readAttempt(ppn, buf, attempt + 1, std::move(cb),
                            span);
                return;
            }
            stats_.uncorrectableReads.inc();
            if (buf) {
                // Surface the failure as visibly corrupt data so an
                // integrity validator upstream cannot miss it: flip
                // the first 64 bytes. (The real device would signal
                // an ECC error; our PageBackend API has no status
                // channel yet.)
                for (std::size_t i = 0; i < 64; ++i)
                    buf[i] ^= 0xFF;
            }
        } else if (attempt > 0) {
            stats_.readRetrySuccesses.inc();
        }
        cb();
    }, span);
}

void
Ftl::writePage(std::uint64_t page_no, const std::uint8_t* data,
               nvm::Callback done, span::Id span)
{
    NVDC_ASSERT(page_no < logicalPages_, "FTL write beyond capacity");
    stats_.userWrites.inc();

    WriteOp op;
    op.lpn = page_no;
    if (data) {
        op.data = std::make_shared<std::vector<std::uint8_t>>(
            data, data + nvm::PageBackend::kPageBytes);
    }
    op.done = std::move(done);
    op.span = span;

    maybeStartGc();
    startWrite(std::move(op));
}

void
Ftl::startWrite(WriteOp op)
{
    std::uint64_t ppn = allocatePage();
    if (ppn == kUnmapped) {
        pendingWrites_.push_back(std::move(op));
        maybeStartGc();
        return;
    }

    std::uint64_t old = map_.map(op.lpn, ppn);
    if (old != kUnmapped)
        invalidate(old);
    blocks_[nand_.flatBlockOfPage(ppn)].validCount += 1;

    auto data_ptr = op.data ? op.data->data() : nullptr;
    auto retry = std::make_shared<WriteOp>(std::move(op));
    span::Id op_span = retry->span;
    nand_.programPage(ppn, data_ptr, [this, ppn, retry] {
        if (nand_.lastProgramFailed()) {
            // Grown defect: retire the whole block. Its other live
            // pages are rescued by the collector (Retired blocks with
            // valid data stay GC-visible); the failed write itself
            // retries on a different block right away. The retried
            // write's map() returns ppn as the old mapping and
            // invalidates it exactly once.
            markBlockBad(nand_.flatBlockOfPage(ppn));
            WriteOp again;
            again.lpn = retry->lpn;
            again.data = retry->data;
            again.done = std::move(retry->done);
            again.span = retry->span;
            startWrite(std::move(again));
            return;
        }
        if (retry->done)
            retry->done();
    }, op_span);
}

void
Ftl::markBlockBad(std::uint64_t block_no)
{
    if (bbm_.isBad(block_no))
        return; // A second failure on an already-retired block.
    stats_.grownBadBlocks.inc();
    bbm_.retire(block_no);
    warn("Ftl: retiring grown-bad block ", block_no);

    // The block can no longer be an allocation target, and it never
    // rejoins the free pool: Retired is terminal. GC still scavenges
    // it while validCount > 0 but will not erase or free it.
    for (std::size_t slot = 0; slot < activeBlocks_.size(); ++slot) {
        if (activeBlocks_[slot] == block_no)
            activeBlocks_[slot] = kUnmapped;
    }
    for (std::size_t i = 0; i < freeBlocks_.size(); ++i) {
        if (freeBlocks_[i] == block_no) {
            freeBlocks_.erase(freeBlocks_.begin() +
                              static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    blocks_[block_no].state = BlockMeta::State::Retired;
}

void
Ftl::maybeStartGc()
{
    if (gcActive_)
        return;
    if (freeBlocks_.size() < cfg_.gcLowWaterBlocks) {
        auto victim = GarbageCollector::pickVictim(blocks_);
        if (!victim)
            return;
        gcVictim_ = *victim;
    } else {
        // Static wear leveling: even with plenty of free space,
        // recycle a cold block once the wear spread gets too wide.
        // The scan is O(blocks), so only run it occasionally.
        if (++wearCheckTick_ % 256 != 0)
            return;
        std::vector<std::uint64_t> fulls;
        for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
            if (blocks_[b].state == BlockMeta::State::Full)
                fulls.push_back(b);
        }
        auto cold = wl_.pickColdBlock(fulls);
        if (!cold)
            return;
        gcVictim_ = *cold;
    }
    gcActive_ = true;
    gcPageCursor_ = 0;
    stats_.gcRuns.inc();
    eq_.scheduleAfter(gcStepEvent_, 0);
}

void
Ftl::gcStep()
{
    const auto& p = nand_.params();

    // Find the next still-valid page in the victim block.
    while (gcPageCursor_ < p.pagesPerBlock) {
        std::uint64_t ppn =
            gcVictim_ * p.pagesPerBlock + gcPageCursor_;
        std::uint64_t lpn = map_.reverseLookup(ppn);
        if (lpn != kUnmapped) {
            // Relocate: read, then (if the mapping is still current)
            // program elsewhere.
            auto buf = std::make_shared<std::vector<std::uint8_t>>(
                nvm::PageBackend::kPageBytes);
            gcPageCursor_ += 1;
            nand_.readPage(ppn, buf->data(), [this, ppn, lpn, buf] {
                if (map_.lookup(lpn) != ppn) {
                    // Overwritten by the user mid-GC; nothing to move.
                    gcStep();
                    return;
                }
                gcRelocate(lpn, buf);
            });
            return;
        }
        gcPageCursor_ += 1;
    }

    // All live data moved. A block that was retired (by a program
    // failure here or on the user path) must never be erased or
    // refreed — its data is rescued, and that is all.
    if (blocks_[gcVictim_].state == BlockMeta::State::Retired) {
        NVDC_ASSERT(blocks_[gcVictim_].validCount == 0,
                    "retired GC victim still holds live data");
        gcVictimDone();
        return;
    }
    nand_.eraseBlock(gcVictim_, [this] {
        BlockMeta& meta = blocks_[gcVictim_];
        NVDC_ASSERT(meta.validCount == 0,
                    "erasing block with live data");
        NVDC_ASSERT(!bbm_.isBad(gcVictim_),
                    "erased a retired block");
        meta.state = BlockMeta::State::Free;
        meta.writeCursor = 0;
        freeBlocks_.push_back(gcVictim_);
        stats_.gcErases.inc();
        gcVictimDone();
    });
}

void
Ftl::gcRelocate(std::uint64_t lpn,
                std::shared_ptr<std::vector<std::uint8_t>> buf)
{
    std::uint64_t dst = allocatePage();
    if (dst == kUnmapped) {
        // Out of space mid-GC: should be impossible with sane
        // watermarks.
        panic("Ftl: GC starved of free pages");
    }
    std::uint64_t old = map_.map(lpn, dst);
    if (old != kUnmapped)
        invalidate(old);
    blocks_[nand_.flatBlockOfPage(dst)].validCount += 1;
    stats_.gcRelocations.inc();
    nand_.programPage(dst, buf->data(), [this, lpn, dst, buf] {
        if (nand_.lastProgramFailed()) {
            // The relocation target grew a defect: the mapping points
            // at a page whose program never landed. Retire the target
            // block and move the data again — unless the user
            // overwrote the lpn while the program was in flight, in
            // which case their newer copy wins and there is nothing
            // left to rescue.
            markBlockBad(nand_.flatBlockOfPage(dst));
            if (map_.lookup(lpn) == dst) {
                gcRelocate(lpn, buf);
                return;
            }
        }
        gcStep();
    });
}

void
Ftl::gcVictimDone()
{
    if (freeBlocks_.size() < cfg_.gcHighWaterBlocks) {
        auto victim = GarbageCollector::pickVictim(blocks_);
        if (victim) {
            gcVictim_ = *victim;
            gcPageCursor_ = 0;
            eq_.scheduleAfter(gcStepEvent_, 0);
            return;
        }
    }
    finishGc();
}

void
Ftl::finishGc()
{
    gcActive_ = false;
    drainPending();
}

void
Ftl::drainPending()
{
    while (!pendingWrites_.empty()) {
        std::size_t before = pendingWrites_.size();
        WriteOp op = std::move(pendingWrites_.front());
        pendingWrites_.pop_front();
        startWrite(std::move(op));
        if (pendingWrites_.size() >= before) {
            // The op was re-queued: still out of space; wait for the
            // next GC round (startWrite already kicked one).
            return;
        }
    }
}

bool
Ftl::checkInvariants(std::string* why) const
{
    auto fail = [why](std::string msg) {
        if (why)
            *why = std::move(msg);
        return false;
    };
    const auto& p = nand_.params();

    // L2P / P2L agreement and per-block valid counts recomputed from
    // scratch.
    std::vector<std::uint32_t> live(blocks_.size(), 0);
    for (std::uint64_t lpn = 0; lpn < map_.logicalPages(); ++lpn) {
        std::uint64_t ppn = map_.lookup(lpn);
        if (ppn == kUnmapped)
            continue;
        if (ppn >= p.totalPages())
            return fail("lpn " + std::to_string(lpn) +
                        " maps beyond the device");
        if (map_.reverseLookup(ppn) != lpn)
            return fail("p2l disagrees with l2p for lpn " +
                        std::to_string(lpn));
        live[nand_.flatBlockOfPage(ppn)] += 1;
    }
    if (map_.mappedCount() !=
        std::accumulate(live.begin(), live.end(), std::uint64_t{0}))
        return fail("p2l has entries l2p does not");

    std::vector<bool> in_free(blocks_.size(), false);
    for (std::uint64_t b : freeBlocks_) {
        if (in_free[b])
            return fail("block " + std::to_string(b) +
                        " is in the free list twice");
        in_free[b] = true;
        if (blocks_[b].state != BlockMeta::State::Free)
            return fail("free-listed block " + std::to_string(b) +
                        " is not Free");
        if (bbm_.isBad(b))
            return fail("bad block " + std::to_string(b) +
                        " is free-listed");
    }
    for (std::uint64_t b : activeBlocks_) {
        if (b == kUnmapped)
            continue;
        if (blocks_[b].state != BlockMeta::State::Active)
            return fail("active-slot block " + std::to_string(b) +
                        " is not Active");
        if (bbm_.isBad(b))
            return fail("bad block " + std::to_string(b) +
                        " is an allocation target");
    }
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        if (blocks_[b].validCount != live[b])
            return fail("block " + std::to_string(b) +
                        " validCount " +
                        std::to_string(blocks_[b].validCount) +
                        " != live mappings " +
                        std::to_string(live[b]));
        // Factory-bad blocks keep the default Free state but are
        // never free-listed; grown-bad ones are Retired.
        if (blocks_[b].state == BlockMeta::State::Free &&
            !in_free[b] && !bbm_.isBad(b))
            return fail("Free block " + std::to_string(b) +
                        " missing from the free list");
    }
    return true;
}

namespace
{

constexpr std::uint32_t kFtlStateTag = 0x314c5446; // "FTL1"

} // namespace

void
Ftl::saveState(ByteWriter& w) const
{
    NVDC_ASSERT(!gcActive_ && pendingWrites_.empty(),
                "checkpointing a non-quiesced FTL");
    w.tag(kFtlStateTag);
    map_.saveState(w);
    bbm_.saveState(w);
    w.u64(blocks_.size());
    for (const BlockMeta& m : blocks_) {
        w.u8(static_cast<std::uint8_t>(m.state));
        w.u32(m.validCount);
        w.u32(m.writeCursor);
    }
    w.u64(freeBlocks_.size());
    for (std::uint64_t b : freeBlocks_)
        w.u64(b);
    w.u64(activeBlocks_.size());
    for (std::uint64_t b : activeBlocks_)
        w.u64(b);
    w.u64(nextDieSlot_);
    w.u64(wearCheckTick_);
}

void
Ftl::loadState(ByteReader& r)
{
    NVDC_ASSERT(!gcActive_ && pendingWrites_.empty(),
                "restoring over a non-quiesced FTL");
    r.expectTag(kFtlStateTag);
    map_.loadState(r);
    bbm_.loadState(r);
    std::uint64_t nblocks = r.u64();
    if (nblocks != blocks_.size())
        fatal("Ftl checkpoint block-count mismatch: saved ", nblocks,
              ", device has ", blocks_.size());
    for (BlockMeta& m : blocks_) {
        m.state = static_cast<BlockMeta::State>(r.u8());
        m.validCount = r.u32();
        m.writeCursor = r.u32();
    }
    freeBlocks_.resize(r.u64());
    for (std::uint64_t& b : freeBlocks_)
        b = r.u64();
    std::uint64_t nactive = r.u64();
    if (nactive != activeBlocks_.size())
        fatal("Ftl checkpoint die-slot mismatch");
    for (std::uint64_t& b : activeBlocks_)
        b = r.u64();
    nextDieSlot_ = r.u64();
    wearCheckTick_ = r.u64();
}

void
Ftl::registerStats(StatRegistry& reg, const std::string& prefix) const
{
    reg.addCounter(prefix + ".user_reads", stats_.userReads);
    reg.addCounter(prefix + ".user_writes", stats_.userWrites);
    reg.addCounter(prefix + ".gc_runs", stats_.gcRuns);
    reg.addCounter(prefix + ".gc_relocations", stats_.gcRelocations);
    reg.addCounter(prefix + ".gc_erases", stats_.gcErases);
    reg.addCounter(prefix + ".unmapped_reads", stats_.unmappedReads);
    reg.addCounter(prefix + ".uncorrectable_reads",
                   stats_.uncorrectableReads);
    reg.addCounter(prefix + ".read_retries", stats_.readRetries);
    reg.addCounter(prefix + ".read_retry_successes",
                   stats_.readRetrySuccesses);
    reg.addCounter(prefix + ".grown_bad_blocks",
                   stats_.grownBadBlocks);
    reg.add(prefix + ".write_amplification",
            [this] { return stats_.writeAmplification(); });
}

} // namespace nvdimmc::ftl
