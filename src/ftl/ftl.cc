#include "ftl/ftl.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace nvdimmc::ftl
{

namespace
{

/** Service time for a read of a never-written page (no media touch). */
constexpr Tick kUnmappedReadLatency = 200 * kNs;

} // namespace

Ftl::Ftl(EventQueue& eq, nvm::ZNand& nand, const FtlConfig& cfg)
    : eq_(eq),
      nand_(nand),
      cfg_(cfg),
      logicalPages_(static_cast<std::uint64_t>(
          static_cast<double>(nand.params().totalPages()) *
          cfg.exposedFraction)),
      map_(logicalPages_),
      bbm_(nand),
      wl_(nand, cfg.wearThreshold),
      ecc_(cfg.ecc),
      blocks_(nand.params().totalBlocks()),
      activeBlocks_(std::size_t{nand.params().channels} *
                        nand.params().diesPerChannel,
                    kUnmapped),
      gcStepEvent_([this] { gcStep(); }, "ftl-gc-step")
{
    NVDC_ASSERT(cfg.gcLowWaterBlocks < cfg.gcHighWaterBlocks,
                "GC watermarks inverted");
    freeBlocks_.reserve(blocks_.size());
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        if (!bbm_.isBad(b))
            freeBlocks_.push_back(b);
    }
    if (freeBlocks_.size() * nand.params().pagesPerBlock <
        logicalPages_ + cfg.gcHighWaterBlocks *
                            nand.params().pagesPerBlock) {
        fatal("Ftl: not enough good blocks for the exposed capacity");
    }
}

void
Ftl::preconditionSequentialFill(std::uint64_t pages)
{
    NVDC_ASSERT(pages <= logicalPages_, "precondition beyond capacity");
    for (std::uint64_t lpn = 0; lpn < pages; ++lpn) {
        std::uint64_t ppn = allocatePage();
        NVDC_ASSERT(ppn != kUnmapped, "precondition ran out of space");
        std::uint64_t old = map_.map(lpn, ppn);
        NVDC_ASSERT(old == kUnmapped, "preconditioning a mapped page");
        blocks_[nand_.flatBlockOfPage(ppn)].validCount += 1;
        nand_.preconditionProgrammed(ppn);
    }
}

std::uint32_t
Ftl::wearSpread() const
{
    std::uint32_t lo = ~std::uint32_t{0};
    std::uint32_t hi = 0;
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        if (bbm_.isBad(b))
            continue;
        std::uint32_t w = nand_.eraseCount(b);
        lo = std::min(lo, w);
        hi = std::max(hi, w);
    }
    return lo == ~std::uint32_t{0} ? 0 : hi - lo;
}

bool
Ftl::openActiveBlock(std::size_t die_slot)
{
    if (freeBlocks_.empty())
        return false;

    const auto& p = nand_.params();
    // Prefer a free block that actually lives on this die so the
    // round-robin write stream exploits die parallelism; fall back to
    // any block (wear-aware) otherwise.
    std::size_t chosen = freeBlocks_.size();
    std::uint32_t chosen_wear = ~std::uint32_t{0};
    for (std::size_t i = 0; i < freeBlocks_.size(); ++i) {
        std::uint64_t blk = freeBlocks_[i];
        nvm::NandAddr a =
            nand_.fromFlatPage(blk * p.pagesPerBlock);
        std::size_t die = std::size_t{a.channel} * p.diesPerChannel +
                          a.die;
        if (die != die_slot)
            continue;
        std::uint32_t w = nand_.eraseCount(blk);
        if (w < chosen_wear) {
            chosen_wear = w;
            chosen = i;
        }
    }
    if (chosen == freeBlocks_.size()) {
        auto any = wl_.pickFreeBlock(freeBlocks_);
        if (!any)
            return false;
        chosen = *any;
    }

    std::uint64_t blk = freeBlocks_[chosen];
    freeBlocks_.erase(freeBlocks_.begin() +
                      static_cast<std::ptrdiff_t>(chosen));
    BlockMeta& meta = blocks_[blk];
    NVDC_ASSERT(meta.state == BlockMeta::State::Free,
                "allocating a non-free block");
    meta.state = BlockMeta::State::Active;
    meta.writeCursor = 0;
    meta.validCount = 0;
    activeBlocks_[die_slot] = blk;
    return true;
}

std::uint64_t
Ftl::allocatePage()
{
    const auto& p = nand_.params();
    const std::size_t slots = activeBlocks_.size();
    for (std::size_t attempt = 0; attempt < slots; ++attempt) {
        std::size_t slot = nextDieSlot_;
        nextDieSlot_ = (nextDieSlot_ + 1) % slots;

        if (activeBlocks_[slot] == kUnmapped &&
            !openActiveBlock(slot)) {
            continue;
        }
        std::uint64_t blk = activeBlocks_[slot];
        BlockMeta& meta = blocks_[blk];
        std::uint64_t ppn =
            blk * p.pagesPerBlock + meta.writeCursor;
        meta.writeCursor += 1;
        if (meta.writeCursor == p.pagesPerBlock) {
            meta.state = BlockMeta::State::Full;
            activeBlocks_[slot] = kUnmapped;
        }
        return ppn;
    }
    return kUnmapped;
}

void
Ftl::invalidate(std::uint64_t ppn)
{
    BlockMeta& meta = blocks_[nand_.flatBlockOfPage(ppn)];
    NVDC_ASSERT(meta.validCount > 0, "invalidate underflow");
    meta.validCount -= 1;
}

void
Ftl::readPage(std::uint64_t page_no, std::uint8_t* buf,
              nvm::Callback done, span::Id span)
{
    NVDC_ASSERT(page_no < logicalPages_, "FTL read beyond capacity");
    stats_.userReads.inc();

    std::uint64_t ppn = map_.lookup(page_no);
    if (ppn == kUnmapped) {
        stats_.unmappedReads.inc();
        if (buf)
            std::memset(buf, 0, nvm::PageBackend::kPageBytes);
        if (span != 0) {
            // No NAND involved: the synthesized-zero service time is
            // pure mapping work.
            done = [this, span, cb = std::move(done)]() mutable {
                span::phase(span, span::Phase::FtlMap, eq_.now());
                cb();
            };
        }
        eq_.scheduleAfter(kUnmappedReadLatency, std::move(done));
        return;
    }
    nand_.readPage(ppn, buf, [this, cb = std::move(done)] {
        EccResult r = ecc_.decode();
        if (!r.correctable)
            stats_.uncorrectableReads.inc();
        cb();
    }, span);
}

void
Ftl::writePage(std::uint64_t page_no, const std::uint8_t* data,
               nvm::Callback done, span::Id span)
{
    NVDC_ASSERT(page_no < logicalPages_, "FTL write beyond capacity");
    stats_.userWrites.inc();

    WriteOp op;
    op.lpn = page_no;
    if (data) {
        op.data = std::make_shared<std::vector<std::uint8_t>>(
            data, data + nvm::PageBackend::kPageBytes);
    }
    op.done = std::move(done);
    op.span = span;

    maybeStartGc();
    startWrite(std::move(op));
}

void
Ftl::startWrite(WriteOp op)
{
    std::uint64_t ppn = allocatePage();
    if (ppn == kUnmapped) {
        pendingWrites_.push_back(std::move(op));
        maybeStartGc();
        return;
    }

    std::uint64_t old = map_.map(op.lpn, ppn);
    if (old != kUnmapped)
        invalidate(old);
    blocks_[nand_.flatBlockOfPage(ppn)].validCount += 1;

    auto data_ptr = op.data ? op.data->data() : nullptr;
    auto retry = std::make_shared<WriteOp>(std::move(op));
    span::Id op_span = retry->span;
    nand_.programPage(ppn, data_ptr, [this, ppn, retry] {
        if (nand_.lastProgramFailed()) {
            // Grown defect: retire the whole block. Its other live
            // pages are rescued by an immediate GC-style relocation
            // the next time the collector runs; the failed write
            // itself retries on a different block right away.
            std::uint64_t blk = nand_.flatBlockOfPage(ppn);
            retireBlock(blk, ppn, *retry);
            return;
        }
        if (retry->done)
            retry->done();
    }, op_span);
}

void
Ftl::retireBlock(std::uint64_t block_no, std::uint64_t failed_ppn,
                 WriteOp& op)
{
    stats_.grownBadBlocks.inc();
    bbm_.retire(block_no);
    warn("Ftl: retiring grown-bad block ", block_no);

    // The failed page's mapping is corrected by the retried write
    // below: its map() returns failed_ppn as the old mapping and
    // invalidates it exactly once.
    (void)failed_ppn;

    // The block can no longer be an allocation target.
    for (std::size_t slot = 0; slot < activeBlocks_.size(); ++slot) {
        if (activeBlocks_[slot] == block_no)
            activeBlocks_[slot] = kUnmapped;
    }
    for (std::size_t i = 0; i < freeBlocks_.size(); ++i) {
        if (freeBlocks_[i] == block_no) {
            freeBlocks_.erase(freeBlocks_.begin() +
                              static_cast<std::ptrdiff_t>(i));
            break;
        }
    }
    blocks_[block_no].state = BlockMeta::State::Full; // Park it.

    // Retry the user write on healthy media.
    WriteOp again;
    again.lpn = op.lpn;
    again.data = op.data;
    again.done = std::move(op.done);
    again.span = op.span;
    startWrite(std::move(again));
}

void
Ftl::maybeStartGc()
{
    if (gcActive_)
        return;
    if (freeBlocks_.size() < cfg_.gcLowWaterBlocks) {
        auto victim = GarbageCollector::pickVictim(blocks_);
        if (!victim)
            return;
        gcVictim_ = *victim;
    } else {
        // Static wear leveling: even with plenty of free space,
        // recycle a cold block once the wear spread gets too wide.
        // The scan is O(blocks), so only run it occasionally.
        if (++wearCheckTick_ % 256 != 0)
            return;
        std::vector<std::uint64_t> fulls;
        for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
            if (blocks_[b].state == BlockMeta::State::Full)
                fulls.push_back(b);
        }
        auto cold = wl_.pickColdBlock(fulls);
        if (!cold)
            return;
        gcVictim_ = *cold;
    }
    gcActive_ = true;
    gcPageCursor_ = 0;
    stats_.gcRuns.inc();
    eq_.scheduleAfter(gcStepEvent_, 0);
}

void
Ftl::gcStep()
{
    const auto& p = nand_.params();

    // Find the next still-valid page in the victim block.
    while (gcPageCursor_ < p.pagesPerBlock) {
        std::uint64_t ppn =
            gcVictim_ * p.pagesPerBlock + gcPageCursor_;
        std::uint64_t lpn = map_.reverseLookup(ppn);
        if (lpn != kUnmapped) {
            // Relocate: read, then (if the mapping is still current)
            // program elsewhere.
            auto buf = std::make_shared<std::vector<std::uint8_t>>(
                nvm::PageBackend::kPageBytes);
            gcPageCursor_ += 1;
            nand_.readPage(ppn, buf->data(), [this, ppn, lpn, buf] {
                if (map_.lookup(lpn) != ppn) {
                    // Overwritten by the user mid-GC; nothing to move.
                    gcStep();
                    return;
                }
                std::uint64_t dst = allocatePage();
                if (dst == kUnmapped) {
                    // Out of space mid-GC: should be impossible with
                    // sane watermarks.
                    panic("Ftl: GC starved of free pages");
                }
                std::uint64_t old = map_.map(lpn, dst);
                NVDC_ASSERT(old == ppn, "GC mapping raced");
                invalidate(old);
                blocks_[nand_.flatBlockOfPage(dst)].validCount += 1;
                stats_.gcRelocations.inc();
                nand_.programPage(dst, buf->data(),
                                  [this] { gcStep(); });
            });
            return;
        }
        gcPageCursor_ += 1;
    }

    // All live data moved; erase and reclaim.
    nand_.eraseBlock(gcVictim_, [this] {
        BlockMeta& meta = blocks_[gcVictim_];
        NVDC_ASSERT(meta.validCount == 0,
                    "erasing block with live data");
        meta.state = BlockMeta::State::Free;
        meta.writeCursor = 0;
        freeBlocks_.push_back(gcVictim_);
        stats_.gcErases.inc();

        if (freeBlocks_.size() < cfg_.gcHighWaterBlocks) {
            auto victim = GarbageCollector::pickVictim(blocks_);
            if (victim) {
                gcVictim_ = *victim;
                gcPageCursor_ = 0;
                eq_.scheduleAfter(gcStepEvent_, 0);
                return;
            }
        }
        finishGc();
    });
}

void
Ftl::finishGc()
{
    gcActive_ = false;
    drainPending();
}

void
Ftl::drainPending()
{
    while (!pendingWrites_.empty()) {
        std::size_t before = pendingWrites_.size();
        WriteOp op = std::move(pendingWrites_.front());
        pendingWrites_.pop_front();
        startWrite(std::move(op));
        if (pendingWrites_.size() >= before) {
            // The op was re-queued: still out of space; wait for the
            // next GC round (startWrite already kicked one).
            return;
        }
    }
}

void
Ftl::registerStats(StatRegistry& reg, const std::string& prefix) const
{
    reg.addCounter(prefix + ".user_reads", stats_.userReads);
    reg.addCounter(prefix + ".user_writes", stats_.userWrites);
    reg.addCounter(prefix + ".gc_runs", stats_.gcRuns);
    reg.addCounter(prefix + ".gc_relocations", stats_.gcRelocations);
    reg.addCounter(prefix + ".gc_erases", stats_.gcErases);
    reg.addCounter(prefix + ".unmapped_reads", stats_.unmappedReads);
    reg.addCounter(prefix + ".uncorrectable_reads",
                   stats_.uncorrectableReads);
    reg.addCounter(prefix + ".grown_bad_blocks",
                   stats_.grownBadBlocks);
    reg.add(prefix + ".write_amplification",
            [this] { return stats_.writeAmplification(); });
}

} // namespace nvdimmc::ftl
