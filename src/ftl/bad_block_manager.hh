/**
 * @file
 * Bad-block management: factory-marked bad blocks are excluded from
 * the allocatable pool, and blocks that grow bad at runtime (e.g. an
 * erase failure) are retired.
 */

#ifndef NVDIMMC_FTL_BAD_BLOCK_MANAGER_HH
#define NVDIMMC_FTL_BAD_BLOCK_MANAGER_HH

#include <cstdint>
#include <unordered_set>

#include "nvm/znand.hh"

namespace nvdimmc::ftl
{

/** Tracks unusable blocks. */
class BadBlockManager
{
  public:
    /** Import the factory bad-block list from the device. */
    explicit BadBlockManager(const nvm::ZNand& nand)
    {
        for (std::uint64_t b = 0; b < nand.params().totalBlocks(); ++b) {
            if (nand.isBadBlock(b))
                bad_.insert(b);
        }
    }

    bool isBad(std::uint64_t block_no) const
    {
        return bad_.count(block_no) != 0;
    }

    /** Retire a grown-bad block. */
    void retire(std::uint64_t block_no) { bad_.insert(block_no); }

    std::size_t badCount() const { return bad_.size(); }

  private:
    std::unordered_set<std::uint64_t> bad_;
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_BAD_BLOCK_MANAGER_HH
