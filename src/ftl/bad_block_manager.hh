/**
 * @file
 * Bad-block management: factory-marked bad blocks are excluded from
 * the allocatable pool, and blocks that grow bad at runtime (e.g. an
 * erase failure) are retired.
 */

#ifndef NVDIMMC_FTL_BAD_BLOCK_MANAGER_HH
#define NVDIMMC_FTL_BAD_BLOCK_MANAGER_HH

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/serialize.hh"
#include "nvm/znand.hh"

namespace nvdimmc::ftl
{

/** Tracks unusable blocks. */
class BadBlockManager
{
  public:
    /** Import the factory bad-block list from the device. */
    explicit BadBlockManager(const nvm::ZNand& nand)
    {
        for (std::uint64_t b = 0; b < nand.params().totalBlocks(); ++b) {
            if (nand.isBadBlock(b))
                bad_.insert(b);
        }
    }

    bool isBad(std::uint64_t block_no) const
    {
        return bad_.count(block_no) != 0;
    }

    /** Retire a grown-bad block. */
    void retire(std::uint64_t block_no) { bad_.insert(block_no); }

    std::size_t badCount() const { return bad_.size(); }

    /** @name Checkpointing (fault campaigns). */
    /** @{ */
    void
    saveState(ByteWriter& w) const
    {
        w.tag(0x314d4242); // "BBM1"
        std::vector<std::uint64_t> sorted(bad_.begin(), bad_.end());
        std::sort(sorted.begin(), sorted.end());
        w.u64(sorted.size());
        for (std::uint64_t b : sorted)
            w.u64(b);
    }

    void
    loadState(ByteReader& r)
    {
        r.expectTag(0x314d4242);
        bad_.clear();
        std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            bad_.insert(r.u64());
    }
    /** @} */

  private:
    std::unordered_set<std::uint64_t> bad_;
};

} // namespace nvdimmc::ftl

#endif // NVDIMMC_FTL_BAD_BLOCK_MANAGER_HH
