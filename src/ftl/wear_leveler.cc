// WearLeveler is header-only.
#include "ftl/wear_leveler.hh"
