/**
 * @file
 * Closed-loop worker thread: runs one operation after another (as an
 * FIO job with iodepth 1 does) and collects latency/throughput
 * statistics. Thread count in an experiment = number of WorkerThread
 * instances (the paper's 24-core host never starves 16 threads for
 * CPU, so cores are not separately modelled).
 */

#ifndef NVDIMMC_CPU_THREAD_HH
#define NVDIMMC_CPU_THREAD_HH

#include <functional>
#include <string>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace nvdimmc::cpu
{

/** The worker. */
class WorkerThread
{
  public:
    /** One operation; must eventually call the completion callback
     *  exactly once with the number of bytes it moved. */
    using OpFn =
        std::function<void(std::function<void(std::uint64_t bytes)>)>;

    WorkerThread(EventQueue& eq, std::string name, OpFn op);

    /** Begin looping at the current tick. */
    void start();

    /** Finish the in-flight op, then halt. */
    void stop() { stopping_ = true; }

    bool running() const { return running_; }
    const std::string& name() const { return name_; }

    std::uint64_t opsCompleted() const { return meter_.ops(); }
    std::uint64_t bytesMoved() const { return meter_.bytes(); }
    const Histogram& opLatency() const { return latency_; }
    const ThroughputMeter& meter() const { return meter_; }

    /** Reset statistics (e.g. after a warm-up phase). */
    void resetStats()
    {
        meter_.reset();
        latency_.reset();
    }

  private:
    void runOne();

    EventQueue& eq_;
    std::string name_;
    OpFn op_;
    /** The closed loop's single outstanding "issue next op" event. */
    EventFunctionWrapper nextOpEvent_;
    bool running_ = false;
    bool stopping_ = false;
    Tick opStart_ = 0;

    ThroughputMeter meter_;
    Histogram latency_;
};

} // namespace nvdimmc::cpu

#endif // NVDIMMC_CPU_THREAD_HH
