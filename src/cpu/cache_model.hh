/**
 * @file
 * CPU cache model for the DAX region.
 *
 * Tracks 64 B lines the CPU holds (with data and dirty state) so the
 * paper's coherence hazards (§V-B) are real in the simulation:
 *
 *  - If the driver skips invalidation after a cachefill, subsequent
 *    loads hit a *stale* cached copy instead of the FPGA's new data.
 *  - If a dirty line is not flushed before a writeback command, the
 *    FPGA reads the old bytes from DRAM and persists stale data.
 *
 * Loads miss to the iMC and allocate clean lines; stores are
 * write-allocate and leave the line dirty until clflush (which writes
 * it back through the iMC) — or until capacity eviction, which also
 * writes it back at an arbitrary time, exactly the hazard the driver
 * discipline must tolerate. Non-temporal stores (the libpmem write
 * path) bypass the cache entirely.
 */

#ifndef NVDIMMC_CPU_CACHE_MODEL_HH
#define NVDIMMC_CPU_CACHE_MODEL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "imc/host_port.hh"
#include "imc/imc.hh"

namespace nvdimmc::cpu
{

using Callback = std::function<void()>;

/** Cache statistics. */
struct CacheStats
{
    Counter loadHits;
    Counter loadMisses;
    Counter stores;
    Counter ntStores;
    Counter flushes;
    Counter flushWritebacks;
    Counter invalidations;
    Counter capacityEvictions;
};

/** The LLC-ish cache model. */
class CpuCacheModel
{
  public:
    struct Params
    {
        /** Line capacity (Platinum 8168: 33 MB LLC ~= 512 Ki lines). */
        std::size_t capacityLines = 512 * 1024;
        Tick hitLatency = 15 * kNs;
        /** Software cost of one clflush instruction. */
        Tick flushCost = 30 * kNs;
    };

    /** Single-channel convenience: wraps @p imc in an owned port. */
    CpuCacheModel(EventQueue& eq, imc::Imc& imc, const Params& p);

    /** Multi-channel: lines route through @p port's interleave map. */
    CpuCacheModel(EventQueue& eq, imc::HostPort& port, const Params& p);

    /** Load one 64 B line (through the cache). */
    void load(Addr addr, std::uint8_t* buf, Callback done);

    /** Store one 64 B line (write-allocate, stays dirty). */
    void store(Addr addr, const std::uint8_t* data, Callback done);

    /** Non-temporal store: straight to the iMC, no allocation. The
     *  cached copy (if any) is updated so the model stays coherent
     *  with itself. @return false if the iMC WPQ is full. */
    bool storeNt(Addr addr, const std::uint8_t* data, Callback done);

    /** clflush: write back if dirty, then drop the line. */
    void clflush(Addr addr, Callback done);

    /** Drop a line without writeback (test hook / invd modelling). */
    void invalidate(Addr addr);

    /** @name Test introspection. */
    /** @{ */
    bool contains(Addr addr) const;
    bool isDirty(Addr addr) const;
    std::size_t residentLines() const { return lines_.size(); }
    /** @} */

    const CacheStats& stats() const { return stats_; }

    /** Register live counters under @p prefix (e.g. "cpu.load_hits")
     *  plus the derived resident-line occupancy. */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

  private:
    struct Line
    {
        std::array<std::uint8_t, 64> data{};
        bool dirty = false;
    };

    static Addr lineOf(Addr addr) { return addr & ~Addr{63}; }
    void maybeEvictOne();

    EventQueue& eq_;
    /** Owned identity port for the single-iMC constructor. */
    std::unique_ptr<imc::HostPort> ownedPort_;
    imc::HostPort& port_;
    Params params_;
    std::unordered_map<Addr, Line> lines_;
    CacheStats stats_;
};

} // namespace nvdimmc::cpu

#endif // NVDIMMC_CPU_CACHE_MODEL_HH
