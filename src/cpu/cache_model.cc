#include "cpu/cache_model.hh"

#include <cstring>
#include <memory>

#include "common/logging.hh"

namespace nvdimmc::cpu
{

CpuCacheModel::CpuCacheModel(EventQueue& eq, imc::Imc& imc,
                             const Params& p)
    : eq_(eq),
      ownedPort_(std::make_unique<imc::HostPort>(imc)),
      port_(*ownedPort_),
      params_(p)
{
}

CpuCacheModel::CpuCacheModel(EventQueue& eq, imc::HostPort& port,
                             const Params& p)
    : eq_(eq), port_(port), params_(p)
{
}

void
CpuCacheModel::maybeEvictOne()
{
    if (lines_.size() < params_.capacityLines)
        return;
    // Hash-order eviction approximates random replacement; dirty
    // victims write back at this arbitrary moment (the hazard the
    // driver discipline must survive).
    auto it = lines_.begin();
    stats_.capacityEvictions.inc();
    if (it->second.dirty) {
        Addr victim = it->first;
        auto data = it->second.data;
        if (!port_.writeLine(victim, data.data(), nullptr)) {
            port_.whenSpace(victim, [this, victim, data] {
                port_.writeLine(victim, data.data(), nullptr);
            });
        }
    }
    lines_.erase(it);
}

void
CpuCacheModel::load(Addr addr, std::uint8_t* buf, Callback done)
{
    Addr line_addr = lineOf(addr);
    auto it = lines_.find(line_addr);
    if (it != lines_.end()) {
        stats_.loadHits.inc();
        if (buf)
            std::memcpy(buf, it->second.data.data(), 64);
        eq_.scheduleAfter(params_.hitLatency, std::move(done));
        return;
    }

    stats_.loadMisses.inc();
    // Fill via a stable staging buffer: the line may be evicted while
    // the miss is outstanding, so the iMC must never write into the
    // map node directly. The callback lives in a shared_ptr because
    // it must survive a rejected readLine (the lambda handed to the
    // iMC is destroyed on the failure path) for the retry.
    auto staging = std::make_shared<std::array<std::uint8_t, 64>>();
    auto cb = std::make_shared<Callback>(std::move(done));
    bool ok = port_.readLine(line_addr, staging->data(),
                             [this, line_addr, buf, staging, cb] {
        maybeEvictOne();
        auto& line = lines_[line_addr];
        // Don't clobber a line that was dirtied while the miss was
        // outstanding (store-after-load race).
        if (!line.dirty)
            line.data = *staging;
        if (buf)
            std::memcpy(buf, line.data.data(), 64);
        if (*cb)
            (*cb)();
    });
    if (!ok) {
        // Read queue full: retry when space frees.
        port_.whenSpace(line_addr, [this, addr, buf, cb] {
            load(addr, buf, std::move(*cb));
        });
    }
}

void
CpuCacheModel::store(Addr addr, const std::uint8_t* data, Callback done)
{
    Addr line_addr = lineOf(addr);
    stats_.stores.inc();
    auto it = lines_.find(line_addr);
    if (it == lines_.end()) {
        maybeEvictOne();
        it = lines_.emplace(line_addr, Line{}).first;
    }
    if (data)
        std::memcpy(it->second.data.data(), data, 64);
    it->second.dirty = true;
    eq_.scheduleAfter(params_.hitLatency, std::move(done));
}

bool
CpuCacheModel::storeNt(Addr addr, const std::uint8_t* data,
                       Callback done)
{
    Addr line_addr = lineOf(addr);
    stats_.ntStores.inc();
    auto it = lines_.find(line_addr);
    if (it != lines_.end() && data) {
        std::memcpy(it->second.data.data(), data, 64);
        it->second.dirty = false;
    }
    return port_.writeLine(line_addr, data, std::move(done));
}

void
CpuCacheModel::clflush(Addr addr, Callback done)
{
    Addr line_addr = lineOf(addr);
    stats_.flushes.inc();
    auto it = lines_.find(line_addr);
    if (it == lines_.end()) {
        eq_.scheduleAfter(params_.flushCost, std::move(done));
        return;
    }
    bool dirty = it->second.dirty;
    auto data = it->second.data;
    lines_.erase(it);
    if (!dirty) {
        eq_.scheduleAfter(params_.flushCost, std::move(done));
        return;
    }
    stats_.flushWritebacks.inc();
    Tick cost = params_.flushCost;
    if (!port_.writeLine(line_addr, data.data(), nullptr)) {
        port_.whenSpace(line_addr, [this, line_addr, data] {
            port_.writeLine(line_addr, data.data(), nullptr);
        });
    }
    eq_.scheduleAfter(cost, std::move(done));
}

void
CpuCacheModel::invalidate(Addr addr)
{
    stats_.invalidations.inc();
    lines_.erase(lineOf(addr));
}

bool
CpuCacheModel::contains(Addr addr) const
{
    return lines_.count(lineOf(addr)) != 0;
}

bool
CpuCacheModel::isDirty(Addr addr) const
{
    auto it = lines_.find(lineOf(addr));
    return it != lines_.end() && it->second.dirty;
}

void
CpuCacheModel::registerStats(StatRegistry& reg,
                             const std::string& prefix) const
{
    reg.addCounter(prefix + ".load_hits", stats_.loadHits);
    reg.addCounter(prefix + ".load_misses", stats_.loadMisses);
    reg.addCounter(prefix + ".stores", stats_.stores);
    reg.addCounter(prefix + ".nt_stores", stats_.ntStores);
    reg.addCounter(prefix + ".flushes", stats_.flushes);
    reg.addCounter(prefix + ".flush_writebacks",
                   stats_.flushWritebacks);
    reg.addCounter(prefix + ".invalidations", stats_.invalidations);
    reg.addCounter(prefix + ".capacity_evictions",
                   stats_.capacityEvictions);
    reg.add(prefix + ".resident_lines",
            [this] { return static_cast<double>(lines_.size()); });
}

} // namespace nvdimmc::cpu
