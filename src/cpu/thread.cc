#include "cpu/thread.hh"

#include "common/logging.hh"

namespace nvdimmc::cpu
{

WorkerThread::WorkerThread(EventQueue& eq, std::string name, OpFn op)
    : eq_(eq), name_(std::move(name)), op_(std::move(op)),
      nextOpEvent_([this] { runOne(); }, "worker-next-op")
{
}

void
WorkerThread::start()
{
    NVDC_ASSERT(!running_, "WorkerThread started twice");
    running_ = true;
    stopping_ = false;
    eq_.scheduleAfter(nextOpEvent_, 0);
}

void
WorkerThread::runOne()
{
    if (stopping_) {
        running_ = false;
        return;
    }
    opStart_ = eq_.now();
    op_([this](std::uint64_t bytes) {
        latency_.record(eq_.now() - opStart_);
        meter_.recordOp(bytes);
        if (stopping_) {
            running_ = false;
            return;
        }
        eq_.scheduleAfter(nextOpEvent_, 0);
    });
}

} // namespace nvdimmc::cpu
