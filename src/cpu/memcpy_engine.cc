#include "cpu/memcpy_engine.hh"

#include "common/logging.hh"

namespace nvdimmc::cpu
{

MemcpyEngine::MemcpyEngine(EventQueue& eq, imc::Imc& imc,
                           CpuCacheModel* cache, const Params& p)
    : eq_(eq),
      ownedPort_(std::make_unique<imc::HostPort>(imc)),
      port_(*ownedPort_),
      cache_(cache),
      params_(p)
{
}

MemcpyEngine::MemcpyEngine(EventQueue& eq, imc::HostPort& port,
                           CpuCacheModel* cache, const Params& p)
    : eq_(eq), port_(port), cache_(cache), params_(p)
{
}

void
MemcpyEngine::read(Addr addr, std::uint32_t len, std::uint8_t* buf,
                   bool via_cache, Callback done)
{
    NVDC_ASSERT(len > 0 && len % 64 == 0 && addr % 64 == 0,
                "memcpy read must be 64B aligned");
    if (params_.bulkMode) {
        port_.bulkTransfer(addr, len, false, std::move(done));
        return;
    }
    auto t = std::make_shared<Transfer>();
    t->addr = addr;
    t->len = len;
    t->rbuf = buf;
    t->wdata = nullptr;
    t->isWrite = false;
    t->viaCache = via_cache && cache_ != nullptr;
    t->done = std::move(done);
    pumpRead(t);
}

void
MemcpyEngine::writeNt(Addr addr, std::uint32_t len,
                      const std::uint8_t* data, Callback done)
{
    NVDC_ASSERT(len > 0 && len % 64 == 0 && addr % 64 == 0,
                "memcpy write must be 64B aligned");
    if (params_.bulkMode) {
        port_.bulkTransfer(addr, len, true, std::move(done));
        return;
    }
    auto t = std::make_shared<Transfer>();
    t->addr = addr;
    t->len = len;
    t->rbuf = nullptr;
    t->wdata = data;
    t->isWrite = true;
    t->viaCache = false;
    t->done = std::move(done);
    pumpWrite(t);
}

void
MemcpyEngine::pumpRead(const std::shared_ptr<Transfer>& t)
{
    t->stalled = false;
    while (t->inFlight < params_.parallelism && t->issued < t->len) {
        Addr line = t->addr + t->issued;
        std::uint32_t off = t->issued;

        auto on_line_done = [this, t] {
            NVDC_ASSERT(t->inFlight > 0, "memcpy MLP underflow");
            t->inFlight -= 1;
            t->completed += 64;
            if (t->completed == t->len) {
                if (t->done)
                    t->done();
                return;
            }
            if (!t->stalled)
                pumpRead(t);
        };

        // Account the line as in flight *before* issuing: a hit or a
        // forward can complete synchronously.
        t->inFlight += 1;
        t->issued += 64;

        if (t->viaCache) {
            // Cache loads always accept (internal retry on full).
            cache_->load(line, t->rbuf ? t->rbuf + off : nullptr,
                         on_line_done);
        } else {
            bool accepted = port_.readLine(
                line, t->rbuf ? t->rbuf + off : nullptr, on_line_done);
            if (!accepted) {
                t->inFlight -= 1;
                t->issued -= 64;
                t->stalled = true;
                port_.whenSpace(line, [this, t] { pumpRead(t); });
                return;
            }
        }
        if (t->completed == t->len)
            return; // Everything finished synchronously.
    }
}

void
MemcpyEngine::pumpWrite(const std::shared_ptr<Transfer>& t)
{
    if (t->issued >= t->len) {
        if (t->done)
            t->done();
        return;
    }
    Addr line = t->addr + t->issued;
    const std::uint8_t* src = t->wdata ? t->wdata + t->issued : nullptr;

    bool accepted = cache_ ? cache_->storeNt(line, src, nullptr)
                           : port_.writeLine(line, src, nullptr);
    if (!accepted) {
        // WPQ full: resume once the drain frees an entry.
        port_.whenSpace(line, [this, t] { pumpWrite(t); });
        return;
    }
    t->issued += 64;
    // Non-temporal stores issue at the core's store-throughput rate.
    eq_.scheduleAfter(params_.ntIssueGap, [this, t] { pumpWrite(t); });
}

} // namespace nvdimmc::cpu
