/**
 * @file
 * Bulk data movement between the CPU and the DAX region.
 *
 * A read streams 64 B line loads with bounded memory-level parallelism
 * (the core's fill-buffer limit); a write follows the libpmem path:
 * non-temporal stores that bypass the cache and post into the iMC's
 * WPQ. Backpressure from the iMC queues is what makes multi-thread
 * bandwidth saturate on the shared channel.
 */

#ifndef NVDIMMC_CPU_MEMCPY_ENGINE_HH
#define NVDIMMC_CPU_MEMCPY_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "cpu/cache_model.hh"
#include "imc/host_port.hh"
#include "imc/imc.hh"

namespace nvdimmc::cpu
{

/** Memcpy engine parameters. */
struct MemcpyParams
{
    /** Outstanding line loads per bulk read (LFB-limited). */
    unsigned parallelism = 10;
    /** Issue gap between successive non-temporal stores. */
    Tick ntIssueGap = 10 * kNs / 1; // 10 ns => ~6.4 GB/s per thread.
    /**
     * Use the iMC's analytic bulk model instead of per-line commands.
     * Big sweeps opt in; data-integrity tests stay detailed. A test
     * asserts the two modes agree on throughput.
     */
    bool bulkMode = false;
};

/** The engine; one per thread (MLP is per-core). */
class MemcpyEngine
{
  public:
    using Params = MemcpyParams;

    /** Single-channel convenience: wraps @p imc in an owned port. */
    MemcpyEngine(EventQueue& eq, imc::Imc& imc, CpuCacheModel* cache,
                 const Params& p = Params{});

    /** Multi-channel: lines and bulk slices route through @p port. */
    MemcpyEngine(EventQueue& eq, imc::HostPort& port,
                 CpuCacheModel* cache, const Params& p = Params{});

    /**
     * Read @p len bytes at @p addr into @p buf (nullable).
     * @p via_cache routes through the CPU cache model (normal loads);
     * otherwise lines are fetched uncached.
     */
    void read(Addr addr, std::uint32_t len, std::uint8_t* buf,
              bool via_cache, Callback done);

    /** Non-temporal write of @p len bytes (data nullable). */
    void writeNt(Addr addr, std::uint32_t len, const std::uint8_t* data,
                 Callback done);

  private:
    struct Transfer
    {
        Addr addr;
        std::uint32_t len;
        std::uint8_t* rbuf;
        const std::uint8_t* wdata;
        bool isWrite;
        bool viaCache;
        std::uint32_t issued = 0;
        std::uint32_t completed = 0;
        unsigned inFlight = 0;
        bool stalled = false;
        Callback done;
    };

    void pumpRead(const std::shared_ptr<Transfer>& t);
    void pumpWrite(const std::shared_ptr<Transfer>& t);

    EventQueue& eq_;
    /** Owned identity port for the single-iMC constructor. */
    std::unique_ptr<imc::HostPort> ownedPort_;
    imc::HostPort& port_;
    CpuCacheModel* cache_;
    Params params_;
};

} // namespace nvdimmc::cpu

#endif // NVDIMMC_CPU_MEMCPY_ENGINE_HH
