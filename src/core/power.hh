/**
 * @file
 * Power-failure and recovery model (paper §V-C).
 *
 * On power loss:
 *  1. ADR (if working) flushes the iMC write pending queue into the
 *     DRAM array; without ADR those stores are lost.
 *  2. The FPGA firmware, on battery power, reads the metadata area
 *     and dumps every valid dirty slot into the NVM — ignoring the
 *     tRFC serialization rule, since the host is dead.
 *
 * Because (1) and (2) race on real hardware, even working ADR leaves
 * a *weak* persistence window: the dump may read a slot before a WPQ
 * store landed in it. raceWindow models that by dumping first.
 */

#ifndef NVDIMMC_CORE_POWER_HH
#define NVDIMMC_CORE_POWER_HH

#include <cstddef>

#include "core/system.hh"

namespace nvdimmc::core
{

/** What happened during the failure. */
struct PowerFailureReport
{
    std::size_t wpqFlushed = 0; ///< Stores ADR saved.
    std::size_t wpqLost = 0;    ///< Stores that died in the WPQ.
    std::size_t pagesDumped = 0;///< Dirty slots the firmware saved.
};

/** Power-failure scenario knobs. */
struct PowerFailureScenario
{
    /** Platform ADR works (flushes the WPQ). */
    bool adrWorks = true;
    /**
     * Model the §V-C race: the firmware dump reads the DRAM *before*
     * the WPQ drain lands — ADR-flushed stores to dumped slots are
     * then not captured by the dump.
     */
    bool raceWindow = false;
};

/**
 * Kill the machine. After this, the DRAM contents are gone; only what
 * reached the NVM backend survives. Use the system's backend to
 * verify recovery.
 */
PowerFailureReport simulatePowerFailure(NvdimmcSystem& sys,
                                        const PowerFailureScenario& sc);

} // namespace nvdimmc::core

#endif // NVDIMMC_CORE_POWER_HH
