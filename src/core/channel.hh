/**
 * @file
 * One memory channel of the topology: a complete NVDIMM-C module.
 *
 * Each Channel owns the full per-module hardware stack — DDR4 address
 * map, DRAM cache device, shared memory bus, host iMC, the NVM backend
 * (FTL over Z-NAND or a direct media), the reserved CP layout and the
 * NVMC snooping the bus. A multi-channel NvdimmcSystem instantiates N
 * of these and interleaves the flat physical address space across them
 * (dram/channel_interleave.hh); the CPU-side singletons (cache model,
 * memcpy engine, nvdc driver) route each access to its owning channel
 * through an imc::HostPort.
 *
 * Refresh staggering: with N channels and staggerRefresh on, channel i
 * starts its tREFI clock with a phase offset of i * tREFI / N, so the
 * per-channel tRFC blackouts (and the DMA windows the NVMCs steal from
 * them) never line up across the whole system. Channel 0 — and any
 * single-channel system — keeps phase 0, leaving the legacy timeline
 * untouched.
 */

#ifndef NVDIMMC_CORE_CHANNEL_HH
#define NVDIMMC_CORE_CHANNEL_HH

#include <cstdint>
#include <memory>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "core/system_config.hh"
#include "dram/dram_device.hh"
#include "ftl/ftl.hh"
#include "imc/imc.hh"
#include "nvm/delay_media.hh"
#include "nvm/media_port.hh"
#include "nvm/nvm_media.hh"
#include "nvm/znand.hh"
#include "nvmc/nvmc.hh"

namespace nvdimmc::core
{

/** One channel's worth of hardware (one NVDIMM-C module). */
class Channel
{
  public:
    /**
     * Build channel @p index of @p count from the per-module slice of
     * @p cfg (capacities in the config are per module). @p cp_depth is
     * the reconciled CP queue depth the system computed once. A
     * non-null @p media_eq splits the media stack (FTL + Z-NAND) onto
     * that queue behind a MediaPort seam — its own event shard — while
     * everything DDR-side stays on @p eq; ZNand media only.
     */
    Channel(EventQueue& eq, const SystemConfig& cfg, std::uint32_t index,
            std::uint32_t count, std::uint32_t cp_depth,
            EventQueue* media_eq = nullptr);

    std::uint32_t index() const { return index_; }

    dram::AddressMap& map() { return *map_; }
    dram::DramDevice& dram() { return *dram_; }
    const dram::DramDevice& dram() const { return *dram_; }
    bus::MemoryBus& bus() { return *bus_; }
    const bus::MemoryBus& bus() const { return *bus_; }
    imc::Imc& imc() { return *imc_; }
    const imc::Imc& imc() const { return *imc_; }
    nvm::PageBackend& backend() { return *backend_; }
    const nvmc::ReservedLayout& layout() const { return *layout_; }
    nvmc::Nvmc* nvmc() { return nvmc_.get(); }
    const nvmc::Nvmc* nvmc() const { return nvmc_.get(); }
    nvm::ZNand* znand() { return znand_.get(); }
    const nvm::ZNand* znand() const { return znand_.get(); }
    ftl::Ftl* ftl() { return ftl_.get(); }
    const ftl::Ftl* ftl() const { return ftl_.get(); }
    nvm::DelayMedia* delayMedia() { return delayMedia_.get(); }
    /** The firmware<->media seam; null unless built with a media
     *  queue. */
    nvm::MediaPort* mediaPort() { return mediaPort_.get(); }

  private:
    std::uint32_t index_;

    std::unique_ptr<dram::AddressMap> map_;
    std::unique_ptr<dram::DramDevice> dram_;
    std::unique_ptr<bus::MemoryBus> bus_;
    std::unique_ptr<imc::Imc> imc_;

    std::unique_ptr<nvm::ZNand> znand_;
    std::unique_ptr<ftl::Ftl> ftl_;
    std::unique_ptr<nvm::NvmMedia> simpleMedia_;
    std::unique_ptr<nvm::DelayMedia> delayMedia_;
    std::unique_ptr<nvm::DirectBackend> directBackend_;
    std::unique_ptr<nvm::MediaPort> mediaPort_;
    nvm::PageBackend* backend_ = nullptr;

    std::unique_ptr<nvmc::ReservedLayout> layout_;
    std::unique_ptr<nvmc::Nvmc> nvmc_;
};

} // namespace nvdimmc::core

#endif // NVDIMMC_CORE_CHANNEL_HH
