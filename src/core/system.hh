/**
 * @file
 * Whole-system assembly.
 *
 * NvdimmcSystem builds the complete NVDIMM-C stack of Fig 1b/3/4:
 * shared DDR4 channel with conflict checking, DRAM cache device, host
 * iMC with programmed tRFC/tREFI, the NVMC (detector + DMA + firmware)
 * snooping the same bus, the NVM backend (FTL over Z-NAND, or a direct
 * byte-addressable media), the CPU cache model and the nvdc driver.
 *
 * BaselineSystem builds the /dev/pmem0 comparison machine.
 */

#ifndef NVDIMMC_CORE_SYSTEM_HH
#define NVDIMMC_CORE_SYSTEM_HH

#include <memory>
#include <ostream>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "core/system_config.hh"
#include "cpu/cache_model.hh"
#include "cpu/memcpy_engine.hh"
#include "driver/nvdc_driver.hh"
#include "driver/pmem_driver.hh"
#include "dram/dram_device.hh"
#include "ftl/ftl.hh"
#include "imc/imc.hh"
#include "nvm/delay_media.hh"
#include "nvm/nvm_media.hh"
#include "nvm/znand.hh"
#include "nvmc/nvmc.hh"

namespace nvdimmc::core
{

/** The full NVDIMM-C machine. */
class NvdimmcSystem
{
  public:
    explicit NvdimmcSystem(const SystemConfig& cfg);

    EventQueue& eq() { return eq_; }
    bus::MemoryBus& bus() { return *bus_; }
    dram::DramDevice& dramDevice() { return *dram_; }
    imc::Imc& imc() { return *imc_; }
    cpu::CpuCacheModel& cpuCache() { return *cpuCache_; }
    cpu::MemcpyEngine& engine() { return *engine_; }
    driver::NvdcDriver& driver() { return *driver_; }
    nvm::PageBackend& backend() { return *backend_; }
    nvmc::Nvmc* nvmc() { return nvmc_.get(); }
    nvm::ZNand* znand() { return znand_.get(); }
    ftl::Ftl* ftl() { return ftl_.get(); }
    nvm::DelayMedia* delayMedia() { return delayMedia_.get(); }
    const SystemConfig& config() const { return cfg_; }
    const nvmc::ReservedLayout& layout() const { return *layout_; }

    /** Advance simulated time. */
    void run(Tick duration) { eq_.runFor(duration); }

    /** Run until no events remain (bounded). */
    void drain(std::uint64_t max_events = 50'000'000)
    {
        eq_.runAll(max_events);
    }

    /**
     * Test/bench scaffolding: install @p pages device pages as cached
     * (optionally dirty) without paying the fill latency, starting at
     * device page @p first_page. Metadata in DRAM is updated so the
     * power-fail dump stays consistent.
     */
    void precondition(std::uint64_t first_page, std::uint32_t pages,
                      bool dirty);

    /** Zero bus conflicts and zero DRAM violations so far? */
    bool hardwareClean() const;

    /**
     * Register every layer's statistics under the hierarchical names
     * (dram.*, bus.*, imc.*, cpu.*, nvdc.*, nvmc.*, ftl.*, znand.*)
     * plus the flat legacy aliases (cache.*, fw.*) older tooling
     * parses. The registry holds live getters: it must not outlive
     * this system.
     */
    void registerStats(StatRegistry& reg) const;

    /** Dump every layer's statistics in "name = value" form. */
    void dumpStats(std::ostream& os) const;

    /** Dump the same statistics as one flat JSON object. */
    void dumpStatsJson(std::ostream& os) const;

  private:
    SystemConfig cfg_;
    EventQueue eq_;

    std::unique_ptr<dram::AddressMap> map_;
    std::unique_ptr<dram::DramDevice> dram_;
    std::unique_ptr<bus::MemoryBus> bus_;
    std::unique_ptr<imc::Imc> imc_;

    std::unique_ptr<nvm::ZNand> znand_;
    std::unique_ptr<ftl::Ftl> ftl_;
    std::unique_ptr<nvm::NvmMedia> simpleMedia_;
    std::unique_ptr<nvm::DelayMedia> delayMedia_;
    std::unique_ptr<nvm::DirectBackend> directBackend_;
    nvm::PageBackend* backend_ = nullptr;

    std::unique_ptr<nvmc::ReservedLayout> layout_;
    std::unique_ptr<nvmc::Nvmc> nvmc_;

    std::unique_ptr<cpu::CpuCacheModel> cpuCache_;
    std::unique_ptr<cpu::MemcpyEngine> engine_;
    std::unique_ptr<driver::NvdcDriver> driver_;
};

/** The /dev/pmem0 baseline machine. */
class BaselineSystem
{
  public:
    explicit BaselineSystem(const BaselineConfig& cfg);

    EventQueue& eq() { return eq_; }
    bus::MemoryBus& bus() { return *bus_; }
    imc::Imc& imc() { return *imc_; }
    cpu::MemcpyEngine& engine() { return *engine_; }
    driver::PmemDriver& driver() { return *driver_; }
    const BaselineConfig& config() const { return cfg_; }

    void run(Tick duration) { eq_.runFor(duration); }

  private:
    BaselineConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<dram::AddressMap> map_;
    std::unique_ptr<dram::DramDevice> dram_;
    std::unique_ptr<bus::MemoryBus> bus_;
    std::unique_ptr<imc::Imc> imc_;
    std::unique_ptr<cpu::CpuCacheModel> cpuCache_;
    std::unique_ptr<cpu::MemcpyEngine> engine_;
    std::unique_ptr<driver::PmemDriver> driver_;
};

} // namespace nvdimmc::core

#endif // NVDIMMC_CORE_SYSTEM_HH
