/**
 * @file
 * Whole-system assembly.
 *
 * NvdimmcSystem builds the complete NVDIMM-C stack of Fig 1b/3/4 as a
 * ChannelTopology: N core::Channel units (each a shared DDR4 channel
 * with conflict checking, DRAM cache device, host iMC with programmed
 * tRFC/tREFI, an NVMC snooping the bus and an NVM backend), a
 * page-interleaved physical address map routing every host access to
 * its owning channel through an imc::HostPort, and the CPU-side
 * singletons (cache model, memcpy engine, nvdc driver) shared across
 * channels. With channels = 1 (the PoC machine) every routing function
 * is the identity and the system behaves byte-identically to the
 * original single-channel assembly.
 *
 * BaselineSystem builds the /dev/pmem0 comparison machine (optionally
 * multi-channel with line-granular interleave, as plain RDIMMs allow).
 */

#ifndef NVDIMMC_CORE_SYSTEM_HH
#define NVDIMMC_CORE_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "backend/media_backend.hh"
#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "common/shard.hh"
#include "common/telemetry.hh"
#include "core/channel.hh"
#include "core/system_config.hh"
#include "cpu/cache_model.hh"
#include "cpu/memcpy_engine.hh"
#include "driver/nvdc_driver.hh"
#include "driver/pmem_driver.hh"
#include "dram/dram_device.hh"
#include "ftl/ftl.hh"
#include "imc/host_port.hh"
#include "imc/imc.hh"
#include "nvm/delay_media.hh"
#include "nvm/nvm_media.hh"
#include "nvm/znand.hh"
#include "nvmc/nvmc.hh"

namespace nvdimmc::core
{

/** The full NVDIMM-C machine. */
class NvdimmcSystem
{
  public:
    explicit NvdimmcSystem(const SystemConfig& cfg);

    EventQueue& eq() { return eq_; }

    /** @name Channel topology. */
    /** @{ */
    std::uint32_t channelCount() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }
    Channel& channel(std::uint32_t i) { return *channels_[i]; }
    const Channel& channel(std::uint32_t i) const
    {
        return *channels_[i];
    }
    imc::HostPort& hostPort() { return *hostPort_; }
    /** DRAM cache slots summed over all channels. */
    std::uint32_t totalSlotCount() const;
    /** @} */

    /** @name Channel-0 shortcuts (the whole machine when N == 1). */
    /** @{ */
    bus::MemoryBus& bus() { return channels_[0]->bus(); }
    dram::DramDevice& dramDevice() { return channels_[0]->dram(); }
    imc::Imc& imc() { return channels_[0]->imc(); }
    nvm::PageBackend& backend() { return channels_[0]->backend(); }
    nvmc::Nvmc* nvmc() { return channels_[0]->nvmc(); }
    nvm::ZNand* znand() { return channels_[0]->znand(); }
    ftl::Ftl* ftl() { return channels_[0]->ftl(); }
    nvm::DelayMedia* delayMedia() { return channels_[0]->delayMedia(); }
    const nvmc::ReservedLayout& layout() const
    {
        return channels_[0]->layout();
    }
    /** @} */

    cpu::CpuCacheModel& cpuCache() { return *cpuCache_; }
    cpu::MemcpyEngine& engine() { return *engine_; }
    driver::NvdcDriver& driver() { return *driver_; }
    /** The media-transport backend the driver talks through. */
    backend::MediaBackend& transport() { return *transport_; }
    const backend::MediaBackend& transport() const
    {
        return *transport_;
    }
    const SystemConfig& config() const { return cfg_; }

    /** @name Parallel-in-time execution (cfg.threads >= 1). */
    /** @{ */

    /** Is this system running the sharded kernel? */
    bool sharded() const { return coord_ != nullptr; }

    /** The shard coordinator, or null on a classic serial system. */
    ShardCoordinator* coordinator() { return coord_.get(); }
    const ShardCoordinator* coordinator() const { return coord_.get(); }

    /**
     * The conservative sync-quantum upper bound for @p cfg: the
     * smallest latency any cross-channel interaction can have —
     * min(host link latency, the driver's CP compose/store floor,
     * the tREFI/N refresh stagger offset). A quantum above it could
     * let a message land in a shard's past; construction panics on a
     * quantumOverride exceeding it.
     */
    static Tick quantumBound(const SystemConfig& cfg);

    /** @} */

    /** Advance simulated time. */
    void run(Tick duration) { eq_.runFor(duration); }

    /** Run until no events remain (bounded). */
    void drain(std::uint64_t max_events = 50'000'000)
    {
        eq_.runAll(max_events);
    }

    /**
     * Test/bench scaffolding: install @p pages device pages as cached
     * (optionally dirty) without paying the fill latency, starting at
     * device page @p first_page. Each page lands in its owning
     * channel's cache slice; metadata in that channel's DRAM is
     * updated so the power-fail dump stays consistent.
     */
    void precondition(std::uint64_t first_page, std::uint32_t pages,
                      bool dirty);

    /** Zero bus conflicts and zero DRAM violations on every channel? */
    bool hardwareClean() const;

    /**
     * Register every layer's statistics under the hierarchical names
     * (dram.*, bus.*, imc.*, cpu.*, nvdc.*, nvmc.*, ftl.*, znand.*)
     * plus the flat legacy aliases (cache.*, fw.*) older tooling
     * parses. On a multi-channel system the per-channel hardware
     * registers under ch<i>.-prefixed names (ch1.imc.*, ...) and the
     * un-prefixed names become aggregates (sums; max for
     * imc.refresh.overhead_pct). The registry holds live getters: it
     * must not outlive this system.
     */
    void registerStats(StatRegistry& reg) const;

    /** Dump every layer's statistics in "name = value" form. */
    void dumpStats(std::ostream& os) const;

    /** Dump the same statistics as one flat JSON object. */
    void dumpStatsJson(std::ostream& os) const;

    /** The time-series collector, or null when telemetry was off at
     *  construction. Sampling on the host queue, so its series is
     *  byte-identical for every threads >= 1 (DESIGN §9). */
    telemetry::Collector* telemetryCollector()
    {
        return telemetry_.get();
    }

  private:
    /** Register this system's probe set (construction-time, after
     *  every component exists). */
    void registerTelemetry(telemetry::Collector& t);

    SystemConfig cfg_;
    EventQueue eq_; ///< Host shard queue (the only queue when serial).
    /** Per-channel shard queues; empty on a classic serial system. */
    std::vector<std::unique_ptr<EventQueue>> shardQueues_;

    std::vector<std::unique_ptr<Channel>> channels_;
    std::unique_ptr<imc::HostPort> hostPort_;

    std::unique_ptr<cpu::CpuCacheModel> cpuCache_;
    std::unique_ptr<cpu::MemcpyEngine> engine_;
    /** Owned here (not by the driver) so the system can pick the
     *  transport per cfg_.backendKind; declared before driver_, which
     *  holds a non-owning pointer to it. */
    std::unique_ptr<backend::MediaBackend> transport_;
    std::unique_ptr<driver::NvdcDriver> driver_;
    /** Null unless telemetry::enabled() at construction. Declared
     *  after every probed component (its getters read them), before
     *  coord_ (the sampler must be descheduled while workers are
     *  joined). */
    std::unique_ptr<telemetry::Collector> telemetry_;

    /** Declared last: its destructor joins the worker threads while
     *  every queue and component they touch is still alive. */
    std::unique_ptr<ShardCoordinator> coord_;
};

/** The /dev/pmem0 baseline machine. */
class BaselineSystem
{
  public:
    explicit BaselineSystem(const BaselineConfig& cfg);

    EventQueue& eq() { return eq_; }
    std::uint32_t channelCount() const
    {
        return static_cast<std::uint32_t>(imcs_.size());
    }
    bus::MemoryBus& bus() { return *buses_[0]; }
    imc::Imc& imc() { return *imcs_[0]; }
    imc::Imc& imc(std::uint32_t ch) { return *imcs_[ch]; }
    imc::HostPort& hostPort() { return *hostPort_; }
    cpu::MemcpyEngine& engine() { return *engine_; }
    driver::PmemDriver& driver() { return *driver_; }
    const BaselineConfig& config() const { return cfg_; }

    void run(Tick duration) { eq_.runFor(duration); }

    /** Register every statistic (same layout rules as the NVDIMM-C
     *  system: text dumps stay byte-identical across executor
     *  counts; threads land in JSON "_meta" only). */
    void registerStats(StatRegistry& reg) const;
    void dumpStats(std::ostream& os) const;
    void dumpStatsJson(std::ostream& os) const;

    /** The time-series collector, or null when telemetry was off at
     *  construction. */
    telemetry::Collector* telemetryCollector()
    {
        return telemetry_.get();
    }

  private:
    void registerTelemetry(telemetry::Collector& t);

    BaselineConfig cfg_;
    EventQueue eq_;
    /** Sharded mode only: one queue per channel. */
    std::vector<std::unique_ptr<EventQueue>> shardQueues_;
    std::vector<std::unique_ptr<dram::AddressMap>> maps_;
    std::vector<std::unique_ptr<dram::DramDevice>> drams_;
    std::vector<std::unique_ptr<bus::MemoryBus>> buses_;
    std::vector<std::unique_ptr<imc::Imc>> imcs_;
    std::unique_ptr<imc::HostPort> hostPort_;
    std::unique_ptr<cpu::CpuCacheModel> cpuCache_;
    std::unique_ptr<cpu::MemcpyEngine> engine_;
    std::unique_ptr<driver::PmemDriver> driver_;
    /** Null unless telemetry::enabled() at construction. */
    std::unique_ptr<telemetry::Collector> telemetry_;

    /** Declared last: its destructor joins the worker threads while
     *  every queue and component they touch is still alive. */
    std::unique_ptr<ShardCoordinator> coord_;
};

} // namespace nvdimmc::core

#endif // NVDIMMC_CORE_SYSTEM_HH
