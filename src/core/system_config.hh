/**
 * @file
 * Whole-system configurations (paper Table I) and scaled variants.
 *
 * paperPoc() encodes the evaluated machine: Xeon Platinum 8168 host,
 * DDR4-1600 channel, a 128 GB NVDIMM-C with a 16 GB RDIMM cache
 * (tRFC programmed to 1250 ns) and 2 x 64 GB Z-NAND behind an FTL
 * exposing 120 GB. Scaled variants shrink capacities (not timings!) so
 * tests and benches converge quickly; every ratio that drives the
 * paper's results (cache:footprint, tRFC:tREFI) is preserved by the
 * caller choosing footprints relative to the cache.
 */

#ifndef NVDIMMC_CORE_SYSTEM_CONFIG_HH
#define NVDIMMC_CORE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>

#include "backend/cxl_backend.hh"
#include "backend/media_backend.hh"
#include "cpu/cache_model.hh"
#include "cpu/memcpy_engine.hh"
#include "driver/nvdc_driver.hh"
#include "driver/pmem_driver.hh"
#include "dram/timing.hh"
#include "ftl/ftl.hh"
#include "imc/imc.hh"
#include "nvm/nvm_media.hh"
#include "nvm/znand.hh"
#include "nvmc/nvmc.hh"

namespace nvdimmc::core
{

/** Backend media choice. */
enum class MediaKind
{
    ZNand,   ///< The PoC: Z-NAND behind the FTL.
    Pram,    ///< PRAM direct backend.
    SttMram, ///< STT-MRAM direct backend.
    Delay,   ///< Programmable-delay media (hypothetical device).
};

/** Full NVDIMM-C system configuration. */
struct SystemConfig
{
    /** @name Channel topology.
     * Every capacity below (DRAM cache, Z-NAND geometry, mediaBytes)
     * is *per module*: a system with channels = N carries N complete
     * NVDIMM-C modules and N times the aggregate capacity. The flat
     * physical address space interleaves across the channels
     * (dram/channel_interleave.hh); NVDIMM-C systems always interleave
     * at page (4 KB) granularity because a module's NVMC can only fill
     * its own DRAM — interleaveGranule is clamped accordingly. */
    /** @{ */
    std::uint32_t channels = 1;
    std::uint32_t interleaveGranule = 4096;
    /** Offset channel i's tREFI clock by i * tREFI / N so refresh
     *  blackouts (and the DMA windows inside them) stagger. */
    bool staggerRefresh = true;
    /** @} */

    /** @name Parallel-in-time execution.
     * threads = 0 (default) keeps the classic single-queue serial
     * kernel, byte-identical to pre-shard builds. threads >= 1 runs
     * each channel as its own event shard under conservative quantum
     * sync with min(threads, channels, cores) executor threads;
     * results are byte-identical for every threads >= 1, so
     * `--threads=N --verify` diffs against a threads=1 run. */
    /** @{ */
    std::uint32_t threads = 0;
    /** Modeled host<->module routing latency: every host line/bulk
     *  request and completion crosses it once each way in sharded
     *  mode. It is the binding term of the auto-derived sync quantum
     *  (the cross-shard lookahead). */
    Tick hostLinkLatency = 200 * kNs;
    /** Per-channel link credit pool: host line ops posted but not yet
     *  accepted by the channel's iMC. Exhausting it rejects host
     *  calls, propagating RPQ/WPQ back-pressure across the link one
     *  round trip late (a posted buffer of this depth). */
    std::uint32_t hostLinkDepth = 128;
    /** Test knob: use this sync quantum instead of the auto-derived
     *  bound. Must not exceed the bound — construction panics, the
     *  quantum-checker regression. 0 = auto. */
    Tick quantumOverride = 0;
    /** Split each Z-NAND channel's FTL + media into its own event
     *  shard behind a firmware<->media mailbox seam, lifting the
     *  shard-count ceiling from channels to 2 x channels. Sharded
     *  ZNand systems only; other media kinds (and threads = 0) ignore
     *  it. */
    bool mediaShards = true;
    /** Modeled firmware<->flash-controller command latency: the
     *  firmware<->media links' lookahead, and the minimum lead every
     *  page op and completion crossing the seam carries. µs-scale
     *  (NVMe-style command issue), so the media pair's window bound is
     *  far looser than the host link's. */
    Tick mediaLinkLatency = 1 * kUs;
    /** @} */

    /** @name DRAM cache DIMM. */
    /** @{ */
    std::uint64_t dramCacheBytes = 16 * kGiB;
    dram::Ddr4Timing dramTiming = dram::Ddr4Timing::ddr4_1600();
    dram::RefreshRegisters refresh = dram::RefreshRegisters::nvdimmc();
    /** @} */

    /** @name Media transport.
     * Which interface fronts the hybrid device. Nvdimmc is the
     * paper's CP-over-DDR4 module; CxlHybrid swaps it for a
     * CMM-H-style device behind a modeled CXL.mem link (no NVMC, no
     * refresh windows, fine interleave allowed). BackendKind::Pmem is
     * not valid here — the emulated-pmem baseline is BaselineSystem. */
    /** @{ */
    backend::BackendKind backendKind = backend::BackendKind::Nvdimmc;
    /** Link/device model when backendKind == CxlHybrid (its
     *  interleaveGranule is overridden by the system's). */
    backend::CxlBackendConfig cxl;
    /** @} */

    /** @name Backend. */
    /** @{ */
    MediaKind media = MediaKind::ZNand;
    nvm::ZNandParams znand = nvm::ZNandParams::poc128GB();
    /** Capacity for the simple/delay media kinds. */
    std::uint64_t mediaBytes = 128 * kGiB;
    Tick delayMediaLatency = 0;
    ftl::FtlConfig ftl;
    /** @} */

    nvmc::NvmcConfig nvmc;
    driver::NvdcDriverConfig driver;
    imc::ImcConfig imc;
    cpu::CpuCacheModel::Params cpuCache;
    cpu::MemcpyParams memcpy;

    /** Telemetry sampling cadence in ticks when telemetry::enabled();
     *  0 = telemetry::defaultInterval (4 x tREFI). Samples fire on
     *  the host queue, so the series is byte-identical for every
     *  threads >= 1 (DESIGN §9). */
    Tick telemetryIntervalTicks = 0;

    /** Build the NVMC at all (off for the hypothetical device). */
    bool nvmcEnabled = true;
    /** Keep actual bytes in DRAM/NAND (tests on; big benches off). */
    bool storeData = true;
    /** Abort on any bus conflict / DRAM protocol violation. */
    bool strictHardware = false;

    /**
     * Flip this config to the CXL.mem hybrid backend: no NVMC (no CP
     * page, no refresh-window DMA), standard refresh registers (the
     * extended tRFC exists only to widen windows), and the CXL line
     * interleave granule. Media, cache and host knobs are preserved,
     * so the result is the same device fronted by a different
     * interface — the head-to-head the backend seam exists for.
     */
    SystemConfig& applyCxlBackend();

    /** Table I as evaluated. */
    static SystemConfig paperPoc();
    /** Small config for unit/integration tests (64 MiB cache). */
    static SystemConfig scaledTest();
    /** Medium config for benches (512 MiB cache, bulk memcpy). */
    static SystemConfig scaledBench();

    /**
     * Shared derivation every preset builds on: a @p cacheBytes DRAM
     * cache in front of Z-NAND with the paper's timing ratios
     * (DDR4-1600, programmed tRFC 1250 ns vs tREFI 7.8 us) mirrored
     * into the iMC and the NVMC. Presets only adjust capacities and
     * workload knobs on top — never the ratios that drive the paper's
     * results.
     */
    static SystemConfig deriveScaled(std::uint64_t cacheBytes);
};

/** Baseline (/dev/pmem0) system configuration. */
struct BaselineConfig
{
    /** Plain DRAM may interleave at line granularity (256 B) — there
     *  is no per-module NVMC tying a page to one channel. */
    std::uint32_t channels = 1;
    std::uint32_t interleaveGranule = 4096;
    std::uint64_t capacityBytes = 128 * kGiB;
    dram::Ddr4Timing dramTiming = dram::Ddr4Timing::ddr4_1600();
    /** Table I: the baseline RDIMM also ran with tRFC = 1250 ns. */
    dram::RefreshRegisters refresh = dram::RefreshRegisters::nvdimmc();

    /** @name Parallel-in-time execution.
     * Same contract as SystemConfig: threads = 0 keeps the classic
     * serial kernel; threads >= 1 runs each channel as its own event
     * shard (byte-identical for every threads >= 1), so the backends
     * sweep can verify the pmem baseline the same way as the hybrid
     * transports. */
    /** @{ */
    std::uint32_t threads = 0;
    Tick hostLinkLatency = 200 * kNs;
    std::uint32_t hostLinkDepth = 128;
    /** Test knob: 0 = auto-derived quantum; larger than the bound
     *  panics. */
    Tick quantumOverride = 0;
    /** @} */
    /** Telemetry sampling cadence; same contract as SystemConfig. */
    Tick telemetryIntervalTicks = 0;
    driver::PmemDriverConfig pmem;
    imc::ImcConfig imc;
    cpu::CpuCacheModel::Params cpuCache;
    cpu::MemcpyParams memcpy;
    bool storeData = true;

    static BaselineConfig paper();
    static BaselineConfig scaledBench();
};

} // namespace nvdimmc::core

#endif // NVDIMMC_CORE_SYSTEM_CONFIG_HH
