#include "core/system.hh"

#include <algorithm>
#include <array>
#include <string>
#include <thread>

#include "backend/nvdimmc_backend.hh"
#include "common/logging.hh"

namespace nvdimmc::core
{

NvdimmcSystem::NvdimmcSystem(const SystemConfig& cfg) : cfg_(cfg)
{
    NVDC_ASSERT(cfg_.channels >= 1, "system needs at least one channel");
    NVDC_ASSERT(cfg_.backendKind != backend::BackendKind::Pmem,
                "the pmem baseline is BaselineSystem, not a "
                "NvdimmcSystem transport");
    const bool is_cxl =
        cfg_.backendKind == backend::BackendKind::CxlHybrid;
    if (!is_cxl && cfg_.channels > 1 &&
        cfg_.interleaveGranule != dram::ChannelInterleave::kPageGranule) {
        // An NVDIMM-C module's NVMC can only DMA into its own DRAM, so
        // a cache slot must live whole on one channel: the DAX region
        // always interleaves at page granularity. The CXL device's
        // copy engine has no such tie, so that backend keeps whatever
        // granule the config asked for.
        warn("NvdimmcSystem: interleave granule ",
             cfg_.interleaveGranule,
             " unsupported with NVDIMM-C modules; clamping to 4096");
        cfg_.interleaveGranule = dram::ChannelInterleave::kPageGranule;
    }
    if (is_cxl && cfg_.nvmcEnabled) {
        // The CXL device answers over the link; there is no CP page
        // for a module-side controller to poll.
        warn("NvdimmcSystem: CXL backend ignores nvmcEnabled");
        cfg_.nvmcEnabled = false;
    }

    if (!is_cxl &&
        cfg_.driver.cpQueueDepth != cfg_.nvmc.firmware.cpQueueDepth) {
        warn("NvdimmcSystem: driver CP depth (",
             cfg_.driver.cpQueueDepth, ") != firmware CP depth (",
             cfg_.nvmc.firmware.cpQueueDepth,
             ") — commands on the unpolled slots will never be acked");
    }
    std::uint32_t cp_depth = std::max(cfg_.driver.cpQueueDepth,
                                      cfg_.nvmc.firmware.cpQueueDepth);

    // Sharded (parallel-in-time) mode: every channel simulates on its
    // own event queue; the host-side components stay on eq_. With
    // media splitting each Z-NAND channel contributes a second shard
    // for its FTL + flash, so the shard vector is laid out
    // [ddr0..ddrN-1, media0..mediaN-1].
    const bool sharded = cfg_.threads >= 1;
    const bool media_split = sharded && cfg_.mediaShards &&
                             cfg_.media == MediaKind::ZNand;
    const std::uint32_t nshards =
        cfg_.channels * (media_split ? 2 : 1);
    if (sharded) {
        shardQueues_.reserve(nshards);
        for (std::uint32_t i = 0; i < nshards; ++i)
            shardQueues_.push_back(std::make_unique<EventQueue>());
    }

    channels_.reserve(cfg_.channels);
    for (std::uint32_t i = 0; i < cfg_.channels; ++i)
        channels_.push_back(std::make_unique<Channel>(
            sharded ? *shardQueues_[i] : eq_, cfg_, i, cfg_.channels,
            cp_depth,
            media_split ? shardQueues_[cfg_.channels + i].get()
                        : nullptr));

    std::vector<imc::Imc*> imcs;
    imcs.reserve(channels_.size());
    for (auto& ch : channels_)
        imcs.push_back(&ch->imc());
    hostPort_ = std::make_unique<imc::HostPort>(
        std::move(imcs), dram::ChannelInterleave(
                             cfg_.channels, cfg_.interleaveGranule));

    cpuCache_ = std::make_unique<cpu::CpuCacheModel>(eq_, *hostPort_,
                                                     cfg_.cpuCache);
    engine_ = std::make_unique<cpu::MemcpyEngine>(
        eq_, *hostPort_, cpuCache_.get(), cfg_.memcpy);

    std::vector<const nvmc::ReservedLayout*> layouts;
    std::uint64_t backend_pages = 0;
    layouts.reserve(channels_.size());
    for (auto& ch : channels_) {
        layouts.push_back(&ch->layout());
        backend_pages += ch->backend().pageCount();
    }

    // The media transport sits between the driver's fault path and the
    // per-channel devices; the system owns it so the config can swap
    // the CP-over-DDR4 protocol for the CXL.mem link.
    if (is_cxl) {
        backend::CxlBackendConfig cxl_cfg = cfg_.cxl;
        cxl_cfg.interleaveGranule = cfg_.interleaveGranule;
        auto cxl_transport = std::make_unique<backend::CxlHybridBackend>(
            eq_, *hostPort_, cxl_cfg);
        for (std::uint32_t i = 0; i < channels_.size(); ++i)
            cxl_transport->attachChannel(
                i, sharded ? *shardQueues_[i] : eq_,
                channels_[i]->dram(), channels_[i]->backend(),
                channels_[i]->layout());
        transport_ = std::move(cxl_transport);
    } else {
        auto nvdc_transport = std::make_unique<backend::NvdimmcBackend>(
            eq_, *cpuCache_, layouts,
            backend::NvdimmcBackendConfig{cfg_.driver.cpWriteCost,
                                          cfg_.driver.ackPollInterval,
                                          cfg_.driver.cpQueueDepth});
        for (std::uint32_t i = 0; i < channels_.size(); ++i)
            if (channels_[i]->nvmc())
                nvdc_transport->attachNvmc(i, channels_[i]->nvmc());
        transport_ = std::move(nvdc_transport);
    }

    driver_ = std::make_unique<driver::NvdcDriver>(
        eq_, *cpuCache_, *engine_, std::move(layouts), backend_pages,
        cfg_.driver, transport_.get());

    if (sharded) {
        const Tick bound = quantumBound(cfg_);
        const Tick quantum =
            cfg_.quantumOverride ? cfg_.quantumOverride : bound;
        if (quantum > bound) {
            panic("sync quantum ", quantum,
                  " exceeds the conservative cross-shard latency "
                  "bound ", bound,
                  " — a mailbox message could land in a shard's past");
        }
        unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        unsigned executors =
            std::min({static_cast<unsigned>(cfg_.threads),
                      static_cast<unsigned>(nshards), hw});

        std::vector<EventQueue*> qs;
        qs.reserve(shardQueues_.size());
        for (auto& q : shardQueues_)
            qs.push_back(q.get());
        coord_ = std::make_unique<ShardCoordinator>(eq_, qs, quantum,
                                                    executors);
        eq_.setCoordinator(coord_.get());
        // The host port only routes to the DDR-side shards; a split
        // channel's media shard is reachable solely through its
        // MediaPort seam.
        std::vector<EventQueue*> ddr_qs(
            qs.begin(), qs.begin() + cfg_.channels);
        hostPort_->enableSharding(*coord_, eq_, std::move(ddr_qs),
                                  cfg_.hostLinkLatency,
                                  cfg_.hostLinkDepth);

        // Per-pair links. DDR shard <-> host keeps the quantum-derived
        // bound but gains the port's in-flight promise; a split
        // channel's DDR <-> media pair syncs on the far looser
        // µs-scale media command latency, with the media side
        // promising quiet whenever no posted page op is outstanding.
        for (std::uint32_t i = 0; i < cfg_.channels; ++i) {
            coord_->setLink(i, ShardCoordinator::kToHost, quantum,
                            hostPort_->lookaheadFn(i));
            if (!media_split)
                continue;
            const std::uint32_t m = cfg_.channels + i;
            nvm::MediaPort* mp = channels_[i]->mediaPort();
            coord_->setLink(i, static_cast<std::int32_t>(m),
                            cfg_.mediaLinkLatency);
            coord_->setLink(m, static_cast<std::int32_t>(i),
                            cfg_.mediaLinkLatency, mp->lookaheadFn());
            mp->enableSharding(*coord_, *shardQueues_[i],
                               *shardQueues_[m], i, m,
                               cfg_.mediaLinkLatency);
        }
    }

    if (telemetry::enabled()) {
        const Tick interval =
            cfg_.telemetryIntervalTicks
                ? cfg_.telemetryIntervalTicks
                : telemetry::defaultInterval(cfg_.refresh.tREFI);
        telemetry_ =
            std::make_unique<telemetry::Collector>(eq_, interval);
        registerTelemetry(*telemetry_);
        telemetry_->start();
    }
}

void
NvdimmcSystem::registerTelemetry(telemetry::Collector& t)
{
    // Sampled on the host queue in registration order; registration
    // order depends only on the config, never the executor count
    // (the byte-identity contract, DESIGN §9).
    driver::NvdcDriver* drv = driver_.get();
    t.addGauge(
        "nvdc.miss_queue_depth",
        [drv] {
            return static_cast<std::uint64_t>(
                drv->pendingFillCount());
        },
        /*signal=*/true);
    t.addGauge(
        "nvdc.writeback_backlog",
        [drv] {
            return static_cast<std::uint64_t>(
                drv->pendingWritebackCount());
        },
        /*signal=*/true);
    t.addDelta("nvdc.page_faults", [drv] {
        return drv->stats().pageFaults.value();
    });
    t.addDelta("nvdc.cachefills", [drv] {
        return drv->stats().cachefills.value();
    });
    t.addDelta("nvdc.writebacks", [drv] {
        return drv->stats().writebacks.value();
    });
    t.addGauge("imc.read_queue_depth", [this] {
        std::uint64_t d = 0;
        for (const auto& ch : channels_)
            d += ch->imc().readQueueDepth();
        return d;
    });
    t.addGauge("imc.wpq_depth", [this] {
        std::uint64_t d = 0;
        for (const auto& ch : channels_)
            d += ch->imc().wpqDepth();
        return d;
    });
    t.addGauge("host_link.credits_in_use", [this] {
        return static_cast<std::uint64_t>(
            hostPort_->linkCreditsInUse());
    });
    t.addGauge("backend.queue_depth",
               [this] { return transport_->queueDepth(); });
    t.addDelta("dram.refreshes", [this] {
        std::uint64_t v = 0;
        for (const auto& ch : channels_)
            v += ch->dram().refreshCount();
        return v;
    });
    if (cfg_.nvmcEnabled && channels_[0]->nvmc()) {
        t.addDelta("nvmc.dma.bytes", [this] {
            std::uint64_t v = 0;
            for (const auto& ch : channels_)
                v += ch->nvmc()->dma().stats().bytesMoved.value();
            return v;
        });
        t.addDelta("nvmc.dma.busy_ticks", [this] {
            std::uint64_t v = 0;
            for (const auto& ch : channels_)
                v += ch->nvmc()->dma().stats().busyTicks.value();
            return v;
        });
        t.addDelta("nvmc.window_ticks", [this] {
            std::uint64_t v = 0;
            for (const auto& ch : channels_)
                v += ch->nvmc()->windowTicksGranted();
            return v;
        });
        t.addRatioPermille(
            "nvmc.window.utilization_permille",
            [this] {
                std::uint64_t v = 0;
                for (const auto& ch : channels_)
                    v += ch->nvmc()->dma().stats().busyTicks.value();
                return v;
            },
            [this] {
                std::uint64_t v = 0;
                for (const auto& ch : channels_)
                    v += ch->nvmc()->windowTicksGranted();
                return v;
            },
            /*signal=*/true);
    }
    if (channels_[0]->ftl()) {
        t.addDelta("ftl.gc_relocations", [this] {
            std::uint64_t v = 0;
            for (const auto& ch : channels_)
                v += ch->ftl()->stats().gcRelocations.value();
            return v;
        });
    }
}

Tick
NvdimmcSystem::quantumBound(const SystemConfig& cfg)
{
    Tick bound = cfg.hostLinkLatency;
    if (cfg.backendKind == backend::BackendKind::CxlHybrid) {
        // Transport messages cross the link one request latency out
        // and return one response latency out; neither may land in a
        // shard's past.
        bound = std::min(bound, cfg.cxl.reqLatency);
        bound = std::min(bound, cfg.cxl.respLatency);
    } else {
        // The driver cannot observe a CP ack faster than the compose +
        // store cost of the command that provoked it.
        bound = std::min(bound, cfg.driver.cpWriteCost);
    }
    // Staggered refresh offsets neighbouring channels' tREFI clocks by
    // tREFI / N; windows must not blur that phase relationship.
    if (cfg.staggerRefresh && cfg.channels > 1)
        bound = std::min(bound,
                         cfg.refresh.tREFI /
                             std::max<std::uint32_t>(1, cfg.channels));
    return std::max<Tick>(bound, 1);
}

std::uint32_t
NvdimmcSystem::totalSlotCount() const
{
    std::uint32_t total = 0;
    for (const auto& ch : channels_)
        total += ch->layout().slotCount();
    return total;
}

void
NvdimmcSystem::precondition(std::uint64_t first_page,
                            std::uint32_t pages, bool dirty)
{
    auto& pt = driver_->pageTable();

    // Check capacity per channel slice before touching anything.
    std::vector<std::uint32_t> demand(channels_.size(), 0);
    for (std::uint32_t i = 0; i < pages; ++i)
        ++demand[driver_->channelOf(first_page + i)];
    for (std::uint32_t c = 0; c < channels_.size(); ++c) {
        auto& cache = driver_->cache(c);
        NVDC_ASSERT(demand[c] <=
                        cache.slotCount() - cache.usedSlots(),
                    "preconditioning more pages than free slots");
    }

    for (std::uint32_t i = 0; i < pages; ++i) {
        std::uint64_t dev_page = first_page + i;
        std::uint32_t c = driver_->channelOf(dev_page);
        auto& cache = driver_->cache(c);
        std::uint32_t slot = cache.allocate(dev_page);
        cache.finishFill(slot);
        if (dirty)
            cache.markDirty(slot);
        pt.map(dev_page, slot);

        // Keep the in-DRAM metadata consistent (the firmware's
        // power-fail dump reads it from the array).
        Channel& chan = *channels_[c];
        std::uint32_t first = (slot / 4) * 4;
        Addr addr = chan.layout().metadataAddr(first);
        std::array<std::uint8_t, 64> line{};
        for (std::uint32_t j = 0; j < 4; ++j) {
            std::uint32_t s = first + j;
            if (s >= cache.slotCount())
                break;
            const auto& cs = cache.slot(s);
            nvmc::SlotMetadata m;
            // Module-local page, as the firmware's dump expects (it
            // writes into its own module's backend).
            m.nandPage = cs.devPage / channels_.size();
            m.valid = cs.state != driver::CacheSlot::State::Free;
            m.dirty = cs.dirty;
            nvmc::encodeSlotMetadata(m, line.data() + j * 16);
        }
        chan.dram().writeBurst(chan.map().decompose(addr), line.data());
    }
}

void
NvdimmcSystem::registerStats(StatRegistry& reg) const
{
    if (coord_) {
        // Export metadata only (JSON "_meta"): text dumps must stay
        // byte-identical across executor counts.
        const bool media_split = channels_[0]->mediaPort() != nullptr;
        reg.setMeta("threads", coord_->executors());
        reg.setMeta("shards",
                    static_cast<double>(coord_->shardCount()));
        reg.setMeta("executors", coord_->executors());
        reg.setMeta("media_shards", media_split ? 1.0 : 0.0);
        reg.setMeta("quantum_ticks",
                    static_cast<double>(coord_->quantum()));
        if (media_split)
            reg.setMeta("media_quantum_ticks",
                        static_cast<double>(cfg_.mediaLinkLatency));
    }

    if (channels_.size() == 1) {
        // The legacy single-channel namespace, bit-for-bit.
        const Channel& ch = *channels_[0];
        ch.dram().registerStats(reg, "dram");
        ch.bus().registerStats(reg, "bus");
        ch.imc().registerStats(reg, "imc");
        cpuCache_->registerStats(reg, "cpu");
        driver_->registerStats(reg, "nvdc");

        // Flat aliases predating the hierarchical names; sweep scripts
        // and the snapshot tests key on these.
        const auto& cache_stats = driver_->cache().stats();
        reg.addCounter("cache.hits", cache_stats.hits);
        reg.addCounter("cache.misses", cache_stats.misses);
        reg.add("cache.hit_rate",
                [this] { return driver_->cache().stats().hitRate(); });

        if (ch.nvmc()) {
            ch.nvmc()->registerStats(reg, "nvmc");
            const auto& fw = ch.nvmc()->firmware().stats();
            reg.addCounter("fw.cp_polls", fw.cpPolls);
            reg.addCounter("fw.commands", fw.commandsAccepted);
            reg.addCounter("fw.acks", fw.acksWritten);
            reg.add("fw.op_latency_mean_us", [this] {
                return channels_[0]
                           ->nvmc()
                           ->firmware()
                           .stats()
                           .opLatency.mean() /
                       1e6;
            });
        }
        if (ch.ftl()) {
            ch.ftl()->registerStats(reg, "ftl");
            ch.znand()->registerStats(reg, "znand");
        }
        return;
    }

    // Multi-channel: per-channel hardware under ch<i>.*, aggregates
    // under the legacy un-prefixed names so sweep tooling keeps
    // working across channel counts.
    for (std::uint32_t i = 0; i < channels_.size(); ++i) {
        const Channel& ch = *channels_[i];
        std::string p = "ch" + std::to_string(i) + ".";
        ch.dram().registerStats(reg, p + "dram");
        ch.bus().registerStats(reg, p + "bus");
        ch.imc().registerStats(reg, p + "imc");
    }
    reg.add("dram.refreshes", [this] {
        double v = 0;
        for (const auto& ch : channels_)
            v += static_cast<double>(
                ch->dram().stats().refreshes.value());
        return v;
    });
    // Worst-case host stall: the acceptance metric for refresh
    // staggering is the *max* across channels, not the mean.
    reg.add("imc.refresh.overhead_pct", [this] {
        Tick now = eq_.now();
        if (now == 0)
            return 0.0;
        double worst = 0;
        for (const auto& ch : channels_) {
            double pct =
                100.0 *
                static_cast<double>(
                    ch->imc().stats().refreshBlockedTicks.value()) /
                static_cast<double>(now);
            if (pct > worst)
                worst = pct;
        }
        return worst;
    });

    cpuCache_->registerStats(reg, "cpu");
    driver_->registerStats(reg, "nvdc");

    reg.add("cache.hits", [this] {
        double v = 0;
        for (std::uint32_t c = 0; c < driver_->channelCount(); ++c)
            v += static_cast<double>(
                driver_->cache(c).stats().hits.value());
        return v;
    });
    reg.add("cache.misses", [this] {
        double v = 0;
        for (std::uint32_t c = 0; c < driver_->channelCount(); ++c)
            v += static_cast<double>(
                driver_->cache(c).stats().misses.value());
        return v;
    });
    reg.add("cache.hit_rate", [this] {
        double hits = 0, misses = 0;
        for (std::uint32_t c = 0; c < driver_->channelCount(); ++c) {
            hits += static_cast<double>(
                driver_->cache(c).stats().hits.value());
            misses += static_cast<double>(
                driver_->cache(c).stats().misses.value());
        }
        double total = hits + misses;
        return total == 0 ? 0.0 : hits / total;
    });

    bool any_nvmc = false;
    for (std::uint32_t i = 0; i < channels_.size(); ++i) {
        const Channel& ch = *channels_[i];
        if (!ch.nvmc())
            continue;
        any_nvmc = true;
        ch.nvmc()->registerStats(reg,
                                 "ch" + std::to_string(i) + ".nvmc");
    }
    if (any_nvmc) {
        reg.add("nvmc.dma.bytes_moved", [this] {
            double v = 0;
            for (const auto& ch : channels_)
                if (ch->nvmc())
                    v += static_cast<double>(
                        ch->nvmc()->dma().stats().bytesMoved.value());
            return v;
        });
        reg.add("nvmc.window.utilization_pct", [this] {
            double used = 0, open = 0;
            for (const auto& ch : channels_) {
                if (!ch->nvmc())
                    continue;
                used += static_cast<double>(
                    ch->nvmc()->dma().stats().busyTicks.value());
                open += static_cast<double>(
                    ch->nvmc()->windowTicksGranted());
            }
            return open == 0 ? 0.0 : 100.0 * used / open;
        });
        reg.add("fw.cp_polls", [this] {
            double v = 0;
            for (const auto& ch : channels_)
                if (ch->nvmc())
                    v += static_cast<double>(
                        ch->nvmc()->firmware().stats().cpPolls.value());
            return v;
        });
        reg.add("fw.commands", [this] {
            double v = 0;
            for (const auto& ch : channels_)
                if (ch->nvmc())
                    v += static_cast<double>(ch->nvmc()
                                                 ->firmware()
                                                 .stats()
                                                 .commandsAccepted
                                                 .value());
            return v;
        });
        reg.add("fw.acks", [this] {
            double v = 0;
            for (const auto& ch : channels_)
                if (ch->nvmc())
                    v += static_cast<double>(ch->nvmc()
                                                 ->firmware()
                                                 .stats()
                                                 .acksWritten.value());
            return v;
        });
        reg.add("fw.op_latency_mean_us", [this] {
            double sum = 0;
            std::uint64_t count = 0;
            for (const auto& ch : channels_) {
                if (!ch->nvmc())
                    continue;
                const auto& h = ch->nvmc()->firmware().stats().opLatency;
                sum += h.mean() * static_cast<double>(h.count());
                count += h.count();
            }
            return count == 0 ? 0.0
                              : sum / static_cast<double>(count) / 1e6;
        });
    }
    for (std::uint32_t i = 0; i < channels_.size(); ++i) {
        const Channel& ch = *channels_[i];
        if (!ch.ftl())
            continue;
        std::string p = "ch" + std::to_string(i) + ".";
        ch.ftl()->registerStats(reg, p + "ftl");
        ch.znand()->registerStats(reg, p + "znand");
    }
}

void
NvdimmcSystem::dumpStats(std::ostream& os) const
{
    StatRegistry reg;
    registerStats(reg);
    reg.dump(os);
}

void
NvdimmcSystem::dumpStatsJson(std::ostream& os) const
{
    StatRegistry reg;
    registerStats(reg);
    reg.dumpJson(os);
}

bool
NvdimmcSystem::hardwareClean() const
{
    for (const auto& ch : channels_) {
        if (ch->bus().conflictCount() != 0 ||
            ch->dram().stats().violations.value() != 0)
            return false;
    }
    return true;
}

BaselineSystem::BaselineSystem(const BaselineConfig& cfg) : cfg_(cfg)
{
    NVDC_ASSERT(cfg_.channels >= 1, "system needs at least one channel");
    NVDC_ASSERT(cfg_.interleaveGranule ==
                        dram::ChannelInterleave::kPageGranule ||
                    cfg_.interleaveGranule ==
                        dram::ChannelInterleave::kLineGranule,
                "baseline interleave granule must be 4096 or 256");
    // Sharded (parallel-in-time) mode: every channel's DRAM, bus and
    // iMC simulate on their own event queue; the CPU-side components
    // stay on eq_. There is no device transport here, so the shard
    // vector is just [ch0..chN-1].
    const bool sharded = cfg_.threads >= 1;
    if (sharded) {
        shardQueues_.reserve(cfg_.channels);
        for (std::uint32_t i = 0; i < cfg_.channels; ++i)
            shardQueues_.push_back(std::make_unique<EventQueue>());
    }

    for (std::uint32_t i = 0; i < cfg_.channels; ++i) {
        EventQueue& ch_eq = sharded ? *shardQueues_[i] : eq_;
        maps_.push_back(
            std::make_unique<dram::AddressMap>(cfg.capacityBytes));
        drams_.push_back(std::make_unique<dram::DramDevice>(
            *maps_.back(), cfg.dramTiming, cfg.storeData, false));
        buses_.push_back(std::make_unique<bus::MemoryBus>(
            ch_eq, *drams_.back(), false));

        imc::ImcConfig imc_cfg = cfg.imc;
        imc_cfg.refresh = cfg.refresh;
        if (cfg_.channels > 1)
            imc_cfg.name = "ch" + std::to_string(i) + ".imc";
        imcs_.push_back(std::make_unique<imc::Imc>(
            ch_eq, *buses_.back(), imc_cfg));
    }

    std::vector<imc::Imc*> imcs;
    for (auto& i : imcs_)
        imcs.push_back(i.get());
    hostPort_ = std::make_unique<imc::HostPort>(
        std::move(imcs),
        dram::ChannelInterleave(cfg_.channels, cfg_.interleaveGranule));

    cpuCache_ = std::make_unique<cpu::CpuCacheModel>(eq_, *hostPort_,
                                                     cfg.cpuCache);
    engine_ = std::make_unique<cpu::MemcpyEngine>(
        eq_, *hostPort_, cpuCache_.get(), cfg.memcpy);
    driver_ = std::make_unique<driver::PmemDriver>(
        eq_, *engine_, cfg.capacityBytes * cfg_.channels, cfg.pmem);

    if (sharded) {
        // With no device transport the host link is the only
        // cross-shard path, so its latency is the quantum bound.
        const Tick bound = std::max<Tick>(cfg_.hostLinkLatency, 1);
        const Tick quantum =
            cfg_.quantumOverride ? cfg_.quantumOverride : bound;
        if (quantum > bound) {
            panic("sync quantum ", quantum,
                  " exceeds the conservative cross-shard latency "
                  "bound ", bound,
                  " — a mailbox message could land in a shard's past");
        }
        unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        unsigned executors =
            std::min({static_cast<unsigned>(cfg_.threads),
                      static_cast<unsigned>(cfg_.channels), hw});

        std::vector<EventQueue*> qs;
        qs.reserve(shardQueues_.size());
        for (auto& q : shardQueues_)
            qs.push_back(q.get());
        coord_ = std::make_unique<ShardCoordinator>(eq_, qs, quantum,
                                                    executors);
        eq_.setCoordinator(coord_.get());
        hostPort_->enableSharding(*coord_, eq_, std::move(qs),
                                  cfg_.hostLinkLatency,
                                  cfg_.hostLinkDepth);
        for (std::uint32_t i = 0; i < cfg_.channels; ++i)
            coord_->setLink(i, ShardCoordinator::kToHost, quantum,
                            hostPort_->lookaheadFn(i));
    }

    if (telemetry::enabled()) {
        const Tick interval =
            cfg_.telemetryIntervalTicks
                ? cfg_.telemetryIntervalTicks
                : telemetry::defaultInterval(cfg_.refresh.tREFI);
        telemetry_ =
            std::make_unique<telemetry::Collector>(eq_, interval);
        registerTelemetry(*telemetry_);
        telemetry_->start();
    }
}

void
BaselineSystem::registerTelemetry(telemetry::Collector& t)
{
    t.addGauge("imc.read_queue_depth", [this] {
        std::uint64_t d = 0;
        for (const auto& i : imcs_)
            d += i->readQueueDepth();
        return d;
    });
    t.addGauge("imc.wpq_depth", [this] {
        std::uint64_t d = 0;
        for (const auto& i : imcs_)
            d += i->wpqDepth();
        return d;
    });
    t.addGauge("host_link.credits_in_use", [this] {
        return static_cast<std::uint64_t>(
            hostPort_->linkCreditsInUse());
    });
    t.addDelta("dram.refreshes", [this] {
        std::uint64_t v = 0;
        for (const auto& d : drams_)
            v += d->refreshCount();
        return v;
    });
    t.addDelta("pmem.read_ops", [this] {
        return driver_->stats().readOps.value();
    });
    t.addDelta("pmem.write_ops", [this] {
        return driver_->stats().writeOps.value();
    });
}

void
BaselineSystem::registerStats(StatRegistry& reg) const
{
    if (coord_) {
        // Metadata only (JSON "_meta"): text dumps must stay
        // byte-identical across executor counts.
        reg.setMeta("threads", coord_->executors());
        reg.setMeta("shards",
                    static_cast<double>(coord_->shardCount()));
        reg.setMeta("executors", coord_->executors());
        reg.setMeta("quantum_ticks",
                    static_cast<double>(coord_->quantum()));
    }

    if (imcs_.size() == 1) {
        drams_[0]->registerStats(reg, "dram");
        buses_[0]->registerStats(reg, "bus");
        imcs_[0]->registerStats(reg, "imc");
    } else {
        for (std::uint32_t i = 0; i < imcs_.size(); ++i) {
            std::string p = "ch" + std::to_string(i) + ".";
            drams_[i]->registerStats(reg, p + "dram");
            buses_[i]->registerStats(reg, p + "bus");
            imcs_[i]->registerStats(reg, p + "imc");
        }
        reg.add("dram.refreshes", [this] {
            double v = 0;
            for (const auto& d : drams_)
                v += static_cast<double>(d->stats().refreshes.value());
            return v;
        });
    }

    cpuCache_->registerStats(reg, "cpu");
    const auto& st = driver_->stats();
    reg.addCounter("pmem.read_ops", st.readOps);
    reg.addCounter("pmem.write_ops", st.writeOps);
    reg.add("pmem.op_latency_mean_us",
            [this] { return driver_->stats().latency.mean() / 1e6; });
}

void
BaselineSystem::dumpStats(std::ostream& os) const
{
    StatRegistry reg;
    registerStats(reg);
    reg.dump(os);
}

void
BaselineSystem::dumpStatsJson(std::ostream& os) const
{
    StatRegistry reg;
    registerStats(reg);
    reg.dumpJson(os);
}

} // namespace nvdimmc::core
