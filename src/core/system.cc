#include "core/system.hh"

#include <array>

#include "common/logging.hh"
#include "nvm/pram.hh"
#include "nvm/sttmram.hh"

namespace nvdimmc::core
{

NvdimmcSystem::NvdimmcSystem(const SystemConfig& cfg) : cfg_(cfg)
{
    map_ = std::make_unique<dram::AddressMap>(cfg.dramCacheBytes);
    dram_ = std::make_unique<dram::DramDevice>(
        *map_, cfg.dramTiming, cfg.storeData, cfg.strictHardware);
    bus_ = std::make_unique<bus::MemoryBus>(eq_, *dram_,
                                            cfg.strictHardware);

    imc::ImcConfig imc_cfg = cfg.imc;
    imc_cfg.refresh = cfg.refresh;
    imc_ = std::make_unique<imc::Imc>(eq_, *bus_, imc_cfg);

    switch (cfg.media) {
      case MediaKind::ZNand: {
        znand_ = std::make_unique<nvm::ZNand>(eq_, cfg.znand);
        ftl_ = std::make_unique<ftl::Ftl>(eq_, *znand_, cfg.ftl);
        backend_ = ftl_.get();
        break;
      }
      case MediaKind::Pram:
        simpleMedia_ = std::make_unique<nvm::Pram>(eq_, cfg.mediaBytes);
        directBackend_ =
            std::make_unique<nvm::DirectBackend>(*simpleMedia_);
        backend_ = directBackend_.get();
        break;
      case MediaKind::SttMram:
        simpleMedia_ =
            std::make_unique<nvm::SttMram>(eq_, cfg.mediaBytes);
        directBackend_ =
            std::make_unique<nvm::DirectBackend>(*simpleMedia_);
        backend_ = directBackend_.get();
        break;
      case MediaKind::Delay:
        delayMedia_ = std::make_unique<nvm::DelayMedia>(
            eq_, cfg.mediaBytes, cfg.delayMediaLatency);
        directBackend_ =
            std::make_unique<nvm::DirectBackend>(*delayMedia_);
        backend_ = directBackend_.get();
        break;
    }

    if (cfg.driver.cpQueueDepth != cfg.nvmc.firmware.cpQueueDepth) {
        warn("NvdimmcSystem: driver CP depth (",
             cfg.driver.cpQueueDepth, ") != firmware CP depth (",
             cfg.nvmc.firmware.cpQueueDepth,
             ") — commands on the unpolled slots will never be acked");
    }
    std::uint32_t cp_depth =
        std::max(cfg.driver.cpQueueDepth, cfg.nvmc.firmware.cpQueueDepth);
    layout_ = std::make_unique<nvmc::ReservedLayout>(cfg.dramCacheBytes,
                                                     cp_depth);

    if (cfg.nvmcEnabled) {
        nvmc::NvmcConfig nvmc_cfg = cfg.nvmc;
        nvmc_cfg.programmedRefresh = cfg.refresh;
        nvmc_ = std::make_unique<nvmc::Nvmc>(eq_, *bus_, *backend_,
                                             *layout_, nvmc_cfg);
    }

    cpuCache_ =
        std::make_unique<cpu::CpuCacheModel>(eq_, *imc_, cfg.cpuCache);
    engine_ = std::make_unique<cpu::MemcpyEngine>(
        eq_, *imc_, cpuCache_.get(), cfg.memcpy);
    driver_ = std::make_unique<driver::NvdcDriver>(
        eq_, *cpuCache_, *engine_, *layout_, backend_->pageCount(),
        cfg.driver);
}

void
NvdimmcSystem::precondition(std::uint64_t first_page,
                            std::uint32_t pages, bool dirty)
{
    auto& cache = driver_->cache();
    auto& pt = driver_->pageTable();
    NVDC_ASSERT(pages <= cache.slotCount() - cache.usedSlots(),
                "preconditioning more pages than free slots");

    for (std::uint32_t i = 0; i < pages; ++i) {
        std::uint64_t dev_page = first_page + i;
        std::uint32_t slot = cache.allocate(dev_page);
        cache.finishFill(slot);
        if (dirty)
            cache.markDirty(slot);
        pt.map(dev_page, slot);

        // Keep the in-DRAM metadata consistent (the firmware's
        // power-fail dump reads it from the array).
        std::uint32_t first = (slot / 4) * 4;
        Addr addr = layout_->metadataAddr(first);
        std::array<std::uint8_t, 64> line{};
        for (std::uint32_t j = 0; j < 4; ++j) {
            std::uint32_t s = first + j;
            if (s >= cache.slotCount())
                break;
            const auto& cs = cache.slot(s);
            nvmc::SlotMetadata m;
            m.nandPage = cs.devPage;
            m.valid = cs.state != driver::CacheSlot::State::Free;
            m.dirty = cs.dirty;
            nvmc::encodeSlotMetadata(m, line.data() + j * 16);
        }
        dram_->writeBurst(map_->decompose(addr), line.data());
    }
}

void
NvdimmcSystem::registerStats(StatRegistry& reg) const
{
    dram_->registerStats(reg, "dram");
    bus_->registerStats(reg, "bus");
    imc_->registerStats(reg, "imc");
    cpuCache_->registerStats(reg, "cpu");
    driver_->registerStats(reg, "nvdc");

    // Flat aliases predating the hierarchical names; sweep scripts and
    // the snapshot tests key on these.
    const auto& cache_stats = driver_->cache().stats();
    reg.addCounter("cache.hits", cache_stats.hits);
    reg.addCounter("cache.misses", cache_stats.misses);
    reg.add("cache.hit_rate",
            [this] { return driver_->cache().stats().hitRate(); });

    if (nvmc_) {
        nvmc_->registerStats(reg, "nvmc");
        const auto& fw = nvmc_->firmware().stats();
        reg.addCounter("fw.cp_polls", fw.cpPolls);
        reg.addCounter("fw.commands", fw.commandsAccepted);
        reg.addCounter("fw.acks", fw.acksWritten);
        reg.add("fw.op_latency_mean_us", [this] {
            return nvmc_->firmware().stats().opLatency.mean() / 1e6;
        });
    }
    if (ftl_) {
        ftl_->registerStats(reg, "ftl");
        znand_->registerStats(reg, "znand");
    }
}

void
NvdimmcSystem::dumpStats(std::ostream& os) const
{
    StatRegistry reg;
    registerStats(reg);
    reg.dump(os);
}

void
NvdimmcSystem::dumpStatsJson(std::ostream& os) const
{
    StatRegistry reg;
    registerStats(reg);
    reg.dumpJson(os);
}

bool
NvdimmcSystem::hardwareClean() const
{
    return bus_->conflictCount() == 0 &&
           dram_->stats().violations.value() == 0;
}

BaselineSystem::BaselineSystem(const BaselineConfig& cfg) : cfg_(cfg)
{
    map_ = std::make_unique<dram::AddressMap>(cfg.capacityBytes);
    dram_ = std::make_unique<dram::DramDevice>(*map_, cfg.dramTiming,
                                               cfg.storeData, false);
    bus_ = std::make_unique<bus::MemoryBus>(eq_, *dram_, false);

    imc::ImcConfig imc_cfg = cfg.imc;
    imc_cfg.refresh = cfg.refresh;
    imc_ = std::make_unique<imc::Imc>(eq_, *bus_, imc_cfg);

    cpuCache_ =
        std::make_unique<cpu::CpuCacheModel>(eq_, *imc_, cfg.cpuCache);
    engine_ = std::make_unique<cpu::MemcpyEngine>(
        eq_, *imc_, cpuCache_.get(), cfg.memcpy);
    driver_ = std::make_unique<driver::PmemDriver>(
        eq_, *engine_, cfg.capacityBytes, cfg.pmem);
}

} // namespace nvdimmc::core
