#include "core/power.hh"

#include "common/logging.hh"

namespace nvdimmc::core
{

PowerFailureReport
simulatePowerFailure(NvdimmcSystem& sys, const PowerFailureScenario& sc)
{
    PowerFailureReport report;

    if (sys.transport().traits().kind ==
        backend::BackendKind::Nvdimmc) {
        bool any_nvmc = false;
        for (std::uint32_t c = 0; c < sys.channelCount(); ++c)
            if (sys.channel(c).nvmc())
                any_nvmc = true;
        if (!any_nvmc) {
            warn("power failure on a system without an NVMC: nothing "
                 "can be dumped");
        }
    }

    // Every channel's module dies with the host; the ADR flush and the
    // device-side energy-reserve dumps run on each channel and sum
    // into the report. The transport knows what its device can save.
    auto dump_all = [&] {
        for (std::uint32_t c = 0; c < sys.channelCount(); ++c)
            report.pagesDumped += sys.transport().powerFailFlush(c);
    };
    auto drain_wpqs = [&] {
        for (std::uint32_t c = 0; c < sys.channelCount(); ++c) {
            if (sc.adrWorks)
                report.wpqFlushed += sys.channel(c).imc().adrFlushWpq();
            else
                report.wpqLost += sys.channel(c).imc().dropWpq();
        }
    };

    if (sc.raceWindow) {
        // Dump first: WPQ stores lose the race and are invisible to
        // the firmware even though ADR technically saved them into
        // DRAM afterwards.
        dump_all();
        drain_wpqs();
        return report;
    }

    drain_wpqs();
    dump_all();

    return report;
}

} // namespace nvdimmc::core
