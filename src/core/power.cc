#include "core/power.hh"

#include "common/logging.hh"

namespace nvdimmc::core
{

PowerFailureReport
simulatePowerFailure(NvdimmcSystem& sys, const PowerFailureScenario& sc)
{
    PowerFailureReport report;

    if (!sys.nvmc()) {
        warn("power failure on a system without an NVMC: nothing "
             "can be dumped");
    }

    if (sc.raceWindow) {
        // Dump first: WPQ stores lose the race and are invisible to
        // the firmware even though ADR technically saved them into
        // DRAM afterwards.
        if (sys.nvmc())
            report.pagesDumped = sys.nvmc()->firmware().powerFailDump();
        if (sc.adrWorks)
            report.wpqFlushed = sys.imc().adrFlushWpq();
        else
            report.wpqLost = sys.imc().dropWpq();
        return report;
    }

    if (sc.adrWorks)
        report.wpqFlushed = sys.imc().adrFlushWpq();
    else
        report.wpqLost = sys.imc().dropWpq();

    if (sys.nvmc())
        report.pagesDumped = sys.nvmc()->firmware().powerFailDump();

    return report;
}

} // namespace nvdimmc::core
