#include "core/system_config.hh"

namespace nvdimmc::core
{

SystemConfig
SystemConfig::deriveScaled(std::uint64_t cacheBytes)
{
    SystemConfig c;
    c.dramCacheBytes = cacheBytes;
    c.dramTiming = dram::Ddr4Timing::ddr4_1600();
    c.refresh = dram::RefreshRegisters::nvdimmc();
    c.media = MediaKind::ZNand;
    c.imc.refresh = c.refresh;
    c.nvmc.programmedRefresh = c.refresh;
    c.nvmc.firmware = nvmc::FirmwareConfig::poc();
    return c;
}

SystemConfig&
SystemConfig::applyCxlBackend()
{
    backendKind = backend::BackendKind::CxlHybrid;
    // No CP page, no snooping controller: the device answers over the
    // link, so the module-side NVMC never gets built.
    nvmcEnabled = false;
    // The extended tRFC exists only to widen the DMA windows the CXL
    // device does not need; its internal DRAM refreshes normally.
    refresh = dram::RefreshRegisters::standard();
    imc.refresh = refresh;
    // Nothing pins a cache slot to one module's DRAM anymore: stripe
    // at the CXL line granule.
    interleaveGranule = cxl.interleaveGranule;
    return *this;
}

SystemConfig
SystemConfig::paperPoc()
{
    SystemConfig c = deriveScaled(16 * kGiB);
    c.znand = nvm::ZNandParams::poc128GB();
    // Full-scale runs are throughput studies; the analytic memcpy
    // keeps bulk data out of the byte store (which must stay on for
    // the CP/ack/metadata channel the driver and FPGA share).
    c.memcpy.bulkMode = true;
    return c;
}

SystemConfig
SystemConfig::scaledTest()
{
    // Cache intentionally much smaller than the NAND so eviction and
    // writeback paths are exercised quickly.
    SystemConfig c = deriveScaled(4 * kMiB);
    c.znand = nvm::ZNandParams::tiny();
    c.ftl.gcLowWaterBlocks = 2;
    c.ftl.gcHighWaterBlocks = 4;
    c.cpuCache.capacityLines = 16 * 1024;
    c.storeData = true;
    return c;
}

SystemConfig
SystemConfig::scaledBench()
{
    SystemConfig c = deriveScaled(512 * kMiB);
    // 4 GiB of NAND (3.75 GiB exposed): tiny() geometry scaled up.
    c.znand = nvm::ZNandParams::tiny();
    c.znand.diesPerChannel = 2;
    c.znand.planesPerDie = 2;
    c.znand.blocksPerPlane = 512;
    c.znand.pagesPerBlock = 256;
    c.memcpy.bulkMode = true;
    return c;
}

BaselineConfig
BaselineConfig::paper()
{
    BaselineConfig c;
    c.capacityBytes = 128 * kGiB;
    c.refresh = dram::RefreshRegisters::nvdimmc();
    c.imc.refresh = c.refresh;
    c.memcpy.bulkMode = true;
    return c;
}

BaselineConfig
BaselineConfig::scaledBench()
{
    BaselineConfig c;
    c.capacityBytes = 8 * kGiB;
    c.refresh = dram::RefreshRegisters::nvdimmc();
    c.imc.refresh = c.refresh;
    c.memcpy.bulkMode = true;
    return c;
}

} // namespace nvdimmc::core
