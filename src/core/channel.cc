#include "core/channel.hh"

#include <string>

#include "nvm/pram.hh"
#include "nvm/sttmram.hh"

namespace nvdimmc::core
{

Channel::Channel(EventQueue& eq, const SystemConfig& cfg,
                 std::uint32_t index, std::uint32_t count,
                 std::uint32_t cp_depth, EventQueue* media_eq)
    : index_(index)
{
    map_ = std::make_unique<dram::AddressMap>(cfg.dramCacheBytes);
    dram_ = std::make_unique<dram::DramDevice>(
        *map_, cfg.dramTiming, cfg.storeData, cfg.strictHardware);
    bus_ = std::make_unique<bus::MemoryBus>(eq, *dram_,
                                            cfg.strictHardware);

    imc::ImcConfig imc_cfg = cfg.imc;
    imc_cfg.refresh = cfg.refresh;
    if (count > 1) {
        imc_cfg.name = "ch" + std::to_string(index) + ".imc";
        // Stagger the refresh clocks so the per-channel tRFC blackouts
        // (and DMA windows) spread evenly over the tREFI period.
        if (cfg.staggerRefresh)
            imc_cfg.refreshPhase =
                index * (cfg.refresh.tREFI / count);
    }
    imc_ = std::make_unique<imc::Imc>(eq, *bus_, imc_cfg);

    switch (cfg.media) {
      case MediaKind::ZNand: {
        // With a media queue, the whole media stack simulates on its
        // own shard; the firmware reaches it through the MediaPort
        // seam instead of calling the FTL directly.
        EventQueue& meq = media_eq ? *media_eq : eq;
        znand_ = std::make_unique<nvm::ZNand>(meq, cfg.znand);
        ftl_ = std::make_unique<ftl::Ftl>(meq, *znand_, cfg.ftl);
        if (media_eq) {
            mediaPort_ = std::make_unique<nvm::MediaPort>(*ftl_);
            backend_ = mediaPort_.get();
        } else {
            backend_ = ftl_.get();
        }
        break;
      }
      case MediaKind::Pram:
        simpleMedia_ = std::make_unique<nvm::Pram>(eq, cfg.mediaBytes);
        directBackend_ =
            std::make_unique<nvm::DirectBackend>(*simpleMedia_);
        backend_ = directBackend_.get();
        break;
      case MediaKind::SttMram:
        simpleMedia_ =
            std::make_unique<nvm::SttMram>(eq, cfg.mediaBytes);
        directBackend_ =
            std::make_unique<nvm::DirectBackend>(*simpleMedia_);
        backend_ = directBackend_.get();
        break;
      case MediaKind::Delay:
        delayMedia_ = std::make_unique<nvm::DelayMedia>(
            eq, cfg.mediaBytes, cfg.delayMediaLatency);
        directBackend_ =
            std::make_unique<nvm::DirectBackend>(*delayMedia_);
        backend_ = directBackend_.get();
        break;
    }

    layout_ = std::make_unique<nvmc::ReservedLayout>(cfg.dramCacheBytes,
                                                     cp_depth);

    if (cfg.nvmcEnabled) {
        nvmc::NvmcConfig nvmc_cfg = cfg.nvmc;
        nvmc_cfg.programmedRefresh = cfg.refresh;
        nvmc_ = std::make_unique<nvmc::Nvmc>(eq, *bus_, *backend_,
                                             *layout_, nvmc_cfg);
    }
}

} // namespace nvdimmc::core
