#include "nvm/media_port.hh"

#include <utility>
#include <vector>

#include "common/logging.hh"

namespace nvdimmc::nvm
{

void
MediaPort::enableSharding(ShardCoordinator& coord, EventQueue& ddr_eq,
                          EventQueue& media_eq, std::uint32_t ddr_shard,
                          std::uint32_t media_shard, Tick link_latency)
{
    NVDC_ASSERT(link_latency > 0,
                "media link latency must be positive (it is the "
                "firmware <-> media lookahead)");
    NVDC_ASSERT(ddr_shard != media_shard,
                "media seam needs two distinct shards");
    coord_ = &coord;
    ddrEq_ = &ddr_eq;
    mediaEq_ = &media_eq;
    ddrShard_ = ddr_shard;
    mediaShard_ = media_shard;
    linkLatency_ = link_latency;
}

ShardCoordinator::Promise
MediaPort::lookaheadFn()
{
    // posted_ is written on the DDR shard at op-post time, completed_
    // on the media shard at completion-post time; the coordinator reads
    // both between rounds, after the barrier that ordered the writes.
    // Equal counts mean every posted op has already pushed its
    // completion into the mailbox: whatever else the media shard still
    // has queued is FTL-internal (GC, erase) and never crosses back.
    return [this]() -> Tick {
        return posted_ == completed_ ? kTickNever : 0;
    };
}

Callback
MediaPort::wrapDone(Callback done)
{
    if (!done)
        return {};
    return [this, done = std::move(done)]() mutable {
        ++completed_;
        coord_->postToPeer(mediaShard_, ddrShard_,
                           mediaEq_->now() + linkLatency_,
                           std::move(done));
    };
}

void
MediaPort::readPage(std::uint64_t page_no, std::uint8_t* buf,
                    Callback done, span::Id span)
{
    if (!coord_ || !coord_->inRound()) {
        inner_.readPage(page_no, buf, std::move(done), span);
        return;
    }
    if (done)
        ++posted_;
    coord_->postToPeer(
        ddrShard_, mediaShard_, ddrEq_->now() + linkLatency_,
        [this, page_no, buf, done = std::move(done), span]() mutable {
            inner_.readPage(page_no, buf, wrapDone(std::move(done)),
                            span);
        });
}

void
MediaPort::writePage(std::uint64_t page_no, const std::uint8_t* data,
                     Callback done, span::Id span)
{
    if (!coord_ || !coord_->inRound()) {
        inner_.writePage(page_no, data, std::move(done), span);
        return;
    }
    if (done)
        ++posted_;
    // The FTL copies page data at writePage() time in the serial
    // model; crossing the seam defers the call by the link latency, so
    // snapshot the payload now to keep write-after-write contents
    // identical to the serial interleaving.
    std::vector<std::uint8_t> copy(data, data + kPageBytes);
    coord_->postToPeer(
        ddrShard_, mediaShard_, ddrEq_->now() + linkLatency_,
        [this, page_no, copy = std::move(copy),
         done = std::move(done), span]() mutable {
            inner_.writePage(page_no, copy.data(),
                             wrapDone(std::move(done)), span);
        });
}

} // namespace nvdimmc::nvm
