/**
 * @file
 * Firmware <-> media shard seam.
 *
 * In media-sharded mode each channel's FTL + Z-NAND simulate on their
 * own event queue (the media shard), decoupled from the DDR-side shard
 * (iMC, bus, DRAM, NVMC controller + firmware). MediaPort is the
 * PageBackend the firmware talks to: serial and non-split systems
 * forward straight to the real backend — same call sequence, same
 * ticks — while a sharded system turns every readPage/writePage into a
 * mailbox message to the media shard stamped one media command latency
 * ahead, with the completion crossing back the same way. The modeled
 * latency is the NVMe-style command issue path between the A53
 * firmware and the flash controller; because NAND service times are
 * µs-scale, this link's lookahead dwarfs the host-link quantum and the
 * pair barely ever bounds the sync window.
 *
 * The port also carries the pair's adaptive-lookahead promise: it
 * counts ops posted across the seam (DDR side) against completions
 * posted back (media side). When the counts match, the media shard
 * provably cannot emit anything — FTL-internal work (GC relocation,
 * erases, wear leveling) never crosses the seam — so the promise
 * returns kTickNever and the coordinator may run the neighbours far
 * past the static bound. Both counters are single-writer and only read
 * between rounds on the coordinating thread; the round barrier is all
 * the synchronization they need.
 *
 * Pre-run preconditioning and the post-mortem power-fail dump call the
 * backend outside any sync window; those forward directly (the backend
 * commits page data at call time, so post-mortem writes land even
 * though no more events run).
 */

#ifndef NVDIMMC_NVM_MEDIA_PORT_HH
#define NVDIMMC_NVM_MEDIA_PORT_HH

#include <cstdint>

#include "common/event_queue.hh"
#include "common/shard.hh"
#include "nvm/nvm_media.hh"

namespace nvdimmc::nvm
{

/** The firmware-side proxy for a (possibly shard-split) PageBackend. */
class MediaPort : public PageBackend
{
  public:
    explicit MediaPort(PageBackend& inner) : inner_(inner) {}

    /**
     * Route page ops across the shard seam: calls made during a sync
     * window post to @p media_shard's queue stamped @p link_latency
     * past the DDR shard's clock, and completions post back the same
     * way. @p ddr_shard / @p media_shard are coordinator shard
     * indices. Must be called before any traffic.
     */
    void enableSharding(ShardCoordinator& coord, EventQueue& ddr_eq,
                        EventQueue& media_eq, std::uint32_t ddr_shard,
                        std::uint32_t media_shard, Tick link_latency);

    /** Is the seam split across shards? */
    bool sharded() const { return coord_ != nullptr; }

    /** The media -> DDR link's adaptive-lookahead promise: kTickNever
     *  while no posted op awaits its completion. */
    ShardCoordinator::Promise lookaheadFn();

    std::uint64_t pageCount() const override
    {
        return inner_.pageCount();
    }

    void readPage(std::uint64_t page_no, std::uint8_t* buf,
                  Callback done, span::Id span = 0) override;

    void writePage(std::uint64_t page_no, const std::uint8_t* data,
                   Callback done, span::Id span = 0) override;

  private:
    /** Redirect a media-side completion back to the DDR shard. */
    Callback wrapDone(Callback done);

    PageBackend& inner_;

    ShardCoordinator* coord_ = nullptr;
    EventQueue* ddrEq_ = nullptr;
    EventQueue* mediaEq_ = nullptr;
    std::uint32_t ddrShard_ = 0;
    std::uint32_t mediaShard_ = 0;
    Tick linkLatency_ = 0;

    /** @name Promise inputs (in-flight = posted - completed). */
    /** @{ */
    /** Ops posted across the seam; DDR-shard writer only. */
    std::uint64_t posted_ = 0;
    /** Completions posted back; media-shard writer only. */
    std::uint64_t completed_ = 0;
    /** @} */
};

} // namespace nvdimmc::nvm

#endif // NVDIMMC_NVM_MEDIA_PORT_HH
