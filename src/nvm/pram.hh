/**
 * @file
 * Phase-change RAM media preset (3DX-class latencies, paper refs
 * [3][5][43]): reads of hundreds of nanoseconds, writes around a
 * microsecond, asymmetric bandwidth.
 */

#ifndef NVDIMMC_NVM_PRAM_HH
#define NVDIMMC_NVM_PRAM_HH

#include "nvm/nvm_media.hh"

namespace nvdimmc::nvm
{

/** PRAM media. */
class Pram : public SimpleMedia
{
  public:
    Pram(EventQueue& eq, std::uint64_t capacity)
        : SimpleMedia(eq, "pram", capacity, defaultParams())
    {
    }

    static Params
    defaultParams()
    {
        Params p;
        p.readLatency = 300 * kNs;
        p.writeLatency = 1 * kUs;
        p.bandwidthMBps = 2000.0;
        return p;
    }
};

} // namespace nvdimmc::nvm

#endif // NVDIMMC_NVM_PRAM_HH
