/**
 * @file
 * STT-MRAM media preset (paper refs [1][14][15]): tens-of-nanoseconds
 * reads and writes — the only media fast enough for the paper's
 * rejected NVMC-as-frontend design, and the best case for NVDIMM-C's
 * backend.
 */

#ifndef NVDIMMC_NVM_STTMRAM_HH
#define NVDIMMC_NVM_STTMRAM_HH

#include "nvm/nvm_media.hh"

namespace nvdimmc::nvm
{

/** STT-MRAM media. */
class SttMram : public SimpleMedia
{
  public:
    SttMram(EventQueue& eq, std::uint64_t capacity)
        : SimpleMedia(eq, "stt-mram", capacity, defaultParams())
    {
    }

    static Params
    defaultParams()
    {
        Params p;
        p.readLatency = 50 * kNs;
        p.writeLatency = 50 * kNs;
        p.bandwidthMBps = 6000.0;
        return p;
    }
};

} // namespace nvdimmc::nvm

#endif // NVDIMMC_NVM_STTMRAM_HH
