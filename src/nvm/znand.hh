/**
 * @file
 * Z-NAND flash model (low-latency SLC NAND, paper ref [17]).
 *
 * Geometry: channels x dies x planes x blocks x pages. Each die is a
 * serially busy resource; each channel serializes data transfers. The
 * PoC device in the paper clocks the NAND PHY at 50 MHz (a tenth of
 * max), which we model as a low channel bandwidth; the ASIC ablation
 * raises it.
 *
 * NAND discipline is enforced: a page must be erased before it is
 * programmed, pages within a block are programmed in order, and erase
 * counts are tracked per block for the wear-leveling study.
 */

#ifndef NVDIMMC_NVM_ZNAND_HH
#define NVDIMMC_NVM_ZNAND_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/span.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvm/nvm_media.hh"

namespace nvdimmc::nvm
{

/** Flat address of one 4 KB NAND page. */
struct NandAddr
{
    std::uint32_t channel = 0;
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    bool operator==(const NandAddr&) const = default;
};

/** Z-NAND geometry and timing. */
struct ZNandParams
{
    std::uint32_t channels = 2;
    std::uint32_t diesPerChannel = 2;
    std::uint32_t planesPerDie = 2;
    std::uint32_t blocksPerPlane = 1024;
    std::uint32_t pagesPerBlock = 256;
    std::uint32_t pageBytes = 4096;

    Tick tR = 3 * kUs;       ///< Page read (array -> register).
    Tick tPROG = 75 * kUs;   ///< Page program.
    Tick tBERS = 1000 * kUs; ///< Block erase.
    /** Channel transfer bandwidth (PoC: 50 MHz PHY ~= 200 MB/s). */
    double channelMBps = 200.0;

    std::uint64_t
    totalPages() const
    {
        return std::uint64_t{channels} * diesPerChannel * planesPerDie *
               blocksPerPlane * pagesPerBlock;
    }

    std::uint64_t
    totalBlocks() const
    {
        return std::uint64_t{channels} * diesPerChannel * planesPerDie *
               blocksPerPlane;
    }

    std::uint64_t capacityBytes() const
    {
        return totalPages() * pageBytes;
    }

    /** The paper's 2 x 64 GB configuration. */
    static ZNandParams poc128GB();

    /** A scaled-down geometry for fast tests (a few MiB). */
    static ZNandParams tiny();
};

/** Z-NAND statistics. */
struct ZNandStats
{
    Counter pageReads;
    Counter pagePrograms;
    Counter blockErases;
    Counter disciplineViolations;
    Counter programFailures;
    Histogram readLatency;
    Histogram programLatency;
};

/** The Z-NAND device. */
class ZNand
{
  public:
    ZNand(EventQueue& eq, const ZNandParams& p);

    const ZNandParams& params() const { return params_; }

    /** @name Flat page/block numbering helpers. */
    /** @{ */
    std::uint64_t flatPage(const NandAddr& a) const;
    NandAddr fromFlatPage(std::uint64_t page_no) const;
    std::uint64_t flatBlock(const NandAddr& a) const;
    std::uint64_t flatBlockOfPage(std::uint64_t page_no) const
    {
        return page_no / params_.pagesPerBlock;
    }
    /** @} */

    /**
     * Read one page. @p buf (nullable) receives pageBytes of data at
     * completion. @p span, if non-zero, gets its NandRead phase
     * stamped at media-completion time.
     */
    void readPage(std::uint64_t page_no, std::uint8_t* buf,
                  Callback done, span::Id span = 0);

    /**
     * Program one page. The page must be erased; programming a
     * written page or out of order within the block records a
     * discipline violation (and still completes, with the data
     * clobbered, as real NAND would corrupt). @p span, if non-zero,
     * gets its NandProgram phase stamped at completion.
     */
    void programPage(std::uint64_t page_no, const std::uint8_t* data,
                     Callback done, span::Id span = 0);

    /** Erase a whole block. */
    void eraseBlock(std::uint64_t block_no, Callback done);

    /** @name Introspection for the FTL and tests. */
    /** @{ */
    bool pageProgrammed(std::uint64_t page_no) const;
    std::uint32_t eraseCount(std::uint64_t block_no) const;
    std::uint32_t maxEraseCount() const;
    /** Mark a block bad (manufacturing defect injection). */
    void markBadBlock(std::uint64_t block_no);
    bool isBadBlock(std::uint64_t block_no) const;
    /**
     * Test/bench scaffolding: mark a page programmed (zero contents)
     * without paying tPROG or occupying the die.
     */
    void preconditionProgrammed(std::uint64_t page_no);
    /**
     * Failure injection: the next program targeting @p block_no
     * reports failure (grown defect). The FTL is expected to retire
     * the block and retry elsewhere.
     */
    void failNextProgramIn(std::uint64_t block_no);
    /** Did the most recent program on this block fail? */
    bool lastProgramFailed() const { return lastProgramFailed_; }
    /**
     * Rate-based failure injection: called once per program with the
     * target page; returning true makes that program report failure
     * (same semantics as failNextProgramIn). The hook runs inside the
     * media event context, so a deterministic sampler yields
     * thread-count-independent campaigns. Null clears it.
     */
    void
    setProgramFaultHook(std::function<bool(std::uint64_t)> hook)
    {
        programFaultHook_ = std::move(hook);
    }
    /** @} */

    /** @name Device-state checkpointing (fault campaigns).
     *  Persistent media state only: per-block program/erase cursors,
     *  page contents and the bad-block list. Transient simulation
     *  state (die/channel busy times, pending fault injections) is
     *  not saved — checkpoint at a quiesced instant. */
    /** @{ */
    void saveState(ByteWriter& w) const;
    void loadState(ByteReader& r);
    /** @} */

    const ZNandStats& stats() const { return stats_; }

    /** Register live counters + read/program latency histograms under
     *  @p prefix (e.g. "znand.page_programs"). */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

  private:
    struct BlockState
    {
        std::uint32_t eraseCount = 0;
        std::uint32_t nextPage = 0; ///< In-order programming cursor.
        std::vector<bool> programmed;
    };

    struct DieState
    {
        Tick busyUntil = 0;
    };

    BlockState& blockState(std::uint64_t block_no);
    const BlockState* blockStateIfAny(std::uint64_t block_no) const;
    DieState& dieOf(std::uint64_t page_no);
    Tick channelTransferTime() const;
    Tick claimChannel(std::uint64_t page_no, Tick earliest);

    EventQueue& eq_;
    ZNandParams params_;
    std::vector<DieState> dies_;
    std::vector<Tick> channelBusyUntil_;
    std::unordered_map<std::uint64_t, BlockState> blocks_;
    std::unordered_map<std::uint64_t,
                       std::vector<std::uint8_t>> pageData_;
    std::unordered_set<std::uint64_t> badBlocks_;
    std::unordered_set<std::uint64_t> failNextProgram_;
    std::function<bool(std::uint64_t)> programFaultHook_;
    bool lastProgramFailed_ = false;
    ZNandStats stats_;
};

/**
 * PageBackend over Z-NAND *without* an FTL — used only by unit tests;
 * the real stack layers ftl::Ftl on top.
 */
class RawZNandBackend : public PageBackend
{
  public:
    explicit RawZNandBackend(ZNand& nand) : nand_(nand) {}

    std::uint64_t pageCount() const override
    {
        return nand_.params().totalPages();
    }

    void readPage(std::uint64_t page_no, std::uint8_t* buf,
                  Callback done, span::Id span = 0) override
    {
        nand_.readPage(page_no, buf, std::move(done), span);
    }

    void writePage(std::uint64_t page_no, const std::uint8_t* data,
                   Callback done, span::Id span = 0) override
    {
        nand_.programPage(page_no, data, std::move(done), span);
    }

  private:
    ZNand& nand_;
};

} // namespace nvdimmc::nvm

#endif // NVDIMMC_NVM_ZNAND_HH
