/**
 * @file
 * Programmable-delay media: the paper's *hypothetical NVDIMM-C device*
 * (§VII-D1). Every 4 KB access costs a fixed, programmable delay tD;
 * tD = 0 isolates the software overhead of the nvdc driver, and
 * tD = {7.8, 3.9, 1.85} us model media exactly matching the normal,
 * doubled, and quadrupled refresh rates.
 */

#ifndef NVDIMMC_NVM_DELAY_MEDIA_HH
#define NVDIMMC_NVM_DELAY_MEDIA_HH

#include "nvm/nvm_media.hh"

namespace nvdimmc::nvm
{

/** Fixed-latency media with unbounded internal parallelism. */
class DelayMedia : public NvmMedia
{
  public:
    DelayMedia(EventQueue& eq, std::uint64_t capacity, Tick delay)
        : NvmMedia(eq, "delay-media", capacity), delay_(delay)
    {
    }

    Tick delay() const { return delay_; }
    void setDelay(Tick d) { delay_ = d; }

  protected:
    Tick readServiceTime(Addr, std::uint32_t) override { return delay_; }
    Tick writeServiceTime(Addr, std::uint32_t) override { return delay_; }

  private:
    Tick delay_;
};

} // namespace nvdimmc::nvm

#endif // NVDIMMC_NVM_DELAY_MEDIA_HH
