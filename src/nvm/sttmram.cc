// SttMram is a header-only preset over SimpleMedia.
#include "nvm/sttmram.hh"
