// Pram is a header-only preset over SimpleMedia.
#include "nvm/pram.hh"
