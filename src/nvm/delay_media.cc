// DelayMedia is header-only.
#include "nvm/delay_media.hh"
