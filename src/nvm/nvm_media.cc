#include "nvm/nvm_media.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace nvdimmc::nvm
{

NvmMedia::NvmMedia(EventQueue& eq, std::string name,
                   std::uint64_t capacity)
    : eq_(eq), name_(std::move(name)), capacity_(capacity)
{
}

void
NvmMedia::storeBytes(Addr addr, std::uint32_t len,
                     const std::uint8_t* data)
{
    NVDC_ASSERT(addr + len <= capacity_, "media write out of range");
    std::uint32_t done = 0;
    while (done < len) {
        Addr a = addr + done;
        std::uint64_t idx = a / kChunk;
        std::uint32_t off = static_cast<std::uint32_t>(a % kChunk);
        std::uint32_t n = std::min(len - done, kChunk - off);
        auto& chunk = chunks_[idx];
        if (chunk.empty())
            chunk.assign(kChunk, 0);
        std::memcpy(chunk.data() + off, data + done, n);
        done += n;
    }
}

void
NvmMedia::loadBytes(Addr addr, std::uint32_t len, std::uint8_t* buf) const
{
    NVDC_ASSERT(addr + len <= capacity_, "media read out of range");
    std::uint32_t done = 0;
    while (done < len) {
        Addr a = addr + done;
        std::uint64_t idx = a / kChunk;
        std::uint32_t off = static_cast<std::uint32_t>(a % kChunk);
        std::uint32_t n = std::min(len - done, kChunk - off);
        auto it = chunks_.find(idx);
        if (it == chunks_.end())
            std::memset(buf + done, 0, n);
        else
            std::memcpy(buf + done, it->second.data() + off, n);
        done += n;
    }
}

void
NvmMedia::readRange(Addr addr, std::uint32_t len, std::uint8_t* buf,
                    Callback done)
{
    Tick service = readServiceTime(addr, len);
    stats_.reads.inc();
    stats_.readLatency.record(service);
    if (buf)
        loadBytes(addr, len, buf);
    eq_.scheduleAfter(service, std::move(done));
}

void
NvmMedia::writeRange(Addr addr, std::uint32_t len,
                     const std::uint8_t* data, Callback done)
{
    Tick service = writeServiceTime(addr, len);
    stats_.writes.inc();
    stats_.writeLatency.record(service);
    if (data)
        storeBytes(addr, len, data);
    eq_.scheduleAfter(service, std::move(done));
}

SimpleMedia::SimpleMedia(EventQueue& eq, std::string name,
                         std::uint64_t capacity, const Params& p)
    : NvmMedia(eq, std::move(name), capacity), params_(p)
{
}

Tick
SimpleMedia::transferTime(std::uint32_t len) const
{
    double bytes_per_ps = params_.bandwidthMBps * 1e6 / 1e12;
    return static_cast<Tick>(static_cast<double>(len) / bytes_per_ps);
}

Tick
SimpleMedia::readServiceTime(Addr, std::uint32_t len)
{
    Tick start = std::max(eq_.now(), busyUntil_);
    Tick finish = start + params_.readLatency + transferTime(len);
    busyUntil_ = finish;
    return finish - eq_.now();
}

Tick
SimpleMedia::writeServiceTime(Addr, std::uint32_t len)
{
    Tick start = std::max(eq_.now(), busyUntil_);
    Tick finish = start + params_.writeLatency + transferTime(len);
    busyUntil_ = finish;
    return finish - eq_.now();
}

} // namespace nvdimmc::nvm
