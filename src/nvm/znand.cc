#include "nvm/znand.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace nvdimmc::nvm
{

ZNandParams
ZNandParams::poc128GB()
{
    ZNandParams p;
    p.channels = 2;
    p.diesPerChannel = 2;
    p.planesPerDie = 2;
    p.pagesPerBlock = 256;
    p.pageBytes = 4096;
    // 2ch * 2die * 2plane * 16384 blocks * 256 pages * 4 KiB = 128 GiB.
    p.blocksPerPlane = 16384;
    p.tR = 3 * kUs;
    p.tPROG = 75 * kUs;
    p.tBERS = 1000 * kUs;
    p.channelMBps = 200.0;
    return p;
}

ZNandParams
ZNandParams::tiny()
{
    ZNandParams p;
    p.channels = 2;
    p.diesPerChannel = 1;
    p.planesPerDie = 1;
    p.blocksPerPlane = 64;
    p.pagesPerBlock = 16;
    p.pageBytes = 4096;
    p.tR = 3 * kUs;
    p.tPROG = 75 * kUs;
    p.tBERS = 500 * kUs;
    p.channelMBps = 200.0;
    return p;
}

ZNand::ZNand(EventQueue& eq, const ZNandParams& p)
    : eq_(eq),
      params_(p),
      dies_(std::size_t{p.channels} * p.diesPerChannel),
      channelBusyUntil_(p.channels, 0)
{
}

std::uint64_t
ZNand::flatPage(const NandAddr& a) const
{
    std::uint64_t v = a.channel;
    v = v * params_.diesPerChannel + a.die;
    v = v * params_.planesPerDie + a.plane;
    v = v * params_.blocksPerPlane + a.block;
    v = v * params_.pagesPerBlock + a.page;
    return v;
}

NandAddr
ZNand::fromFlatPage(std::uint64_t page_no) const
{
    NandAddr a;
    a.page = static_cast<std::uint32_t>(page_no % params_.pagesPerBlock);
    page_no /= params_.pagesPerBlock;
    a.block = static_cast<std::uint32_t>(page_no % params_.blocksPerPlane);
    page_no /= params_.blocksPerPlane;
    a.plane = static_cast<std::uint32_t>(page_no % params_.planesPerDie);
    page_no /= params_.planesPerDie;
    a.die = static_cast<std::uint32_t>(page_no % params_.diesPerChannel);
    page_no /= params_.diesPerChannel;
    a.channel = static_cast<std::uint32_t>(page_no);
    return a;
}

std::uint64_t
ZNand::flatBlock(const NandAddr& a) const
{
    std::uint64_t v = a.channel;
    v = v * params_.diesPerChannel + a.die;
    v = v * params_.planesPerDie + a.plane;
    v = v * params_.blocksPerPlane + a.block;
    return v;
}

ZNand::BlockState&
ZNand::blockState(std::uint64_t block_no)
{
    auto& st = blocks_[block_no];
    if (st.programmed.empty())
        st.programmed.assign(params_.pagesPerBlock, false);
    return st;
}

const ZNand::BlockState*
ZNand::blockStateIfAny(std::uint64_t block_no) const
{
    auto it = blocks_.find(block_no);
    return it == blocks_.end() ? nullptr : &it->second;
}

ZNand::DieState&
ZNand::dieOf(std::uint64_t page_no)
{
    NandAddr a = fromFlatPage(page_no);
    return dies_[std::size_t{a.channel} * params_.diesPerChannel +
                 a.die];
}

Tick
ZNand::channelTransferTime() const
{
    double bytes_per_ps = params_.channelMBps * 1e6 / 1e12;
    return static_cast<Tick>(static_cast<double>(params_.pageBytes) /
                             bytes_per_ps);
}

Tick
ZNand::claimChannel(std::uint64_t page_no, Tick earliest)
{
    NandAddr a = fromFlatPage(page_no);
    Tick& busy = channelBusyUntil_[a.channel];
    Tick start = std::max(earliest, busy);
    busy = start + channelTransferTime();
    return busy;
}

void
ZNand::readPage(std::uint64_t page_no, std::uint8_t* buf, Callback done,
                span::Id span)
{
    NVDC_ASSERT(page_no < params_.totalPages(), "NAND page out of range");
    stats_.pageReads.inc();
    if (span != 0) {
        done = [this, span, cb = std::move(done)]() mutable {
            span::phase(span, span::Phase::NandRead, eq_.now());
            cb();
        };
    }

    DieState& die = dieOf(page_no);
    Tick array_done = std::max(eq_.now(), die.busyUntil) + params_.tR;
    die.busyUntil = array_done;
    Tick finish = claimChannel(page_no, array_done);
    stats_.readLatency.record(finish - eq_.now());

    if (buf) {
        auto it = pageData_.find(page_no);
        if (it == pageData_.end())
            std::memset(buf, 0xff, params_.pageBytes); // Erased state.
        else
            std::memcpy(buf, it->second.data(), params_.pageBytes);
    }
    eq_.schedule(finish, std::move(done));
}

void
ZNand::programPage(std::uint64_t page_no, const std::uint8_t* data,
                   Callback done, span::Id span)
{
    NVDC_ASSERT(page_no < params_.totalPages(), "NAND page out of range");
    stats_.pagePrograms.inc();
    if (span != 0) {
        done = [this, span, cb = std::move(done)]() mutable {
            span::phase(span, span::Phase::NandProgram, eq_.now());
            cb();
        };
    }

    std::uint64_t block_no = flatBlockOfPage(page_no);

    // Grown-defect injection: the program op completes (after its
    // normal latency) but reports failure; data did NOT land. The
    // one-shot list and the rate-based hook share the failure path.
    bool inject_failure = failNextProgram_.erase(block_no) != 0;
    if (!inject_failure && programFaultHook_ &&
        programFaultHook_(page_no)) {
        inject_failure = true;
    }
    if (inject_failure) {
        stats_.programFailures.inc();
        DieState& fdie = dieOf(page_no);
        Tick ffinish =
            std::max(eq_.now(), fdie.busyUntil) + params_.tPROG;
        fdie.busyUntil = ffinish;
        // The failure indication is only valid inside the completion
        // callback (concurrent programs would otherwise race on it).
        eq_.schedule(ffinish, [this, cb = std::move(done)] {
            lastProgramFailed_ = true;
            if (cb)
                cb();
            lastProgramFailed_ = false;
        });
        return;
    }

    auto page_idx =
        static_cast<std::uint32_t>(page_no % params_.pagesPerBlock);
    BlockState& blk = blockState(block_no);

    if (blk.programmed[page_idx]) {
        stats_.disciplineViolations.inc();
        warn("ZNand: program to already-programmed page ", page_no);
    } else if (page_idx != blk.nextPage) {
        stats_.disciplineViolations.inc();
        warn("ZNand: out-of-order program in block ", block_no,
             " (page ", page_idx, ", expected ", blk.nextPage, ")");
    }
    blk.programmed[page_idx] = true;
    blk.nextPage = std::max(blk.nextPage, page_idx + 1);

    // Data crosses the channel first, then the die programs.
    Tick xfer_done = claimChannel(page_no, eq_.now());
    DieState& die = dieOf(page_no);
    Tick finish = std::max(xfer_done, die.busyUntil) + params_.tPROG;
    die.busyUntil = finish;
    stats_.programLatency.record(finish - eq_.now());

    if (data) {
        auto& store = pageData_[page_no];
        store.assign(data, data + params_.pageBytes);
    }
    eq_.schedule(finish, std::move(done));
}

void
ZNand::eraseBlock(std::uint64_t block_no, Callback done)
{
    NVDC_ASSERT(block_no < params_.totalBlocks(),
                "NAND block out of range");
    stats_.blockErases.inc();

    BlockState& blk = blockState(block_no);
    blk.eraseCount += 1;
    blk.nextPage = 0;
    std::fill(blk.programmed.begin(), blk.programmed.end(), false);

    std::uint64_t first_page =
        block_no * std::uint64_t{params_.pagesPerBlock};
    for (std::uint32_t i = 0; i < params_.pagesPerBlock; ++i)
        pageData_.erase(first_page + i);

    DieState& die = dieOf(first_page);
    Tick finish = std::max(eq_.now(), die.busyUntil) + params_.tBERS;
    die.busyUntil = finish;
    eq_.schedule(finish, std::move(done));
}

bool
ZNand::pageProgrammed(std::uint64_t page_no) const
{
    const BlockState* blk = blockStateIfAny(flatBlockOfPage(page_no));
    if (!blk)
        return false;
    auto idx = static_cast<std::uint32_t>(page_no % params_.pagesPerBlock);
    return blk->programmed[idx];
}

std::uint32_t
ZNand::eraseCount(std::uint64_t block_no) const
{
    const BlockState* blk = blockStateIfAny(block_no);
    return blk ? blk->eraseCount : 0;
}

std::uint32_t
ZNand::maxEraseCount() const
{
    std::uint32_t m = 0;
    for (const auto& [no, blk] : blocks_)
        m = std::max(m, blk.eraseCount);
    return m;
}

void
ZNand::failNextProgramIn(std::uint64_t block_no)
{
    failNextProgram_.insert(block_no);
}

void
ZNand::preconditionProgrammed(std::uint64_t page_no)
{
    NVDC_ASSERT(page_no < params_.totalPages(), "NAND page out of range");
    std::uint64_t block_no = flatBlockOfPage(page_no);
    auto page_idx =
        static_cast<std::uint32_t>(page_no % params_.pagesPerBlock);
    BlockState& blk = blockState(block_no);
    blk.programmed[page_idx] = true;
    blk.nextPage = std::max(blk.nextPage, page_idx + 1);
}

void
ZNand::markBadBlock(std::uint64_t block_no)
{
    badBlocks_.insert(block_no);
}

bool
ZNand::isBadBlock(std::uint64_t block_no) const
{
    return badBlocks_.count(block_no) != 0;
}

namespace
{

constexpr std::uint32_t kZNandStateTag = 0x314e445a; // "ZDN1"

/** Sorted keys of an unordered map/set, for deterministic streams. */
template <typename Container>
std::vector<std::uint64_t>
sortedKeys(const Container& c)
{
    std::vector<std::uint64_t> keys;
    keys.reserve(c.size());
    for (const auto& entry : c) {
        if constexpr (std::is_same_v<std::decay_t<decltype(entry)>,
                                     std::uint64_t>) {
            keys.push_back(entry);
        } else {
            keys.push_back(entry.first);
        }
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

void
ZNand::saveState(ByteWriter& w) const
{
    w.tag(kZNandStateTag);
    w.u64(params_.totalPages()); // Geometry guard for restore.

    auto block_keys = sortedKeys(blocks_);
    w.u64(block_keys.size());
    for (std::uint64_t b : block_keys) {
        const BlockState& st = blocks_.at(b);
        w.u64(b);
        w.u32(st.eraseCount);
        w.u32(st.nextPage);
        for (std::uint32_t i = 0; i < params_.pagesPerBlock; ++i)
            w.u8(st.programmed[i] ? 1 : 0);
    }

    auto page_keys = sortedKeys(pageData_);
    w.u64(page_keys.size());
    for (std::uint64_t p : page_keys) {
        w.u64(p);
        w.bytes(pageData_.at(p).data(), params_.pageBytes);
    }

    auto bad_keys = sortedKeys(badBlocks_);
    w.u64(bad_keys.size());
    for (std::uint64_t b : bad_keys)
        w.u64(b);
}

void
ZNand::loadState(ByteReader& r)
{
    r.expectTag(kZNandStateTag);
    std::uint64_t pages = r.u64();
    if (pages != params_.totalPages()) {
        fatal("ZNand checkpoint geometry mismatch: saved ", pages,
              " pages, device has ", params_.totalPages());
    }

    blocks_.clear();
    std::uint64_t nblocks = r.u64();
    for (std::uint64_t i = 0; i < nblocks; ++i) {
        std::uint64_t b = r.u64();
        BlockState& st = blockState(b);
        st.eraseCount = r.u32();
        st.nextPage = r.u32();
        for (std::uint32_t pg = 0; pg < params_.pagesPerBlock; ++pg)
            st.programmed[pg] = r.u8() != 0;
    }

    pageData_.clear();
    std::uint64_t npages = r.u64();
    for (std::uint64_t i = 0; i < npages; ++i) {
        std::uint64_t p = r.u64();
        auto& store = pageData_[p];
        store.resize(params_.pageBytes);
        r.bytes(store.data(), params_.pageBytes);
    }

    badBlocks_.clear();
    std::uint64_t nbad = r.u64();
    for (std::uint64_t i = 0; i < nbad; ++i)
        badBlocks_.insert(r.u64());

    failNextProgram_.clear();
    lastProgramFailed_ = false;
}

void
ZNand::registerStats(StatRegistry& reg,
                     const std::string& prefix) const
{
    reg.addCounter(prefix + ".page_reads", stats_.pageReads);
    reg.addCounter(prefix + ".page_programs", stats_.pagePrograms);
    reg.addCounter(prefix + ".block_erases", stats_.blockErases);
    reg.addCounter(prefix + ".discipline_violations",
                   stats_.disciplineViolations);
    reg.addCounter(prefix + ".program_failures",
                   stats_.programFailures);
    reg.addHistogram(prefix + ".read_latency", stats_.readLatency);
    reg.addHistogram(prefix + ".program_latency",
                     stats_.programLatency);
}

} // namespace nvdimmc::nvm
