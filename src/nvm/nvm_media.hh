/**
 * @file
 * Non-volatile media interfaces.
 *
 * Two layers:
 *  - NvmMedia: raw media with byte-range access semantics and a
 *    device-specific timing model (Z-NAND additionally exposes
 *    page/block NAND operations).
 *  - PageBackend: the 4 KB logical page store the NVMC firmware talks
 *    to. For NAND it is the FTL; for byte-addressable media it is a
 *    DirectBackend; the paper's hypothetical device uses DelayMedia.
 */

#ifndef NVDIMMC_NVM_NVM_MEDIA_HH
#define NVDIMMC_NVM_NVM_MEDIA_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/span.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace nvdimmc::nvm
{

using Callback = std::function<void()>;

/** Common statistics for any media. */
struct MediaStats
{
    Counter reads;
    Counter writes;
    Histogram readLatency;
    Histogram writeLatency;
};

/**
 * Byte-range addressable non-volatile media with asynchronous access.
 *
 * Contents are stored sparsely at 4 KB granularity so integrity checks
 * are real without reserving the full device capacity in host memory.
 */
class NvmMedia
{
  public:
    NvmMedia(EventQueue& eq, std::string name, std::uint64_t capacity);
    virtual ~NvmMedia() = default;

    const std::string& name() const { return name_; }
    std::uint64_t capacity() const { return capacity_; }
    EventQueue& eq() { return eq_; }

    /**
     * Read @p len bytes at @p addr into @p buf (nullable = timing
     * only); @p done fires at media-completion time.
     */
    void readRange(Addr addr, std::uint32_t len, std::uint8_t* buf,
                   Callback done);

    /** Write @p len bytes at @p addr; see readRange for semantics. */
    void writeRange(Addr addr, std::uint32_t len,
                    const std::uint8_t* data, Callback done);

    const MediaStats& stats() const { return stats_; }

  protected:
    /** Media-specific service time for a read/write of @p len bytes. */
    virtual Tick readServiceTime(Addr addr, std::uint32_t len) = 0;
    virtual Tick writeServiceTime(Addr addr, std::uint32_t len) = 0;

    /** @name Sparse backing store helpers. */
    /** @{ */
    void storeBytes(Addr addr, std::uint32_t len,
                    const std::uint8_t* data);
    void loadBytes(Addr addr, std::uint32_t len,
                   std::uint8_t* buf) const;
    /** @} */

    EventQueue& eq_;
    MediaStats stats_;

  private:
    static constexpr std::uint32_t kChunk = 4096;

    std::string name_;
    std::uint64_t capacity_;
    std::unordered_map<std::uint64_t,
                       std::vector<std::uint8_t>> chunks_;
};

/**
 * Byte-addressable media described by a simple latency + bandwidth
 * model with limited internal parallelism, used for the PRAM and
 * STT-MRAM backends the paper positions as the media that make
 * NVDIMM-C balanced (§VII-D).
 */
class SimpleMedia : public NvmMedia
{
  public:
    struct Params
    {
        Tick readLatency = 150 * kNs;  ///< First-byte read latency.
        Tick writeLatency = 500 * kNs; ///< First-byte write latency.
        double bandwidthMBps = 2000.0; ///< Streaming bandwidth.
    };

    SimpleMedia(EventQueue& eq, std::string name,
                std::uint64_t capacity, const Params& p);

    const Params& params() const { return params_; }

  protected:
    Tick readServiceTime(Addr addr, std::uint32_t len) override;
    Tick writeServiceTime(Addr addr, std::uint32_t len) override;

  private:
    Tick transferTime(std::uint32_t len) const;

    Params params_;
    /** Media is internally pipelined; track when it frees up. */
    Tick busyUntil_ = 0;
};

/**
 * The firmware-facing 4 KB logical page store.
 */
class PageBackend
{
  public:
    virtual ~PageBackend() = default;

    static constexpr std::uint32_t kPageBytes = 4096;

    virtual std::uint64_t pageCount() const = 0;

    /** @p span (optional, 0 = none) is the host request span riding
     *  this page op; backends stamp its NandRead/NandProgram phase at
     *  media-completion time. */
    virtual void readPage(std::uint64_t page_no, std::uint8_t* buf,
                          Callback done, span::Id span = 0) = 0;
    virtual void writePage(std::uint64_t page_no,
                           const std::uint8_t* data, Callback done,
                           span::Id span = 0) = 0;
};

/** PageBackend over any byte-addressable NvmMedia (no FTL needed). */
class DirectBackend : public PageBackend
{
  public:
    explicit DirectBackend(NvmMedia& media) : media_(media) {}

    std::uint64_t pageCount() const override
    {
        return media_.capacity() / kPageBytes;
    }

    void readPage(std::uint64_t page_no, std::uint8_t* buf,
                  Callback done, span::Id span = 0) override
    {
        if (span != 0) {
            // Byte-addressable media has no FTL/NAND split; the whole
            // media access lands in the NandRead phase.
            done = [&eq = media_.eq(), span,
                    cb = std::move(done)]() mutable {
                span::phase(span, span::Phase::NandRead, eq.now());
                cb();
            };
        }
        media_.readRange(page_no * kPageBytes, kPageBytes, buf,
                         std::move(done));
    }

    void writePage(std::uint64_t page_no, const std::uint8_t* data,
                   Callback done, span::Id span = 0) override
    {
        if (span != 0) {
            done = [&eq = media_.eq(), span,
                    cb = std::move(done)]() mutable {
                span::phase(span, span::Phase::NandProgram, eq.now());
                cb();
            };
        }
        media_.writeRange(page_no * kPageBytes, kPageBytes, data,
                          std::move(done));
    }

  private:
    NvmMedia& media_;
};

} // namespace nvdimmc::nvm

#endif // NVDIMMC_NVM_NVM_MEDIA_HH
