/**
 * @file
 * Window-gated DMA engine.
 *
 * The firmware enqueues DRAM transfers (CP polls, 4 KB slot moves,
 * acks); the engine executes them only inside refresh windows handed
 * to it by the NVMC top level, capped at bytesPerWindow per window
 * (4 KB on the PoC; 8 KB in the ASIC ablation). Transfers larger than
 * one window's budget resume in the next window.
 */

#ifndef NVDIMMC_NVMC_DMA_ENGINE_HH
#define NVDIMMC_NVMC_DMA_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/span.hh"
#include "common/stats.hh"
#include "nvmc/ddr4_controller.hh"

namespace nvdimmc::nvmc
{

/** One queued DRAM transfer. */
struct DmaRequest
{
    Addr addr = 0;
    std::uint32_t bytes = 0;
    bool isWrite = false;
    /** Buffer shared with the firmware op that owns it. */
    std::shared_ptr<std::vector<std::uint8_t>> buffer;
    std::uint32_t bufferOffset = 0;
    std::function<void()> done;
    /** Host request span riding this transfer (0 = background). */
    span::Id span = 0;
};

/** DMA statistics. */
struct DmaStats
{
    Counter requests;
    Counter windowsUsed;
    Counter bytesMoved;
    Counter windowCarryovers; ///< Requests split across windows.
    /** Ticks actually spent driving transfers inside windows (the
     *  "used" half of window utilization). */
    Counter busyTicks;
    Histogram bytesPerWindow; ///< Bytes moved in each used window.
};

/** The engine. */
class DmaEngine
{
  public:
    DmaEngine(EventQueue& eq, NvmcDdr4Controller& ctrl,
              std::uint32_t bytes_per_window)
        : eq_(eq), ctrl_(ctrl), bytesPerWindow_(bytes_per_window),
          windowStartEvent_([this] { runNext(windowEnd_); },
                            "dma-window-start")
    {
    }

    void enqueue(DmaRequest req);

    bool idle() const { return queue_.empty() && !windowActive_; }
    std::size_t backlog() const { return queue_.size(); }

    /**
     * Called by the NVMC on each refresh window. Executes queued
     * requests until the byte budget or the window is exhausted.
     * @p on_window_done fires when this window's work is over (also
     * immediately if there is nothing to do).
     */
    void runWindow(Tick win_start, Tick win_end,
                   std::function<void()> on_window_done);

    std::uint32_t bytesPerWindow() const { return bytesPerWindow_; }
    void setBytesPerWindow(std::uint32_t b) { bytesPerWindow_ = b; }

    const DmaStats& stats() const { return dmaStats_; }

  private:
    void runNext(Tick win_end);
    /** Close the active window: record used ticks/bytes, fire the
     *  window-done callback. */
    void closeWindow();

    EventQueue& eq_;
    NvmcDdr4Controller& ctrl_;
    std::uint32_t bytesPerWindow_;

    std::deque<DmaRequest> queue_;
    /** Kicks the first transfer once the granted window opens. */
    EventFunctionWrapper windowStartEvent_;
    bool windowActive_ = false;
    std::uint32_t windowBudget_ = 0;
    Tick windowEnd_ = 0;
    Tick windowOpenedAt_ = 0;
    std::uint64_t windowBytes_ = 0;
    std::function<void()> windowDone_;

    DmaStats dmaStats_;
};

} // namespace nvdimmc::nvmc

#endif // NVDIMMC_NVMC_DMA_ENGINE_HH
