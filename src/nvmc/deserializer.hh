/**
 * @file
 * 1:8 deserializer (paper Fig 4).
 *
 * The FPGA cannot sample the DDR-rate CA pins directly; each tapped
 * signal goes through a serial-to-parallel converter that captures the
 * pin every clock edge and emits an 8-bit parallel word every four
 * clock cycles. Functionally this adds a fixed detection latency; the
 * bit-level model here is also exercised directly by unit tests.
 */

#ifndef NVDIMMC_NVMC_DESERIALIZER_HH
#define NVDIMMC_NVMC_DESERIALIZER_HH

#include <cstdint>
#include <functional>

#include "common/types.hh"

namespace nvdimmc::nvmc
{

/** One serial lane's 1:8 shift-register deserializer. */
class Deserializer
{
  public:
    using WordCallback = std::function<void(std::uint8_t)>;

    explicit Deserializer(WordCallback on_word)
        : onWord_(std::move(on_word))
    {
    }

    /**
     * Sample the pin once (one DDR edge). After eight samples the
     * assembled word (first sample = LSB) is emitted.
     */
    void
    sample(bool level)
    {
        word_ |= static_cast<std::uint8_t>(level ? 1 : 0) << fill_;
        if (++fill_ == 8) {
            if (onWord_)
                onWord_(word_);
            word_ = 0;
            fill_ = 0;
        }
    }

    std::uint32_t pendingBits() const { return fill_; }

    /**
     * Pipeline latency the deserializer adds before a command's pin
     * state is visible to downstream logic: the capture window (eight
     * DDR samples = four clock cycles) plus one output register.
     */
    static Tick
    outputDelay(Tick t_ck)
    {
        return 4 * t_ck + t_ck;
    }

  private:
    WordCallback onWord_;
    std::uint8_t word_ = 0;
    std::uint32_t fill_ = 0;
};

} // namespace nvdimmc::nvmc

#endif // NVDIMMC_NVMC_DESERIALIZER_HH
