/**
 * @file
 * Refresh detector (paper §IV-A, Fig 4).
 *
 * Snoops the six tapped CA pins (CKE, CS_n, ACT_n, RAS_n, CAS_n,
 * WE_n) through the deserializers and asserts is_refresh when the
 * decoded state is exactly a normal REF — not SRE/SRX (which have
 * distinct CKE transitions) and not any other command. Detection is
 * delayed by the deserializer pipeline.
 *
 * The electrical-noise model (miss / false-fire probabilities) exists
 * for the paper's §VII-A reliability discussion: a false positive lets
 * the NVMC drive the bus outside a genuine window, which the bus
 * conflict checker then catches — reproducing why detector accuracy is
 * critical.
 */

#ifndef NVDIMMC_NVMC_REFRESH_DETECTOR_HH
#define NVDIMMC_NVMC_REFRESH_DETECTOR_HH

#include <functional>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "dram/ddr4_command.hh"
#include "nvmc/deserializer.hh"

namespace nvdimmc::nvmc
{

/** Detector statistics. */
struct DetectorStats
{
    Counter framesObserved;
    Counter refreshesDetected;
    Counter selfRefreshIgnored;
    Counter injectedMisses;
    Counter injectedFalsePositives;
};

/** The CA-bus refresh detector. */
class RefreshDetector : public bus::CaSnooper
{
  public:
    /** Callback: a REF was driven at @p command_tick (the bus tick,
     *  not the detection tick — the caller adds its own margins). */
    using RefreshCallback = std::function<void(Tick command_tick)>;

    struct Params
    {
        Tick tCK = 1250;
        /** Probability a genuine REF goes undetected (signal
         *  integrity fault injection). */
        double missRate = 0.0;
        /** Probability a non-REF frame is misread as REF. */
        double falseRate = 0.0;
        std::uint64_t seed = 42;
    };

    RefreshDetector(EventQueue& eq, const Params& p,
                    RefreshCallback on_refresh);

    void observeFrame(const dram::CaFrame& frame, Tick now) override;

    /** Detection pipeline latency after the command edge. */
    Tick detectionLatency() const
    {
        return Deserializer::outputDelay(params_.tCK);
    }

    const DetectorStats& stats() const { return stats_; }

  private:
    EventQueue& eq_;
    Params params_;
    RefreshCallback onRefresh_;
    Rng rng_;
    DetectorStats stats_;
};

} // namespace nvdimmc::nvmc

#endif // NVDIMMC_NVMC_REFRESH_DETECTOR_HH
