#include "nvmc/refresh_detector.hh"

#include "common/trace.hh"

namespace nvdimmc::nvmc
{

RefreshDetector::RefreshDetector(EventQueue& eq, const Params& p,
                                 RefreshCallback on_refresh)
    : eq_(eq), params_(p), onRefresh_(std::move(on_refresh)),
      rng_(p.seed)
{
}

void
RefreshDetector::observeFrame(const dram::CaFrame& frame, Tick now)
{
    stats_.framesObserved.inc();

    dram::Ddr4Command cmd = dram::decodeFrame(frame);

    bool is_ref = cmd.op == dram::Ddr4Op::Refresh;
    if (cmd.op == dram::Ddr4Op::SelfRefreshEnter ||
        cmd.op == dram::Ddr4Op::SelfRefreshExit) {
        stats_.selfRefreshIgnored.inc();
    }

    // Electrical fault injection.
    if (is_ref && params_.missRate > 0.0 &&
        rng_.chance(params_.missRate)) {
        stats_.injectedMisses.inc();
        trace::instant("nvmc.detector", "miss", now);
        is_ref = false;
    } else if (!is_ref && params_.falseRate > 0.0 &&
               rng_.chance(params_.falseRate)) {
        stats_.injectedFalsePositives.inc();
        trace::instant("nvmc.detector", "false-positive", now);
        is_ref = true;
    }

    if (!is_ref)
        return;

    stats_.refreshesDetected.inc();
    trace::instant("nvmc.detector", "detected", now);
    // The decoded result becomes available after the deserializer
    // pipeline; the window math is relative to the command tick.
    eq_.schedule(now + detectionLatency(), [this, now] {
        if (onRefresh_)
            onRefresh_(now);
    });
}

} // namespace nvdimmc::nvmc
