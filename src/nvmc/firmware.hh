/**
 * @file
 * NVMC firmware model (paper §IV-A: three Cortex-A53 cores run the
 * FTL and orchestrate the RTL modules).
 *
 * Every refresh window the firmware either advances queued DMA work or
 * polls the CP area; a decoded command becomes an in-flight operation:
 *
 *   cachefill:  poll window -> [decode] -> NAND read -> data window
 *               (4 KB into the slot) -> ack window
 *   writeback:  poll window -> [decode] -> data window (4 KB out of
 *               the slot) -> ack window (early-ack: the NAND program
 *               continues in the background; the data is power-safe in
 *               the FPGA's battery-backed buffer)
 *   wb+cf:      merged command (paper §VII-C optimization (4))
 *
 * The [decode] and FSM-transition delays model the PoC's
 * software-driven RTL control, which is why the measured uncached
 * access costs ~8.9 tREFI instead of the theoretical 3 (paper
 * §VII-B2); an ASIC configuration shrinks them.
 */

#ifndef NVDIMMC_NVMC_FIRMWARE_HH
#define NVDIMMC_NVMC_FIRMWARE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "dram/dram_device.hh"
#include "nvm/nvm_media.hh"
#include "nvmc/cp_protocol.hh"
#include "nvmc/dma_engine.hh"

namespace nvdimmc::nvmc
{

/** Firmware tuning knobs. */
struct FirmwareConfig
{
    /** CP decode + command dispatch on the A53 (software FSM). */
    Tick decodeDelay = 8 * kUs;
    /** Software work between op completion and the ack enqueue. */
    Tick postOpDelay = 3 * kUs;
    /** CP queue depth honoured (the PoC uses 1). */
    std::uint32_t cpQueueDepth = 1;
    /** Ack a writeback as soon as the data left DRAM (the NAND
     *  program finishes in the background from the battery-backed
     *  buffer). */
    bool ackEarlyWriteback = true;

    /** PoC defaults (calibrated to §VII-B2's 8.9x tREFI pair). */
    static FirmwareConfig poc() { return {}; }

    /** ASIC projection (paper §VII-C): hardware FSM, no software. */
    static FirmwareConfig
    asic()
    {
        FirmwareConfig c;
        c.decodeDelay = 200 * kNs;
        c.postOpDelay = 100 * kNs;
        return c;
    }
};

/** Firmware statistics. */
struct FirmwareStats
{
    Counter cpPolls;
    Counter commandsAccepted;
    Counter cachefills;
    Counter writebacks;
    Counter mergedOps;
    Counter acksWritten;
    Counter powerFailDumpedPages;
    Histogram opLatency;   ///< Command decoded -> ack in DRAM.
    Histogram dataLatency; ///< Command decoded -> ack DMA enqueued
                           ///< (media + data-window share of opLatency).
    Histogram ackLatency;  ///< Ack DMA enqueued -> ack in DRAM (the
                           ///< window-wait tail of opLatency).
};

/** The firmware. */
class Firmware
{
  public:
    Firmware(EventQueue& eq, DmaEngine& dma, nvm::PageBackend& backend,
             dram::DramDevice& dram, const ReservedLayout& layout,
             const FirmwareConfig& cfg);

    /**
     * Give the firmware one refresh window. It will consume it with
     * pending DMA work or a CP poll.
     */
    void onWindow(Tick win_start, Tick win_end);

    /** In-flight operations (for tests / the driver's QD logic). */
    std::uint32_t opsInFlight() const { return opsInFlight_; }

    /**
     * Power failure: ignore the tRFC serialization rule, read the
     * metadata area straight out of the DRAM array, and flush every
     * valid dirty slot into the NVM backend (paper §V-C). Data moves
     * synchronously (post-mortem, outside simulated time).
     * @return pages flushed.
     */
    std::size_t powerFailDump();

    const FirmwareStats& stats() const { return stats_; }
    const FirmwareConfig& config() const { return cfg_; }

  private:
    struct Op
    {
        CpCommand cmd;
        std::uint32_t cpIndex = 0;
        Tick acceptedAt = 0;
        Tick ackEnqueuedAt = 0;
        std::shared_ptr<std::vector<std::uint8_t>> buffer;
        std::shared_ptr<std::vector<std::uint8_t>> buffer2;
    };

    void maybeEnqueuePoll();
    void decodePoll(std::shared_ptr<std::vector<std::uint8_t>> data);
    void startOp(Op op);
    void runCachefill(std::shared_ptr<Op> op, std::uint64_t nand_page,
                      std::uint32_t dram_slot, bool ack_after);
    void runWriteback(std::shared_ptr<Op> op, std::uint64_t nand_page,
                      std::uint32_t dram_slot, bool then_cachefill);
    void writeAck(std::shared_ptr<Op> op);
    void readDramDirect(Addr addr, std::uint32_t len,
                        std::uint8_t* buf) const;

    EventQueue& eq_;
    DmaEngine& dma_;
    nvm::PageBackend& backend_;
    dram::DramDevice& dram_;
    ReservedLayout layout_;
    FirmwareConfig cfg_;

    std::vector<std::uint8_t> lastPhase_;
    bool pollInFlight_ = false;
    bool decoding_ = false;
    std::uint32_t opsInFlight_ = 0;

    /**
     * Slots whose dirty victim a merged wb+cf already captured (and
     * programmed), keyed by slot with the victim's NAND page as the
     * value. While such an entry matches the slot's in-DRAM metadata,
     * a power-fail dump must NOT flush the slot: its bytes may be a
     * partially landed fill, and the victim's copy in the FPGA buffer
     * is already on its way to NAND. The entry stops matching once
     * the driver's install rewrites the metadata to the new page.
     */
    std::unordered_map<std::uint32_t, std::uint64_t> mergedCaptured_;

    FirmwareStats stats_;
};

} // namespace nvdimmc::nvmc

#endif // NVDIMMC_NVMC_FIRMWARE_HH
