#include "nvmc/dma_engine.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace nvdimmc::nvmc
{

void
DmaEngine::enqueue(DmaRequest req)
{
    NVDC_ASSERT(req.bytes > 0 && req.bytes % 64 == 0,
                "DMA request must be a 64B multiple");
    dmaStats_.requests.inc();
    queue_.push_back(std::move(req));
}

void
DmaEngine::runWindow(Tick win_start, Tick win_end,
                     std::function<void()> on_window_done)
{
    if (windowActive_) {
        // Overlapping grants only happen with a faulty detector
        // (false fires inside a genuine window); keep working the
        // current window and drop the bogus one.
        if (on_window_done)
            on_window_done();
        return;
    }
    if (queue_.empty()) {
        if (on_window_done)
            on_window_done();
        return;
    }
    windowActive_ = true;
    windowBudget_ = bytesPerWindow_;
    windowDone_ = std::move(on_window_done);
    dmaStats_.windowsUsed.inc();

    windowEnd_ = win_end;
    Tick start = std::max(win_start, eq_.now());
    windowOpenedAt_ = start;
    windowBytes_ = 0;
    eq_.schedule(windowStartEvent_, start);
}

void
DmaEngine::closeWindow()
{
    const Tick now = eq_.now();
    windowActive_ = false;
    dmaStats_.busyTicks.inc(now - windowOpenedAt_);
    dmaStats_.bytesPerWindow.record(windowBytes_);
    if (trace::enabled()) {
        trace::duration("nvmc.dma", "dma-burst", windowOpenedAt_, now);
        trace::counter("nvmc.dma", "bytes", now,
                       static_cast<double>(windowBytes_));
    }
    if (windowDone_) {
        auto cb = std::move(windowDone_);
        cb();
    }
}

void
DmaEngine::runNext(Tick win_end)
{
    // CP control lines (single-burst polls and acks) ride along for
    // free; the byte budget models the PoC's 4 KB data-DMA limit.
    bool control = !queue_.empty() && queue_.front().bytes <= 64;
    if (queue_.empty() || (windowBudget_ == 0 && !control) ||
        eq_.now() >= win_end) {
        closeWindow();
        return;
    }

    DmaRequest& req = queue_.front();
    // Everything between the previous mark and burst start was spent
    // waiting for a refresh window (plus queueing behind other DMA).
    span::phase(req.span, span::Phase::WindowWait, eq_.now());
    std::uint32_t chunk =
        control ? req.bytes : std::min(req.bytes, windowBudget_);
    std::uint8_t* rbuf = nullptr;
    const std::uint8_t* wdata = nullptr;
    if (req.buffer) {
        if (req.isWrite)
            wdata = req.buffer->data() + req.bufferOffset;
        else
            rbuf = req.buffer->data() + req.bufferOffset;
    }

    ctrl_.transferInWindow(
        req.addr, chunk, req.isWrite, rbuf, wdata, eq_.now(), win_end,
        [this, win_end, control](std::uint32_t moved) {
            DmaRequest& front = queue_.front();
            dmaStats_.bytesMoved.inc(moved);
            windowBytes_ += moved;
            if (!control)
                windowBudget_ -= std::min(windowBudget_, moved);
            front.addr += moved;
            front.bufferOffset += moved;
            front.bytes -= moved;
            if (moved > 0)
                span::phase(front.span, span::Phase::DmaBurst,
                            eq_.now());
            if (front.bytes == 0) {
                auto done = std::move(front.done);
                queue_.pop_front();
                if (done)
                    done();
            } else {
                dmaStats_.windowCarryovers.inc();
            }
            if (moved == 0) {
                // The window had no room left; resume next window
                // rather than spinning at this tick.
                closeWindow();
                return;
            }
            runNext(win_end);
        });
}

} // namespace nvdimmc::nvmc
