#include "nvmc/ddr4_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nvdimmc::nvmc
{

using dram::AddressMap;
using dram::Ddr4Op;

NvmcDdr4Controller::NvmcDdr4Controller(EventQueue& eq,
                                       bus::MemoryBus& bus)
    : eq_(eq),
      bus_(bus),
      masterId_(bus.registerMaster("nvmc")),
      shadow_(bus.dram().addressMap(), bus.dram().timing()),
      stepEvent_([this] { step(); }, "nvmc-ctrl-step")
{
}

void
NvmcDdr4Controller::noteRefresh(Tick ref_tick)
{
    // The host precharged all banks before REF; mirror that so our
    // shadow starts each window from the true all-closed state.
    Tick prea_tick =
        ref_tick > bus_.dram().timing().tRP
            ? ref_tick - bus_.dram().timing().tRP
            : 0;
    shadow_.onPrechargeAll(prea_tick);
    shadow_.onRefresh(ref_tick);
    openBank_ = -1;
}

Tick
NvmcDdr4Controller::casTail() const
{
    const auto& t = bus_.dram().timing();
    if (isWrite_)
        return t.tCWL + t.burstTime() + t.tWR + t.tCK;
    return t.tCL + t.burstTime() + t.tCK;
}

void
NvmcDdr4Controller::transferInWindow(Addr addr, std::uint32_t bytes,
                                     bool is_write,
                                     std::uint8_t* read_buf,
                                     const std::uint8_t* write_data,
                                     Tick win_start, Tick win_end,
                                     DoneFn done)
{
    NVDC_ASSERT(!active_, "NvmcDdr4Controller already busy");
    NVDC_ASSERT(addr % AddressMap::kBurstBytes == 0 &&
                bytes % AddressMap::kBurstBytes == 0,
                "transfer must be 64B aligned");
    active_ = true;
    addr_ = addr;
    bytesLeft_ = bytes;
    bytesDone_ = 0;
    isWrite_ = is_write;
    readBuf_ = read_buf;
    writeData_ = write_data;
    winEnd_ = win_end;
    done_ = std::move(done);
    stats_.transfers.inc();

    Tick start = std::max({win_start, eq_.now(), nextCmdAt_});
    eq_.schedule(stepEvent_, start);
}

void
NvmcDdr4Controller::step()
{
    const Tick now = eq_.now();
    const auto& t = bus_.dram().timing();
    const auto& map = bus_.dram().addressMap();

    if (now < nextCmdAt_) {
        eq_.schedule(stepEvent_, nextCmdAt_);
        return;
    }

    if (bytesLeft_ == 0) {
        finish();
        return;
    }

    dram::DramCoord c = map.decompose(addr_ + bytesDone_);
    std::uint32_t fb = map.flatBank(c);

    // Close a foreign bank / wrong row first.
    if (openBank_ >= 0 &&
        (static_cast<std::uint32_t>(openBank_) != fb ||
         shadow_.openRow(fb) != c.row)) {
        auto ob = static_cast<std::uint32_t>(openBank_);
        Tick ready = shadow_.earliestPrecharge(ob);
        if (ready + t.tCK > winEnd_) {
            // No room even to close; truncate here (the closing PRE
            // happens in finish()).
            finish();
            return;
        }
        if (ready > now) {
            eq_.schedule(stepEvent_, ready);
            return;
        }
        // Recompute the open bank's coordinates from its flat index.
        std::uint8_t bg = static_cast<std::uint8_t>(
            ob / map.banksPerGroup());
        std::uint8_t ba = static_cast<std::uint8_t>(
            ob % map.banksPerGroup());
        bus_.issueCommand(masterId_, {Ddr4Op::Precharge, bg, ba, 0, 0});
        shadow_.onPrecharge(ob, now);
        nextCmdAt_ = now + t.tCK;
        openBank_ = -1;
        eq_.schedule(stepEvent_, now + t.tCK);
        return;
    }

    if (openBank_ < 0) {
        Tick ready = shadow_.earliestActivate(fb, c.bankGroup);
        // After ACT there must still be room for at least one CAS.
        Tick first_cas = std::max(ready, now) + t.tRCD;
        if (first_cas + casTail() > winEnd_) {
            finish();
            return;
        }
        if (ready > now) {
            eq_.schedule(stepEvent_, ready);
            return;
        }
        bus_.issueCommand(masterId_, {Ddr4Op::Activate, c.bankGroup,
                                      c.bank, c.row, 0});
        shadow_.onActivate(fb, c.bankGroup, c.row, now);
        nextCmdAt_ = now + t.tCK;
        openBank_ = static_cast<std::int32_t>(fb);
        eq_.schedule(stepEvent_, now + t.tRCD);
        return;
    }

    // Bank open at the right row: issue the CAS.
    Tick ready = isWrite_ ? shadow_.earliestWrite(fb, c.bankGroup)
                          : shadow_.earliestRead(fb, c.bankGroup);
    if (std::max(ready, now) + casTail() > winEnd_) {
        finish();
        return;
    }
    if (ready > now) {
        eq_.schedule(stepEvent_, ready);
        return;
    }

    if (isWrite_) {
        bus_.issueCommand(masterId_, {Ddr4Op::Write, c.bankGroup,
                                      c.bank, c.row, c.col});
        shadow_.onWrite(fb, c.bankGroup, now);
        if (writeData_) {
            bus_.dram().writeBurst(c, writeData_ + bytesDone_);
        }
        stats_.bytesWritten.inc(AddressMap::kBurstBytes);
    } else {
        bus_.issueCommand(masterId_, {Ddr4Op::Read, c.bankGroup,
                                      c.bank, c.row, c.col});
        shadow_.onRead(fb, c.bankGroup, now);
        if (readBuf_)
            bus_.dram().readBurst(c, readBuf_ + bytesDone_);
        stats_.bytesRead.inc(AddressMap::kBurstBytes);
    }
    bytesDone_ += AddressMap::kBurstBytes;
    bytesLeft_ -= AddressMap::kBurstBytes;
    nextCmdAt_ = now + t.tCK;

    eq_.schedule(stepEvent_, now + t.tCCD_L);
}

void
NvmcDdr4Controller::finish()
{
    const auto& t = bus_.dram().timing();

    if (bytesLeft_ > 0)
        stats_.truncatedTransfers.inc();

    if (openBank_ >= 0) {
        auto ob = static_cast<std::uint32_t>(openBank_);
        Tick ready = std::max(shadow_.earliestPrecharge(ob), eq_.now());
        // The fit checks in step() reserved room for this PRE.
        if (ready + t.tCK > winEnd_)
            warn("NvmcDdr4Controller: closing PRE pushed past window");
        eq_.schedule(ready, [this, ob] {
            const auto& bank_map = bus_.dram().addressMap();
            std::uint8_t bg = static_cast<std::uint8_t>(
                ob / bank_map.banksPerGroup());
            std::uint8_t ba = static_cast<std::uint8_t>(
                ob % bank_map.banksPerGroup());
            bus_.issueCommand(masterId_,
                              {Ddr4Op::Precharge, bg, ba, 0, 0});
            shadow_.onPrecharge(ob, eq_.now());
            nextCmdAt_ = eq_.now() + bus_.dram().timing().tCK;
            openBank_ = -1;
            active_ = false;
            auto done = std::move(done_);
            auto n = bytesDone_;
            if (done)
                done(n);
        });
        return;
    }

    active_ = false;
    auto done = std::move(done_);
    auto n = bytesDone_;
    if (done)
        done(n);
}

} // namespace nvdimmc::nvmc
