#include "nvmc/nvmc.hh"

#include "common/logging.hh"

namespace nvdimmc::nvmc
{

Nvmc::Nvmc(EventQueue& eq, bus::MemoryBus& bus,
           nvm::PageBackend& backend, const ReservedLayout& layout,
           const NvmcConfig& cfg)
    : eq_(eq), bus_(bus), layout_(layout), cfg_(cfg)
{
    const auto& t = bus.dram().timing();
    if (cfg_.programmedRefresh.tRFC <= t.tRFC + cfg_.windowGuard) {
        warn("Nvmc: programmed tRFC (", cfg_.programmedRefresh.tRFC,
             " ps) leaves no usable window beyond the device tRFC (",
             t.tRFC, " ps); the NVMC will starve");
    }

    ctrl_ = std::make_unique<NvmcDdr4Controller>(eq, bus);
    dma_ = std::make_unique<DmaEngine>(eq, *ctrl_, cfg.bytesPerWindow);
    firmware_ = std::make_unique<Firmware>(eq, *dma_, backend,
                                           bus.dram(), layout,
                                           cfg.firmware);

    RefreshDetector::Params dp = cfg.detector;
    dp.tCK = t.tCK;
    detector_ = std::make_unique<RefreshDetector>(
        eq, dp, [this](Tick cmd_tick) { onRefreshDetected(cmd_tick); });
    bus.addSnooper(detector_.get());
}

void
Nvmc::onRefreshDetected(Tick command_tick)
{
    const auto& t = bus_.dram().timing();

    Tick ws, we;
    if (cfg_.gateDisabled) {
        // Failure injection: drive immediately after detection, and
        // don't even tell the controller's shadow a refresh is in
        // progress — the buggy NVMC believes the DRAM is free.
        ws = eq_.now();
        we = command_tick + cfg_.programmedRefresh.tRFC;
    } else {
        ctrl_->noteRefresh(command_tick);
        ws = command_tick + t.tRFC;
        we = command_tick + cfg_.programmedRefresh.tRFC -
             cfg_.windowGuard;
    }
    if (we <= ws)
        return; // No usable window (standard tRFC programming).

    ++windowsGranted_;
    firmware_->onWindow(ws, we);
}

void
Nvmc::forceWindowNow(Tick duration)
{
    firmware_->onWindow(eq_.now(), eq_.now() + duration);
}

} // namespace nvdimmc::nvmc
