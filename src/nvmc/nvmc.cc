#include "nvmc/nvmc.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace nvdimmc::nvmc
{

Nvmc::Nvmc(EventQueue& eq, bus::MemoryBus& bus,
           nvm::PageBackend& backend, const ReservedLayout& layout,
           const NvmcConfig& cfg)
    : eq_(eq), bus_(bus), layout_(layout), cfg_(cfg)
{
    const auto& t = bus.dram().timing();
    if (cfg_.programmedRefresh.tRFC <= t.tRFC + cfg_.windowGuard) {
        warn("Nvmc: programmed tRFC (", cfg_.programmedRefresh.tRFC,
             " ps) leaves no usable window beyond the device tRFC (",
             t.tRFC, " ps); the NVMC will starve");
    }

    ctrl_ = std::make_unique<NvmcDdr4Controller>(eq, bus);
    dma_ = std::make_unique<DmaEngine>(eq, *ctrl_, cfg.bytesPerWindow);
    firmware_ = std::make_unique<Firmware>(eq, *dma_, backend,
                                           bus.dram(), layout,
                                           cfg.firmware);

    RefreshDetector::Params dp = cfg.detector;
    dp.tCK = t.tCK;
    detector_ = std::make_unique<RefreshDetector>(
        eq, dp, [this](Tick cmd_tick) { onRefreshDetected(cmd_tick); });
    bus.addSnooper(detector_.get());
}

void
Nvmc::onRefreshDetected(Tick command_tick)
{
    const auto& t = bus_.dram().timing();

    Tick ws, we;
    if (cfg_.gateDisabled) {
        // Failure injection: drive immediately after detection, and
        // don't even tell the controller's shadow a refresh is in
        // progress — the buggy NVMC believes the DRAM is free.
        ws = eq_.now();
        we = command_tick + cfg_.programmedRefresh.tRFC;
    } else {
        ctrl_->noteRefresh(command_tick);
        ws = command_tick + t.tRFC;
        we = command_tick + cfg_.programmedRefresh.tRFC -
             cfg_.windowGuard;
    }
    if (we <= ws)
        return; // No usable window (standard tRFC programming).

    ++windowsGranted_;
    windowTicksGranted_ += we - ws;
    trace::duration("nvmc.window", "refresh-window", ws, we);
    firmware_->onWindow(ws, we);
}

void
Nvmc::registerStats(StatRegistry& reg, const std::string& prefix) const
{
    reg.add(prefix + ".windows_granted",
            [this] { return double(windowsGranted_); });

    const DetectorStats& d = detector_->stats();
    reg.addCounter(prefix + ".detector.frames_observed",
                   d.framesObserved);
    reg.addCounter(prefix + ".detector.refreshes_detected",
                   d.refreshesDetected);
    reg.addCounter(prefix + ".detector.self_refresh_ignored",
                   d.selfRefreshIgnored);
    reg.addCounter(prefix + ".detector.injected_misses",
                   d.injectedMisses);
    reg.addCounter(prefix + ".detector.injected_false_positives",
                   d.injectedFalsePositives);

    const DmaStats& dm = dma_->stats();
    reg.addCounter(prefix + ".dma.requests", dm.requests);
    reg.addCounter(prefix + ".dma.windows_used", dm.windowsUsed);
    reg.addCounter(prefix + ".dma.bytes_moved", dm.bytesMoved);
    reg.addCounter(prefix + ".dma.window_carryovers",
                   dm.windowCarryovers);
    reg.addHistogram(prefix + ".dma.bytes_per_window",
                     dm.bytesPerWindow);

    const NvmcCtrlStats& c = ctrl_->stats();
    reg.addCounter(prefix + ".ctrl.transfers", c.transfers);
    reg.addCounter(prefix + ".ctrl.bytes_read", c.bytesRead);
    reg.addCounter(prefix + ".ctrl.bytes_written", c.bytesWritten);
    reg.addCounter(prefix + ".ctrl.truncated_transfers",
                   c.truncatedTransfers);

    const FirmwareStats& f = firmware_->stats();
    reg.addCounter(prefix + ".fw.cp_polls", f.cpPolls);
    reg.addCounter(prefix + ".fw.commands_accepted",
                   f.commandsAccepted);
    reg.addCounter(prefix + ".fw.cachefills", f.cachefills);
    reg.addCounter(prefix + ".fw.writebacks", f.writebacks);
    reg.addCounter(prefix + ".fw.merged_ops", f.mergedOps);
    reg.addCounter(prefix + ".fw.acks_written", f.acksWritten);
    reg.addHistogram(prefix + ".fw.op_latency", f.opLatency);
    reg.addHistogram(prefix + ".fw.data_latency", f.dataLatency);
    reg.addHistogram(prefix + ".fw.ack_latency", f.ackLatency);

    // Derived refresh-window metrics (paper Fig 2b: how much of the
    // stolen tRFC tail the NVMC actually spends moving data).
    reg.add(prefix + ".window.open_ticks",
            [this] { return double(windowTicksGranted_); });
    reg.addCounter(prefix + ".window.used_ticks", dm.busyTicks);
    reg.add(prefix + ".window.wasted_ticks", [this] {
        Tick used = dma_->stats().busyTicks.value();
        return used >= windowTicksGranted_
                   ? 0.0
                   : double(windowTicksGranted_ - used);
    });
    reg.add(prefix + ".window.utilization_pct", [this] {
        return windowTicksGranted_ == 0
                   ? 0.0
                   : 100.0 * double(dma_->stats().busyTicks.value()) /
                         double(windowTicksGranted_);
    });
}

void
Nvmc::forceWindowNow(Tick duration)
{
    firmware_->onWindow(eq_.now(), eq_.now() + duration);
}

} // namespace nvdimmc::nvmc
