/**
 * @file
 * Communication-protocol (CP) area definitions shared by the nvdc
 * driver and the FPGA firmware (paper §IV-C).
 *
 * The first physical page of the reserved DRAM region is the CP area.
 * A command is a 64-bit word stored in its own cache line with four
 * bit-fields: Phase, Opcode, DRAM_Slot_ID and NAND_Page_ID; the
 * acknowledgement region lives in the second half of the CP page. The
 * merged writeback+cachefill command (paper §VII-C optimization (4))
 * carries a second slot/page pair in the same line.
 *
 * Layout of the reserved region (paper Fig 5):
 *   [ CP page (4 KB) | metadata area | cache slots ... ]
 */

#ifndef NVDIMMC_NVMC_CP_PROTOCOL_HH
#define NVDIMMC_NVMC_CP_PROTOCOL_HH

#include <cstdint>

#include "common/types.hh"

namespace nvdimmc::nvmc
{

/** Operation requested by the driver. */
enum class CpOpcode : std::uint8_t
{
    Nop = 0,
    Cachefill = 1,          ///< NAND page -> DRAM slot.
    Writeback = 2,          ///< DRAM slot -> NAND page.
    WritebackCachefill = 3, ///< Merged (ablation): wb pair + cf pair.
};

const char* toString(CpOpcode op);

/** One CP command (decoded form). */
struct CpCommand
{
    std::uint8_t phase = 0; ///< Non-zero, changes per new command.
    CpOpcode opcode = CpOpcode::Nop;
    std::uint32_t dramSlot = 0;
    std::uint64_t nandPage = 0;
    /** Second pair, used only by WritebackCachefill (the cf half). */
    std::uint32_t dramSlot2 = 0;
    std::uint64_t nandPage2 = 0;
    /** Request-span id (common/span.hh) carried in-band so the
     *  firmware can keep stamping the host op's phases; 0 = none.
     *  Always encoded (word 4 of the line is otherwise unused), so
     *  the line's timing is identical with spans on or off. */
    std::uint64_t spanId = 0;

    bool operator==(const CpCommand&) const = default;
};

/** Acknowledgement word written by the firmware. */
struct CpAck
{
    std::uint8_t phase = 0; ///< Echo of the command's phase.
    std::uint8_t status = 0; ///< 1 = success.

    bool operator==(const CpAck&) const = default;
};

/** @name 64 B line (de)serialization. */
/** @{ */
void encodeCpCommand(const CpCommand& cmd, std::uint8_t out[64]);
CpCommand decodeCpCommand(const std::uint8_t in[64]);
void encodeCpAck(const CpAck& ack, std::uint8_t out[64]);
CpAck decodeCpAck(const std::uint8_t in[64]);
/** @} */

/** Geometry of the reserved DRAM region. */
struct ReservedLayout
{
    std::uint64_t regionBytes = 0;   ///< Total reserved size.
    std::uint32_t maxCommands = 1;   ///< CP queue depth exposed.

    static constexpr std::uint32_t kPageBytes = 4096;
    static constexpr std::uint32_t kLineBytes = 64;
    static constexpr std::uint32_t kMetaEntryBytes = 16;
    /** Ack region starts halfway into the CP page. */
    static constexpr std::uint32_t kAckOffsetInPage = 2048;
    /** Up to 31 command slots fit below the ack region. */
    static constexpr std::uint32_t kMaxQueueDepth = 31;

    explicit ReservedLayout(std::uint64_t region_bytes,
                            std::uint32_t max_commands = 1);

    /** Byte address (within the region) of command slot @p i. */
    Addr commandAddr(std::uint32_t i) const;
    /** Byte address of the ack line for command slot @p i. */
    Addr ackAddr(std::uint32_t i) const;
    /** Byte address of metadata entry for cache slot @p slot. */
    Addr metadataAddr(std::uint32_t slot) const;

    Addr metadataBase() const { return kPageBytes; }
    std::uint64_t metadataBytes() const { return metadataBytes_; }
    /** Byte address of 4 KB cache slot @p slot. */
    Addr slotAddr(std::uint32_t slot) const;
    std::uint32_t slotCount() const { return slotCount_; }

  private:
    std::uint64_t metadataBytes_ = 0;
    Addr slotsBase_ = 0;
    std::uint32_t slotCount_ = 0;
};

/**
 * Metadata entry describing one cache slot, stored *in DRAM* so the
 * firmware's power-fail dump can recover the mapping (paper §V-C).
 */
struct SlotMetadata
{
    std::uint64_t nandPage = 0;
    bool valid = false;
    bool dirty = false;

    bool operator==(const SlotMetadata&) const = default;
};

void encodeSlotMetadata(const SlotMetadata& m, std::uint8_t out[16]);
SlotMetadata decodeSlotMetadata(const std::uint8_t in[16]);

} // namespace nvdimmc::nvmc

#endif // NVDIMMC_NVMC_CP_PROTOCOL_HH
