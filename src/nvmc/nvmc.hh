/**
 * @file
 * NVMC top level: wires the refresh detector to the shared bus and
 * turns every detected REF into a DMA window
 *
 *     [ REF tick + device tRFC , REF tick + programmed tRFC - guard )
 *
 * i.e. the NVMC waits out the DRAM's real refresh (350 ns) and then
 * owns the channel until just before the host's programmed tRFC
 * (1250 ns) expires, leaving a guard band for its closing PRE
 * (paper Fig 2b).
 */

#ifndef NVDIMMC_NVMC_NVMC_HH
#define NVDIMMC_NVMC_NVMC_HH

#include <memory>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "dram/timing.hh"
#include "nvm/nvm_media.hh"
#include "nvmc/cp_protocol.hh"
#include "nvmc/ddr4_controller.hh"
#include "nvmc/dma_engine.hh"
#include "nvmc/firmware.hh"
#include "nvmc/refresh_detector.hh"

namespace nvdimmc::nvmc
{

/** Whole-NVMC configuration. */
struct NvmcConfig
{
    RefreshDetector::Params detector;
    FirmwareConfig firmware;
    /** Data budget per window (PoC 4 KB; ASIC ablation 8 KB). */
    std::uint32_t bytesPerWindow = 4096;
    /** Time reserved at the window tail for the closing PRE. */
    Tick windowGuard = 30 * kNs;
    /** The BIOS-programmed refresh registers the firmware was told
     *  about; MUST match the host iMC programming. */
    dram::RefreshRegisters programmedRefresh =
        dram::RefreshRegisters::nvdimmc();
    /**
     * Failure injection: ignore the wait-for-device-tRFC rule and
     * start driving the bus right at detection (conflicts with the
     * still-refreshing DRAM, and with the host if detection was
     * false).
     */
    bool gateDisabled = false;
};

/** The on-DIMM controller (the FPGA). */
class Nvmc
{
  public:
    Nvmc(EventQueue& eq, bus::MemoryBus& bus,
         nvm::PageBackend& backend, const ReservedLayout& layout,
         const NvmcConfig& cfg);

    Firmware& firmware() { return *firmware_; }
    const Firmware& firmware() const { return *firmware_; }
    RefreshDetector& detector() { return *detector_; }
    DmaEngine& dma() { return *dma_; }
    const DmaEngine& dma() const { return *dma_; }
    NvmcDdr4Controller& controller() { return *ctrl_; }
    const NvmcConfig& config() const { return cfg_; }
    const ReservedLayout& layout() const { return layout_; }

    /** Windows the NVMC has been granted so far. */
    std::uint64_t windowsGranted() const { return windowsGranted_; }

    /** Total usable ticks across all granted windows. */
    Tick windowTicksGranted() const { return windowTicksGranted_; }

    /**
     * Register the whole NVMC cluster's stats: detector, DMA engine,
     * DDR4 controller, firmware, and the derived per-window metrics
     * the paper's evaluation depends on (@p prefix ".window.*":
     * open/used/wasted ticks, utilization, bytes per window).
     */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

    /**
     * Failure injection for tests: run a DMA window immediately,
     * outside any refresh.
     */
    void forceWindowNow(Tick duration);

  private:
    void onRefreshDetected(Tick command_tick);

    EventQueue& eq_;
    bus::MemoryBus& bus_;
    ReservedLayout layout_;
    NvmcConfig cfg_;

    std::unique_ptr<NvmcDdr4Controller> ctrl_;
    std::unique_ptr<DmaEngine> dma_;
    std::unique_ptr<Firmware> firmware_;
    std::unique_ptr<RefreshDetector> detector_;

    std::uint64_t windowsGranted_ = 0;
    Tick windowTicksGranted_ = 0;
};

} // namespace nvdimmc::nvmc

#endif // NVDIMMC_NVMC_NVMC_HH
