#include "nvmc/cp_protocol.hh"

#include <cstring>

#include "common/logging.hh"

namespace nvdimmc::nvmc
{

const char*
toString(CpOpcode op)
{
    switch (op) {
      case CpOpcode::Nop: return "NOP";
      case CpOpcode::Cachefill: return "CACHEFILL";
      case CpOpcode::Writeback: return "WRITEBACK";
      case CpOpcode::WritebackCachefill: return "WB+CF";
    }
    return "?";
}

namespace
{

void
put64(std::uint8_t* p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t
get64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

} // namespace

void
encodeCpCommand(const CpCommand& cmd, std::uint8_t out[64])
{
    std::memset(out, 0, 64);
    // Word 0: phase[7:0] opcode[15:8] dram_slot[39:16] nand_page[63:40]
    // (the paper's 64-bit command word). Wide fields spill into word 1
    // for the merged command and for large devices.
    std::uint64_t w0 = std::uint64_t{cmd.phase} |
                       (std::uint64_t{static_cast<std::uint8_t>(
                            cmd.opcode)} << 8) |
                       ((std::uint64_t{cmd.dramSlot} & 0xffffff) << 16) |
                       ((cmd.nandPage & 0xffffff) << 40);
    put64(out, w0);
    // Word 1: high bits of nandPage (above 24 bits).
    put64(out + 8, cmd.nandPage >> 24);
    // Words 2-3: second pair for the merged command.
    put64(out + 16, (std::uint64_t{cmd.dramSlot2} & 0xffffffff) |
                        ((cmd.nandPage2 & 0xffffffff) << 32));
    put64(out + 24, cmd.nandPage2 >> 32);
    // Word 4: the request-span id (0 when the span layer is off).
    put64(out + 32, cmd.spanId);
}

CpCommand
decodeCpCommand(const std::uint8_t in[64])
{
    CpCommand cmd;
    std::uint64_t w0 = get64(in);
    cmd.phase = static_cast<std::uint8_t>(w0 & 0xff);
    cmd.opcode = static_cast<CpOpcode>((w0 >> 8) & 0xff);
    cmd.dramSlot = static_cast<std::uint32_t>((w0 >> 16) & 0xffffff);
    cmd.nandPage = (w0 >> 40) | (get64(in + 8) << 24);
    std::uint64_t w2 = get64(in + 16);
    cmd.dramSlot2 = static_cast<std::uint32_t>(w2 & 0xffffffff);
    cmd.nandPage2 = (w2 >> 32) | (get64(in + 24) << 32);
    cmd.spanId = get64(in + 32);
    return cmd;
}

void
encodeCpAck(const CpAck& ack, std::uint8_t out[64])
{
    std::memset(out, 0, 64);
    out[0] = ack.phase;
    out[1] = ack.status;
}

CpAck
decodeCpAck(const std::uint8_t in[64])
{
    CpAck ack;
    ack.phase = in[0];
    ack.status = in[1];
    return ack;
}

ReservedLayout::ReservedLayout(std::uint64_t region_bytes,
                               std::uint32_t max_commands)
    : regionBytes(region_bytes), maxCommands(max_commands)
{
    if (max_commands == 0 || max_commands > kMaxQueueDepth)
        fatal("ReservedLayout: bad CP queue depth ", max_commands);
    if (region_bytes < 16 * kPageBytes)
        fatal("ReservedLayout: reserved region too small");

    // Solve for the slot count: CP page + metadata + slots <= region.
    std::uint64_t avail = region_bytes - kPageBytes;
    // Each slot needs a page plus a metadata entry (rounded up to
    // whole pages for the metadata area).
    std::uint64_t slots = avail / kPageBytes;
    for (;;) {
        std::uint64_t meta =
            (slots * kMetaEntryBytes + kPageBytes - 1) / kPageBytes *
            kPageBytes;
        if (meta + slots * kPageBytes <= avail || slots == 0)
            break;
        --slots;
    }
    slotCount_ = static_cast<std::uint32_t>(slots);
    metadataBytes_ =
        (slots * kMetaEntryBytes + kPageBytes - 1) / kPageBytes *
        kPageBytes;
    slotsBase_ = kPageBytes + metadataBytes_;
}

Addr
ReservedLayout::commandAddr(std::uint32_t i) const
{
    NVDC_ASSERT(i < maxCommands, "CP command index out of range");
    return std::uint64_t{i} * kLineBytes;
}

Addr
ReservedLayout::ackAddr(std::uint32_t i) const
{
    NVDC_ASSERT(i < maxCommands, "CP ack index out of range");
    return kAckOffsetInPage + std::uint64_t{i} * kLineBytes;
}

Addr
ReservedLayout::metadataAddr(std::uint32_t slot) const
{
    NVDC_ASSERT(slot < slotCount_, "metadata slot out of range");
    return metadataBase() + std::uint64_t{slot} * kMetaEntryBytes;
}

Addr
ReservedLayout::slotAddr(std::uint32_t slot) const
{
    NVDC_ASSERT(slot < slotCount_, "cache slot out of range");
    return slotsBase_ + std::uint64_t{slot} * kPageBytes;
}

void
encodeSlotMetadata(const SlotMetadata& m, std::uint8_t out[16])
{
    std::memset(out, 0, 16);
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<std::uint8_t>(m.nandPage >> (8 * i));
    out[8] = static_cast<std::uint8_t>((m.valid ? 1 : 0) |
                                       (m.dirty ? 2 : 0));
}

SlotMetadata
decodeSlotMetadata(const std::uint8_t in[16])
{
    SlotMetadata m;
    for (int i = 0; i < 8; ++i)
        m.nandPage |= std::uint64_t{in[i]} << (8 * i);
    m.valid = (in[8] & 1) != 0;
    m.dirty = (in[8] & 2) != 0;
    return m;
}

} // namespace nvdimmc::nvmc
