#include "nvmc/firmware.hh"

#include <cstring>

#include "common/logging.hh"
#include "common/span.hh"
#include "common/trace.hh"

namespace nvdimmc::nvmc
{

Firmware::Firmware(EventQueue& eq, DmaEngine& dma,
                   nvm::PageBackend& backend, dram::DramDevice& dram,
                   const ReservedLayout& layout,
                   const FirmwareConfig& cfg)
    : eq_(eq),
      dma_(dma),
      backend_(backend),
      dram_(dram),
      layout_(layout),
      cfg_(cfg),
      lastPhase_(layout.maxCommands, 0)
{
    NVDC_ASSERT(cfg.cpQueueDepth >= 1 &&
                cfg.cpQueueDepth <= layout.maxCommands,
                "CP queue depth exceeds the layout");
}

void
Firmware::onWindow(Tick win_start, Tick win_end)
{
    maybeEnqueuePoll();
    dma_.runWindow(win_start, win_end, nullptr);
}

void
Firmware::maybeEnqueuePoll()
{
    if (pollInFlight_ || decoding_)
        return;
    if (opsInFlight_ >= cfg_.cpQueueDepth)
        return;
    if (dma_.backlog() > 0)
        return; // Let queued data/ack work use the window first.

    pollInFlight_ = true;
    stats_.cpPolls.inc();
    trace::instant("nvmc.cp", "poll", eq_.now());

    auto data = std::make_shared<std::vector<std::uint8_t>>(
        std::size_t{cfg_.cpQueueDepth} * ReservedLayout::kLineBytes);
    DmaRequest req;
    req.addr = layout_.commandAddr(0);
    req.bytes = static_cast<std::uint32_t>(data->size());
    req.isWrite = false;
    req.buffer = data;
    req.done = [this, data] {
        pollInFlight_ = false;
        decoding_ = true;
        // CP decode runs in A53 software.
        eq_.scheduleAfter(cfg_.decodeDelay,
                          [this, data] { decodePoll(data); });
    };
    dma_.enqueue(std::move(req));
}

void
Firmware::decodePoll(std::shared_ptr<std::vector<std::uint8_t>> data)
{
    decoding_ = false;
    for (std::uint32_t i = 0; i < cfg_.cpQueueDepth; ++i) {
        if (opsInFlight_ >= cfg_.cpQueueDepth)
            break;
        CpCommand cmd = decodeCpCommand(
            data->data() + std::size_t{i} * ReservedLayout::kLineBytes);
        if (cmd.phase == 0 || cmd.phase == lastPhase_[i])
            continue;
        lastPhase_[i] = cmd.phase;

        if (cmd.spanId != 0) {
            // The command sat in the CP area until the poll read that
            // carried this batch arrived; the decode delay after that
            // is A53 software time.
            span::phase(cmd.spanId, span::Phase::WindowWait,
                        eq_.now() - cfg_.decodeDelay);
            span::phase(cmd.spanId, span::Phase::FwDecode, eq_.now());
        }

        Op op;
        op.cmd = cmd;
        op.cpIndex = i;
        op.acceptedAt = eq_.now();
        stats_.commandsAccepted.inc();
        startOp(std::move(op));
    }
}

void
Firmware::startOp(Op op)
{
    opsInFlight_ += 1;
    auto shared = std::make_shared<Op>(std::move(op));
    // Any fresh command on a slot invalidates a prior merged-capture
    // note for it: the driver only reuses a slot after installing new
    // metadata, so the note's page match is already stale.
    mergedCaptured_.erase(shared->cmd.dramSlot);
    if (shared->cmd.opcode == CpOpcode::WritebackCachefill)
        mergedCaptured_.erase(shared->cmd.dramSlot2);
    switch (shared->cmd.opcode) {
      case CpOpcode::Cachefill:
        stats_.cachefills.inc();
        runCachefill(shared, shared->cmd.nandPage, shared->cmd.dramSlot,
                     true);
        break;
      case CpOpcode::Writeback:
        stats_.writebacks.inc();
        runWriteback(shared, shared->cmd.nandPage, shared->cmd.dramSlot,
                     false);
        break;
      case CpOpcode::WritebackCachefill:
        stats_.mergedOps.inc();
        runWriteback(shared, shared->cmd.nandPage, shared->cmd.dramSlot,
                     true);
        break;
      case CpOpcode::Nop:
        writeAck(shared);
        break;
    }
}

void
Firmware::runCachefill(std::shared_ptr<Op> op, std::uint64_t nand_page,
                       std::uint32_t dram_slot, bool ack_after)
{
    op->buffer = std::make_shared<std::vector<std::uint8_t>>(
        nvm::PageBackend::kPageBytes);
    backend_.readPage(nand_page, op->buffer->data(),
                      [this, op, dram_slot, ack_after] {
        // Media data in hand; push it into the slot next window(s).
        DmaRequest req;
        req.addr = layout_.slotAddr(dram_slot);
        req.bytes = nvm::PageBackend::kPageBytes;
        req.isWrite = true;
        req.buffer = op->buffer;
        req.span = op->cmd.spanId;
        req.done = [this, op, ack_after] {
            if (ack_after) {
                eq_.scheduleAfter(cfg_.postOpDelay,
                                  [this, op] { writeAck(op); });
            }
        };
        dma_.enqueue(std::move(req));
    }, op->cmd.spanId);
}

void
Firmware::runWriteback(std::shared_ptr<Op> op, std::uint64_t nand_page,
                       std::uint32_t dram_slot, bool then_cachefill)
{
    op->buffer2 = std::make_shared<std::vector<std::uint8_t>>(
        nvm::PageBackend::kPageBytes);
    DmaRequest req;
    req.addr = layout_.slotAddr(dram_slot);
    req.bytes = nvm::PageBackend::kPageBytes;
    req.isWrite = false;
    req.buffer = op->buffer2;
    req.span = op->cmd.spanId;
    req.done = [this, op, nand_page, dram_slot, then_cachefill] {
        // Data left the DRAM; it is power-safe in the FPGA buffer.
        // The program is off the host's critical path (the ack does
        // not wait for it), so it rides with no span.
        auto program = [this, op, nand_page] {
            backend_.writePage(nand_page, op->buffer2->data(),
                               [op] { /* retained until programmed */ });
        };
        if (then_cachefill) {
            // Merged op: the NAND program of the evicted page and the
            // cachefill of the new one proceed in parallel. From this
            // instant the slot's content is no longer the victim's —
            // note the capture so a power-fail dump skips the slot
            // until the install rewrites its metadata.
            program();
            mergedCaptured_[dram_slot] = nand_page;
            runCachefill(op, op->cmd.nandPage2, op->cmd.dramSlot2,
                         true);
        } else if (cfg_.ackEarlyWriteback) {
            program();
            eq_.scheduleAfter(cfg_.postOpDelay,
                              [this, op] { writeAck(op); });
        } else {
            backend_.writePage(
                nand_page, op->buffer2->data(), [this, op] {
                    eq_.scheduleAfter(cfg_.postOpDelay,
                                      [this, op] { writeAck(op); });
                }, op->cmd.spanId);
        }
    };
    dma_.enqueue(std::move(req));
}

void
Firmware::writeAck(std::shared_ptr<Op> op)
{
    auto line = std::make_shared<std::vector<std::uint8_t>>(
        ReservedLayout::kLineBytes);
    encodeCpAck({op->cmd.phase, 1}, line->data());

    // Post-op firmware time (completion handling before the ack DMA).
    span::phase(op->cmd.spanId, span::Phase::FwPost, eq_.now());
    op->ackEnqueuedAt = eq_.now();
    stats_.dataLatency.record(op->ackEnqueuedAt - op->acceptedAt);

    DmaRequest req;
    req.addr = layout_.ackAddr(op->cpIndex);
    req.bytes = ReservedLayout::kLineBytes;
    req.isWrite = true;
    req.buffer = line;
    req.span = op->cmd.spanId;
    req.done = [this, op] {
        stats_.acksWritten.inc();
        stats_.opLatency.record(eq_.now() - op->acceptedAt);
        stats_.ackLatency.record(eq_.now() - op->ackEnqueuedAt);
        if (trace::enabled()) {
            trace::duration("nvmc.cp", toString(op->cmd.opcode),
                            op->acceptedAt, eq_.now());
        }
        NVDC_ASSERT(opsInFlight_ > 0, "op accounting underflow");
        opsInFlight_ -= 1;
    };
    dma_.enqueue(std::move(req));
}

void
Firmware::readDramDirect(Addr addr, std::uint32_t len,
                         std::uint8_t* buf) const
{
    const auto& map = dram_.addressMap();
    NVDC_ASSERT(addr % dram::AddressMap::kBurstBytes == 0 &&
                len % dram::AddressMap::kBurstBytes == 0,
                "direct read must be 64B aligned");
    for (std::uint32_t off = 0; off < len;
         off += dram::AddressMap::kBurstBytes) {
        dram_.readBurst(map.decompose(addr + off), buf + off);
    }
}

std::size_t
Firmware::powerFailDump()
{
    std::size_t flushed = 0;
    std::vector<std::uint8_t> meta_line(64);
    std::vector<std::uint8_t> page(nvm::PageBackend::kPageBytes);

    for (std::uint32_t slot = 0; slot < layout_.slotCount(); ++slot) {
        Addr maddr = layout_.metadataAddr(slot);
        Addr line_addr = maddr & ~Addr{63};
        readDramDirect(line_addr, 64, meta_line.data());
        SlotMetadata m = decodeSlotMetadata(
            meta_line.data() + (maddr - line_addr));
        if (!m.valid || !m.dirty)
            continue;
        auto cap = mergedCaptured_.find(slot);
        if (cap != mergedCaptured_.end() && cap->second == m.nandPage) {
            // A merged wb+cf is mid-flight on this slot: the victim's
            // bytes were captured and programmed the moment the
            // writeback data left DRAM, and the slot itself may hold
            // a partially landed fill. Dumping it would overwrite the
            // victim's NAND page with the incoming page's bytes.
            continue;
        }
        readDramDirect(layout_.slotAddr(slot),
                       nvm::PageBackend::kPageBytes, page.data());
        // Post-mortem: commit straight into the backend's store.
        backend_.writePage(m.nandPage, page.data(), [] {});
        ++flushed;
        stats_.powerFailDumpedPages.inc();
    }
    return flushed;
}

} // namespace nvdimmc::nvmc
