// Deserializer is header-only.
#include "nvmc/deserializer.hh"
