/**
 * @file
 * The NVMC-side DDR4 master (the "DDR4 controller" of paper Fig 4).
 *
 * Drives real ACT/RD/WR/PRE commands onto the *shared* bus, but only
 * inside a caller-supplied window. Every command goes through
 * bus::MemoryBus, so if the window math is wrong (or gating is
 * disabled for failure injection) the collision checker catches it —
 * the model never cheats by touching the DRAM array out of band.
 *
 * The controller is configured with the same DDR4 timing parameters
 * as the host (paper §III-B) and keeps its own TimingShadow.
 */

#ifndef NVDIMMC_NVMC_DDR4_CONTROLLER_HH
#define NVDIMMC_NVMC_DDR4_CONTROLLER_HH

#include <cstdint>
#include <functional>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "imc/scheduler.hh"

namespace nvdimmc::nvmc
{

/** Controller statistics. */
struct NvmcCtrlStats
{
    Counter transfers;
    Counter bytesRead;
    Counter bytesWritten;
    Counter truncatedTransfers; ///< Window ended before all bytes.
};

/** Window-gated DDR4 bus master. */
class NvmcDdr4Controller
{
  public:
    using DoneFn = std::function<void(std::uint32_t bytes_done)>;

    NvmcDdr4Controller(EventQueue& eq, bus::MemoryBus& bus);

    /**
     * Move @p bytes starting at DRAM byte address @p addr (64 B
     * aligned, 64 B multiple), issuing every command inside
     * [win_start, win_end). Data is read into @p read_buf or taken
     * from @p write_data (either may be null for timing-only).
     * @p done fires when the transfer's final command (the closing
     * PRE) has issued, with the byte count actually moved.
     *
     * Only one transfer may be in flight at a time.
     */
    void transferInWindow(Addr addr, std::uint32_t bytes,
                          bool is_write, std::uint8_t* read_buf,
                          const std::uint8_t* write_data,
                          Tick win_start, Tick win_end, DoneFn done);

    /**
     * Tell the shadow a REF was issued at @p ref_tick (all banks were
     * precharged beforehand by the host's PREA).
     */
    void noteRefresh(Tick ref_tick);

    bool busy() const { return active_; }

    const NvmcCtrlStats& stats() const { return stats_; }

  private:
    void step();
    void finish();
    /** Command slots + data tail a CAS must fit before winEnd_. */
    Tick casTail() const;

    EventQueue& eq_;
    bus::MemoryBus& bus_;
    int masterId_;
    imc::TimingShadow shadow_;

    /** The transfer pipeline's single outstanding step; intrusive so
     *  the per-command reschedule never allocates. */
    EventFunctionWrapper stepEvent_;

    bool active_ = false;
    Addr addr_ = 0;
    std::uint32_t bytesLeft_ = 0;
    std::uint32_t bytesDone_ = 0;
    bool isWrite_ = false;
    std::uint8_t* readBuf_ = nullptr;
    const std::uint8_t* writeData_ = nullptr;
    Tick winEnd_ = 0;
    DoneFn done_;

    /** Flat index of the bank this controller currently holds open. */
    std::int32_t openBank_ = -1;

    /** Earliest tick the CA bus slot is free again after our last
     *  command; a new transfer's first command must not land in the
     *  previous transfer's closing-PRE slot. */
    Tick nextCmdAt_ = 0;

    NvmcCtrlStats stats_;
};

} // namespace nvdimmc::nvmc

#endif // NVDIMMC_NVMC_DDR4_CONTROLLER_HH
