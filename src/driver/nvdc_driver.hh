/**
 * @file
 * The nvdc device driver model (paper §IV-B/C, Fig 6).
 *
 * Exposes a 120 GB byte-addressable device backed by the NVM media,
 * fronted by the DRAM cache. Accesses to pages with valid PTEs go
 * straight to DRAM (plus the driver's mapping-management and
 * cache-coherence overheads the paper measures at 24-30%); faults take
 * the cachefill/writeback path over the CP area, serialized by the CP
 * queue depth (1 on the PoC) and a global driver lock — the two
 * resources that shape the paper's thread-scaling curves (Fig 9).
 *
 * Coherence discipline (paper §V-B): the driver clflushes a victim
 * slot's lines before requesting a writeback and invalidates a slot's
 * lines after a cachefill. Both steps can be disabled for failure
 * injection; the CPU cache model then serves stale data, as real
 * hardware would.
 *
 * Multi-channel topology: with N modules the device pages interleave
 * round-robin across channels (page p is owned by module p % N, at
 * module-local page p / N). Each channel has its own DRAM cache
 * slice, its own driver lock and its own CP command queue — per-module
 * resources in hardware, per-module locks in a production driver — so
 * independent channels fault and serve hits concurrently. With N == 1
 * every routing function is the identity and the driver behaves
 * byte-identically to the single-channel original.
 */

#ifndef NVDIMMC_DRIVER_NVDC_DRIVER_HH
#define NVDIMMC_DRIVER_NVDC_DRIVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/media_backend.hh"
#include "common/event_queue.hh"
#include "common/sim_mutex.hh"
#include "common/span.hh"
#include "common/stats.hh"
#include "cpu/cache_model.hh"
#include "cpu/memcpy_engine.hh"
#include "dram/channel_interleave.hh"
#include "driver/dram_cache.hh"
#include "driver/page_table.hh"
#include "nvmc/cp_protocol.hh"

namespace nvdimmc::driver
{

using Callback = std::function<void()>;

/** Driver configuration (timing constants: DESIGN.md §6). */
struct NvdcDriverConfig
{
    /** @name Hit path.
     * Costs have a fixed per-op part and a per-64B-line part: the
     * coherence instructions (clflush/sfence) and mapping-management
     * work scale with the bytes touched, which is why the paper's
     * driver overhead is ~25% at 4 KB yet tiny for 128 B accesses
     * (Fig 10). 4 KB totals: lock ~870 ns, read post ~240 ns, write
     * post ~680 ns. */
    /** @{ */
    Tick hitPreOverhead = 150 * kNs;    ///< PTE walk / entry.
    /** Continuation pages of a multi-page op skip the per-op entry
     *  and pay only a small per-page mapping touch (the paper's
     *  64 KB ops run at ~1.3 us per 4 KB page, below the 4 KB op
     *  cost). */
    Tick continuationLockHold = 100 * kNs;
    Tick lockHold = 100 * kNs;          ///< Lock base cost.
    Tick lockPerLine = 10 * kNs;        ///< Mapping mgmt per line.
    Tick hitPostCoherence = 50 * kNs;   ///< Read post base (sfence).
    Tick postReadPerLine = 3 * kNs;
    /** Writes pay the full clflush/sfence persistence discipline. */
    Tick hitWriteCoherence = 100 * kNs; ///< Write post base.
    Tick postWritePerLine = 6 * kNs;
    /** @} */

    /** @name Fault path. */
    /** @{ */
    Tick faultOverhead = 1500 * kNs;   ///< Fault entry + slot mgmt.
    Tick cpWriteCost = 300 * kNs;      ///< Compose + store CP command.
    Tick ackPollInterval = 500 * kNs;
    /** Filling a slot for a never-written block needs no NAND read:
     *  the driver just zeroes the slot (CPU stores). This is why the
     *  paper's file copy runs at SSD speed while free slots last
     *  (Fig 7). */
    Tick zeroFillCost = 900 * kNs;
    /** @} */

    /** Track dirtiness (the PoC does not: every eviction writes
     *  back). */
    bool trackDirty = false;
    /** Coherence discipline switches (failure injection). */
    bool flushBeforeWriteback = true;
    bool invalidateAfterFill = true;
    /** Merge writeback+cachefill into one CP command (ablation). */
    bool mergedWbCf = false;
    /** CP queue depth the driver uses per channel
     *  (<= layout.maxCommands). */
    std::uint32_t cpQueueDepth = 1;

    /** @name Sequential prefetch (paper §VII-C, ref [37]).
     * On a fault that continues a sequential miss stream, enqueue
     * background cachefills for the next pages. Only pays off with
     * cpQueueDepth > 1 (the PoC's depth-1 CP serializes everything).
     */
    /** @{ */
    bool prefetchEnabled = false;
    std::uint32_t prefetchDepth = 2;
    /** @} */

    /** @name Hypothetical device mode (paper §VII-D1, Fig 12). */
    /** @{ */
    bool hypothetical = false;
    Tick hypotheticalTd = 0; ///< The programmable delay tD.
    /** @} */

    std::string policy = "lrc";
    std::uint64_t policySeed = 1;
};

/** Driver statistics. */
struct NvdcDriverStats
{
    Counter readOps;
    Counter writeOps;
    Counter pageFaults;
    Counter cachefills;
    Counter writebacks;
    Counter mergedCommands;
    Counter prefetchesIssued;
    Counter prefetchHits; ///< Demand faults absorbed by a prefetch.
    Histogram hitLatency;   ///< Per-segment, PTE-valid path.
    Histogram faultLatency; ///< Per-segment, fault path.
};

/** The driver. */
class NvdcDriver
{
  public:
    static constexpr std::uint32_t kPageBytes = 4096;

    /**
     * Single-channel constructor (the PoC machine).
     * @param backend_pages logical device size in 4 KB pages (the
     *        FTL's 120 GB view).
     */
    NvdcDriver(EventQueue& eq, cpu::CpuCacheModel& cache_model,
               cpu::MemcpyEngine& engine,
               const nvmc::ReservedLayout& layout,
               std::uint64_t backend_pages,
               const NvdcDriverConfig& cfg,
               backend::MediaBackend* transport = nullptr);

    /**
     * Multi-channel constructor: one reserved layout per module (in
     * channel order) and the *total* device size across all modules.
     * Addresses handed to the CPU layer are flat interleaved addresses
     * consistent with a ChannelInterleave over the same channel count
     * at the transport's interleave granule.
     *
     * @param transport the media-transport backend the fault path
     *        submits cachefills/writebacks through. Null builds the
     *        classic internal NVDIMM-C CP transport (byte-identical
     *        to the pre-seam driver).
     */
    NvdcDriver(EventQueue& eq, cpu::CpuCacheModel& cache_model,
               cpu::MemcpyEngine& engine,
               std::vector<const nvmc::ReservedLayout*> layouts,
               std::uint64_t backend_pages_total,
               const NvdcDriverConfig& cfg,
               backend::MediaBackend* transport = nullptr);

    /** Device capacity in bytes (the /dev/nvdc0 size). */
    std::uint64_t capacityBytes() const
    {
        return backendPages_ * kPageBytes;
    }

    /** @name Block-device style asynchronous access. */
    /** @{ */
    void read(Addr offset, std::uint32_t len, std::uint8_t* buf,
              Callback done);
    void write(Addr offset, std::uint32_t len, const std::uint8_t* data,
               Callback done);
    /** @} */

    /**
     * Declare a device range as holding data (e.g. after simulated
     * preconditioning): faults on it perform real cachefills instead
     * of the zero-fill fast path.
     */
    void markEverWritten(std::uint64_t first_page, std::uint64_t pages);

    /** @name Introspection (diagnostics / tests). */
    /** @{ */
    bool lockHeld() const { return locks_[0]->held(); }
    std::size_t lockWaiters() const { return locks_[0]->waiters(); }
    std::size_t pendingFillCount() const { return pendingFills_.size(); }
    std::size_t pendingWritebackCount() const
    {
        return pendingWritebacks_.size();
    }
    /** @} */

    /** @name Channel topology. */
    /** @{ */
    std::uint32_t channelCount() const { return channels_; }
    /** Owning channel of a device page (round-robin). */
    std::uint32_t channelOf(std::uint64_t page) const
    {
        return il_.pageChannel(page);
    }
    DramCache& cache(std::uint32_t channel) { return *caches_[channel]; }
    const DramCache& cache(std::uint32_t channel) const
    {
        return *caches_[channel];
    }
    const nvmc::ReservedLayout& layout(std::uint32_t channel) const
    {
        return layouts_[channel];
    }
    /** @} */

    /** Channel-0 cache (the only one on a single-channel system). */
    DramCache& cache() { return *caches_[0]; }
    const DramCache& cache() const { return *caches_[0]; }
    PageTable& pageTable() { return pageTable_; }
    const NvdcDriverStats& stats() const { return stats_; }
    /** The media-transport backend the fault path goes through. */
    backend::MediaBackend& transport() { return *transport_; }
    const backend::MediaBackend& transport() const
    {
        return *transport_;
    }

    /** Register driver counters + hit/fault latency histograms under
     *  @p prefix, and the DRAM cache under @p prefix ".cache" (on a
     *  multi-channel driver: per-channel ".ch<i>.cache" blocks plus
     *  aggregate ".cache.hits/misses/hit_rate"). */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;
    const NvdcDriverConfig& config() const { return cfg_; }
    const nvmc::ReservedLayout& layout() const { return layouts_[0]; }

  private:
    struct Segment
    {
        std::uint64_t devPage;
        std::uint32_t pageOffset;
        std::uint32_t len;
        std::uint8_t* rbuf;
        const std::uint8_t* wdata;
        bool isWrite;
        bool firstInOp = true;
        Tick startedAt;
        Callback done;
        /** Request span for phase attribution (0 when disabled). All
         *  segments of a multi-page op share one span. */
        span::Id span = 0;
    };

    void access(Addr offset, std::uint32_t len, std::uint8_t* rbuf,
                const std::uint8_t* wdata, bool is_write,
                Callback done, bool first_in_op = true,
                span::Id span = 0);
    void accessContinue(Addr offset, std::uint32_t len,
                        std::uint8_t* rbuf, const std::uint8_t* wdata,
                        bool is_write, Callback done, span::Id span);
    void doSegment(std::shared_ptr<Segment> seg);
    void hitPath(std::shared_ptr<Segment> seg, std::uint32_t slot);
    void faultPath(std::shared_ptr<Segment> seg);
    void hypotheticalFault(std::shared_ptr<Segment> seg);
    void segmentMemcpy(std::shared_ptr<Segment> seg, std::uint32_t slot,
                       Callback done);
    /** One granule-run of a fine-interleave segment memcpy. */
    void segmentMemcpyChunk(std::shared_ptr<Segment> seg,
                            std::uint32_t ch, Addr local,
                            std::uint32_t off, Callback done);
    void finishHit(std::shared_ptr<Segment> seg);
    void finishFault(std::shared_ptr<Segment> seg);
    Tick postCost(const Segment& seg) const;
    Tick lockCost(const Segment& seg) const;

    /** @name Per-page channel routing. */
    /** @{ */
    DramCache& cacheFor(std::uint64_t page)
    {
        return *caches_[channelOf(page)];
    }
    SimMutex& lockFor(std::uint64_t page)
    {
        return *locks_[channelOf(page)];
    }
    /** Flat interleaved address of a channel-local DRAM address. */
    Addr flatAddr(std::uint32_t channel, Addr local) const
    {
        return il_.flatten(channel, local);
    }
    /** Module-local NAND page index for a CP command field. */
    std::uint64_t localPage(std::uint64_t page) const
    {
        return il_.localPage(page);
    }
    /** @} */

    /** Flush (or invalidate) every line of a slot, chained. Line
     *  addresses are composed channel-locally so they stay correct at
     *  any interleave granule. */
    void flushSlotLines(std::uint32_t channel, std::uint32_t slot,
                        Callback done);
    void flushLinesFrom(std::uint32_t channel, std::uint32_t slot,
                        std::uint32_t line, Callback done);
    void invalidateSlotLines(std::uint32_t channel, std::uint32_t slot,
                             Callback done);

    /** Write the metadata line covering @p slot into DRAM. */
    void writeMetadata(std::uint32_t channel, std::uint32_t slot,
                       Callback done);

    /** Complete a pending fill and wake waiters. */
    void fillCompleted(std::uint64_t dev_page);

    /** Kick sequential prefetches after a demand fault on @p page. */
    void maybePrefetch(std::uint64_t page);
    /** Background fill of one page (no app segment attached). */
    void prefetchFill(std::uint64_t page);

    EventQueue& eq_;
    cpu::CpuCacheModel& cacheModel_;
    cpu::MemcpyEngine& engine_;
    std::vector<nvmc::ReservedLayout> layouts_;
    std::uint64_t backendPages_;
    NvdcDriverConfig cfg_;

    /** Internal default transport when none was injected. */
    std::unique_ptr<backend::MediaBackend> ownedTransport_;
    backend::MediaBackend* transport_;

    std::uint32_t channels_;
    /** Interleave at the transport's granule (4 KiB for NVDIMM-C —
     *  slots never stripe across modules; 256 B allowed for CXL). */
    dram::ChannelInterleave il_;

    std::vector<std::unique_ptr<DramCache>> caches_;
    PageTable pageTable_;
    std::vector<std::unique_ptr<SimMutex>> locks_;
    /** Blocks that have ever been written (or declared written via
     *  markEverWritten); reads of other blocks are zero-fills. */
    std::vector<bool> everWritten_;

    /** Pages whose fill is in flight -> waiters to retry. */
    std::unordered_map<std::uint64_t, std::vector<Callback>>
        pendingFills_;

    /** Last demand-faulted page (sequential-stream detector). */
    std::uint64_t lastFaultPage_ = ~std::uint64_t{0};

    /**
     * Pages whose *writeback* is in flight: a re-fault on such a page
     * must wait, or its cachefill would read the NAND before the new
     * data lands there.
     */
    std::unordered_map<std::uint64_t, std::vector<Callback>>
        pendingWritebacks_;

    void writebackCompleted(std::uint64_t dev_page);

    NvdcDriverStats stats_;
};

} // namespace nvdimmc::driver

#endif // NVDIMMC_DRIVER_NVDC_DRIVER_HH
