/**
 * @file
 * The baseline: Linux's emulated NVDIMM (/dev/pmem0, paper §VI).
 *
 * A DRAM-backed ramdisk exposed through fsdax: accesses are plain
 * loads / non-temporal stores against the reserved DRAM region plus
 * the filesystem/libpmem per-op software overhead. No driver lock, no
 * coherence discipline, no persistence guarantee — the upper bound the
 * paper compares NVDIMM-C against.
 */

#ifndef NVDIMMC_DRIVER_PMEM_DRIVER_HH
#define NVDIMMC_DRIVER_PMEM_DRIVER_HH

#include <cstdint>
#include <functional>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "cpu/memcpy_engine.hh"

namespace nvdimmc::driver
{

/** Baseline configuration. */
struct PmemDriverConfig
{
    /** Per-op software cost (fio + libpmem + DAX mapping). */
    Tick opOverhead = 250 * kNs;
    /** Per-64B-line software cost (loop + coherence work). */
    Tick perLineOverhead = 2 * kNs;
    /** Extra cost of the persist step on writes (store-buffer and
     *  WPQ-visibility wait after the NT stream). */
    Tick persistCost = 350 * kNs;
};

/** Baseline statistics. */
struct PmemDriverStats
{
    Counter readOps;
    Counter writeOps;
    Histogram latency;
};

/** The emulated-pmem device. */
class PmemDriver
{
  public:
    PmemDriver(EventQueue& eq, cpu::MemcpyEngine& engine,
               std::uint64_t capacity_bytes,
               const PmemDriverConfig& cfg);

    std::uint64_t capacityBytes() const { return capacity_; }

    void read(Addr offset, std::uint32_t len, std::uint8_t* buf,
              std::function<void()> done);
    void write(Addr offset, std::uint32_t len, const std::uint8_t* data,
               std::function<void()> done);

    const PmemDriverStats& stats() const { return stats_; }

  private:
    EventQueue& eq_;
    cpu::MemcpyEngine& engine_;
    std::uint64_t capacity_;
    PmemDriverConfig cfg_;
    PmemDriverStats stats_;
};

} // namespace nvdimmc::driver

#endif // NVDIMMC_DRIVER_PMEM_DRIVER_HH
