/**
 * @file
 * Fully associative DRAM cache bookkeeping (paper §IV-B): 4 KB slots,
 * any device page in any slot, pluggable replacement policy. This is
 * pure state — the timing (CP commands, windows, NAND) lives in the
 * NvdcDriver — so the hit-rate study (§VII-B5) can replay traces
 * through it directly.
 */

#ifndef NVDIMMC_DRIVER_DRAM_CACHE_HH
#define NVDIMMC_DRIVER_DRAM_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "driver/replacement_policy.hh"

namespace nvdimmc::driver
{

/** Per-slot state. */
struct CacheSlot
{
    enum class State : std::uint8_t { Free, Stable, Busy };

    std::uint64_t devPage = 0; ///< Device (logical NAND) page cached.
    State state = State::Free;
    bool dirty = false;
};

/** Cache statistics. */
struct DramCacheStats
{
    Counter hits;
    Counter misses;
    Counter installs;
    Counter cleanEvictions;
    Counter dirtyEvictions;

    double
    hitRate() const
    {
        auto total = hits.value() + misses.value();
        return total ? static_cast<double>(hits.value()) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** The cache directory. */
class DramCache
{
  public:
    DramCache(std::uint32_t slot_count,
              std::unique_ptr<ReplacementPolicy> policy);

    std::uint32_t slotCount() const { return slotCount_; }
    std::uint32_t usedSlots() const
    {
        return slotCount_ - static_cast<std::uint32_t>(freeList_.size());
    }
    bool hasFree() const { return !freeList_.empty(); }

    /**
     * Look up @p dev_page; counts a hit/miss and (on hit) touches the
     * replacement policy.
     */
    std::optional<std::uint32_t> lookup(std::uint64_t dev_page);

    /** Look without counting or touching (driver re-checks). */
    std::optional<std::uint32_t> peek(std::uint64_t dev_page) const;

    /** Take a free slot and bind it to @p dev_page (state Busy until
     *  the fill completes). */
    std::uint32_t allocate(std::uint64_t dev_page);

    /** Choose an evictable (Stable) victim via the policy. */
    std::uint32_t pickVictim();

    /**
     * Choose an evictable *clean* victim, or nullopt if none exists.
     * Used by the prefetcher, which must never trigger writebacks.
     */
    std::optional<std::uint32_t> pickCleanVictim();

    /** Begin evicting @p slot: unmaps the page, marks Busy.
     *  @return the evicted slot's prior contents. */
    CacheSlot beginEvict(std::uint32_t slot);

    /** Finish an eviction: the slot becomes Free. */
    void finishEvict(std::uint32_t slot);

    /**
     * Rebind a slot mid-eviction to a new page (the evict/fill pair
     * reuses the same slot, as the paper's driver does). Slot stays
     * Busy until finishFill().
     */
    void rebind(std::uint32_t slot, std::uint64_t dev_page);

    /** Fill finished: slot becomes Stable (hit-able). */
    void finishFill(std::uint32_t slot);

    void markDirty(std::uint32_t slot);
    void markClean(std::uint32_t slot);

    /**
     * Pin a slot while an access is in flight: a pinned slot is never
     * chosen as a victim (the kernel analogue is that eviction's TLB
     * shootdown waits for accesses through existing mappings).
     */
    void pin(std::uint32_t slot) { ++pins_[slot]; }
    void unpin(std::uint32_t slot);
    bool pinned(std::uint32_t slot) const { return pins_[slot] != 0; }

    const CacheSlot& slot(std::uint32_t s) const { return slots_[s]; }
    const DramCacheStats& stats() const { return stats_; }
    const ReplacementPolicy& policy() const { return *policy_; }

    /** Register live counters + derived hit_rate / occupancy under
     *  @p prefix (e.g. "cache.hit_rate"). */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

  private:
    std::uint32_t slotCount_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<CacheSlot> slots_;
    std::vector<std::uint32_t> pins_;
    /** Number of Stable slots (== entries the policy knows about). */
    std::uint32_t stableCount_ = 0;
    std::vector<std::uint32_t> freeList_;
    FlatMap<std::uint32_t> pageToSlot_;
    DramCacheStats stats_;
};

} // namespace nvdimmc::driver

#endif // NVDIMMC_DRIVER_DRAM_CACHE_HH
