#include "driver/replacement_policy.hh"

#include "common/logging.hh"

namespace nvdimmc::driver
{

std::unique_ptr<ReplacementPolicy>
ReplacementPolicy::create(const std::string& policy_name,
                          std::uint64_t seed)
{
    if (policy_name == "lrc")
        return std::make_unique<LrcPolicy>();
    if (policy_name == "lru")
        return std::make_unique<LruPolicy>();
    if (policy_name == "clock")
        return std::make_unique<ClockPolicy>();
    if (policy_name == "random")
        return std::make_unique<RandomPolicy>(seed);
    fatal("unknown replacement policy '", policy_name, "'");
}

// --- LRC ---

void
LrcPolicy::reset(std::uint32_t slot_count)
{
    fifo_.clear();
    installed_.assign(slot_count, false);
}

void
LrcPolicy::onInstall(std::uint32_t slot)
{
    installed_[slot] = true;
    fifo_.push_back(slot);
}

void
LrcPolicy::onEvict(std::uint32_t slot)
{
    // Lazy removal: stale FIFO entries are skipped in pickVictim.
    installed_[slot] = false;
}

std::uint32_t
LrcPolicy::pickVictim()
{
    while (!fifo_.empty()) {
        std::uint32_t slot = fifo_.front();
        if (installed_[slot])
            return slot;
        fifo_.pop_front();
    }
    panic("LrcPolicy: no installed slot to evict");
}

// --- LRU ---

void
LruPolicy::reset(std::uint32_t slot_count)
{
    prev_.assign(slot_count, kNil);
    next_.assign(slot_count, kNil);
    linked_.assign(slot_count, false);
    head_ = tail_ = kNil;
}

void
LruPolicy::unlink(std::uint32_t slot)
{
    if (!linked_[slot])
        return;
    std::uint32_t p = prev_[slot];
    std::uint32_t n = next_[slot];
    if (p != kNil)
        next_[p] = n;
    else
        head_ = n;
    if (n != kNil)
        prev_[n] = p;
    else
        tail_ = p;
    linked_[slot] = false;
    prev_[slot] = next_[slot] = kNil;
}

void
LruPolicy::pushMru(std::uint32_t slot)
{
    prev_[slot] = kNil;
    next_[slot] = head_;
    if (head_ != kNil)
        prev_[head_] = slot;
    head_ = slot;
    if (tail_ == kNil)
        tail_ = slot;
    linked_[slot] = true;
}

void
LruPolicy::onInstall(std::uint32_t slot)
{
    unlink(slot);
    pushMru(slot);
}

void
LruPolicy::onAccess(std::uint32_t slot)
{
    if (!linked_[slot])
        return;
    unlink(slot);
    pushMru(slot);
}

void
LruPolicy::onEvict(std::uint32_t slot)
{
    unlink(slot);
}

std::uint32_t
LruPolicy::pickVictim()
{
    NVDC_ASSERT(tail_ != kNil, "LruPolicy: empty");
    return tail_;
}

// --- CLOCK ---

void
ClockPolicy::reset(std::uint32_t slot_count)
{
    state_.assign(slot_count, 0);
    hand_ = 0;
    installedCount_ = 0;
}

void
ClockPolicy::onInstall(std::uint32_t slot)
{
    if (state_[slot] == 0)
        ++installedCount_;
    state_[slot] = 2;
}

void
ClockPolicy::onAccess(std::uint32_t slot)
{
    if (state_[slot] == 1)
        state_[slot] = 2;
}

void
ClockPolicy::onEvict(std::uint32_t slot)
{
    if (state_[slot] != 0)
        --installedCount_;
    state_[slot] = 0;
}

std::uint32_t
ClockPolicy::pickVictim()
{
    NVDC_ASSERT(installedCount_ > 0, "ClockPolicy: empty");
    for (;;) {
        std::uint8_t& s = state_[hand_];
        std::uint32_t current = hand_;
        hand_ = (hand_ + 1) % state_.size();
        if (s == 1)
            return current;
        if (s == 2)
            s = 1;
    }
}

// --- RANDOM ---

void
RandomPolicy::reset(std::uint32_t slot_count)
{
    installed_.clear();
    position_.assign(slot_count, kNil);
}

void
RandomPolicy::onInstall(std::uint32_t slot)
{
    if (position_[slot] != kNil)
        return;
    position_[slot] = static_cast<std::uint32_t>(installed_.size());
    installed_.push_back(slot);
}

void
RandomPolicy::onEvict(std::uint32_t slot)
{
    std::uint32_t pos = position_[slot];
    if (pos == kNil)
        return;
    std::uint32_t last = installed_.back();
    installed_[pos] = last;
    position_[last] = pos;
    installed_.pop_back();
    position_[slot] = kNil;
}

std::uint32_t
RandomPolicy::pickVictim()
{
    NVDC_ASSERT(!installed_.empty(), "RandomPolicy: empty");
    return installed_[rng_.below(installed_.size())];
}

} // namespace nvdimmc::driver
