#include "driver/nvdimmn_driver.hh"

#include <vector>

#include "common/logging.hh"

namespace nvdimmc::driver
{

NvdimmNDriver::NvdimmNDriver(EventQueue& eq, cpu::MemcpyEngine& engine,
                             dram::DramDevice& dram, nvm::ZNand& nand,
                             const NvdimmNConfig& cfg)
    : eq_(eq), engine_(engine), dram_(dram), nand_(nand), cfg_(cfg)
{
    if (nand.params().capacityBytes() < capacityBytes()) {
        fatal("NvdimmN: NAND smaller than the DRAM it must back up");
    }
}

void
NvdimmNDriver::read(Addr offset, std::uint32_t len, std::uint8_t* buf,
                    std::function<void()> done)
{
    NVDC_ASSERT(offset + len <= capacityBytes(), "read out of range");
    stats_.readOps.inc();
    eq_.scheduleAfter(cfg_.opOverhead,
                      [this, offset, len, buf,
                       cb = std::move(done)]() mutable {
                          engine_.read(offset, len, buf, true,
                                       std::move(cb));
                      });
}

void
NvdimmNDriver::write(Addr offset, std::uint32_t len,
                     const std::uint8_t* data,
                     std::function<void()> done)
{
    NVDC_ASSERT(offset + len <= capacityBytes(), "write out of range");
    stats_.writeOps.inc();
    eq_.scheduleAfter(cfg_.opOverhead,
                      [this, offset, len, data,
                       cb = std::move(done)]() mutable {
                          engine_.writeNt(offset, len, data,
                                          std::move(cb));
                      });
}

std::uint64_t
NvdimmNDriver::powerFailBackup()
{
    const auto& map = dram_.addressMap();
    std::uint64_t pages = capacityBytes() / kPageBytes;
    std::uint64_t budget =
        cfg_.backupEnergyPages == 0 ? pages : cfg_.backupEnergyPages;

    std::vector<std::uint8_t> page(kPageBytes);
    std::uint64_t saved = 0;
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (saved >= budget) {
            stats_.pagesLostToEnergy.inc(pages - p);
            warn("NvdimmN: super-caps exhausted after ", saved,
                 " pages; ", pages - p, " pages lost");
            break;
        }
        for (std::uint32_t off = 0; off < kPageBytes; off += 64) {
            dram_.readBurst(map.decompose(p * kPageBytes + off),
                            page.data() + off);
        }
        // Post-mortem: commit straight into the NAND store. The raw
        // page image goes to the same page index (NVDIMM-N keeps a
        // 1:1 layout; no FTL is needed for the sequential dump — a
        // real module erases the backup area before each save).
        nand_.programPage(p, page.data(), [] {});
        ++saved;
        stats_.pagesBackedUp.inc();
    }
    return saved;
}

std::uint64_t
NvdimmNDriver::restore()
{
    const auto& map = dram_.addressMap();
    std::uint64_t pages = capacityBytes() / kPageBytes;
    std::vector<std::uint8_t> page(kPageBytes);
    std::uint64_t restored = 0;
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (!nand_.pageProgrammed(p))
            continue;
        nand_.readPage(p, page.data(), [] {});
        for (std::uint32_t off = 0; off < kPageBytes; off += 64) {
            dram_.writeBurst(map.decompose(p * kPageBytes + off),
                             page.data() + off);
        }
        ++restored;
        stats_.pagesRestored.inc();
    }
    return restored;
}

} // namespace nvdimmc::driver
