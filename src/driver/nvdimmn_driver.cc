#include "driver/nvdimmn_driver.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace nvdimmc::driver
{

NvdimmNDriver::NvdimmNDriver(EventQueue& eq, cpu::MemcpyEngine& engine,
                             dram::DramDevice& dram, nvm::ZNand& nand,
                             const NvdimmNConfig& cfg)
    : eq_(eq), engine_(engine), dram_(dram), nand_(nand), cfg_(cfg)
{
    if (nand.params().capacityBytes() < capacityBytes()) {
        fatal("NvdimmN: NAND smaller than the DRAM it must back up");
    }
}

void
NvdimmNDriver::read(Addr offset, std::uint32_t len, std::uint8_t* buf,
                    std::function<void()> done)
{
    NVDC_ASSERT(offset + len <= capacityBytes(), "read out of range");
    stats_.readOps.inc();
    eq_.scheduleAfter(cfg_.opOverhead,
                      [this, offset, len, buf,
                       cb = std::move(done)]() mutable {
                          engine_.read(offset, len, buf, true,
                                       std::move(cb));
                      });
}

void
NvdimmNDriver::write(Addr offset, std::uint32_t len,
                     const std::uint8_t* data,
                     std::function<void()> done)
{
    NVDC_ASSERT(offset + len <= capacityBytes(), "write out of range");
    stats_.writeOps.inc();
    eq_.scheduleAfter(cfg_.opOverhead,
                      [this, offset, len, data,
                       cb = std::move(done)]() mutable {
                          engine_.writeNt(offset, len, data,
                                          std::move(cb));
                      });
}

std::uint64_t
NvdimmNDriver::powerFailBackup()
{
    const auto& map = dram_.addressMap();
    std::uint64_t pages = capacityBytes() / kPageBytes;
    // Byte budget overrides the page budget; either one at 0 means
    // "ideally sized caps", i.e. enough for a full dump. Every page
    // is accounted for exactly once: saved, truncated (counted lost
    // too, since its tail is gone), or lost outright.
    std::uint64_t budget_bytes =
        cfg_.backupEnergyBytes != 0 ? cfg_.backupEnergyBytes
        : cfg_.backupEnergyPages != 0
            ? cfg_.backupEnergyPages * std::uint64_t{kPageBytes}
            : pages * std::uint64_t{kPageBytes};

    // A real module erases the backup area before each save; without
    // this, the second power cut in a device's life would program
    // already-programmed pages (a NAND discipline violation that
    // corrupts the previous image's remains).
    std::uint64_t blocks =
        (pages + nand_.params().pagesPerBlock - 1) /
        nand_.params().pagesPerBlock;
    for (std::uint64_t b = 0; b < blocks; ++b)
        nand_.eraseBlock(b, [] {});

    std::vector<std::uint8_t> page(kPageBytes);
    std::uint64_t saved = 0;
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (budget_bytes == 0) {
            stats_.pagesLostToEnergy.inc(pages - p);
            warn("NvdimmN: super-caps exhausted after ", saved,
                 " pages; ", pages - p, " pages lost");
            break;
        }
        for (std::uint32_t off = 0; off < kPageBytes; off += 64) {
            dram_.readBurst(map.decompose(p * kPageBytes + off),
                            page.data() + off);
        }
        if (budget_bytes < kPageBytes) {
            // The caps die mid-page: the prefix that made it is
            // written (torn), the tail reads back as erased flash.
            std::fill(page.begin() +
                          static_cast<std::ptrdiff_t>(budget_bytes),
                      page.end(), 0xFF);
            nand_.programPage(p, page.data(), [] {});
            stats_.pagesTruncated.inc();
            stats_.pagesLostToEnergy.inc(pages - p);
            warn("NvdimmN: super-caps died mid-page after ", saved,
                 " pages + ", budget_bytes, " bytes; ", pages - p,
                 " pages lost (1 torn)");
            break;
        }
        // Post-mortem: commit straight into the NAND store. The raw
        // page image goes to the same page index (NVDIMM-N keeps a
        // 1:1 layout; no FTL is needed for the sequential dump).
        nand_.programPage(p, page.data(), [] {});
        budget_bytes -= kPageBytes;
        ++saved;
        stats_.pagesBackedUp.inc();
    }
    return saved;
}

std::uint64_t
NvdimmNDriver::restore()
{
    const auto& map = dram_.addressMap();
    std::uint64_t pages = capacityBytes() / kPageBytes;
    std::vector<std::uint8_t> page(kPageBytes);
    std::uint64_t restored = 0;
    for (std::uint64_t p = 0; p < pages; ++p) {
        if (!nand_.pageProgrammed(p))
            continue;
        nand_.readPage(p, page.data(), [] {});
        for (std::uint32_t off = 0; off < kPageBytes; off += 64) {
            dram_.writeBurst(map.decompose(p * kPageBytes + off),
                             page.data() + off);
        }
        ++restored;
        stats_.pagesRestored.inc();
    }
    return restored;
}

} // namespace nvdimmc::driver
