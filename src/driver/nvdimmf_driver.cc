#include "driver/nvdimmf_driver.hh"

#include "common/logging.hh"

namespace nvdimmc::driver
{

NvdimmFDriver::NvdimmFDriver(EventQueue& eq, ftl::Ftl& ftl,
                             imc::Imc& imc, const NvdimmFConfig& cfg)
    : eq_(eq), ftl_(ftl), imc_(imc), cfg_(cfg)
{
}

void
NvdimmFDriver::read(Addr offset, std::uint32_t len, std::uint8_t* buf,
                    std::function<void()> done)
{
    NVDC_ASSERT(offset % kPageBytes == 0 && len % kPageBytes == 0,
                "NVDIMM-F is a block device: 4 KB aligned only");
    NVDC_ASSERT(offset + len <= capacityBytes(), "read out of range");
    stats_.readOps.inc();
    Tick started = eq_.now();
    eq_.scheduleAfter(cfg_.opOverhead, [this, offset, len, buf, started,
                                        cb = std::move(done)]() mutable {
        readPages(offset / kPageBytes, len / kPageBytes, buf,
                  std::move(cb), started);
    });
}

void
NvdimmFDriver::readPages(std::uint64_t page, std::uint32_t pages,
                         std::uint8_t* buf, std::function<void()> done,
                         Tick started)
{
    if (pages == 0) {
        stats_.latency.record(eq_.now() - started);
        done();
        return;
    }
    // Doorbell, NAND read into the aperture, then the host pulls the
    // block across the DDR4 bus.
    eq_.scheduleAfter(cfg_.commandCost, [this, page, pages, buf,
                                         started,
                                         cb = std::move(done)]() mutable {
        ftl_.readPage(page, buf, [this, page, pages, buf, started,
                                  cb = std::move(cb)]() mutable {
            imc_.bulkTransfer(kPageBytes, false,
                              [this, page, pages, buf, started,
                               cb = std::move(cb)]() mutable {
                readPages(page + 1, pages - 1,
                          buf ? buf + kPageBytes : nullptr,
                          std::move(cb), started);
            });
        });
    });
}

void
NvdimmFDriver::write(Addr offset, std::uint32_t len,
                     const std::uint8_t* data,
                     std::function<void()> done)
{
    NVDC_ASSERT(offset % kPageBytes == 0 && len % kPageBytes == 0,
                "NVDIMM-F is a block device: 4 KB aligned only");
    NVDC_ASSERT(offset + len <= capacityBytes(), "write out of range");
    stats_.writeOps.inc();
    Tick started = eq_.now();
    eq_.scheduleAfter(cfg_.opOverhead, [this, offset, len, data,
                                        started,
                                        cb = std::move(done)]() mutable {
        writePages(offset / kPageBytes, len / kPageBytes, data,
                   std::move(cb), started);
    });
}

void
NvdimmFDriver::writePages(std::uint64_t page, std::uint32_t pages,
                          const std::uint8_t* data,
                          std::function<void()> done, Tick started)
{
    if (pages == 0) {
        stats_.latency.record(eq_.now() - started);
        done();
        return;
    }
    eq_.scheduleAfter(cfg_.commandCost, [this, page, pages, data,
                                         started,
                                         cb = std::move(done)]() mutable {
        imc_.bulkTransfer(kPageBytes, true,
                          [this, page, pages, data, started,
                           cb = std::move(cb)]() mutable {
            ftl_.writePage(page, data, [this, page, pages, data,
                                        started,
                                        cb = std::move(cb)]() mutable {
                writePages(page + 1, pages - 1,
                           data ? data + kPageBytes : nullptr,
                           std::move(cb), started);
            });
        });
    });
}

} // namespace nvdimmc::driver
