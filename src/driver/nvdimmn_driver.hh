/**
 * @file
 * NVDIMM-N model (paper §VIII / JEDEC): a regular DRAM DIMM with NAND
 * on the side, used only for a full backup on power failure (powered
 * by super-capacitors) and a restore at the next boot. Runtime
 * accesses are plain DRAM loads/stores — full speed, but capacity is
 * DRAM-sized and the super-cap energy budget bounds how much can be
 * saved.
 */

#ifndef NVDIMMC_DRIVER_NVDIMMN_DRIVER_HH
#define NVDIMMC_DRIVER_NVDIMMN_DRIVER_HH

#include <cstdint>
#include <functional>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "cpu/memcpy_engine.hh"
#include "dram/dram_device.hh"
#include "nvm/znand.hh"

namespace nvdimmc::driver
{

/** NVDIMM-N configuration. */
struct NvdimmNConfig
{
    /** Per-op software cost (same DAX stack as the baseline). */
    Tick opOverhead = 250 * kNs;
    /**
     * Super-capacitor energy budget expressed as the number of 4 KB
     * pages that can be flushed before the caps run dry. 0 = save
     * everything (ideally sized caps).
     */
    std::uint64_t backupEnergyPages = 0;
    /**
     * Byte-granular energy budget; overrides backupEnergyPages when
     * non-zero. A page needs the full kPageBytes of energy to be
     * saved whole; a mid-page cut-off writes a torn page (the prefix
     * that made it, 0xFF-filled tail) and counts it both as truncated
     * and as lost.
     */
    std::uint64_t backupEnergyBytes = 0;
};

/** NVDIMM-N statistics. */
struct NvdimmNStats
{
    Counter readOps;
    Counter writeOps;
    Counter pagesBackedUp;
    Counter pagesLostToEnergy;
    Counter pagesTruncated;
    Counter pagesRestored;
};

/** The NVDIMM-N device. */
class NvdimmNDriver
{
  public:
    static constexpr std::uint32_t kPageBytes = 4096;

    NvdimmNDriver(EventQueue& eq, cpu::MemcpyEngine& engine,
                  dram::DramDevice& dram, nvm::ZNand& nand,
                  const NvdimmNConfig& cfg);

    /** DRAM capacity == device capacity (unlike NVDIMM-C/F). */
    std::uint64_t capacityBytes() const
    {
        return dram_.addressMap().capacity();
    }

    /** @name Runtime access: plain DRAM. */
    /** @{ */
    void read(Addr offset, std::uint32_t len, std::uint8_t* buf,
              std::function<void()> done);
    void write(Addr offset, std::uint32_t len, const std::uint8_t* data,
               std::function<void()> done);
    /** @} */

    /**
     * Power failure: copy DRAM contents into the NAND on super-cap
     * power (post-mortem, no simulated time). Pages beyond the energy
     * budget are lost. @return pages saved.
     */
    std::uint64_t powerFailBackup();

    /**
     * Boot-time restore: copy the NAND backup into the (blank) DRAM.
     * @return pages restored.
     */
    std::uint64_t restore();

    const NvdimmNStats& stats() const { return stats_; }

  private:
    EventQueue& eq_;
    cpu::MemcpyEngine& engine_;
    dram::DramDevice& dram_;
    nvm::ZNand& nand_;
    NvdimmNConfig cfg_;
    NvdimmNStats stats_;
};

} // namespace nvdimmc::driver

#endif // NVDIMMC_DRIVER_NVDIMMN_DRIVER_HH
