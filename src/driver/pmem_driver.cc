#include "driver/pmem_driver.hh"

#include "common/logging.hh"

namespace nvdimmc::driver
{

PmemDriver::PmemDriver(EventQueue& eq, cpu::MemcpyEngine& engine,
                       std::uint64_t capacity_bytes,
                       const PmemDriverConfig& cfg)
    : eq_(eq), engine_(engine), capacity_(capacity_bytes), cfg_(cfg)
{
}

void
PmemDriver::read(Addr offset, std::uint32_t len, std::uint8_t* buf,
                 std::function<void()> done)
{
    NVDC_ASSERT(offset + len <= capacity_, "pmem read out of range");
    stats_.readOps.inc();
    Tick start = eq_.now();
    Tick overhead = cfg_.opOverhead + (len / 64) * cfg_.perLineOverhead;
    eq_.scheduleAfter(overhead, [this, offset, len, buf, start,
                                        cb = std::move(done)]() mutable {
        engine_.read(offset, len, buf, true,
                     [this, start, cb = std::move(cb)] {
                         stats_.latency.record(eq_.now() - start);
                         cb();
                     });
    });
}

void
PmemDriver::write(Addr offset, std::uint32_t len,
                  const std::uint8_t* data, std::function<void()> done)
{
    NVDC_ASSERT(offset + len <= capacity_, "pmem write out of range");
    stats_.writeOps.inc();
    Tick start = eq_.now();
    Tick overhead = cfg_.opOverhead + (len / 64) * cfg_.perLineOverhead;
    eq_.scheduleAfter(overhead, [this, offset, len, data, start,
                                        cb = std::move(done)]() mutable {
        engine_.writeNt(offset, len, data,
                        [this, start, cb = std::move(cb)]() mutable {
            eq_.scheduleAfter(cfg_.persistCost,
                              [this, start, cb = std::move(cb)] {
                stats_.latency.record(eq_.now() - start);
                cb();
            });
        });
    });
}

} // namespace nvdimmc::driver
