/**
 * @file
 * Cache-slot replacement policies for the nvdc driver's DRAM cache.
 *
 * The paper's PoC uses least-recently-cached (LRC): victims are chosen
 * in FIFO order of *installation*, ignoring accesses (§IV-B). Its
 * in-house study (§VII-B5) shows LRU would push TPC-H hit rates to
 * 78.7-99.3%; CLOCK and RANDOM are included for the policy-exploration
 * example and ablation bench.
 */

#ifndef NVDIMMC_DRIVER_REPLACEMENT_POLICY_HH
#define NVDIMMC_DRIVER_REPLACEMENT_POLICY_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"

namespace nvdimmc::driver
{

/** Interface every policy implements. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** (Re)initialize for @p slot_count slots, all uninstalled. */
    virtual void reset(std::uint32_t slot_count) = 0;

    virtual void onInstall(std::uint32_t slot) = 0;
    virtual void onAccess(std::uint32_t slot) = 0;
    virtual void onEvict(std::uint32_t slot) = 0;

    /** Choose a victim among installed slots (never called empty). */
    virtual std::uint32_t pickVictim() = 0;

    virtual const char* name() const = 0;

    /** Factory: "lrc", "lru", "clock", "random". */
    static std::unique_ptr<ReplacementPolicy>
    create(const std::string& policy_name, std::uint64_t seed = 1);
};

/** Least-recently-cached: FIFO by installation (the paper's PoC). */
class LrcPolicy : public ReplacementPolicy
{
  public:
    void reset(std::uint32_t slot_count) override;
    void onInstall(std::uint32_t slot) override;
    void onAccess(std::uint32_t slot) override {(void)slot;}
    void onEvict(std::uint32_t slot) override;
    std::uint32_t pickVictim() override;
    const char* name() const override { return "lrc"; }

  private:
    std::deque<std::uint32_t> fifo_;
    std::vector<bool> installed_;
};

/** Least-recently-used over accesses (intrusive list). */
class LruPolicy : public ReplacementPolicy
{
  public:
    void reset(std::uint32_t slot_count) override;
    void onInstall(std::uint32_t slot) override;
    void onAccess(std::uint32_t slot) override;
    void onEvict(std::uint32_t slot) override;
    std::uint32_t pickVictim() override;
    const char* name() const override { return "lru"; }

  private:
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    void unlink(std::uint32_t slot);
    void pushMru(std::uint32_t slot);

    std::vector<std::uint32_t> prev_;
    std::vector<std::uint32_t> next_;
    std::vector<bool> linked_;
    std::uint32_t head_ = kNil; ///< MRU.
    std::uint32_t tail_ = kNil; ///< LRU.
};

/** Second-chance CLOCK. */
class ClockPolicy : public ReplacementPolicy
{
  public:
    void reset(std::uint32_t slot_count) override;
    void onInstall(std::uint32_t slot) override;
    void onAccess(std::uint32_t slot) override;
    void onEvict(std::uint32_t slot) override;
    std::uint32_t pickVictim() override;
    const char* name() const override { return "clock"; }

  private:
    std::vector<std::uint8_t> state_; ///< 0 absent, 1 present, 2 ref.
    std::uint32_t hand_ = 0;
    std::uint32_t installedCount_ = 0;
};

/** Uniform random over installed slots. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

    void reset(std::uint32_t slot_count) override;
    void onInstall(std::uint32_t slot) override;
    void onAccess(std::uint32_t slot) override {(void)slot;}
    void onEvict(std::uint32_t slot) override;
    std::uint32_t pickVictim() override;
    const char* name() const override { return "random"; }

  private:
    Rng rng_;
    std::vector<std::uint32_t> installed_;   ///< Dense list.
    std::vector<std::uint32_t> position_;    ///< slot -> index or kNil.
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};
};

} // namespace nvdimmc::driver

#endif // NVDIMMC_DRIVER_REPLACEMENT_POLICY_HH
