// PageTable is header-only.
#include "driver/page_table.hh"
