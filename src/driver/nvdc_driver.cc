#include "driver/nvdc_driver.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "backend/nvdimmc_backend.hh"
#include "common/logging.hh"

namespace nvdimmc::driver
{

NvdcDriver::NvdcDriver(EventQueue& eq, cpu::CpuCacheModel& cache_model,
                       cpu::MemcpyEngine& engine,
                       const nvmc::ReservedLayout& layout,
                       std::uint64_t backend_pages,
                       const NvdcDriverConfig& cfg,
                       backend::MediaBackend* transport)
    : NvdcDriver(eq, cache_model, engine,
                 std::vector<const nvmc::ReservedLayout*>{&layout},
                 backend_pages, cfg, transport)
{
}

NvdcDriver::NvdcDriver(EventQueue& eq, cpu::CpuCacheModel& cache_model,
                       cpu::MemcpyEngine& engine,
                       std::vector<const nvmc::ReservedLayout*> layouts,
                       std::uint64_t backend_pages_total,
                       const NvdcDriverConfig& cfg,
                       backend::MediaBackend* transport)
    : eq_(eq),
      cacheModel_(cache_model),
      engine_(engine),
      backendPages_(backend_pages_total),
      cfg_(cfg),
      ownedTransport_(
          transport ? nullptr
                    : new backend::NvdimmcBackend(
                          eq, cache_model, layouts,
                          backend::NvdimmcBackendConfig{
                              cfg.cpWriteCost, cfg.ackPollInterval,
                              cfg.cpQueueDepth})),
      transport_(transport ? transport : ownedTransport_.get()),
      channels_(static_cast<std::uint32_t>(layouts.size())),
      il_(channels_, transport_->traits().interleaveGranule),
      everWritten_(backend_pages_total, false)
{
    NVDC_ASSERT(!layouts.empty(), "driver needs at least one module");
    NVDC_ASSERT(backend_pages_total % channels_ == 0,
                "device pages must split evenly across modules");
    layouts_.reserve(layouts.size());
    caches_.reserve(layouts.size());
    locks_.reserve(layouts.size());
    for (std::uint32_t ch = 0; ch < channels_; ++ch) {
        const nvmc::ReservedLayout& lay = *layouts[ch];
        layouts_.push_back(lay);
        caches_.push_back(std::make_unique<DramCache>(
            lay.slotCount(),
            ReplacementPolicy::create(cfg.policy,
                                      cfg.policySeed + ch)));
        locks_.push_back(std::make_unique<SimMutex>(eq));
    }
}

void
NvdcDriver::markEverWritten(std::uint64_t first_page,
                            std::uint64_t pages)
{
    for (std::uint64_t p = first_page; p < first_page + pages; ++p)
        everWritten_[p] = true;
}

void
NvdcDriver::read(Addr offset, std::uint32_t len, std::uint8_t* buf,
                 Callback done)
{
    stats_.readOps.inc();
    // The span opens as a hit; the fault path reclassifies it.
    span::Id sp = span::open(channelOf(offset / kPageBytes), eq_.now(),
                             span::OpClass::Hit);
    if (sp != 0) {
        done = [this, sp, cb = std::move(done)]() mutable {
            span::close(sp, eq_.now());
            cb();
        };
    }
    access(offset, len, buf, nullptr, false, std::move(done), true, sp);
}

void
NvdcDriver::write(Addr offset, std::uint32_t len,
                  const std::uint8_t* data, Callback done)
{
    stats_.writeOps.inc();
    span::Id sp = span::open(channelOf(offset / kPageBytes), eq_.now(),
                             span::OpClass::Write);
    if (sp != 0) {
        done = [this, sp, cb = std::move(done)]() mutable {
            span::close(sp, eq_.now());
            cb();
        };
    }
    access(offset, len, nullptr, data, true, std::move(done), true, sp);
}

void
NvdcDriver::accessContinue(Addr offset, std::uint32_t len,
                           std::uint8_t* rbuf,
                           const std::uint8_t* wdata, bool is_write,
                           Callback done, span::Id span)
{
    access(offset, len, rbuf, wdata, is_write, std::move(done), false,
           span);
}

void
NvdcDriver::access(Addr offset, std::uint32_t len, std::uint8_t* rbuf,
                   const std::uint8_t* wdata, bool is_write,
                   Callback done, bool first_in_op, span::Id span)
{
    NVDC_ASSERT(offset % 64 == 0 && len % 64 == 0 && len > 0,
                "nvdc access must be 64B aligned");
    NVDC_ASSERT(offset + len <= capacityBytes(),
                "nvdc access beyond device capacity");

    // Split into per-page segments served in order (as a synchronous
    // pread/pwrite through a DAX mapping would be).
    std::uint32_t first_len = std::min<std::uint64_t>(
        len, kPageBytes - (offset % kPageBytes));

    auto seg = std::make_shared<Segment>();
    seg->devPage = offset / kPageBytes;
    seg->pageOffset = static_cast<std::uint32_t>(offset % kPageBytes);
    seg->len = first_len;
    seg->rbuf = rbuf;
    seg->wdata = wdata;
    seg->isWrite = is_write;
    seg->firstInOp = first_in_op;
    seg->startedAt = eq_.now();
    seg->span = span;

    std::uint32_t rest = len - first_len;
    if (rest == 0) {
        seg->done = std::move(done);
    } else {
        Addr next_off = offset + first_len;
        std::uint8_t* next_rbuf = rbuf ? rbuf + first_len : nullptr;
        const std::uint8_t* next_wdata =
            wdata ? wdata + first_len : nullptr;
        seg->done = [this, next_off, rest, next_rbuf, next_wdata,
                     is_write, span, cb = std::move(done)]() mutable {
            accessContinue(next_off, rest, next_rbuf, next_wdata,
                           is_write, std::move(cb), span);
        };
    }
    doSegment(seg);
}

void
NvdcDriver::doSegment(std::shared_ptr<Segment> seg)
{
    seg->startedAt = eq_.now();
    auto slot = pageTable_.translate(seg->devPage);
    if (slot) {
        hitPath(seg, *slot);
    } else {
        stats_.pageFaults.inc();
        if (cfg_.hypothetical)
            hypotheticalFault(seg);
        else
            faultPath(seg);
    }
}

void
NvdcDriver::segmentMemcpy(std::shared_ptr<Segment> seg,
                          std::uint32_t slot, Callback done)
{
    if (seg->span != 0) {
        done = [this, seg, cb = std::move(done)]() mutable {
            span::phase(seg->span, span::Phase::Memcpy, eq_.now());
            cb();
        };
    }
    std::uint32_t ch = channelOf(seg->devPage);
    Addr local = layouts_[ch].slotAddr(slot) + seg->pageOffset;
    const std::uint32_t granule = il_.granule();
    if (channels_ == 1 || granule >= kPageBytes) {
        // The whole slot range is one granule run: its flat image is
        // contiguous (slotAddr is page-aligned), one engine op moves
        // it — the classic NVDIMM-C path, bit for bit.
        Addr addr = flatAddr(ch, local);
        if (seg->isWrite) {
            engine_.writeNt(addr, seg->len, seg->wdata,
                            std::move(done));
        } else {
            engine_.read(addr, seg->len, seg->rbuf, true,
                         std::move(done));
        }
        return;
    }
    // Fine-granule interleave (the CXL backend's 256 B stripes): the
    // slot's channel-local bytes scatter across flat space in
    // granule-sized runs. Stream them in address order, one engine op
    // per run, as a single core walking the page would.
    segmentMemcpyChunk(seg, ch, local, 0, std::move(done));
}

void
NvdcDriver::segmentMemcpyChunk(std::shared_ptr<Segment> seg,
                               std::uint32_t ch, Addr local,
                               std::uint32_t off, Callback done)
{
    if (off >= seg->len) {
        done();
        return;
    }
    const std::uint32_t granule = il_.granule();
    Addr cur = local + off;
    std::uint32_t run = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(seg->len - off,
                                granule - cur % granule));
    Addr addr = flatAddr(ch, cur);
    Callback next = [this, seg, ch, local, off, run,
                     done = std::move(done)]() mutable {
        segmentMemcpyChunk(seg, ch, local, off + run, std::move(done));
    };
    if (seg->isWrite) {
        engine_.writeNt(addr, run, seg->wdata ? seg->wdata + off : nullptr,
                        std::move(next));
    } else {
        engine_.read(addr, run, seg->rbuf ? seg->rbuf + off : nullptr,
                     true, std::move(next));
    }
}

Tick
NvdcDriver::postCost(const Segment& seg) const
{
    Tick lines = seg.len / 64;
    if (seg.isWrite)
        return cfg_.hitWriteCoherence + lines * cfg_.postWritePerLine;
    return cfg_.hitPostCoherence + lines * cfg_.postReadPerLine;
}

Tick
NvdcDriver::lockCost(const Segment& seg) const
{
    return cfg_.lockHold + (seg.len / 64) * cfg_.lockPerLine;
}

void
NvdcDriver::finishHit(std::shared_ptr<Segment> seg)
{
    eq_.scheduleAfter(postCost(*seg), [this, seg] {
        span::phase(seg->span, span::Phase::DriverPost, eq_.now());
        stats_.hitLatency.record(eq_.now() - seg->startedAt);
        seg->done();
    });
}

void
NvdcDriver::finishFault(std::shared_ptr<Segment> seg)
{
    eq_.scheduleAfter(postCost(*seg), [this, seg] {
        span::phase(seg->span, span::Phase::DriverPost, eq_.now());
        stats_.faultLatency.record(eq_.now() - seg->startedAt);
        seg->done();
    });
}

void
NvdcDriver::hitPath(std::shared_ptr<Segment> seg, std::uint32_t slot)
{
    std::uint32_t ch = channelOf(seg->devPage);
    Tick pre = seg->firstInOp ? cfg_.hitPreOverhead : 0;
    eq_.scheduleAfter(pre, [this, seg, slot, ch] {
        span::phase(seg->span, span::Phase::CacheLookup, eq_.now());
        locks_[ch]->acquire([this, seg, slot, ch] {
            span::phase(seg->span, span::Phase::LockWait, eq_.now());
            Tick hold = seg->firstInOp ? lockCost(*seg)
                                       : cfg_.continuationLockHold;
            eq_.scheduleAfter(hold, [this, seg, slot, ch] {
                span::phase(seg->span, span::Phase::LockHold,
                            eq_.now());
                DramCache& cache = *caches_[ch];
                // Re-validate under the lock: the slot may have been
                // evicted while we waited.
                auto cur = cache.lookup(seg->devPage);
                if (!cur || *cur != slot) {
                    locks_[ch]->release();
                    stats_.pageFaults.inc();
                    if (cfg_.hypothetical)
                        hypotheticalFault(seg);
                    else
                        faultPath(seg);
                    return;
                }
                if (seg->isWrite)
                    everWritten_[seg->devPage] = true;
                bool meta_dirty = false;
                if (seg->isWrite && cfg_.trackDirty &&
                    !cache.slot(slot).dirty) {
                    cache.markDirty(slot);
                    meta_dirty = true;
                }
                // Keep the slot from being evicted under our feet
                // while the data moves.
                cache.pin(slot);
                locks_[ch]->release();

                auto after_meta = [this, seg, slot, ch] {
                    span::phase(seg->span, span::Phase::Metadata,
                                eq_.now());
                    segmentMemcpy(seg, slot, [this, seg, slot, ch] {
                        caches_[ch]->unpin(slot);
                        finishHit(seg);
                    });
                };
                if (meta_dirty)
                    writeMetadata(ch, slot, after_meta);
                else
                    after_meta();
            });
        });
    });
}

void
NvdcDriver::hypotheticalFault(std::shared_ptr<Segment> seg)
{
    // Paper §VII-D1: the modified driver bypasses the FPGA entirely
    // and waits three programmable delays (one per refresh-window step
    // a real uncached access needs).
    std::uint32_t ch = channelOf(seg->devPage);
    span::classify(seg->span, span::OpClass::CleanMiss);
    locks_[ch]->acquire([this, seg, ch] {
        span::phase(seg->span, span::Phase::LockWait, eq_.now());
        eq_.scheduleAfter(cfg_.faultOverhead, [this, seg, ch] {
            span::phase(seg->span, span::Phase::FaultEntry, eq_.now());
            DramCache& cache = *caches_[ch];
            auto cur = cache.peek(seg->devPage);
            if (cur) {
                locks_[ch]->release();
                hitPath(seg, *cur);
                return;
            }
            cache.lookup(seg->devPage); // Record the miss.
            std::uint32_t slot;
            if (cache.hasFree()) {
                slot = cache.allocate(seg->devPage);
            } else {
                std::uint32_t victim = cache.pickVictim();
                CacheSlot prior = cache.beginEvict(victim);
                pageTable_.unmap(prior.devPage);
                cache.rebind(victim, seg->devPage);
                slot = victim;
            }
            locks_[ch]->release();

            eq_.scheduleAfter(3 * cfg_.hypotheticalTd,
                              [this, seg, slot, ch] {
                // The three tD delays stand in for the refresh-window
                // round trips of a real uncached access.
                span::phase(seg->span, span::Phase::WindowWait,
                            eq_.now());
                locks_[ch]->acquire([this, seg, slot, ch] {
                    span::phase(seg->span, span::Phase::LockWait,
                                eq_.now());
                    DramCache& cache = *caches_[ch];
                    cache.finishFill(slot);
                    if (seg->isWrite || !cfg_.trackDirty)
                        cache.markDirty(slot);
                    pageTable_.map(seg->devPage, slot);
                    cache.pin(slot);
                    locks_[ch]->release();
                    segmentMemcpy(seg, slot, [this, seg, slot, ch] {
                        caches_[ch]->unpin(slot);
                        finishFault(seg);
                    });
                });
            });
        });
    });
}

void
NvdcDriver::faultPath(std::shared_ptr<Segment> seg)
{
    std::uint32_t ch = channelOf(seg->devPage);
    // A faulting read is at least a clean miss (writes keep their
    // Write class; a victim eviction upgrades to dirty-miss below).
    span::classify(seg->span, span::OpClass::CleanMiss);
    locks_[ch]->acquire([this, seg, ch] {
        span::phase(seg->span, span::Phase::LockWait, eq_.now());
        eq_.scheduleAfter(cfg_.faultOverhead, [this, seg, ch] {
            span::phase(seg->span, span::Phase::FaultEntry, eq_.now());
            DramCache& cache = *caches_[ch];
            // Someone else (or a prefetch) may have filled the page
            // while we waited.
            auto cur = cache.peek(seg->devPage);
            if (cur) {
                locks_[ch]->release();
                hitPath(seg, *cur);
                return;
            }
            auto pending = pendingFills_.find(seg->devPage);
            if (pending != pendingFills_.end()) {
                stats_.prefetchHits.inc();
                pending->second.push_back([this, seg] {
                    span::phase(seg->span, span::Phase::FillWait,
                                eq_.now());
                    doSegment(seg);
                });
                locks_[ch]->release();
                return;
            }
            auto pending_wb = pendingWritebacks_.find(seg->devPage);
            if (pending_wb != pendingWritebacks_.end()) {
                // The page's latest data is still on its way to the
                // NVM; refaulting now would fill stale bytes.
                pending_wb->second.push_back([this, seg] {
                    span::phase(seg->span, span::Phase::FillWait,
                                eq_.now());
                    doSegment(seg);
                });
                locks_[ch]->release();
                return;
            }

            cache.lookup(seg->devPage); // Record the miss.
            pendingFills_[seg->devPage]; // Claim the fill.

            bool sequential_stream =
                cfg_.prefetchEnabled &&
                lastFaultPage_ != ~std::uint64_t{0} &&
                seg->devPage == lastFaultPage_ + 1;
            lastFaultPage_ = seg->devPage;

            bool need_wb = false;
            std::uint64_t wb_page = 0;
            std::uint32_t slot;
            if (cache.hasFree()) {
                slot = cache.allocate(seg->devPage);
            } else {
                std::uint32_t victim = cache.pickVictim();
                CacheSlot prior = cache.beginEvict(victim);
                pageTable_.unmap(prior.devPage);
                cache.rebind(victim, seg->devPage);
                slot = victim;
                need_wb = prior.dirty || !cfg_.trackDirty;
                wb_page = prior.devPage;
                if (need_wb) {
                    pendingWritebacks_[wb_page];
                    span::classify(seg->span,
                                   span::OpClass::DirtyMiss);
                }
            }
            locks_[ch]->release();

            // The write-allocate fast path (zero-fill, no CP) only
            // applies when a free slot exists; on the eviction path
            // the PoC driver always runs the writeback+cachefill pair
            // (paper §VII-B1: "a pair of writeback and cachefill
            // operations is necessary for every 4 KB write" once the
            // cache is full).
            bool zero_fill_pre =
                !everWritten_[seg->devPage] && cache.hasFree();

            // Step 3 (after the CP work): install and serve.
            auto install = [this, seg, slot, ch, zero_fill_pre] {
                auto after_inval = [this, seg, slot, ch] {
                    // Time since the fill landed went to the
                    // invalidation pass (zero when it was skipped).
                    span::phase(seg->span, span::Phase::Clflush,
                                eq_.now());
                    locks_[ch]->acquire([this, seg, slot, ch] {
                        span::phase(seg->span, span::Phase::LockWait,
                                    eq_.now());
                        DramCache& cache = *caches_[ch];
                        cache.finishFill(slot);
                        // Without dirty tracking the PoC assumes every
                        // cached page is dirty (it writes all victims
                        // back and the power dump must save them).
                        if (seg->isWrite || !cfg_.trackDirty)
                            cache.markDirty(slot);
                        pageTable_.map(seg->devPage, slot);
                        cache.pin(slot);
                        locks_[ch]->release();
                        writeMetadata(ch, slot, [this, seg, slot, ch] {
                            span::phase(seg->span,
                                        span::Phase::Metadata,
                                        eq_.now());
                            fillCompleted(seg->devPage);
                            segmentMemcpy(seg, slot,
                                          [this, seg, slot, ch] {
                                caches_[ch]->unpin(slot);
                                finishFault(seg);
                            });
                        });
                    });
                };
                // A zero-filled slot was written by the CPU itself;
                // only FPGA-filled data needs the invalidation pass.
                if (cfg_.invalidateAfterFill && !zero_fill_pre)
                    invalidateSlotLines(ch, slot, after_inval);
                else
                    after_inval();
            };

            // Never-written block: no CP cachefill needed, just zero
            // the slot (the writeback of the victim, if any, still
            // goes over the CP channel).
            bool zero_fill = zero_fill_pre;
            if (seg->isWrite)
                everWritten_[seg->devPage] = true;

            // Step 2: the CP transactions.
            auto do_cp = [this, seg, slot, ch, need_wb, wb_page,
                          install, zero_fill] {
                // Time since FaultEntry went to the victim flush
                // chain (zero when no flush was needed).
                span::phase(seg->span, span::Phase::Clflush, eq_.now());
                if (need_wb && cfg_.mergedWbCf && !zero_fill) {
                    backend::TransportOp op;
                    op.kind =
                        backend::TransportOp::Kind::WritebackCachefill;
                    op.dramSlot = slot;
                    op.nandPage = localPage(wb_page);
                    op.dramSlot2 = slot;
                    op.nandPage2 = localPage(seg->devPage);
                    op.span = seg->span;
                    stats_.mergedCommands.inc();
                    transport_->submit(ch, op,
                                       [this, wb_page, install] {
                        writebackCompleted(wb_page);
                        install();
                    });
                    return;
                }
                auto fill = [this, seg, slot, ch, install, zero_fill] {
                    if (zero_fill) {
                        eq_.scheduleAfter(cfg_.zeroFillCost,
                                          [this, seg, install] {
                            span::phase(seg->span,
                                        span::Phase::ZeroFill,
                                        eq_.now());
                            install();
                        });
                        return;
                    }
                    backend::TransportOp op;
                    op.kind = backend::TransportOp::Kind::Cachefill;
                    op.dramSlot = slot;
                    op.nandPage = localPage(seg->devPage);
                    op.span = seg->span;
                    stats_.cachefills.inc();
                    transport_->submit(ch, op, install);
                };
                if (need_wb) {
                    backend::TransportOp op;
                    op.kind = backend::TransportOp::Kind::Writeback;
                    op.dramSlot = slot;
                    op.nandPage = localPage(wb_page);
                    op.span = seg->span;
                    stats_.writebacks.inc();
                    transport_->submit(ch, op,
                                       [this, seg, ch, slot, wb_page,
                                        fill] {
                        writebackCompleted(wb_page);
                        // The victim's bytes are durable (the module
                        // acked the writeback), but the in-DRAM slot
                        // metadata still says (victim page, dirty): a
                        // power-fail dump taken between the
                        // cachefill's DMA landing and install's
                        // metadata write would flush the *incoming*
                        // page's bytes onto the victim's NAND page.
                        // Rewrite the line now — rebind() left the
                        // slot (new page, clean) — so the dump skips
                        // the slot until install marks it dirty.
                        writeMetadata(ch, slot, [this, seg, fill] {
                            span::phase(seg->span,
                                        span::Phase::Metadata,
                                        eq_.now());
                            fill();
                        });
                    });
                } else {
                    fill();
                }
            };

            // Step 1: coherence — push any CPU-cached lines of the
            // victim slot out to DRAM before the FPGA reads it.
            if (need_wb && cfg_.flushBeforeWriteback)
                flushSlotLines(ch, slot, do_cp);
            else
                do_cp();

            if (sequential_stream)
                maybePrefetch(seg->devPage);
        });
    });
}

void
NvdcDriver::maybePrefetch(std::uint64_t page)
{
    for (std::uint32_t k = 1; k <= cfg_.prefetchDepth; ++k) {
        std::uint64_t next = page + k;
        if (next >= backendPages_)
            break;
        prefetchFill(next);
    }
}

void
NvdcDriver::prefetchFill(std::uint64_t page)
{
    // Deferred so the demand fault's CP command is queued first.
    std::uint32_t ch = channelOf(page);
    eq_.scheduleAfter(0, [this, page, ch] {
        locks_[ch]->acquire([this, page, ch] {
            DramCache& cache = *caches_[ch];
            if (cache.peek(page) || pendingFills_.count(page) ||
                pendingWritebacks_.count(page)) {
                locks_[ch]->release();
                return;
            }
            if (!everWritten_[page]) {
                locks_[ch]->release();
                return; // Nothing to fetch.
            }
            std::uint32_t slot;
            if (cache.hasFree()) {
                slot = cache.allocate(page);
            } else {
                // A prefetch may reclaim a CLEAN victim, but must
                // never trigger a writeback of its own.
                auto clean = cache.pickCleanVictim();
                if (!clean) {
                    locks_[ch]->release();
                    return;
                }
                CacheSlot prior = cache.beginEvict(*clean);
                pageTable_.unmap(prior.devPage);
                cache.rebind(*clean, page);
                slot = *clean;
            }
            pendingFills_[page];
            locks_[ch]->release();
            stats_.prefetchesIssued.inc();

            backend::TransportOp op;
            op.kind = backend::TransportOp::Kind::Cachefill;
            op.dramSlot = slot;
            op.nandPage = localPage(page);
            stats_.cachefills.inc();
            transport_->submit(ch, op, [this, page, slot, ch] {
                auto finish = [this, page, slot, ch] {
                    locks_[ch]->acquire([this, page, slot, ch] {
                        DramCache& cache = *caches_[ch];
                        cache.finishFill(slot);
                        if (!cfg_.trackDirty)
                            cache.markDirty(slot);
                        pageTable_.map(page, slot);
                        locks_[ch]->release();
                        writeMetadata(ch, slot, [this, page] {
                            fillCompleted(page);
                        });
                    });
                };
                if (cfg_.invalidateAfterFill)
                    invalidateSlotLines(ch, slot, finish);
                else
                    finish();
            });
        });
    });
}

void
NvdcDriver::flushSlotLines(std::uint32_t channel, std::uint32_t slot,
                           Callback done)
{
    flushLinesFrom(channel, slot, 0, std::move(done));
}

void
NvdcDriver::flushLinesFrom(std::uint32_t channel, std::uint32_t slot,
                           std::uint32_t line, Callback done)
{
    if (line >= kPageBytes / 64) {
        done();
        return;
    }
    // Compose each line's flat address from the channel-local offset
    // so the chain follows the slot across fine interleave granules
    // (at page granule this equals flat-base + line * 64, bit for
    // bit). Each clflush continuation owns the rest of the chain, so
    // the chain's storage dies with its last link.
    Addr addr = flatAddr(channel, layouts_[channel].slotAddr(slot) +
                                      std::uint64_t{line} * 64);
    cacheModel_.clflush(addr,
                        [this, channel, slot, line,
                         done = std::move(done)]() mutable {
                            flushLinesFrom(channel, slot, line + 1,
                                           std::move(done));
                        });
}

void
NvdcDriver::invalidateSlotLines(std::uint32_t channel,
                                std::uint32_t slot, Callback done)
{
    // Invalidation uses clflush too; the lines are clean (the CPU did
    // not write them since the fill), so no write-back traffic — just
    // instruction cost, modelled as one flush per line.
    flushSlotLines(channel, slot, std::move(done));
}

void
NvdcDriver::writeMetadata(std::uint32_t channel, std::uint32_t slot,
                          Callback done)
{
    DramCache& cache = *caches_[channel];
    std::uint32_t first = (slot / 4) * 4;
    Addr addr = flatAddr(channel, layouts_[channel].metadataAddr(first));
    NVDC_ASSERT(addr % 64 == 0, "metadata line misaligned");

    std::array<std::uint8_t, 64> line{};
    for (std::uint32_t i = 0; i < 4; ++i) {
        std::uint32_t s = first + i;
        if (s >= cache.slotCount())
            break;
        const CacheSlot& cs = cache.slot(s);
        nvmc::SlotMetadata m;
        // The firmware's power-fail dump feeds this page into its own
        // module's backend: it must be the module-LOCAL page, exactly
        // as CP commands carry it. Encoding the flat page here sent
        // channel >= 1 victims to the wrong NAND page.
        m.nandPage = localPage(cs.devPage);
        m.valid = cs.state != CacheSlot::State::Free;
        m.dirty = cs.dirty;
        nvmc::encodeSlotMetadata(m, line.data() + i * 16);
    }

    auto data = std::make_shared<std::array<std::uint8_t, 64>>(line);
    cacheModel_.store(addr, data->data(), [this, addr, data,
                                           cb = std::move(done)] {
        cacheModel_.clflush(addr, [cb, data] { cb(); });
    });
}

void
NvdcDriver::writebackCompleted(std::uint64_t dev_page)
{
    auto it = pendingWritebacks_.find(dev_page);
    if (it == pendingWritebacks_.end())
        return;
    auto waiters = std::move(it->second);
    pendingWritebacks_.erase(it);
    for (auto& w : waiters)
        eq_.scheduleAfter(0, std::move(w));
}

void
NvdcDriver::fillCompleted(std::uint64_t dev_page)
{
    auto it = pendingFills_.find(dev_page);
    if (it == pendingFills_.end())
        return;
    auto waiters = std::move(it->second);
    pendingFills_.erase(it);
    for (auto& w : waiters)
        eq_.scheduleAfter(0, std::move(w));
}

void
NvdcDriver::registerStats(StatRegistry& reg,
                          const std::string& prefix) const
{
    reg.addCounter(prefix + ".read_ops", stats_.readOps);
    reg.addCounter(prefix + ".write_ops", stats_.writeOps);
    reg.addCounter(prefix + ".page_faults", stats_.pageFaults);
    reg.addCounter(prefix + ".cachefills", stats_.cachefills);
    reg.addCounter(prefix + ".writebacks", stats_.writebacks);
    reg.addCounter(prefix + ".merged_commands", stats_.mergedCommands);
    // The transport's own counters sit where the CP ack-poll counter
    // historically lived (the NVDIMM-C transport registers exactly
    // ".ack_polls" here, keeping the golden snapshot byte-identical).
    transport_->registerStats(reg, prefix);
    reg.addCounter(prefix + ".prefetches", stats_.prefetchesIssued);
    reg.addCounter(prefix + ".prefetch_hits", stats_.prefetchHits);
    reg.addHistogram(prefix + ".hit_latency", stats_.hitLatency);
    reg.addHistogram(prefix + ".fault_latency", stats_.faultLatency);
    if (channels_ == 1) {
        caches_[0]->registerStats(reg, prefix + ".cache");
        return;
    }
    // Multi-channel: per-module cache blocks plus the aggregate the
    // flat cache.* aliases and sweep tooling key on.
    for (std::uint32_t ch = 0; ch < channels_; ++ch)
        caches_[ch]->registerStats(
            reg, prefix + ".ch" + std::to_string(ch) + ".cache");
    reg.add(prefix + ".cache.hits", [this] {
        double v = 0;
        for (const auto& c : caches_)
            v += static_cast<double>(c->stats().hits.value());
        return v;
    });
    reg.add(prefix + ".cache.misses", [this] {
        double v = 0;
        for (const auto& c : caches_)
            v += static_cast<double>(c->stats().misses.value());
        return v;
    });
    reg.add(prefix + ".cache.hit_rate", [this] {
        double hits = 0, misses = 0;
        for (const auto& c : caches_) {
            hits += static_cast<double>(c->stats().hits.value());
            misses += static_cast<double>(c->stats().misses.value());
        }
        double total = hits + misses;
        return total == 0 ? 0.0 : hits / total;
    });
}

} // namespace nvdimmc::driver
