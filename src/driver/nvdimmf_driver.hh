/**
 * @file
 * NVDIMM-F model (paper §VIII / JEDEC): NAND + controller on the DIMM
 * with *no* DRAM cache and block access only. The host moves 4 KB
 * blocks through a small command/buffer aperture with plain DDR4
 * traffic; every access pays the NAND.
 *
 * Included as the comparison point the paper positions NVDIMM-C
 * against: NVDIMM-F has more capacity (no DRAM) but no
 * byte-addressability and no DRAM-speed hit path.
 */

#ifndef NVDIMMC_DRIVER_NVDIMMF_DRIVER_HH
#define NVDIMMC_DRIVER_NVDIMMF_DRIVER_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "ftl/ftl.hh"
#include "imc/imc.hh"

namespace nvdimmc::driver
{

/** NVDIMM-F configuration. */
struct NvdimmFConfig
{
    /** Block-layer software cost per request. */
    Tick opOverhead = 900 * kNs;
    /** Command/doorbell exchange with the DIMM controller. */
    Tick commandCost = 250 * kNs;
};

/** NVDIMM-F statistics. */
struct NvdimmFStats
{
    Counter readOps;
    Counter writeOps;
    Histogram latency;
};

/** The block device. */
class NvdimmFDriver
{
  public:
    static constexpr std::uint32_t kPageBytes = 4096;

    NvdimmFDriver(EventQueue& eq, ftl::Ftl& ftl, imc::Imc& imc,
                  const NvdimmFConfig& cfg);

    std::uint64_t capacityBytes() const
    {
        return ftl_.pageCount() * kPageBytes;
    }

    /** Block read: NAND -> aperture -> host buffer over the bus. */
    void read(Addr offset, std::uint32_t len, std::uint8_t* buf,
              std::function<void()> done);

    /** Block write: host buffer -> aperture -> NAND program. */
    void write(Addr offset, std::uint32_t len, const std::uint8_t* data,
               std::function<void()> done);

    const NvdimmFStats& stats() const { return stats_; }

  private:
    void readPages(std::uint64_t page, std::uint32_t pages,
                   std::uint8_t* buf, std::function<void()> done,
                   Tick started);
    void writePages(std::uint64_t page, std::uint32_t pages,
                    const std::uint8_t* data,
                    std::function<void()> done, Tick started);

    EventQueue& eq_;
    ftl::Ftl& ftl_;
    imc::Imc& imc_;
    NvdimmFConfig cfg_;
    NvdimmFStats stats_;
};

} // namespace nvdimmc::driver

#endif // NVDIMMC_DRIVER_NVDIMMF_DRIVER_HH
