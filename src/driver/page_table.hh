/**
 * @file
 * MMU-side view of the DAX mapping (paper Fig 6): which device pages
 * currently have valid PTEs pointing at DRAM cache slots. An access to
 * a page with a valid PTE bypasses the driver entirely; an invalid
 * PTE takes the page-fault path into the nvdc fault handler.
 */

#ifndef NVDIMMC_DRIVER_PAGE_TABLE_HH
#define NVDIMMC_DRIVER_PAGE_TABLE_HH

#include <cstdint>
#include <optional>

#include "common/flat_map.hh"
#include "common/stats.hh"

namespace nvdimmc::driver
{

/** The DAX page table. */
class PageTable
{
  public:
    /** @return the mapped slot, or nullopt (-> page fault). */
    std::optional<std::uint32_t>
    translate(std::uint64_t dev_page) const
    {
        const std::uint32_t* slot = map_.find(dev_page);
        if (!slot)
            return std::nullopt;
        return *slot;
    }

    bool isMapped(std::uint64_t dev_page) const
    {
        return map_.contains(dev_page);
    }

    void
    map(std::uint64_t dev_page, std::uint32_t slot)
    {
        map_.insert_or_assign(dev_page, slot);
        maps_.inc();
    }

    /** Invalidate (TLB shootdown happens in the driver's timing). */
    void
    unmap(std::uint64_t dev_page)
    {
        map_.erase(dev_page);
        unmaps_.inc();
    }

    std::size_t mappedCount() const { return map_.size(); }
    std::uint64_t totalMaps() const { return maps_.value(); }
    std::uint64_t totalUnmaps() const { return unmaps_.value(); }

  private:
    FlatMap<std::uint32_t> map_;
    Counter maps_;
    Counter unmaps_;
};

} // namespace nvdimmc::driver

#endif // NVDIMMC_DRIVER_PAGE_TABLE_HH
