#include "driver/dram_cache.hh"

#include "common/logging.hh"

namespace nvdimmc::driver
{

DramCache::DramCache(std::uint32_t slot_count,
                     std::unique_ptr<ReplacementPolicy> policy)
    : slotCount_(slot_count),
      policy_(std::move(policy)),
      slots_(slot_count),
      pins_(slot_count, 0)
{
    NVDC_ASSERT(slot_count > 0, "empty DRAM cache");
    policy_->reset(slot_count);
    freeList_.reserve(slot_count);
    for (std::uint32_t s = slot_count; s > 0; --s)
        freeList_.push_back(s - 1);
}

std::optional<std::uint32_t>
DramCache::lookup(std::uint64_t dev_page)
{
    const std::uint32_t* s = pageToSlot_.find(dev_page);
    if (!s || slots_[*s].state != CacheSlot::State::Stable) {
        stats_.misses.inc();
        return std::nullopt;
    }
    stats_.hits.inc();
    policy_->onAccess(*s);
    return *s;
}

std::optional<std::uint32_t>
DramCache::peek(std::uint64_t dev_page) const
{
    const std::uint32_t* s = pageToSlot_.find(dev_page);
    if (!s || slots_[*s].state != CacheSlot::State::Stable)
        return std::nullopt;
    return *s;
}

std::uint32_t
DramCache::allocate(std::uint64_t dev_page)
{
    NVDC_ASSERT(!freeList_.empty(), "allocate with no free slot");
    std::uint32_t s = freeList_.back();
    freeList_.pop_back();
    CacheSlot& slot = slots_[s];
    slot.devPage = dev_page;
    slot.state = CacheSlot::State::Busy;
    slot.dirty = false;
    pageToSlot_.insert_or_assign(dev_page, s);
    return s;
}

std::uint32_t
DramCache::pickVictim()
{
    // The policy may momentarily propose a Busy or pinned slot
    // (mid-fill, mid-eviction, or with an access in flight); skip it
    // by telling the policy it is gone and retrying — it will be
    // reinstalled when it stabilizes.
    // Each rejected candidate is temporarily dropped from the policy,
    // so the scan is bounded by the number of slots the policy holds.
    std::vector<std::uint32_t> skipped;
    std::uint32_t chosen = slotCount_;
    const std::uint32_t budget = stableCount_;
    for (std::uint32_t attempts = 0; attempts < budget; ++attempts) {
        std::uint32_t v = policy_->pickVictim();
        if (slots_[v].state == CacheSlot::State::Stable &&
            pins_[v] == 0) {
            chosen = v;
            break;
        }
        policy_->onEvict(v);
        if (slots_[v].state == CacheSlot::State::Stable)
            skipped.push_back(v); // Pinned but stable: reinstall.
    }
    for (std::uint32_t s : skipped)
        policy_->onInstall(s);
    if (chosen == slotCount_)
        panic("DramCache: no evictable victim available");
    return chosen;
}

std::optional<std::uint32_t>
DramCache::pickCleanVictim()
{
    std::vector<std::uint32_t> skipped;
    std::optional<std::uint32_t> chosen;
    const std::uint32_t budget = stableCount_;
    for (std::uint32_t attempts = 0; attempts < budget; ++attempts) {
        std::uint32_t v = policy_->pickVictim();
        if (slots_[v].state == CacheSlot::State::Stable &&
            pins_[v] == 0 && !slots_[v].dirty) {
            chosen = v;
            break;
        }
        policy_->onEvict(v);
        if (slots_[v].state == CacheSlot::State::Stable)
            skipped.push_back(v);
    }
    for (std::uint32_t s : skipped)
        policy_->onInstall(s);
    return chosen;
}

void
DramCache::unpin(std::uint32_t slot)
{
    NVDC_ASSERT(pins_[slot] > 0, "unpin underflow");
    --pins_[slot];
}

CacheSlot
DramCache::beginEvict(std::uint32_t s)
{
    CacheSlot& slot = slots_[s];
    NVDC_ASSERT(slot.state == CacheSlot::State::Stable,
                "evicting a non-stable slot");
    CacheSlot prior = slot;
    if (slot.dirty)
        stats_.dirtyEvictions.inc();
    else
        stats_.cleanEvictions.inc();
    policy_->onEvict(s);
    NVDC_ASSERT(stableCount_ > 0, "stable count underflow");
    --stableCount_;
    pageToSlot_.erase(slot.devPage);
    slot.state = CacheSlot::State::Busy;
    return prior;
}

void
DramCache::finishEvict(std::uint32_t s)
{
    CacheSlot& slot = slots_[s];
    NVDC_ASSERT(slot.state == CacheSlot::State::Busy,
                "finishing eviction of a non-busy slot");
    slot.state = CacheSlot::State::Free;
    slot.dirty = false;
    slot.devPage = 0;
    freeList_.push_back(s);
}

void
DramCache::rebind(std::uint32_t s, std::uint64_t dev_page)
{
    CacheSlot& slot = slots_[s];
    NVDC_ASSERT(slot.state == CacheSlot::State::Busy,
                "rebinding a non-busy slot");
    slot.devPage = dev_page;
    slot.dirty = false;
    pageToSlot_.insert_or_assign(dev_page, s);
}

void
DramCache::finishFill(std::uint32_t s)
{
    CacheSlot& slot = slots_[s];
    NVDC_ASSERT(slot.state == CacheSlot::State::Busy,
                "finishing fill of a non-busy slot");
    slot.state = CacheSlot::State::Stable;
    ++stableCount_;
    stats_.installs.inc();
    policy_->onInstall(s);
}

void
DramCache::markDirty(std::uint32_t s)
{
    NVDC_ASSERT(slots_[s].state != CacheSlot::State::Free,
                "dirtying a free slot");
    slots_[s].dirty = true;
}

void
DramCache::markClean(std::uint32_t s)
{
    slots_[s].dirty = false;
}

void
DramCache::registerStats(StatRegistry& reg,
                         const std::string& prefix) const
{
    reg.addCounter(prefix + ".hits", stats_.hits);
    reg.addCounter(prefix + ".misses", stats_.misses);
    reg.addCounter(prefix + ".installs", stats_.installs);
    reg.addCounter(prefix + ".clean_evictions",
                   stats_.cleanEvictions);
    reg.addCounter(prefix + ".dirty_evictions",
                   stats_.dirtyEvictions);
    reg.add(prefix + ".hit_rate",
            [this] { return stats_.hitRate(); });
    reg.add(prefix + ".used_slots",
            [this] { return static_cast<double>(usedSlots()); });
}

} // namespace nvdimmc::driver
