#include "imc/host_port.hh"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.hh"
#include "common/shard.hh"

namespace nvdimmc::imc
{

HostPort::HostPort(std::vector<Imc*> imcs,
                   const dram::ChannelInterleave& interleave)
    : imcs_(std::move(imcs)), interleave_(interleave)
{
    NVDC_ASSERT(!imcs_.empty(), "host port needs at least one iMC");
    NVDC_ASSERT(imcs_.size() == interleave_.channels(),
                "iMC count does not match the interleave map");
}

HostPort::HostPort(Imc& imc)
    : imcs_{&imc}, interleave_(1, dram::ChannelInterleave::kPageGranule)
{
}

void
HostPort::enableSharding(ShardCoordinator& coord, EventQueue& host_eq,
                         std::vector<EventQueue*> shard_eqs,
                         Tick link_latency, std::uint32_t link_depth)
{
    NVDC_ASSERT(shard_eqs.size() == imcs_.size(),
                "sharded port needs one event queue per channel");
    NVDC_ASSERT(link_latency > 0,
                "host link latency must be positive (it is the "
                "cross-shard lookahead)");
    NVDC_ASSERT(link_depth > 0,
                "host link depth must be positive or no line op could "
                "ever issue");
    coord_ = &coord;
    hostEq_ = &host_eq;
    linkLatency_ = link_latency;
    linkDepth_ = link_depth;
    shardStates_.resize(imcs_.size());
    for (std::size_t ch = 0; ch < shard_eqs.size(); ++ch) {
        shardStates_[ch].eq = shard_eqs[ch];
        shardStates_[ch].credits = link_depth;
    }
}

ShardCoordinator::Promise
HostPort::lookaheadFn(std::uint32_t ch)
{
    // postedMsgs is written on the host shard at op-post time,
    // completedMsgs on the channel shard at message-post time; the
    // coordinator reads both between rounds, after the barrier that
    // ordered the writes. Equal counts mean every owed credit and
    // completion is already in the mailbox, and the channel never
    // emits host-bound messages spontaneously.
    return [this, ch]() -> Tick {
        const auto& st = shardStates_[ch];
        return st.postedMsgs == st.completedMsgs ? kTickNever : 0;
    };
}

void
HostPort::postDevice(std::uint32_t ch, Tick delay, Callback fn)
{
    NVDC_ASSERT(coord_ != nullptr,
                "postDevice is the sharded seam; schedule directly on "
                "the shared queue in serial mode");
    NVDC_ASSERT(delay >= coord_->quantum(),
                "device message lead must cover the sync quantum");
    ++shardStates_[ch].postedMsgs;
    coord_->postToShard(ch, hostEq_->now() + delay, std::move(fn));
}

void
HostPort::completeDevice(std::uint32_t ch, Tick delay, Callback done)
{
    NVDC_ASSERT(coord_ != nullptr,
                "completeDevice is the sharded seam");
    auto& st = shardStates_[ch];
    ++st.completedMsgs;
    coord_->postToHost(ch, st.eq->now() + delay, std::move(done));
}

imc::Callback
HostPort::wrapDone(std::uint32_t ch, Callback done)
{
    if (!done)
        return {};
    // Runs on the channel shard when the iMC completes; the payload
    // crosses the link back and fires on the host shard after the
    // deterministic mailbox merge.
    EventQueue* ceq = shardStates_[ch].eq;
    return [this, ch, ceq, done = std::move(done)] {
        auto& st = shardStates_[ch];
        ++st.completedMsgs;
        coord_->postToHost(ch, ceq->now() + linkLatency_, done);
    };
}

void
HostPort::postOp(std::uint32_t ch, PendingOp op)
{
    coord_->postToShard(ch, hostEq_->now() + linkLatency_,
                        [this, ch, op = std::move(op)]() mutable {
                            execLine(ch, std::move(op));
                        });
}

void
HostPort::execLine(std::uint32_t ch, PendingOp op)
{
    auto& st = shardStates_[ch];
    st.fifo.push_back(std::move(op));
    if (!st.waiting)
        pump(ch);
}

void
HostPort::pump(std::uint32_t ch)
{
    auto& st = shardStates_[ch];
    while (!st.fifo.empty()) {
        PendingOp& op = st.fifo.front();
        // Pass the completion a *copy* so a rejected attempt leaves
        // the op intact for the whenSpace() retry.
        bool accepted =
            op.isWrite
                ? imcs_[ch]->writeLine(
                      op.local,
                      op.hasData ? op.data.data() : nullptr,
                      wrapDone(ch, op.done))
                : imcs_[ch]->readLine(op.local, op.buf,
                                      wrapDone(ch, op.done));
        if (!accepted) {
            st.waiting = true;
            imcs_[ch]->whenSpace([this, ch] {
                shardStates_[ch].waiting = false;
                pump(ch);
            });
            return;
        }
        st.fifo.pop_front();
        // The iMC took the op: its link credit travels back to the
        // host, which may wake a parked whenSpace() waiter.
        ++st.completedMsgs;
        coord_->postToHost(ch, st.eq->now() + linkLatency_,
                           [this, ch] { returnCredit(ch); });
    }
}

void
HostPort::returnCredit(std::uint32_t ch)
{
    auto& st = shardStates_[ch];
    ++st.credits;
    if (st.spaceWaiters.empty())
        return;
    // Swap-and-fire-all, mirroring Imc::notifySpace: a woken waiter
    // that loses the race for the credit re-parks itself.
    std::vector<Callback> waiters;
    waiters.swap(st.spaceWaiters);
    for (auto& w : waiters)
        w();
}

bool
HostPort::readLine(Addr flat, std::uint8_t* buf, Callback done)
{
    auto t = interleave_.route(flat);
    if (!coord_)
        return imcs_[t.channel]->readLine(t.local, buf,
                                          std::move(done));
    auto& st = shardStates_[t.channel];
    if (st.credits == 0)
        return false;
    --st.credits;
    // The op owes one credit back, plus a completion if asked for.
    st.postedMsgs += done ? 2 : 1;
    PendingOp op;
    op.isWrite = false;
    op.local = t.local;
    op.buf = buf;
    op.done = std::move(done);
    postOp(t.channel, std::move(op));
    return true;
}

bool
HostPort::writeLine(Addr flat, const std::uint8_t* data, Callback done)
{
    auto t = interleave_.route(flat);
    if (!coord_)
        return imcs_[t.channel]->writeLine(t.local, data,
                                           std::move(done));
    auto& st = shardStates_[t.channel];
    if (st.credits == 0)
        return false;
    --st.credits;
    st.postedMsgs += done ? 2 : 1;
    PendingOp op;
    op.isWrite = true;
    op.local = t.local;
    // The iMC copies write data at accept; the sharded port must do
    // the same at post time because the caller's buffer only stays
    // valid for the duration of the (host-side) call. A null payload
    // (storeData off) stays null.
    if (data != nullptr) {
        op.hasData = true;
        std::memcpy(op.data.data(), data, op.data.size());
    }
    op.done = std::move(done);
    postOp(t.channel, std::move(op));
    return true;
}

void
HostPort::whenSpace(Addr flat, Callback cb)
{
    if (coord_) {
        // Park host-side; a returning link credit wakes the waiters.
        shardStates_[channelOf(flat)].spaceWaiters.push_back(
            std::move(cb));
        return;
    }
    imcs_[channelOf(flat)]->whenSpace(std::move(cb));
}

void
HostPort::bulkTransfer(Addr flat, std::uint32_t bytes, bool is_write,
                       Callback done)
{
    if (!coord_ && imcs_.size() == 1) {
        imcs_[0]->bulkTransfer(bytes, is_write, std::move(done));
        return;
    }

    // Split the byte count per owning channel at granule boundaries.
    std::vector<std::uint32_t> per_channel(imcs_.size(), 0);
    const std::uint32_t granule = interleave_.granule();
    Addr cur = flat;
    std::uint32_t left = bytes;
    while (left > 0) {
        Addr in_granule = cur % granule;
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, granule - in_granule));
        per_channel[channelOf(cur)] += chunk;
        cur += chunk;
        left -= chunk;
    }

    // Fan out; the shared countdown fires `done` after the last slice.
    auto remaining = std::make_shared<std::uint32_t>(0);
    for (std::uint32_t b : per_channel)
        if (b > 0)
            ++*remaining;
    if (*remaining == 0) {
        if (done)
            done();
        return;
    }
    auto shared_done = std::make_shared<Callback>(std::move(done));
    Callback slice_done = [remaining, shared_done] {
        if (--*remaining == 0 && *shared_done)
            (*shared_done)();
    };
    for (std::uint32_t ch = 0; ch < per_channel.size(); ++ch) {
        if (per_channel[ch] == 0)
            continue;
        if (!coord_) {
            imcs_[ch]->bulkTransfer(per_channel[ch], is_write,
                                    slice_done);
            continue;
        }
        // Sharded: the slice request crosses the link to its channel;
        // each completion crosses back via wrapDone, so the countdown
        // (and `done`) only ever run on the host shard.
        ++shardStates_[ch].postedMsgs;
        coord_->postToShard(
            ch, hostEq_->now() + linkLatency_,
            [this, ch, b = per_channel[ch], is_write, slice_done] {
                imcs_[ch]->bulkTransfer(b, is_write,
                                        wrapDone(ch, slice_done));
            });
    }
}

} // namespace nvdimmc::imc
