#include "imc/host_port.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace nvdimmc::imc
{

HostPort::HostPort(std::vector<Imc*> imcs,
                   const dram::ChannelInterleave& interleave)
    : imcs_(std::move(imcs)), interleave_(interleave)
{
    NVDC_ASSERT(!imcs_.empty(), "host port needs at least one iMC");
    NVDC_ASSERT(imcs_.size() == interleave_.channels(),
                "iMC count does not match the interleave map");
}

HostPort::HostPort(Imc& imc)
    : imcs_{&imc}, interleave_(1, dram::ChannelInterleave::kPageGranule)
{
}

bool
HostPort::readLine(Addr flat, std::uint8_t* buf, Callback done)
{
    auto t = interleave_.route(flat);
    return imcs_[t.channel]->readLine(t.local, buf, std::move(done));
}

bool
HostPort::writeLine(Addr flat, const std::uint8_t* data, Callback done)
{
    auto t = interleave_.route(flat);
    return imcs_[t.channel]->writeLine(t.local, data, std::move(done));
}

void
HostPort::whenSpace(Addr flat, Callback cb)
{
    imcs_[channelOf(flat)]->whenSpace(std::move(cb));
}

void
HostPort::bulkTransfer(Addr flat, std::uint32_t bytes, bool is_write,
                       Callback done)
{
    if (imcs_.size() == 1) {
        imcs_[0]->bulkTransfer(bytes, is_write, std::move(done));
        return;
    }

    // Split the byte count per owning channel at granule boundaries.
    std::vector<std::uint32_t> per_channel(imcs_.size(), 0);
    const std::uint32_t granule = interleave_.granule();
    Addr cur = flat;
    std::uint32_t left = bytes;
    while (left > 0) {
        Addr in_granule = cur % granule;
        std::uint32_t chunk = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(left, granule - in_granule));
        per_channel[channelOf(cur)] += chunk;
        cur += chunk;
        left -= chunk;
    }

    // Fan out; the shared countdown fires `done` after the last slice.
    auto remaining = std::make_shared<std::uint32_t>(0);
    for (std::uint32_t b : per_channel)
        if (b > 0)
            ++*remaining;
    if (*remaining == 0) {
        if (done)
            done();
        return;
    }
    auto shared_done = std::make_shared<Callback>(std::move(done));
    for (std::uint32_t ch = 0; ch < per_channel.size(); ++ch) {
        if (per_channel[ch] == 0)
            continue;
        imcs_[ch]->bulkTransfer(per_channel[ch], is_write,
                                [remaining, shared_done] {
                                    if (--*remaining == 0 &&
                                        *shared_done)
                                        (*shared_done)();
                                });
    }
}

} // namespace nvdimmc::imc
