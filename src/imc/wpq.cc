// WritePendingQueue is header-only; this translation unit exists so the
// build keeps one object file per module component.
#include "imc/wpq.hh"
