/**
 * @file
 * Write pending queue (WPQ).
 *
 * Stores from the CPU are posted: they complete (from the core's point
 * of view) as soon as they enter the WPQ, and drain to the DRAM in the
 * background. On Intel platforms the WPQ is inside the ADR persistence
 * domain for real NVDIMMs; the paper (§V-C) points out that with
 * NVDIMM-C the WPQ is only a *weak* persistence domain because the
 * FPGA's power-fail dump may read a page before the WPQ drained into
 * it. The power-failure model in core/power.cc exercises exactly that.
 */

#ifndef NVDIMMC_IMC_WPQ_HH
#define NVDIMMC_IMC_WPQ_HH

#include <cstddef>
#include <deque>

#include "common/stats.hh"
#include "imc/request.hh"

namespace nvdimmc::imc
{

/** Bounded posted-write queue with a drain watermark. */
class WritePendingQueue
{
  public:
    explicit WritePendingQueue(std::size_t capacity,
                               std::size_t drain_watermark)
        : capacity_(capacity), watermark_(drain_watermark)
    {
    }

    bool full() const { return queue_.size() >= capacity_; }
    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** True when the scheduler should prefer draining writes. */
    bool aboveWatermark() const { return queue_.size() >= watermark_; }

    void push(MemRequest req) { queue_.push_back(std::move(req)); }

    MemRequest& front() { return queue_.front(); }
    const MemRequest& front() const { return queue_.front(); }
    MemRequest& at(std::size_t i) { return queue_[i]; }
    const MemRequest& at(std::size_t i) const { return queue_[i]; }

    MemRequest pop()
    {
        MemRequest r = std::move(queue_.front());
        queue_.pop_front();
        return r;
    }

    MemRequest popAt(std::size_t i)
    {
        MemRequest r = std::move(queue_[i]);
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(i));
        return r;
    }

    /**
     * Drop every entry (simulated power failure *without* ADR flush):
     * the stores are lost. @return how many were lost.
     */
    std::size_t dropAll()
    {
        std::size_t n = queue_.size();
        queue_.clear();
        return n;
    }

    const std::deque<MemRequest>& entries() const { return queue_; }

  private:
    std::size_t capacity_;
    std::size_t watermark_;
    std::deque<MemRequest> queue_;
};

} // namespace nvdimmc::imc

#endif // NVDIMMC_IMC_WPQ_HH
