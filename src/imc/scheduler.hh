/**
 * @file
 * FR-FCFS command scheduling for the host iMC.
 *
 * TimingShadow mirrors the DRAM timing state the controller must
 * respect (a real controller never asks the DRAM whether a command is
 * legal; it tracks the constraints itself). FrFcfs picks the next
 * request: row hits first (reads preferred), then oldest-first, with
 * write draining controlled by the WPQ watermark.
 */

#ifndef NVDIMMC_IMC_SCHEDULER_HH
#define NVDIMMC_IMC_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/timing.hh"
#include "imc/request.hh"

namespace nvdimmc::imc
{

/** Controller-side mirror of all DDR4 timing obligations. */
class TimingShadow
{
  public:
    TimingShadow(const dram::AddressMap& map, const dram::Ddr4Timing& t);

    /** @name Earliest legal issue tick for each command. */
    /** @{ */
    Tick earliestActivate(std::uint32_t flat_bank,
                          std::uint8_t bg) const;
    Tick earliestRead(std::uint32_t flat_bank, std::uint8_t bg) const;
    Tick earliestWrite(std::uint32_t flat_bank, std::uint8_t bg) const;
    Tick earliestPrecharge(std::uint32_t flat_bank) const;
    /** Earliest tick a PREA is legal (max over open banks). */
    Tick earliestPrechargeAll() const;
    /** Earliest tick REF is legal after banks are closed. */
    Tick earliestRefresh() const;
    /** @} */

    /** @name State updates after issuing a command at @p now. */
    /** @{ */
    void onActivate(std::uint32_t flat_bank, std::uint8_t bg,
                    std::uint32_t row, Tick now);
    void onRead(std::uint32_t flat_bank, std::uint8_t bg, Tick now);
    void onWrite(std::uint32_t flat_bank, std::uint8_t bg, Tick now);
    void onPrecharge(std::uint32_t flat_bank, Tick now);
    void onPrechargeAll(Tick now);
    void onRefresh(Tick now);
    /** @} */

    bool bankOpen(std::uint32_t flat_bank) const
    {
        return banks_[flat_bank].open;
    }
    std::uint32_t openRow(std::uint32_t flat_bank) const
    {
        return banks_[flat_bank].row;
    }
    bool anyBankOpen() const;

    /** End of the last data burst on the DQ bus. */
    Tick dqBusyUntil() const { return dqBusyUntil_; }

  private:
    struct BankShadow
    {
        bool open = false;
        std::uint32_t row = 0;
        Tick actTick = 0;
        Tick preTick = 0;
        Tick lastReadCmd = 0;
        Tick writeDataEnd = 0;
        bool everAct = false;
        bool everPre = false;
    };

    const dram::Ddr4Timing& t_;
    std::vector<BankShadow> banks_;

    Tick lastActTick_ = kTickNever;
    std::uint8_t lastActBg_ = 0;
    Tick lastCasTick_ = kTickNever;
    std::uint8_t lastCasBg_ = 0;
    bool lastCasWasWrite_ = false;
    Tick globalWriteDataEnd_ = 0;
    Tick dqBusyUntil_ = 0;
    Tick refreshDoneAt_ = 0;
    std::deque<Tick> actWindow_;
};

/** The next scheduling decision. */
struct SchedDecision
{
    enum class Action : std::uint8_t
    {
        None,       ///< Nothing to do.
        Activate,
        Read,
        Write,
        Precharge,
    };

    Action action = Action::None;
    bool fromWriteQueue = false;
    std::size_t queueIndex = 0;   ///< Index of the chosen request.
    Tick earliest = 0;            ///< Earliest legal issue tick.
};

/**
 * Pick the next command under FR-FCFS. Scans at most @p window
 * requests per queue (real schedulers have a bounded associative
 * search).
 */
SchedDecision pickNext(const std::deque<MemRequest>& read_q,
                       const std::deque<MemRequest>& write_q,
                       bool drain_writes,
                       const TimingShadow& shadow,
                       const dram::AddressMap& map,
                       std::size_t window = 16);

} // namespace nvdimmc::imc

#endif // NVDIMMC_IMC_SCHEDULER_HH
