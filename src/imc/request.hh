/**
 * @file
 * Host memory request types handled by the integrated memory
 * controller. Requests are 64 B cache-line transfers; bulk movement is
 * built on top by cpu/memcpy_engine.
 */

#ifndef NVDIMMC_IMC_REQUEST_HH
#define NVDIMMC_IMC_REQUEST_HH

#include <array>
#include <cstdint>
#include <functional>

#include "common/types.hh"
#include "dram/address_map.hh"

namespace nvdimmc::imc
{

/** Completion callback; fired when data is delivered / posted. */
using Callback = std::function<void()>;

/** One pending line transfer inside the controller. */
struct MemRequest
{
    enum class Kind : std::uint8_t { Read, Write };

    Kind kind = Kind::Read;
    Addr addr = 0;                ///< 64 B aligned.
    dram::DramCoord coord;        ///< Pre-decomposed target.
    Tick enqueued = 0;

    /** For reads: destination buffer (may be null = timing only). */
    std::uint8_t* readBuf = nullptr;
    /** For writes: data image captured at enqueue (all-zero if timing
     *  only). */
    std::array<std::uint8_t, dram::AddressMap::kBurstBytes> writeData{};
    bool hasWriteData = false;

    Callback onComplete;
};

} // namespace nvdimmc::imc

#endif // NVDIMMC_IMC_REQUEST_HH
