#include "imc/scheduler.hh"

#include <algorithm>

namespace nvdimmc::imc
{

TimingShadow::TimingShadow(const dram::AddressMap& map,
                           const dram::Ddr4Timing& t)
    : t_(t), banks_(map.totalBanks())
{
}

bool
TimingShadow::anyBankOpen() const
{
    return std::any_of(banks_.begin(), banks_.end(),
                       [](const BankShadow& b) { return b.open; });
}

Tick
TimingShadow::earliestActivate(std::uint32_t fb, std::uint8_t bg) const
{
    const BankShadow& b = banks_[fb];
    Tick ready = refreshDoneAt_;
    if (b.everPre)
        ready = std::max(ready, b.preTick + t_.tRP);
    if (b.everAct)
        ready = std::max(ready, b.actTick + t_.tRC);
    if (lastActTick_ != kTickNever) {
        Tick rrd = (bg == lastActBg_) ? t_.tRRD_L : t_.tRRD_S;
        ready = std::max(ready, lastActTick_ + rrd);
    }
    if (actWindow_.size() >= 4)
        ready = std::max(ready, actWindow_.front() + t_.tFAW);
    return ready;
}

Tick
TimingShadow::earliestRead(std::uint32_t fb, std::uint8_t bg) const
{
    const BankShadow& b = banks_[fb];
    Tick ready = std::max(refreshDoneAt_, b.actTick + t_.tRCD);
    if (lastCasTick_ != kTickNever) {
        Tick ccd = (bg == lastCasBg_) ? t_.tCCD_L : t_.tCCD_S;
        ready = std::max(ready, lastCasTick_ + ccd);
    }
    // Write-to-read turnaround.
    if (globalWriteDataEnd_ != 0)
        ready = std::max(ready, globalWriteDataEnd_ + t_.tWTR);
    // Keep the DQ bus collision-free: data starts at issue + tCL.
    if (dqBusyUntil_ > 0 && dqBusyUntil_ > t_.tCL)
        ready = std::max(ready, dqBusyUntil_ - t_.tCL);
    return ready;
}

Tick
TimingShadow::earliestWrite(std::uint32_t fb, std::uint8_t bg) const
{
    const BankShadow& b = banks_[fb];
    Tick ready = std::max(refreshDoneAt_, b.actTick + t_.tRCD);
    if (lastCasTick_ != kTickNever) {
        Tick ccd = (bg == lastCasBg_) ? t_.tCCD_L : t_.tCCD_S;
        ready = std::max(ready, lastCasTick_ + ccd);
        // Read-to-write turnaround: leave two command slots between the
        // read burst ending and the write burst starting.
        if (!lastCasWasWrite_) {
            Tick read_data_end =
                lastCasTick_ + t_.tCL + t_.burstTime();
            Tick earliest_data = read_data_end + 2 * t_.tCK;
            if (earliest_data > t_.tCWL)
                ready = std::max(ready, earliest_data - t_.tCWL);
        }
    }
    if (dqBusyUntil_ > 0 && dqBusyUntil_ > t_.tCWL)
        ready = std::max(ready, dqBusyUntil_ - t_.tCWL);
    return ready;
}

Tick
TimingShadow::earliestPrecharge(std::uint32_t fb) const
{
    const BankShadow& b = banks_[fb];
    if (!b.open)
        return refreshDoneAt_;
    Tick ready = std::max(refreshDoneAt_, b.actTick + t_.tRAS);
    if (b.lastReadCmd != 0)
        ready = std::max(ready, b.lastReadCmd + t_.tRTP);
    if (b.writeDataEnd != 0)
        ready = std::max(ready, b.writeDataEnd + t_.tWR);
    return ready;
}

Tick
TimingShadow::earliestPrechargeAll() const
{
    Tick ready = refreshDoneAt_;
    for (std::uint32_t fb = 0; fb < banks_.size(); ++fb)
        ready = std::max(ready, earliestPrecharge(fb));
    return ready;
}

Tick
TimingShadow::earliestRefresh() const
{
    // All banks must be precharged for tRP before REF.
    Tick ready = refreshDoneAt_;
    for (const auto& b : banks_) {
        if (b.everPre)
            ready = std::max(ready, b.preTick + t_.tRP);
    }
    return ready;
}

void
TimingShadow::onActivate(std::uint32_t fb, std::uint8_t bg,
                         std::uint32_t row, Tick now)
{
    BankShadow& b = banks_[fb];
    b.open = true;
    b.row = row;
    b.actTick = now;
    b.everAct = true;
    b.lastReadCmd = 0;
    b.writeDataEnd = 0;
    lastActTick_ = now;
    lastActBg_ = bg;
    actWindow_.push_back(now);
    while (!actWindow_.empty() && actWindow_.front() + t_.tFAW <= now)
        actWindow_.pop_front();
    if (actWindow_.size() > 4)
        actWindow_.pop_front();
}

void
TimingShadow::onRead(std::uint32_t fb, std::uint8_t bg, Tick now)
{
    banks_[fb].lastReadCmd = now;
    lastCasTick_ = now;
    lastCasBg_ = bg;
    lastCasWasWrite_ = false;
    dqBusyUntil_ = now + t_.tCL + t_.burstTime();
}

void
TimingShadow::onWrite(std::uint32_t fb, std::uint8_t bg, Tick now)
{
    Tick data_end = now + t_.tCWL + t_.burstTime();
    banks_[fb].writeDataEnd = data_end;
    globalWriteDataEnd_ = data_end;
    lastCasTick_ = now;
    lastCasBg_ = bg;
    lastCasWasWrite_ = true;
    dqBusyUntil_ = data_end;
}

void
TimingShadow::onPrecharge(std::uint32_t fb, Tick now)
{
    BankShadow& b = banks_[fb];
    b.open = false;
    b.preTick = now;
    b.everPre = true;
}

void
TimingShadow::onPrechargeAll(Tick now)
{
    for (auto& b : banks_) {
        b.open = false;
        b.preTick = now;
        b.everPre = true;
    }
}

void
TimingShadow::onRefresh(Tick now)
{
    // The *programmed* tRFC blocking is enforced by the Imc itself;
    // here we only remember the device-mandated minimum.
    refreshDoneAt_ = now + t_.tRFC;
}

namespace
{

/** Earliest tick to fully serve @p req (possibly via PRE/ACT first). */
SchedDecision
decisionFor(const MemRequest& req, bool from_write_q, std::size_t index,
            const TimingShadow& shadow, const dram::AddressMap& map)
{
    SchedDecision d;
    d.fromWriteQueue = from_write_q;
    d.queueIndex = index;

    const auto& c = req.coord;
    std::uint32_t fb = map.flatBank(c);

    if (shadow.bankOpen(fb) && shadow.openRow(fb) == c.row) {
        d.action = req.kind == MemRequest::Kind::Read
                       ? SchedDecision::Action::Read
                       : SchedDecision::Action::Write;
        d.earliest = req.kind == MemRequest::Kind::Read
                         ? shadow.earliestRead(fb, c.bankGroup)
                         : shadow.earliestWrite(fb, c.bankGroup);
    } else if (shadow.bankOpen(fb)) {
        d.action = SchedDecision::Action::Precharge;
        d.earliest = shadow.earliestPrecharge(fb);
    } else {
        d.action = SchedDecision::Action::Activate;
        d.earliest = shadow.earliestActivate(fb, c.bankGroup);
    }
    return d;
}

bool
isRowHit(const MemRequest& req, const TimingShadow& shadow,
         const dram::AddressMap& map)
{
    std::uint32_t fb = map.flatBank(req.coord);
    return shadow.bankOpen(fb) && shadow.openRow(fb) == req.coord.row;
}

} // namespace

SchedDecision
pickNext(const std::deque<MemRequest>& read_q,
         const std::deque<MemRequest>& write_q,
         bool drain_writes,
         const TimingShadow& shadow,
         const dram::AddressMap& map,
         std::size_t window)
{
    // 1. Row-hit read within the search window.
    std::size_t read_scan = std::min(window, read_q.size());
    for (std::size_t i = 0; i < read_scan; ++i) {
        if (isRowHit(read_q[i], shadow, map))
            return decisionFor(read_q[i], false, i, shadow, map);
    }
    // 2. Row-hit write when draining (or no reads at all).
    bool writes_eligible = drain_writes || read_q.empty();
    if (writes_eligible) {
        std::size_t write_scan = std::min(window, write_q.size());
        for (std::size_t i = 0; i < write_scan; ++i) {
            if (isRowHit(write_q[i], shadow, map))
                return decisionFor(write_q[i], true, i, shadow, map);
        }
    }
    // 3. Oldest read, else oldest write.
    if (!read_q.empty())
        return decisionFor(read_q.front(), false, 0, shadow, map);
    if (writes_eligible && !write_q.empty())
        return decisionFor(write_q.front(), true, 0, shadow, map);
    return {};
}

} // namespace nvdimmc::imc
