/**
 * @file
 * Host memory port: routes CPU line/bulk traffic across the channel
 * topology.
 *
 * The CPU-side components (cache model, memcpy engine) address one
 * flat interleaved physical space; the port translates each 64 B line
 * to its owning channel's iMC via the ChannelInterleave map and splits
 * bulk transfers into per-channel pieces. With one channel every call
 * forwards straight to the single iMC — same call sequence, same
 * ticks — which keeps channels=1 byte-identical to the pre-topology
 * simulator.
 *
 * In sharded (parallel-in-time) mode the port is *the* host/channel
 * seam: every CPU-side call becomes a mailbox message to the owning
 * channel's shard, stamped one host-link latency ahead, and every
 * completion posts back the same way. Host-side calls never touch
 * channel state directly; iMC back-pressure still reaches the host
 * through per-channel link credits. Each accepted line op consumes a
 * credit; the credit returns (one link latency back) once the
 * channel-side iMC accepts the op out of the port's FIFO, so a full
 * RPQ/WPQ eventually rejects host calls just like the classic path —
 * delayed by one round trip, which is exactly what a real posted
 * buffer of linkDepth entries would do. whenSpace() then parks the
 * waiter host-side and fires it when a credit comes back.
 */

#ifndef NVDIMMC_IMC_HOST_PORT_HH
#define NVDIMMC_IMC_HOST_PORT_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/shard.hh"
#include "dram/channel_interleave.hh"
#include "imc/imc.hh"

namespace nvdimmc::imc
{

/** Interleave-aware front-end over the per-channel iMCs. */
class HostPort
{
  public:
    /** Multi-channel port over @p imcs (one per channel, in channel
     *  order), routed by @p interleave. */
    HostPort(std::vector<Imc*> imcs,
             const dram::ChannelInterleave& interleave);

    /** Single-channel convenience: identity routing to @p imc. */
    explicit HostPort(Imc& imc);

    std::uint32_t channels() const
    {
        return static_cast<std::uint32_t>(imcs_.size());
    }
    const dram::ChannelInterleave& interleave() const
    {
        return interleave_;
    }
    Imc& imc(std::uint32_t channel) { return *imcs_[channel]; }
    const Imc& imc(std::uint32_t channel) const
    {
        return *imcs_[channel];
    }

    /** Owning channel of a flat line address. */
    std::uint32_t channelOf(Addr flat) const
    {
        return interleave_.route(flat).channel;
    }

    /** Enqueue a 64 B line read on the owning channel.
     *  @return false if that channel's read queue is full. */
    bool readLine(Addr flat, std::uint8_t* buf, Callback done);

    /** Post a 64 B line write on the owning channel.
     *  @return false if that channel's WPQ is full. */
    bool writeLine(Addr flat, const std::uint8_t* data, Callback done);

    /** One-shot "space freed" callback on the channel owning @p flat
     *  (the channel that just rejected the caller's line). */
    void whenSpace(Addr flat, Callback cb);

    /**
     * Analytic bulk transfer of [flat, flat+bytes): byte counts are
     * split per owning channel at interleave granules and each slice
     * runs on its channel's iMC concurrently; @p done fires when the
     * slowest slice completes. One channel == one iMC call.
     */
    void bulkTransfer(Addr flat, std::uint32_t bytes, bool is_write,
                      Callback done);

    /**
     * Switch the port to sharded routing: host-side calls post
     * mailbox messages through @p coord to the owning channel's
     * shard, stamped @p link_latency past the host clock (completions
     * cross back the same way). @p shard_eqs holds one queue per
     * channel, channel order; @p link_depth is the per-channel credit
     * pool (posted ops not yet accepted by the channel's iMC). Must
     * be called before any traffic.
     */
    void enableSharding(ShardCoordinator& coord, EventQueue& host_eq,
                        std::vector<EventQueue*> shard_eqs,
                        Tick link_latency, std::uint32_t link_depth);

    /** Is sharded routing enabled? */
    bool sharded() const { return coord_ != nullptr; }

    /** Host-link credits consumed (line ops posted to channel
     *  @p ch but not yet accepted by its iMC), summed over all
     *  channels when @p ch is ~0u. 0 in classic (non-sharded) mode,
     *  where there is no posted link buffer. A telemetry gauge; read
     *  from the host shard only. */
    std::uint32_t linkCreditsInUse(std::uint32_t ch = ~0u) const
    {
        if (!coord_)
            return 0;
        std::uint32_t used = 0;
        for (std::uint32_t i = 0; i < shardStates_.size(); ++i)
            if (ch == ~0u || ch == i)
                used += linkDepth_ - shardStates_[i].credits;
        return used;
    }

    /**
     * @name Device-message seam (sharded mode only).
     *
     * A transport backend (e.g. the CXL link model) sends its own
     * host<->device messages outside the line/bulk path. They must
     * ride the same promise accounting as line ops, or the
     * coordinator could advance the host past a response's arrival:
     * postDevice() counts one owed host-bound message at post time,
     * completeDevice() delivers it. Every postDevice() must be
     * balanced by exactly one completeDevice() on the same channel.
     */
    /** @{ */
    /** Host-side: run @p fn on channel @p ch's shard @p delay past
     *  the host clock (@p delay >= the link latency / quantum). */
    void postDevice(std::uint32_t ch, Tick delay, Callback fn);
    /** Channel-side: run @p done on the host shard @p delay past the
     *  channel clock, balancing one postDevice(). */
    void completeDevice(std::uint32_t ch, Tick delay, Callback done);
    /** @} */

    /**
     * The channel->host link's adaptive-lookahead promise: kTickNever
     * while channel @p ch provably has nothing host-bound in flight —
     * every posted line op and bulk slice has already pushed its
     * credit and completion into the mailbox, and the channel never
     * emits to the host spontaneously (CP acks are read by host
     * polling). Queried between rounds on the coordinating thread.
     */
    ShardCoordinator::Promise lookaheadFn(std::uint32_t ch);

  private:
    /** One deferred line op queued channel-side in sharded mode. */
    struct PendingOp
    {
        bool isWrite = false;
        bool hasData = false; ///< Caller supplied a write payload.
        Addr local = 0;
        std::uint8_t* buf = nullptr;       ///< Read destination.
        std::array<std::uint8_t, 64> data; ///< Write payload copy.
        Callback done;
    };

    /**
     * Per-channel sharded-mode state. The host fields are only
     * touched on the coordinating thread during host windows; the
     * channel fields only by whichever worker runs the shard's
     * window. The barrier between phases is all the synchronization
     * the split needs.
     */
    struct ShardState
    {
        /** @name Host-side. */
        /** @{ */
        std::uint32_t credits = 0;
        std::vector<Callback> spaceWaiters;
        /** Host-bound messages this channel owes (credits +
         *  completions), counted when their trigger op posts; promise
         *  input. */
        std::uint64_t postedMsgs = 0;
        /** @} */

        /** @name Channel-side. */
        /** @{ */
        EventQueue* eq = nullptr;
        std::deque<PendingOp> fifo;
        bool waiting = false; ///< A whenSpace() retry is pending.
        /** Host-bound messages actually pushed into the mailbox;
         *  equal to postedMsgs exactly when the link is provably
         *  quiet. */
        std::uint64_t completedMsgs = 0;
        /** @} */
    };

    void postOp(std::uint32_t ch, PendingOp op);
    void execLine(std::uint32_t ch, PendingOp op);
    void pump(std::uint32_t ch);
    void returnCredit(std::uint32_t ch);
    /** Redirect an iMC completion back to the host shard. */
    Callback wrapDone(std::uint32_t ch, Callback done);

    std::vector<Imc*> imcs_;
    dram::ChannelInterleave interleave_;

    ShardCoordinator* coord_ = nullptr;
    EventQueue* hostEq_ = nullptr;
    Tick linkLatency_ = 0;
    std::uint32_t linkDepth_ = 0;
    std::vector<ShardState> shardStates_;
};

} // namespace nvdimmc::imc

#endif // NVDIMMC_IMC_HOST_PORT_HH
