/**
 * @file
 * Host memory port: routes CPU line/bulk traffic across the channel
 * topology.
 *
 * The CPU-side components (cache model, memcpy engine) address one
 * flat interleaved physical space; the port translates each 64 B line
 * to its owning channel's iMC via the ChannelInterleave map and splits
 * bulk transfers into per-channel pieces. With one channel every call
 * forwards straight to the single iMC — same call sequence, same
 * ticks — which keeps channels=1 byte-identical to the pre-topology
 * simulator.
 */

#ifndef NVDIMMC_IMC_HOST_PORT_HH
#define NVDIMMC_IMC_HOST_PORT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "dram/channel_interleave.hh"
#include "imc/imc.hh"

namespace nvdimmc::imc
{

/** Interleave-aware front-end over the per-channel iMCs. */
class HostPort
{
  public:
    /** Multi-channel port over @p imcs (one per channel, in channel
     *  order), routed by @p interleave. */
    HostPort(std::vector<Imc*> imcs,
             const dram::ChannelInterleave& interleave);

    /** Single-channel convenience: identity routing to @p imc. */
    explicit HostPort(Imc& imc);

    std::uint32_t channels() const
    {
        return static_cast<std::uint32_t>(imcs_.size());
    }
    const dram::ChannelInterleave& interleave() const
    {
        return interleave_;
    }
    Imc& imc(std::uint32_t channel) { return *imcs_[channel]; }
    const Imc& imc(std::uint32_t channel) const
    {
        return *imcs_[channel];
    }

    /** Owning channel of a flat line address. */
    std::uint32_t channelOf(Addr flat) const
    {
        return interleave_.route(flat).channel;
    }

    /** Enqueue a 64 B line read on the owning channel.
     *  @return false if that channel's read queue is full. */
    bool readLine(Addr flat, std::uint8_t* buf, Callback done);

    /** Post a 64 B line write on the owning channel.
     *  @return false if that channel's WPQ is full. */
    bool writeLine(Addr flat, const std::uint8_t* data, Callback done);

    /** One-shot "space freed" callback on the channel owning @p flat
     *  (the channel that just rejected the caller's line). */
    void whenSpace(Addr flat, Callback cb);

    /**
     * Analytic bulk transfer of [flat, flat+bytes): byte counts are
     * split per owning channel at interleave granules and each slice
     * runs on its channel's iMC concurrently; @p done fires when the
     * slowest slice completes. One channel == one iMC call.
     */
    void bulkTransfer(Addr flat, std::uint32_t bytes, bool is_write,
                      Callback done);

  private:
    std::vector<Imc*> imcs_;
    dram::ChannelInterleave interleave_;
};

} // namespace nvdimmc::imc

#endif // NVDIMMC_IMC_HOST_PORT_HH
