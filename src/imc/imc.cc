#include "imc/imc.hh"

#include <cstring>
#include <utility>

#include "common/logging.hh"
#include "common/trace.hh"

namespace nvdimmc::imc
{

Imc::Imc(EventQueue& eq, bus::MemoryBus& bus, const ImcConfig& cfg)
    : eq_(eq),
      bus_(bus),
      cfg_(cfg),
      masterId_(bus.registerMaster("host-imc")),
      shadow_(bus.dram().addressMap(), bus.dram().timing()),
      wpq_(cfg.wpqCap, cfg.wpqWatermark),
      nextRefreshDue_(cfg.refresh.tREFI + cfg.refreshPhase),
      baseRefresh_(cfg.refresh),
      wakeEvent_([this] { tick(); }, "imc-wake"),
      trackQueues_(cfg.name + ".queues"),
      trackRefresh_(cfg.name + ".refresh")
{
    NVDC_ASSERT(cfg.wpqWatermark <= cfg.wpqCap, "bad WPQ watermark");
    // Refresh must run even while the host is idle: the NVDIMM-C
    // design feeds on the cadence.
    if (cfg_.refreshEnabled)
        wake(nextRefreshDue_);
}

void
Imc::programRefresh(const dram::RefreshRegisters& regs)
{
    cfg_.refresh = regs;
    baseRefresh_ = regs;
    // Re-anchor the next due tick so a shorter tREFI takes effect
    // within one interval.
    Tick base = lastRefreshAt_ == kTickNever ? eq_.now() : lastRefreshAt_;
    nextRefreshDue_ = base + regs.tREFI;
    wake(eq_.now());
}

void
Imc::setTemperature(double celsius)
{
    temperatureC_ = celsius;
    dram::RefreshRegisters regs = baseRefresh_;
    if (celsius > 85.0)
        regs.tREFI = baseRefresh_.tREFI / 2;
    // programRefresh preserves baseRefresh_ via cfg_ only.
    cfg_.refresh = regs;
    Tick base = lastRefreshAt_ == kTickNever ? eq_.now()
                                             : lastRefreshAt_;
    nextRefreshDue_ = base + regs.tREFI;
    wake(eq_.now());
}

void
Imc::enableIdleSelfRefresh(Tick idle_time)
{
    srIdleThreshold_ = idle_time;
    lastActivityAt_ = eq_.now();
    if (idle_time > 0)
        wake(eq_.now() + idle_time);
}

void
Imc::wake(Tick at)
{
    if (at < eq_.now())
        at = eq_.now();
    if (wakeEvent_.scheduled() && wakeEvent_.when() <= at)
        return; // An earlier-or-equal wakeup is already scheduled.
    eq_.reschedule(wakeEvent_, at);
}

bool
Imc::readLine(Addr addr, std::uint8_t* buf, Callback done)
{
    NVDC_ASSERT(addr % dram::AddressMap::kBurstBytes == 0,
                "unaligned line read");
    // Store-to-load forwarding: the WPQ holds the newest data.
    for (auto it = wpq_.entries().rbegin(); it != wpq_.entries().rend();
         ++it) {
        if (it->addr == addr) {
            stats_.wpqForwards.inc();
            if (buf && it->hasWriteData) {
                std::memcpy(buf, it->writeData.data(),
                            dram::AddressMap::kBurstBytes);
            }
            Tick enq = eq_.now();
            eq_.scheduleAfter(cfg_.forwardLatency,
                              [this, enq, cb = std::move(done)] {
                                  stats_.readLatency.record(eq_.now() -
                                                            enq);
                                  if (cb)
                                      cb();
                              });
            stats_.readsAccepted.inc();
            return true;
        }
    }

    if (readQ_.size() >= cfg_.readQueueCap)
        return false;

    lastActivityAt_ = eq_.now();

    MemRequest req;
    req.kind = MemRequest::Kind::Read;
    req.addr = addr;
    req.coord = bus_.dram().addressMap().decompose(addr);
    req.enqueued = eq_.now();
    req.readBuf = buf;
    req.onComplete = std::move(done);
    readQ_.push_back(std::move(req));
    stats_.readsAccepted.inc();
    trace::counter(trackQueues_.c_str(), "rdq", eq_.now(),
                   static_cast<double>(readQ_.size()));
    wake(eq_.now());
    return true;
}

bool
Imc::writeLine(Addr addr, const std::uint8_t* data, Callback done)
{
    NVDC_ASSERT(addr % dram::AddressMap::kBurstBytes == 0,
                "unaligned line write");
    if (wpq_.full())
        return false;

    lastActivityAt_ = eq_.now();

    MemRequest req;
    req.kind = MemRequest::Kind::Write;
    req.addr = addr;
    req.coord = bus_.dram().addressMap().decompose(addr);
    req.enqueued = eq_.now();
    if (data) {
        std::memcpy(req.writeData.data(), data,
                    dram::AddressMap::kBurstBytes);
        req.hasWriteData = true;
    }
    wpq_.push(std::move(req));
    stats_.writesAccepted.inc();
    trace::counter(trackQueues_.c_str(), "wpq", eq_.now(),
                   static_cast<double>(wpq_.size()));
    wake(eq_.now());
    // Posted: complete as soon as the store is in the WPQ.
    if (done)
        done();
    return true;
}

void
Imc::notifySpace()
{
    if (spaceWaiters_.empty())
        return;
    std::vector<Callback> waiters;
    waiters.swap(spaceWaiters_);
    for (auto& cb : waiters)
        cb();
}

void
Imc::completeRead(MemRequest req, Tick data_end)
{
    // Capture the array contents at CAS time; deliver at burst end.
    // Between the two no other master may legally write (the NVMC only
    // writes inside refresh windows, and no CAS is in flight then).
    if (req.readBuf)
        bus_.dram().readBurst(req.coord, req.readBuf);
    Tick enq = req.enqueued;
    eq_.schedule(data_end + cfg_.frontendLatency,
                 [this, enq, cb = std::move(req.onComplete)] {
                     stats_.readLatency.record(eq_.now() - enq);
                     if (cb)
                         cb();
                     notifySpace();
                 });
}

void
Imc::commitWrite(MemRequest req, Tick data_end)
{
    // Park the request where a power-fail flush can still see it; the
    // burst-end event commits it to the array and retires it. If ADR
    // already flushed it post-mortem, the event finds nothing to do.
    std::uint64_t id = nextInflightWrite_++;
    inflightWrites_.emplace(id, std::move(req));
    eq_.schedule(data_end, [this, id] {
        auto it = inflightWrites_.find(id);
        if (it != inflightWrites_.end()) {
            if (it->second.hasWriteData)
                bus_.dram().writeBurst(it->second.coord,
                                       it->second.writeData.data());
            inflightWrites_.erase(it);
        }
        notifySpace();
    });
}

void
Imc::tick()
{
    const Tick now = eq_.now();
    const auto& t = bus_.dram().timing();
    const auto& map = bus_.dram().addressMap();

    // Our previous command still owns the CA slot (a request arriving
    // in the same tick re-enters tick() via wake()).
    if (now < nextCmdAt_) {
        wake(nextCmdAt_);
        return;
    }

    // --- Idle self-refresh management ---
    if (selfRefresh_) {
        bool work = !readQ_.empty() || !wpq_.empty();
        if (!work)
            return; // Stay asleep; requests will wake us.
        // Exit self-refresh; commands legal after tXS.
        bus_.issueCommand(masterId_,
                          {dram::Ddr4Op::SelfRefreshExit, 0, 0, 0, 0});
        nextCmdAt_ = now + t.tCK;
        selfRefresh_ = false;
        srExitReadyAt_ = now + t.tXS;
        nextRefreshDue_ = srExitReadyAt_ + cfg_.refresh.tREFI;
        wake(srExitReadyAt_);
        return;
    }
    if (srExitReadyAt_ != 0 && now < srExitReadyAt_) {
        wake(srExitReadyAt_);
        return;
    }
    if (srIdleThreshold_ > 0 && readQ_.empty() && wpq_.empty() &&
        refState_ == RefState::Idle && !shadow_.anyBankOpen()) {
        if (now >= lastActivityAt_ + srIdleThreshold_) {
            bus_.issueCommand(
                masterId_,
                {dram::Ddr4Op::SelfRefreshEnter, 0, 0, 0, 0});
            nextCmdAt_ = now + t.tCK;
            selfRefresh_ = true;
            return;
        }
        wake(lastActivityAt_ + srIdleThreshold_);
    }

    // --- Refresh state machine (highest priority) ---
    if (refState_ == RefState::Blocked) {
        if (now < blockedUntil_) {
            wake(blockedUntil_);
            return;
        }
        refState_ = RefState::Idle;
    }
    if (cfg_.refreshEnabled && refState_ == RefState::Idle &&
        now >= nextRefreshDue_) {
        refState_ = shadow_.anyBankOpen() ? RefState::WaitPrea
                                          : RefState::WaitRef;
    }
    if (refState_ == RefState::WaitPrea) {
        Tick ready = shadow_.earliestPrechargeAll();
        if (ready > now) {
            wake(ready);
            return;
        }
        bus_.issueCommand(masterId_,
                          {dram::Ddr4Op::PrechargeAll, 0, 0, 0, 0});
        shadow_.onPrechargeAll(now);
        nextCmdAt_ = now + t.tCK;
        refState_ = RefState::WaitRef;
        wake(now + t.tCK);
        return;
    }
    if (refState_ == RefState::WaitRef) {
        Tick ready = std::max(shadow_.earliestRefresh(),
                              shadow_.dqBusyUntil());
        if (ready > now) {
            wake(ready);
            return;
        }
        bus_.issueCommand(masterId_, {dram::Ddr4Op::Refresh, 0, 0, 0, 0});
        shadow_.onRefresh(now);
        nextCmdAt_ = now + t.tCK;
        stats_.refreshesIssued.inc();
        stats_.refreshBlockedTicks.inc(cfg_.refresh.tRFC);
        lastRefreshAt_ = now;
        // Block for the PROGRAMMED tRFC; the device only needs its
        // real tRFC, the rest is the NVMC's window.
        blockedUntil_ = now + cfg_.refresh.tRFC;
        if (trace::enabled()) {
            trace::instant(trackRefresh_.c_str(), "REF", now);
            trace::duration(trackRefresh_.c_str(),
                            "blocked(programmed tRFC)",
                            now, blockedUntil_);
        }
        nextRefreshDue_ += cfg_.refresh.tREFI;
        refState_ = RefState::Blocked;
        wake(blockedUntil_);
        return;
    }

    // --- Normal FR-FCFS service ---
    bool drain_writes =
        wpq_.aboveWatermark() ||
        (!wpq_.empty() &&
         now >= wpq_.front().enqueued + cfg_.wpqMaxAge);
    SchedDecision d = pickNext(readQ_, wpq_.entries(), drain_writes,
                               shadow_, map, cfg_.schedWindow);
    if (d.action == SchedDecision::Action::None) {
        // Sleep until a new request arrives — but keep the refresh
        // cadence armed regardless.
        if (cfg_.refreshEnabled)
            wake(nextRefreshDue_);
        return;
    }

    // Never start a command that could not finish before a due
    // refresh forces PREA — the refresh FSM takes over at the next
    // tick call once due.
    if (d.earliest > now) {
        wake(d.earliest);
        return;
    }

    const MemRequest& req = d.fromWriteQueue ? wpq_.at(d.queueIndex)
                                             : readQ_[d.queueIndex];
    const auto& c = req.coord;
    std::uint32_t fb = map.flatBank(c);

    switch (d.action) {
      case SchedDecision::Action::Activate:
        bus_.issueCommand(masterId_, {dram::Ddr4Op::Activate,
                                      c.bankGroup, c.bank, c.row, 0});
        shadow_.onActivate(fb, c.bankGroup, c.row, now);
        break;

      case SchedDecision::Action::Precharge:
        bus_.issueCommand(masterId_, {dram::Ddr4Op::Precharge,
                                      c.bankGroup, c.bank, 0, 0});
        shadow_.onPrecharge(fb, now);
        break;

      case SchedDecision::Action::Read: {
        auto res = bus_.issueCommand(masterId_,
                                     {dram::Ddr4Op::Read, c.bankGroup,
                                      c.bank, c.row, c.col});
        shadow_.onRead(fb, c.bankGroup, now);
        MemRequest done = std::move(readQ_[d.queueIndex]);
        readQ_.erase(readQ_.begin() +
                     static_cast<std::ptrdiff_t>(d.queueIndex));
        // A rejected CAS (e.g. the NVMC corrupted bank state during a
        // collision scenario) returns no data window; fall back to
        // nominal timing so the pipeline keeps moving.
        Tick data_end = res.ok && res.dataEnd > now
                            ? res.dataEnd
                            : now + t.readLatency();
        completeRead(std::move(done), data_end);
        break;
      }

      case SchedDecision::Action::Write: {
        auto res = bus_.issueCommand(masterId_,
                                     {dram::Ddr4Op::Write, c.bankGroup,
                                      c.bank, c.row, c.col});
        shadow_.onWrite(fb, c.bankGroup, now);
        MemRequest done = wpq_.popAt(d.queueIndex);
        Tick data_end = res.ok && res.dataEnd > now
                            ? res.dataEnd
                            : now + t.writeLatency();
        commitWrite(std::move(done), data_end);
        break;
      }

      case SchedDecision::Action::None:
        break;
    }
    nextCmdAt_ = now + t.tCK;

    wake(now + t.tCK);
}

Tick
Imc::refreshWalk(Tick start, Tick busy) const
{
    if (!cfg_.refreshEnabled)
        return start + busy;

    Tick cursor = start;
    // Currently inside a refresh blackout?
    if (refState_ == RefState::Blocked && cursor < blockedUntil_)
        cursor = blockedUntil_;

    // Future blackouts start (approximately) at each due tick.
    Tick next_ref = nextRefreshDue_;
    if (next_ref <= cursor) {
        Tick behind = cursor - next_ref;
        next_ref += (behind / cfg_.refresh.tREFI + 1) *
                    cfg_.refresh.tREFI;
    }
    Tick remaining = busy;
    for (;;) {
        Tick gap = next_ref - cursor;
        if (remaining <= gap)
            return cursor + remaining;
        remaining -= gap;
        cursor = next_ref + cfg_.refresh.tRFC;
        next_ref += cfg_.refresh.tREFI;
    }
}

void
Imc::bulkTransfer(std::uint32_t bytes, bool is_write, Callback done)
{
    const Tick now = eq_.now();
    const auto& t = bus_.dram().timing();

    // Channel occupancy: DDR4 x64 moves 16 B per tCK at peak.
    double peak_bytes_per_ps = 16.0 / static_cast<double>(t.tCK);
    double eff = cfg_.bulkEfficiency;
    auto channel_busy = static_cast<Tick>(
        static_cast<double>(bytes) / (peak_bytes_per_ps * eff));

    Tick channel_start = std::max(now, bulkBusyUntil_);
    Tick channel_done =
        refreshWalk(channel_start, channel_busy + cfg_.bulkOpOverhead);
    bulkBusyUntil_ = channel_done;

    // Thread-side stream limit (MLP for loads, issue rate for NT
    // stores).
    double stream_mbps =
        is_write ? cfg_.streamWriteMBps : cfg_.streamReadMBps;
    auto stream_busy = static_cast<Tick>(
        static_cast<double>(bytes) / (stream_mbps * 1e6 / 1e12));
    Tick stream_done =
        refreshWalk(now, stream_busy + cfg_.bulkOpOverhead);

    Tick finish = std::max(channel_done, stream_done);
    if (is_write)
        stats_.writesAccepted.inc();
    else
        stats_.readsAccepted.inc();
    eq_.schedule(finish, std::move(done));
}

void
Imc::registerStats(StatRegistry& reg, const std::string& prefix) const
{
    reg.addCounter(prefix + ".reads_accepted", stats_.readsAccepted);
    reg.addCounter(prefix + ".writes_accepted",
                   stats_.writesAccepted);
    reg.addCounter(prefix + ".wpq_forwards", stats_.wpqForwards);
    reg.addCounter(prefix + ".refreshes_issued",
                   stats_.refreshesIssued);
    reg.addHistogram(prefix + ".read_latency", stats_.readLatency);
    reg.add(prefix + ".read_latency_mean_ns",
            [this] { return stats_.readLatency.mean() / 1000.0; });
    reg.add(prefix + ".rdq.occupancy", [this] {
        return static_cast<double>(readQ_.size());
    });
    reg.add(prefix + ".wpq.occupancy", [this] {
        return static_cast<double>(wpq_.size());
    });
    reg.addCounter(prefix + ".refresh.blocked_ticks",
                   stats_.refreshBlockedTicks);
    // Fraction of all simulated time the host spent inside its
    // programmed-tRFC blackout (paper Fig 13's x-axis cost).
    reg.add(prefix + ".refresh.overhead_pct", [this] {
        Tick now = eq_.now();
        return now == 0 ? 0.0
                        : 100.0 *
                              static_cast<double>(
                                  stats_.refreshBlockedTicks.value()) /
                              static_cast<double>(now);
    });
}

std::size_t
Imc::adrFlushWpq()
{
    std::size_t n = 0;
    // Bursts already on the wires land first (they left the WPQ
    // before anything still queued behind them).
    for (auto& [id, req] : inflightWrites_) {
        if (req.hasWriteData)
            bus_.dram().writeBurst(req.coord, req.writeData.data());
        ++n;
    }
    inflightWrites_.clear();
    while (!wpq_.empty()) {
        MemRequest req = wpq_.pop();
        if (req.hasWriteData)
            bus_.dram().writeBurst(req.coord, req.writeData.data());
        ++n;
    }
    return n;
}

} // namespace nvdimmc::imc
