/**
 * @file
 * Host integrated memory controller (iMC).
 *
 * Skylake-like behaviour as the paper relies on it (§II-B, §III-B):
 *  - deterministic DDR4 command scheduling (FR-FCFS, open-page),
 *  - posted writes through a bounded write pending queue (WPQ),
 *  - periodic refresh: PREA then REF every tREFI, with *programmable*
 *    tRFC/tREFI registers. The iMC blocks itself for the programmed
 *    tRFC after each REF; since the DRAM only needs its real tRFC
 *    (350 ns), the remainder of the programmed window (e.g. up to
 *    1250 ns) is dead time on the host side — which is exactly where
 *    the NVMC does its work.
 */

#ifndef NVDIMMC_IMC_IMC_HH
#define NVDIMMC_IMC_IMC_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "bus/memory_bus.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "imc/request.hh"
#include "imc/scheduler.hh"
#include "imc/wpq.hh"

namespace nvdimmc::imc
{

/** iMC configuration knobs. */
struct ImcConfig
{
    dram::RefreshRegisters refresh = dram::RefreshRegisters::standard();
    std::size_t readQueueCap = 64;
    std::size_t wpqCap = 64;
    std::size_t wpqWatermark = 32;
    /** Entries older than this drain even below the watermark (real
     *  controllers age writes out; unbounded postponement would let
     *  the NVMC read stale slot data). */
    Tick wpqMaxAge = 1 * kUs;
    std::size_t schedWindow = 16;
    bool refreshEnabled = true;
    /** Latency of a WPQ store-to-load forward. */
    Tick forwardLatency = 20 * kNs;
    /**
     * Core-to-iMC round trip added to every read delivery (L3 miss
     * path, on-die interconnect, controller frontend). This is what
     * makes a single thread's 4 KB memcpy take ~1.1 us instead of
     * running at channel speed, matching the paper's single-thread
     * numbers.
     */
    Tick frontendLatency = 120 * kNs;

    /** @name Bulk (analytic) transfer model.
     * Big data movement can bypass per-line scheduling: occupancy is
     * computed from the channel's data rate and the per-thread stream
     * rate, and stretched across refresh blackouts mechanistically —
     * so tREFI sweeps (paper Fig 13) behave the same in both modes.
     */
    /** @{ */
    /** Channel efficiency vs theoretical peak (bank conflicts,
     *  turnarounds). */
    double bulkEfficiency = 0.88;
    /** Single-thread load-stream rate (MLP-limited). */
    double streamReadMBps = 4000.0;
    /** Single-thread NT-store stream rate. */
    double streamWriteMBps = 4500.0;
    /** Fixed per-bulk-op cost (row activation etc.). */
    Tick bulkOpOverhead = 40 * kNs;
    /** @} */

    /**
     * Offset added to the first refresh due tick. In a multi-channel
     * topology each channel gets a different phase (ch * tREFI / N) so
     * the programmed-tRFC blackouts — and hence the NVMC DMA windows —
     * stagger across channels instead of stalling the whole host at
     * once (refresh-access parallelism). 0 for channel 0 and for
     * single-channel systems, so their refresh timeline is unchanged.
     */
    Tick refreshPhase = 0;

    /** Stat/trace identity of this controller ("imc", "ch1.imc", ...);
     *  names the Perfetto tracks so channels get separate rows. */
    std::string name = "imc";
};

/** iMC statistics. */
struct ImcStats
{
    Counter readsAccepted;
    Counter writesAccepted;
    Counter wpqForwards;
    Counter refreshesIssued;
    /** Host-side dead time: programmed-tRFC ticks spent blocked after
     *  each REF (the window the NVMC feeds on). */
    Counter refreshBlockedTicks;
    Histogram readLatency;  ///< Enqueue -> data delivered.
};

/** The host memory controller driving one channel. */
class Imc
{
  public:
    Imc(EventQueue& eq, bus::MemoryBus& bus, const ImcConfig& cfg);

    /**
     * Enqueue a 64 B line read. @p buf (nullable) receives the data.
     * @return false if the read queue is full (use whenSpace()).
     */
    bool readLine(Addr addr, std::uint8_t* buf, Callback done);

    /**
     * Post a 64 B line write; @p done fires immediately on acceptance
     * (posted semantics) and the WPQ drains in the background.
     * @return false if the WPQ is full.
     */
    bool writeLine(Addr addr, const std::uint8_t* data, Callback done);

    /** Register a one-shot callback for "some queue space freed". */
    void whenSpace(Callback cb) { spaceWaiters_.push_back(std::move(cb)); }

    /**
     * Analytic bulk transfer (see ImcConfig bulk parameters): the
     * channel is occupied FCFS, the calling thread is limited by its
     * stream rate, and both stall across refresh blackouts. No
     * per-line commands are issued; data does not move.
     */
    void bulkTransfer(std::uint32_t bytes, bool is_write, Callback done);

    /** @name Refresh observation (for tests and the power model). */
    /** @{ */
    Tick nextRefreshDue() const { return nextRefreshDue_; }
    Tick lastRefreshAt() const { return lastRefreshAt_; }
    Tick blockedUntil() const { return blockedUntil_; }
    /** @} */

    const ImcConfig& config() const { return cfg_; }

    /**
     * Reprogram the refresh registers at runtime (the paper does this
     * via BIOS/iMC registers; Fig 12/13 sweep tREFI).
     */
    void programRefresh(const dram::RefreshRegisters& regs);

    /**
     * Thermal throttling (paper §II-B): above 85 C the JEDEC
     * recommendation halves tREFI to 3.9 us. The NVMC adapts
     * automatically (it feeds on the observed REF cadence) — more
     * windows for it, less bandwidth for the host.
     */
    void setTemperature(double celsius);
    double temperature() const { return temperatureC_; }

    /**
     * Idle self-refresh: after @p idle_time with empty queues the iMC
     * puts the DRAM into self-refresh (SRE) and wakes it (SRX + tXS)
     * on the next request. While in self-refresh no REF commands are
     * driven, so the NVMC is starved — one more reason (beyond the
     * paper's scope) an NVDIMM-C platform keeps deep power states
     * off. 0 disables (the default).
     */
    void enableIdleSelfRefresh(Tick idle_time);
    bool inSelfRefresh() const { return selfRefresh_; }

    /** Number of WPQ entries currently pending. */
    std::size_t wpqDepth() const { return wpq_.size(); }
    std::size_t readQueueDepth() const { return readQ_.size(); }

    /**
     * Power-failure ADR flush: commit every WPQ entry's data straight
     * into the DRAM array, along with writes whose CAS already issued
     * but whose data burst was still on the wires — both live inside
     * the memory controller, which is exactly what ADR's stored
     * energy drains. @return entries flushed.
     */
    std::size_t adrFlushWpq();

    /** Power-failure *without* ADR: WPQ contents AND in-flight
     *  bursts are lost. */
    std::size_t dropWpq()
    {
        std::size_t n = wpq_.dropAll() + inflightWrites_.size();
        inflightWrites_.clear();
        return n;
    }

    const ImcStats& stats() const { return stats_; }

    /**
     * Register counters, queue occupancy and refresh-overhead
     * metrics under @p prefix (e.g. "imc" -> "imc.rdq.occupancy",
     * "imc.refresh.overhead_pct").
     */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

  private:
    void wake(Tick at);
    void tick();
    void notifySpace();
    void completeRead(MemRequest req, Tick data_end);
    void commitWrite(MemRequest req, Tick data_end);

    EventQueue& eq_;
    bus::MemoryBus& bus_;
    ImcConfig cfg_;
    int masterId_;

    TimingShadow shadow_;
    std::deque<MemRequest> readQ_;
    WritePendingQueue wpq_;
    std::vector<Callback> spaceWaiters_;

    /**
     * Writes popped from the WPQ at CAS time whose data burst has not
     * yet landed in the array. Kept so a power-fail flush can commit
     * them — otherwise a cut between CAS and burst-end would lose an
     * already-acked posted store (it is in neither the WPQ nor the
     * array). Ordered map: flush order is deterministic.
     */
    std::map<std::uint64_t, MemRequest> inflightWrites_;
    std::uint64_t nextInflightWrite_ = 0;

    enum class RefState : std::uint8_t { Idle, WaitPrea, WaitRef,
                                         Blocked };
    RefState refState_ = RefState::Idle;
    Tick nextRefreshDue_;
    Tick lastRefreshAt_ = kTickNever;
    Tick blockedUntil_ = 0;

    /** Earliest tick the CA slot is free after our last command; a
     *  same-tick wake() (request arrival) must not let tick() drive a
     *  second command into a still-busy slot. */
    Tick nextCmdAt_ = 0;

    /** Thermal state: base registers scaled when hot. */
    dram::RefreshRegisters baseRefresh_;
    double temperatureC_ = 40.0;

    /** Idle self-refresh state. */
    Tick srIdleThreshold_ = 0;
    bool selfRefresh_ = false;
    Tick lastActivityAt_ = 0;
    Tick srExitReadyAt_ = 0;

    /** Single self-rescheduled wakeup driving tick(); intrusive, so
     *  moving it never allocates. */
    EventFunctionWrapper wakeEvent_;

    /** Cached Perfetto track names ("<name>.queues", "<name>.refresh");
     *  built once so the hot paths never concatenate strings. */
    std::string trackQueues_;
    std::string trackRefresh_;

    /** Bulk-model channel occupancy horizon. */
    Tick bulkBusyUntil_ = 0;

    /** Extend a busy interval across future refresh blackouts. */
    Tick refreshWalk(Tick start, Tick busy) const;

    ImcStats stats_;
};

} // namespace nvdimmc::imc

#endif // NVDIMMC_IMC_IMC_HH
