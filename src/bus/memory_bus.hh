/**
 * @file
 * Shared DDR4 memory channel with more than one bus master.
 *
 * This models the paper's central hazard (Fig 2a): the host iMC and
 * the on-DIMM NVMC are both wired to the same CA/DQ pins of the DRAM
 * cache, and nothing in DDR4 arbitrates between them. The bus forwards
 * commands to the DRAM device, lets snoopers (the NVMC's refresh
 * detector) watch the raw CA frames, and *detects* collisions:
 *
 *  - C1 command collisions: two masters driving the CA bus in
 *    overlapping command slots.
 *  - DQ collisions: overlapping data bursts from different masters.
 *
 * The paper's C2 case (a master's command invalidated by the other
 * master changing bank state) surfaces as a DramDevice protocol
 * violation, which the bus also attributes to the issuing master.
 */

#ifndef NVDIMMC_BUS_MEMORY_BUS_HH
#define NVDIMMC_BUS_MEMORY_BUS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_device.hh"

namespace nvdimmc::bus
{

/** A detected electrical collision on the shared channel. */
struct BusConflict
{
    Tick tick = 0;
    std::string what;
    int masterA = -1;
    int masterB = -1;
};

/** Observer of raw CA frames (e.g. the NVMC refresh detector). */
class CaSnooper
{
  public:
    virtual ~CaSnooper() = default;

    /** Called for every frame any master drives, at the drive tick. */
    virtual void observeFrame(const dram::CaFrame& frame, Tick now) = 0;
};

/** The shared channel. */
class MemoryBus
{
  public:
    /**
     * @param eq simulation event queue (for now()).
     * @param dram the fronted DRAM device.
     * @param panic_on_conflict abort on any collision (production
     *        mode); tests that inject failures keep it off.
     */
    MemoryBus(EventQueue& eq, dram::DramDevice& dram,
              bool panic_on_conflict = false);

    /** Register a master; the returned id tags its commands. */
    int registerMaster(std::string name);

    const std::string& masterName(int id) const { return masters_[id]; }

    void addSnooper(CaSnooper* snooper) { snoopers_.push_back(snooper); }

    /**
     * Drive one command on the CA bus at the current tick. Detects CA
     * collisions, lets snoopers observe the frame, forwards the
     * command to the DRAM, and claims the DQ window for RD/WR.
     */
    dram::IssueResult issueCommand(int master,
                                   const dram::Ddr4Command& cmd);

    /**
     * Claim the DQ bus for [start, end); used internally for RD/WR
     * and exposed so write-data bursts from a DMA can be modelled.
     */
    void claimDq(int master, Tick start, Tick end);

    dram::DramDevice& dram() { return dram_; }
    const dram::DramDevice& dram() const { return dram_; }

    const std::vector<BusConflict>& conflicts() const
    {
        return conflicts_;
    }
    std::uint64_t conflictCount() const { return conflicts_.size(); }
    void clearConflicts() { conflicts_.clear(); }

    /** Commands each master has driven. */
    std::uint64_t commandCount(int master) const
    {
        return commandCounts_[master];
    }

    /** Register conflict/command stats under @p prefix (e.g. "bus"). */
    void registerStats(StatRegistry& reg,
                       const std::string& prefix) const;

  private:
    struct DqClaim
    {
        int master;
        Tick start;
        Tick end;
    };

    /**
     * Time-pruned ring of outstanding DQ claims. Claims arrive in
     * claim-time order and die as soon as their burst window closes
     * (a new claim never starts before now, so an expired claim can
     * no longer overlap anything). The ring holds only the handful of
     * in-flight bursts, so the overlap scan in claimDq() is O(live)
     * instead of O(recent-history) — this is the bus's hottest path.
     */
    class ClaimRing
    {
      public:
        void
        pruneBefore(Tick now)
        {
            while (count_ > 0 && buf_[head_].end <= now) {
                head_ = (head_ + 1) & (buf_.size() - 1);
                --count_;
            }
        }

        void
        push(const DqClaim& claim)
        {
            if (count_ == buf_.size())
                grow();
            buf_[(head_ + count_) & (buf_.size() - 1)] = claim;
            ++count_;
        }

        std::size_t size() const { return count_; }

        const DqClaim&
        at(std::size_t i) const
        {
            return buf_[(head_ + i) & (buf_.size() - 1)];
        }

      private:
        void grow();

        std::vector<DqClaim> buf_; ///< Power-of-two capacity.
        std::size_t head_ = 0;
        std::size_t count_ = 0;
    };

    void recordConflict(Tick now, std::string what, int a, int b);

    EventQueue& eq_;
    dram::DramDevice& dram_;
    bool panicOnConflict_;

    std::vector<std::string> masters_;
    std::vector<std::uint64_t> commandCounts_;
    std::vector<CaSnooper*> snoopers_;

    /** CA occupancy: one command slot (1 tCK) per command. */
    Tick caBusyUntil_ = 0;
    int caOwner_ = -1;

    ClaimRing dqClaims_;
    std::vector<BusConflict> conflicts_;
};

} // namespace nvdimmc::bus

#endif // NVDIMMC_BUS_MEMORY_BUS_HH
