/**
 * @file
 * Command-trace recorder: a CaSnooper that keeps a bounded ring of
 * decoded commands with timestamps, dumpable as text. Useful for
 * debugging window math (examples/bus_inspector uses the same idea)
 * and for regression-checking command interleavings.
 */

#ifndef NVDIMMC_BUS_BUS_TRACER_HH
#define NVDIMMC_BUS_BUS_TRACER_HH

#include <deque>
#include <ostream>

#include "bus/memory_bus.hh"
#include "dram/ddr4_command.hh"

namespace nvdimmc::bus
{

/** Bounded command trace. */
class BusTracer : public CaSnooper
{
  public:
    struct Entry
    {
        Tick tick;
        dram::Ddr4Command cmd;
    };

    explicit BusTracer(std::size_t capacity = 4096)
        : capacity_(capacity)
    {
    }

    void
    observeFrame(const dram::CaFrame& frame, Tick now) override
    {
        if (entries_.size() == capacity_)
            entries_.pop_front();
        entries_.push_back({now, dram::decodeFrame(frame)});
        ++total_;
    }

    const std::deque<Entry>& entries() const { return entries_; }
    std::uint64_t totalObserved() const { return total_; }

    /**
     * Full reset: drop the retained entries AND zero totalObserved().
     * Before, clear() emptied only the ring and left total_ counting
     * commands from the discarded epoch — a stale figure for anyone
     * diffing totals across measurement phases.
     */
    void
    clear()
    {
        entries_.clear();
        total_ = 0;
    }

    /** Drop only the retained ring; totalObserved() keeps counting
     *  across the whole tracer lifetime. */
    void clearEntries() { entries_.clear(); }

    /** Count of a given op within the retained window. */
    std::size_t
    count(dram::Ddr4Op op) const
    {
        std::size_t n = 0;
        for (const auto& e : entries_) {
            if (e.cmd.op == op)
                ++n;
        }
        return n;
    }

    /** Dump "tick_us CMD bg ba row col" lines. */
    void
    dump(std::ostream& os) const
    {
        for (const auto& e : entries_) {
            os << ticksToUs(e.tick) << " " << e.cmd.describe()
               << "\n";
        }
    }

  private:
    std::size_t capacity_;
    std::deque<Entry> entries_;
    std::uint64_t total_ = 0;
};

} // namespace nvdimmc::bus

#endif // NVDIMMC_BUS_BUS_TRACER_HH
