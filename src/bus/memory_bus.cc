#include "bus/memory_bus.hh"

#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "common/trace.hh"

namespace nvdimmc::bus
{

MemoryBus::MemoryBus(EventQueue& eq, dram::DramDevice& dram,
                     bool panic_on_conflict)
    : eq_(eq), dram_(dram), panicOnConflict_(panic_on_conflict)
{
}

int
MemoryBus::registerMaster(std::string name)
{
    masters_.push_back(std::move(name));
    commandCounts_.push_back(0);
    return static_cast<int>(masters_.size()) - 1;
}

void
MemoryBus::registerStats(StatRegistry& reg,
                         const std::string& prefix) const
{
    reg.add(prefix + ".conflicts", [this] {
        return static_cast<double>(conflictCount());
    });
    for (std::size_t m = 0; m < masters_.size(); ++m) {
        reg.add(prefix + ".commands." + masters_[m], [this, m] {
            return static_cast<double>(commandCounts_[m]);
        });
    }
}

void
MemoryBus::recordConflict(Tick now, std::string what, int a, int b)
{
    conflicts_.push_back({now, what, a, b});
    trace::instant("bus", "conflict", now);
    if (panicOnConflict_) {
        panic("bus conflict @", now, ": ", conflicts_.back().what,
              " (", masterName(a), " vs ",
              b >= 0 ? masterName(b) : "?", ")");
    } else {
        warn("bus conflict @", now, ": ", conflicts_.back().what);
    }
}

dram::IssueResult
MemoryBus::issueCommand(int master, const dram::Ddr4Command& cmd)
{
    NVDC_ASSERT(master >= 0 &&
                master < static_cast<int>(masters_.size()),
                "unknown bus master");
    const Tick now = eq_.now();
    const Tick slot = dram_.timing().tCK;

    ++commandCounts_[master];

    // NOP/DES don't drive the bus; they are the idle state.
    const bool drives = cmd.op != dram::Ddr4Op::Deselect &&
                        cmd.op != dram::Ddr4Op::Nop;

    if (drives) {
        if (now < caBusyUntil_) {
            // Two CA frames in one tCK slot are an electrical
            // conflict no matter who drives them: a master
            // over-driving its own command slot is just as much a
            // protocol violation as a cross-master collision, and
            // used to slip through the caOwner_ exemption.
            std::ostringstream os;
            if (caOwner_ == master) {
                os << "CA over-drive: " << masterName(master)
                   << " drives " << cmd.describe()
                   << " in its own still-busy command slot";
            } else {
                os << "CA collision: " << masterName(master)
                   << " drives " << cmd.describe() << " while "
                   << masterName(caOwner_) << " owns the bus";
            }
            recordConflict(now, os.str(), master, caOwner_);
        }
        caBusyUntil_ = now + slot;
        caOwner_ = master;

        const dram::CaFrame frame = dram::encodeCommand(cmd);
        for (auto* snooper : snoopers_)
            snooper->observeFrame(frame, now);
    }

    dram::IssueResult res = dram_.issue(cmd, now);
    if (res.dataEnd > res.dataStart)
        claimDq(master, res.dataStart, res.dataEnd);
    return res;
}

void
MemoryBus::ClaimRing::grow()
{
    std::vector<DqClaim> next(buf_.empty() ? 16 : buf_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i)
        next[i] = at(i);
    buf_ = std::move(next);
    head_ = 0;
}

void
MemoryBus::claimDq(int master, Tick start, Tick end)
{
    const Tick now = eq_.now();
    // A new claim never starts before now, so claims whose burst has
    // already closed can no longer overlap anything: drop them.
    dqClaims_.pruneBefore(now);

    for (std::size_t i = 0; i < dqClaims_.size(); ++i) {
        const DqClaim& claim = dqClaims_.at(i);
        if (claim.master == master)
            continue;
        if (start < claim.end && claim.start < end) {
            std::ostringstream os;
            os << "DQ collision: " << masterName(master)
               << " data burst [" << start << ", " << end
               << ") overlaps " << masterName(claim.master) << " ["
               << claim.start << ", " << claim.end << ")";
            recordConflict(now, os.str(), master, claim.master);
        }
    }
    dqClaims_.push({master, start, end});
}

} // namespace nvdimmc::bus
