/**
 * @file
 * Quickstart: build a complete NVDIMM-C system, write and read a few
 * pages through the whole stack (driver -> CP area -> refresh windows
 * -> FPGA DMA -> FTL -> Z-NAND), and print what happened underneath.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>
#include <vector>

#include "core/system.hh"

using namespace nvdimmc;

int
main()
{
    // A scaled-down NVDIMM-C: 4 MiB DRAM cache fronting ~7.5 MiB of
    // Z-NAND, with the paper's timing (DDR4-1600, tRFC programmed to
    // 1250 ns, tREFI 7.8 us). Use SystemConfig::paperPoc() for the
    // full-size 16 GB / 128 GB device.
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    core::NvdimmcSystem sys(cfg);
    auto& drv = sys.driver();

    std::printf("NVDIMM-C up: %llu MiB device, %u cache slots, "
                "tRFC %.0f ns / tREFI %.1f us\n",
                static_cast<unsigned long long>(drv.capacityBytes() >>
                                                20),
                sys.layout().slotCount(),
                ticksToNs(cfg.refresh.tRFC),
                ticksToUs(cfg.refresh.tREFI));

    // Write a page. The first touch faults: the driver allocates a
    // cache slot and the data lands in DRAM.
    std::vector<std::uint8_t> out(4096);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(i & 0xff);

    Tick t0 = sys.eq().now();
    bool done = false;
    drv.write(0x4000, 4096, out.data(), [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    std::printf("first-touch 4 KB write: %.2f us\n",
                ticksToUs(sys.eq().now() - t0));

    // Read it back: a DRAM cache hit.
    std::vector<std::uint8_t> in(4096, 0);
    t0 = sys.eq().now();
    done = false;
    drv.read(0x4000, 4096, in.data(), [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    std::printf("cached 4 KB read:       %.2f us (data %s)\n",
                ticksToUs(sys.eq().now() - t0),
                in == out ? "OK" : "MISMATCH");

    // Force real NVM traffic: fill the cache, then touch one more
    // page — the driver evicts a victim over the CP channel
    // (writeback) and, since this block holds data, cachefills it.
    sys.precondition(16, sys.layout().slotCount() - 1, true);
    drv.markEverWritten(0, 64);
    t0 = sys.eq().now();
    done = false;
    drv.read(0x1000, 4096, in.data(), [&] { done = true; });
    while (!done && sys.eq().runOne()) {
    }
    std::printf("uncached 4 KB read:     %.2f us "
                "(>= 3 refresh windows by design)\n",
                ticksToUs(sys.eq().now() - t0));

    std::printf("\nunderneath:\n");
    std::printf("  refresh windows granted to the NVMC: %llu\n",
                static_cast<unsigned long long>(
                    sys.nvmc()->windowsGranted()));
    std::printf("  CP commands acked:                   %llu\n",
                static_cast<unsigned long long>(
                    sys.nvmc()->firmware().stats().acksWritten.value()));
    std::printf("  NAND page reads / programs:          %llu / %llu\n",
                static_cast<unsigned long long>(
                    sys.znand()->stats().pageReads.value()),
                static_cast<unsigned long long>(
                    sys.znand()->stats().pagePrograms.value()));
    std::printf("  bus conflicts / DRAM violations:     %llu / %llu\n",
                static_cast<unsigned long long>(
                    sys.bus().conflictCount()),
                static_cast<unsigned long long>(
                    sys.dramDevice().stats().violations.value()));
    return sys.hardwareClean() ? 0 : 1;
}
