/**
 * @file
 * nvdimmc_sim — a configurable command-line front end to the whole
 * simulator, for exploring the design space without writing C++.
 *
 *   $ ./examples/nvdimmc_sim \
 *         "pattern=randread,bs=4096,threads=4,cached=0,media=znand"
 *
 * Accepted keys (comma-separated key=value):
 *   pattern   randread | randwrite | seqread | seqwrite   [randread]
 *   bs        access size in bytes                        [4096]
 *   threads   worker threads                              [1]
 *   cached    1 = footprint inside the DRAM cache         [1]
 *   media     znand | pram | sttmram                      [znand]
 *   policy    lrc | lru | clock | random                  [lrc]
 *   trfc_ns   programmed tRFC                             [1250]
 *   trefi_ns  programmed tREFI                            [7800]
 *   cpdepth   CP queue depth                              [1]
 *   track_dirty / merged / prefetch   0|1                 [0]
 *   asic      1 = ASIC firmware timings                   [0]
 *   run_ms    measurement window (simulated)              [50]
 *   temp_c    DIMM temperature (>85 throttles refresh)    [40]
 *   stats     1 = dump all per-layer statistics           [0]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "common/config.hh"
#include "core/system.hh"
#include "workload/fio.hh"

using namespace nvdimmc;

int
main(int argc, char** argv)
{
    Config overrides =
        argc > 1 ? Config::parse(argv[1]) : Config{};

    core::SystemConfig cfg = core::SystemConfig::scaledBench();

    std::string media = overrides.getString("media", "znand");
    if (media == "pram") {
        cfg.media = core::MediaKind::Pram;
        cfg.mediaBytes = 4 * kGiB;
    } else if (media == "sttmram") {
        cfg.media = core::MediaKind::SttMram;
        cfg.mediaBytes = 4 * kGiB;
    } else if (media != "znand") {
        fatal("unknown media '", media, "'");
    }

    cfg.refresh.tRFC = overrides.getUint("trfc_ns", 1250) * kNs;
    cfg.refresh.tREFI = overrides.getUint("trefi_ns", 7800) * kNs;
    cfg.imc.refresh = cfg.refresh;
    cfg.nvmc.programmedRefresh = cfg.refresh;
    cfg.driver.policy = overrides.getString("policy", "lrc");
    cfg.driver.trackDirty = overrides.getBool("track_dirty", false);
    cfg.driver.mergedWbCf = overrides.getBool("merged", false);
    cfg.driver.prefetchEnabled = overrides.getBool("prefetch", false);
    if (overrides.getBool("asic", false))
        cfg.nvmc.firmware = nvmc::FirmwareConfig::asic();
    auto depth = static_cast<std::uint32_t>(
        overrides.getUint("cpdepth", 1));
    cfg.driver.cpQueueDepth = depth;
    cfg.nvmc.firmware.cpQueueDepth = depth;

    core::NvdimmcSystem sys(cfg);
    sys.imc().setTemperature(overrides.getDouble("temp_c", 40.0));

    bool cached = overrides.getBool("cached", true);
    workload::FioConfig fio;
    std::string pattern = overrides.getString("pattern", "randread");
    if (pattern == "randread") {
        fio.pattern = workload::FioConfig::Pattern::RandRead;
    } else if (pattern == "randwrite") {
        fio.pattern = workload::FioConfig::Pattern::RandWrite;
    } else if (pattern == "seqread") {
        fio.pattern = workload::FioConfig::Pattern::SeqRead;
    } else if (pattern == "seqwrite") {
        fio.pattern = workload::FioConfig::Pattern::SeqWrite;
    } else {
        fatal("unknown pattern '", pattern, "'");
    }
    fio.blockSize =
        static_cast<std::uint32_t>(overrides.getUint("bs", 4096));
    fio.threads =
        static_cast<unsigned>(overrides.getUint("threads", 1));
    fio.rampTime = 2 * kMs;
    fio.runTime = overrides.getUint("run_ms", 50) * kMs;

    std::uint32_t slots = sys.layout().slotCount();
    if (cached) {
        sys.precondition(0, slots - 64, true);
        fio.regionBytes = std::uint64_t{slots - 64} * 4096;
    } else {
        sys.precondition(0, slots, true);
        sys.driver().markEverWritten(0, sys.backend().pageCount());
        fio.regionOffset = std::uint64_t{slots + 128} * 4096;
        fio.regionBytes =
            sys.driver().capacityBytes() - fio.regionOffset;
    }

    std::printf("nvdimmc_sim: %s bs=%u threads=%u %s media=%s "
                "policy=%s tRFC=%.0fns tREFI=%.1fus\n",
                pattern.c_str(), fio.blockSize, fio.threads,
                cached ? "cached" : "uncached", media.c_str(),
                cfg.driver.policy.c_str(),
                ticksToNs(cfg.refresh.tRFC),
                ticksToUs(cfg.refresh.tREFI));

    workload::FioJob job(
        sys.eq(),
        [&sys](Addr off, std::uint32_t len, bool is_write,
               std::function<void()> done) {
            if (is_write)
                sys.driver().write(off, len, nullptr, std::move(done));
            else
                sys.driver().read(off, len, nullptr, std::move(done));
        },
        fio);
    workload::FioResult res = job.run();

    std::printf("\n  %10.1f MB/s   %8.1f KIOPS   mean %6.2f us   "
                "p99 %6.2f us\n\n",
                res.mbps, res.kiops, ticksToUs(res.meanLatency),
                ticksToUs(res.p99));
    std::printf("  NVMC windows used: %llu, CP acks: %llu, "
                "conflicts: %llu, violations: %llu\n",
                static_cast<unsigned long long>(
                    sys.nvmc()->windowsGranted()),
                static_cast<unsigned long long>(
                    sys.nvmc()->firmware().stats().acksWritten.value()),
                static_cast<unsigned long long>(
                    sys.bus().conflictCount()),
                static_cast<unsigned long long>(
                    sys.dramDevice().stats().violations.value()));
    if (sys.ftl()) {
        std::printf("  FTL: WA %.2f, GC runs %llu, wear spread %u\n",
                    sys.ftl()->stats().writeAmplification(),
                    static_cast<unsigned long long>(
                        sys.ftl()->stats().gcRuns.value()),
                    sys.ftl()->wearSpread());
    }
    if (overrides.getBool("stats", false)) {
        std::printf("\n-- full statistics --\n");
        sys.dumpStats(std::cout);
    }
    return sys.hardwareClean() ? 0 : 1;
}
