/**
 * @file
 * The paper's Fig 7 scenario as an application: copy a file from a
 * SATA SSD onto the NVDIMM-C block device and watch the bandwidth
 * collapse when the DRAM cache fills.
 *
 *   $ ./examples/filecopy_demo [file_MiB]
 */

#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "workload/filecopy.hh"
#include "workload/ssd.hh"

using namespace nvdimmc;

int
main(int argc, char** argv)
{
    std::uint64_t file_mib = 768;
    if (argc > 1)
        file_mib = std::strtoull(argv[1], nullptr, 0);

    core::SystemConfig cfg = core::SystemConfig::scaledBench();
    core::NvdimmcSystem sys(cfg);
    workload::Ssd ssd(sys.eq(), workload::Ssd::Params{});

    std::uint64_t cache_bytes =
        std::uint64_t{sys.layout().slotCount()} * 4096;
    std::printf("copying %llu MiB from the SSD (520 MB/s) onto a "
                "device with a %llu MiB DRAM cache...\n\n",
                static_cast<unsigned long long>(file_mib),
                static_cast<unsigned long long>(cache_bytes >> 20));

    workload::FileCopyConfig fc;
    fc.fileBytes = file_mib * kMiB;
    fc.chunkBytes = 256 * 1024;
    fc.sampleInterval = 100 * kMs;
    fc.cacheBytes = cache_bytes;

    auto access = [&sys](Addr off, std::uint32_t len, bool is_write,
                         std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };

    workload::FileCopyResult res =
        workload::runFileCopy(sys.eq(), ssd, access, fc);

    std::printf("  sim time   bandwidth\n");
    for (const auto& [tick, mbps] : res.bandwidth.points()) {
        int bar = static_cast<int>(mbps / 12.0);
        std::printf("  %7.2f s  %7.1f MB/s |%.*s\n", ticksToSec(tick),
                    mbps, bar,
                    "==========================================="
                    "===========");
    }
    std::printf("\ncached-phase average:   %7.1f MB/s "
                "(paper: 518, SSD-limited)\n",
                res.cachedPhaseMBps);
    std::printf("uncached-phase average: %7.1f MB/s "
                "(paper: 68, writeback+cachefill bound)\n",
                res.uncachedPhaseMBps);
    std::printf("writebacks issued: %llu\n",
                static_cast<unsigned long long>(
                    sys.driver().stats().writebacks.value()));
    return 0;
}
