/**
 * @file
 * A persistent key-value store on /dev/nvdc0 — the in-memory-database
 * scenario the paper's introduction motivates, including crash
 * recovery through the FPGA's power-fail dump (paper §V-C).
 *
 * The store maps fixed-size records onto device pages, writes them
 * through the nvdc driver (so hot records live in the DRAM cache at
 * DRAM speed), then the demo pulls the plug and verifies every
 * committed record survives in the Z-NAND.
 *
 *   $ ./examples/kvstore
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/power.hh"
#include "core/system.hh"

using namespace nvdimmc;

namespace
{

/** A toy fixed-slot KV store over the byte-addressable device. */
class KvStore
{
  public:
    static constexpr std::uint32_t kRecordBytes = 4096;
    static constexpr std::uint32_t kKeyBytes = 64;

    explicit KvStore(core::NvdimmcSystem& sys) : sys_(sys) {}

    void
    put(const std::string& key, const std::string& value)
    {
        std::vector<std::uint8_t> rec(kRecordBytes, 0);
        std::snprintf(reinterpret_cast<char*>(rec.data()), kKeyBytes,
                      "%s", key.c_str());
        std::snprintf(reinterpret_cast<char*>(rec.data()) + kKeyBytes,
                      kRecordBytes - kKeyBytes, "%s", value.c_str());
        Addr addr = slotFor(key) * kRecordBytes;
        bool done = false;
        sys_.driver().write(addr, kRecordBytes, rec.data(),
                            [&] { done = true; });
        while (!done && sys_.eq().runOne()) {
        }
    }

    std::string
    get(const std::string& key)
    {
        std::vector<std::uint8_t> rec(kRecordBytes, 0);
        Addr addr = slotFor(key) * kRecordBytes;
        bool done = false;
        sys_.driver().read(addr, kRecordBytes, rec.data(),
                           [&] { done = true; });
        while (!done && sys_.eq().runOne()) {
        }
        if (std::strncmp(reinterpret_cast<char*>(rec.data()),
                         key.c_str(), kKeyBytes) != 0) {
            return "<missing>";
        }
        return reinterpret_cast<char*>(rec.data()) + kKeyBytes;
    }

    /** Post-crash: read a record straight from the NVM backend. */
    std::string
    getFromNvm(const std::string& key)
    {
        std::vector<std::uint8_t> rec(kRecordBytes, 0);
        bool done = false;
        sys_.backend().readPage(slotFor(key), rec.data(),
                                [&] { done = true; });
        while (!done && sys_.eq().runOne()) {
        }
        if (std::strncmp(reinterpret_cast<char*>(rec.data()),
                         key.c_str(), kKeyBytes) != 0) {
            return "<missing>";
        }
        return reinterpret_cast<char*>(rec.data()) + kKeyBytes;
    }

  private:
    std::uint64_t
    slotFor(const std::string& key) const
    {
        std::uint64_t h = 1469598103934665603ull;
        for (char c : key)
            h = (h ^ static_cast<std::uint8_t>(c)) * 1099511628211ull;
        std::uint64_t slots =
            sys_.driver().capacityBytes() / kRecordBytes;
        return h % slots;
    }

    core::NvdimmcSystem& sys_;
};

} // namespace

int
main()
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    core::NvdimmcSystem sys(cfg);
    KvStore kv(sys);

    std::printf("-- populating the store --\n");
    kv.put("user:1001", "alice");
    kv.put("user:1002", "bob");
    kv.put("config:mode", "production");
    kv.put("counter:visits", "42");

    std::printf("get user:1001     -> %s\n",
                kv.get("user:1001").c_str());
    std::printf("get config:mode   -> %s\n",
                kv.get("config:mode").c_str());

    // Let metadata stores drain into the DRAM array so the firmware
    // dump sees a consistent map.
    sys.eq().runFor(200 * kUs);

    std::printf("\n-- power failure! --\n");
    core::PowerFailureScenario sc;
    sc.adrWorks = true;
    auto report = core::simulatePowerFailure(sys, sc);
    std::printf("ADR flushed %zu WPQ stores; firmware dumped %zu "
                "dirty pages to Z-NAND\n",
                report.wpqFlushed, report.pagesDumped);

    std::printf("\n-- recovery: reading records from the NVM --\n");
    int survived = 0;
    for (const char* key : {"user:1001", "user:1002", "config:mode",
                            "counter:visits"}) {
        std::string v = kv.getFromNvm(key);
        std::printf("  %-15s -> %s\n", key, v.c_str());
        if (v != "<missing>")
            ++survived;
    }
    std::printf("\n%d/4 records survived the crash\n", survived);
    return survived == 4 ? 0 : 1;
}
