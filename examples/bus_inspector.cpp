/**
 * @file
 * A look inside the shared-bus trick: snoop every DDR4 command on the
 * channel for a few refresh intervals and print the interleaving of
 * host iMC traffic, REFRESH commands, and the NVMC's window-gated
 * accesses — paper Fig 2b, live.
 *
 *   $ ./examples/bus_inspector
 *
 * With `--trace out.json` the run is also captured as a Chrome
 * trace_event file (open in https://ui.perfetto.dev): refresh windows,
 * DMA bursts, CP transactions and queue depths on their own tracks.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/trace.hh"
#include "core/system.hh"

using namespace nvdimmc;

namespace
{

/** Records (tick, op) for every driven CA frame. */
struct TraceSnooper : public bus::CaSnooper
{
    struct Entry
    {
        Tick tick;
        dram::Ddr4Op op;
    };

    std::vector<Entry> entries;

    void
    observeFrame(const dram::CaFrame& frame, Tick now) override
    {
        entries.push_back({now, dram::decodeFrame(frame).op});
    }
};

} // namespace

int
main(int argc, char** argv)
{
    const char* trace_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
            trace_path = argv[i] + 8;
        } else {
            std::fprintf(stderr,
                         "usage: bus_inspector [--trace out.json]\n");
            return 1;
        }
    }
    if (trace_path)
        nvdimmc::trace::start(trace_path);

    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    core::NvdimmcSystem sys(cfg);

    TraceSnooper trace;
    sys.bus().addSnooper(&trace);

    // Start an uncached write so the NVMC has real work (writeback +
    // cachefill over the CP area), plus some host read traffic.
    sys.precondition(8, sys.layout().slotCount() - 8, true);
    sys.driver().markEverWritten(0, 64);
    bool done = false;
    sys.driver().write(0, 4096, nullptr, [&] { done = true; });

    int hammer = 2000;
    std::function<void()> host_traffic = [&] {
        if (--hammer <= 0)
            return;
        sys.imc().readLine(
            sys.layout().slotAddr(9) +
                (static_cast<Addr>(hammer) % 32) * 64,
            nullptr, host_traffic);
    };
    host_traffic();

    while (!done && sys.eq().runOne()) {
    }

    // Print a window's worth of commands around each of the first
    // few REFRESHes.
    std::printf("%-12s %-6s  note\n", "tick (us)", "cmd");
    int refreshes_shown = 0;
    Tick window_end = 0;
    for (const auto& e : trace.entries) {
        bool is_ref = e.op == dram::Ddr4Op::Refresh;
        if (is_ref) {
            if (++refreshes_shown > 3)
                break;
            window_end = e.tick + cfg.refresh.tRFC;
        }
        bool in_window = e.tick < window_end && !is_ref;
        if (!is_ref && !in_window)
            continue;
        const char* note = "";
        if (is_ref) {
            note = "<- REF: host now blocked for programmed tRFC";
        } else if (in_window) {
            note = "   NVMC access inside the stolen window";
        }
        std::printf("%-12.3f %-6s  %s\n", ticksToUs(e.tick),
                    dram::toString(e.op), note);
    }

    std::printf("\ncommands driven: host=%llu nvmc=%llu, "
                "conflicts=%llu\n",
                static_cast<unsigned long long>(
                    sys.bus().commandCount(0)),
                static_cast<unsigned long long>(
                    sys.bus().commandCount(1)),
                static_cast<unsigned long long>(
                    sys.bus().conflictCount()));

    if (trace_path) {
        std::uint64_t events = nvdimmc::trace::eventCount();
        if (nvdimmc::trace::stop()) {
            std::printf("wrote %llu trace events to %s\n",
                        static_cast<unsigned long long>(events),
                        trace_path);
        }
    }
    return 0;
}
