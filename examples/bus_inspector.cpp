/**
 * @file
 * A look inside the shared-bus trick: snoop every DDR4 command on the
 * channel for a few refresh intervals and print the interleaving of
 * host iMC traffic, REFRESH commands, and the NVMC's window-gated
 * accesses — paper Fig 2b, live.
 *
 *   $ ./examples/bus_inspector [--channels=N]
 *
 * With more than one channel the run drives every module (host reads
 * plus one uncached write per channel) and ends with a per-channel
 * table of commands, refreshes, conflicts, and DRAM protocol
 * violations, so a staggered-refresh topology can be eyeballed: the
 * channels' REF ticks should not line up.
 *
 * With `--trace out.json` the run is also captured as a Chrome
 * trace_event file (open in https://ui.perfetto.dev): refresh windows,
 * DMA bursts, CP transactions and queue depths on their own tracks.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "common/trace.hh"
#include "core/system.hh"

using namespace nvdimmc;

namespace
{

/** Records (tick, op) for every driven CA frame on one channel. */
struct TraceSnooper : public bus::CaSnooper
{
    struct Entry
    {
        Tick tick;
        dram::Ddr4Op op;
    };

    std::vector<Entry> entries;
    std::uint64_t refreshes = 0;

    void
    observeFrame(const dram::CaFrame& frame, Tick now) override
    {
        dram::Ddr4Op op = dram::decodeFrame(frame).op;
        if (op == dram::Ddr4Op::Refresh)
            ++refreshes;
        entries.push_back({now, op});
    }
};

} // namespace

int
main(int argc, char** argv)
{
    const char* trace_path = nullptr;
    std::uint32_t channels = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
            trace_path = argv[i] + 8;
        } else if (std::strncmp(argv[i], "--channels=", 11) == 0) {
            int n = std::atoi(argv[i] + 11);
            if (n < 1) {
                std::fprintf(stderr, "bad --channels value\n");
                return 1;
            }
            channels = static_cast<std::uint32_t>(n);
        } else {
            std::fprintf(stderr,
                         "usage: bus_inspector [--channels=N]"
                         " [--trace out.json]\n");
            return 1;
        }
    }
    if (trace_path)
        nvdimmc::trace::start(trace_path);

    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = channels;
    core::NvdimmcSystem sys(cfg);

    std::vector<std::unique_ptr<TraceSnooper>> snoops;
    for (std::uint32_t c = 0; c < sys.channelCount(); ++c) {
        snoops.push_back(std::make_unique<TraceSnooper>());
        sys.channel(c).bus().addSnooper(snoops.back().get());
    }

    // Start an uncached write per channel so every NVMC has real work
    // (writeback + cachefill over its CP area), plus host read traffic
    // on each module. Pages 0..N-1 land round-robin on channels 0..N-1.
    sys.precondition(8 * channels,
                     sys.totalSlotCount() - 8 * channels, true);
    sys.driver().markEverWritten(0, 64 * channels);
    std::uint32_t pending = channels;
    for (std::uint32_t c = 0; c < channels; ++c)
        sys.driver().write(static_cast<Addr>(c) * 4096, 4096, nullptr,
                           [&pending] { --pending; });

    std::vector<int> hammer(channels, 2000);
    std::vector<std::function<void()>> host_traffic(channels);
    for (std::uint32_t c = 0; c < channels; ++c) {
        host_traffic[c] = [&, c] {
            if (--hammer[c] <= 0)
                return;
            sys.channel(c).imc().readLine(
                sys.channel(c).layout().slotAddr(9) +
                    (static_cast<Addr>(hammer[c]) % 32) * 64,
                nullptr, host_traffic[c]);
        };
        host_traffic[c]();
    }

    while (pending > 0 && sys.eq().runOne()) {
    }

    // Print a window's worth of channel-0 commands around each of the
    // first few REFRESHes (the other channels look the same, shifted
    // by their refresh phase).
    std::printf("%-12s %-6s  note\n", "tick (us)", "cmd");
    int refreshes_shown = 0;
    Tick window_end = 0;
    for (const auto& e : snoops[0]->entries) {
        bool is_ref = e.op == dram::Ddr4Op::Refresh;
        if (is_ref) {
            if (++refreshes_shown > 3)
                break;
            window_end = e.tick + cfg.refresh.tRFC;
        }
        bool in_window = e.tick < window_end && !is_ref;
        if (!is_ref && !in_window)
            continue;
        const char* note = "";
        if (is_ref) {
            note = "<- REF: host now blocked for programmed tRFC";
        } else if (in_window) {
            note = "   NVMC access inside the stolen window";
        }
        std::printf("%-12.3f %-6s  %s\n", ticksToUs(e.tick),
                    dram::toString(e.op), note);
    }

    // With staggered refresh the channels' first REF ticks differ by
    // tREFI/N; show them so the stagger is visible at a glance.
    if (channels > 1) {
        std::printf("\nfirst REFRESH per channel:\n");
        for (std::uint32_t c = 0; c < channels; ++c) {
            for (const auto& e : snoops[c]->entries) {
                if (e.op == dram::Ddr4Op::Refresh) {
                    std::printf("  ch%u: %.3f us\n", c,
                                ticksToUs(e.tick));
                    break;
                }
            }
        }
    }

    std::printf("\n%-8s %10s %10s %10s %10s %10s\n", "channel",
                "host_cmds", "nvmc_cmds", "refreshes", "conflicts",
                "violations");
    std::uint64_t tot_host = 0, tot_nvmc = 0, tot_ref = 0,
                  tot_conf = 0, tot_viol = 0;
    for (std::uint32_t c = 0; c < sys.channelCount(); ++c) {
        const core::Channel& chan = sys.channel(c);
        std::uint64_t host = chan.bus().commandCount(0);
        std::uint64_t nvmc = chan.bus().commandCount(1);
        std::uint64_t refs = snoops[c]->refreshes;
        std::uint64_t conf = chan.bus().conflictCount();
        std::uint64_t viol = chan.dram().violations().size();
        std::printf("ch%-6u %10llu %10llu %10llu %10llu %10llu\n", c,
                    static_cast<unsigned long long>(host),
                    static_cast<unsigned long long>(nvmc),
                    static_cast<unsigned long long>(refs),
                    static_cast<unsigned long long>(conf),
                    static_cast<unsigned long long>(viol));
        tot_host += host;
        tot_nvmc += nvmc;
        tot_ref += refs;
        tot_conf += conf;
        tot_viol += viol;
    }
    std::printf("%-8s %10llu %10llu %10llu %10llu %10llu\n", "total",
                static_cast<unsigned long long>(tot_host),
                static_cast<unsigned long long>(tot_nvmc),
                static_cast<unsigned long long>(tot_ref),
                static_cast<unsigned long long>(tot_conf),
                static_cast<unsigned long long>(tot_viol));

    if (trace_path) {
        std::uint64_t events = nvdimmc::trace::eventCount();
        if (nvdimmc::trace::stop()) {
            std::printf("wrote %llu trace events to %s\n",
                        static_cast<unsigned long long>(events),
                        trace_path);
        }
    }
    return 0;
}
