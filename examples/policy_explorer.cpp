/**
 * @file
 * Design-space exploration with the public API: sweep the DRAM-cache
 * replacement policy and the backend media, and print a table of
 * uncached 4 KB random-read performance — the study behind the
 * paper's §VII-C/§VII-D "what would fix the Uncached slowdown"
 * discussion.
 *
 *   $ ./examples/policy_explorer
 */

#include <cstdio>
#include <string>

#include "core/system.hh"
#include "workload/fio.hh"

using namespace nvdimmc;

namespace
{

double
measureUncached(const std::string& policy, core::MediaKind media,
                nvmc::FirmwareConfig fw)
{
    core::SystemConfig cfg = core::SystemConfig::scaledBench();
    cfg.driver.policy = policy;
    cfg.media = media;
    cfg.mediaBytes = 4 * kGiB;
    cfg.nvmc.firmware = fw;
    core::NvdimmcSystem sys(cfg);
    sys.precondition(0, sys.layout().slotCount(), true);
    sys.driver().markEverWritten(0, sys.backend().pageCount());

    workload::FioConfig fio;
    fio.pattern = workload::FioConfig::Pattern::RandRead;
    fio.blockSize = 4096;
    fio.threads = 2;
    Addr base = std::uint64_t{sys.layout().slotCount() + 128} * 4096;
    fio.regionOffset = base;
    fio.regionBytes = sys.driver().capacityBytes() - base;
    fio.rampTime = 5 * kMs;
    fio.runTime = 60 * kMs;

    workload::FioJob job(
        sys.eq(),
        [&sys](Addr off, std::uint32_t len, bool is_write,
               std::function<void()> done) {
            if (is_write)
                sys.driver().write(off, len, nullptr, std::move(done));
            else
                sys.driver().read(off, len, nullptr, std::move(done));
        },
        fio);
    return job.run().mbps;
}

const char*
mediaName(core::MediaKind m)
{
    switch (m) {
      case core::MediaKind::ZNand: return "Z-NAND";
      case core::MediaKind::Pram: return "PRAM";
      case core::MediaKind::SttMram: return "STT-MRAM";
      case core::MediaKind::Delay: return "delay";
    }
    return "?";
}

} // namespace

int
main()
{
    std::printf("uncached 4 KB random reads, 2 threads (MB/s)\n\n");
    std::printf("%-10s %-10s %-12s %10s\n", "policy", "media",
                "firmware", "MB/s");

    for (core::MediaKind media :
         {core::MediaKind::ZNand, core::MediaKind::Pram,
          core::MediaKind::SttMram}) {
        for (const char* policy : {"lrc", "lru"}) {
            for (bool asic : {false, true}) {
                auto fw = asic ? nvmc::FirmwareConfig::asic()
                               : nvmc::FirmwareConfig::poc();
                double mbps = measureUncached(policy, media, fw);
                std::printf("%-10s %-10s %-12s %10.1f\n", policy,
                            mediaName(media), asic ? "asic" : "poc",
                            mbps);
            }
        }
    }
    std::printf("\nthe paper's takeaway (§VII-D): with media faster "
                "than ~2 us per 4 KB,\nthe tRFC-window architecture "
                "delivers balanced SCM performance.\n");
    return 0;
}
