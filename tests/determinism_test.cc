/**
 * @file
 * Whole-system determinism and soak tests. The simulator's claim to
 * be a measurement instrument rests on runs being exactly repeatable:
 * identical configuration and stimulus must produce identical event
 * counts, identical statistics, and identical data — across the full
 * stack including the FTL's GC and the NVMC's window machinery.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/trace.hh"
#include "core/system.hh"
#include "workload/fio.hh"

namespace nvdimmc
{
namespace
{

/** Drive a mixed workload and fingerprint the system afterwards. */
std::string
runFingerprint(std::uint64_t seed)
{
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    core::NvdimmcSystem sys(cfg);
    sys.driver().markEverWritten(0, 256);

    Rng rng(seed);
    int outstanding = 0;
    std::uint64_t launched = 0;
    std::function<void()> pump = [&] {
        while (outstanding < 4 && launched < 300) {
            ++launched;
            ++outstanding;
            std::uint64_t page = rng.below(256);
            bool write = rng.chance(0.5);
            auto done = [&] {
                --outstanding;
                pump();
            };
            if (write) {
                sys.driver().write(page * 4096, 4096, nullptr, done);
            } else {
                sys.driver().read(page * 4096, 4096, nullptr, done);
            }
        }
    };
    pump();
    while (outstanding > 0 && sys.eq().runOne()) {
    }

    std::ostringstream os;
    os << sys.eq().now() << ":" << sys.eq().eventsFired() << "\n";
    sys.dumpStats(os);
    return os.str();
}

TEST(Determinism, IdenticalRunsAreBitIdentical)
{
    std::string a = runFingerprint(7);
    std::string b = runFingerprint(7);
    EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    std::string a = runFingerprint(7);
    std::string b = runFingerprint(8);
    EXPECT_NE(a, b);
}

TEST(Determinism, TracingDoesNotPerturbTheRun)
{
    // The tracer is an observer: capturing a Chrome trace of a run
    // must leave every event count and statistic byte-identical to
    // the untraced run.
    std::string off = runFingerprint(7);

    const char* path = "determinism_trace_tmp.json";
    trace::start(path);
    std::string on = runFingerprint(7);
    EXPECT_GT(trace::eventCount(), 0u);
    trace::stop();
    std::remove(path);

    EXPECT_EQ(off, on);
}

TEST(Determinism, FioJobIsRepeatable)
{
    auto run = [] {
        core::SystemConfig cfg = core::SystemConfig::scaledBench();
        core::NvdimmcSystem sys(cfg);
        sys.precondition(0, sys.layout().slotCount() - 64, true);
        workload::FioConfig fio;
        fio.pattern = workload::FioConfig::Pattern::RandRead;
        fio.blockSize = 4096;
        fio.threads = 4;
        fio.regionBytes =
            std::uint64_t{sys.layout().slotCount() - 64} * 4096;
        fio.rampTime = 1 * kMs;
        fio.runTime = 10 * kMs;
        fio.seed = 99;
        workload::FioJob job(
            sys.eq(),
            [&sys](Addr off, std::uint32_t len, bool is_write,
                   std::function<void()> done) {
                if (is_write)
                    sys.driver().write(off, len, nullptr,
                                       std::move(done));
                else
                    sys.driver().read(off, len, nullptr,
                                      std::move(done));
            },
            fio);
        auto res = job.run();
        return res.ops;
    };
    EXPECT_EQ(run(), run());
}

TEST(Soak, LongMixedRunStaysClean)
{
    // Minutes of churn across every layer: hits, misses, evictions,
    // writebacks, GC — the tRFC-serialization and data-path
    // invariants must hold throughout.
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    core::NvdimmcSystem sys(cfg);
    std::uint32_t slots = sys.layout().slotCount();
    // Fill the cache with dirty pages from a disjoint range so every
    // miss in the 600-page test region must evict + write back.
    std::uint64_t pages = 600;
    sys.precondition(pages, slots, true);
    sys.driver().markEverWritten(0, pages + slots);

    Rng rng(123);
    std::uint64_t ops = 0;
    const std::uint64_t kOps = 1500;
    std::function<void()> next = [&] {
        if (++ops > kOps)
            return;
        std::uint64_t page = rng.below(pages);
        if (rng.chance(0.5)) {
            sys.driver().write(page * 4096, 4096, nullptr, next);
        } else {
            sys.driver().read(page * 4096, 4096, nullptr, next);
        }
    };
    next();
    while (ops <= kOps && sys.eq().runOne()) {
    }

    EXPECT_GT(ops, kOps);
    EXPECT_TRUE(sys.hardwareClean())
        << "zero conflicts / violations over " << ops << " mixed ops";
    EXPECT_GT(sys.driver().stats().writebacks.value(), 100u);
    // The cache accounting must still balance.
    EXPECT_LE(sys.driver().cache().usedSlots(), slots);
    EXPECT_GT(sys.nvmc()->windowsGranted(), 1000u);
}

} // namespace
} // namespace nvdimmc
