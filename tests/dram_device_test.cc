/**
 * @file
 * DRAM device, bank FSM, timing checker and address map tests.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <array>
#include <cstring>

#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/dram_device.hh"

namespace nvdimmc::dram
{
namespace
{

AddressMap
smallMap()
{
    // 16 MiB: 8 KiB rows, 16 banks, 128 rows.
    return AddressMap(16 * kMiB);
}

Ddr4Timing
timing()
{
    return Ddr4Timing::ddr4_1600();
}

TEST(AddressMap, GeometryDerivation)
{
    AddressMap m(16 * kGiB);
    EXPECT_EQ(m.totalBanks(), 16u);
    EXPECT_EQ(m.rowBytes(), 8192u);
    EXPECT_EQ(m.burstsPerRow(), 128u);
    EXPECT_EQ(std::uint64_t{m.rows()} * m.rowBytes() * m.totalBanks(),
              16 * kGiB);
}

TEST(AddressMap, RejectsBadGeometry)
{
    EXPECT_THROW(AddressMap(10 * 1000 * 1000), FatalError);
    EXPECT_THROW(AddressMap(16 * kMiB, 32), FatalError);
}

TEST(AddressMap, SequentialBurstsStayInRow)
{
    AddressMap m = smallMap();
    DramCoord a = m.decompose(0);
    DramCoord b = m.decompose(64);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.bankGroup, b.bankGroup);
    EXPECT_EQ(b.col, a.col + 1);
}

class AddressMapRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(AddressMapRoundTrip, ComposeDecomposeIdentity)
{
    AddressMap m = smallMap();
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 500; ++i) {
        Addr a = rng.below(m.capacity() / 64) * 64;
        DramCoord c = m.decompose(a);
        EXPECT_EQ(m.compose(c), a);
        EXPECT_LT(c.row, m.rows());
        EXPECT_LT(c.col, m.burstsPerRow());
        EXPECT_LT(m.flatBank(c), m.totalBanks());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressMapRoundTrip,
                         ::testing::Range(1, 6));

TEST(Bank, LegalActivateReadPrecharge)
{
    Bank b;
    Ddr4Timing t = timing();
    EXPECT_TRUE(b.canActivate(0, t).ok);
    b.activate(0, 42);
    EXPECT_TRUE(b.isOpen(42));
    EXPECT_FALSE(b.canRead(0, 42, t).ok) << "tRCD not elapsed";
    EXPECT_TRUE(b.canRead(t.tRCD, 42, t).ok);
    b.read(t.tRCD, t);
    EXPECT_FALSE(b.canPrecharge(t.tRCD, t).ok) << "tRAS not elapsed";
    EXPECT_TRUE(b.canPrecharge(t.tRAS, t).ok);
}

TEST(Bank, ReadToWrongRowRejected)
{
    Bank b;
    Ddr4Timing t = timing();
    b.activate(0, 1);
    EXPECT_FALSE(b.canRead(t.tRCD, 2, t).ok);
}

TEST(Bank, WriteRecoveryBlocksPrecharge)
{
    Bank b;
    Ddr4Timing t = timing();
    b.activate(0, 0);
    b.write(t.tRCD, t);
    Tick data_end = t.tRCD + t.writeLatency();
    EXPECT_FALSE(b.canPrecharge(data_end + t.tWR - 1, t).ok);
    EXPECT_TRUE(b.canPrecharge(data_end + t.tWR, t).ok);
}

TEST(Bank, TrcLimitsBackToBackActivates)
{
    Bank b;
    Ddr4Timing t = timing();
    b.activate(0, 0);
    b.precharge(t.tRAS);
    EXPECT_FALSE(b.canActivate(t.tRAS + t.tRP - 1, t).ok);
    // tRC = tRAS + tRP here, so this is also the tRC boundary.
    EXPECT_TRUE(b.canActivate(t.tRAS + t.tRP, t).ok);
}

class DeviceFixture : public ::testing::Test
{
  protected:
    DeviceFixture()
        : map(smallMap()), dev(map, timing(), true, false)
    {
    }

    IssueResult
    at(Tick tick, Ddr4Op op, std::uint8_t bg = 0, std::uint8_t ba = 0,
       std::uint32_t row = 0, std::uint32_t col = 0)
    {
        return dev.issue({op, bg, ba, row, col}, tick);
    }

    AddressMap map;
    DramDevice dev;
};

TEST_F(DeviceFixture, LegalReadSequence)
{
    const auto& t = dev.timing();
    EXPECT_TRUE(at(0, Ddr4Op::Activate, 0, 0, 3).ok);
    auto rd = at(t.tRCD, Ddr4Op::Read, 0, 0, 3, 5);
    EXPECT_TRUE(rd.ok);
    EXPECT_EQ(rd.dataStart, t.tRCD + t.tCL);
    EXPECT_EQ(rd.dataEnd, t.tRCD + t.tCL + t.burstTime());
    EXPECT_EQ(dev.stats().violations.value(), 0u);
}

TEST_F(DeviceFixture, TrcdViolationDetected)
{
    at(0, Ddr4Op::Activate, 0, 0, 3);
    auto rd = at(1000, Ddr4Op::Read, 0, 0, 3, 0);
    EXPECT_FALSE(rd.ok);
    EXPECT_EQ(dev.stats().violations.value(), 1u);
}

TEST_F(DeviceFixture, ReadToClosedBankDetected)
{
    auto rd = at(0, Ddr4Op::Read, 0, 0, 0, 0);
    EXPECT_FALSE(rd.ok);
    EXPECT_GE(dev.violations().size(), 1u);
}

TEST_F(DeviceFixture, TccdEnforcedWithinBankGroup)
{
    const auto& t = dev.timing();
    at(0, Ddr4Op::Activate, 0, 0, 0);
    at(t.tRCD, Ddr4Op::Read, 0, 0, 0, 0);
    auto second = at(t.tRCD + t.tCCD_L - t.tCK, Ddr4Op::Read, 0, 0, 0, 1);
    EXPECT_FALSE(second.ok);
    auto third = at(t.tRCD + 2 * t.tCCD_L, Ddr4Op::Read, 0, 0, 0, 2);
    EXPECT_TRUE(third.ok);
}

TEST_F(DeviceFixture, TrrdAndFawEnforced)
{
    const auto& t = dev.timing();
    // Four activates spaced exactly tRRD_S apart across bank groups.
    Tick tick = 0;
    for (std::uint8_t bg = 0; bg < 4; ++bg) {
        EXPECT_TRUE(at(tick, Ddr4Op::Activate, bg, 0, 0).ok);
        tick += t.tRRD_S;
    }
    // Fifth activate within tFAW must fail.
    auto fifth = at(tick, Ddr4Op::Activate, 0, 1, 0);
    EXPECT_FALSE(fifth.ok);
    // After the window passes, it succeeds.
    auto later = at(t.tFAW + t.tRRD_S, Ddr4Op::Activate, 0, 1, 0);
    EXPECT_TRUE(later.ok);
}

TEST_F(DeviceFixture, RefreshRequiresAllBanksIdle)
{
    const auto& t = dev.timing();
    at(0, Ddr4Op::Activate, 0, 0, 0);
    auto ref = at(t.tRCD, Ddr4Op::Refresh);
    EXPECT_FALSE(ref.ok);
    at(t.tRAS, Ddr4Op::PrechargeAll);
    auto ref2 = at(t.tRAS + t.tRP, Ddr4Op::Refresh);
    EXPECT_TRUE(ref2.ok);
    EXPECT_EQ(dev.refreshCount(), 1u);
}

TEST_F(DeviceFixture, CommandsDuringRefreshAreViolations)
{
    const auto& t = dev.timing();
    at(0, Ddr4Op::Refresh);
    EXPECT_TRUE(dev.inRefresh(t.tRFC / 2));
    auto act = at(t.tRFC / 2, Ddr4Op::Activate, 0, 0, 0);
    EXPECT_FALSE(act.ok);
    // Right after tRFC the device accepts commands again — this is
    // exactly the window the NVMC exploits when the host programs a
    // longer tRFC.
    auto act2 = at(t.tRFC, Ddr4Op::Activate, 0, 0, 0);
    EXPECT_TRUE(act2.ok);
}

TEST_F(DeviceFixture, SelfRefreshBlocksCommandsUntilExitPlusTxs)
{
    const auto& t = dev.timing();
    at(0, Ddr4Op::SelfRefreshEnter);
    EXPECT_TRUE(dev.inSelfRefresh());
    auto act = at(1 * kUs, Ddr4Op::Activate, 0, 0, 0);
    EXPECT_FALSE(act.ok);
    at(2 * kUs, Ddr4Op::SelfRefreshExit);
    EXPECT_FALSE(dev.inSelfRefresh());
    auto act2 = at(2 * kUs + 100, Ddr4Op::Activate, 0, 0, 0);
    EXPECT_FALSE(act2.ok) << "tXS not honoured";
    auto act3 = at(2 * kUs + t.tXS, Ddr4Op::Activate, 0, 0, 0);
    EXPECT_TRUE(act3.ok);
}

TEST_F(DeviceFixture, SrxWithoutSreIsViolation)
{
    at(0, Ddr4Op::SelfRefreshExit);
    EXPECT_EQ(dev.stats().violations.value(), 1u);
}

TEST_F(DeviceFixture, DataStoreRoundTrip)
{
    std::array<std::uint8_t, 64> w{}, r{};
    for (int i = 0; i < 64; ++i)
        w[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    DramCoord c = map.decompose(4096);
    dev.writeBurst(c, w.data());
    dev.readBurst(c, r.data());
    EXPECT_EQ(std::memcmp(w.data(), r.data(), 64), 0);
}

TEST_F(DeviceFixture, UnwrittenReadsReturnZero)
{
    std::array<std::uint8_t, 64> r;
    r.fill(0xee);
    dev.readBurst(map.decompose(8192), r.data());
    for (auto byte : r)
        EXPECT_EQ(byte, 0);
}

TEST_F(DeviceFixture, SparseAllocationOnlyTouchedRows)
{
    EXPECT_EQ(dev.allocatedBytes(), 0u);
    std::array<std::uint8_t, 64> w{};
    dev.writeBurst(map.decompose(0), w.data());
    dev.writeBurst(map.decompose(64), w.data());
    EXPECT_EQ(dev.allocatedBytes(), map.rowBytes());
}

TEST(DramDevicePanic, PanicModeAborts)
{
    AddressMap m = smallMap();
    DramDevice dev(m, timing(), true, true);
    EXPECT_THROW(dev.issue({Ddr4Op::Read, 0, 0, 0, 0}, 0), PanicError);
}

TEST(DramDeviceFrame, IssueFromRawFrame)
{
    AddressMap m = smallMap();
    DramDevice dev(m, timing(), false, false);
    CaFrame f = encodeCommand({Ddr4Op::Refresh, 0, 0, 0, 0});
    EXPECT_TRUE(dev.issueFrame(f, 0).ok);
    EXPECT_EQ(dev.refreshCount(), 1u);
}

TEST(DramTiming, PresetsAreConsistent)
{
    for (const Ddr4Timing& t :
         {Ddr4Timing::ddr4_1600(), Ddr4Timing::ddr4_2400()}) {
        EXPECT_EQ(t.tRC, t.tRAS + t.tRP);
        EXPECT_GT(t.tRFC, 0u);
        EXPECT_GT(t.tREFI, t.tRFC);
        EXPECT_EQ(t.burstTime(), 4 * t.tCK);
        EXPECT_GT(t.readLatency(), t.tCL);
    }
    // The paper quotes tRCD+tCL ~= 26.64 ns at DDR4-2400.
    Ddr4Timing t24 = Ddr4Timing::ddr4_2400();
    EXPECT_NEAR(ticksToNs(t24.tRCD + t24.tCL), 26.64, 0.1);
}

TEST(RefreshRegisters, PaperProgramming)
{
    auto regs = RefreshRegisters::nvdimmc();
    EXPECT_EQ(regs.tRFC, 1250 * kNs);
    EXPECT_EQ(regs.tREFI, 7800 * kNs);
    auto std_regs = RefreshRegisters::standard();
    EXPECT_EQ(std_regs.tRFC, 350 * kNs);
}

} // namespace
} // namespace nvdimmc::dram
