/**
 * @file
 * Time-series telemetry tests (common/telemetry.hh).
 *
 * Covers the observability tentpole's determinism contract:
 *  - collector probe semantics (gauge, delta, exact-permille ratio)
 *    and the sampling cadence on the simulated-time event queue;
 *  - the load-signal bus: deterministic subscription-order delivery
 *    and per-interval publication of flagged probes;
 *  - windowed SLO percentiles: every interval's per-class digest must
 *    match an offline recompute from the raw span records, using the
 *    spansClosed bucketing rule (window k covers close-sequence
 *    numbers in (spansClosed[k-1], spansClosed[k]]);
 *  - byte-identity: telemetry JSONL identical across sharded executor
 *    counts, and sim results identical with telemetry on vs off;
 *  - the flight recorder: bounded rings, the explicit dump path, and
 *    the span-audit / fault-corruption auto-trigger paths.
 *
 * Suite names start with "Telemetry" so CI's TSan ctest filter picks
 * the whole file up.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/span.hh"
#include "common/stats.hh"
#include "common/telemetry.hh"
#include "core/system.hh"
#include "fault/campaign.hh"
#include "workload/fio.hh"

namespace nvdimmc
{
namespace
{

/** Fresh, enabled telemetry + span layers for one test; clean (and
 *  disarmed) on the way out — both layers are process-global. */
struct TelemetryScope
{
    TelemetryScope()
    {
        span::enable();
        span::reset();
        telemetry::enable();
    }
    ~TelemetryScope()
    {
        telemetry::flightDisarm();
        telemetry::disable();
        span::reset();
        span::disable();
    }
};

std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** Short random-write fio run over a 2-channel scaledTest system with
 *  a fixed 10 us telemetry interval; the region is twice the cached
 *  page count so hits, misses and writebacks all show up. Returns the
 *  telemetry JSONL export; @p stats_out (optional) gets the full
 *  deterministic result + stats dump. */
std::string
telemetryRun(std::uint32_t threads, std::string* stats_out = nullptr)
{
    // Span counters (closedCount, window histograms) are process-
    // global; start each run from zero so two runs export identical
    // series.
    span::reset();
    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = 2;
    cfg.threads = threads;
    cfg.telemetryIntervalTicks = 10 * kUs;
    core::NvdimmcSystem sys(cfg);
    const std::uint32_t pages = sys.totalSlotCount() - 64 * 2;
    sys.precondition(0, pages, true);

    workload::FioConfig fio;
    fio.pattern = workload::FioConfig::Pattern::RandWrite;
    fio.blockSize = 4096;
    fio.threads = 2;
    fio.regionBytes = std::uint64_t{pages} * 2 * 4096;
    fio.rampTime = 50 * kUs;
    fio.runTime = 500 * kUs;
    fio.seed = 42;
    workload::AccessFn fn = [&sys](Addr off, std::uint32_t len,
                                   bool is_write,
                                   std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };
    workload::FioJob job(sys.eq(), fn, fio);
    workload::FioResult res = job.run();
    EXPECT_TRUE(sys.hardwareClean());

    if (stats_out) {
        std::ostringstream os;
        os.precision(17);
        os << res.mbps << " " << res.kiops << " " << res.ops << "\n";
        sys.dumpStats(os);
        *stats_out = os.str();
    }
    std::string jsonl;
    if (sys.telemetryCollector()) {
        std::ostringstream os;
        sys.telemetryCollector()->writeJsonl(os, "telemetry_test");
        jsonl = os.str();
    }
    return jsonl;
}

// ---------------------------------------------------------------------
// Signal bus.

TEST(TelemetryBus, DeliversInSubscriptionOrderAndRemembersLast)
{
    telemetry::SignalBus bus;
    std::vector<int> order;
    Tick lastNow = 0;
    std::uint64_t lastV = 0;
    bus.subscribe("load", [&](Tick, std::uint64_t) {
        order.push_back(1);
    });
    bus.subscribe("other", [&](Tick, std::uint64_t) {
        order.push_back(99);
    });
    bus.subscribe("load", [&](Tick now, std::uint64_t v) {
        order.push_back(2);
        lastNow = now;
        lastV = v;
    });

    bus.publish("load", 10, 7);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(lastNow, Tick{10});
    EXPECT_EQ(lastV, 7u);

    std::uint64_t v = 0;
    EXPECT_TRUE(bus.lastValue("load", v));
    EXPECT_EQ(v, 7u);
    EXPECT_FALSE(bus.lastValue("other", v)); // Never published.
    bus.publish("load", 20, 9);
    EXPECT_TRUE(bus.lastValue("load", v));
    EXPECT_EQ(v, 9u);
}

// ---------------------------------------------------------------------
// Collector probe semantics and cadence.

TEST(TelemetryCollector, GaugeDeltaAndRatioAreExactIntegers)
{
    TelemetryScope scope;
    EventQueue eq;
    telemetry::Collector c(eq, 10);

    std::uint64_t depth = 0, ops = 0, busy = 0, window = 0;
    c.addGauge("depth", [&] { return depth; });
    c.addDelta("ops", [&] { return ops; });
    c.addRatioPermille("util", [&] { return busy; },
                       [&] { return window; });

    depth = 3, ops = 100, busy = 25, window = 100;
    c.sample();
    depth = 1, ops = 150, busy = 25, window = 100;
    c.sample();

    ASSERT_EQ(c.records().size(), 2u);
    // Gauge: instantaneous. Delta: vs the previous sample (baseline
    // 0 without start()). Ratio: permille of the two deltas, exact
    // integer division, 0 on an idle denominator.
    EXPECT_EQ(c.records()[0].values,
              (std::vector<std::uint64_t>{3, 100, 250}));
    EXPECT_EQ(c.records()[1].values,
              (std::vector<std::uint64_t>{1, 50, 0}));
    EXPECT_EQ(c.probeNames(),
              (std::vector<std::string>{"depth", "ops", "util"}));
}

TEST(TelemetryCollector, SamplesOnSimulatedTimeCadence)
{
    TelemetryScope scope;
    EventQueue eq;
    telemetry::Collector c(eq, 10 * kUs);
    std::uint64_t published = 0;
    c.addGauge("load", [&] { return eq.now(); }, /*signal=*/true);
    c.bus().subscribe("load", [&](Tick now, std::uint64_t v) {
        ++published;
        EXPECT_EQ(v, now); // The gauge sampled the publish tick.
    });
    c.start();
    eq.runFor(55 * kUs);
    c.stop();
    eq.runFor(100 * kUs); // No further samples after stop().

    ASSERT_EQ(c.records().size(), 5u);
    for (std::size_t k = 0; k < 5; ++k) {
        EXPECT_EQ(c.records()[k].at, Tick{(k + 1) * 10 * kUs});
        EXPECT_EQ(c.records()[k].index, k + 1);
    }
    EXPECT_EQ(published, 5u);
}

// ---------------------------------------------------------------------
// Windowed SLO percentiles: offline recompute.

TEST(TelemetryWindow, PercentilesMatchOfflineRecompute)
{
    TelemetryScope scope;
    std::string path = testing::TempDir() + "/telemetry_window.json";
    // Cap far above the run's span count: the ring never evicts, so
    // ring index i is exactly close-sequence number i + 1.
    telemetry::flightArm(path, /*spanCap=*/1 << 22,
                         /*intervalCap=*/1 << 16);

    core::SystemConfig cfg = core::SystemConfig::scaledTest();
    cfg.channels = 2;
    cfg.telemetryIntervalTicks = 10 * kUs;
    core::NvdimmcSystem sys(cfg);
    const std::uint32_t pages = sys.totalSlotCount() - 64 * 2;
    sys.precondition(0, pages, true);

    workload::FioConfig fio;
    fio.pattern = workload::FioConfig::Pattern::RandWrite;
    fio.blockSize = 4096;
    fio.threads = 2;
    fio.regionBytes = std::uint64_t{pages} * 2 * 4096;
    fio.runTime = 500 * kUs;
    fio.seed = 7;
    workload::AccessFn fn = [&sys](Addr off, std::uint32_t len,
                                   bool is_write,
                                   std::function<void()> done) {
        if (is_write)
            sys.driver().write(off, len, nullptr, std::move(done));
        else
            sys.driver().read(off, len, nullptr, std::move(done));
    };
    workload::FioJob(sys.eq(), fn, fio).run();

    ASSERT_NE(sys.telemetryCollector(), nullptr);
    const auto& recs = sys.telemetryCollector()->records();
    ASSERT_GT(recs.size(), 10u);
    std::vector<telemetry::FlightSpan> spans = telemetry::flightSpans();
    ASSERT_GE(spans.size(), recs.back().spansClosed);

    // Recompute every interval's per-class digest from the raw span
    // ring with the spansClosed bucketing rule and the same log2
    // histogram the collector drains. Every field must match exactly.
    std::uint64_t prev = 0, nonempty = 0;
    for (const telemetry::IntervalRecord& rec : recs) {
        std::array<Histogram, span::kClassCount> hist;
        std::array<std::uint64_t, span::kClassCount> sums{};
        for (std::uint64_t i = prev; i < rec.spansClosed; ++i) {
            hist[spans[i].cls].record(spans[i].e2ePs);
            sums[spans[i].cls] += spans[i].e2ePs;
        }
        for (std::uint32_t c = 0; c < span::kClassCount; ++c) {
            const telemetry::WindowDigest& d = rec.window[c];
            EXPECT_EQ(d.count, hist[c].count())
                << "interval " << rec.index << " class " << c;
            EXPECT_EQ(d.sumPs, sums[c]);
            if (d.count == 0)
                continue;
            ++nonempty;
            EXPECT_EQ(d.p50, hist[c].percentile(50.0));
            EXPECT_EQ(d.p95, hist[c].percentile(95.0));
            EXPECT_EQ(d.p99, hist[c].percentile(99.0))
                << "interval " << rec.index << " class " << c;
            EXPECT_EQ(d.p999, hist[c].percentile(99.9));
            EXPECT_EQ(d.max, hist[c].max());
        }
        prev = rec.spansClosed;
    }
    // A write-heavy over-capacity run must fill write windows.
    EXPECT_GT(nonempty, 10u);
}

// ---------------------------------------------------------------------
// Determinism contract.

TEST(TelemetryDeterminism, JsonlByteIdenticalAcrossExecutorCounts)
{
    TelemetryScope scope;
    std::string t1 = telemetryRun(1);
    std::string t2 = telemetryRun(2);
    ASSERT_FALSE(t1.empty());
    EXPECT_GT(t1.size(), 1000u);
    EXPECT_EQ(t1, t2);
    // The header carries the schema stamp and probe list.
    EXPECT_NE(t1.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(t1.find("nvdc.miss_queue_depth"), std::string::npos);
}

TEST(TelemetryDeterminism, SimResultsByteIdenticalTelemetryOnVsOff)
{
    telemetry::disable();
    span::disable();
    span::reset();
    std::string stats_off;
    telemetryRun(0, &stats_off);

    std::string stats_on;
    {
        TelemetryScope scope;
        std::string jsonl = telemetryRun(0, &stats_on);
        EXPECT_FALSE(jsonl.empty());
    }
    // Telemetry only observes: the simulation must not move by a tick.
    EXPECT_EQ(stats_off, stats_on);
}

// ---------------------------------------------------------------------
// Flight recorder.

TEST(TelemetryFlight, RingIsBoundedAndKeepsNewest)
{
    TelemetryScope scope;
    std::string path = testing::TempDir() + "/flight_ring.json";
    telemetry::flightArm(path, /*spanCap=*/4, /*intervalCap=*/2);
    for (Tick t = 1; t <= 10; ++t) {
        span::Id id = span::open(0, t * 100, span::OpClass::Hit);
        span::close(id, t * 100 + t);
    }
    std::vector<telemetry::FlightSpan> spans = telemetry::flightSpans();
    ASSERT_EQ(spans.size(), 4u);
    // Oldest first, and only the last four survive (e2e = 7..10).
    for (Tick i = 0; i < 4; ++i)
        EXPECT_EQ(spans[i].e2ePs, i + 7);
}

TEST(TelemetryFlight, ExplicitDumpWritesReasonSpansAndIntervals)
{
    TelemetryScope scope;
    std::string path = testing::TempDir() + "/flight_flag.json";
    telemetry::flightArm(path);
    EXPECT_TRUE(telemetry::flightArmed());

    span::Id id = span::open(3, 100, span::OpClass::Write);
    span::close(id, 350);
    EventQueue eq;
    telemetry::Collector c(eq, 10);
    c.addGauge("depth", [] { return std::uint64_t{5}; });
    c.sample();

    ASSERT_TRUE(telemetry::flightDump("flag"));
    EXPECT_EQ(telemetry::flightDumpCount(), 1u);
    std::string dump = slurp(path);
    EXPECT_NE(dump.find("\"reason\":\"flag\""), std::string::npos);
    EXPECT_NE(dump.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(dump.find("\"cls\":\"write\""), std::string::npos);
    EXPECT_NE(dump.find("\"ch\":3"), std::string::npos);
    EXPECT_NE(dump.find("\"e2e_ps\":250"), std::string::npos);
    EXPECT_NE(dump.find("\"depth\":5"), std::string::npos);
    std::remove(path.c_str());

    // Disarmed: recording and dumping become no-ops.
    telemetry::flightDisarm();
    EXPECT_FALSE(telemetry::flightArmed());
    EXPECT_FALSE(telemetry::flightDump("flag"));
}

TEST(TelemetryFlight, SpanAuditFailureTriggersDump)
{
    TelemetryScope scope;
    std::string path = testing::TempDir() + "/flight_audit.json";
    telemetry::flightArm(path);

    span::Id ok = span::open(0, 0, span::OpClass::Hit);
    span::close(ok, 5);
    (void)span::open(0, 0, span::OpClass::Hit); // Deliberately leaked.
    span::AuditResult a = span::audit();
    EXPECT_FALSE(a.ok());

    EXPECT_EQ(telemetry::flightDumpCount(), 1u);
    std::string dump = slurp(path);
    EXPECT_NE(dump.find("\"reason\":\"span-audit\""),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetryFlight, FaultCorruptionTriggersDump)
{
    TelemetryScope scope;
    std::string path = testing::TempDir() + "/flight_fault.json";
    telemetry::flightArm(path);

    // Without ADR the WPQ is lost on a cut, so committed records may
    // corrupt — the modeled hardware reality the recorder exists for.
    // Scan a few cut points; at least one must corrupt and dump.
    fault::PowerFailCampaignConfig cfg;
    cfg.seed = 1;
    cfg.adrWorks = false;
    fault::PowerFailCampaignResult full =
        fault::runPowerFailCampaign(cfg);
    ASSERT_EQ(telemetry::flightDumpCount(), 0u); // Uncut run is clean.

    std::uint64_t corrupt = 0;
    for (Tick denom : {6, 10, 8, 3}) {
        cfg.haltAtTick = full.workloadElapsed / denom;
        fault::PowerFailCampaignResult res =
            fault::runPowerFailCampaign(cfg);
        corrupt += res.corruptRecords;
        if (corrupt > 0)
            break;
    }
    ASSERT_GT(corrupt, 0u)
        << "no-ADR cuts produced no corruption; pick other cut points";
    EXPECT_GE(telemetry::flightDumpCount(), 1u);
    std::string dump = slurp(path);
    EXPECT_NE(dump.find("\"reason\":\"fault-corruption\""),
              std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace nvdimmc
